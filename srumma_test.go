package srumma

import (
	"strings"
	"testing"
	"testing/quick"

	"srumma/internal/mat"
)

func TestClusterMultiplyMatchesSerial(t *testing.T) {
	cl, err := NewCluster(4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	a := RandomMatrix(30, 20, 1)
	b := RandomMatrix(20, 26, 2)
	got, rep, err := cl.Multiply(a, b, MultiplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrix(30, 26)
	if err := mat.GemmNaive(false, false, 1, a, b, 0, want); err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("multiply diff %g", d)
	}
	if rep.Seconds <= 0 || rep.GFLOPS <= 0 {
		t.Fatalf("report not filled: %+v", rep)
	}
}

func TestClusterMultiplyTransposeCases(t *testing.T) {
	cl, err := NewCluster(6, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	// Stored shapes so that op(A) is 18x22, op(B) is 22x14.
	for _, cs := range []Case{NN, TN, NT, TT} {
		ar, ac := 18, 22
		if cs.TransA() {
			ar, ac = 22, 18
		}
		br, bc := 22, 14
		if cs.TransB() {
			br, bc = 14, 22
		}
		a := RandomMatrix(ar, ac, 3)
		b := RandomMatrix(br, bc, 4)
		got, _, err := cl.Multiply(a, b, MultiplyOptions{Case: cs})
		if err != nil {
			t.Fatalf("%v: %v", cs, err)
		}
		want := NewMatrix(18, 14)
		if err := mat.GemmNaive(cs.TransA(), cs.TransB(), 1, a, b, 0, want); err != nil {
			t.Fatal(err)
		}
		if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
			t.Fatalf("%v diff %g", cs, d)
		}
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	cl, err := NewCluster(4, 2, false) // square grid so Cannon runs too
	if err != nil {
		t.Fatal(err)
	}
	a := RandomMatrix(24, 24, 7)
	b := RandomMatrix(24, 24, 8)
	var ref *Matrix
	for _, alg := range []string{AlgSRUMMA, AlgSUMMA, AlgPdgemm, AlgCannon, AlgFox} {
		got, _, err := cl.Multiply(a, b, MultiplyOptions{Algorithm: alg, NB: 5})
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if d := mat.MaxAbsDiff(got, ref); d > 1e-9 {
			t.Fatalf("%s diverges from SRUMMA by %g", alg, d)
		}
	}
}

func TestMultiplyShapeErrors(t *testing.T) {
	cl, _ := NewCluster(2, 1, false)
	if _, _, err := cl.Multiply(RandomMatrix(4, 5, 1), RandomMatrix(6, 4, 2), MultiplyOptions{}); err == nil {
		t.Fatal("expected inner-dimension error")
	}
	if _, _, err := cl.Multiply(RandomMatrix(4, 4, 1), RandomMatrix(4, 4, 2), MultiplyOptions{Algorithm: "magic"}); err == nil {
		t.Fatal("expected unknown-algorithm error")
	}
	if _, _, err := cl.Multiply(RandomMatrix(4, 4, 1), RandomMatrix(4, 4, 2), MultiplyOptions{Algorithm: AlgCannon, Case: TN}); err == nil {
		t.Fatal("expected Cannon transpose error")
	}
}

func TestCannonRequiresSquareGrid(t *testing.T) {
	cl, err := NewCluster(6, 2, false) // 2x3 grid
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Multiply(RandomMatrix(12, 12, 1), RandomMatrix(12, 12, 2), MultiplyOptions{Algorithm: AlgCannon}); err == nil {
		t.Fatal("expected non-square grid error from Cannon")
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, 1, false); err == nil {
		t.Fatal("expected error for 0 procs")
	}
	if _, err := NewCluster(4, 0, false); err == nil {
		t.Fatal("expected error for 0 procs per node")
	}
	cl, err := NewCluster(12, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if p, q := cl.GridShape(); p*q != 12 || cl.Procs() != 12 {
		t.Fatalf("grid %dx%d procs %d", p, q, cl.Procs())
	}
}

func TestMultiplyQuickPublicAPI(t *testing.T) {
	cl, err := NewCluster(4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	f := func(mm, nn, kk, cc uint8) bool {
		m := 1 + int(mm%16)
		n := 1 + int(nn%16)
		k := 1 + int(kk%16)
		cs := []Case{NN, TN, NT, TT}[cc%4]
		ar, ac := m, k
		if cs.TransA() {
			ar, ac = k, m
		}
		br, bc := k, n
		if cs.TransB() {
			br, bc = n, k
		}
		a := RandomMatrix(ar, ac, uint64(mm)+1)
		b := RandomMatrix(br, bc, uint64(nn)+2)
		got, _, err := cl.Multiply(a, b, MultiplyOptions{Case: cs})
		if err != nil {
			return false
		}
		want := NewMatrix(m, n)
		if mat.GemmNaive(cs.TransA(), cs.TransB(), 1, a, b, 0, want) != nil {
			return false
		}
		return mat.MaxAbsDiff(got, want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReportCommunicationAccounting(t *testing.T) {
	cl, _ := NewCluster(4, 2, false)
	a := RandomMatrix(32, 32, 1)
	b := RandomMatrix(32, 32, 2)
	_, rep, err := cl.Multiply(a, b, MultiplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesRemote == 0 {
		t.Error("expected remote traffic on a 2-node cluster")
	}
	_, repPd, err := cl.Multiply(a, b, MultiplyOptions{Algorithm: AlgPdgemm, NB: 8})
	if err != nil {
		t.Fatal(err)
	}
	if repPd.Messages == 0 {
		t.Error("expected two-sided messages from pdgemm")
	}
}

func TestPlatformsList(t *testing.T) {
	names := Platforms()
	if len(names) != 6 {
		t.Fatalf("platforms = %v", names)
	}
	for _, want := range []string{"cray-x1", "ibm-sp", "ibm-sp-klapi", "linux-myrinet", "modern-cluster", "sgi-altix"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing platform %s in %v", want, names)
		}
	}
	if _, err := PlatformByName("cray-x1"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("pdp-11"); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestSimulateBasics(t *testing.T) {
	rep, err := Simulate(SimOptions{
		Platform: "sgi-altix",
		Procs:    16,
		Dims:     Dims{M: 512, N: 512, K: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || rep.GFLOPS <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
	if _, err := Simulate(SimOptions{Platform: "nope", Procs: 4, Dims: Dims{M: 64, N: 64, K: 64}}); err == nil {
		t.Fatal("expected unknown platform error")
	}
}

func TestSimulateSRUMMAvsPdgemm(t *testing.T) {
	d := Dims{M: 1000, N: 1000, K: 1000}
	sr, err := Simulate(SimOptions{Platform: "sgi-altix", Procs: 64, Dims: d})
	if err != nil {
		t.Fatal(err)
	}
	pd, err := Simulate(SimOptions{Platform: "sgi-altix", Procs: 64, Dims: d, Algorithm: AlgPdgemm})
	if err != nil {
		t.Fatal(err)
	}
	if sr.GFLOPS <= pd.GFLOPS {
		t.Fatalf("SRUMMA %.1f should beat pdgemm %.1f on the Altix model", sr.GFLOPS, pd.GFLOPS)
	}
}

func TestSimulateOverlapReported(t *testing.T) {
	rep, err := Simulate(SimOptions{Platform: "linux-myrinet", Procs: 16, Dims: Dims{M: 2000, N: 2000, K: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports >90% overlap in most Linux-cluster cases.
	if rep.Overlap < 0.5 {
		t.Errorf("overlap %.2f unexpectedly low", rep.Overlap)
	}
	blocking, err := Simulate(SimOptions{Platform: "linux-myrinet", Procs: 16, Dims: Dims{M: 2000, N: 2000, K: 2000}, Blocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if blocking.GFLOPS >= rep.GFLOPS {
		t.Errorf("blocking (%.1f) should not beat pipelined (%.1f)", blocking.GFLOPS, rep.GFLOPS)
	}
}

func TestMeasureBandwidthAndOverlap(t *testing.T) {
	sizes := []int{4 << 10, 256 << 10}
	for _, proto := range []string{ProtoGet, ProtoMPI, ProtoMemcpy} {
		pts, err := MeasureBandwidth("linux-myrinet", proto, sizes)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if len(pts) != 2 || pts[0].MBps <= 0 {
			t.Fatalf("%s: bad points %+v", proto, pts)
		}
	}
	if _, err := MeasureBandwidth("linux-myrinet", "pigeon", sizes); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatal("expected unknown protocol error")
	}
	ov, err := MeasureOverlap("ibm-sp", ProtoGet, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(ov) != 2 || ov[0].OverlapPct < 90 {
		t.Fatalf("ARMCI overlap points %+v", ov)
	}
	if _, err := MeasureOverlap("ibm-sp", ProtoMemcpy, sizes); err == nil {
		t.Fatal("expected error for overlap on memcpy")
	}
}

func TestNewClusterForSkinnyShapes(t *testing.T) {
	cl, err := NewClusterFor(8, 2, false, 800, 50)
	if err != nil {
		t.Fatal(err)
	}
	p, q := cl.GridShape()
	if p <= q {
		t.Fatalf("tall result should get a tall grid, got %dx%d", p, q)
	}
	// And it must still multiply correctly.
	a := RandomMatrix(80, 40, 1)
	b := RandomMatrix(40, 10, 2)
	got, _, err := cl.Multiply(a, b, MultiplyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := NewMatrix(80, 10)
	if err := mat.GemmNaive(false, false, 1, a, b, 0, want); err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("diff %g", d)
	}
}

func TestSimulateVariantsAndErrors(t *testing.T) {
	d := Dims{M: 256, N: 256, K: 256}
	// Forced copy flavor and MaxTaskK plumb through.
	rep, err := Simulate(SimOptions{Platform: "sgi-altix", Procs: 8, Dims: d, ForceCopyShared: true, MaxTaskK: 32})
	if err != nil || rep.GFLOPS <= 0 {
		t.Fatalf("forced-copy simulate: %v %+v", err, rep)
	}
	// Unknown algorithm surfaces as an error, not a hang.
	if _, err := Simulate(SimOptions{Platform: "sgi-altix", Procs: 4, Dims: d, Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Bandwidth/overlap default size sweeps and bad platforms.
	if _, err := MeasureBandwidth("nope", ProtoGet, nil); err == nil {
		t.Fatal("bad platform accepted by MeasureBandwidth")
	}
	if _, err := MeasureOverlap("nope", ProtoGet, nil); err == nil {
		t.Fatal("bad platform accepted by MeasureOverlap")
	}
	if pts, err := MeasureOverlap("linux-myrinet", ProtoMPI, []int{512}); err != nil || len(pts) != 1 {
		t.Fatalf("overlap defaults: %v %v", pts, err)
	}
}

func TestNewClusterForValidation(t *testing.T) {
	if _, err := NewClusterFor(0, 1, false, 10, 10); err == nil {
		t.Fatal("0 procs accepted")
	}
	if _, err := NewClusterFor(4, 2, false, 0, 10); err == nil {
		t.Fatal("m=0 accepted")
	}
}

// Protocols: the paper's communication-protocol story in one program.
// Measures (1) protocol bandwidth — one-sided get vs MPI send/receive vs
// shared-memory copy (Figures 6/8); (2) how much communication each
// protocol can hide behind computation (Figure 7, with MPI's rendezvous
// cliff at 16 KB); and (3) the effect of zero-copy and nonblocking
// transfers on the full matrix multiplication (Figure 9).
package main

import (
	"fmt"
	"log"

	"srumma"
)

func main() {
	sizes := []int{512, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

	fmt.Println("1. protocol bandwidth on the Linux/Myrinet model (MB/s):")
	fmt.Printf("%12s %12s %12s %12s\n", "bytes", "armci-get", "mpi", "shmem")
	get, err := srumma.MeasureBandwidth("linux-myrinet", srumma.ProtoGet, sizes)
	if err != nil {
		log.Fatal(err)
	}
	mpi, err := srumma.MeasureBandwidth("linux-myrinet", srumma.ProtoMPI, sizes)
	if err != nil {
		log.Fatal(err)
	}
	shm, err := srumma.MeasureBandwidth("linux-myrinet", srumma.ProtoMemcpy, sizes)
	if err != nil {
		log.Fatal(err)
	}
	for i := range sizes {
		fmt.Printf("%12d %12.1f %12.1f %12.1f\n", get[i].Bytes, get[i].MBps, mpi[i].MBps, shm[i].MBps)
	}

	fmt.Println("\n2. achievable communication/computation overlap (%):")
	fmt.Printf("%12s %12s %12s\n", "bytes", "armci nbget", "mpi isend")
	ovGet, err := srumma.MeasureOverlap("linux-myrinet", srumma.ProtoGet, sizes)
	if err != nil {
		log.Fatal(err)
	}
	ovMPI, err := srumma.MeasureOverlap("linux-myrinet", srumma.ProtoMPI, sizes)
	if err != nil {
		log.Fatal(err)
	}
	for i := range sizes {
		fmt.Printf("%12d %12.1f %12.1f\n", ovGet[i].Bytes, ovGet[i].OverlapPct, ovMPI[i].OverlapPct)
	}
	fmt.Println("   (note the MPI collapse past the 16 KB rendezvous threshold)")

	fmt.Println("\n3. SRUMMA on Linux/Myrinet, N=2000, 16 procs, protocol variants:")
	d := srumma.Dims{M: 2000, N: 2000, K: 2000}
	for _, v := range []struct {
		name              string
		blocking, nozcopy bool
	}{
		{"nonblocking + zero-copy", false, false},
		{"blocking    + zero-copy", true, false},
		{"nonblocking + staged copies", false, true},
		{"blocking    + staged copies", true, true},
	} {
		rep, err := srumma.Simulate(srumma.SimOptions{
			Platform:        "linux-myrinet",
			Procs:           16,
			Dims:            d,
			Blocking:        v.blocking,
			DisableZeroCopy: v.nozcopy,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-28s %6.1f GFLOP/s (overlap %.0f%%)\n", v.name, rep.GFLOPS, rep.Overlap*100)
	}
}

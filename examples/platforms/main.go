// Platforms: reproduce the paper's headline comparison (Figure 10) in
// miniature — SRUMMA vs ScaLAPACK-style pdgemm on all four modeled
// platforms, showing where one-sided communication wins and by how much.
package main

import (
	"fmt"
	"log"

	"srumma"
)

func main() {
	fmt.Println("SRUMMA vs pdgemm on the paper's four platforms (virtual-time models)")
	fmt.Printf("%-14s %8s %6s %12s %12s %8s\n", "platform", "N", "procs", "SRUMMA GF/s", "pdgemm GF/s", "ratio")
	for _, platform := range srumma.Platforms() {
		for _, cfg := range []struct{ n, p int }{
			{1000, 16},
			{1000, 64},
			{4000, 64},
		} {
			d := srumma.Dims{M: cfg.n, N: cfg.n, K: cfg.n}
			sr, err := srumma.Simulate(srumma.SimOptions{Platform: platform, Procs: cfg.p, Dims: d})
			if err != nil {
				log.Fatal(err)
			}
			pd, err := srumma.Simulate(srumma.SimOptions{
				Platform: platform, Procs: cfg.p, Dims: d, Algorithm: srumma.AlgPdgemm,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %8d %6d %12.1f %12.1f %8.2f\n",
				platform, cfg.n, cfg.p, sr.GFLOPS, pd.GFLOPS, sr.GFLOPS/pd.GFLOPS)
		}
	}
	fmt.Println("\nNote how the gap is largest on the shared-memory systems (cray-x1,")
	fmt.Println("sgi-altix) and grows with the processor count at fixed N — the")
	fmt.Println("paper's central observation.")
}

// Transpose: exercise the four dgemm transpose cases and a rectangular
// multiply on the real engine (paper §4.2 / Table 1 territory), verifying
// every result numerically, then show the same cases on a modeled platform.
package main

import (
	"fmt"
	"log"

	"srumma"
)

func verify(cl *srumma.Cluster, cs srumma.Case, m, n, k int) {
	ar, ac := m, k
	if cs.TransA() {
		ar, ac = k, m
	}
	br, bc := k, n
	if cs.TransB() {
		br, bc = n, k
	}
	a := srumma.RandomMatrix(ar, ac, 11)
	b := srumma.RandomMatrix(br, bc, 22)
	c, rep, err := cl.Multiply(a, b, srumma.MultiplyOptions{Case: cs})
	if err != nil {
		log.Fatalf("%v: %v", cs, err)
	}
	// Check one full row of C with explicit index arithmetic.
	i := m / 2
	for j := 0; j < n; j++ {
		var want float64
		for l := 0; l < k; l++ {
			var av, bv float64
			if cs.TransA() {
				av = a.At(l, i)
			} else {
				av = a.At(i, l)
			}
			if cs.TransB() {
				bv = b.At(j, l)
			} else {
				bv = b.At(l, j)
			}
			want += av * bv
		}
		if d := c.At(i, j) - want; d > 1e-9 || d < -1e-9 {
			log.Fatalf("%v: C(%d,%d) = %g, want %g", cs, i, j, c.At(i, j), want)
		}
	}
	fmt.Printf("  %-8v m=%d n=%d k=%d: %.2f GFLOP/s, verified ✓\n", cs, m, n, k, rep.GFLOPS)
}

func main() {
	cl, err := srumma.NewCluster(6, 2, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("real engine, 6 processes (2x3 grid):")
	for _, cs := range []srumma.Case{srumma.NN, srumma.TN, srumma.NT, srumma.TT} {
		verify(cl, cs, 240, 240, 240)
	}
	fmt.Println("rectangular shapes:")
	verify(cl, srumma.NN, 400, 400, 100) // Table 1: m=4000 n=4000 k=1000, scaled
	verify(cl, srumma.NN, 100, 100, 200) // Table 1: m=1000 n=1000 k=2000, scaled
	verify(cl, srumma.TT, 60, 300, 150)

	fmt.Println("\nmodeled SGI Altix, 128 processors (paper Table 1 rows):")
	for _, row := range []struct {
		cs      srumma.Case
		m, n, k int
		procs   int
	}{
		{srumma.NN, 4000, 4000, 4000, 128},
		{srumma.TT, 4000, 4000, 4000, 128},
		{srumma.NN, 1000, 1000, 2000, 64},
	} {
		rep, err := srumma.Simulate(srumma.SimOptions{
			Platform: "sgi-altix",
			Procs:    row.procs,
			Dims:     srumma.Dims{M: row.m, N: row.n, K: row.k},
			Case:     row.cs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v m=%d n=%d k=%d P=%d: %.0f GFLOP/s\n",
			row.cs, row.m, row.n, row.k, row.procs, rep.GFLOPS)
	}
}

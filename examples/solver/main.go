// Solver: a distributed conjugate-gradient solve built entirely from the
// Global Arrays operations — matrix-vector products run SRUMMA underneath
// (with N=1 "matrices" exercising the planner's degenerate shapes), dot
// products ride the allreduce, and the vector updates use GA_Add. This is
// the kind of composition (iterative solver around ga_dgemm) that
// NWChem-era applications are made of.
package main

import (
	"fmt"
	"log"
	"math"

	"srumma/ga"
)

const (
	n      = 144
	nprocs = 6
)

func main() {
	err := ga.Run(nprocs, 2, false, func(e *ga.Env) {
		// Build the SPD system M = AᵀA + n·I and a right-hand side with a
		// known solution xTrue.
		a, _ := e.Create("A", n, n)
		at, _ := e.Create("At", n, n)
		m, _ := e.Create("M", n, n)
		if e.Me() == 0 {
			src := ga.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					src.Set(i, j, math.Sin(float64(i*13+j*7))*0.4)
				}
			}
			must(a.Put(0, 0, src))
		}
		e.Sync()
		must(at.Transpose(a))
		must(m.MatMul(false, false, 1, at, a, 0))
		if e.Me() == 0 {
			eye := ga.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				eye.Set(i, i, float64(n))
			}
			must(m.Acc(0, 0, 1, eye))
		}
		e.Sync()

		xTrue, _ := e.Create("xTrue", n, 1)
		b, _ := e.Create("b", n, 1)
		if e.Me() == 0 {
			v := ga.NewMatrix(n, 1)
			for i := 0; i < n; i++ {
				v.Set(i, 0, 1+math.Cos(float64(i))/2)
			}
			must(xTrue.Put(0, 0, v))
		}
		e.Sync()
		must(b.MatMul(false, false, 1, m, xTrue, 0))

		// Conjugate gradient: x0 = 0, r = b, p = r.
		x, _ := e.Create("x", n, 1)
		r, _ := e.Create("r", n, 1)
		p, _ := e.Create("p", n, 1)
		mp, _ := e.Create("Mp", n, 1)
		x.Fill(0)
		must(r.Copy(b))
		must(p.Copy(r))
		rr, _ := r.Dot(r)

		if e.Me() == 0 {
			fmt.Printf("CG on %dx%d SPD system, %d processes\n", n, n, e.NProcs())
			fmt.Printf("%6s %14s\n", "iter", "||r||")
		}
		for iter := 0; iter < 40 && rr > 1e-20; iter++ {
			must(mp.MatMul(false, false, 1, m, p, 0)) // Mp = M p  (SRUMMA)
			pmp, _ := p.Dot(mp)
			alpha := rr / pmp
			must(x.Add(1, x, alpha, p))   // x += alpha p
			must(r.Add(1, r, -alpha, mp)) // r -= alpha Mp
			rrNew, _ := r.Dot(r)
			if e.Me() == 0 && iter%5 == 0 {
				fmt.Printf("%6d %14.3e\n", iter, math.Sqrt(rrNew))
			}
			beta := rrNew / rr
			must(p.Add(beta, p, 1, r)) // p = r + beta p
			rr = rrNew
		}
		// Error against the known solution.
		diff, _ := e.Create("diff", n, 1)
		must(diff.Add(1, x, -1, xTrue))
		errNorm, _ := diff.Norm()
		bn, _ := b.Norm()
		if e.Me() == 0 {
			fmt.Printf("final ||x - xTrue|| = %.3e  (||b|| = %.3e)\n", errNorm, bn)
			if errNorm > 1e-8 {
				log.Fatal("CG did not converge to the true solution")
			}
			fmt.Println("converged ✓")
		}
		e.Sync()
	})
	if err != nil {
		log.Fatal(err)
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

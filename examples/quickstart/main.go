// Quickstart: multiply two matrices with SRUMMA on the real execution
// engine (goroutine processes in shared memory), verify the result against
// a serial multiply, and print the communication breakdown.
package main

import (
	"fmt"
	"log"

	"srumma"
)

func main() {
	// A "cluster" of 8 SPMD processes, 2 per shared-memory node — the
	// shape of the paper's Linux cluster.
	cl, err := srumma.NewCluster(8, 2, false)
	if err != nil {
		log.Fatal(err)
	}
	p, q := cl.GridShape()
	fmt.Printf("cluster: %d processes on a %dx%d grid, 2 per node\n", cl.Procs(), p, q)

	const n = 512
	a := srumma.RandomMatrix(n, n, 1)
	b := srumma.RandomMatrix(n, n, 2)

	c, rep, err := cl.Multiply(a, b, srumma.MultiplyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C = A x B (%dx%d): %.3f ms, %.2f GFLOP/s aggregate\n",
		n, n, rep.Seconds*1e3, rep.GFLOPS)
	fmt.Printf("one-sided traffic: %.1f MB shared-memory, %.1f MB remote (RMA)\n",
		float64(rep.BytesShared)/1e6, float64(rep.BytesRemote)/1e6)

	// Spot-check a few entries against a direct dot product.
	for _, ij := range [][2]int{{0, 0}, {n / 2, n / 3}, {n - 1, n - 1}} {
		i, j := ij[0], ij[1]
		var want float64
		for k := 0; k < n; k++ {
			want += a.At(i, k) * b.At(k, j)
		}
		if diff := c.At(i, j) - want; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("C(%d,%d) = %g, want %g", i, j, c.At(i, j), want)
		}
	}
	fmt.Println("verified against serial dot products ✓")
}

// Chemistry: SRUMMA in its native habitat. The paper's algorithm shipped
// inside Global Arrays as ga_dgemm, where quantum chemistry codes (NWChem)
// spend their time in chains of distributed matrix multiplications. This
// example runs McWeeny density-matrix purification — P <- 3P² - 2P³,
// iterated until P is idempotent — on the ga package, exercising repeated
// SRUMMA multiplications with alpha/beta accumulation, one-sided patch
// access and collective synchronization.
package main

import (
	"fmt"
	"log"
	"math"

	"srumma/ga"
)

const (
	n      = 192 // orbital count
	nprocs = 8
	ppn    = 2
)

func main() {
	err := ga.Run(nprocs, ppn, false, func(e *ga.Env) {
		p, err := e.Create("P", n, n)
		if err != nil {
			panic(err)
		}
		t, _ := e.Create("T", n, n)     // P²
		next, _ := e.Create("P'", n, n) // 3P² - 2P³

		// Rank 0 builds the initial density guess: a symmetric matrix with
		// eigenvalues in (0, 1), biased so roughly a third converge to 1.
		if e.Me() == 0 {
			m := ga.NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					v := 0.18 * math.Sin(float64(i*j%17)+1) / (1 + math.Abs(float64(i-j)))
					m.Set(i, j, v)
					m.Set(j, i, v)
				}
				occ := 0.9
				if i%3 != 0 {
					occ = 0.12
				}
				m.Set(i, i, occ)
			}
			if err := p.Put(0, 0, m); err != nil {
				panic(err)
			}
		}
		e.Sync()

		if e.Me() == 0 {
			fmt.Printf("McWeeny purification, %dx%d density matrix on %d processes\n", n, n, e.NProcs())
			fmt.Printf("%6s %14s %14s\n", "iter", "trace(P)", "||P^2-P||_F")
		}
		for iter := 0; iter < 12; iter++ {
			// T = P·P, then P' = 3·P·P - 2·T·P (the second multiply
			// accumulates into the first with beta=1).
			if err := t.MatMul(false, false, 1, p, p, 0); err != nil {
				panic(err)
			}
			if err := next.MatMul(false, false, 3, p, p, 0); err != nil {
				panic(err)
			}
			if err := next.MatMul(false, false, -2, t, p, 1); err != nil {
				panic(err)
			}
			// Report convergence from rank 0.
			if e.Me() == 0 {
				pm, _ := p.Get(0, 0, n, n)
				tm, _ := t.Get(0, 0, n, n)
				trace, fro := 0.0, 0.0
				for i := 0; i < n; i++ {
					trace += pm.At(i, i)
					for j := 0; j < n; j++ {
						d := tm.At(i, j) - pm.At(i, j)
						fro += d * d
					}
				}
				fmt.Printf("%6d %14.6f %14.3e\n", iter, trace, math.Sqrt(fro))
			}
			e.Sync()
			// P <- P' by swapping roles: copy P' into P via local blocks.
			blk, _, _ := next.LocalBlock()
			if err := p.StoreLocal(blk); err != nil {
				panic(err)
			}
			e.Sync()
		}
		if e.Me() == 0 {
			pm, _ := p.Get(0, 0, n, n)
			occupied := 0
			for i := 0; i < n; i++ {
				if pm.At(i, i) > 0.5 {
					occupied++
				}
			}
			fmt.Printf("converged: %d occupied orbitals (diagonal entries -> {0,1})\n", occupied)
		}
		e.Sync()
	})
	if err != nil {
		log.Fatal(err)
	}
}

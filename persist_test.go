package srumma

import (
	"context"
	"errors"
	"testing"

	"srumma/internal/mat"
)

// TestPersistentClusterBitIdenticalToOneShot pins the acceptance property
// of the persistent engine: a cluster switched to a parked team serves 100
// sequential multiplies whose results are BIT-identical to the one-shot
// engine — same task schedule, same split-k summation order, only the
// rank-goroutine lifecycle differs.
func TestPersistentClusterBitIdenticalToOneShot(t *testing.T) {
	a := RandomMatrix(48, 48, 7)
	b := RandomMatrix(48, 48, 8)

	cl, err := NewCluster(4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := cl.Multiply(a, b, MultiplyOptions{}) // one-shot mode
	if err != nil {
		t.Fatal(err)
	}

	if err := cl.Persist(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	if !cl.Persistent() {
		t.Fatal("Persistent() = false after Persist")
	}
	n := 100
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		got, rep, err := cl.Multiply(a, b, MultiplyOptions{})
		if err != nil {
			t.Fatalf("multiply %d: %v", i, err)
		}
		if !mat.Equal(got, ref) {
			t.Fatalf("multiply %d: persistent result differs from one-shot (max abs diff %g)",
				i, mat.MaxAbsDiff(got, ref))
		}
		if rep.Seconds <= 0 {
			t.Fatalf("multiply %d: report has no timing", i)
		}
	}
}

func TestPersistIdempotentAndCloseReverts(t *testing.T) {
	cl, err := NewCluster(4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Persist(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Persist(); err != nil { // second call is a no-op
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if cl.Persistent() {
		t.Fatal("still persistent after Close")
	}
	if err := cl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// One-shot mode still works after the team is gone.
	a, b := RandomMatrix(24, 24, 1), RandomMatrix(24, 24, 2)
	if _, _, err := cl.Multiply(a, b, MultiplyOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiplyContextCancelled verifies the public cancellation contract: a
// cancelled context aborts the multiply with ErrCancelled and the same
// cluster — persistent team included — keeps serving correct results.
func TestMultiplyContextCancelled(t *testing.T) {
	a := RandomMatrix(64, 64, 3)
	b := RandomMatrix(64, 64, 4)
	cl, err := NewCluster(4, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Persist(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = cl.Multiply(a, b, MultiplyOptions{Context: ctx})
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}

	got, _, err := cl.Multiply(a, b, MultiplyOptions{Context: context.Background()})
	if err != nil {
		t.Fatalf("multiply after cancellation: %v", err)
	}
	want := NewMatrix(64, 64)
	if err := mat.Gemm(false, false, 1, a, b, 0, want); err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("post-cancel result wrong: max abs diff %g", d)
	}
}

// TestNewServerPublicAPI exercises the re-exported serving surface.
func TestNewServerPublicAPI(t *testing.T) {
	s, err := NewServer(ServerConfig{NProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	var m ServerMetrics = s.Metrics()
	if m.QueueCap != 4 {
		t.Fatalf("queue_cap = %d, want default 4", m.QueueCap)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

package main

// The multi-process engine benchmark/verification mode:
//
//	srumma-bench -engine ipc -np 4 -ppn 2
//
// launches np worker PROCESSES (ppn per emulated node, all on localhost),
// runs all four transpose cases through the socket+mmap transport, and
// checks every rank's C block bit-for-bit against the in-process armci
// engine running the identical job with the identical topology. This is
// the ipc-smoke CI gate: run it under -race and any in-process ordering
// bug in the coordinator or the workers' transport goroutines surfaces.

import (
	"fmt"
	"log"
	"math"
	"sync"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/ipcrt"
	"srumma/internal/rt"
)

type ipcRow struct {
	Case        string  `json:"case"`
	N           int     `json:"n"`
	WallSeconds float64 `json:"wall_s"`
	GFlops      float64 `json:"gflops"`
	RemoteGets  int64   `json:"remote_gets"`
	DirectMaps  int64   `json:"direct_maps"`
	BitIdentical bool   `json:"bit_identical"`
}

// runIPCBench runs the four-case bit-identity comparison. It returns the
// rows for -json; any mismatch or transport failure is fatal.
func runIPCBench(np, ppn, n int) ([]ipcRow, error) {
	if !ipcrt.Available() {
		return nil, fmt.Errorf("the ipc engine is unavailable on this platform")
	}
	topo := rt.Topology{NProcs: np, ProcsPerNode: ppn}
	cl, err := ipcrt.Launch(ipcrt.Config{NP: np, PPN: ppn})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	var rows []ipcRow
	for _, cs := range []core.Case{core.NN, core.TN, core.NT, core.TT} {
		spec := ipcrt.DefaultSpec(n, n, n)
		spec.Case = int(cs)
		spec.Beta = 0.5
		spec.ReturnC = true
		spec.KernelThreads = 1

		w0 := time.Now()
		results, err := cl.RunJob(spec, 10*time.Minute)
		wall := time.Since(w0).Seconds()
		if err != nil {
			return nil, fmt.Errorf("%v: %w", cs, err)
		}

		// The reference: the in-process engine, same topology, same body.
		want := make([][]float64, np)
		var mu sync.Mutex
		var bodyErr error
		if _, err := armci.Run(topo, func(c rt.Ctx) {
			out, _, _, err := ipcrt.RunBody(c, spec)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && bodyErr == nil {
				bodyErr = err
			}
			want[c.Rank()] = out
		}); err != nil {
			return nil, fmt.Errorf("%v: armci reference: %w", cs, err)
		}
		if bodyErr != nil {
			return nil, fmt.Errorf("%v: armci reference body: %w", cs, bodyErr)
		}

		row := ipcRow{Case: cs.String(), N: n, WallSeconds: wall, BitIdentical: true}
		if wall > 0 {
			row.GFlops = 2 * float64(n) * float64(n) * float64(n) / wall / 1e9
		}
		for rank, res := range results {
			if res.Err != "" {
				return nil, fmt.Errorf("%v: rank %d: %s", cs, rank, res.Err)
			}
			row.RemoteGets += res.Stats.GetsRemote
			row.DirectMaps += res.DirectMaps
			if len(res.C) != len(want[rank]) {
				return nil, fmt.Errorf("%v: rank %d block is %d elements, armci has %d",
					cs, rank, len(res.C), len(want[rank]))
			}
			for i := range res.C {
				if math.Float64bits(res.C[i]) != math.Float64bits(want[rank][i]) {
					return nil, fmt.Errorf("%v: rank %d element %d differs: ipc %v, armci %v",
						cs, rank, i, res.C[i], want[rank][i])
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func formatIPCBench(np, ppn int, rows []ipcRow) string {
	s := fmt.Sprintf("ipc engine: %d worker processes, %d per node, vs in-process armci\n", np, ppn)
	s += fmt.Sprintf("%8s %6s %10s %9s %12s %12s %6s\n",
		"case", "n", "wall ms", "GFLOP/s", "remote gets", "direct maps", "bits")
	for _, r := range rows {
		ok := "OK"
		if !r.BitIdentical {
			ok = "DIFF"
		}
		s += fmt.Sprintf("%8s %6d %10.3f %9.1f %12d %12d %6s\n",
			r.Case, r.N, r.WallSeconds*1e3, r.GFlops, r.RemoteGets, r.DirectMaps, ok)
	}
	s += "every rank's C block is bit-identical to the in-process engine\n"
	return s
}

// ipcBenchMain is the -engine ipc entry: run, print or store, exit style
// matches the rest of srumma-bench.
func ipcBenchMain(np, ppn, n int, quick bool, emit func(name string, rows any, table string)) {
	if np <= 0 || ppn <= 0 {
		log.Fatal("-engine ipc needs -np and -ppn (e.g. -np 4 -ppn 2)")
	}
	if n <= 0 {
		n = 96
		if quick {
			n = 64
		}
	}
	rows, err := runIPCBench(np, ppn, n)
	if err != nil {
		log.Fatalf("ipc: %v", err)
	}
	emit("ipc", rows, formatIPCBench(np, ppn, rows))
}

// Command srumma-bench regenerates the paper's evaluation: every figure
// (5-10) and Table 1, plus the §2.1 analytic-model comparison and the
// design-choice ablations, all on the virtual-time platform models.
//
// Usage:
//
//	srumma-bench -fig 10            # one figure (5..10)
//	srumma-bench -table 1           # Table 1
//	srumma-bench -model             # efficiency model vs simulation
//	srumma-bench -iso               # isoefficiency demonstration
//	srumma-bench -ablations         # SRUMMA design ablations
//	srumma-bench -all               # everything
//	srumma-bench -chaos -seed 7     # fault-injection sweep, real engine
//	srumma-bench -kernel            # local dgemm kernel sweep, real hardware
//	srumma-bench -fig 10 -quick     # reduced sweep (CI-sized)
//	srumma-bench -all -json         # machine-readable results on stdout
//
// The chaos and kernel sweeps run on the real (goroutine) engine / real
// hardware with wall-clock timing, so they are not part of -all; invoke
// them explicitly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"srumma/internal/bench"
	"srumma/internal/ipcrt"
	"srumma/internal/machine"
)

func main() {
	ipcrt.MaybeWorker() // -engine ipc workers re-execute this binary
	log.SetFlags(0)
	log.SetPrefix("srumma-bench: ")
	fig := flag.Int("fig", 0, "figure number to regenerate (5..10)")
	table := flag.Int("table", 0, "table number to regenerate (1)")
	model := flag.Bool("model", false, "run the efficiency-model comparison")
	iso := flag.Bool("iso", false, "run the isoefficiency demonstration")
	ablations := flag.Bool("ablations", false, "run the SRUMMA design ablations")
	memory := flag.Bool("memory", false, "run the scratch-memory comparison")
	klapi := flag.Bool("klapi", false, "run the SP LAPI-vs-KLAPI zero-copy projection")
	blocksize := flag.Bool("blocksize", false, "run the task-granularity (block size) sweep")
	chaos := flag.Bool("chaos", false, "run the fault-injection chaos sweep on the real engine")
	kernel := flag.Bool("kernel", false, "run the local dgemm kernel sweep (seed vs packed vs parallel) on real hardware")
	kernelThreads := flag.Int("kernel-threads", 4, "worker count for the parallel kernel rows")
	seed := flag.Uint64("seed", 1, "base seed for the chaos sweep (runs seed, seed+1, seed+2)")
	all := flag.Bool("all", false, "run everything")
	quick := flag.Bool("quick", false, "reduced sweeps (smaller N and P)")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of tables")
	hierSweep := flag.Bool("hier", false, "run the flat-vs-hierarchical P sweep on the virtual-time engine")
	hierOut := flag.String("hier-out", "", "also write the -hier sweep document (BENCH_hier.json schema) to this file")
	engine := flag.String("engine", "", `"ipc": run the multi-process engine bit-identity benchmark`)
	np := flag.Int("np", 4, "worker process count (with -engine ipc)")
	ppn := flag.Int("ppn", 2, "worker processes per emulated node (with -engine ipc)")
	ipcN := flag.Int("n", 0, "matrix size for -engine ipc (0: default)")
	flag.Parse()

	results := map[string]any{}
	ran := false
	run := func(name string, fn func() error) {
		ran = true
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	// emit prints the human table, or stores rows for the JSON document.
	emit := func(name string, rows any, table string) {
		if *jsonOut {
			results[name] = rows
			return
		}
		fmt.Print(table)
	}

	switch *engine {
	case "":
	case "ipc":
		ran = true
		ipcBenchMain(*np, *ppn, *ipcN, *quick, emit)
	default:
		log.Fatalf("unknown engine %q (only ipc runs through srumma-bench)", *engine)
	}

	if *all || *fig == 5 {
		run("fig5", func() error {
			n, procs := 2000, 16
			if *quick {
				n = 600
			}
			rows, err := bench.Fig5(n, procs)
			if err != nil {
				return err
			}
			emit("fig5", rows, bench.FormatFig5(rows))
			return nil
		})
	}
	if *all || *fig == 6 {
		run("fig6", func() error {
			series, order, err := bench.Fig6(commSizes(*quick))
			if err != nil {
				return err
			}
			emit("fig6", series, bench.FormatBandwidth("Figure 6: bandwidth comparison on Cray X1", series, order))
			return nil
		})
	}
	if *all || *fig == 7 {
		run("fig7", func() error {
			series, order, err := bench.Fig7(commSizes(*quick))
			if err != nil {
				return err
			}
			emit("fig7", series, bench.FormatOverlap("Figure 7: potential communication overlap, IBM SP and Linux cluster", series, order))
			return nil
		})
	}
	if *all || *fig == 8 {
		run("fig8", func() error {
			series, order, err := bench.Fig8(commSizes(*quick))
			if err != nil {
				return err
			}
			emit("fig8", series, bench.FormatBandwidth("Figure 8: MPI vs ARMCI_Get on IBM SP and Myrinet", series, order))
			return nil
		})
	}
	if *all || *fig == 9 {
		run("fig9", func() error {
			ns := []int{600, 1000, 2000, 4000}
			procs := 16
			if *quick {
				ns = []int{600, 1000}
				procs = 8
			}
			rows, err := bench.Fig9(ns, procs)
			if err != nil {
				return err
			}
			emit("fig9", rows, bench.FormatFig9(rows))
			return nil
		})
	}
	if *all || *fig == 10 {
		run("fig10", func() error {
			sweeps := bench.DefaultFig10Sweeps()
			if *quick {
				for i := range sweeps {
					sweeps[i].Ns = []int{600, 2000}
					sweeps[i].Procs = []int{16, 64}
				}
			}
			rows, err := bench.Fig10(sweeps)
			if err != nil {
				return err
			}
			emit("fig10", rows, bench.FormatFig10(rows))
			return nil
		})
	}
	if *all || *table == 1 {
		run("table1", func() error {
			rows, err := bench.Table1()
			if err != nil {
				return err
			}
			emit("table1", rows, bench.FormatTable1(rows))
			return nil
		})
	}
	if *all || *model {
		run("model", func() error {
			prof := machine.LinuxMyrinet()
			ns := []int{1000, 2000, 4000}
			ps := []int{4, 16, 64}
			if *quick {
				ns = []int{1000, 2000}
				ps = []int{4, 16}
			}
			rows, err := bench.ModelCompare(prof, ns, ps)
			if err != nil {
				return err
			}
			emit("model", rows, bench.FormatModel(prof, rows))
			return nil
		})
	}
	if *all || *iso {
		run("iso", func() error {
			prof := machine.LinuxMyrinet()
			base := 500
			ps := []int{4, 16, 64}
			rows, err := bench.Isoefficiency(prof, base, ps)
			if err != nil {
				return err
			}
			emit("iso", rows, bench.FormatIso(prof, base, rows))
			return nil
		})
	}
	if *all || *ablations {
		run("ablations", func() error {
			n, procs := 4000, 64
			if *quick {
				// Keep at least 4 SP nodes or every operand is local and
				// the ablations have nothing to ablate.
				n, procs = 1000, 64
			}
			rows, err := bench.Ablations(n, procs)
			if err != nil {
				return err
			}
			emit("ablations", rows, bench.FormatAblations(rows))
			return nil
		})
	}
	if *all || *memory {
		run("memory", func() error {
			n, procs := 4000, 64
			if *quick {
				n, procs = 1000, 16
			}
			rows, err := bench.MemoryTable(n, procs)
			if err != nil {
				return err
			}
			emit("memory", rows, bench.FormatMemory(n, procs, rows))
			return nil
		})
	}
	if *all || *klapi {
		run("klapi", func() error {
			ns := []int{1000, 2000, 4000, 8000}
			procs := 64
			if *quick {
				ns = []int{1000, 2000}
			}
			rows, err := bench.KLAPI(ns, procs)
			if err != nil {
				return err
			}
			emit("klapi", rows, bench.FormatKLAPI(rows))
			return nil
		})
	}
	if *all || *blocksize {
		run("blocksize", func() error {
			prof := machine.LinuxMyrinet()
			n, procs := 4000, 64
			if *quick {
				n, procs = 1000, 16
			}
			caps := []int{8, 16, 32, 64, 128, 256, 0}
			rows, err := bench.BlockSizeSweep(prof, n, procs, caps)
			if err != nil {
				return err
			}
			emit("blocksize", rows, bench.FormatBlockSize(prof, n, procs, rows))
			return nil
		})
	}
	if *chaos {
		run("chaos", func() error {
			n, procs, ppn := 96, 6, 2
			if *quick {
				n, procs, ppn = 48, 4, 2
			}
			seeds := []uint64{*seed, *seed + 1, *seed + 2}
			if *quick {
				seeds = seeds[:1]
			}
			rows, err := bench.Chaos(n, procs, ppn, seeds)
			if err != nil {
				return err
			}
			emit("chaos", rows, bench.FormatChaos(n, procs, rows))
			return nil
		})
	}
	if *hierSweep {
		run("hier", func() error {
			n, procsList := 512, []int{4, 16, 36, 64}
			if *quick {
				n, procsList = 256, []int{4, 16}
			}
			doc, err := bench.HierSweep(machine.LinuxMyrinet(), n, procsList)
			if err != nil {
				return err
			}
			emit("hier", doc, bench.FormatHier(doc))
			if *hierOut != "" {
				buf, err := json.MarshalIndent(map[string]any{"hier_sweep": doc}, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(*hierOut, append(buf, '\n'), 0o644); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if *kernel {
		run("kernel", func() error {
			ns := []int{256, 512, 1024}
			if *quick {
				ns = []int{256, 512}
			}
			rows, err := bench.KernelSweep(ns, *kernelThreads)
			if err != nil {
				return err
			}
			e2e, err := bench.KernelEndToEnd(ns[len(ns)-1:])
			if err != nil {
				return err
			}
			rows = append(rows, e2e...)
			emit("kernel", rows, bench.FormatKernel(rows))
			return nil
		})
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			log.Fatal(err)
		}
	}
}

func commSizes(quick bool) []int {
	if quick {
		return []int{512, 16 << 10, 256 << 10, 1 << 20}
	}
	return bench.CommSizes
}

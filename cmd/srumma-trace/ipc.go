package main

// The multi-process engine trace path and the measured-vs-modeled overlap
// sweep. Both reuse the event model everything else in the repo speaks:
// each worker process records wall-clock spans into its own recorder, ships
// them home in its RankResult, and MergeEvents aligns the lanes on the
// coordinator's clock.

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/grid"
	"srumma/internal/ipcrt"
	"srumma/internal/machine"
	"srumma/internal/obs"
	"srumma/internal/rt"
	"srumma/internal/simrt"
)

// ipcOpts carries the multi-host knobs from the flag surface: transport
// choice, a fixed control listener, and no-spawn mode where every rank is
// an external srumma-worker -join (possibly on another host/container).
type ipcOpts struct {
	Transport string
	Listen    string
	NoSpawn   bool
	Dir       string
}

// runIPC runs one traced multiply on the multi-process engine: every rank
// is an OS process, intra-node operands ride mmap segments, cross-node
// operands the socket RMA protocol (unix default, tcp for multi-host).
func runIPC(g *grid.Grid, d core.Dims, procs, ppn, width int, blocking, noshift bool, chrome string, flops float64, io ipcOpts) ([]obs.Event, float64) {
	if ppn <= 0 {
		ppn = procs
	}
	if !ipcrt.Available() {
		log.Fatal("the ipc engine is unavailable on this platform (no mmap shared segments)")
	}
	if io.Listen != "" && io.Transport == "" {
		io.Transport = "tcp"
	}
	if io.NoSpawn {
		if io.Listen == "" || io.Dir == "" {
			log.Fatal("-no-spawn needs -listen and -dir (external workers dial the listener and share the run directory)")
		}
		fmt.Printf("waiting for %d external workers; on each host run (ranks r=0..%d):\n", procs, procs-1)
		fmt.Printf("  srumma-worker -join tcp:%s -rank $r -np %d -ppn %d -dir %s -transport %s\n\n",
			io.Listen, procs, ppn, io.Dir, io.Transport)
	}
	cl, err := ipcrt.Launch(ipcrt.Config{
		NP: procs, PPN: ppn,
		Transport:  io.Transport,
		ListenAddr: strings.TrimPrefix(io.Listen, "tcp:"),
		NoSpawn:    io.NoSpawn,
		Dir:        io.Dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	spec := ipcrt.DefaultSpec(d.M, d.N, d.K)
	spec.SingleBuffer = blocking
	spec.NoDiagonalShift = noshift
	spec.Trace = true

	epoch := time.Now()
	results, err := cl.RunJob(spec, 10*time.Minute)
	wall := time.Since(epoch).Seconds()
	if err != nil {
		log.Fatal(err)
	}
	events := ipcrt.MergeEvents(results, epoch)

	fmt.Printf("srumma %dx%dx%d on ipc engine, %d worker processes (%dx%d grid, %d/node): %.3f ms, %.1f GFLOP/s\n",
		d.M, d.N, d.K, procs, g.P, g.Q, ppn, wall*1e3, flops/wall/1e9)
	var remoteGets, remoteBytes, directMaps int64
	for _, res := range results {
		remoteGets += res.Stats.GetsRemote
		remoteBytes += res.Stats.BytesRemote
		directMaps += res.DirectMaps
	}
	fmt.Printf("transport: %d peer segments mmapped (direct path), %d socket gets moving %.2f MB (RMA path)\n",
		directMaps, remoteGets, float64(remoteBytes)/1e6)
	fmt.Println()

	horizon := 0.0
	for _, e := range events {
		if e.End > horizon {
			horizon = e.End
		}
	}
	fmt.Printf("timeline (g=gemm w=wait t=get u=put c=copy p=pack b=barrier s=serve j=job):\n")
	fmt.Print(obs.Timeline(events, procs, width, horizon))
	busy := make([]obs.Event, 0, len(events))
	for _, e := range events {
		if e.Kind != obs.KindJob && e.Kind != obs.KindIssue {
			busy = append(busy, e)
		}
	}
	printActivity(busy, procs, horizon)

	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteChromeTrace(f, events, procs, "srumma ipc run"); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", chrome)
	}
	return events, wall
}

// sweepRow is one (block size, ppn) cell: the overlap ratio the hardware
// delivered against what the virtual-time model of -platform predicts for
// the same shape.
type sweepRow struct {
	N               int     `json:"n"`
	Block           int     `json:"block"` // per-rank block edge, n / grid dim
	PPN             int     `json:"ppn"`
	MeasuredOverlap float64 `json:"measured_overlap"`
	ModelOverlap    float64 `json:"model_overlap"`
	WallSeconds     float64 `json:"wall_s"`
	GFlops          float64 `json:"gflops"`
}

// sweepDoc is the BENCH_trace.json schema for -sweep runs.
type sweepDoc struct {
	Engine   string     `json:"engine"`
	Platform string     `json:"platform"`
	Procs    int        `json:"procs"`
	Rows     []sweepRow `json:"sweep"`
}

func parseIntList(s, what string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			log.Fatalf("bad %s value %q", what, part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		log.Fatalf("empty %s list", what)
	}
	return out
}

// runSweep measures the overlap ratio across block sizes and ppn on a real
// engine (armci goroutines or ipc processes) and sets each cell against the
// virtual-time model's prediction for a platform with the same ranks-per-
// node, recording the grid into -out.
func runSweep(engine, platform string, procs int, nsList, ppnList, out string) {
	g, err := grid.Square(procs)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := machine.ByName(platform)
	if err != nil {
		log.Fatal(err)
	}
	ns := parseIntList(nsList, "-sweep-n")
	ppns := parseIntList(ppnList, "-sweep-ppn")

	doc := sweepDoc{Engine: engine, Platform: platform, Procs: procs}
	fmt.Printf("overlap sweep on %s engine, %d procs (%dx%d grid), model: %s\n\n",
		engine, procs, g.P, g.Q, prof.Name)
	fmt.Printf("%6s %6s %4s %10s %10s %10s %9s\n", "n", "block", "ppn", "measured", "model", "wall ms", "GFLOP/s")
	for _, n := range ns {
		for _, ppn := range ppns {
			if ppn > procs {
				continue
			}
			d := core.Dims{M: n, N: n, K: n}
			flops := 2 * float64(n) * float64(n) * float64(n)

			var events []obs.Event
			var wall float64
			switch engine {
			case "real":
				events, wall = sweepReal(g, d, procs, ppn)
			case "ipc":
				events, wall = sweepIPC(d, procs, ppn)
			default:
				log.Fatalf("-sweep needs a measuring engine (real or ipc), not %q", engine)
			}
			_, _, measured := obs.OverlapRatio(events)
			_, _, modeled := modelOverlap(prof, g, d, procs, ppn)

			row := sweepRow{
				N: n, Block: (n + g.P - 1) / g.P, PPN: ppn,
				MeasuredOverlap: measured, ModelOverlap: modeled,
				WallSeconds: wall, GFlops: flops / wall / 1e9,
			}
			doc.Rows = append(doc.Rows, row)
			fmt.Printf("%6d %6d %4d %10.3f %10.3f %10.3f %9.1f\n",
				row.N, row.Block, row.PPN, row.MeasuredOverlap, row.ModelOverlap,
				row.WallSeconds*1e3, row.GFlops)
		}
	}
	if out != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote sweep to %s\n", out)
	}
}

// sweepReal measures one cell on the in-process armci engine.
func sweepReal(g *grid.Grid, d core.Dims, procs, ppn int) ([]obs.Event, float64) {
	topo := rt.Topology{NProcs: procs, ProcsPerNode: ppn, DomainSpansMachine: ppn >= procs}
	rec := obs.NewRecorder(procs, 0)
	var t0, t1 float64
	body := algBody(g, d, "srumma", nil, false, false, &t0, &t1)
	w0 := time.Now()
	if _, err := armci.RunTraced(topo, rec, body); err != nil {
		log.Fatal(err)
	}
	return rec.Events(), time.Since(w0).Seconds()
}

// sweepIPC measures one cell on the multi-process engine (a fresh worker
// fleet per cell: segment registration is part of what's being measured).
func sweepIPC(d core.Dims, procs, ppn int) ([]obs.Event, float64) {
	cl, err := ipcrt.Launch(ipcrt.Config{NP: procs, PPN: ppn})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	spec := ipcrt.DefaultSpec(d.M, d.N, d.K)
	spec.Trace = true
	epoch := time.Now()
	results, err := cl.RunJob(spec, 10*time.Minute)
	wall := time.Since(epoch).Seconds()
	if err != nil {
		log.Fatal(err)
	}
	return ipcrt.MergeEvents(results, epoch), wall
}

// modelOverlap predicts the cell with the virtual-time engine, on the
// chosen platform profile re-shaped to the sweep's ranks-per-node.
func modelOverlap(prof machine.Profile, g *grid.Grid, d core.Dims, procs, ppn int) (float64, float64, float64) {
	prof.ProcsPerNode = ppn
	if ppn < procs {
		prof.DomainSpansMachine = false
	}
	tr := &simrt.Tracer{}
	var t0, t1 float64
	body := algBody(g, d, "srumma", &prof, false, false, &t0, &t1)
	if _, err := simrt.RunTraced(prof, procs, tr, body); err != nil {
		log.Fatal(err)
	}
	return obs.OverlapRatio(tr.Events())
}

// Command srumma-trace runs one simulated matrix multiplication with event
// tracing and renders each rank's activity timeline — the double-buffered
// pipeline made visible: g = dgemm, w = waiting on communication, c =
// shared-memory copy, p = pack, b = barrier, s = CPU stolen by staging
// copies, . = idle. Comparing `-alg srumma` with `-alg pdgemm` on the same
// configuration shows exactly where the paper's overlap advantage lives.
//
// Usage:
//
//	srumma-trace -platform linux-myrinet -n 1000 -procs 8
//	srumma-trace -platform cray-x1 -n 2000 -procs 16 -blocking
//	srumma-trace -alg pdgemm -n 1000 -procs 8
//	srumma-trace -n 600 -procs 16 -chrome trace.json
//	srumma-trace -n 1000 -procs 8 -chaos -seed 7
//
// With -chaos the seeded fault plan (internal/faults) perturbs the
// simulated fabric — dropped and delayed transfers, one straggler node —
// and the timeline shows where the pipeline absorbs the injected latency.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"srumma/internal/cannon"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/fox"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/pdgemm"
	"srumma/internal/rt"
	"srumma/internal/simnet"
	"srumma/internal/simrt"
	"srumma/internal/summa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("srumma-trace: ")
	platform := flag.String("platform", "linux-myrinet", "modeled platform")
	alg := flag.String("alg", "srumma", "algorithm: srumma, pdgemm, summa, cannon, fox")
	n := flag.Int("n", 1000, "matrix size (N x N x N)")
	procs := flag.Int("procs", 8, "process count")
	width := flag.Int("width", 100, "timeline width in characters")
	blocking := flag.Bool("blocking", false, "single-buffer blocking gets")
	noshift := flag.Bool("noshift", false, "disable the diagonal-shift ordering")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
	chaos := flag.Bool("chaos", false, "inject deterministic faults into the simulated fabric (drops, delays, one straggler)")
	seed := flag.Uint64("seed", 1, "fault-injection seed (with -chaos)")
	flag.Parse()

	prof, err := machine.ByName(*platform)
	if err != nil {
		log.Fatal(err)
	}
	g, err := grid.Square(*procs)
	if err != nil {
		log.Fatal(err)
	}
	d := core.Dims{M: *n, N: *n, K: *n}

	tr := &simrt.Tracer{}
	var t0, t1 float64
	body := func(c rt.Ctx) {
		if c.Rank() == 0 {
			defer func() { t1 = c.Now() }()
		}
		switch *alg {
		case "srumma":
			opts := core.Options{SingleBuffer: *blocking, NoDiagonalShift: *noshift}
			if prof.DomainSpansMachine && !prof.RemoteCacheable {
				opts.Flavor = core.FlavorCopy
			}
			da, db, dc := core.Dists(g, d, opts.Case)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				t0 = c.Now()
			}
			if err := core.Multiply(c, g, d, opts, ga, gb, gc); err != nil {
				panic(err)
			}
		case "pdgemm":
			pd := pdgemm.Dims(d)
			da, db, dc, err := pdgemm.Dists(g, pd, pdgemm.NN, 0)
			if err != nil {
				panic(err)
			}
			ga := driver.AllocCyclic(c, da)
			gb := driver.AllocCyclic(c, db)
			gc := driver.AllocCyclic(c, dc)
			if c.Rank() == 0 {
				t0 = c.Now()
			}
			if err := pdgemm.Multiply(c, g, pd, pdgemm.Options{}, ga, gb, gc); err != nil {
				panic(err)
			}
		case "summa":
			sd := summa.Dims(d)
			da, db, dc := summa.Dists(g, sd, summa.NN)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				t0 = c.Now()
			}
			if err := summa.Multiply(c, g, sd, summa.Options{}, ga, gb, gc); err != nil {
				panic(err)
			}
		case "cannon":
			cd := cannon.Dims(d)
			da, db, dc := cannon.Dists(g, cd)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				t0 = c.Now()
			}
			if err := cannon.Multiply(c, g, cd, ga, gb, gc); err != nil {
				panic(err)
			}
		case "fox":
			fd := fox.Dims(d)
			da, db, dc := fox.Dists(g, fd)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				t0 = c.Now()
			}
			if err := fox.Multiply(c, g, fd, ga, gb, gc); err != nil {
				panic(err)
			}
		default:
			panic(fmt.Sprintf("unknown algorithm %q", *alg))
		}
	}
	var res *simrt.Result
	injected := 0
	if *chaos {
		// The same deterministic fault plan the real engine uses, consumed
		// as latency/loss events on the simulated fabric: the timeline shows
		// where the pipeline absorbs (or stalls on) the faults.
		plan, perr := faults.NewPlan(faults.Config{
			Seed: *seed, DropRate: 0.05, DelayRate: 0.1, Stragglers: 1,
		}, *procs)
		if perr != nil {
			log.Fatal(perr)
		}
		inner := plan.NetHook()
		hook := func(src, dst int, bytes int64) simnet.Fault {
			f := inner(src, dst, bytes)
			if f.Lost || f.ExtraLatency > 0 {
				injected++
			}
			return f
		}
		res, err = simrt.RunTracedFaults(prof, *procs, tr, hook, body)
	} else {
		res, err = simrt.RunTraced(prof, *procs, tr, body)
	}
	if err != nil {
		log.Fatal(err)
	}

	flops := 2 * float64(*n) * float64(*n) * float64(*n)
	fmt.Printf("%s %dx%dx%d on %s, %d procs (%dx%d grid): %.3f ms, %.1f GFLOP/s\n",
		*alg, *n, *n, *n, prof.Name, *procs, g.P, g.Q, res.Time*1e3, flops/res.Time/1e9)
	fmt.Printf("multiply span on rank 0: %.3f ms\n", (t1-t0)*1e3)
	if *chaos {
		fmt.Printf("chaos: seed %d, %d transfers perturbed (lost or delayed on the fabric)\n", *seed, injected)
	}
	fmt.Println()

	fmt.Printf("timeline (g=gemm w=wait c=copy p=pack b=barrier s=steal):\n")
	fmt.Print(tr.Timeline(*procs, *width, res.Time))

	sum := tr.Summary()
	kinds := make([]string, 0, len(sum))
	for k := range sum {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	total := 0.0
	for _, k := range kinds {
		total += sum[k]
	}
	fmt.Printf("\naggregate activity over %d ranks:\n", *procs)
	for _, k := range kinds {
		fmt.Printf("  %-8s %10.3f ms (%5.1f%%)\n", k, sum[k]*1e3, 100*sum[k]/total)
	}
	busy := sum["gemm"]
	idleish := float64(*procs)*res.Time - total
	fmt.Printf("  %-8s %10.3f ms\n", "idle", idleish*1e3)
	fmt.Printf("\nparallel efficiency (gemm time / total cpu time): %.1f%%\n",
		100*busy/(float64(*procs)*res.Time))

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f, *procs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", *chrome)
	}
}

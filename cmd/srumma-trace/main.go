// Command srumma-trace runs one traced matrix multiplication and renders
// each rank's activity timeline — the double-buffered pipeline made
// visible: g = dgemm, w = waiting on communication, c = shared-memory
// copy, p = pack, b = barrier, s = CPU stolen by staging copies, . = idle.
// Comparing `-alg srumma` with `-alg pdgemm` on the same configuration
// shows exactly where the paper's overlap advantage lives.
//
// Two engines share one event model (internal/obs):
//
//   - `-engine sim` (default) runs the virtual-time performance model of a
//     chosen `-platform`;
//   - `-engine real` runs the actual armci engine on this machine with
//     wall-clock spans — the paper's overlap ratio measured, not modeled.
//
// Usage:
//
//	srumma-trace -platform linux-myrinet -n 1000 -procs 8
//	srumma-trace -platform cray-x1 -n 2000 -procs 16 -blocking
//	srumma-trace -alg pdgemm -n 1000 -procs 8
//	srumma-trace -engine real -n 600 -procs 4 -chrome trace.json
//	srumma-trace -n 600 -procs 16 -chrome trace.json
//	srumma-trace -n 1000 -procs 8 -chaos -seed 7
//	srumma-trace -validate trace.json
//
// Every run appends a machine-readable summary (overlap ratio, per-kind
// busy time) to the file named by -out (default BENCH_trace.json; empty
// disables). -validate checks that a previously exported file is
// well-formed Chrome trace-event JSON and exits.
//
// With -chaos (sim engine only) the seeded fault plan (internal/faults)
// perturbs the simulated fabric — dropped and delayed transfers, one
// straggler node — and the timeline shows where the pipeline absorbs the
// injected latency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"srumma/internal/armci"
	"srumma/internal/cannon"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/fox"
	"srumma/internal/grid"
	"srumma/internal/ipcrt"
	"srumma/internal/machine"
	"srumma/internal/obs"
	"srumma/internal/pdgemm"
	"srumma/internal/rt"
	"srumma/internal/simnet"
	"srumma/internal/simrt"
	"srumma/internal/summa"
)

// traceDoc is the BENCH_trace.json schema: one traced run's headline
// numbers, with the paper's overlap ratio computed from the recorded spans.
type traceDoc struct {
	Engine   string `json:"engine"`
	Alg      string `json:"alg"`
	Platform string `json:"platform,omitempty"` // sim engine only
	N        int    `json:"n"`
	Procs    int    `json:"procs"`
	PPN      int    `json:"ppn,omitempty"` // real engine only

	WallSeconds float64 `json:"wall_s"`
	GFlops      float64 `json:"gflops"`

	// OverlapRatio is 1 - wait/(wait+compute) over each rank's pipelined
	// phase (first gemm start to last gemm end): 1.0 means communication
	// fully hidden behind dgemm.
	OverlapRatio   float64 `json:"overlap_ratio"`
	WaitSeconds    float64 `json:"wait_s"`
	ComputeSeconds float64 `json:"compute_s"`

	// OverlapFloor records the -min-overlap gate the run was held to
	// (omitted when the gate was off). A recorded floor turns this file
	// into a regression baseline: CI re-runs the same configuration and
	// fails if the measured ratio drops below it.
	OverlapFloor float64 `json:"overlap_floor,omitempty"`

	// BusySeconds is per-kind busy time summed over ranks.
	BusySeconds map[string]float64 `json:"busy_s"`

	Chaos bool   `json:"chaos,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`

	// Transport and ExternalWorkers record a multi-host ipc run: the RMA
	// transport in use and how many ranks joined as EXTERNAL workers
	// (srumma-worker -join from another container/host) rather than being
	// spawned by this coordinator. A nonzero count means the overlap
	// ratio above was measured across a real host boundary.
	Transport       string `json:"transport,omitempty"`
	ExternalWorkers int    `json:"external_workers,omitempty"`
}

func main() {
	ipcrt.MaybeWorker() // ipc engine workers re-execute this binary
	log.SetFlags(0)
	log.SetPrefix("srumma-trace: ")
	engine := flag.String("engine", "sim", `engine: "sim" (virtual-time model), "real" (wall-clock armci run) or "ipc" (multi-process workers)`)
	platform := flag.String("platform", "linux-myrinet", "modeled platform (sim engine)")
	alg := flag.String("alg", "srumma", "algorithm: srumma, pdgemm, summa, cannon, fox")
	n := flag.Int("n", 1000, "matrix size (N x N x N)")
	procs := flag.Int("procs", 8, "process count")
	ppn := flag.Int("ppn", 0, "ranks per shared-memory domain (real engine; 0: all on one node)")
	width := flag.Int("width", 100, "timeline width in characters")
	blocking := flag.Bool("blocking", false, "single-buffer blocking gets")
	noshift := flag.Bool("noshift", false, "disable the diagonal-shift ordering")
	chrome := flag.String("chrome", "", "also write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
	out := flag.String("out", "BENCH_trace.json", "write a machine-readable run summary here (empty: skip)")
	outKey := flag.String("key", "", `merge the run summary into -out under this top-level key instead of overwriting the file (e.g. -key multihost keeps the committed sweep alongside)`)
	validate := flag.String("validate", "", "validate a Chrome trace-event JSON file and exit")
	chaos := flag.Bool("chaos", false, "inject deterministic faults into the simulated fabric (drops, delays, one straggler)")
	seed := flag.Uint64("seed", 1, "fault-injection seed (with -chaos)")
	minOverlap := flag.Float64("min-overlap", 0, "fail unless the measured overlap ratio reaches this floor (0: no gate)")
	transport := flag.String("transport", "", `ipc engine RMA transport: "unix" (default) or "tcp" (required for multi-host)`)
	listen := flag.String("listen", "", `bind the ipc coordinator's TCP control listener at "host:port" (implies -transport tcp); with -no-spawn this is the address srumma-worker -join dials`)
	noSpawn := flag.Bool("no-spawn", false, "do not spawn workers: wait for -procs external srumma-worker -join processes (multi-host mode; needs -listen and -dir)")
	runDir := flag.String("dir", "", "shared run directory for ipc segment files and RMA sockets (default: a fresh temp dir; -no-spawn workers must pass the same -dir)")
	sweep := flag.Bool("sweep", false, "run the measured-vs-modeled overlap sweep (block sizes x ppn) instead of one trace")
	sweepNs := flag.String("sweep-n", "192,320,448", "comma-separated matrix sizes for -sweep (block size = n / grid dim)")
	sweepPPNs := flag.String("sweep-ppn", "1,2,4", "comma-separated ranks-per-node values for -sweep")
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			log.Fatal(err)
		}
		slices, err := obs.ValidateChromeTrace(data)
		if err != nil {
			log.Fatalf("%s: %v", *validate, err)
		}
		fmt.Printf("%s: valid Chrome trace-event JSON, %d slices\n", *validate, slices)
		return
	}

	g, err := grid.Square(*procs)
	if err != nil {
		log.Fatal(err)
	}

	if *sweep {
		runSweep(*engine, *platform, *procs, *sweepNs, *sweepPPNs, *out)
		return
	}

	d := core.Dims{M: *n, N: *n, K: *n}
	flops := 2 * float64(*n) * float64(*n) * float64(*n)

	var (
		events []obs.Event
		wall   float64 // run duration on the engine's clock (seconds)
		doc    = traceDoc{Engine: *engine, Alg: *alg, N: *n, Procs: *procs}
	)

	switch *engine {
	case "sim":
		events, wall = runSim(g, d, *platform, *alg, *procs, *width, *blocking, *noshift, *chaos, *seed, *chrome, flops)
		doc.Platform = *platform
		doc.Chaos = *chaos
		if *chaos {
			doc.Seed = *seed
		}
	case "real":
		if *chaos {
			log.Fatal("-chaos models the simulated fabric; use -engine sim (the real engine's fault injection lives in srumma-load)")
		}
		events, wall = runReal(g, d, *alg, *procs, *ppn, *width, *blocking, *noshift, *chrome, flops)
		doc.PPN = *ppn
	case "ipc":
		if *chaos {
			log.Fatal("-chaos models the simulated fabric; use -engine sim")
		}
		if *alg != "srumma" {
			log.Fatalf("-engine ipc runs the srumma algorithm only (got %q)", *alg)
		}
		io := ipcOpts{Transport: *transport, Listen: *listen, NoSpawn: *noSpawn, Dir: *runDir}
		if io.Listen != "" && io.Transport == "" {
			io.Transport = "tcp"
		}
		events, wall = runIPC(g, d, *procs, *ppn, *width, *blocking, *noshift, *chrome, flops, io)
		doc.PPN = *ppn
		doc.Transport = io.Transport
		if *noSpawn {
			doc.ExternalWorkers = *procs
		}
	default:
		log.Fatalf("unknown engine %q (want sim, real or ipc)", *engine)
	}

	// The overlap ratio — the paper's claim as one number — plus per-kind
	// busy time, computed from the same events both engines record.
	wait, compute, ratio := obs.OverlapRatio(events)
	fmt.Printf("\noverlap during pipelined phase: wait %.3f ms, compute %.3f ms, overlap ratio %.3f\n",
		wait*1e3, compute*1e3, ratio)

	doc.WallSeconds = wall
	if wall > 0 {
		doc.GFlops = flops / wall / 1e9
	}
	doc.OverlapRatio = ratio
	doc.WaitSeconds = wait
	doc.ComputeSeconds = compute
	doc.OverlapFloor = *minOverlap
	doc.BusySeconds = obs.Summary(events)
	if *out != "" {
		var payload any = doc
		if *outKey != "" {
			// Keyed write: fold this run into the existing document (the
			// committed BENCH_trace.json keeps its sweep while a multihost
			// run lands beside it).
			merged := map[string]json.RawMessage{}
			if data, err := os.ReadFile(*out); err == nil {
				if err := json.Unmarshal(data, &merged); err != nil {
					log.Fatalf("-key %s: %s is not a JSON object: %v", *outKey, *out, err)
				}
			}
			raw, err := json.Marshal(doc)
			if err != nil {
				log.Fatal(err)
			}
			merged[*outKey] = raw
			payload = merged
		}
		buf, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote run summary to %s\n", *out)
	}
	// Gate after the summary is written, so a regressing run still leaves
	// its evidence on disk.
	if *minOverlap > 0 && ratio < *minOverlap {
		log.Fatalf("overlap ratio %.3f regressed below the %.3f floor", ratio, *minOverlap)
	}
}

// algBody builds the per-rank job for the chosen algorithm. t0/t1 receive
// rank 0's multiply span on the engine's clock. prof is nil on the real
// engine (the flavor heuristic is a property of the modeled platform).
func algBody(g *grid.Grid, d core.Dims, alg string, prof *machine.Profile, blocking, noshift bool, t0, t1 *float64) func(rt.Ctx) {
	return func(c rt.Ctx) {
		if c.Rank() == 0 {
			defer func() { *t1 = c.Now() }()
		}
		switch alg {
		case "srumma":
			opts := core.Options{SingleBuffer: blocking, NoDiagonalShift: noshift}
			if prof != nil && prof.DomainSpansMachine && !prof.RemoteCacheable {
				opts.Flavor = core.FlavorCopy
			}
			da, db, dc := core.Dists(g, d, opts.Case)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				*t0 = c.Now()
			}
			if err := core.Multiply(c, g, d, opts, ga, gb, gc); err != nil {
				panic(err)
			}
		case "pdgemm":
			pd := pdgemm.Dims(d)
			da, db, dc, err := pdgemm.Dists(g, pd, pdgemm.NN, 0)
			if err != nil {
				panic(err)
			}
			ga := driver.AllocCyclic(c, da)
			gb := driver.AllocCyclic(c, db)
			gc := driver.AllocCyclic(c, dc)
			if c.Rank() == 0 {
				*t0 = c.Now()
			}
			if err := pdgemm.Multiply(c, g, pd, pdgemm.Options{}, ga, gb, gc); err != nil {
				panic(err)
			}
		case "summa":
			sd := summa.Dims(d)
			da, db, dc := summa.Dists(g, sd, summa.NN)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				*t0 = c.Now()
			}
			if err := summa.Multiply(c, g, sd, summa.Options{}, ga, gb, gc); err != nil {
				panic(err)
			}
		case "cannon":
			cd := cannon.Dims(d)
			da, db, dc := cannon.Dists(g, cd)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				*t0 = c.Now()
			}
			if err := cannon.Multiply(c, g, cd, ga, gb, gc); err != nil {
				panic(err)
			}
		case "fox":
			fd := fox.Dims(d)
			da, db, dc := fox.Dists(g, fd)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if c.Rank() == 0 {
				*t0 = c.Now()
			}
			if err := fox.Multiply(c, g, fd, ga, gb, gc); err != nil {
				panic(err)
			}
		default:
			panic(fmt.Sprintf("unknown algorithm %q", alg))
		}
	}
}

// printActivity renders the shared tail of both engines' reports: the
// per-kind busy breakdown and parallel efficiency over `horizon` seconds.
func printActivity(events []obs.Event, procs int, horizon float64) {
	sum := obs.Summary(events)
	kinds := make([]string, 0, len(sum))
	for k := range sum {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	total := 0.0
	for _, k := range kinds {
		total += sum[k]
	}
	fmt.Printf("\naggregate activity over %d ranks:\n", procs)
	for _, k := range kinds {
		fmt.Printf("  %-8s %10.3f ms (%5.1f%%)\n", k, sum[k]*1e3, 100*sum[k]/total)
	}
	busy := sum["gemm"]
	idleish := float64(procs)*horizon - total
	fmt.Printf("  %-8s %10.3f ms\n", "idle", idleish*1e3)
	fmt.Printf("\nparallel efficiency (gemm time / total cpu time): %.1f%%\n",
		100*busy/(float64(procs)*horizon))
}

// runSim runs the virtual-time engine. Its stdout report (through the
// parallel-efficiency line) predates the obs refactor and is preserved
// byte-for-byte; the simrt golden test pins the rendering underneath it.
func runSim(g *grid.Grid, d core.Dims, platform, alg string, procs, width int, blocking, noshift, chaos bool, seed uint64, chrome string, flops float64) ([]obs.Event, float64) {
	prof, err := machine.ByName(platform)
	if err != nil {
		log.Fatal(err)
	}
	tr := &simrt.Tracer{}
	var t0, t1 float64
	body := algBody(g, d, alg, &prof, blocking, noshift, &t0, &t1)

	var res *simrt.Result
	injected := 0
	if chaos {
		// The same deterministic fault plan the real engine uses, consumed
		// as latency/loss events on the simulated fabric: the timeline shows
		// where the pipeline absorbs (or stalls on) the faults.
		plan, perr := faults.NewPlan(faults.Config{
			Seed: seed, DropRate: 0.05, DelayRate: 0.1, Stragglers: 1,
		}, procs)
		if perr != nil {
			log.Fatal(perr)
		}
		inner := plan.NetHook()
		hook := func(src, dst int, bytes int64) simnet.Fault {
			f := inner(src, dst, bytes)
			if f.Lost || f.ExtraLatency > 0 {
				injected++
			}
			return f
		}
		res, err = simrt.RunTracedFaults(prof, procs, tr, hook, body)
	} else {
		res, err = simrt.RunTraced(prof, procs, tr, body)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s %dx%dx%d on %s, %d procs (%dx%d grid): %.3f ms, %.1f GFLOP/s\n",
		alg, d.M, d.N, d.K, prof.Name, procs, g.P, g.Q, res.Time*1e3, flops/res.Time/1e9)
	fmt.Printf("multiply span on rank 0: %.3f ms\n", (t1-t0)*1e3)
	if chaos {
		fmt.Printf("chaos: seed %d, %d transfers perturbed (lost or delayed on the fabric)\n", seed, injected)
	}
	fmt.Println()

	fmt.Printf("timeline (g=gemm w=wait c=copy p=pack b=barrier s=steal):\n")
	fmt.Print(tr.Timeline(procs, width, res.Time))
	printActivity(tr.Events(), procs, res.Time)

	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteChromeTrace(f, procs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", chrome)
	}
	return tr.Events(), res.Time
}

// runReal runs the armci engine on this machine with an unbounded span
// recorder attached — wall-clock spans from the same instrumentation the
// serving layer exposes at /debug/trace.
func runReal(g *grid.Grid, d core.Dims, alg string, procs, ppn, width int, blocking, noshift bool, chrome string, flops float64) ([]obs.Event, float64) {
	if ppn <= 0 {
		ppn = procs
	}
	topo := rt.Topology{NProcs: procs, ProcsPerNode: ppn, DomainSpansMachine: ppn >= procs}
	if err := topo.Validate(); err != nil {
		log.Fatal(err)
	}
	rec := obs.NewRecorder(procs, 0)
	var t0, t1 float64
	body := algBody(g, d, alg, nil, blocking, noshift, &t0, &t1)
	w0 := time.Now()
	if _, err := armci.RunTraced(topo, rec, body); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(w0).Seconds()
	events := rec.Events()

	fmt.Printf("%s %dx%dx%d on real engine, %d procs (%dx%d grid, %d/node): %.3f ms, %.1f GFLOP/s\n",
		alg, d.M, d.N, d.K, procs, g.P, g.Q, ppn, wall*1e3, flops/wall/1e9)
	fmt.Printf("multiply span on rank 0: %.3f ms\n", (t1-t0)*1e3)
	fmt.Println()

	// Horizon on the recorder's clock: the ranks' spans end before
	// RunTraced returns (team teardown is outside them), so render against
	// the last recorded instant rather than the enclosing wall time.
	horizon := 0.0
	for _, e := range events {
		if e.End > horizon {
			horizon = e.End
		}
	}
	fmt.Printf("timeline (g=gemm w=wait t=get u=put c=copy p=pack b=barrier i=issue j=job):\n")
	fmt.Print(obs.Timeline(events, procs, width, horizon))
	// Job spans envelope a rank's whole run and issue spans envelope the
	// NbGet calls they bracket — everything inside both is also recorded —
	// so they'd double-count in a busy/idle breakdown; report leaf spans.
	busy := make([]obs.Event, 0, len(events))
	for _, e := range events {
		if e.Kind != obs.KindJob && e.Kind != obs.KindIssue {
			busy = append(busy, e)
		}
	}
	printActivity(busy, procs, horizon)

	if chrome != "" {
		f, err := os.Create(chrome)
		if err != nil {
			log.Fatal(err)
		}
		if err := obs.WriteChromeTrace(f, events, procs, "srumma real run"); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open in chrome://tracing or ui.perfetto.dev)\n", chrome)
	}
	return events, wall
}

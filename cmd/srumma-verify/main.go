// Command srumma-verify runs a cross-algorithm correctness sweep on the
// real execution engine: SRUMMA (all transpose cases, all ablation
// variants), SUMMA, pdgemm and Cannon are checked against the serial
// reference multiply over a range of shapes, grids and node widths. Exit
// status 0 means every configuration produced the correct product.
//
// Usage:
//
//	srumma-verify            # standard sweep
//	srumma-verify -seed 7    # different random inputs
//	srumma-verify -max 40    # larger matrices (slower)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"srumma"
	"srumma/internal/mat"
)

type check struct {
	name    string
	procs   int
	ppn     int
	shared  bool
	m, n, k int
	opts    srumma.MultiplyOptions
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("srumma-verify: ")
	seed := flag.Uint64("seed", 1, "seed for the random inputs")
	max := flag.Int("max", 28, "largest matrix dimension in the sweep")
	flag.Parse()

	var checks []check
	cases := []srumma.Case{srumma.NN, srumma.TN, srumma.NT, srumma.TT}
	// SRUMMA across cases, grids and node widths.
	for i, cs := range cases {
		checks = append(checks,
			check{name: fmt.Sprintf("srumma/%v/2x2", cs), procs: 4, ppn: 2, m: *max, n: *max, k: *max,
				opts: srumma.MultiplyOptions{Case: cs}},
			check{name: fmt.Sprintf("srumma/%v/2x3", cs), procs: 6, ppn: 2, m: *max - 3, n: *max - 1, k: *max + 5,
				opts: srumma.MultiplyOptions{Case: cs}},
			check{name: fmt.Sprintf("srumma/%v/shared-machine", cs), procs: 4, ppn: 2, shared: true,
				m: *max - i, n: *max, k: *max - 2, opts: srumma.MultiplyOptions{Case: cs}},
		)
	}
	// SRUMMA ablations.
	for _, ab := range []struct {
		name string
		opts srumma.MultiplyOptions
	}{
		{"no-diagonal-shift", srumma.MultiplyOptions{NoDiagonalShift: true}},
		{"no-shared-first", srumma.MultiplyOptions{NoSharedFirst: true}},
		{"single-buffer", srumma.MultiplyOptions{SingleBuffer: true}},
	} {
		checks = append(checks, check{name: "srumma/" + ab.name, procs: 6, ppn: 3,
			m: *max, n: *max, k: *max, opts: ab.opts})
	}
	// Baselines.
	for _, cs := range cases {
		checks = append(checks,
			check{name: fmt.Sprintf("summa/%v", cs), procs: 6, ppn: 2, m: *max, n: *max - 2, k: *max + 3,
				opts: srumma.MultiplyOptions{Case: cs, Algorithm: srumma.AlgSUMMA, NB: 5}},
			check{name: fmt.Sprintf("pdgemm/%v", cs), procs: 6, ppn: 2, m: *max - 1, n: *max, k: *max + 1,
				opts: srumma.MultiplyOptions{Case: cs, Algorithm: srumma.AlgPdgemm, NB: 4}},
		)
	}
	checks = append(checks,
		check{name: "cannon/3x3", procs: 9, ppn: 3, m: *max, n: *max, k: *max,
			opts: srumma.MultiplyOptions{Algorithm: srumma.AlgCannon}},
		check{name: "fox/3x3", procs: 9, ppn: 3, m: *max + 2, n: *max - 2, k: *max,
			opts: srumma.MultiplyOptions{Algorithm: srumma.AlgFox}},
		check{name: "rectangular/mk", procs: 4, ppn: 2, m: 2 * *max, n: *max / 2, k: *max,
			opts: srumma.MultiplyOptions{}},
		check{name: "rectangular/k-heavy", procs: 4, ppn: 2, m: *max / 2, n: *max / 2, k: 3 * *max,
			opts: srumma.MultiplyOptions{}},
	)

	failed := 0
	for _, ck := range checks {
		if err := runCheck(ck, *seed); err != nil {
			failed++
			fmt.Printf("FAIL %-32s %v\n", ck.name, err)
			continue
		}
		fmt.Printf("ok   %-32s %dx%dx%d on %d procs\n", ck.name, ck.m, ck.n, ck.k, ck.procs)
	}
	if failed > 0 {
		log.Printf("%d of %d checks failed", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(checks))
}

func runCheck(ck check, seed uint64) error {
	cl, err := srumma.NewCluster(ck.procs, ck.ppn, ck.shared)
	if err != nil {
		return err
	}
	cs := ck.opts.Case
	ar, ac := ck.m, ck.k
	if cs.TransA() {
		ar, ac = ck.k, ck.m
	}
	br, bc := ck.k, ck.n
	if cs.TransB() {
		br, bc = ck.n, ck.k
	}
	a := srumma.RandomMatrix(ar, ac, seed)
	b := srumma.RandomMatrix(br, bc, seed+1)
	got, _, err := cl.Multiply(a, b, ck.opts)
	if err != nil {
		return err
	}
	want := srumma.NewMatrix(ck.m, ck.n)
	if err := mat.GemmNaive(cs.TransA(), cs.TransB(), 1, a, b, 0, want); err != nil {
		return err
	}
	if d := mat.MaxAbsDiff(got, want); d > 1e-10*float64(ck.k) {
		return fmt.Errorf("max abs diff %g", d)
	}
	return nil
}

// Command srumma-info prints the runtime kernel capability of THIS machine
// (which micro-kernel the CPUID/OS gate selected, default kernel-thread
// counts) followed by the modeled platform profiles and the analytic
// predictions of the paper's §2.1 efficiency model for each, so a user can
// see exactly what the reproduction rests on.
//
// Usage:
//
//	srumma-info                 # runtime capability + all platforms
//	srumma-info -platform cray-x1
//	srumma-info -runtime        # runtime capability only
package main

import (
	"flag"
	"fmt"
	"log"
	goruntime "runtime"

	"srumma/internal/armci"
	"srumma/internal/bench"
	"srumma/internal/core"
	"srumma/internal/hier"
	"srumma/internal/ipcrt"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("srumma-info: ")
	name := flag.String("platform", "", "show only this platform")
	runtimeOnly := flag.Bool("runtime", false, "show only this machine's runtime capability")
	flag.Parse()

	if *name == "" {
		showRuntime()
	}
	if *runtimeOnly {
		return
	}

	profiles := []machine.Profile{
		machine.LinuxMyrinet(), machine.IBMSP(), machine.CrayX1(), machine.SGIAltix(),
	}
	for _, p := range profiles {
		if *name != "" && p.Name != *name {
			continue
		}
		show(p)
	}
	if *name != "" {
		if _, err := machine.ByName(*name); err != nil {
			log.Fatal(err)
		}
	}
}

// showRuntime reports what the real engine will actually use on this
// machine: the micro-kernel that passed its feature gate and the per-rank
// kernel-thread defaults the oversubscription guard computes.
func showRuntime() {
	fmt.Println("runtime (this machine)")
	fmt.Printf("  micro-kernel: %s (vector gate passed: %v)\n", mat.KernelName(), mat.HasVectorKernel())
	fmt.Printf("  GOMAXPROCS: %d (NumCPU %d)\n", goruntime.GOMAXPROCS(0), goruntime.NumCPU())
	fmt.Printf("  default kernel threads/rank:")
	for _, nprocs := range []int{1, 4, 16} {
		fmt.Printf(" %d ranks: %d;", nprocs, armci.DefaultKernelThreads(nprocs))
	}
	fmt.Println()
	ipcState := "unavailable (no mmap shared segments on this platform)"
	if ipcrt.Available() {
		ipcState = "available (mmap segments + unix-socket RMA; srumma-bench/-trace -engine ipc)"
	}
	fmt.Printf("  engines: armci (in-process), sim (virtual time), ipc %s\n", ipcState)
	fmt.Println()
}

func show(p machine.Profile) {
	fmt.Printf("platform %s\n", p.Name)
	fmt.Printf("  topology: %d procs/node", p.ProcsPerNode)
	if p.DomainSpansMachine {
		fmt.Printf(", machine-wide shared memory (remote cacheable: %v)", p.RemoteCacheable)
	}
	fmt.Println()
	fmt.Printf("  dgemm: %.2f GFLOP/s asymptotic, surface overhead %.0f flops/elem\n",
		p.PeakFlops/1e9, p.GemmSurface)
	fmt.Printf("         rate at 64³: %.2f, 256³: %.2f, 1024³: %.2f GFLOP/s\n",
		p.GemmRate(64, 64, 64, false)/1e9,
		p.GemmRate(256, 256, 256, false)/1e9,
		p.GemmRate(1024, 1024, 1024, false)/1e9)
	fmt.Printf("  memory: %.1f GB/s port, %.1f GB/s single-copy, %.2f us latency\n",
		p.MemBW/1e9, p.CopyBW/1e9, p.MemLatency*1e6)
	fmt.Printf("  network: %.2f GB/s per NIC, %.1f us latency\n", p.NetBW/1e9, p.NetLatency*1e6)
	fmt.Printf("  RMA: %.1f us get overhead, zero-copy %v", p.RMALatency*1e6, p.ZeroCopy)
	if !p.ZeroCopy {
		fmt.Printf(" (staging at %.0f MB/s)", p.HostCopyBW/1e6)
	}
	fmt.Println()
	fmt.Printf("  MPI: %.1f us latency, %.0f MB/s effective, eager threshold %d B\n",
		p.MPILatency*1e6, p.MPIBW/1e6, p.EagerThreshold)

	fmt.Printf("  model predictions (eq. 1/3), N=2000:\n")
	fmt.Printf("    %6s %16s %16s\n", "P", "no overlap (s)", "full overlap (s)")
	for _, procs := range []int{4, 16, 64} {
		fmt.Printf("    %6d %16.4g %16.4g\n", procs,
			bench.PredictSRUMMA(p, 2000, procs, false),
			bench.PredictSRUMMA(p, 2000, procs, true))
	}

	// The two-level carving the hierarchical planner would choose on this
	// platform: groups x intra-group shape, with the predicted per-level
	// communication volume next to the flat pipeline's.
	fmt.Printf("  two-level topology (chosen by hier.Choose), N=2000:\n")
	fmt.Printf("    %6s %10s %12s %14s %14s %14s\n",
		"P", "grid", "groups", "flat remote", "outer remote", "band copies")
	for _, procs := range []int{4, 16, 64} {
		topo := rt.Topology{
			NProcs:             procs,
			ProcsPerNode:       p.ProcsPerNode,
			DomainSpansMachine: p.DomainSpansMachine,
		}
		d := core.Dims{M: 2000, N: 2000, K: 2000}
		ht, err := hier.Choose(topo, d, hier.Options{})
		if err != nil {
			fmt.Printf("    %6d  unavailable: %v\n", procs, err)
			continue
		}
		gr, gc := ht.GroupShape(0)
		v := hier.PredictVolumes(ht, d, hier.Options{})
		fmt.Printf("    %6d %10s %6d x %dx%d %14d %14d %14d\n",
			procs, fmt.Sprintf("%dx%d", ht.Grid.P, ht.Grid.Q),
			ht.NumGroups(), gr, gc, v.FlatRemote, v.OuterRemote, v.InnerCopy)
	}
	fmt.Println()
}

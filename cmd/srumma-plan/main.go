// Command srumma-plan prints one process's SRUMMA execution plan — the
// task list of paper §3.1 made inspectable: which blocks of A and B the
// process multiplies, in what order (shared-memory tasks first, remote
// tasks along the diagonal shift), which tasks access operands directly vs
// through the double-buffered fetch pipeline, and the resulting fetch
// schedule with its buffer assignments.
//
// Usage:
//
//	srumma-plan -n 600 -procs 16 -ppn 4 -rank 0
//	srumma-plan -n 600 -procs 16 -ppn 4 -rank 0 -case TT -noshift
package main

import (
	"flag"
	"fmt"
	"log"

	"srumma/internal/core"
	"srumma/internal/grid"
	"srumma/internal/hier"
	"srumma/internal/rt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("srumma-plan: ")
	n := flag.Int("n", 600, "matrix size (N x N x N)")
	procs := flag.Int("procs", 16, "process count")
	ppn := flag.Int("ppn", 4, "processes per shared-memory node")
	rank := flag.Int("rank", 0, "rank whose plan to print")
	shared := flag.Bool("shared-machine", false, "one machine-wide shared-memory domain")
	caseName := flag.String("case", "NN", "transpose case: NN, TN, NT, TT")
	noshift := flag.Bool("noshift", false, "disable the diagonal-shift ordering")
	nosharedfirst := flag.Bool("nosharedfirst", false, "disable shared-memory-first ordering")
	maxK := flag.Int("maxk", 0, "task-granularity cap along k (0 = whole blocks)")
	hierOn := flag.Bool("hier", false, "also print the two-level (hierarchical) topology and outer panel schedule")
	flag.Parse()

	var cs core.Case
	switch *caseName {
	case "NN":
		cs = core.NN
	case "TN":
		cs = core.TN
	case "NT":
		cs = core.NT
	case "TT":
		cs = core.TT
	default:
		log.Fatalf("unknown case %q", *caseName)
	}
	topo := rt.Topology{NProcs: *procs, ProcsPerNode: *ppn, DomainSpansMachine: *shared}
	if err := topo.Validate(); err != nil {
		log.Fatal(err)
	}
	if *rank < 0 || *rank >= *procs {
		log.Fatalf("rank %d outside [0,%d)", *rank, *procs)
	}
	g, err := grid.Square(*procs)
	if err != nil {
		log.Fatal(err)
	}
	d := core.Dims{M: *n, N: *n, K: *n}
	opts := core.Options{
		Case:            cs,
		NoDiagonalShift: *noshift,
		NoSharedFirst:   *nosharedfirst,
		MaxTaskK:        *maxK,
	}
	tasks := core.Plan(topo, *rank, g, d, opts)

	row, col := g.Coords(*rank)
	fmt.Printf("plan for rank %d = P(%d,%d) on a %dx%d grid, node %d (domain %d)\n",
		*rank, row, col, g.P, g.Q, topo.NodeOf(*rank), topo.DomainOf(*rank))
	fmt.Printf("%s, %dx%dx%d, %d tasks\n\n", cs, *n, *n, *n, len(tasks))

	fmt.Printf("%4s %5s  %-22s %-22s %-18s %s\n", "#", "kIdx", "A operand", "B operand", "C view", "flags")
	nShared, nFetchA, nFetchB := 0, 0, 0
	for i, t := range tasks {
		aAcc, bAcc := "fetch", "fetch"
		if t.ADirect {
			aAcc = "direct"
		} else {
			nFetchA++
		}
		if t.BDirect {
			bAcc = "direct"
		} else {
			nFetchB++
		}
		if t.ADirect && t.BDirect {
			nShared++
		}
		flags := ""
		if t.First {
			flags = "first(beta=0)"
		}
		fmt.Printf("%4d %5d  r%-3d %-6s %dx%d@(%d,%d)  r%-3d %-6s %dx%d@(%d,%d)  (%d,%d)+%dx%d  %s\n",
			i, t.KIdx,
			t.AOwner, aAcc, t.ASubR, t.ASubC, t.ASubI, t.ASubJ,
			t.BOwner, bAcc, t.BSubR, t.BSubC, t.BSubI, t.BSubJ,
			t.CI, t.CJ, t.CR, t.CC, flags)
	}
	fmt.Printf("\n%d tasks fully in shared memory (run first, warming the pipeline)\n", nShared)
	fmt.Printf("%d A fetches, %d B fetches through the double-buffered nonblocking pipeline\n", nFetchA, nFetchB)

	// Node spread of the first remote fetch per node-mate: the diagonal
	// shift's contention story.
	fmt.Printf("\nfirst remote A-fetch target node, per rank on node %d:\n", topo.NodeOf(*rank))
	base := topo.NodeOf(*rank) * *ppn
	for r := base; r < base+*ppn && r < *procs; r++ {
		rtasks := core.Plan(topo, r, g, d, opts)
		target := -1
		for _, t := range rtasks {
			if !t.ADirect {
				target = topo.NodeOf(t.AOwner)
				break
			}
		}
		fmt.Printf("  rank %3d -> node %d\n", r, target)
	}

	if *hierOn {
		printHier(topo, g, *rank, d, opts)
	}
}

// printHier reports the two-level carving: the group grid, this rank's
// group and intra-group shape, the predicted communication volume per
// level (outer staged gets vs the flat pipeline's), and the rank's group
// panel schedule in outer (group-level diagonal-shifted) order.
func printHier(topo rt.Topology, g *grid.Grid, rank int, d core.Dims, opts core.Options) {
	ht := hier.From(topo, g)
	fmt.Printf("\ntwo-level topology:\n")
	if err := ht.Validate(); err != nil {
		fmt.Printf("  hierarchical mode unavailable: %v\n", err)
		return
	}
	grp := ht.GroupOf(rank)
	gr, gc := ht.GroupShape(grp)
	lo, hi := ht.GroupRanks(grp)
	fmt.Printf("  %d groups x %d ranks; rank %d in group %d (ranks %d..%d), intra-group shape %dx%d\n",
		ht.NumGroups(), hi-lo, rank, grp, lo, hi-1, gr, gc)

	v := hier.PredictVolumes(ht, d, hier.Options{Options: opts})
	fmt.Printf("  predicted comm volume (elements):\n")
	fmt.Printf("    flat:  %12d remote  %12d shared\n", v.FlatRemote, v.FlatShared)
	fmt.Printf("    hier:  %12d remote (outer staged)  %12d shared  %12d band copies (inner)\n",
		v.OuterRemote, v.OuterShared, v.InnerCopy)

	panels := hier.Schedule(ht, grp, d, hier.Options{Options: opts})
	fmt.Printf("  group %d outer panel schedule (%d panels):\n", grp, len(panels))
	for i, p := range panels {
		fmt.Printf("    panel %2d: owner group %2d, %3d regions, %9d elements\n",
			i, p.OwnerGroup, len(p.Regions), p.Elems)
	}
}

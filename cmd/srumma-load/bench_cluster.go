package main

// Self-contained serving benchmarks added with the cluster subsystem:
//
//   - -bench-cluster: the sharded-vs-in-process arm — one request stream
//     served by an in-process SRUMMA server and by cluster servers (unix
//     and tcp node transports), every response held bit-identical across
//     arms and verified against the serial kernel;
//   - -bench-cache: cache-aware load shaping — a shared-weights profile
//     (few operand sets revisited by many requests) swept across result
//     cache capacity and TTL, recording hit rate and the throughput
//     multiplier over the cache-off baseline;
//   - -bench-overload: breaker/brownout policy sweep — a seeded
//     silent-corruption fault rate that ABFT cannot always clear produces
//     honest 500s for the breaker arms (500-rate vs availability as the
//     threshold tightens), and a deep-queue profile drives the brownout
//     arms (shed fraction vs latency/throughput).
//
// All three merge their results as keyed sections of BENCH_server.json
// (writeSection), so the document accumulates wire, cluster, cache and
// overload arms instead of each run clobbering the others.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"srumma/internal/faults"
	"srumma/internal/mat"
	"srumma/internal/server"
)

// writeSection merges one keyed section into the JSON document at path,
// preserving every other top-level key already recorded there. A missing
// or non-object document starts fresh.
func writeSection(path, key string, v any) {
	doc := map[string]json.RawMessage{}
	if path != "-" {
		if raw, err := os.ReadFile(path); err == nil {
			if err := json.Unmarshal(raw, &doc); err != nil {
				doc = map[string]json.RawMessage{}
			}
		}
	}
	raw, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	doc[key] = raw
	writeJSONFile(doc, path)
}

// servedResult is one response as the bench arms observe it.
type servedResult struct {
	status  int
	latency float64 // seconds
	route   string
	c       []float64
	err     error
}

// postJSON issues one JSON-wire request and decodes the response,
// returning failures as statuses rather than fatal errors so overload
// arms can count 500s and 503s.
func postJSON(client *http.Client, addr string, body []byte) servedResult {
	t0 := time.Now()
	resp, err := client.Post(addr+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		return servedResult{err: err}
	}
	defer resp.Body.Close()
	r := servedResult{status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		var eresp struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&eresp)
		r.latency = time.Since(t0).Seconds()
		r.err = fmt.Errorf("status %d: %s", resp.StatusCode, eresp.Error)
		return r
	}
	var m server.MultiplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		r.err = err
		return r
	}
	r.latency = time.Since(t0).Seconds()
	r.route = m.Route
	r.c = m.C
	return r
}

// driveArm issues the request bodies picked by pick through a worker pool
// against addr and returns every outcome in request order.
func driveArm(addr string, pick func(int) []byte, requests, concurrency int) ([]servedResult, float64) {
	results := make([]servedResult, requests)
	jobs := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{}
	t0 := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = postJSON(client, addr, pick(i))
			}
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, time.Since(t0).Seconds()
}

func latencyStats(results []servedResult) (p50, p99, mean float64) {
	var ok []float64
	var sum float64
	for _, r := range results {
		if r.err == nil {
			ok = append(ok, r.latency)
			sum = sum + r.latency
		}
	}
	sort.Float64s(ok)
	if len(ok) == 0 {
		return 0, 0, 0
	}
	return percentile(ok, 0.50) * 1e3, percentile(ok, 0.99) * 1e3, sum / float64(len(ok)) * 1e3
}

// ---------------------------------------------------------------------------
// -bench-cluster: sharded vs in-process serving.

const (
	clusterBenchDim      = 192
	clusterBenchRequests = 24
	clusterBenchConc     = 4
	clusterBenchVariants = 6
)

// ClusterArmReport is one serving arrangement's view of the shared
// request stream.
type ClusterArmReport struct {
	Mode          string  `json:"mode"` // in_process | cluster_unix | cluster_tcp
	Nodes         int     `json:"nodes,omitempty"`
	Route         string  `json:"route"`
	OK            int     `json:"ok"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	WallSeconds   float64 `json:"wall_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	ClusterJobs   int64   `json:"cluster_jobs,omitempty"`
}

// ClusterBenchReport is the "cluster" section of BENCH_server.json: an
// identical request stream served in-process and sharded across worker
// nodes over both node transports, with every response bit-identical
// across arms.
type ClusterBenchReport struct {
	Shape       string `json:"shape"`
	Requests    int    `json:"requests_per_arm"`
	Concurrency int    `json:"concurrency"`
	NProcs      int    `json:"nprocs"`
	PPN         int    `json:"ppn"`

	InProcess   ClusterArmReport `json:"in_process"`
	ClusterUnix ClusterArmReport `json:"cluster_unix"`
	ClusterTCP  ClusterArmReport `json:"cluster_tcp"`

	// ShardedVsInProcessX is in-process p50 over cluster (unix) p50: the
	// cost (or gain) of moving the distributed route onto worker
	// processes on this machine.
	ShardedVsInProcessX float64 `json:"sharded_vs_in_process_p50_x"`
	BitIdentical        bool    `json:"bit_identical"`
}

// runClusterArm serves the stream from a fresh server with cfg and checks
// every response against the per-variant references (serial tolerance; nil
// refs means this arm records them for the later bit-identity check).
func runClusterArm(mode string, cfg server.Config, bodies [][]byte, wantRoute string, refs [][]float64) (ClusterArmReport, [][]float64) {
	s, err := server.New(cfg)
	if err != nil {
		log.Fatalf("cluster bench (%s): %v", mode, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pick := func(i int) []byte { return bodies[i%len(bodies)] }
	// Warm the engine (and, for cluster arms, the node segment pools)
	// before timing.
	if r := postJSON(&http.Client{}, ts.URL, bodies[0]); r.err != nil {
		log.Fatalf("cluster bench (%s) warmup: %v", mode, r.err)
	}
	results, wall := driveArm(ts.URL, pick, clusterBenchRequests, clusterBenchConc)

	got := make([][]float64, len(bodies))
	arm := ClusterArmReport{Mode: mode, WallSeconds: wall}
	for i, r := range results {
		if r.err != nil {
			log.Fatalf("cluster bench (%s) request %d: %v", mode, i, r.err)
		}
		if r.route != wantRoute {
			log.Fatalf("cluster bench (%s) request %d: route %q, want %q", mode, i, r.route, wantRoute)
		}
		arm.OK++
		v := i % len(bodies)
		if got[v] == nil {
			got[v] = r.c
		}
		if refs != nil {
			for j := range r.c {
				if math.Float64bits(r.c[j]) != math.Float64bits(refs[v][j]) {
					log.Fatalf("cluster bench (%s) request %d: element %d = %v, want %v (not bit-identical to in-process)",
						mode, i, j, r.c[j], refs[v][j])
				}
			}
		}
	}
	arm.Route = wantRoute
	arm.P50Ms, arm.P99Ms, arm.MeanMs = latencyStats(results)
	if wall > 0 {
		arm.ThroughputRPS = float64(arm.OK) / wall
	}
	snap := s.Metrics()
	arm.Nodes = len(snap.Cluster)
	for _, nd := range snap.Cluster {
		arm.ClusterJobs += nd.Jobs
	}
	shutdownServer(s, mode)
	return arm, got
}

func shutdownServer(s *server.Server, label string) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatalf("%s shutdown: %v", label, err)
	}
}

// runBenchCluster measures the sharded serving path against the
// in-process one on an identical stream and pins bit-identity between
// them — the acceptance gate for routing /v1/multiply across OS-process
// worker nodes.
func runBenchCluster(out string, seed uint64) {
	dim := clusterBenchDim
	bodies := make([][]byte, clusterBenchVariants)
	wants := make([]*mat.Matrix, clusterBenchVariants)
	for v := range bodies {
		vseed := seed + 300 + uint64(2*v)
		a := mat.Random(dim, dim, vseed)
		b := mat.Random(dim, dim, vseed+1)
		wants[v] = mat.New(dim, dim)
		if err := mat.Gemm(false, false, 1, a, b, 0, wants[v]); err != nil {
			log.Fatal(err)
		}
		req := server.MultiplyRequest{
			ID:    fmt.Sprintf("bench-cluster-%d", v),
			ARows: dim, ACols: dim, A: a.Data,
			BRows: dim, BCols: dim, B: b.Data,
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		bodies[v] = body
	}

	base := server.Config{
		NProcs:         4,
		ProcsPerNode:   2,
		Teams:          2,
		SmallMNK:       1, // everything on the distributed route
		DefaultTimeout: 60 * time.Second,
	}
	rep := ClusterBenchReport{
		Shape:       shape{dim, dim, dim}.String(),
		Requests:    clusterBenchRequests,
		Concurrency: clusterBenchConc,
		NProcs:      base.NProcs,
		PPN:         base.ProcsPerNode,
	}

	var refs [][]float64
	rep.InProcess, refs = runClusterArm("in_process", base, bodies, "srumma", nil)
	for v, ref := range refs {
		got := &mat.Matrix{Rows: dim, Cols: dim, Stride: dim, Data: ref}
		if diff := mat.MaxAbsDiff(got, wants[v]); diff > 1e-9*float64(dim) {
			log.Fatalf("cluster bench: in-process variant %d diverges from serial kernel by %g", v, diff)
		}
	}

	unixCfg := base
	unixCfg.Cluster = true
	unixCfg.ClusterNodes = 2
	rep.ClusterUnix, _ = runClusterArm("cluster_unix", unixCfg, bodies, "cluster", refs)

	tcpCfg := unixCfg
	tcpCfg.ClusterTransport = "tcp"
	rep.ClusterTCP, _ = runClusterArm("cluster_tcp", tcpCfg, bodies, "cluster", refs)

	// runClusterArm fatals on the first non-identical element, so reaching
	// here means every cluster response matched the in-process bits.
	rep.BitIdentical = true
	if p50 := rep.ClusterUnix.P50Ms; p50 > 0 {
		rep.ShardedVsInProcessX = rep.InProcess.P50Ms / p50
	}

	writeSection(out, "cluster", &rep)
	fmt.Printf("cluster: %s p50 %.1f ms in-process vs %.1f ms sharded/unix vs %.1f ms sharded/tcp (%d nodes, %d jobs); bit-identical %v\n",
		rep.Shape, rep.InProcess.P50Ms, rep.ClusterUnix.P50Ms, rep.ClusterTCP.P50Ms,
		rep.ClusterUnix.Nodes, rep.ClusterUnix.ClusterJobs, rep.BitIdentical)
}

// ---------------------------------------------------------------------------
// -bench-cache: cache-aware load shaping.

const (
	// 256^3: big enough that the compute a hit elides dominates the
	// request's wire cost, so the throughput multiplier measures the
	// cache rather than JSON parsing.
	cacheBenchDim      = 256
	cacheBenchRequests = 32
	cacheBenchConc     = 6
	cacheBenchWeights  = 6 // distinct operand sets cycled ("shared weights")
)

// CacheArmReport is one cache configuration under the shared-weights
// profile.
type CacheArmReport struct {
	CacheEntries  int     `json:"cache_entries"`
	CacheTTLMs    int64   `json:"cache_ttl_ms,omitempty"`
	OK            int     `json:"ok"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	CacheHits     int64   `json:"cache_hits"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	// ThroughputX is this arm's throughput over the cache-off baseline.
	ThroughputX float64 `json:"throughput_x"`
}

// CacheBenchReport is the "cache_shaping" section of BENCH_server.json:
// hit rate and throughput multiplier as capacity and TTL vary under a
// fixed revisit-heavy stream.
type CacheBenchReport struct {
	Shape       string `json:"shape"`
	Requests    int    `json:"requests_per_arm"`
	Concurrency int    `json:"concurrency"`
	// Weights is how many distinct operand sets the stream cycles; every
	// request repeats one of them, like inference traffic sharing weight
	// matrices.
	Weights int `json:"weights"`

	Arms []CacheArmReport `json:"arms"`
}

// runBenchCache sweeps result-cache capacity and TTL under a
// shared-weights profile: cacheBenchWeights operand sets revisited
// round-robin, so a cache that holds them all converts every revisit into
// a hit while an undersized or fast-expiring one keeps recomputing.
func runBenchCache(out string, seed uint64) {
	dim := cacheBenchDim
	sh := []shape{{dim, dim, dim}}
	// Binary wire: at this shape the JSON codec costs more than the
	// multiply, which would bury the cache's effect under parsing.
	items := buildItems(sh, nil, seed+500, cacheBenchWeights, "binary", false)
	pick := func(i int) workItem {
		row := items[0]
		return row[i%len(row)]
	}

	arms := []struct {
		entries int
		ttl     time.Duration
	}{
		{0, 0},                     // baseline: every request computes
		{2, 0},                     // undersized: thrashes under 6 weights
		{64, 0},                     // fits: steady-state all-hit
		{64, 25 * time.Millisecond}, // fits but expires between revisits
	}
	rep := CacheBenchReport{
		Shape:       sh[0].String(),
		Requests:    cacheBenchRequests,
		Concurrency: cacheBenchConc,
		Weights:     cacheBenchWeights,
	}
	var baseRPS float64
	for _, armCfg := range arms {
		s, err := server.New(server.Config{
			NProcs:         4,
			Teams:          1,
			QueueCap:       2 * cacheBenchConc,
			DefaultTimeout: 60 * time.Second,
			CacheEntries:   armCfg.entries,
			CacheTTL:       armCfg.ttl,
		})
		if err != nil {
			log.Fatalf("cache bench (entries %d): %v", armCfg.entries, err)
		}
		ts := httptest.NewServer(s.Handler())
		// Warm the engine and seed the cache with one pass over the
		// weights so the timed loop measures the steady state. drive()
		// verifies every result against the serial kernel and checks the
		// echoed digests, so a hit serving the wrong computation fails.
		warm, _ := drive(ts.URL, pick, cacheBenchWeights, 1, true, 1e-9*float64(dim), 100)
		for _, r := range warm {
			if r.err != nil {
				log.Fatalf("cache bench (entries %d) warmup: %v", armCfg.entries, r.err)
			}
		}
		results, wall := drive(ts.URL, pick, cacheBenchRequests, cacheBenchConc, true, 1e-9*float64(dim), 100)
		arm := CacheArmReport{CacheEntries: armCfg.entries, CacheTTLMs: armCfg.ttl.Milliseconds()}
		var lats []float64
		for i, r := range results {
			if r.err != nil {
				log.Fatalf("cache bench (entries %d) request %d: %v", armCfg.entries, i, r.err)
			}
			arm.OK++
			lats = append(lats, r.latency)
		}
		sort.Float64s(lats)
		arm.P50Ms = percentile(lats, 0.50) * 1e3
		arm.P99Ms = percentile(lats, 0.99) * 1e3
		if wall > 0 {
			arm.ThroughputRPS = float64(arm.OK) / wall
		}
		if snap := s.Metrics(); snap.Cache != nil {
			arm.CacheHits = snap.Cache.Hits
			arm.CacheHitRate = snap.Cache.HitRate
		}
		ts.Close()
		shutdownServer(s, fmt.Sprintf("cache bench (entries %d)", armCfg.entries))
		if baseRPS == 0 {
			baseRPS = arm.ThroughputRPS
		}
		if baseRPS > 0 {
			arm.ThroughputX = arm.ThroughputRPS / baseRPS
		}
		rep.Arms = append(rep.Arms, arm)
	}

	writeSection(out, "cache_shaping", &rep)
	for _, arm := range rep.Arms {
		fmt.Printf("cache: entries %3d ttl %3dms -> hit rate %.2f, %.1f req/s (%.2fx), p50 %.1f ms\n",
			arm.CacheEntries, arm.CacheTTLMs, arm.CacheHitRate, arm.ThroughputRPS, arm.ThroughputX, arm.P50Ms)
	}
}

// ---------------------------------------------------------------------------
// -bench-overload: breaker and brownout policy sweep.

const (
	overloadDim      = 64
	overloadRequests = 64
	overloadConc     = 8

	brownoutDim      = 128
	brownoutRequests = 48
	brownoutConc     = 12
)

// BreakerArmReport is one breaker configuration against the same faulty
// backend: the 500-rate vs availability tradeoff as the threshold
// tightens.
type BreakerArmReport struct {
	Threshold float64 `json:"threshold"` // 0: breaker off
	Window    int     `json:"window,omitempty"`

	OK           int     `json:"ok"`
	Err500       int     `json:"err_500"`
	Shed503      int     `json:"shed_503"`
	Availability float64 `json:"availability"` // ok / requests
	Rate500      float64 `json:"rate_500"`     // 500s / requests
	P50OkMs      float64 `json:"p50_ok_ms"`
	MeanFailMs   float64 `json:"mean_fail_ms"` // how long a failure holds the client
	WallSeconds  float64 `json:"wall_s"`
}

// BrownoutArmReport is one brownout setting under the deep-queue profile.
type BrownoutArmReport struct {
	BrownoutAt float64 `json:"brownout_at"` // negative: off

	OK               int     `json:"ok"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	BrownoutRequests uint64  `json:"brownout_requests"` // requests served degraded
}

// OverloadBenchReport is the "overload" section of BENCH_server.json.
type OverloadBenchReport struct {
	BreakerShape    string  `json:"breaker_shape"`
	BreakerRequests int     `json:"breaker_requests"`
	BadBlockRate    float64 `json:"bad_block_rate"`

	BrownoutShape    string `json:"brownout_shape"`
	BrownoutRequests int    `json:"brownout_requests"`

	Breaker  []BreakerArmReport  `json:"breaker"`
	Brownout []BrownoutArmReport `json:"brownout"`
}

// runBreakerArm drives the faulty server with one breaker setting.
// BadBlockRate corrupts C blocks mid-compute; ABFT detects and recomputes,
// but a block corrupted on every recompute attempt exhausts abftMaxRedo
// and — with retries disabled — surfaces as an honest 500. The breaker
// converts runs of those slow failures into fast 503 sheds.
func runBreakerArm(threshold float64, window int, seed uint64, bodies [][]byte) BreakerArmReport {
	plan, err := faults.NewPlan(faults.Config{Seed: seed, BadBlockRate: 0.35}, 4)
	if err != nil {
		log.Fatal(err)
	}
	s, err := server.New(server.Config{
		NProcs:           4,
		Teams:            1,
		QueueCap:         2 * overloadConc,
		SmallMNK:         1,
		MaxTaskK:         8,
		ABFT:             true,
		FaultPlan:        plan,
		RetryBudget:      -1, // isolate the breaker from the retry machinery
		BreakerThreshold: threshold,
		BreakerWindow:    window,
		BreakerCooldown:  150 * time.Millisecond,
		DefaultTimeout:   60 * time.Second,
	})
	if err != nil {
		log.Fatalf("overload bench (threshold %g): %v", threshold, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	pick := func(i int) []byte { return bodies[i%len(bodies)] }
	results, wall := driveArm(ts.URL, pick, overloadRequests, overloadConc)
	arm := BreakerArmReport{Threshold: threshold, Window: window, WallSeconds: wall}
	var failSum float64
	var fails int
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			arm.OK++
		case http.StatusInternalServerError:
			arm.Err500++
			failSum += r.latency
			fails++
		case http.StatusServiceUnavailable:
			arm.Shed503++
			failSum += r.latency
			fails++
		default:
			log.Fatalf("overload bench (threshold %g) request %d: %v", threshold, i, r.err)
		}
	}
	arm.Availability = float64(arm.OK) / float64(overloadRequests)
	arm.Rate500 = float64(arm.Err500) / float64(overloadRequests)
	arm.P50OkMs, _, _ = latencyStats(results)
	if fails > 0 {
		arm.MeanFailMs = failSum / float64(fails) * 1e3
	}
	shutdownServer(s, fmt.Sprintf("overload bench (threshold %g)", threshold))
	return arm
}

// runBrownoutArm drives a deep-queue overload (concurrency past the
// single team, tiny admission queue) with one brownout setting. The
// client retries 429s, so availability holds; the brownout payoff is
// latency and throughput from shedding ABFT and batching when the queue
// is deep.
func runBrownoutArm(at float64, bodies [][]byte) BrownoutArmReport {
	s, err := server.New(server.Config{
		NProcs:         4,
		Teams:          1,
		SmallMNK:       1,
		QueueCap:       6,
		ABFT:           true,
		BrownoutAt:     at,
		DefaultTimeout: 60 * time.Second,
	})
	if err != nil {
		log.Fatalf("brownout bench (at %g): %v", at, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// driveArm has no 429 retry, so reuse the main driver's issue() loop
	// via a minimal pick over pre-encoded bodies.
	items := make([]workItem, len(bodies))
	for i, b := range bodies {
		items[i] = workItem{body: b, wire: "json"}
	}
	pick := func(i int) workItem { return items[i%len(items)] }
	results, wall := drive(ts.URL, pick, brownoutRequests, brownoutConc, false, 0, 1000)

	arm := BrownoutArmReport{BrownoutAt: at}
	var lats []float64
	for i, r := range results {
		if r.err != nil {
			log.Fatalf("brownout bench (at %g) request %d: %v", at, i, r.err)
		}
		arm.OK++
		lats = append(lats, r.latency)
	}
	sort.Float64s(lats)
	arm.P50Ms = percentile(lats, 0.50) * 1e3
	arm.P99Ms = percentile(lats, 0.99) * 1e3
	if wall > 0 {
		arm.ThroughputRPS = float64(arm.OK) / wall
	}
	arm.BrownoutRequests = s.Metrics().Recovery.BrownoutRequests
	shutdownServer(s, fmt.Sprintf("brownout bench (at %g)", at))
	return arm
}

// runBenchOverload sweeps the breaker and brownout defaults and records
// the measured tradeoffs; EXPERIMENTS.md carries the narrative and the
// chosen defaults.
func runBenchOverload(out string, seed uint64) {
	mkBodies := func(dim int, base uint64, n int) [][]byte {
		bodies := make([][]byte, n)
		for v := range bodies {
			a := mat.Random(dim, dim, base+uint64(2*v))
			b := mat.Random(dim, dim, base+uint64(2*v)+1)
			req := server.MultiplyRequest{
				ID:    fmt.Sprintf("bench-overload-%d", v),
				ARows: dim, ACols: dim, A: a.Data,
				BRows: dim, BCols: dim, B: b.Data,
			}
			body, err := json.Marshal(req)
			if err != nil {
				log.Fatal(err)
			}
			bodies[v] = body
		}
		return bodies
	}

	rep := OverloadBenchReport{
		BreakerShape:     shape{overloadDim, overloadDim, overloadDim}.String(),
		BreakerRequests:  overloadRequests,
		BadBlockRate:     0.35,
		BrownoutShape:    shape{brownoutDim, brownoutDim, brownoutDim}.String(),
		BrownoutRequests: brownoutRequests,
	}

	breakerBodies := mkBodies(overloadDim, seed+700, 4)
	for _, cfg := range []struct {
		threshold float64
		window    int
	}{{0, 0}, {0.5, 20}, {0.3, 20}, {0.15, 8}} {
		arm := runBreakerArm(cfg.threshold, cfg.window, seed, breakerBodies)
		rep.Breaker = append(rep.Breaker, arm)
		fmt.Printf("breaker: threshold %.2f window %2d -> availability %.2f, 500-rate %.2f, 503 sheds %2d, mean fail %.1f ms\n",
			arm.Threshold, arm.Window, arm.Availability, arm.Rate500, arm.Shed503, arm.MeanFailMs)
	}

	brownoutBodies := mkBodies(brownoutDim, seed+800, 4)
	for _, at := range []float64{-1, 0.9, 0.5} {
		arm := runBrownoutArm(at, brownoutBodies)
		rep.Brownout = append(rep.Brownout, arm)
		fmt.Printf("brownout: at %5.2f -> %.1f req/s, p50 %.1f ms, p99 %.1f ms, %d degraded\n",
			arm.BrownoutAt, arm.ThroughputRPS, arm.P50Ms, arm.P99Ms, arm.BrownoutRequests)
	}

	writeSection(out, "overload", &rep)
}

// Command srumma-load drives a running srumma-serve instance with a
// configurable concurrency level, shape mix and workload-class mix,
// verifies every result against the serial kernel, honors 429
// backpressure with Retry-After backoff, and emits a machine-readable
// benchmark report (BENCH_server.json): throughput plus p50/p99 latency
// overall, per mix entry and per workload class.
//
//	srumma-load -addr http://127.0.0.1:8711 -concurrency 8 -requests 64 \
//	    -mix 32x32x32,96x96x96,256x256x256 -classes interactive:3,batch:1 \
//	    -deadline 500ms -out BENCH_server.json
//
// With -bench-sched it instead runs the self-contained scheduler
// benchmark (no external server needed) and writes BENCH_sched.json:
//
//   - batch coalescing: >=64 queued 64x64x64 GEMMs executed through the
//     workload scheduler on one persistent engine team, three arms —
//     batched (BatchMax 64), coalescing disabled (BatchMax 1), and
//     per-request engine dispatch (a full distribute/SRUMMA/gather job
//     per product, the pre-scheduler serving path) — with batched
//     results checked bit-identical against the serial kernel;
//   - mixed load: an interactive/batch class mix driven through the full
//     HTTP server in "sched" and "fifo" modes, reporting per-class
//     latency quantiles and the interactive p99 improvement.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/grid"
	"srumma/internal/ipcrt"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/sched"
	"srumma/internal/server"
)

type shape struct{ m, k, n int }

func (s shape) String() string { return fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n) }

func parseMix(spec string) ([]shape, error) {
	var out []shape
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		dims := strings.Split(part, "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("bad shape %q (want MxKxN)", part)
		}
		var s shape
		for i, p := range []*int{&s.m, &s.k, &s.n} {
			v, err := strconv.Atoi(dims[i])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad shape %q: dimension %q", part, dims[i])
			}
			*p = v
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	return out, nil
}

// classAssign is one slot of the cyclic class pattern: requests are
// tagged round-robin through the expanded weights, so a spec of
// "interactive:3,batch:1" tags 3 of every 4 requests interactive.
type classAssign struct {
	name       string
	deadlineMs int64
}

// parseClasses expands "interactive:3,batch:1" into the cyclic pattern.
// deadline, when positive, is attached (as the EDF placement hint
// deadline_ms) to interactive-class requests only: batch work is
// throughput-oriented and runs deadline-less.
func parseClasses(spec string, deadline time.Duration) ([]classAssign, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var pattern []classAssign
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weightStr, hasW := strings.Cut(part, ":")
		if _, err := sched.ParseClass(name); err != nil || name == "" {
			return nil, fmt.Errorf("bad class %q in %q", name, spec)
		}
		weight := 1
		if hasW {
			w, err := strconv.Atoi(weightStr)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad weight %q for class %q", weightStr, name)
			}
			weight = w
		}
		ca := classAssign{name: name}
		if name == sched.ClassInteractive.String() && deadline > 0 {
			ca.deadlineMs = deadline.Milliseconds()
		}
		for i := 0; i < weight; i++ {
			pattern = append(pattern, ca)
		}
	}
	if len(pattern) == 0 {
		return nil, fmt.Errorf("empty class spec %q", spec)
	}
	return pattern, nil
}

// workItem is one pre-generated request with its serial reference result.
type workItem struct {
	mix   int
	class string
	body  []byte // wire-encoded (and, under -gzip, compressed) request body
	want  *mat.Matrix

	id         string
	deadlineMs int64
	wire       string // "json" or "binary"
	gzip       bool
	dig        *digestCell
}

// digestCell records the first result digest the server reports for one
// operand set, so every later response to identical content — cache hit
// or recompute — can be checked against it. A mismatch means the cache
// returned a result for the wrong computation.
type digestCell struct {
	mu  sync.Mutex
	val string
}

func (d *digestCell) check(dig string) error {
	if d == nil || dig == "" {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.val == "" {
		d.val = dig
		return nil
	}
	if d.val != dig {
		return fmt.Errorf("result digest %s does not match earlier digest %s for identical operands", dig, d.val)
	}
	return nil
}

// outcome is one completed request as observed by the client.
type outcome struct {
	mix      int
	class    string
	route    string
	latency  float64 // seconds, including queueing and transport
	gflops   float64 // server-side execution rate
	retries  int     // 429 rounds before admission
	missed   bool    // 504: deadline exceeded before completion
	cached   bool    // served from the result cache
	bytesOut int64   // request body bytes shipped
	bytesIn  int64   // response body bytes received
	err      error
}

// byteCounter counts response bytes as they are read.
type byteCounter struct {
	r io.Reader
	n int64
}

func (c *byteCounter) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// MixReport is the per-shape slice of the benchmark report.
type MixReport struct {
	Shape        string  `json:"shape"`
	Route        string  `json:"route"`
	Count        int     `json:"count"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MeanMs       float64 `json:"mean_ms"`
	ServerGFlops float64 `json:"server_gflops_mean"`
}

// ClassReport is the per-workload-class slice of a report: the latency
// quantiles the scheduler's fairness and EDF policies act on.
type ClassReport struct {
	Count          int     `json:"count"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	MeanMs         float64 `json:"mean_ms"`
	DeadlineMisses int     `json:"deadline_misses"`
}

// Report is the BENCH_server.json document.
type Report struct {
	Addr           string `json:"addr"`
	Concurrency    int    `json:"concurrency"`
	Requests       int    `json:"requests"`
	Mix            string `json:"mix"`
	Classes        string `json:"classes,omitempty"`
	DeadlineMs     int64  `json:"deadline_ms,omitempty"`
	Wire           string `json:"wire"`
	Gzip           bool   `json:"gzip,omitempty"`
	RepeatOperands int    `json:"repeat_operands,omitempty"`

	OK             int     `json:"ok"`
	Errors         int     `json:"errors"`
	Retries429     int     `json:"retries_429"`
	DeadlineMisses int     `json:"deadline_misses"`
	WallSeconds    float64 `json:"wall_s"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`

	// Client-observed wire traffic and cache behavior.
	BytesSent       int64   `json:"bytes_sent"`
	BytesReceived   int64   `json:"bytes_received"`
	CachedResponses int     `json:"cached_responses,omitempty"`
	CacheHits       int64   `json:"cache_hits,omitempty"`
	CacheHitRate    float64 `json:"cache_hit_rate,omitempty"`

	Mixes      []MixReport            `json:"mixes"`
	ClassStats map[string]ClassReport `json:"class_stats,omitempty"`

	ServerMetrics *server.MetricsSnapshot `json:"server_metrics,omitempty"`
}

func main() {
	// -bench-cluster runs cluster-mode servers that re-execute this binary
	// for their node ranks; a worker copy diverts here and never returns.
	ipcrt.MaybeWorker()

	log.SetFlags(0)
	log.SetPrefix("srumma-load: ")

	addr := flag.String("addr", "http://127.0.0.1:8711", "server base URL")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	requests := flag.Int("requests", 64, "total requests to issue")
	mixSpec := flag.String("mix", "32x32x32,96x96x96,192x192x192", "comma-separated MxKxN shapes, cycled")
	classSpec := flag.String("classes", "", `weighted workload-class mix, e.g. "interactive:3,batch:1", cycled (empty: untagged)`)
	deadline := flag.Duration("deadline", 0, "deadline_ms placement hint attached to interactive-class requests (0: none)")
	verify := flag.Bool("verify", true, "check every result against the serial kernel")
	tol := flag.Float64("tol", 1e-9, "max abs elementwise difference allowed under -verify")
	out := flag.String("out", "BENCH_server.json", "report path ('-' for stdout)")
	wait := flag.Duration("wait", 10*time.Second, "max time to wait for the server to report healthy")
	seed := flag.Uint64("seed", 1, "base seed for generated matrices")
	maxRetries := flag.Int("max-retries", 100, "429 retry rounds per request before giving up")
	wire := flag.String("wire", "json", `request wire format: "json" or "binary"`)
	gzipReq := flag.Bool("gzip", false, "gzip-compress request bodies (and, on the binary wire, accept gzip responses)")
	repeatOps := flag.Int("repeat-operands", 1, "distinct operand sets cycled per shape/class slot; with 1 (the default) every request for a shape repeats the same operands, so a server-side result cache hits on every revisit")
	minCacheHits := flag.Int64("min-cache-hits", -1, "fail unless the server reports at least this many result-cache hits after the run (-1: no check)")
	benchSched := flag.Bool("bench-sched", false, "run the self-contained scheduler benchmark (ignores -addr) and exit")
	benchChaos := flag.Bool("chaos", false, "run the self-contained crash-recovery benchmark (ignores -addr) and exit")
	benchWire := flag.Bool("bench-wire", false, "run the self-contained wire-format/cache benchmark (ignores -addr) and exit")
	benchCluster := flag.Bool("bench-cluster", false, "run the self-contained sharded-vs-in-process serving benchmark (ignores -addr) and exit")
	benchCache := flag.Bool("bench-cache", false, "run the self-contained cache-shaping sweep (hit rate vs cache size/TTL; ignores -addr) and exit")
	benchOverload := flag.Bool("bench-overload", false, "run the self-contained breaker/brownout policy sweep (ignores -addr) and exit")
	flag.Parse()

	if *benchSched {
		runBenchSched(*out, *seed)
		return
	}
	if *benchChaos {
		runBenchChaos(*out, *seed)
		return
	}
	if *benchWire {
		runBenchWire(*out, *seed)
		return
	}
	if *benchCluster {
		runBenchCluster(*out, *seed)
		return
	}
	if *benchCache {
		runBenchCache(*out, *seed)
		return
	}
	if *benchOverload {
		runBenchOverload(*out, *seed)
		return
	}
	if *wire != "json" && *wire != "binary" {
		log.Fatalf("bad -wire %q (want json or binary)", *wire)
	}
	if *repeatOps < 1 {
		log.Fatalf("bad -repeat-operands %d (want >= 1)", *repeatOps)
	}

	shapes, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	pattern, err := parseClasses(*classSpec, *deadline)
	if err != nil {
		log.Fatal(err)
	}
	if err := waitHealthy(*addr, *wait); err != nil {
		log.Fatal(err)
	}

	items := buildItems(shapes, pattern, *seed, *repeatOps, *wire, *gzipReq)
	pick := func(idx int) workItem {
		row := items[idx%len(items)]
		return row[idx%len(row)]
	}

	results, wall := drive(*addr, pick, *requests, *concurrency, *verify, *tol, *maxRetries)

	rep := buildReport(*addr, *concurrency, *requests, *mixSpec, shapes, results, wall)
	rep.Classes = *classSpec
	rep.DeadlineMs = deadline.Milliseconds()
	rep.Wire = *wire
	rep.Gzip = *gzipReq
	rep.RepeatOperands = *repeatOps
	if len(pattern) > 0 {
		rep.ClassStats = classStats(results)
	}
	rep.ServerMetrics = fetchMetrics(*addr)
	if rep.ServerMetrics != nil && rep.ServerMetrics.Cache != nil {
		rep.CacheHits = rep.ServerMetrics.Cache.Hits
		rep.CacheHitRate = rep.ServerMetrics.Cache.HitRate
	}

	if rep.Errors > 0 {
		for _, r := range results {
			if r.err != nil {
				log.Printf("FAIL %s: %v", shapes[r.mix], r.err)
			}
		}
	}
	writeReport(rep, *out)
	fmt.Printf("%d ok, %d errors, %d deadline misses, %d retry rounds (429), %.2f req/s, p50 %.1f ms, p99 %.1f ms [%s wire, %.1f KB out, %.1f KB in, %d cached]\n",
		rep.OK, rep.Errors, rep.DeadlineMisses, rep.Retries429, rep.ThroughputRPS, rep.P50Ms, rep.P99Ms,
		rep.Wire, float64(rep.BytesSent)/1024, float64(rep.BytesReceived)/1024, rep.CachedResponses)
	if rep.Errors > 0 {
		os.Exit(1)
	}
	if *minCacheHits >= 0 && rep.CacheHits < *minCacheHits {
		log.Fatalf("server reports %d result-cache hits, want >= %d (is the server running with -cache-entries?)",
			rep.CacheHits, *minCacheHits)
	}
}

// encodeBody marshals one request onto the chosen wire, optionally
// gzip-compressed, exactly as issue() will ship it. The binary encoding
// carries only shape/scalars/operands; ID, class and deadline ride as
// X-Srumma-* headers set at send time.
func encodeBody(req *server.MultiplyRequest, wire string, gz bool) ([]byte, error) {
	var raw []byte
	var err error
	if wire == "binary" {
		raw, err = server.EncodeBinaryRequest(req)
	} else {
		raw, err = json.Marshal(req)
	}
	if err != nil || !gz {
		return raw, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(raw)
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// buildItems pre-generates one template per (mix entry, class slot,
// operand variant): the request body bytes and the serial-kernel
// reference result. Bodies are marshaled once so the request loop
// allocates nothing per request. With no class pattern each row has a
// single untagged entry per variant; variants > 1 cycles distinct
// operand sets through the same shape so a server-side result cache sees
// a mix of repeats and fresh content.
func buildItems(shapes []shape, pattern []classAssign, seed uint64, variants int, wire string, gz bool) [][]workItem {
	slots := pattern
	if len(slots) == 0 {
		slots = []classAssign{{}}
	}
	if variants < 1 {
		variants = 1
	}
	items := make([][]workItem, len(shapes))
	for i, sh := range shapes {
		items[i] = make([]workItem, 0, len(slots)*variants)
		for v := 0; v < variants; v++ {
			vseed := seed + uint64(3*i) + uint64(v)*1_000_003
			a := mat.Random(sh.m, sh.k, vseed)
			b := mat.Random(sh.k, sh.n, vseed+1)
			want := mat.New(sh.m, sh.n)
			if err := mat.Gemm(false, false, 1, a, b, 0, want); err != nil {
				log.Fatal(err)
			}
			// One digest cell per operand set: every response to this
			// content must report the same result digest.
			cell := &digestCell{}
			for _, slot := range slots {
				req := server.MultiplyRequest{
					ID:    fmt.Sprintf("load-%s", sh),
					ARows: sh.m, ACols: sh.k, A: a.Data,
					BRows: sh.k, BCols: sh.n, B: b.Data,
					Class:          slot.name,
					DeadlineMillis: slot.deadlineMs,
				}
				if slot.name != "" {
					req.ID = fmt.Sprintf("load-%s-%s", sh, slot.name)
				}
				body, err := encodeBody(&req, wire, gz)
				if err != nil {
					log.Fatal(err)
				}
				items[i] = append(items[i], workItem{
					mix: i, class: slot.name, body: body, want: want,
					id: req.ID, deadlineMs: slot.deadlineMs, wire: wire, gzip: gz, dig: cell,
				})
			}
		}
	}
	return items
}

// drive issues requests through a worker pool and returns the outcomes
// plus the wall time of the whole run.
func drive(addr string, pick func(int) workItem, requests, concurrency int, verify bool, tol float64, maxRetries int) ([]outcome, float64) {
	jobs := make(chan int)
	results := make([]outcome, requests)
	var wg sync.WaitGroup
	client := &http.Client{}
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = issue(client, addr, pick(idx), verify, tol, maxRetries)
			}
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, time.Since(start).Seconds()
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy after %s: %v", addr, wait, err)
			}
			return fmt.Errorf("server at %s not healthy after %s", addr, wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// newWireRequest builds one HTTP request for it, setting the wire's
// content type and, on the binary wire, the X-Srumma-* scalar headers
// that have no binary body field.
func newWireRequest(addr string, it workItem) (*http.Request, error) {
	req, err := http.NewRequest(http.MethodPost, addr+"/v1/multiply", bytes.NewReader(it.body))
	if err != nil {
		return nil, err
	}
	if it.wire == "binary" {
		req.Header.Set("Content-Type", server.ContentTypeBinary)
		req.Header.Set("Accept", server.ContentTypeBinaryResult)
		if it.id != "" {
			req.Header.Set("X-Srumma-Id", it.id)
		}
		if it.class != "" {
			req.Header.Set("X-Srumma-Class", it.class)
		}
		if it.deadlineMs > 0 {
			req.Header.Set("X-Srumma-Deadline-Ms", strconv.FormatInt(it.deadlineMs, 10))
		}
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	if it.gzip {
		req.Header.Set("Content-Encoding", "gzip")
		if it.wire == "binary" {
			req.Header.Set("Accept-Encoding", "gzip")
		}
	}
	return req, nil
}

// issue posts one request, retrying on 429 backpressure (honoring
// Retry-After but capping the pause so load tests finish promptly). A 504
// is a deadline miss — an expected outcome under overload, reported
// separately from errors.
func issue(client *http.Client, addr string, it workItem, verify bool, tol float64, maxRetries int) outcome {
	o := outcome{mix: it.mix, class: it.class, bytesOut: int64(len(it.body))}
	start := time.Now()
	for {
		hreq, err := newWireRequest(addr, it)
		if err != nil {
			o.err = err
			return o
		}
		resp, err := client.Do(hreq)
		if err != nil {
			o.err = err
			return o
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			pause := 10 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				pause = time.Duration(math.Min(float64(ra)*float64(time.Second), float64(250*time.Millisecond)))
			}
			resp.Body.Close()
			o.retries++
			if o.retries > maxRetries {
				o.err = fmt.Errorf("gave up after %d 429 rounds", maxRetries)
				return o
			}
			time.Sleep(pause)
			continue
		}
		if resp.StatusCode == http.StatusGatewayTimeout {
			resp.Body.Close()
			o.missed = true
			return o
		}
		cr := &byteCounter{r: resp.Body}
		if resp.StatusCode != http.StatusOK {
			var eresp struct {
				Error string `json:"error"`
			}
			json.NewDecoder(cr).Decode(&eresp)
			resp.Body.Close()
			o.err = fmt.Errorf("status %d: %s", resp.StatusCode, eresp.Error)
			return o
		}
		if !verify {
			// Latency-only mode: decoding a big result matrix costs real
			// CPU that would perturb the measurement on small machines.
			io.Copy(io.Discard, cr)
			resp.Body.Close()
			o.latency = time.Since(start).Seconds()
			o.bytesIn = cr.n
			o.cached = resp.Header.Get("X-Srumma-Cached") == "1"
			return o
		}

		var got *mat.Matrix
		if strings.HasPrefix(resp.Header.Get("Content-Type"), server.ContentTypeBinaryResult) {
			var body io.Reader = cr
			if resp.Header.Get("Content-Encoding") == "gzip" {
				gz, err := gzip.NewReader(cr)
				if err != nil {
					resp.Body.Close()
					o.err = err
					return o
				}
				body = gz
			}
			rows, cols, data, decErr := server.DecodeBinaryResponse(body)
			resp.Body.Close()
			if decErr != nil {
				o.err = decErr
				return o
			}
			got = &mat.Matrix{Rows: rows, Cols: cols, Stride: cols, Data: data}
			o.route = resp.Header.Get("X-Srumma-Route")
			o.gflops, _ = strconv.ParseFloat(resp.Header.Get("X-Srumma-Gflops"), 64)
			o.cached = resp.Header.Get("X-Srumma-Cached") == "1"
			if err := it.dig.check(resp.Header.Get("X-Srumma-Digest")); err != nil {
				o.err = err
				return o
			}
		} else {
			var mresp server.MultiplyResponse
			decErr := json.NewDecoder(cr).Decode(&mresp)
			resp.Body.Close()
			if decErr != nil {
				o.err = decErr
				return o
			}
			got = &mat.Matrix{Rows: mresp.Rows, Cols: mresp.Cols, Stride: mresp.Cols, Data: mresp.C}
			o.route = mresp.Route
			o.gflops = mresp.GFlops
			o.cached = mresp.Cached
			if err := it.dig.check(mresp.Digest); err != nil {
				o.err = err
				return o
			}
		}
		o.latency = time.Since(start).Seconds()
		o.bytesIn = cr.n
		if got.Rows != it.want.Rows || got.Cols != it.want.Cols {
			o.err = fmt.Errorf("shape %dx%d, want %dx%d", got.Rows, got.Cols, it.want.Rows, it.want.Cols)
			return o
		}
		if diff := mat.MaxAbsDiff(got, it.want); diff > tol {
			o.err = fmt.Errorf("result mismatch vs serial kernel: max abs diff %g > %g", diff, tol)
			return o
		}
		return o
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func buildReport(addr string, concurrency, requests int, mixSpec string, shapes []shape, results []outcome, wall float64) *Report {
	rep := &Report{Addr: addr, Concurrency: concurrency, Requests: requests, Mix: mixSpec, WallSeconds: wall}
	var all []float64
	perMix := make([][]float64, len(shapes))
	gflops := make([]float64, len(shapes))
	routes := make([]string, len(shapes))
	counts := make([]int, len(shapes))
	for _, r := range results {
		rep.Retries429 += r.retries
		rep.BytesSent += r.bytesOut
		rep.BytesReceived += r.bytesIn
		if r.missed {
			rep.DeadlineMisses++
			continue
		}
		if r.err != nil {
			rep.Errors++
			continue
		}
		rep.OK++
		if r.cached {
			rep.CachedResponses++
		}
		all = append(all, r.latency)
		perMix[r.mix] = append(perMix[r.mix], r.latency)
		gflops[r.mix] += r.gflops
		routes[r.mix] = r.route
		counts[r.mix]++
	}
	sort.Float64s(all)
	rep.P50Ms = percentile(all, 0.50) * 1e3
	rep.P90Ms = percentile(all, 0.90) * 1e3
	rep.P99Ms = percentile(all, 0.99) * 1e3
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.OK) / wall
	}
	for i, sh := range shapes {
		lat := perMix[i]
		sort.Float64s(lat)
		var sum float64
		for _, v := range lat {
			sum += v
		}
		mr := MixReport{Shape: sh.String(), Route: routes[i], Count: counts[i],
			P50Ms: percentile(lat, 0.50) * 1e3, P99Ms: percentile(lat, 0.99) * 1e3}
		if counts[i] > 0 {
			mr.MeanMs = sum / float64(counts[i]) * 1e3
			mr.ServerGFlops = gflops[i] / float64(counts[i])
		}
		rep.Mixes = append(rep.Mixes, mr)
	}
	return rep
}

// classStats aggregates latency quantiles per workload class.
func classStats(results []outcome) map[string]ClassReport {
	lat := map[string][]float64{}
	misses := map[string]int{}
	for _, r := range results {
		name := r.class
		if name == "" {
			name = sched.ClassInteractive.String()
		}
		if r.missed {
			misses[name]++
			continue
		}
		if r.err == nil {
			lat[name] = append(lat[name], r.latency)
		}
	}
	out := make(map[string]ClassReport, len(lat))
	for name, ls := range lat {
		sort.Float64s(ls)
		var sum float64
		for _, v := range ls {
			sum += v
		}
		cr := ClassReport{
			Count:          len(ls),
			P50Ms:          percentile(ls, 0.50) * 1e3,
			P99Ms:          percentile(ls, 0.99) * 1e3,
			DeadlineMisses: misses[name],
		}
		if len(ls) > 0 {
			cr.MeanMs = sum / float64(len(ls)) * 1e3
		}
		out[name] = cr
	}
	for name, n := range misses {
		if _, ok := out[name]; !ok {
			out[name] = ClassReport{DeadlineMisses: n}
		}
	}
	return out
}

func fetchMetrics(addr string) *server.MetricsSnapshot {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap server.MetricsSnapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return nil
	}
	return &snap
}

func writeJSONFile(v any, path string) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Fatal(err)
	}
	if path == "-" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

func writeReport(rep *Report, path string) { writeJSONFile(rep, path) }

// ---------------------------------------------------------------------------
// Self-contained scheduler benchmark (-bench-sched): BENCH_sched.json.

const (
	benchNProcs     = 4
	benchBatchTasks = 96 // >= 64 queued small GEMMs per arm
	benchBatchDim   = 64
	benchBatchMax   = 64

	mixedRequests    = 64
	mixedConcurrency = 16
)

// BatchArmReport is one arm of the batch-coalescing benchmark.
type BatchArmReport struct {
	BatchMax       int     `json:"batch_max"`
	WallSeconds    float64 `json:"wall_s"`
	TasksPerSecond float64 `json:"tasks_per_s"`
	Dispatches     uint64  `json:"dispatches"`
	BatchOccupancy float64 `json:"batch_occupancy"`
	MaxBatch       int64   `json:"max_batch"`
}

// BatchBenchReport compares batched against per-request dispatch for a
// backlog of queued small GEMMs on one engine team. Three arms:
//
//   - batched: the scheduler coalesces the backlog into team jobs
//     (BatchMax 64) executed as a locality-ordered task list;
//   - coalesce_off: the same scheduler with BatchMax 1, isolating the
//     team wake/barrier amortization alone;
//   - per_request_engine: the PR 3 dispatch baseline — every GEMM is its
//     own engine team job (distribute, SRUMMA multiply, gather), FIFO.
type BatchBenchReport struct {
	Tasks       int            `json:"tasks"`
	Shape       string         `json:"shape"`
	Batched     BatchArmReport `json:"batched"`
	CoalesceOff BatchArmReport `json:"coalesce_off"`
	PerRequest  BatchArmReport `json:"per_request_engine"`
	// SpeedupX is batched throughput over per-request engine dispatch.
	SpeedupX float64 `json:"speedup_x"`
	// CoalesceSpeedupX is batched throughput over BatchMax-1 dispatch.
	CoalesceSpeedupX float64 `json:"coalesce_speedup_x"`
	BitIdentical     bool    `json:"bit_identical"`
}

// MixedModeReport is one dispatch mode's view of the mixed-class load.
type MixedModeReport struct {
	Mode          string                  `json:"mode"`
	WallSeconds   float64                 `json:"wall_s"`
	ThroughputRPS float64                 `json:"throughput_rps"`
	Classes       map[string]ClassReport  `json:"classes"`
	ServerMetrics *server.MetricsSnapshot `json:"server_metrics,omitempty"`
}

// MixedBenchReport compares interactive-class latency under the workload
// scheduler against the FIFO dispatch path on an identical request
// stream.
type MixedBenchReport struct {
	Requests             int             `json:"requests"`
	Concurrency          int             `json:"concurrency"`
	Classes              string          `json:"classes"`
	InteractiveShape     string          `json:"interactive_shape"`
	BatchShape           string          `json:"batch_shape"`
	Fifo                 MixedModeReport `json:"fifo"`
	Sched                MixedModeReport `json:"sched"`
	InteractiveP99Gain   float64         `json:"interactive_p99_gain_x"`
	InteractiveP99Better bool            `json:"interactive_p99_better"`
}

// SchedBenchReport is the BENCH_sched.json document.
type SchedBenchReport struct {
	NProcs int              `json:"nprocs"`
	Batch  BatchBenchReport `json:"batch"`
	Mixed  MixedBenchReport `json:"mixed"`
}

func runBenchSched(out string, seed uint64) {
	rep := SchedBenchReport{NProcs: benchNProcs}
	rep.Batch = runBatchBench(seed)
	rep.Mixed = runMixedBench(seed)
	writeJSONFile(&rep, out)
	fmt.Printf("batch: %.0f tasks/s batched vs %.0f tasks/s per-request engine (%.2fx; %.2fx vs coalesce-off; bit-identical %v)\n",
		rep.Batch.Batched.TasksPerSecond, rep.Batch.PerRequest.TasksPerSecond,
		rep.Batch.SpeedupX, rep.Batch.CoalesceSpeedupX, rep.Batch.BitIdentical)
	fmt.Printf("mixed: interactive p99 %.1f ms (sched) vs %.1f ms (fifo), %.2fx\n",
		rep.Mixed.Sched.Classes["interactive"].P99Ms, rep.Mixed.Fifo.Classes["interactive"].P99Ms,
		rep.Mixed.InteractiveP99Gain)
	if !rep.Batch.BitIdentical {
		log.Fatal("batched results are NOT bit-identical to serial")
	}
}

// benchTeam adapts a persistent engine team to sched.Worker for the
// benchmark's own executor.
type benchTeam struct{ tm *armci.Team }

func (w *benchTeam) Close() error { return w.tm.Close() }

// benchJob is one small GEMM flowing through the scheduler directly —
// the engine-agnostic path, no HTTP/JSON in the way.
type benchJob struct {
	a, b *mat.Matrix
	got  *mat.Matrix
}

// runBatchBench measures batch coalescing: a backlog of benchBatchTasks
// small GEMMs is parked behind a gate task on a single-team scheduler,
// released at once, and timed to completion — once with coalescing
// (BatchMax 64: one team wake serves the whole backlog, ranks pulling
// tasks off a shared counter) and once with per-request dispatch
// (BatchMax 1: one wake + barrier per GEMM).
func runBatchBench(seed uint64) BatchBenchReport {
	dim := benchBatchDim
	n := benchBatchTasks
	as := make([]*mat.Matrix, n)
	bs := make([]*mat.Matrix, n)
	wants := make([]*mat.Matrix, n)
	for i := 0; i < n; i++ {
		as[i] = mat.Random(dim, dim, seed+uint64(2*i))
		bs[i] = mat.Random(dim, dim, seed+uint64(2*i)+1)
		wants[i] = mat.New(dim, dim)
		if err := mat.Gemm(false, false, 1, as[i], bs[i], 0, wants[i]); err != nil {
			log.Fatal(err)
		}
	}
	topo := rt.Topology{NProcs: benchNProcs, ProcsPerNode: benchNProcs, DomainSpansMachine: true}
	if err := topo.Validate(); err != nil {
		log.Fatal(err)
	}

	rep := BatchBenchReport{
		Tasks:        n,
		Shape:        shape{dim, dim, dim}.String(),
		BitIdentical: true,
	}
	for _, arm := range []struct {
		batchMax int
		dst      *BatchArmReport
	}{{benchBatchMax, &rep.Batched}, {1, &rep.CoalesceOff}} {
		res, got, err := runBatchArm(topo, as, bs, dim, arm.batchMax)
		if err != nil {
			log.Fatalf("batch bench (BatchMax %d): %v", arm.batchMax, err)
		}
		*arm.dst = res
		for i := range got {
			if got[i] == nil || mat.MaxAbsDiff(got[i], wants[i]) != 0 {
				rep.BitIdentical = false
			}
		}
	}
	res, got, err := runEngineArm(topo, as, bs, dim)
	if err != nil {
		log.Fatalf("batch bench (per-request engine): %v", err)
	}
	rep.PerRequest = res
	for i := range got {
		if got[i] == nil || mat.MaxAbsDiff(got[i], wants[i]) > 1e-9 {
			log.Fatalf("per-request engine result %d diverges from serial", i)
		}
	}
	if rep.PerRequest.TasksPerSecond > 0 {
		rep.SpeedupX = rep.Batched.TasksPerSecond / rep.PerRequest.TasksPerSecond
	}
	if rep.CoalesceOff.TasksPerSecond > 0 {
		rep.CoalesceSpeedupX = rep.Batched.TasksPerSecond / rep.CoalesceOff.TasksPerSecond
	}
	return rep
}

// runEngineArm times the PR 3 baseline: each GEMM dispatched as its own
// engine team job — distribute the operands into the block layout, run
// the full SRUMMA multiply, gather the result — serialized FIFO on one
// team, exactly how the pre-scheduler serving layer drives every
// engine-routed request.
func runEngineArm(topo rt.Topology, as, bs []*mat.Matrix, dim int) (BatchArmReport, []*mat.Matrix, error) {
	var arm BatchArmReport
	g, err := grid.Square(topo.NProcs)
	if err != nil {
		return arm, nil, err
	}
	tm, err := armci.NewTeam(topo)
	if err != nil {
		return arm, nil, err
	}
	defer tm.Close()
	d := core.Dims{M: dim, N: dim, K: dim}
	da, db, dc := core.Dists(g, d, core.NN)
	cd := grid.NewBlockDist(g, d.M, d.N)
	one := func(a, b *mat.Matrix) (*mat.Matrix, error) {
		errs := make([]error, topo.NProcs)
		co := driver.NewCollect(topo.NProcs)
		_, runErr := tm.Run(func(c rt.Ctx) {
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			driver.LoadBlock(c, da, ga, a)
			driver.LoadBlock(c, db, gb, b)
			errs[c.Rank()] = core.MultiplyEx(c, g, d, core.Options{}, 1, 0, ga, gb, gc)
			co.Deposit(c, driver.StoreBlock(c, dc, gc))
		})
		if runErr != nil {
			return nil, runErr
		}
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		return cd.Gather(co.Blocks)
	}
	// Warm the engine scratch pools before timing, as a running server
	// would be.
	if _, err := one(as[0], bs[0]); err != nil {
		return arm, nil, err
	}
	got := make([]*mat.Matrix, len(as))
	t0 := time.Now()
	for i := range as {
		got[i], err = one(as[i], bs[i])
		if err != nil {
			return arm, nil, err
		}
	}
	wall := time.Since(t0).Seconds()
	arm = BatchArmReport{
		BatchMax:       1,
		WallSeconds:    wall,
		TasksPerSecond: float64(len(as)) / wall,
		Dispatches:     uint64(len(as)),
		BatchOccupancy: 1,
		MaxBatch:       1,
	}
	return arm, got, nil
}

// runBatchArm runs one backlog through a fresh single-team scheduler at
// the given BatchMax and returns the timing plus every result matrix.
func runBatchArm(topo rt.Topology, as, bs []*mat.Matrix, dim, batchMax int) (BatchArmReport, []*mat.Matrix, error) {
	var arm BatchArmReport
	threads := armci.DefaultKernelThreads(topo.NProcs)
	exec := func(w sched.Worker, tasks []*sched.Task) sched.Outcome {
		if gate, ok := tasks[0].Payload.(chan struct{}); ok {
			<-gate
			tasks[0].Finish(nil)
			return sched.Outcome{}
		}
		tm := w.(*benchTeam).tm
		var next atomic.Int64
		n := len(tasks)
		_, runErr := tm.Run(func(rt.Ctx) {
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				t := tasks[i]
				j := t.Payload.(*benchJob)
				got := mat.New(j.a.Rows, j.b.Cols)
				err := mat.GemmParallel(threads, false, false, 1, j.a, j.b, 0, got)
				j.got = got
				t.Finish(err)
			}
		})
		if runErr != nil {
			for _, t := range tasks {
				if !t.Finished() {
					t.Finish(runErr)
				}
			}
		}
		return sched.Outcome{Err: runErr}
	}
	sch, err := sched.New(sched.Config{
		MinWorkers: 1,
		MaxWorkers: 1,
		QueueCap:   len(as) + 8,
		BatchMax:   batchMax,
		NewWorker: func() (sched.Worker, error) {
			tm, err := armci.NewTeam(topo)
			if err != nil {
				return nil, err
			}
			return &benchTeam{tm: tm}, nil
		},
		Exec: exec,
	})
	if err != nil {
		return arm, nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sch.Close(ctx)
	}()

	// Warm the team, scratch pools and kernel before timing, as a running
	// server would be.
	warm := make([]*sched.Task, 4)
	for i := range warm {
		warm[i] = &sched.Task{
			Class:     sched.ClassBatch,
			Batchable: true,
			Payload:   &benchJob{a: as[0], b: bs[0]},
		}
		if err := sch.Submit(warm[i]); err != nil {
			return arm, nil, err
		}
	}
	for _, t := range warm {
		<-t.Done()
	}
	snap0 := sch.Snapshot()
	for end := time.Now().Add(time.Second); snap0.DispatchedTasks < uint64(len(warm)) && time.Now().Before(end); {
		time.Sleep(100 * time.Microsecond)
		snap0 = sch.Snapshot()
	}

	// The gate is non-batchable and submitted first, so it is the first
	// dispatch; the whole backlog queues while the worker blocks on it.
	gateCh := make(chan struct{})
	if err := sch.Submit(&sched.Task{Class: sched.ClassInteractive, Payload: gateCh}); err != nil {
		return arm, nil, err
	}
	lk := uint64(dim)<<42 | uint64(dim)<<22 | uint64(dim)<<2
	tasks := make([]*sched.Task, len(as))
	jobs := make([]*benchJob, len(as))
	for i := range as {
		jobs[i] = &benchJob{a: as[i], b: bs[i]}
		tasks[i] = &sched.Task{
			Class:     sched.ClassBatch,
			Cost:      2 * float64(dim) * float64(dim) * float64(dim),
			Batchable: true,
			LocKey:    lk,
			Payload:   jobs[i],
		}
		if err := sch.Submit(tasks[i]); err != nil {
			return arm, nil, err
		}
	}

	t0 := time.Now()
	close(gateCh)
	for _, t := range tasks {
		<-t.Done()
		if err := t.Err(); err != nil {
			return arm, nil, err
		}
	}
	wall := time.Since(t0).Seconds()

	// Dispatch counters are bumped after an exec returns, so the final
	// dispatch may still be settling when the last Done fires; wait for
	// the ledger to catch up before reading it.
	snap := sch.Snapshot()
	for end := time.Now().Add(time.Second); snap.DispatchedTasks < snap0.DispatchedTasks+uint64(len(as))+1 && time.Now().Before(end); {
		time.Sleep(100 * time.Microsecond)
		snap = sch.Snapshot()
	}
	arm = BatchArmReport{
		BatchMax:       batchMax,
		WallSeconds:    wall,
		TasksPerSecond: float64(len(as)) / wall,
		// Exclude the warmup round and the gate dispatch from the ledger.
		Dispatches: snap.Dispatches - snap0.Dispatches - 1,
		MaxBatch:   snap.MaxBatch,
	}
	if arm.Dispatches > 0 {
		arm.BatchOccupancy = float64(snap.DispatchedTasks-snap0.DispatchedTasks-1) / float64(arm.Dispatches)
	}
	got := make([]*mat.Matrix, len(jobs))
	for i, j := range jobs {
		got[i] = j.got
	}
	return arm, got, nil
}

// runMixedBench drives an identical interactive/batch request stream
// through the full HTTP server twice — workload scheduler versus FIFO
// dispatch — and compares interactive-class p99. Both shapes route to
// the distributed engine, so the difference is pure queue policy: under
// FIFO an interactive request waits behind every queued batch job; under
// the scheduler it is dispatched by class weight and deadline.
func runMixedBench(seed uint64) MixedBenchReport {
	// Batch-heavy mix: sparse latency-sensitive queries competing with a
	// stream of bulk jobs — the workload where FIFO hurts interactive p99
	// most (each query waits behind every queued bulk job). Both shapes
	// route to the engine, so the difference is pure queue policy.
	interactive := shape{192, 192, 192}
	batch := shape{384, 384, 384}
	spec := "interactive:1,batch:3"
	pattern, err := parseClasses(spec, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	rep := MixedBenchReport{
		Requests:         mixedRequests,
		Concurrency:      mixedConcurrency,
		Classes:          spec,
		InteractiveShape: interactive.String(),
		BatchShape:       batch.String(),
	}
	rep.Fifo = runMixedMode("fifo", interactive, batch, pattern, seed)
	rep.Sched = runMixedMode("sched", interactive, batch, pattern, seed)
	if p99 := rep.Sched.Classes["interactive"].P99Ms; p99 > 0 {
		rep.InteractiveP99Gain = rep.Fifo.Classes["interactive"].P99Ms / p99
	}
	rep.InteractiveP99Better = rep.Sched.Classes["interactive"].P99Ms < rep.Fifo.Classes["interactive"].P99Ms
	return rep
}

func runMixedMode(mode string, interactive, batch shape, pattern []classAssign, seed uint64) MixedModeReport {
	s, err := server.New(server.Config{
		NProcs:         benchNProcs,
		Teams:          1,
		QueueCap:       64,
		SchedMode:      mode,
		DefaultTimeout: 60 * time.Second,
	})
	if err != nil {
		log.Fatalf("mixed bench (%s): %v", mode, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One template per class, shape tied to class: interactive requests
	// are the small latency-sensitive products, batch requests the heavy
	// throughput jobs they compete with.
	byClass := map[string]workItem{}
	for i, sh := range []shape{interactive, batch} {
		name := []string{"interactive", "batch"}[i]
		a := mat.Random(sh.m, sh.k, seed+uint64(10+2*i))
		b := mat.Random(sh.k, sh.n, seed+uint64(10+2*i)+1)
		want := mat.New(sh.m, sh.n)
		if err := mat.Gemm(false, false, 1, a, b, 0, want); err != nil {
			log.Fatal(err)
		}
		var deadlineMs int64
		for _, slot := range pattern {
			if slot.name == name {
				deadlineMs = slot.deadlineMs
			}
		}
		req := server.MultiplyRequest{
			ID:    fmt.Sprintf("bench-%s", name),
			ARows: sh.m, ACols: sh.k, A: a.Data,
			BRows: sh.k, BCols: sh.n, B: b.Data,
			Class:          name,
			DeadlineMillis: deadlineMs,
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		byClass[name] = workItem{mix: i, class: name, body: body, want: want}
	}
	pick := func(idx int) workItem {
		return byClass[pattern[idx%len(pattern)].name]
	}

	// Latency-only: correctness of both serving paths is covered by the
	// package tests and the verified batch arms above; decoding 384^3
	// results in the client would steal CPU from the server under test.
	results, wall := drive(ts.URL, pick, mixedRequests, mixedConcurrency, false, 1e-9, 1000)
	for _, r := range results {
		if r.err != nil {
			log.Fatalf("mixed bench (%s): %v", mode, r.err)
		}
	}

	rep := MixedModeReport{Mode: mode, WallSeconds: wall, Classes: classStats(results)}
	if wall > 0 {
		ok := 0
		for _, r := range results {
			if r.err == nil && !r.missed {
				ok++
			}
		}
		rep.ThroughputRPS = float64(ok) / wall
	}
	snap := s.Metrics()
	rep.ServerMetrics = &snap

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatalf("mixed bench (%s) shutdown: %v", mode, err)
	}
	return rep
}

// ---------------------------------------------------------------------------
// Self-contained crash-recovery benchmark (-chaos): BENCH_recover.json.

const (
	recoverProcs   = 4
	recoverPPN     = 2
	recoverDim     = 192
	recoverTaskK   = 8
	recoverSpan    = 6
	recoverTimeout = 60 * time.Second
)

// ChaosArmReport is one recovery strategy applied to the same planted
// crash: the failed first attempt plus the retry that completes the job.
type ChaosArmReport struct {
	// ReexecutedTasks is how many SRUMMA tasks the retry had to run:
	// tasks_total minus what the ledger carried over.
	ReexecutedTasks int `json:"reexecuted_tasks"`
	// ResumedTasks is completed work the retry inherited from the ledger
	// (zero for the restart arm by construction).
	ResumedTasks  int     `json:"resumed_tasks"`
	SalvagedRanks int     `json:"salvaged_ranks"`
	CrashWallS    float64 `json:"crash_wall_s"`
	RetryWallS    float64 `json:"retry_wall_s"`
}

// ChaosBenchReport is the BENCH_recover.json document: one seeded
// mid-compute crash handled two ways — ledger resume over salvaged C
// segments versus a from-scratch restart — with the recovered products
// checked bit-identical to a fault-free run of the same engine config.
type ChaosBenchReport struct {
	NProcs     int    `json:"nprocs"`
	Shape      string `json:"shape"`
	MaxTaskK   int    `json:"max_task_k"`
	Seed       uint64 `json:"seed"`
	CrashRank  int    `json:"crash_rank"`
	CrashOp    int    `json:"crash_op"`
	TasksTotal int    `json:"tasks_total"`

	Resumed ChaosArmReport `json:"resumed"`
	Restart ChaosArmReport `json:"restart"`
	// TaskSavingsX is restart re-execution over resumed re-execution: how
	// much completed work the ledger+salvage path preserved.
	TaskSavingsX float64 `json:"task_savings_x"`
	BitIdentical bool    `json:"bit_identical"`
}

// chaosSalvage mirrors the serving layer's salvage map at the core level:
// a panicking rank deposits its partial C segment on the unwind, and the
// retry consumes it (take clears, so stale segments can never pair with a
// newer ledger).
type chaosSalvage struct {
	mu  sync.Mutex
	seg map[int][]float64
}

func (s *chaosSalvage) save(rank int, seg []float64) {
	s.mu.Lock()
	s.seg[rank] = seg
	s.mu.Unlock()
}

func (s *chaosSalvage) take(rank int) []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg := s.seg[rank]
	delete(s.seg, rank)
	return seg
}

func (s *chaosSalvage) has(rank int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seg[rank] != nil
}

func (s *chaosSalvage) clear() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.seg)
	s.seg = map[int][]float64{}
	return n
}

// chaosAttempt runs one SRUMMA attempt, optionally under the shared fault
// injector, salvaging every panicking rank's C segment exactly as the
// serving layer does, and gathers C on success. sh and salv are nil for
// the fault-free reference run.
func chaosAttempt(topo rt.Topology, g *grid.Grid, d core.Dims, opts core.Options, sh *faults.Shared, salv *chaosSalvage, a, b *mat.Matrix) (*mat.Matrix, error) {
	da, db, dc := core.Dists(g, d, opts.Case)
	co := driver.NewCollect(topo.NProcs)
	errs := make([]error, topo.NProcs)
	_, err := armci.RunWithTimeout(topo, recoverTimeout, func(raw rt.Ctx) {
		c := raw
		if sh != nil {
			c = faults.Resilient(sh.Wrap(raw), faults.RecoveryConfig{})
		}
		rank := c.Rank()
		lr, lc := dc.LocalShape(rank)
		var gc rt.Global
		haveC := false
		if salv != nil {
			defer func() {
				if p := recover(); p != nil {
					if haveC {
						if data := c.ReadBuf(c.Local(gc), 0, lr*lc); data != nil {
							salv.save(rank, append([]float64(nil), data...))
						}
					}
					panic(p)
				}
			}()
		}
		ga := driver.AllocBlock(c, da)
		gb := driver.AllocBlock(c, db)
		gc = driver.AllocBlock(c, dc)
		haveC = true
		driver.LoadBlock(c, da, ga, a)
		driver.LoadBlock(c, db, gb, b)
		if salv != nil {
			if seg := salv.take(rank); seg != nil {
				c.WriteBuf(c.Local(gc), 0, seg)
			}
		}
		errs[rank] = core.MultiplyEx(c, g, d, opts, 1, 0, ga, gb, gc)
		co.Deposit(c, driver.StoreBlock(c, dc, gc))
	})
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return dc.Gather(co.Blocks)
}

// runChaosArm executes the crash-then-retry experiment with one recovery
// strategy. Both arms share the fault schedule (same seed, fresh latch):
// attempt 1 always dies at the planted (rank, op); the resume arm then
// resets only unsalvaged ranks and retries over the salvage, while the
// restart arm discards everything the first attempt did.
func runChaosArm(resume bool, topo rt.Topology, g *grid.Grid, d core.Dims, cfg faults.Config, a, b *mat.Matrix) (ChaosArmReport, *mat.Matrix, int, error) {
	var rep ChaosArmReport
	plan, err := faults.NewPlan(cfg, topo.NProcs)
	if err != nil {
		return rep, nil, 0, err
	}
	sh := faults.NewShared(plan)
	jl := core.NewJobLedger(topo.NProcs)
	salv := &chaosSalvage{seg: map[int][]float64{}}
	opts := core.Options{Case: core.NN, Flavor: core.FlavorDirect, MaxTaskK: recoverTaskK, Ledger: jl}

	t0 := time.Now()
	if _, err := chaosAttempt(topo, g, d, opts, sh, salv, a, b); err == nil {
		return rep, nil, 0, fmt.Errorf("planted compute crash did not fire")
	}
	rep.CrashWallS = time.Since(t0).Seconds()

	if resume {
		rep.SalvagedRanks = 0
		for r := 0; r < topo.NProcs; r++ {
			if salv.has(r) {
				rep.SalvagedRanks++
			} else {
				jl.Reset(r)
			}
		}
	} else {
		for r := 0; r < topo.NProcs; r++ {
			jl.Reset(r)
		}
		salv.clear()
	}
	rep.ResumedTasks = jl.Completed()
	total := jl.Total()
	rep.ReexecutedTasks = total - rep.ResumedTasks

	t1 := time.Now()
	got, err := chaosAttempt(topo, g, d, opts, sh, salv, a, b)
	if err != nil {
		return rep, nil, 0, fmt.Errorf("retry failed: %w", err)
	}
	rep.RetryWallS = time.Since(t1).Seconds()
	return rep, got, total, nil
}

// runBenchChaos measures what ledger-based resume buys over a full restart
// for one crashed job: the same seeded mid-compute crash is recovered both
// ways and the retry's re-executed task count compared. Correctness bar:
// both recovered products must be bit-identical to a fault-free run of the
// identical engine configuration (same grid, MaxTaskK, task order).
func runBenchChaos(out string, seed uint64) {
	topo := rt.Topology{NProcs: recoverProcs, ProcsPerNode: recoverPPN}
	if err := topo.Validate(); err != nil {
		log.Fatal(err)
	}
	g, err := grid.Square(recoverProcs)
	if err != nil {
		log.Fatal(err)
	}
	d := core.Dims{M: recoverDim, N: recoverDim, K: recoverDim}
	da, db, _ := core.Dists(g, d, core.NN)
	a := mat.Random(da.Rows, da.Cols, seed+100)
	b := mat.Random(db.Rows, db.Cols, seed+101)

	cfg := faults.Config{Seed: seed, ComputeCrash: true, ComputeCrashOpSpan: recoverSpan}
	plan, err := faults.NewPlan(cfg, recoverProcs)
	if err != nil {
		log.Fatal(err)
	}
	rep := ChaosBenchReport{
		NProcs:   recoverProcs,
		Shape:    shape{d.M, d.K, d.N}.String(),
		MaxTaskK: recoverTaskK,
		Seed:     seed,
	}
	rep.CrashRank, rep.CrashOp = plan.ComputeCrashPoint()

	cleanOpts := core.Options{Case: core.NN, Flavor: core.FlavorDirect, MaxTaskK: recoverTaskK}
	clean, err := chaosAttempt(topo, g, d, cleanOpts, nil, nil, a, b)
	if err != nil {
		log.Fatalf("fault-free reference run: %v", err)
	}
	want := mat.New(d.M, d.N)
	if err := mat.Gemm(false, false, 1, a, b, 0, want); err != nil {
		log.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(clean, want); diff > 1e-10*float64(d.K) {
		log.Fatalf("fault-free reference diverges from serial kernel: max diff %g", diff)
	}

	var resumedC, restartC *mat.Matrix
	rep.Resumed, resumedC, rep.TasksTotal, err = runChaosArm(true, topo, g, d, cfg, a, b)
	if err != nil {
		log.Fatalf("resumed arm: %v", err)
	}
	var restartTotal int
	rep.Restart, restartC, restartTotal, err = runChaosArm(false, topo, g, d, cfg, a, b)
	if err != nil {
		log.Fatalf("restart arm: %v", err)
	}
	if restartTotal != rep.TasksTotal {
		log.Fatalf("task plans differ between arms: %d vs %d", rep.TasksTotal, restartTotal)
	}
	if rep.Resumed.ReexecutedTasks > 0 {
		rep.TaskSavingsX = float64(rep.Restart.ReexecutedTasks) / float64(rep.Resumed.ReexecutedTasks)
	}
	rep.BitIdentical = true
	for i := range clean.Data {
		if resumedC.Data[i] != clean.Data[i] || restartC.Data[i] != clean.Data[i] {
			rep.BitIdentical = false
			break
		}
	}

	writeJSONFile(&rep, out)
	fmt.Printf("recover: crash at rank %d op %d; resumed retry re-executed %d/%d tasks (%d inherited, %d ranks salvaged) vs %d for full restart (%.2fx fewer; bit-identical %v)\n",
		rep.CrashRank, rep.CrashOp, rep.Resumed.ReexecutedTasks, rep.TasksTotal,
		rep.Resumed.ResumedTasks, rep.Resumed.SalvagedRanks,
		rep.Restart.ReexecutedTasks, rep.TaskSavingsX, rep.BitIdentical)
	if !rep.BitIdentical {
		log.Fatal("recovered products are NOT bit-identical to the fault-free run")
	}
	if rep.Resumed.ReexecutedTasks >= rep.Restart.ReexecutedTasks {
		log.Fatalf("resume re-executed %d tasks, not fewer than restart's %d: the ledger preserved nothing",
			rep.Resumed.ReexecutedTasks, rep.Restart.ReexecutedTasks)
	}
}

// ---------------------------------------------------------------------------
// Self-contained wire-format / cache benchmark (-bench-wire):
// BENCH_server.json.

const (
	wireBenchDim      = 256
	wireBenchRequests = 24
)

// WireArmReport is one arm of the wire benchmark: one wire format against
// one server configuration, identical operands throughout.
type WireArmReport struct {
	Wire          string  `json:"wire"`
	CacheEnabled  bool    `json:"cache_enabled"`
	Requests      int     `json:"requests"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	MeanMs        float64 `json:"mean_ms"`
	RequestBytes  int64   `json:"request_bytes"`
	ResponseBytes int64   `json:"response_bytes_mean"`
	CacheHitRate  float64 `json:"cache_hit_rate,omitempty"`
}

// WireBenchReport is the "wire" section of BENCH_server.json:
// the same GEMM served three ways — JSON wire, binary wire
// (cache off for both), and binary wire against a warm result cache —
// with client-observed latency quantiles, exact wire bytes, and the
// bit-identity of every response against the first computed result.
type WireBenchReport struct {
	Shape    string `json:"shape"`
	Requests int    `json:"requests_per_arm"`

	JSON   WireArmReport `json:"json"`
	Binary WireArmReport `json:"binary"`
	Cached WireArmReport `json:"cached"`

	// BinarySpeedupX is JSON p50 over binary p50 (cache off for both):
	// the float↔decimal-text cost eliminated by the dense format.
	BinarySpeedupX float64 `json:"binary_speedup_x"`
	// CachedSpeedupX is binary p50 over cached p50: the compute and
	// queueing eliminated by a content-address hit.
	CachedSpeedupX float64 `json:"cached_speedup_x"`
	// RequestBytesRatioX is the JSON request body size over the binary one.
	RequestBytesRatioX float64 `json:"request_bytes_ratio_x"`
	BitIdentical       bool    `json:"bit_identical"`
}

// postWire issues one request and returns the client-observed latency,
// the decoded result and the response metadata the wire benchmark needs.
func postWire(client *http.Client, addr string, it workItem) (lat float64, got []float64, respBytes int64, dig string, cached bool, err error) {
	hreq, err := newWireRequest(addr, it)
	if err != nil {
		return
	}
	t0 := time.Now()
	resp, err := client.Do(hreq)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	cr := &byteCounter{r: resp.Body}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(cr)
		err = fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		return
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), server.ContentTypeBinaryResult) {
		_, _, got, err = server.DecodeBinaryResponse(cr)
		dig = resp.Header.Get("X-Srumma-Digest")
		cached = resp.Header.Get("X-Srumma-Cached") == "1"
	} else {
		var m server.MultiplyResponse
		if err = json.NewDecoder(cr).Decode(&m); err == nil {
			got, dig, cached = m.C, m.Digest, m.Cached
		}
	}
	lat = time.Since(t0).Seconds()
	respBytes = cr.n
	return
}

// runWireArm serves wireBenchRequests identical GEMMs from a fresh
// in-process server and times each round trip end to end. A warmup
// request (uncounted) heats the engine team, the scratch pools and — for
// the cached arm — the result cache, so the timed loop measures each
// path's steady state. Returns the arm report and whether every timed
// response was bit-identical to the warmup's result (the engine is
// deterministic, so recomputes must match, and a cache hit returns the
// warmup's computation by construction).
func runWireArm(wire string, cacheEntries int, it workItem, want *mat.Matrix, tol float64) (WireArmReport, bool) {
	s, err := server.New(server.Config{
		NProcs:         benchNProcs,
		Teams:          1,
		DefaultTimeout: 60 * time.Second,
		CacheEntries:   cacheEntries,
	})
	if err != nil {
		log.Fatalf("wire bench (%s): %v", wire, err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{}

	_, warm, _, _, _, err := postWire(client, ts.URL, it)
	if err != nil {
		log.Fatalf("wire bench (%s) warmup: %v", wire, err)
	}
	ref := &mat.Matrix{Rows: want.Rows, Cols: want.Cols, Stride: want.Cols, Data: warm}
	if diff := mat.MaxAbsDiff(ref, want); diff > tol {
		log.Fatalf("wire bench (%s): warmup result diverges from serial kernel by %g", wire, diff)
	}

	bit := true
	lats := make([]float64, 0, wireBenchRequests)
	var respBytes int64
	for i := 0; i < wireBenchRequests; i++ {
		lat, got, rb, _, cached, err := postWire(client, ts.URL, it)
		if err != nil {
			log.Fatalf("wire bench (%s) request %d: %v", wire, i, err)
		}
		if cacheEntries > 0 && !cached {
			log.Fatalf("wire bench (%s) request %d: expected a cache hit after warmup", wire, i)
		}
		if len(got) != len(warm) {
			bit = false
		} else {
			for j := range got {
				if got[j] != warm[j] {
					bit = false
					break
				}
			}
		}
		lats = append(lats, lat)
		respBytes += rb
	}
	sort.Float64s(lats)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	arm := WireArmReport{
		Wire: wire, CacheEnabled: cacheEntries > 0, Requests: len(lats),
		P50Ms:         percentile(lats, 0.50) * 1e3,
		P99Ms:         percentile(lats, 0.99) * 1e3,
		MeanMs:        sum / float64(len(lats)) * 1e3,
		RequestBytes:  int64(len(it.body)),
		ResponseBytes: respBytes / int64(len(lats)),
	}
	if snap := s.Metrics(); snap.Cache != nil {
		arm.CacheHitRate = snap.Cache.HitRate
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatalf("wire bench (%s) shutdown: %v", wire, err)
	}
	return arm, bit
}

// runBenchWire measures what the binary wire and the content-addressed
// result cache buy on the serving hot path: one 256^3 GEMM served over
// the JSON wire, over the binary wire, and out of a warm result cache.
func runBenchWire(out string, seed uint64) {
	dim := wireBenchDim
	a := mat.Random(dim, dim, seed+200)
	b := mat.Random(dim, dim, seed+201)
	want := mat.New(dim, dim)
	if err := mat.Gemm(false, false, 1, a, b, 0, want); err != nil {
		log.Fatal(err)
	}
	req := server.MultiplyRequest{
		ID:    "bench-wire",
		ARows: dim, ACols: dim, A: a.Data,
		BRows: dim, BCols: dim, B: b.Data,
	}
	mk := func(wire string) workItem {
		body, err := encodeBody(&req, wire, false)
		if err != nil {
			log.Fatal(err)
		}
		return workItem{body: body, want: want, id: req.ID, wire: wire}
	}
	itJSON, itBin := mk("json"), mk("binary")
	tol := 1e-9 // engine vs serial: float-summation order only

	rep := WireBenchReport{
		Shape:        shape{dim, dim, dim}.String(),
		Requests:     wireBenchRequests,
		BitIdentical: true,
	}
	var bit bool
	rep.JSON, bit = runWireArm("json", 0, itJSON, want, tol)
	rep.BitIdentical = rep.BitIdentical && bit
	rep.Binary, bit = runWireArm("binary", 0, itBin, want, tol)
	rep.BitIdentical = rep.BitIdentical && bit
	rep.Cached, bit = runWireArm("binary", 64, itBin, want, tol)
	rep.BitIdentical = rep.BitIdentical && bit

	if p50 := rep.Binary.P50Ms; p50 > 0 {
		rep.BinarySpeedupX = rep.JSON.P50Ms / p50
	}
	if p50 := rep.Cached.P50Ms; p50 > 0 {
		rep.CachedSpeedupX = rep.Binary.P50Ms / p50
	}
	if rb := rep.Binary.RequestBytes; rb > 0 {
		rep.RequestBytesRatioX = float64(rep.JSON.RequestBytes) / float64(rb)
	}

	writeSection(out, "wire", &rep)
	fmt.Printf("wire: %s p50 %.1f ms (json) vs %.1f ms (binary, %.2fx) vs %.1f ms (cached, %.2fx more); request %.0f KB (json) vs %.0f KB (binary, %.2fx); bit-identical %v\n",
		rep.Shape, rep.JSON.P50Ms, rep.Binary.P50Ms, rep.BinarySpeedupX,
		rep.Cached.P50Ms, rep.CachedSpeedupX,
		float64(rep.JSON.RequestBytes)/1024, float64(rep.Binary.RequestBytes)/1024,
		rep.RequestBytesRatioX, rep.BitIdentical)
	if !rep.BitIdentical {
		log.Fatal("wire/cache responses are NOT bit-identical across arms")
	}
}

// Command srumma-load drives a running srumma-serve instance with a
// configurable concurrency level and shape mix, verifies every result
// against the serial kernel, honors 429 backpressure with Retry-After
// backoff, and emits a machine-readable benchmark report
// (BENCH_server.json): throughput plus p50/p99 latency overall and per mix
// entry.
//
//	srumma-load -addr http://127.0.0.1:8711 -concurrency 8 -requests 64 \
//	    -mix 32x32x32,96x96x96,256x256x256 -out BENCH_server.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"srumma/internal/mat"
	"srumma/internal/server"
)

type shape struct{ m, k, n int }

func (s shape) String() string { return fmt.Sprintf("%dx%dx%d", s.m, s.k, s.n) }

func parseMix(spec string) ([]shape, error) {
	var out []shape
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		dims := strings.Split(part, "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("bad shape %q (want MxKxN)", part)
		}
		var s shape
		for i, p := range []*int{&s.m, &s.k, &s.n} {
			v, err := strconv.Atoi(dims[i])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("bad shape %q: dimension %q", part, dims[i])
			}
			*p = v
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	return out, nil
}

// workItem is one pre-generated request with its serial reference result.
type workItem struct {
	mix  int
	body []byte
	want *mat.Matrix
}

// outcome is one completed request as observed by the client.
type outcome struct {
	mix     int
	route   string
	latency float64 // seconds, including queueing and transport
	gflops  float64 // server-side execution rate
	retries int     // 429 rounds before admission
	err     error
}

// MixReport is the per-shape slice of the benchmark report.
type MixReport struct {
	Shape        string  `json:"shape"`
	Route        string  `json:"route"`
	Count        int     `json:"count"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MeanMs       float64 `json:"mean_ms"`
	ServerGFlops float64 `json:"server_gflops_mean"`
}

// Report is the BENCH_server.json document.
type Report struct {
	Addr        string `json:"addr"`
	Concurrency int    `json:"concurrency"`
	Requests    int    `json:"requests"`
	Mix         string `json:"mix"`

	OK            int     `json:"ok"`
	Errors        int     `json:"errors"`
	Retries429    int     `json:"retries_429"`
	WallSeconds   float64 `json:"wall_s"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`

	Mixes []MixReport `json:"mixes"`

	ServerMetrics *server.MetricsSnapshot `json:"server_metrics,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("srumma-load: ")

	addr := flag.String("addr", "http://127.0.0.1:8711", "server base URL")
	concurrency := flag.Int("concurrency", 8, "concurrent client workers")
	requests := flag.Int("requests", 64, "total requests to issue")
	mixSpec := flag.String("mix", "32x32x32,96x96x96,192x192x192", "comma-separated MxKxN shapes, cycled")
	verify := flag.Bool("verify", true, "check every result against the serial kernel")
	tol := flag.Float64("tol", 1e-9, "max abs elementwise difference allowed under -verify")
	out := flag.String("out", "BENCH_server.json", "report path ('-' for stdout)")
	wait := flag.Duration("wait", 10*time.Second, "max time to wait for the server to report healthy")
	seed := flag.Uint64("seed", 1, "base seed for generated matrices")
	maxRetries := flag.Int("max-retries", 100, "429 retry rounds per request before giving up")
	flag.Parse()

	shapes, err := parseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	if err := waitHealthy(*addr, *wait); err != nil {
		log.Fatal(err)
	}

	// Pre-generate one template per mix entry (shared across repeats): the
	// request body bytes and the serial-kernel reference result.
	items := make([]workItem, len(shapes))
	for i, sh := range shapes {
		a := mat.Random(sh.m, sh.k, *seed+uint64(3*i))
		b := mat.Random(sh.k, sh.n, *seed+uint64(3*i)+1)
		req := server.MultiplyRequest{
			ID:    fmt.Sprintf("load-%s", sh),
			ARows: sh.m, ACols: sh.k, A: a.Data,
			BRows: sh.k, BCols: sh.n, B: b.Data,
		}
		body, err := json.Marshal(req)
		if err != nil {
			log.Fatal(err)
		}
		want := mat.New(sh.m, sh.n)
		if err := mat.Gemm(false, false, 1, a, b, 0, want); err != nil {
			log.Fatal(err)
		}
		items[i] = workItem{mix: i, body: body, want: want}
	}

	jobs := make(chan int)
	results := make([]outcome, *requests)
	var wg sync.WaitGroup
	client := &http.Client{}
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				it := items[idx%len(items)]
				results[idx] = issue(client, *addr, it, *verify, *tol, *maxRetries)
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start).Seconds()

	rep := buildReport(*addr, *concurrency, *requests, *mixSpec, shapes, results, wall)
	rep.ServerMetrics = fetchMetrics(*addr)

	if rep.Errors > 0 {
		for _, r := range results {
			if r.err != nil {
				log.Printf("FAIL %s: %v", shapes[r.mix], r.err)
			}
		}
	}
	writeReport(rep, *out)
	fmt.Printf("%d ok, %d errors, %d retry rounds (429), %.2f req/s, p50 %.1f ms, p99 %.1f ms\n",
		rep.OK, rep.Errors, rep.Retries429, rep.ThroughputRPS, rep.P50Ms, rep.P99Ms)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

func waitHealthy(addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not healthy after %s: %v", addr, wait, err)
			}
			return fmt.Errorf("server at %s not healthy after %s", addr, wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// issue posts one request, retrying on 429 backpressure (honoring
// Retry-After but capping the pause so load tests finish promptly).
func issue(client *http.Client, addr string, it workItem, verify bool, tol float64, maxRetries int) outcome {
	o := outcome{mix: it.mix}
	start := time.Now()
	for {
		resp, err := client.Post(addr+"/v1/multiply", "application/json", bytes.NewReader(it.body))
		if err != nil {
			o.err = err
			return o
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			pause := 10 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				pause = time.Duration(math.Min(float64(ra)*float64(time.Second), float64(250*time.Millisecond)))
			}
			resp.Body.Close()
			o.retries++
			if o.retries > maxRetries {
				o.err = fmt.Errorf("gave up after %d 429 rounds", maxRetries)
				return o
			}
			time.Sleep(pause)
			continue
		}
		var mresp server.MultiplyResponse
		decErr := json.NewDecoder(resp.Body).Decode(&mresp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			o.err = fmt.Errorf("status %d", resp.StatusCode)
			return o
		}
		if decErr != nil {
			o.err = decErr
			return o
		}
		o.latency = time.Since(start).Seconds()
		o.route = mresp.Route
		o.gflops = mresp.GFlops
		if verify {
			got := &mat.Matrix{Rows: mresp.Rows, Cols: mresp.Cols, Stride: mresp.Cols, Data: mresp.C}
			if got.Rows != it.want.Rows || got.Cols != it.want.Cols {
				o.err = fmt.Errorf("shape %dx%d, want %dx%d", got.Rows, got.Cols, it.want.Rows, it.want.Cols)
				return o
			}
			if diff := mat.MaxAbsDiff(got, it.want); diff > tol {
				o.err = fmt.Errorf("result mismatch vs serial kernel: max abs diff %g > %g", diff, tol)
				return o
			}
		}
		return o
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func buildReport(addr string, concurrency, requests int, mixSpec string, shapes []shape, results []outcome, wall float64) *Report {
	rep := &Report{Addr: addr, Concurrency: concurrency, Requests: requests, Mix: mixSpec, WallSeconds: wall}
	var all []float64
	perMix := make([][]float64, len(shapes))
	gflops := make([]float64, len(shapes))
	routes := make([]string, len(shapes))
	counts := make([]int, len(shapes))
	for _, r := range results {
		rep.Retries429 += r.retries
		if r.err != nil {
			rep.Errors++
			continue
		}
		rep.OK++
		all = append(all, r.latency)
		perMix[r.mix] = append(perMix[r.mix], r.latency)
		gflops[r.mix] += r.gflops
		routes[r.mix] = r.route
		counts[r.mix]++
	}
	sort.Float64s(all)
	rep.P50Ms = percentile(all, 0.50) * 1e3
	rep.P90Ms = percentile(all, 0.90) * 1e3
	rep.P99Ms = percentile(all, 0.99) * 1e3
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.OK) / wall
	}
	for i, sh := range shapes {
		lat := perMix[i]
		sort.Float64s(lat)
		var sum float64
		for _, v := range lat {
			sum += v
		}
		mr := MixReport{Shape: sh.String(), Route: routes[i], Count: counts[i],
			P50Ms: percentile(lat, 0.50) * 1e3, P99Ms: percentile(lat, 0.99) * 1e3}
		if counts[i] > 0 {
			mr.MeanMs = sum / float64(counts[i]) * 1e3
			mr.ServerGFlops = gflops[i] / float64(counts[i])
		}
		rep.Mixes = append(rep.Mixes, mr)
	}
	return rep
}

func fetchMetrics(addr string) *server.MetricsSnapshot {
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap server.MetricsSnapshot
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return nil
	}
	return &snap
}

func writeReport(rep *Report, path string) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if path == "-" {
		os.Stdout.Write(buf.Bytes())
		return
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", path)
}

// Command srumma-serve runs the GEMM service: persistent SRUMMA engine
// teams behind an admission-controlled HTTP front end.
//
//	srumma-serve -addr :8711 -nprocs 4 -teams 1
//
// Endpoints: POST /v1/multiply, GET /metrics, GET /healthz, GET /v1/info,
// and — with -trace-events — GET /debug/trace (Chrome trace-event JSON of
// the most recent engine/request/scheduler spans).
// SIGINT/SIGTERM triggers a graceful drain: in-flight requests finish (or
// hit their deadlines), then the engine teams are closed with leaked-rank
// detection.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	goruntime "runtime"
	"strings"
	"syscall"
	"time"

	"srumma/internal/armci"
	"srumma/internal/ipcrt"
	"srumma/internal/mat"
	"srumma/internal/server"
)

// transportName resolves the empty default for log lines.
func transportName(t string) string {
	if t == "" {
		return "unix"
	}
	return t
}

func main() {
	// Cluster mode re-executes this binary for its node ranks; a worker
	// copy diverts here and never returns.
	ipcrt.MaybeWorker()

	log.SetFlags(0)
	log.SetPrefix("srumma-serve: ")

	addr := flag.String("addr", ":8711", "listen address")
	nprocs := flag.Int("nprocs", 4, "SPMD ranks per engine team (perfect square)")
	ppn := flag.Int("procs-per-node", 0, "ranks per shared-memory domain (0: all)")
	teams := flag.Int("teams", 1, "persistent engine teams (max concurrent SRUMMA jobs)")
	queueCap := flag.Int("queue-cap", 0, "admitted-request bound; overflow gets 429 (0: 4*teams)")
	smallMNK := flag.Int("small-mnk", 0, "route products with M*N*K <= this to the local kernel (0: 128^3)")
	maxDim := flag.Int("max-dim", 0, "reject matrix dimensions beyond this (0: 4096)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	kernelThreads := flag.Int("kernel-threads", 0, "local-dgemm workers per rank (0: engine default)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "max time to drain in-flight work on shutdown")
	schedMode := flag.String("sched", "sched", `dispatch mode: "sched" (workload scheduler) or "fifo"`)
	maxTeams := flag.Int("max-teams", 0, "elastic pool ceiling; the pool grows from -teams toward it under backlog (0: fixed pool)")
	batchMax := flag.Int("batch-max", 0, "max queued small GEMMs coalesced into one team job (0: 32)")
	starveAfter := flag.Duration("starve-after", 0, "promote any request waiting this long regardless of class weights (0: 2s)")
	teamIdle := flag.Duration("team-idle", 0, "retire elastic teams idle this long (0: 30s)")
	traceEvents := flag.Int("trace-events", 0, "per-lane span ring size for GET /debug/trace (0: tracing off)")
	traceSample := flag.Int("trace-sample", 0, "record spans for one in every N requests (0 or 1: every request; needs -trace-events)")
	abft := flag.Bool("abft", false, "verify every SRUMMA task's C block with Huang-Abraham checksums; corrupted blocks are restored and recomputed")
	abftTol := flag.Float64("abft-tol", 0, "relative ABFT tolerance (0: engine default 1e-6)")
	noResume := flag.Bool("no-resume", false, "disable ledger-based resume: retried jobs restart from their inputs")
	maxTaskK := flag.Int("max-task-k", 0, "SRUMMA task contraction cap; finer tasks mean finer recovery units (0: one task per K block)")
	retryBudget := flag.Int("retry-budget", 0, "retries for recoverably-failed SRUMMA jobs (0: 2; negative: no retries)")
	retryBackoff := flag.Duration("retry-backoff", 0, "base pre-retry backoff, doubling per attempt (0: 10ms)")
	breakerThreshold := flag.Float64("breaker-threshold", 0, "per-route circuit breaker failure fraction (0: breaker off)")
	breakerWindow := flag.Int("breaker-window", 0, "breaker decision window in outcomes (0: 20)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "breaker open-state cooldown before a probe (0: 2s)")
	brownoutAt := flag.Float64("brownout-at", 0, "queue-depth fraction that sheds ABFT and batching (0: 0.9; negative: off)")
	cacheEntries := flag.Int("cache-entries", 0, "content-addressed result cache capacity in entries; enables SHA-256 operand digests, result caching and operand interning (0: off)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache capacity in bytes (0: 256 MiB when the cache is on)")
	cacheTTL := flag.Duration("cache-ttl", 0, "expire cached results this long after insertion (0: LRU eviction only)")
	jsonOnly := flag.Bool("json-only", false, "disable the binary wire: binary requests get 415, responses are always JSON")
	clusterOn := flag.Bool("cluster", false, "shard the distributed route across OS-process worker nodes instead of in-process teams")
	nodes := flag.Int("nodes", 0, "cluster worker nodes (0: 2; needs -cluster)")
	clusterPPN := flag.Int("ppn", 0, "ranks per emulated shared-memory domain on each node (0: -procs-per-node)")
	clusterTransport := flag.String("cluster-transport", "", `node RMA transport: "unix" (default) or "tcp"`)
	clusterListen := flag.String("listen", "", `fixed "host:port" for the node coordinators' TCP control listeners (node i binds port+i; the addresses srumma-worker -join dials; implies -cluster-transport tcp)`)
	clusterHeartbeat := flag.Duration("cluster-heartbeat", 0, "idle-node health-check period (0: 2s; negative: off)")
	hierOn := flag.Bool("hier", false, "hierarchical routing mode: two-level multiply, outer SUMMA panels across rank groups, inner SRUMMA within each group")
	hierGroup := flag.Int("hier-group", 0, "ranks per hierarchical group (0: one group per shared-memory domain; must nest in domains)")
	flag.Parse()

	ppnEff := *ppn
	if *clusterOn && *clusterPPN > 0 {
		ppnEff = *clusterPPN
	}

	s, err := server.New(server.Config{
		NProcs:           *nprocs,
		ProcsPerNode:     ppnEff,
		Teams:            *teams,
		QueueCap:         *queueCap,
		SmallMNK:         *smallMNK,
		MaxDim:           *maxDim,
		DefaultTimeout:   *timeout,
		KernelThreads:    *kernelThreads,
		SchedMode:        *schedMode,
		MaxTeams:         *maxTeams,
		BatchMax:         *batchMax,
		StarveAfter:      *starveAfter,
		TeamIdleAfter:    *teamIdle,
		TraceEvents:      *traceEvents,
		TraceSample:      *traceSample,
		ABFT:             *abft,
		ABFTTol:          *abftTol,
		NoResume:         *noResume,
		MaxTaskK:         *maxTaskK,
		RetryBudget:      *retryBudget,
		RetryBackoff:     *retryBackoff,
		BreakerThreshold: *breakerThreshold,
		BreakerWindow:    *breakerWindow,
		BreakerCooldown:  *breakerCooldown,
		BrownoutAt:       *brownoutAt,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
		CacheTTL:         *cacheTTL,
		JSONOnly:         *jsonOnly,
		Cluster:          *clusterOn,
		ClusterNodes:     *nodes,
		ClusterTransport: *clusterTransport,
		ClusterListen:    strings.TrimPrefix(*clusterListen, "tcp:"),
		ClusterHeartbeat: *clusterHeartbeat,
		Hier:             *hierOn,
		HierGroup:        *hierGroup,
	})
	if err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s: %d ranks/team, %d team(s), mode %s, kernel %s, GOMAXPROCS %d",
		l.Addr(), *nprocs, *teams, *schedMode, mat.KernelName(), goruntime.GOMAXPROCS(0))
	if *clusterOn {
		transport := *clusterTransport
		if transport == "" && *clusterListen != "" {
			transport = "tcp"
		}
		info := s.Metrics()
		log.Printf("cluster: %d worker nodes x %d ranks (ppn %d), transport %s",
			len(info.Cluster), *nprocs, ppnEff, transportName(transport))
		if transport == "tcp" {
			for _, nd := range info.Cluster {
				log.Printf("cluster: node %d control listener %s (srumma-worker -join target)", nd.ID, nd.CoordAddr)
			}
		}
	}
	if *hierOn {
		info := s.Metrics()
		log.Printf("hierarchical: %d group(s), intra-group shape %s", info.HierGroups, info.HierGroupShape)
	}
	log.Printf("default kernel threads/rank: %d", armci.DefaultKernelThreads(*nprocs))

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("%s: draining (grace %s)", sig, *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			log.Fatalf("serve: %v", err)
		}
		m := s.Metrics()
		fmt.Printf("served %d requests (%d rejected, %d errors, %d cancelled), %.2f GFLOP total\n",
			m.Completed, m.Rejected, m.Errors, m.Cancelled, m.FlopsTotal/1e9)
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
}

// Command srumma-serve runs the GEMM service: persistent SRUMMA engine
// teams behind an admission-controlled HTTP front end.
//
//	srumma-serve -addr :8711 -nprocs 4 -teams 1
//
// Endpoints: POST /v1/multiply, GET /metrics, GET /healthz, GET /v1/info,
// and — with -trace-events — GET /debug/trace (Chrome trace-event JSON of
// the most recent engine/request/scheduler spans).
// SIGINT/SIGTERM triggers a graceful drain: in-flight requests finish (or
// hit their deadlines), then the engine teams are closed with leaked-rank
// detection.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	goruntime "runtime"
	"syscall"
	"time"

	"srumma/internal/armci"
	"srumma/internal/mat"
	"srumma/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("srumma-serve: ")

	addr := flag.String("addr", ":8711", "listen address")
	nprocs := flag.Int("nprocs", 4, "SPMD ranks per engine team (perfect square)")
	ppn := flag.Int("procs-per-node", 0, "ranks per shared-memory domain (0: all)")
	teams := flag.Int("teams", 1, "persistent engine teams (max concurrent SRUMMA jobs)")
	queueCap := flag.Int("queue-cap", 0, "admitted-request bound; overflow gets 429 (0: 4*teams)")
	smallMNK := flag.Int("small-mnk", 0, "route products with M*N*K <= this to the local kernel (0: 128^3)")
	maxDim := flag.Int("max-dim", 0, "reject matrix dimensions beyond this (0: 4096)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	kernelThreads := flag.Int("kernel-threads", 0, "local-dgemm workers per rank (0: engine default)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "max time to drain in-flight work on shutdown")
	schedMode := flag.String("sched", "sched", `dispatch mode: "sched" (workload scheduler) or "fifo"`)
	maxTeams := flag.Int("max-teams", 0, "elastic pool ceiling; the pool grows from -teams toward it under backlog (0: fixed pool)")
	batchMax := flag.Int("batch-max", 0, "max queued small GEMMs coalesced into one team job (0: 32)")
	starveAfter := flag.Duration("starve-after", 0, "promote any request waiting this long regardless of class weights (0: 2s)")
	teamIdle := flag.Duration("team-idle", 0, "retire elastic teams idle this long (0: 30s)")
	traceEvents := flag.Int("trace-events", 0, "per-lane span ring size for GET /debug/trace (0: tracing off)")
	flag.Parse()

	s, err := server.New(server.Config{
		NProcs:         *nprocs,
		ProcsPerNode:   *ppn,
		Teams:          *teams,
		QueueCap:       *queueCap,
		SmallMNK:       *smallMNK,
		MaxDim:         *maxDim,
		DefaultTimeout: *timeout,
		KernelThreads:  *kernelThreads,
		SchedMode:      *schedMode,
		MaxTeams:       *maxTeams,
		BatchMax:       *batchMax,
		StarveAfter:    *starveAfter,
		TeamIdleAfter:  *teamIdle,
		TraceEvents:    *traceEvents,
	})
	if err != nil {
		log.Fatal(err)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s: %d ranks/team, %d team(s), mode %s, kernel %s, GOMAXPROCS %d",
		l.Addr(), *nprocs, *teams, *schedMode, mat.KernelName(), goruntime.GOMAXPROCS(0))
	log.Printf("default kernel threads/rank: %d", armci.DefaultKernelThreads(*nprocs))

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("%s: draining (grace %s)", sig, *drainGrace)
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			log.Fatalf("serve: %v", err)
		}
		m := s.Metrics()
		fmt.Printf("served %d requests (%d rejected, %d errors, %d cancelled), %.2f GFLOP total\n",
			m.Completed, m.Rejected, m.Errors, m.Cancelled, m.FlopsTotal/1e9)
	case err := <-serveErr:
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	}
}

// srumma-worker is one rank of the multi-process ipc engine. It is not
// meant to be run by hand: the coordinator (srumma-bench/srumma-trace with
// -engine ipc, srumma-serve -cluster, or ipcrt.Launch in a program) spawns
// it with the SRUMMA_IPC_* environment describing the rank, topology and
// run directory. Normally the coordinator re-executes its own binary
// instead; this command exists as the explicit worker for foreign
// launchers (Config.WorkerPath) and — with -join — as an EXTERNAL worker
// that dials a NoSpawn coordinator's advertised control address itself:
//
//	srumma-worker -join unix:/run/srumma/coord.sock -rank 2 -np 4 -ppn 2 -dir /run/srumma
//	srumma-worker -join tcp:coord-host:7411 -rank 2 -np 4 -ppn 2 -dir /run/srumma -transport tcp
package main

import (
	"flag"
	"fmt"
	"os"

	"srumma/internal/ipcrt"
)

func main() {
	ipcrt.MaybeWorker() // never returns when launched as a worker

	join := flag.String("join", "", `coordinator control address to join ("unix:/path" or "tcp:host:port")`)
	rank := flag.Int("rank", -1, "this worker's rank (needs -join)")
	np := flag.Int("np", 0, "total rank count of the cluster (needs -join)")
	ppn := flag.Int("ppn", 0, "ranks per emulated shared-memory domain (needs -join)")
	dir := flag.String("dir", "", "shared run directory for segment files and unix RMA sockets (needs -join)")
	transport := flag.String("transport", "", `RMA transport: "unix" (default) or "tcp"`)
	flag.Parse()

	if *join != "" {
		if *rank < 0 || *np <= 0 || *ppn <= 0 || *dir == "" {
			fmt.Fprintln(os.Stderr, "srumma-worker: -join needs -rank, -np, -ppn and -dir")
			os.Exit(2)
		}
		os.Exit(ipcrt.RunWorker(ipcrt.WorkerParams{
			Rank:      *rank,
			NP:        *np,
			PPN:       *ppn,
			Dir:       *dir,
			CoordAddr: *join,
			Transport: *transport,
		}))
	}

	fmt.Fprintln(os.Stderr, `srumma-worker: not launched by an ipc coordinator.

This binary is one rank of the multi-process SRUMMA engine and expects the
SRUMMA_IPC_WORKER / SRUMMA_IPC_RANK / SRUMMA_IPC_NP / SRUMMA_IPC_PPN /
SRUMMA_IPC_DIR environment set by the launcher, or an explicit -join
pointing at a NoSpawn coordinator. Use:

    srumma-bench -engine ipc -np 4 -ppn 2 ...
    srumma-serve -cluster -nodes 2 ...
    srumma-worker -join unix:/run/srumma/coord.sock -rank 0 -np 4 -ppn 2 -dir /run/srumma

or ipcrt.Launch from Go.`)
	os.Exit(2)
}

// srumma-worker is one rank of the multi-process ipc engine. It is not
// meant to be run by hand: the coordinator (srumma-bench/srumma-trace with
// -engine ipc, or ipcrt.Launch in a program) spawns it with the
// SRUMMA_IPC_* environment describing the rank, topology and run
// directory. Normally the coordinator re-executes its own binary instead;
// this command exists as the explicit worker for foreign launchers
// (Config.WorkerPath).
package main

import (
	"fmt"
	"os"

	"srumma/internal/ipcrt"
)

func main() {
	ipcrt.MaybeWorker() // never returns when launched as a worker

	fmt.Fprintln(os.Stderr, `srumma-worker: not launched by an ipc coordinator.

This binary is one rank of the multi-process SRUMMA engine and expects the
SRUMMA_IPC_WORKER / SRUMMA_IPC_RANK / SRUMMA_IPC_NP / SRUMMA_IPC_PPN /
SRUMMA_IPC_DIR environment set by the launcher. Use:

    srumma-bench -engine ipc -np 4 -ppn 2 ...
    srumma-trace -engine ipc -np 4 -ppn 2 ...

or ipcrt.Launch from Go.`)
	os.Exit(2)
}

package srumma

import (
	"fmt"
	"sort"

	"srumma/internal/bench"
	"srumma/internal/core"
	"srumma/internal/machine"
)

// Platform is a modeled machine (see Platforms for the available names).
type Platform = machine.Profile

// Platforms lists the modeled platform names from the paper's evaluation:
// "linux-myrinet", "ibm-sp", "cray-x1", "sgi-altix".
func Platforms() []string {
	var names []string
	for n := range machine.All() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PlatformByName returns the named platform model.
func PlatformByName(name string) (Platform, error) { return machine.ByName(name) }

// Dims are the multiplication sizes: C is M x N with contraction length K.
type Dims = core.Dims

// SimOptions configure one virtual-time simulation run.
type SimOptions struct {
	// Platform is a name from Platforms().
	Platform string
	Procs    int
	Dims     Dims
	Case     Case
	// Algorithm is AlgSRUMMA (default), AlgPdgemm, AlgSUMMA or AlgCannon.
	Algorithm string

	// Protocol/ablation knobs (paper Figures 5 and 9).
	DisableZeroCopy bool
	Blocking        bool // single-buffer blocking gets instead of the pipeline
	NoDiagonalShift bool
	NoSharedFirst   bool
	ForceCopyShared bool // copy-based shared-memory flavor (Cray X1 style)
	NB              int  // pdgemm/SUMMA panel width
	// MaxTaskK caps SRUMMA's task granularity along the contraction
	// dimension (0 = whole owner blocks); bounds buffer memory and refines
	// the pipeline.
	MaxTaskK int
}

// SimReport is the outcome of a simulation.
type SimReport struct {
	Seconds float64 // virtual seconds of the slowest rank
	GFLOPS  float64

	BytesShared int64
	BytesRemote int64
	Messages    int64
	// Overlap is the fraction of one-sided communication hidden behind
	// computation: 1 - waitTime/commVolumeTime, clamped to [0, 1]. Only
	// meaningful for SRUMMA runs.
	Overlap float64
}

// Simulate runs one configuration on the virtual-time engine.
func Simulate(o SimOptions) (SimReport, error) {
	prof, err := machine.ByName(o.Platform)
	if err != nil {
		return SimReport{}, err
	}
	alg := o.Algorithm
	if alg == "" {
		alg = AlgSRUMMA
	}
	cfg := bench.MatmulConfig{
		Platform:        prof,
		Procs:           o.Procs,
		Dims:            o.Dims,
		Case:            o.Case,
		Alg:             alg,
		SingleBuffer:    o.Blocking,
		NoDiagonalShift: o.NoDiagonalShift,
		NoSharedFirst:   o.NoSharedFirst,
		NB:              o.NB,
		MaxTaskK:        o.MaxTaskK,
		DisableZeroCopy: o.DisableZeroCopy,
	}
	if o.ForceCopyShared {
		fl := core.FlavorCopy
		cfg.ForceFlavor = &fl
	}
	res, err := bench.RunMatmul(cfg)
	if err != nil {
		return SimReport{}, err
	}
	rep := SimReport{
		Seconds:     res.Seconds,
		GFLOPS:      res.GFLOPS,
		BytesShared: res.Stats.BytesShared,
		BytesRemote: res.Stats.BytesRemote,
		Messages:    res.Stats.Msgs,
	}
	if total := res.Stats.WaitTime + res.Stats.ComputeTime; total > 0 && res.Stats.ComputeTime > 0 {
		ov := 1 - res.Stats.WaitTime/total
		if ov < 0 {
			ov = 0
		}
		rep.Overlap = ov
	}
	return rep, nil
}

// BandwidthPoint is one (message size, bandwidth) sample from a protocol
// microbenchmark.
type BandwidthPoint = bench.BandwidthPoint

// OverlapPoint is one (message size, achievable overlap %) sample.
type OverlapPoint = bench.OverlapPoint

// Protocol names for the communication microbenchmarks.
const (
	ProtoGet    = "armci-get" // one-sided blocking get between nodes
	ProtoMPI    = "mpi"       // two-sided send/receive (half round trip)
	ProtoMemcpy = "shmem"     // shared-memory copy within a node
)

// MeasureBandwidth runs the protocol bandwidth microbenchmark behind the
// paper's Figures 6 and 8.
func MeasureBandwidth(platform, proto string, sizes []int) ([]BandwidthPoint, error) {
	prof, err := machine.ByName(platform)
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = bench.CommSizes
	}
	switch proto {
	case ProtoGet:
		return bench.BandwidthGet(prof, sizes)
	case ProtoMPI:
		return bench.BandwidthMPI(prof, sizes)
	case ProtoMemcpy:
		return bench.BandwidthMemcpy(prof, sizes)
	}
	return nil, fmt.Errorf("srumma: unknown protocol %q", proto)
}

// MeasureOverlap runs the communication/computation overlap microbenchmark
// behind the paper's Figure 7 (ProtoGet or ProtoMPI).
func MeasureOverlap(platform, proto string, sizes []int) ([]OverlapPoint, error) {
	prof, err := machine.ByName(platform)
	if err != nil {
		return nil, err
	}
	if len(sizes) == 0 {
		sizes = bench.CommSizes
	}
	switch proto {
	case ProtoGet:
		return bench.OverlapGet(prof, sizes)
	case ProtoMPI:
		return bench.OverlapMPI(prof, sizes)
	}
	return nil, fmt.Errorf("srumma: unknown protocol %q for overlap", proto)
}

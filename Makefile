# Convenience targets for the SRUMMA reproduction.

GO ?= go

.PHONY: all build test race cover bench bench-kernel verify repro chaos fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...
	$(GO) test -run=NONE -bench=BenchmarkGemm/512 -benchtime=1x ./internal/mat

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper figure/table.
bench:
	$(GO) test -bench=. -benchmem ./...

# Local dgemm kernel sweep on real hardware: seed vs packed vs parallel
# kernels plus an end-to-end real-engine multiply (see BENCH_kernel.json
# for recorded results).
bench-kernel:
	$(GO) run ./cmd/srumma-bench -kernel

# Cross-algorithm numerical correctness sweep on the real engine.
verify:
	$(GO) run ./cmd/srumma-verify

# Regenerate the paper's full evaluation (figures 5-10, Table 1, model,
# isoefficiency, ablations, memory, block-size sweep, KLAPI projection).
repro:
	$(GO) run ./cmd/srumma-bench -all

# Fault-injection sweep on the real engine: every fault class, three
# seeds, recovery layer active (see DESIGN.md "Fault model").
chaos:
	$(GO) run ./cmd/srumma-bench -chaos

# Short fuzzing session over the numeric kernels, index math, and the
# fault planner.
fuzz:
	$(GO) test -fuzz=FuzzGemmMatchesNaive -fuzztime=30s ./internal/mat
	$(GO) test -fuzz=FuzzIntersect -fuzztime=15s ./internal/grid
	$(GO) test -fuzz=FuzzCyclicMapping -fuzztime=15s ./internal/grid
	$(GO) test -fuzz=FuzzPlan -fuzztime=15s ./internal/faults

clean:
	$(GO) clean ./...

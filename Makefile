# Convenience targets for the SRUMMA reproduction.

GO ?= go

.PHONY: all build test race cover bench bench-kernel bench-serve bench-sched serve-smoke trace-smoke ipc-smoke cluster-smoke hier-smoke bench-hier multihost-smoke verify repro chaos chaos-serve bench-recover fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...
	$(GO) test -run=NONE -bench=BenchmarkGemm/512 -benchtime=1x ./internal/mat
	$(MAKE) serve-smoke

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper figure/table.
bench:
	$(GO) test -bench=. -benchmem ./...

# Local dgemm kernel sweep on real hardware: seed vs packed vs parallel
# kernels plus an end-to-end real-engine multiply (see BENCH_kernel.json
# for recorded results).
bench-kernel:
	$(GO) run ./cmd/srumma-bench -kernel

# End-to-end smoke of the GEMM service: start srumma-serve (workload
# scheduler mode, elastic pool, result cache on), drive a class-tagged
# deadline-hinted mix through srumma-load — small shapes coalesce into
# batched team jobs, the large shape runs as an engine singleton, 429
# backpressure exercised via a tiny queue (every result checked against
# the serial kernel) — then repeat part of the mix over the binary wire:
# identical operands must hit the result cache (the load tool asserts the
# echoed result digests match across wires). Finally SIGTERM and assert a
# clean drain (the server exits non-zero on a WatchdogError).
serve-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/srumma-serve ./cmd/srumma-serve; \
	$(GO) build -o $$tmp/srumma-load ./cmd/srumma-load; \
	$$tmp/srumma-serve -addr 127.0.0.1:18711 -nprocs 4 -teams 1 -max-teams 2 \
	    -queue-cap 2 -batch-max 8 -cache-entries 64 & pid=$$!; \
	set +e; \
	$$tmp/srumma-load -addr http://127.0.0.1:18711 -concurrency 6 -requests 24 \
	    -mix 24x24x24,96x96x96,160x160x160 -classes interactive:2,batch:1 \
	    -deadline 5s -out $$tmp/bench.json; ok=$$?; \
	$$tmp/srumma-load -addr http://127.0.0.1:18711 -concurrency 4 -requests 12 \
	    -mix 96x96x96 -wire binary -min-cache-hits 1 -out $$tmp/bench_bin.json; okbin=$$?; \
	kill -TERM $$pid 2>/dev/null; wait $$pid; drain=$$?; \
	set -e; test $$ok -eq 0; test $$okbin -eq 0; test $$drain -eq 0; \
	grep -q '"interactive"' $$tmp/bench.json; grep -q '"batch"' $$tmp/bench.json; \
	grep -q '"wire": "binary"' $$tmp/bench_bin.json; \
	grep -q '"cache_hits"' $$tmp/bench_bin.json; \
	echo "serve-smoke: PASS (clean drain, class stats recorded, binary wire + cache hit verified)"

# Scheduler benchmark: (a) batched coalescing of queued small GEMMs vs
# per-request engine dispatch (bit-identity asserted), (b) mixed
# interactive/batch load through sched vs fifo dispatch (interactive p99
# gain). Recorded to BENCH_sched.json.
bench-sched:
	$(GO) run ./cmd/srumma-load -bench-sched -out BENCH_sched.json

# Serving benchmarks, each a keyed section of BENCH_server.json:
#   wire          — one 256^3 GEMM over the JSON wire, the binary wire and
#                   a warm result cache (p50/p99, exact bytes, bit-identity);
#   cluster       — the same stream served in-process vs sharded across
#                   OS-process worker nodes (unix and tcp transports),
#                   bit-identical across arms;
#   cache_shaping — hit rate and throughput multiplier vs cache size/TTL
#                   under a shared-weights revisit profile;
#   overload      — breaker threshold/window sweep (500-rate vs
#                   availability) and brownout fraction sweep (tail
#                   latency vs degraded requests).
bench-serve:
	$(GO) run ./cmd/srumma-load -bench-wire -out BENCH_server.json
	$(GO) run ./cmd/srumma-load -bench-cluster -out BENCH_server.json
	$(GO) run ./cmd/srumma-load -bench-cache -out BENCH_server.json
	$(GO) run ./cmd/srumma-load -bench-overload -out BENCH_server.json

# Trace both engines end to end: a traced multiply on the virtual-time
# model and on the real engine, Chrome trace-event JSON exported from
# each and validated, overlap ratio recorded in the run summaries. The
# real-engine run is held to the overlap floor recorded in
# BENCH_trace.json (0.5 against a measured 1.0): the run fails if the
# comm/compute overlap the paper claims regresses below it.
trace-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/srumma-trace ./cmd/srumma-trace; \
	$$tmp/srumma-trace -engine sim -n 400 -procs 4 -width 60 \
	    -chrome $$tmp/sim.json -out $$tmp/sim_run.json > /dev/null; \
	$$tmp/srumma-trace -engine real -n 256 -procs 4 -ppn 1 -width 60 \
	    -min-overlap 0.5 -chrome $$tmp/real.json -out $$tmp/real_run.json > /dev/null; \
	$$tmp/srumma-trace -validate $$tmp/sim.json; \
	$$tmp/srumma-trace -validate $$tmp/real.json; \
	grep -q '"overlap_ratio"' $$tmp/sim_run.json; \
	grep -q '"overlap_ratio"' $$tmp/real_run.json; \
	grep -q '"overlap_floor"' $$tmp/real_run.json; \
	echo "trace-smoke: PASS (both engines traced, Chrome exports valid, overlap floor held)"

# Multi-process engine gate: 2 emulated hosts x 2 ranks each on
# localhost, every rank an OS process (mmap segments inside a node,
# unix-socket RMA between nodes). All four transpose cases must be
# bit-identical to the in-process armci engine running the same job on
# the same topology; the coordinator and every worker run under -race.
# A traced ipc run then has to report a measured overlap ratio.
ipc-smoke:
	@set -e; tmp=$$(mktemp -d); trap 'rm -rf $$tmp' EXIT; \
	$(GO) run -race ./cmd/srumma-bench -engine ipc -np 4 -ppn 2 -quick; \
	$(GO) run ./cmd/srumma-trace -engine ipc -n 192 -procs 4 -ppn 2 -width 60 \
	    -out $$tmp/ipc_run.json > /dev/null; \
	grep -q '"overlap_ratio"' $$tmp/ipc_run.json; \
	grep -q '"ppn": 2' $$tmp/ipc_run.json; \
	echo "ipc-smoke: PASS (4 processes bit-identical to armci under -race, traced overlap recorded)"

# Cluster serving gate, race-enabled: /v1/multiply sharded across 2
# emulated worker nodes x 2 OS-process ranks each, all four transpose
# cases bit-identical to the in-process route, one induced worker death
# absorbed by node replacement + handler retry (HTTP 200, same bits), and
# one seeded mid-compute crash resumed from the salvaged task ledger
# rather than restarted. Coordinator and every worker run under -race.
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterServe' ./internal/server

# Hierarchical (two-level) multiplication gate, race-enabled: a two-group
# run on the sim and ipc engines. The property tests pin hier-vs-flat
# BIT-identity across all four transpose cases on the armci and ipc
# engines, the sim test pins measured remote volume == the analytic
# per-level prediction for both paths, the serving tests cover the hier
# route end to end including the kill-one-group chaos resume, and the
# flat-vs-hier volume sweep must still find its crossover.
hier-smoke:
	$(GO) test -race -count=1 ./internal/hier
	$(GO) test -race -count=1 -run 'TestHierIPCBitIdentical' ./internal/ipcrt
	$(GO) test -race -count=1 -run 'TestHierServe' ./internal/server
	$(GO) run ./cmd/srumma-bench -hier -quick | grep -q 'crossover: hierarchical volume strictly beats flat'
	@echo "hier-smoke: PASS (two-level bit-identical to flat on armci+ipc under -race, volume crossover reproduced)"

# Flat-vs-hierarchical P sweep on the virtual-time engine, recorded to
# BENCH_hier.json (measured remote bytes exactly equal the analytic
# per-level volumes, or the sweep fails).
bench-hier:
	$(GO) run ./cmd/srumma-bench -hier -hier-out BENCH_hier.json

# Two-host deployment recipe: coordinator + external srumma-worker -join
# ranks over TCP on localhost (the same wiring split across real
# containers), cross-host overlap ratio merged into BENCH_trace.json
# under the "multihost" key.
multihost-smoke:
	sh scripts/multihost-trace.sh

# Cross-algorithm numerical correctness sweep on the real engine.
verify:
	$(GO) run ./cmd/srumma-verify

# Regenerate the paper's full evaluation (figures 5-10, Table 1, model,
# isoefficiency, ablations, memory, block-size sweep, KLAPI projection).
repro:
	$(GO) run ./cmd/srumma-bench -all

# Fault-injection sweep on the real engine: every fault class, three
# seeds, recovery layer active (see DESIGN.md "Fault model"), plus the
# serving-layer case of a team crash mid-batch requeueing the batch's
# unfinished tasks onto a replacement team.
chaos:
	$(GO) run ./cmd/srumma-bench -chaos
	$(GO) test -count=1 -run TestServerSchedChaosCrashRequeue ./internal/server

# End-to-end recovery gate, race-enabled: a real server under a seeded
# fault plan (mid-compute rank crash + silent block corruption) must
# return a bit-correct product for every accepted request, with the
# recovery counters proving jobs were resumed (not restarted) and
# corrupted blocks detected and recomputed. Covers sched and FIFO modes
# plus the circuit-breaker 503 path.
chaos-serve:
	$(GO) test -race -count=1 -run 'TestChaosServe|TestBreakerServes503' ./internal/server

# Crash-recovery benchmark: one planted mid-compute crash recovered by
# ledger resume vs full restart; the resumed retry must re-execute
# strictly fewer tasks and both products must be bit-identical to a
# fault-free run. Recorded to BENCH_recover.json.
bench-recover:
	$(GO) run ./cmd/srumma-load -chaos -out BENCH_recover.json

# Short fuzzing session over the numeric kernels, index math, the fault
# planner, and the binary wire decoder (crash-free on arbitrary bytes,
# encode/decode round-trip bit-identical).
fuzz:
	$(GO) test -fuzz=FuzzGemmMatchesNaive -fuzztime=30s ./internal/mat
	$(GO) test -fuzz=FuzzIntersect -fuzztime=15s ./internal/grid
	$(GO) test -fuzz=FuzzCyclicMapping -fuzztime=15s ./internal/grid
	$(GO) test -fuzz=FuzzPlan -fuzztime=15s ./internal/faults
	$(GO) test -fuzz=FuzzBinWire -fuzztime=15s ./internal/server
	$(GO) test -fuzz=FuzzIPCWire -fuzztime=15s ./internal/ipcrt
	$(GO) test -fuzz=FuzzTCPWire -fuzztime=15s ./internal/ipcrt

clean:
	$(GO) clean ./...

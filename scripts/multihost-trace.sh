#!/bin/sh
# multihost-trace.sh — two-host (two-container) deployment recipe for the
# multi-process engine, ending in a cross-host traced multiply whose
# overlap ratio is recorded into BENCH_trace.json.
#
# Topology: NP ranks split into NP/PPN shared-memory domains. The
# coordinator (srumma-trace -engine ipc -no-spawn) binds a TCP control
# listener and waits; every rank is an EXTERNAL srumma-worker that joins
# over TCP. Ranks of one domain must share a machine (they mmap each
# other's segment files through -dir); distinct domains may live on
# different hosts — their traffic rides the TCP RMA protocol, and the
# recorded overlap ratio then measures communication hidden across a real
# host boundary.
#
# Real two-container use (host A runs the coordinator + domain 0, host B
# runs domain 1; DIR must be a path valid on each host — it is per-host
# scratch, only domain-mates share it):
#
#   hostA$ srumma-trace -engine ipc -no-spawn -procs 4 -ppn 2 -n 512 \
#            -listen 0.0.0.0:7411 -dir /tmp/srumma-mh \
#            -out BENCH_trace.json -key multihost &
#   hostA$ for r in 0 1; do
#            srumma-worker -join tcp:hostA:7411 -rank $r -np 4 -ppn 2 \
#              -dir /tmp/srumma-mh -transport tcp &
#          done
#   hostB$ for r in 2 3; do
#            srumma-worker -join tcp:hostA:7411 -rank $r -np 4 -ppn 2 \
#              -dir /tmp/srumma-mh -transport tcp &
#          done
#
# Run WITHOUT arguments this script demonstrates the same wiring on one
# machine: same coordinator, same external-join workers, same TCP RMA
# path across the domain cut — so it doubles as the CI smoke for the
# multi-host plumbing.
set -eu

NP=${NP:-4}
PPN=${PPN:-2}
N=${N:-384}
PORT=${PORT:-7411}
OUT=${OUT:-BENCH_trace.json}
BIN=${BIN:-$(mktemp -d)}
DIR=${DIR:-$(mktemp -d /tmp/srumma-mh.XXXXXX)}

echo "multihost-trace: building srumma-trace and srumma-worker into $BIN"
go build -o "$BIN/srumma-trace" ./cmd/srumma-trace
go build -o "$BIN/srumma-worker" ./cmd/srumma-worker

echo "multihost-trace: starting coordinator (listen 127.0.0.1:$PORT, dir $DIR)"
"$BIN/srumma-trace" -engine ipc -no-spawn -procs "$NP" -ppn "$PPN" -n "$N" \
  -listen "127.0.0.1:$PORT" -dir "$DIR" -out "$OUT" -key multihost &
COORD=$!

# Give the listener a moment to bind, then join the workers. Each domain's
# worker set stands in for one host/container.
sleep 1
r=0
while [ "$r" -lt "$NP" ]; do
  "$BIN/srumma-worker" -join "tcp:127.0.0.1:$PORT" -rank "$r" -np "$NP" \
    -ppn "$PPN" -dir "$DIR" -transport tcp &
  r=$((r + 1))
done

if ! wait $COORD; then
  echo "multihost-trace: FAIL (coordinator exited nonzero)" >&2
  exit 1
fi
wait

grep -q '"multihost"' "$OUT"
grep -q '"overlap_ratio"' "$OUT"
grep -q '"external_workers"' "$OUT"
echo "multihost-trace: PASS (cross-host overlap ratio recorded in $OUT)"

// Package srumma is a Go reproduction of SRUMMA (Krishnan & Nieplocha,
// IPDPS 2004): a parallel dense matrix multiplication built on one-sided
// remote memory access and direct shared-memory access instead of message
// passing, with Cannon-class algorithmic efficiency.
//
// The package offers two ways to run the algorithm:
//
//   - A real execution engine (Cluster): SPMD "processes" are goroutines in
//     one address space communicating through an ARMCI-like one-sided
//     runtime. Results are real numbers — this is the engine for using the
//     library and for correctness work.
//
//   - A virtual-time simulation engine (Simulate): the same algorithm code
//     runs against models of the paper's four platforms (Linux/Myrinet
//     cluster, IBM SP, Cray X1, SGI Altix), reproducing the paper's
//     performance figures on hardware that no longer exists. See
//     EXPERIMENTS.md for the paper-vs-model comparison.
//
// The message-passing baselines the paper compares against (ScaLAPACK-style
// pdgemm, SUMMA, Cannon's algorithm) are implemented too and selectable via
// the Algorithm option.
package srumma

import (
	"context"
	"fmt"
	"time"

	"srumma/internal/armci"
	"srumma/internal/cannon"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/fox"
	"srumma/internal/grid"
	"srumma/internal/mat"
	"srumma/internal/pdgemm"
	"srumma/internal/rt"
	"srumma/internal/summa"
)

// Matrix is a dense row-major matrix (see its methods for element access,
// views and comparisons).
type Matrix = mat.Matrix

// NewMatrix returns a zero r x c matrix.
func NewMatrix(r, c int) *Matrix { return mat.New(r, c) }

// RandomMatrix returns an r x c matrix with deterministic pseudo-random
// entries in [-1, 1).
func RandomMatrix(r, c int, seed uint64) *Matrix { return mat.Random(r, c, seed) }

// Case selects the transpose variant of C = op(A) op(B).
type Case = core.Case

// Transpose cases.
const (
	NN = core.NN // C = A B
	TN = core.TN // C = Aᵀ B
	NT = core.NT // C = A Bᵀ
	TT = core.TT // C = Aᵀ Bᵀ
)

// Algorithm names.
const (
	AlgSRUMMA = "srumma"
	AlgPdgemm = "pdgemm"
	AlgSUMMA  = "summa"
	AlgCannon = "cannon"
	AlgFox    = "fox"
)

// MultiplyOptions configure Cluster.Multiply. The zero value runs SRUMMA on
// C = A B.
type MultiplyOptions struct {
	Case Case
	// Algorithm is one of AlgSRUMMA (default), AlgPdgemm, AlgSUMMA,
	// AlgCannon or AlgFox (Cannon and Fox require a square process grid
	// and Case NN).
	Algorithm string
	// NB is the panel/tile width for the SUMMA/pdgemm baselines.
	NB int
	// SRUMMA ablations (see the paper §3.1): disable the diagonal-shift
	// task order, the shared-memory-first ordering, or the double-buffered
	// pipeline.
	NoDiagonalShift bool
	NoSharedFirst   bool
	SingleBuffer    bool
	// KernelThreads sets how many goroutines each rank's local dgemm may
	// use (SRUMMA only). Zero keeps the engine's oversubscription guard:
	// GOMAXPROCS / nprocs workers per rank, at least one, so nprocs ranks
	// multiplying at once do not oversubscribe the machine.
	KernelThreads int
	// Chaos, when non-nil, runs the multiply under deterministic fault
	// injection with the recovery layer active (see ChaosOptions).
	Chaos *ChaosOptions
	// Context, when non-nil, bounds the multiply (SRUMMA only): if it is
	// cancelled or its deadline passes, every process stops between tasks,
	// releases its pooled scratch, and Multiply returns ErrCancelled with C
	// left partially updated. The engine stays usable afterwards.
	Context context.Context
}

// ErrCancelled is returned by Multiply when MultiplyOptions.Context is
// cancelled mid-flight.
var ErrCancelled = core.ErrCancelled

// FaultConfig parameterizes the deterministic fault injector.
type FaultConfig = faults.Config

// RecoveryConfig tunes the resilience layer (timeouts, retry budget,
// checksums, straggler threshold, degradation point).
type RecoveryConfig = faults.RecoveryConfig

// ChaosOptions run a Multiply under deterministic fault injection: every
// one-sided transfer may be dropped, delayed, corrupted or slowed per the
// seeded fault plan, while the resilience layer retries, refetches and
// routes around stragglers. The run executes under a watchdog, so an
// unrecoverable fault surfaces as an error naming the faulty rank and op —
// never a hang, never a silently wrong C.
type ChaosOptions struct {
	Faults   FaultConfig
	Recovery RecoveryConfig
	// Timeout bounds the whole run (default 60s).
	Timeout time.Duration
}

// Report summarizes one Multiply run.
type Report struct {
	Seconds float64 // wall time of the slowest process through the multiply
	GFLOPS  float64 // aggregate 2MNK / time / 1e9

	// Communication accounting summed over processes.
	BytesShared int64 // one-sided traffic within shared-memory domains
	BytesRemote int64 // one-sided traffic between domains
	Messages    int64 // two-sided messages (baselines)

	// Resilience accounting, summed over processes (chaos runs only).
	Faults          int64 // injected faults
	Retries         int64 // ops re-issued after a timeout
	Refetches       int64 // ops re-issued after a checksum mismatch
	ChecksumErrors  int64 // corrupted payloads detected
	StragglerSteals int64 // tasks re-ordered away from slow ranks
	DegradedRanks   int64 // ranks that fell back to blocking transfers
}

// Cluster is a real execution engine: nprocs SPMD goroutine processes
// grouped into shared-memory domains of procsPerNode ranks (or one
// machine-wide domain).
type Cluster struct {
	topo     rt.Topology
	g        *grid.Grid
	team     *armci.Team
	lastComm commTotals
}

type commTotals struct {
	shared, remote, msgs                                 int64
	faults, retries, refetches, badsums, steals, degrade int64
}

// NewCluster creates an engine with nprocs processes, procsPerNode ranks
// per node, and optionally one machine-wide shared-memory domain (the
// paper's SGI Altix / Cray X1 configuration).
func NewCluster(nprocs, procsPerNode int, sharedMachine bool) (*Cluster, error) {
	topo := rt.Topology{NProcs: nprocs, ProcsPerNode: procsPerNode, DomainSpansMachine: sharedMachine}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	g, err := grid.Square(nprocs)
	if err != nil {
		return nil, err
	}
	return &Cluster{topo: topo, g: g}, nil
}

// NewClusterFor is NewCluster with the process grid chosen for an m x n
// result shape instead of defaulting to the most-square factorization:
// skinny results get stretched grids that minimize per-process
// communication.
func NewClusterFor(nprocs, procsPerNode int, sharedMachine bool, m, n int) (*Cluster, error) {
	topo := rt.Topology{NProcs: nprocs, ProcsPerNode: procsPerNode, DomainSpansMachine: sharedMachine}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	g, err := grid.BestFor(nprocs, m, n)
	if err != nil {
		return nil, err
	}
	return &Cluster{topo: topo, g: g}, nil
}

// Persist switches the cluster to a persistent engine team: its SPMD rank
// goroutines are spawned once and parked between Multiply calls, keeping
// size-class buffer pools and kernel-thread configuration warm. Results are
// bit-identical to the default one-shot mode; what changes is per-call
// overhead (no spawn/teardown, zero steady-state allocations in the
// buffer-pool cycle). Call Close when done. Chaos runs always use a
// dedicated one-shot engine, persistent or not.
func (cl *Cluster) Persist() error {
	if cl.team != nil {
		return nil
	}
	tm, err := armci.NewTeam(cl.topo)
	if err != nil {
		return err
	}
	cl.team = tm
	return nil
}

// Persistent reports whether a persistent engine team is active.
func (cl *Cluster) Persistent() bool { return cl.team != nil }

// Close drains the persistent engine team, if any. A rank that fails to
// park within the grace period is reported as a *WatchdogError-wrapped
// leak. Close is a no-op for one-shot clusters; the cluster reverts to
// one-shot mode afterwards either way.
func (cl *Cluster) Close() error {
	if cl.team == nil {
		return nil
	}
	err := cl.team.Close()
	cl.team = nil
	return err
}

// Procs returns the process count.
func (cl *Cluster) Procs() int { return cl.topo.NProcs }

// GridShape returns the process grid dimensions.
func (cl *Cluster) GridShape() (p, q int) { return cl.g.P, cl.g.Q }

// Multiply computes C = op(A) op(B) in parallel and returns C with a
// performance report. A and B are the STORED operands: for Case TN pass A
// as the k x m matrix that will be used transposed, and so on.
func (cl *Cluster) Multiply(a, b *Matrix, opts MultiplyOptions) (*Matrix, *Report, error) {
	d, err := cl.dims(a, b, opts.Case)
	if err != nil {
		return nil, nil, err
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = AlgSRUMMA
	}
	var cMat *Matrix
	rep := &Report{}
	var body func(c rt.Ctx)
	co := driver.NewCollect(cl.topo.NProcs)
	durations := make([]float64, cl.topo.NProcs)

	switch alg {
	case AlgSRUMMA:
		cOpts := core.Options{
			Case:            opts.Case,
			Flavor:          core.FlavorDirect, // real shared memory is cacheable
			NoDiagonalShift: opts.NoDiagonalShift,
			NoSharedFirst:   opts.NoSharedFirst,
			SingleBuffer:    opts.SingleBuffer,
			KernelThreads:   opts.KernelThreads,
		}
		if opts.Context != nil {
			cOpts.Cancel = opts.Context.Done()
		}
		da, db, dc := core.Dists(cl.g, d, opts.Case)
		rankErrs := make([]error, cl.topo.NProcs)
		body = func(c rt.Ctx) {
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			driver.LoadBlock(c, da, ga, a)
			driver.LoadBlock(c, db, gb, b)
			t0 := c.Now()
			rankErrs[c.Rank()] = core.Multiply(c, cl.g, d, cOpts, ga, gb, gc)
			durations[c.Rank()] = c.Now() - t0
			co.Deposit(c, driver.StoreBlock(c, dc, gc))
		}
		if err := cl.run(body, opts.Chaos); err != nil {
			return nil, nil, err
		}
		for _, rerr := range rankErrs {
			if rerr != nil {
				return nil, nil, rerr
			}
		}
		dcD := grid.NewBlockDist(cl.g, d.M, d.N)
		cMat, err = dcD.Gather(co.Blocks)
	case AlgSUMMA:
		sOpts := summa.Options{Case: summa.Case(opts.Case), NB: opts.NB}
		sd := summa.Dims(d)
		da, db, dc := summa.Dists(cl.g, sd, sOpts.Case)
		body = func(c rt.Ctx) {
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			driver.LoadBlock(c, da, ga, a)
			driver.LoadBlock(c, db, gb, b)
			t0 := c.Now()
			if err := summa.Multiply(c, cl.g, sd, sOpts, ga, gb, gc); err != nil {
				panic(err)
			}
			durations[c.Rank()] = c.Now() - t0
			co.Deposit(c, driver.StoreBlock(c, dc, gc))
		}
		if err := cl.run(body, opts.Chaos); err != nil {
			return nil, nil, err
		}
		cMat, err = dc.Gather(co.Blocks)
	case AlgPdgemm:
		pOpts := pdgemm.Options{Case: pdgemm.Case(opts.Case), NB: opts.NB}
		pd := pdgemm.Dims(d)
		da, db, dc, derr := pdgemm.Dists(cl.g, pd, pOpts.Case, pOpts.NB)
		if derr != nil {
			return nil, nil, derr
		}
		body = func(c rt.Ctx) {
			ga := driver.AllocCyclic(c, da)
			gb := driver.AllocCyclic(c, db)
			gc := driver.AllocCyclic(c, dc)
			driver.LoadCyclic(c, da, ga, a)
			driver.LoadCyclic(c, db, gb, b)
			t0 := c.Now()
			if err := pdgemm.Multiply(c, cl.g, pd, pOpts, ga, gb, gc); err != nil {
				panic(err)
			}
			durations[c.Rank()] = c.Now() - t0
			co.Deposit(c, driver.StoreCyclic(c, dc, gc))
		}
		if err := cl.run(body, opts.Chaos); err != nil {
			return nil, nil, err
		}
		cMat, err = dc.Gather(co.Blocks)
	case AlgCannon:
		if opts.Case != NN {
			return nil, nil, fmt.Errorf("srumma: Cannon supports C=AB only")
		}
		cd := cannon.Dims(d)
		da, db, dc := cannon.Dists(cl.g, cd)
		body = func(c rt.Ctx) {
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			driver.LoadBlock(c, da, ga, a)
			driver.LoadBlock(c, db, gb, b)
			t0 := c.Now()
			if err := cannon.Multiply(c, cl.g, cd, ga, gb, gc); err != nil {
				panic(err)
			}
			durations[c.Rank()] = c.Now() - t0
			co.Deposit(c, driver.StoreBlock(c, dc, gc))
		}
		if err := cl.run(body, opts.Chaos); err != nil {
			return nil, nil, err
		}
		cMat, err = dc.Gather(co.Blocks)
	case AlgFox:
		if opts.Case != NN {
			return nil, nil, fmt.Errorf("srumma: Fox supports C=AB only")
		}
		fd := fox.Dims(d)
		da, db, dc := fox.Dists(cl.g, fd)
		body = func(c rt.Ctx) {
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			driver.LoadBlock(c, da, ga, a)
			driver.LoadBlock(c, db, gb, b)
			t0 := c.Now()
			if err := fox.Multiply(c, cl.g, fd, ga, gb, gc); err != nil {
				panic(err)
			}
			durations[c.Rank()] = c.Now() - t0
			co.Deposit(c, driver.StoreBlock(c, dc, gc))
		}
		if err := cl.run(body, opts.Chaos); err != nil {
			return nil, nil, err
		}
		cMat, err = dc.Gather(co.Blocks)
	default:
		return nil, nil, fmt.Errorf("srumma: unknown algorithm %q", alg)
	}
	if err != nil {
		return nil, nil, err
	}
	for _, dt := range durations {
		if dt > rep.Seconds {
			rep.Seconds = dt
		}
	}
	if rep.Seconds > 0 {
		rep.GFLOPS = 2 * float64(d.M) * float64(d.N) * float64(d.K) / rep.Seconds / 1e9
	}
	rep.BytesShared, rep.BytesRemote, rep.Messages = cl.lastComm.shared, cl.lastComm.remote, cl.lastComm.msgs
	rep.Faults, rep.Retries, rep.Refetches = cl.lastComm.faults, cl.lastComm.retries, cl.lastComm.refetches
	rep.ChecksumErrors, rep.StragglerSteals, rep.DegradedRanks = cl.lastComm.badsums, cl.lastComm.steals, cl.lastComm.degrade
	return cMat, rep, nil
}

func (cl *Cluster) run(body func(rt.Ctx), chaos *ChaosOptions) error {
	var stats []*rt.Stats
	var err error
	if chaos != nil {
		plan, perr := faults.NewPlan(chaos.Faults, cl.topo.NProcs)
		if perr != nil {
			return perr
		}
		timeout := chaos.Timeout
		if timeout <= 0 {
			timeout = 60 * time.Second
		}
		inner := body
		stats, err = armci.RunWithTimeout(cl.topo, timeout, func(c rt.Ctx) {
			inner(faults.Resilient(faults.Inject(c, plan, nil), chaos.Recovery))
		})
	} else if cl.team != nil {
		stats, err = cl.team.Run(body)
	} else {
		stats, err = armci.Run(cl.topo, body)
	}
	if err != nil {
		return err
	}
	cl.lastComm = commTotals{}
	for _, s := range stats {
		cl.lastComm.shared += s.BytesShared
		cl.lastComm.remote += s.BytesRemote
		cl.lastComm.msgs += s.Msgs
		cl.lastComm.faults += s.FaultsInjected
		cl.lastComm.retries += s.FaultRetries
		cl.lastComm.refetches += s.FaultRefetches
		cl.lastComm.badsums += s.ChecksumErrors
		cl.lastComm.steals += s.StragglerSteals
		cl.lastComm.degrade += s.DegradedMode
	}
	return nil
}

// dims derives (M, N, K) from the stored operand shapes and validates
// conformance.
func (cl *Cluster) dims(a, b *Matrix, cs Case) (core.Dims, error) {
	m, k := a.Rows, a.Cols
	if cs.TransA() {
		m, k = a.Cols, a.Rows
	}
	kb, n := b.Rows, b.Cols
	if cs.TransB() {
		kb, n = b.Cols, b.Rows
	}
	if k != kb {
		return core.Dims{}, fmt.Errorf("srumma: inner dimensions disagree: op(A) is %dx%d, op(B) is %dx%d", m, k, kb, n)
	}
	d := core.Dims{M: m, N: n, K: k}
	return d, d.Validate()
}

// Package redist implements distributed matrix transposition: given a
// distributed matrix S, fill a distributed matrix T (with its own
// distribution) so that T(i,j) = S(j,i). The pdgemm and SUMMA baselines use
// it to reduce transposed cases to the NN kernel, mirroring how PBLAS
// handles PxTRANS operands with an internal redistribution step — and
// paying the extra communication the paper's Table 1 shows pdgemm paying on
// transposed inputs.
//
// Both variants (regular block and block-cyclic distributions) follow the
// same protocol: every rank enumerates, in a deterministic order agreed
// with its peers, the rectangular regions of its local data needed by each
// peer, posts all receives, sends all packed regions, then unpacks each
// received region transposed. One message per rank pair.
package redist

import (
	"sort"

	"srumma/internal/grid"
	"srumma/internal/rt"
)

// transposeTag is the tag space for redistribution traffic.
const transposeTag = 7700

// region is a rectangle of the SOURCE matrix S: rows [RI, RI+RN), cols
// [CJ, CJ+CN), in global coordinates.
type region struct {
	RI, RN, CJ, CN int
}

func (r region) elems() int { return r.RN * r.CN }

// TransposeBlock fills gdst (distributed by dd, shape c x r) with the
// transpose of gsrc (distributed by ds, shape r x c). Collective.
func TransposeBlock(c rt.Ctx, ds, dd *grid.BlockDist, gsrc, gdst rt.Global) {
	if ds.Rows != dd.Cols || ds.Cols != dd.Rows {
		panic("redist: TransposeBlock shape mismatch")
	}
	me := c.Rank()
	g := ds.G

	// Regions of S that rank r needs: S rows = r's T-col range, S cols =
	// r's T-row range. Intersected with sender's S block, this yields at
	// most one rectangle per (sender, receiver) pair.
	need := func(recv int) region {
		pr, pc := g.Coords(recv)
		ti, tj := dd.BlockOrigin(pr, pc)
		tr, tc := dd.BlockShape(pr, pc)
		return region{RI: tj, RN: tc, CJ: ti, CN: tr}
	}
	mine := func(rank int) region {
		pr, pc := g.Coords(rank)
		si, sj := ds.BlockOrigin(pr, pc)
		sr, sc := ds.BlockShape(pr, pc)
		return region{RI: si, RN: sr, CJ: sj, CN: sc}
	}
	intersect := func(a, b region) (region, bool) {
		ri := max(a.RI, b.RI)
		rhi := min(a.RI+a.RN, b.RI+b.RN)
		cj := max(a.CJ, b.CJ)
		chi := min(a.CJ+a.CN, b.CJ+b.CN)
		if rhi <= ri || chi <= cj {
			return region{}, false
		}
		return region{RI: ri, RN: rhi - ri, CJ: cj, CN: chi - cj}, true
	}

	myS := mine(me)
	myT := need(me)

	// Post receives first (deadlock-free even under rendezvous).
	type pending struct {
		from int
		reg  region
		buf  rt.Buffer
		h    rt.Handle
	}
	var recvs []pending
	for from := 0; from < g.Size(); from++ {
		reg, ok := intersect(mine(from), myT)
		if !ok {
			continue
		}
		buf := c.LocalBuf(reg.elems())
		h := c.Irecv(from, transposeTag, buf, 0, reg.elems())
		recvs = append(recvs, pending{from: from, reg: reg, buf: buf, h: h})
	}
	// Pack and send my contributions.
	var sends []rt.Handle
	srcBuf := c.Local(gsrc)
	for to := 0; to < g.Size(); to++ {
		reg, ok := intersect(myS, need(to))
		if !ok {
			continue
		}
		pk := c.LocalBuf(reg.elems())
		c.Pack(rt.Mat{
			Buf:  srcBuf,
			Off:  (reg.RI-myS.RI)*myS.CN + (reg.CJ - myS.CJ),
			LD:   myS.CN,
			Rows: reg.RN,
			Cols: reg.CN,
		}, pk, 0)
		sends = append(sends, c.Isend(to, transposeTag, pk, 0, reg.elems()))
	}
	// Complete and unpack transposed: S region (RI..,CJ..) lands in T at
	// rows CJ.., cols RI.. .
	// My T block geometry: need(me) encodes it as an S region, so the
	// T-block origin is (myT.CJ, myT.RI) and its column count (the local
	// leading dimension) is myT.RN.
	dstBuf := c.Local(gdst)
	for _, p := range recvs {
		c.Wait(p.h)
		c.UnpackTranspose(p.buf, 0, rt.Mat{
			Buf:  dstBuf,
			Off:  (p.reg.CJ-myT.CJ)*myT.RN + (p.reg.RI - myT.RI),
			LD:   myT.RN,
			Rows: p.reg.CN,
			Cols: p.reg.RN,
		})
	}
	for _, h := range sends {
		c.Wait(h)
	}
	c.Barrier()
}

// tileRef identifies one nb x nb tile of the DESTINATION matrix T by its
// tile coordinates.
type tileRef struct {
	BI, BJ int
}

// TransposeCyclic fills gdst (block-cyclic by dd, shape c x r) with the
// transpose of gsrc (block-cyclic by ds, shape r x c). Both distributions
// must use the same grid and tile size. Collective.
func TransposeCyclic(c rt.Ctx, ds, dd *grid.CyclicDist, gsrc, gdst rt.Global) {
	if ds.Rows != dd.Cols || ds.Cols != dd.Rows || ds.NB != dd.NB || ds.G != dd.G {
		panic("redist: TransposeCyclic mismatched distributions")
	}
	me := c.Rank()
	g := ds.G
	nb := ds.NB
	myRow, myCol := g.Coords(me)

	tileShape := func(rows, cols, bi, bj int) (r, cc int) {
		r = min(nb, rows-bi*nb)
		cc = min(nb, cols-bj*nb)
		return
	}
	nTilesR := (dd.Rows + nb - 1) / nb
	nTilesC := (dd.Cols + nb - 1) / nb

	// Destination side: my T tiles, grouped by source owner. T tile
	// (bi, bj) = transpose of S tile (bj, bi), owned by grid (bj mod P,
	// bi mod Q). Order within a group: ascending (bi, bj) — the sender
	// enumerates the same order.
	recvTiles := make(map[int][]tileRef)
	for bi := myRow; bi < nTilesR; bi += g.P {
		for bj := myCol; bj < nTilesC; bj += g.Q {
			owner := g.Rank(bj%g.P, bi%g.Q)
			recvTiles[owner] = append(recvTiles[owner], tileRef{BI: bi, BJ: bj})
		}
	}
	// Source side: my S tiles, grouped by destination owner, ordered by the
	// destination's (bi=sbj, bj=sbi) so streams match element for element.
	sTilesR := (ds.Rows + nb - 1) / nb
	sTilesC := (ds.Cols + nb - 1) / nb
	sendTiles := make(map[int][]tileRef) // stored as DEST tile refs
	for sbi := myRow; sbi < sTilesR; sbi += g.P {
		for sbj := myCol; sbj < sTilesC; sbj += g.Q {
			dst := g.Rank(sbj%g.P, sbi%g.Q)
			sendTiles[dst] = append(sendTiles[dst], tileRef{BI: sbj, BJ: sbi})
		}
	}
	for _, ts := range sendTiles {
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].BI != ts[j].BI {
				return ts[i].BI < ts[j].BI
			}
			return ts[i].BJ < ts[j].BJ
		})
	}
	streamElems := func(tiles []tileRef) int {
		n := 0
		for _, tr := range tiles {
			r, cc := tileShape(dd.Rows, dd.Cols, tr.BI, tr.BJ)
			n += r * cc
		}
		return n
	}

	// Post receives.
	type pending struct {
		tiles []tileRef
		buf   rt.Buffer
		h     rt.Handle
	}
	recvs := make(map[int]*pending)
	for from := 0; from < g.Size(); from++ {
		tiles := recvTiles[from]
		if len(tiles) == 0 {
			continue
		}
		n := streamElems(tiles)
		buf := c.LocalBuf(n)
		recvs[from] = &pending{tiles: tiles, buf: buf, h: c.Irecv(from, transposeTag+1, buf, 0, n)}
	}
	// Pack and send: each DEST tile (bi, bj) corresponds to MY S tile
	// (bj, bi); pack it untransposed (receiver transposes on unpack).
	srcBuf := c.Local(gsrc)
	_, myLC := ds.LocalShape(me)
	var sends []rt.Handle
	for to := 0; to < g.Size(); to++ {
		tiles := sendTiles[to]
		if len(tiles) == 0 {
			continue
		}
		pk := c.LocalBuf(streamElems(tiles))
		off := 0
		for _, tr := range tiles {
			sbi, sbj := tr.BJ, tr.BI
			r, cc := tileShape(ds.Rows, ds.Cols, sbi, sbj)
			li := (sbi / g.P) * nb
			lj := (sbj / g.Q) * nb
			c.Pack(rt.Mat{Buf: srcBuf, Off: li*myLC + lj, LD: myLC, Rows: r, Cols: cc}, pk, off)
			off += r * cc
		}
		sends = append(sends, c.Isend(to, transposeTag+1, pk, 0, off))
	}
	// Unpack transposed.
	dstBuf := c.Local(gdst)
	_, myTC := dd.LocalShape(me)
	for from := 0; from < g.Size(); from++ {
		p := recvs[from]
		if p == nil {
			continue
		}
		c.Wait(p.h)
		off := 0
		for _, tr := range p.tiles {
			r, cc := tileShape(dd.Rows, dd.Cols, tr.BI, tr.BJ)
			li := (tr.BI / g.P) * nb
			lj := (tr.BJ / g.Q) * nb
			// Packed data is the S tile (cc x r as seen in T terms? no:
			// S tile is r(S-rows) x cc... see below) — the S tile has shape
			// (cols x rows) of the T tile: T tile is r x cc, S tile is
			// cc? Keep it straight: T tile (bi,bj) is r x cc; its source S
			// tile (bj,bi) is cc x r and was packed row-major, which is
			// exactly what UnpackTranspose expects.
			c.UnpackTranspose(p.buf, off, rt.Mat{Buf: dstBuf, Off: li*myTC + lj, LD: myTC, Rows: r, Cols: cc})
			off += r * cc
		}
	}
	for _, h := range sends {
		c.Wait(h)
	}
	c.Barrier()
}

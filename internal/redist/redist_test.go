package redist

import (
	"testing"
	"testing/quick"

	"srumma/internal/armci"
	"srumma/internal/driver"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/simrt"
)

func checkBlockTranspose(t *testing.T, p, q, rows, cols int) {
	t.Helper()
	g, _ := grid.New(p, q)
	ds := grid.NewBlockDist(g, rows, cols)
	dd := grid.NewBlockDist(g, cols, rows)
	src := mat.Indexed(rows, cols)
	co := driver.NewCollect(g.Size())
	topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
	_, err := armci.Run(topo, func(c rt.Ctx) {
		gs := driver.AllocBlock(c, ds)
		gd := driver.AllocBlock(c, dd)
		driver.LoadBlock(c, ds, gs, src)
		TransposeBlock(c, ds, dd, gs, gd)
		co.Deposit(c, driver.StoreBlock(c, dd, gd))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dd.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got, src.Transpose()) {
		t.Errorf("block transpose wrong for grid %dx%d, %dx%d matrix", p, q, rows, cols)
	}
}

func TestTransposeBlockVariousShapes(t *testing.T) {
	checkBlockTranspose(t, 2, 2, 8, 8)
	checkBlockTranspose(t, 2, 3, 10, 14)
	checkBlockTranspose(t, 3, 2, 7, 11) // uneven chunks
	checkBlockTranspose(t, 1, 4, 5, 12) // row of processes
	checkBlockTranspose(t, 4, 1, 12, 5) // column of processes
	checkBlockTranspose(t, 1, 1, 6, 9)  // trivial
	checkBlockTranspose(t, 3, 3, 2, 11) // more procs than rows
}

func TestTransposeBlockQuick(t *testing.T) {
	f := func(rr, cc, pp uint8) bool {
		rows := 1 + int(rr%20)
		cols := 1 + int(cc%20)
		grids := [][2]int{{2, 2}, {2, 3}, {3, 2}, {1, 4}}
		pq := grids[int(pp)%len(grids)]
		g, _ := grid.New(pq[0], pq[1])
		ds := grid.NewBlockDist(g, rows, cols)
		dd := grid.NewBlockDist(g, cols, rows)
		src := mat.Random(rows, cols, uint64(rr)*7+uint64(cc))
		co := driver.NewCollect(g.Size())
		topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
		_, err := armci.Run(topo, func(c rt.Ctx) {
			gs := driver.AllocBlock(c, ds)
			gd := driver.AllocBlock(c, dd)
			driver.LoadBlock(c, ds, gs, src)
			TransposeBlock(c, ds, dd, gs, gd)
			co.Deposit(c, driver.StoreBlock(c, dd, gd))
		})
		if err != nil {
			return false
		}
		got, err := dd.Gather(co.Blocks)
		if err != nil {
			return false
		}
		return mat.Equal(got, src.Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func checkCyclicTranspose(t *testing.T, p, q, rows, cols, nb int) {
	t.Helper()
	g, _ := grid.New(p, q)
	ds, err := grid.NewCyclicDist(g, rows, cols, nb)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := grid.NewCyclicDist(g, cols, rows, nb)
	if err != nil {
		t.Fatal(err)
	}
	src := mat.Indexed(rows, cols)
	co := driver.NewCollect(g.Size())
	topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
	_, err = armci.Run(topo, func(c rt.Ctx) {
		gs := driver.AllocCyclic(c, ds)
		gd := driver.AllocCyclic(c, dd)
		driver.LoadCyclic(c, ds, gs, src)
		TransposeCyclic(c, ds, dd, gs, gd)
		co.Deposit(c, driver.StoreCyclic(c, dd, gd))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dd.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(got, src.Transpose()) {
		t.Errorf("cyclic transpose wrong: grid %dx%d, %dx%d, nb=%d", p, q, rows, cols, nb)
	}
}

func TestTransposeCyclicVariousShapes(t *testing.T) {
	checkCyclicTranspose(t, 2, 2, 8, 8, 2)
	checkCyclicTranspose(t, 2, 3, 13, 9, 2) // edge tiles
	checkCyclicTranspose(t, 2, 2, 10, 6, 4)
	checkCyclicTranspose(t, 3, 2, 7, 11, 3)
	checkCyclicTranspose(t, 2, 2, 5, 5, 8) // nb larger than matrix
	checkCyclicTranspose(t, 1, 1, 6, 4, 2)
}

func TestTransposeCyclicQuick(t *testing.T) {
	f := func(rr, cc, nb8, pp uint8) bool {
		rows := 1 + int(rr%24)
		cols := 1 + int(cc%24)
		nb := 1 + int(nb8%5)
		grids := [][2]int{{2, 2}, {2, 3}, {3, 2}}
		pq := grids[int(pp)%len(grids)]
		g, _ := grid.New(pq[0], pq[1])
		ds, _ := grid.NewCyclicDist(g, rows, cols, nb)
		dd, _ := grid.NewCyclicDist(g, cols, rows, nb)
		src := mat.Random(rows, cols, uint64(rr)+uint64(cc)*13+uint64(nb8))
		co := driver.NewCollect(g.Size())
		topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
		_, err := armci.Run(topo, func(c rt.Ctx) {
			gs := driver.AllocCyclic(c, ds)
			gd := driver.AllocCyclic(c, dd)
			driver.LoadCyclic(c, ds, gs, src)
			TransposeCyclic(c, ds, dd, gs, gd)
			co.Deposit(c, driver.StoreCyclic(c, dd, gd))
		})
		if err != nil {
			return false
		}
		got, err := dd.Gather(co.Blocks)
		if err != nil {
			return false
		}
		return mat.Equal(got, src.Transpose())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeOnSimEngine(t *testing.T) {
	// Both transposes must run and terminate on the sim engine.
	prof := machine.LinuxMyrinet()
	g, _ := grid.New(2, 4)
	ds := grid.NewBlockDist(g, 128, 96)
	dd := grid.NewBlockDist(g, 96, 128)
	cs, _ := grid.NewCyclicDist(g, 128, 96, 16)
	cd, _ := grid.NewCyclicDist(g, 96, 128, 16)
	res, err := simrt.Run(prof, 8, func(c rt.Ctx) {
		gs := driver.AllocBlock(c, ds)
		gd := driver.AllocBlock(c, dd)
		TransposeBlock(c, ds, dd, gs, gd)
		g2s := driver.AllocCyclic(c, cs)
		g2d := driver.AllocCyclic(c, cd)
		TransposeCyclic(c, cs, cd, g2s, g2d)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestTransposeBlockShapeMismatchPanics(t *testing.T) {
	g, _ := grid.New(2, 2)
	ds := grid.NewBlockDist(g, 8, 8)
	dd := grid.NewBlockDist(g, 8, 9)
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	_, err := armci.Run(topo, func(c rt.Ctx) {
		gs := driver.AllocBlock(c, ds)
		gd := driver.AllocBlock(c, dd)
		TransposeBlock(c, ds, dd, gs, gd)
	})
	if err == nil {
		t.Fatal("expected shape mismatch panic")
	}
}

package pdgemm

import (
	"testing"
	"testing/quick"

	"srumma/internal/armci"
	"srumma/internal/driver"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/simrt"
)

func runReal(t *testing.T, p, q int, d Dims, opts Options, seedA, seedB uint64) *mat.Matrix {
	t.Helper()
	g, err := grid.New(p, q)
	if err != nil {
		t.Fatal(err)
	}
	da, db, dc, err := Dists(g, d, opts.Case, opts.NB)
	if err != nil {
		t.Fatal(err)
	}
	aGlob := mat.Random(da.Rows, da.Cols, seedA)
	bGlob := mat.Random(db.Rows, db.Cols, seedB)
	co := driver.NewCollect(g.Size())
	topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
	_, err = armci.Run(topo, func(c rt.Ctx) {
		ga := driver.AllocCyclic(c, da)
		gb := driver.AllocCyclic(c, db)
		gc := driver.AllocCyclic(c, dc)
		driver.LoadCyclic(c, da, ga, aGlob)
		driver.LoadCyclic(c, db, gb, bGlob)
		if err := Multiply(c, g, d, opts, ga, gb, gc); err != nil {
			panic(err)
		}
		co.Deposit(c, driver.StoreCyclic(c, dc, gc))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dc.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func check(t *testing.T, p, q int, d Dims, opts Options) {
	t.Helper()
	got := runReal(t, p, q, d, opts, 51, 52)
	ar, ac := d.M, d.K
	if opts.Case.TransA() {
		ar, ac = d.K, d.M
	}
	br, bc := d.K, d.N
	if opts.Case.TransB() {
		br, bc = d.N, d.K
	}
	a := mat.Random(ar, ac, 51)
	b := mat.Random(br, bc, 52)
	want := mat.New(d.M, d.N)
	if err := mat.GemmNaive(opts.Case.TransA(), opts.Case.TransB(), 1, a, b, 0, want); err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-10*float64(d.K) {
		t.Errorf("grid %dx%d %+v dims %+v: diff %g", p, q, opts, d, diff)
	}
}

func TestPdgemmNN(t *testing.T) {
	for _, pq := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {3, 2}} {
		check(t, pq[0], pq[1], Dims{M: 20, N: 24, K: 28}, Options{NB: 4})
	}
}

func TestPdgemmAllCases(t *testing.T) {
	for _, cs := range []Case{NN, TN, NT, TT} {
		check(t, 2, 3, Dims{M: 18, N: 22, K: 26}, Options{Case: cs, NB: 4})
		check(t, 2, 2, Dims{M: 15, N: 13, K: 17}, Options{Case: cs, NB: 3})
	}
}

func TestPdgemmTileWidths(t *testing.T) {
	for _, nb := range []int{1, 2, 5, 16, 100} {
		check(t, 2, 2, Dims{M: 16, N: 16, K: 16}, Options{NB: nb})
	}
}

func TestPdgemmBcastVariants(t *testing.T) {
	check(t, 2, 3, Dims{M: 20, N: 20, K: 20}, Options{NB: 4, BinomialBcast: true})
	check(t, 2, 3, Dims{M: 20, N: 20, K: 20}, Options{NB: 4, Segment: 11})
}

func TestPdgemmQuick(t *testing.T) {
	f := func(mm, nn, kk, cc8, nb8 uint8) bool {
		d := Dims{M: 1 + int(mm%20), N: 1 + int(nn%20), K: 1 + int(kk%20)}
		opts := Options{Case: Case(cc8 % 4), NB: 1 + int(nb8%6)}
		g, _ := grid.New(2, 2)
		da, db, dc, err := Dists(g, d, opts.Case, opts.NB)
		if err != nil {
			return false
		}
		seed := uint64(mm)*31 + uint64(kk)
		aGlob := mat.Random(da.Rows, da.Cols, seed)
		bGlob := mat.Random(db.Rows, db.Cols, seed+1)
		co := driver.NewCollect(4)
		topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
		_, err = armci.Run(topo, func(c rt.Ctx) {
			ga := driver.AllocCyclic(c, da)
			gb := driver.AllocCyclic(c, db)
			gcG := driver.AllocCyclic(c, dc)
			driver.LoadCyclic(c, da, ga, aGlob)
			driver.LoadCyclic(c, db, gb, bGlob)
			if err := Multiply(c, g, d, opts, ga, gb, gcG); err != nil {
				panic(err)
			}
			co.Deposit(c, driver.StoreCyclic(c, dc, gcG))
		})
		if err != nil {
			return false
		}
		got, err := dc.Gather(co.Blocks)
		if err != nil {
			return false
		}
		want := mat.New(d.M, d.N)
		if mat.GemmNaive(opts.Case.TransA(), opts.Case.TransB(), 1, aGlob, bGlob, 0, want) != nil {
			return false
		}
		return mat.MaxAbsDiff(got, want) <= 1e-10*float64(d.K)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPdgemmOnSimEngineAllPlatforms(t *testing.T) {
	for name, prof := range machine.All() {
		prof := prof
		t.Run(name, func(t *testing.T) {
			g, _ := grid.New(2, 4)
			d := Dims{M: 256, N: 256, K: 256}
			da, db, dc, _ := Dists(g, d, NN, 64)
			res, err := simrt.Run(prof, 8, func(c rt.Ctx) {
				ga := driver.AllocCyclic(c, da)
				gb := driver.AllocCyclic(c, db)
				gcG := driver.AllocCyclic(c, dc)
				if err := Multiply(c, g, d, Options{NB: 64}, ga, gb, gcG); err != nil {
					panic(err)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Time <= 0 {
				t.Fatal("no virtual time")
			}
		})
	}
}

// Package pdgemm implements the ScaLAPACK/PBLAS-style baseline the paper
// measures against: SUMMA running over a two-dimensional block-cyclic
// distribution (the PBLAS data layout), with transposed operands reduced to
// NN by a distributed transpose (the PxTRANS redistribution step). All
// communication is two-sided message passing — broadcasts of A column
// panels along process rows and B row panels along process columns — which
// is exactly the property SRUMMA's one-sided design outperforms on shared
// memory systems.
package pdgemm

import (
	"fmt"

	"srumma/internal/grid"
	"srumma/internal/mp"
	"srumma/internal/redist"
	"srumma/internal/rt"
)

// DefaultNB is the block-cyclic tile and panel width used when Options.NB
// is zero.
const DefaultNB = 64

// Case mirrors the dgemm transpose cases.
type Case int

// The four transpose cases.
const (
	NN Case = iota
	TN
	NT
	TT
)

// TransA reports whether A is transposed.
func (cs Case) TransA() bool { return cs == TN || cs == TT }

// TransB reports whether B is transposed.
func (cs Case) TransB() bool { return cs == NT || cs == TT }

// Dims are the operation sizes (C is M x N, contraction K).
type Dims struct{ M, N, K int }

// Options configure the pdgemm baseline.
type Options struct {
	Case Case
	NB   int // tile/panel width; DefaultNB when zero
	// BinomialBcast uses a binomial tree instead of the pipelined ring.
	BinomialBcast bool
	// Segment is the ring-broadcast pipeline segment in elements.
	Segment int
}

// Dists returns the block-cyclic distributions of the stored operands.
func Dists(g *grid.Grid, d Dims, cs Case, nb int) (da, db, dc *grid.CyclicDist, err error) {
	if nb <= 0 {
		nb = DefaultNB
	}
	ar, ac := d.M, d.K
	if cs.TransA() {
		ar, ac = d.K, d.M
	}
	br, bc := d.K, d.N
	if cs.TransB() {
		br, bc = d.N, d.K
	}
	if da, err = grid.NewCyclicDist(g, ar, ac, nb); err != nil {
		return
	}
	if db, err = grid.NewCyclicDist(g, br, bc, nb); err != nil {
		return
	}
	dc, err = grid.NewCyclicDist(g, d.M, d.N, nb)
	return
}

const (
	tagA = 8400
	tagB = 8500
)

// Multiply runs pdgemm collectively: C = op(A) op(B) with block-cyclic
// operands per Dists. C is overwritten.
func Multiply(c rt.Ctx, g *grid.Grid, d Dims, opts Options, ga, gb, gc rt.Global) error {
	if d.M <= 0 || d.N <= 0 || d.K <= 0 {
		return fmt.Errorf("pdgemm: dimensions %+v must be positive", d)
	}
	if g.Size() != c.Size() {
		return fmt.Errorf("pdgemm: grid needs %d ranks, runtime has %d", g.Size(), c.Size())
	}
	nb := opts.NB
	if nb <= 0 {
		nb = DefaultNB
	}
	me := c.Rank()
	myRow, myCol := g.Coords(me)
	c.Barrier()

	// Reduce transposed operands to NN layout.
	daNN, _ := grid.NewCyclicDist(g, d.M, d.K, nb)
	dbNN, _ := grid.NewCyclicDist(g, d.K, d.N, nb)
	aNN, bNN := ga, gb
	if opts.Case.TransA() {
		daT, _ := grid.NewCyclicDist(g, d.K, d.M, nb)
		r, cc := daNN.LocalShape(me)
		aNN = c.Malloc(r * cc)
		redist.TransposeCyclic(c, daT, daNN, ga, aNN)
	}
	if opts.Case.TransB() {
		dbT, _ := grid.NewCyclicDist(g, d.N, d.K, nb)
		r, cc := dbNN.LocalShape(me)
		bNN = c.Malloc(r * cc)
		redist.TransposeCyclic(c, dbT, dbNN, gb, bNN)
	}

	mLoc, kLocA := daNN.LocalShape(me)
	_, nLoc := dbNN.LocalShape(me)
	dcD, _ := grid.NewCyclicDist(g, d.M, d.N, nb)
	cr, cc := dcD.LocalShape(me)
	if gc.LenAt(me) != cr*cc {
		return fmt.Errorf("pdgemm: C segment %d does not match local %dx%d", gc.LenAt(me), cr, cc)
	}

	rowGroup := g.RowRanks(myRow)
	colGroup := g.ColRanks(myCol)
	aPanel := c.LocalBuf(mLoc * nb)
	bPanel := c.LocalBuf(nb * nLoc)
	aLocal := c.Local(aNN)
	bLocal := c.Local(bNN)
	cLocal := c.Local(gc)

	bcast := func(root int, group []int, buf rt.Buffer, n, tag int) {
		if opts.BinomialBcast {
			mp.Bcast(c, root, group, buf, 0, n, tag)
			return
		}
		seg := opts.Segment
		if seg <= 0 {
			seg = n
		}
		mp.RingBcast(c, root, group, buf, 0, n, seg, tag)
	}

	nTiles := (d.K + nb - 1) / nb
	for kt := 0; kt < nTiles; kt++ {
		w := nb
		if rem := d.K - kt*nb; rem < w {
			w = rem
		}
		// A panel: global k-tile kt lives on process column kt mod Q at
		// local column offset (kt/Q)*nb.
		ocA := kt % g.Q
		aRoot := g.Rank(myRow, ocA)
		if me == aRoot && mLoc > 0 {
			c.Pack(rt.Mat{Buf: aLocal, Off: (kt / g.Q) * nb, LD: kLocA, Rows: mLoc, Cols: w}, aPanel, 0)
		}
		if mLoc > 0 {
			bcast(aRoot, rowGroup, aPanel, mLoc*w, tagA+kt%64)
		}
		// B panel: on process row kt mod P at local row offset (kt/P)*nb.
		orB := kt % g.P
		bRoot := g.Rank(orB, myCol)
		if me == bRoot && nLoc > 0 {
			c.Pack(rt.Mat{Buf: bLocal, Off: (kt / g.P) * nb * nLoc, LD: nLoc, Rows: w, Cols: nLoc}, bPanel, 0)
		}
		if nLoc > 0 {
			bcast(bRoot, colGroup, bPanel, w*nLoc, tagB+kt%64)
		}
		if mLoc > 0 && nLoc > 0 {
			beta := 1.0
			if kt == 0 {
				beta = 0
			}
			c.Gemm(1,
				rt.Mat{Buf: aPanel, LD: w, Rows: mLoc, Cols: w},
				rt.Mat{Buf: bPanel, LD: nLoc, Rows: w, Cols: nLoc},
				beta,
				rt.Mat{Buf: cLocal, LD: nLoc, Rows: mLoc, Cols: nLoc})
		}
	}
	if opts.Case.TransA() {
		c.Free(aNN)
	}
	if opts.Case.TransB() {
		c.Free(bNN)
	}
	c.Barrier()
	return nil
}

package rt

import "math"

// Payload checksums are the end-to-end integrity check of the fault
// tolerance layer: the engine computes the checksum of the authoritative
// source region (the "sender side"), the recovery layer computes the
// checksum of whatever landed in the destination buffer (the "receiver
// side"), and a mismatch marks the transfer as lost or corrupted. FNV-1a
// over the IEEE-754 bit patterns is used — cheap, stateless, and sensitive
// to single-bit flips.

const (
	checksumOffset uint64 = 14695981039346656037
	checksumPrime  uint64 = 1099511628211
)

// ChecksumSeed is the initial accumulator value for a streaming checksum.
func ChecksumSeed() uint64 { return checksumOffset }

// ChecksumAdd folds one element into a streaming checksum.
func ChecksumAdd(h uint64, v float64) uint64 {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		h ^= bits & 0xff
		h *= checksumPrime
		bits >>= 8
	}
	return h
}

// Checksum returns the checksum of a packed payload.
func Checksum(vals []float64) uint64 {
	h := ChecksumSeed()
	for _, v := range vals {
		h = ChecksumAdd(h, v)
	}
	return h
}

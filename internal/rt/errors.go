package rt

import "errors"

// Engine-independent failure sentinels. Engines wrap their concrete failure
// types (armci.WatchdogError, ipcrt.RankExitError, ipcrt.DeadlockError, ...)
// so callers can distinguish the two fundamentally different ways an SPMD
// job dies without importing every engine:
//
//   - ErrRankExited: a rank is GONE — its process exited (crash, os.Exit,
//     signal) or its goroutine unwound without completing the job. The
//     concrete error carries the rank id and, for process engines, the exit
//     code or signal. Retrying on a fresh cluster can succeed.
//   - ErrRankDeadlocked: a rank is STILL THERE but wedged — blocked in user
//     code or a collective past the watchdog deadline. The concrete error
//     carries the set of ranks that never unwound. Retrying the same job
//     will likely wedge again; the cluster (or team) is poisoned.
//
// Test with errors.Is: errors.Is(err, rt.ErrRankExited) etc.
var (
	ErrRankExited     = errors.New("rt: rank exited")
	ErrRankDeadlocked = errors.New("rt: rank deadlocked")
)

// Package rt defines the runtime abstraction every parallel algorithm in
// this repository is written against. An algorithm is an SPMD body running
// once per process against a Ctx, which exposes:
//
//   - ARMCI-style one-sided communication (collective Malloc, Get/Put,
//     nonblocking NbGet/NbPut with Wait, locality queries, direct
//     shared-memory access) — what SRUMMA uses;
//   - MPI-style two-sided communication (Send/Recv, Isend/Irecv) — what the
//     SUMMA/pdgemm/Cannon baselines use;
//   - a compute interface (Gemm, Pack) so the engine decides whether work is
//     executed (real engine) or charged to a virtual clock (sim engine).
//
// Two engines implement Ctx: internal/armci runs real goroutine processes
// sharing one address space (the correctness engine), and internal/simrt
// runs simulated processes over internal/vtime + internal/simnet (the
// performance-model engine reproducing the paper's platforms).
package rt

import (
	"fmt"

	"srumma/internal/obs"
)

// Buffer is an opaque handle to a contiguous run of float64 elements. The
// real engine backs it with an actual slice; the sim engine tracks only its
// length.
type Buffer interface {
	// Len returns the buffer length in elements.
	Len() int
}

// Global is a collectively allocated distributed segment: one Buffer-like
// region per rank (ARMCI_Malloc semantics). Engines return their own
// implementations.
type Global interface {
	// LenAt returns the number of elements in rank's segment.
	LenAt(rank int) int
}

// Handle identifies an outstanding nonblocking operation.
type Handle interface {
	// Done reports whether the operation has completed. Waiting is done via
	// Ctx.Wait so engines can account blocked time.
	Done() bool
}

// Mat describes a (sub)matrix operand living inside a Buffer: a row-major
// Rows x Cols view starting Off elements into the buffer with leading
// dimension LD. Trans marks the operand as transposed for Gemm. Remote
// marks an operand accessed directly in another process's memory (only
// possible inside a shared-memory domain); the sim engine derates dgemm on
// remote operands to model NUMA/non-cacheable access.
type Mat struct {
	Buf        Buffer
	Off        int
	LD         int
	Rows, Cols int
	Trans      bool
	Remote     bool
}

// Elems returns the number of elements the view touches, assuming LD >= Cols.
func (m Mat) Elems() int { return m.Rows * m.Cols }

// Valid checks the view fits inside its buffer.
func (m Mat) Valid() error {
	if m.Buf == nil {
		return fmt.Errorf("rt: Mat with nil buffer")
	}
	if m.Rows < 0 || m.Cols < 0 || m.LD < m.Cols || m.Off < 0 {
		return fmt.Errorf("rt: malformed Mat %dx%d ld=%d off=%d", m.Rows, m.Cols, m.LD, m.Off)
	}
	if m.Rows > 0 && m.Cols > 0 {
		last := m.Off + (m.Rows-1)*m.LD + m.Cols
		if last > m.Buf.Len() {
			return fmt.Errorf("rt: Mat overruns buffer: needs %d elements, have %d", last, m.Buf.Len())
		}
	}
	return nil
}

// OpShape returns the shape of the operand after applying Trans.
func (m Mat) OpShape() (r, c int) {
	if m.Trans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// KernelTuner is an optional capability of a Ctx (or of the engine ctx at
// the bottom of a wrapper chain — discover it by walking Unwrap): setting
// the number of worker goroutines the local Gemm kernel may use. Engines
// that execute real flops honor it; the sim engine models a single-threaded
// dgemm and ignores it. Callers find it with a type assertion and fall back
// to the engine default when absent.
type KernelTuner interface {
	// SetKernelThreads sets this process's local-dgemm worker count.
	// n <= 0 restores the engine default.
	SetKernelThreads(n int)
}

// BufferReleaser is an optional capability of a Ctx: returning a LocalBuf
// scratch buffer to the engine for reuse. A released buffer must not be
// touched again by the caller. Engines without buffer pooling simply do not
// implement it, and callers skip the release.
type BufferReleaser interface {
	ReleaseBuf(b Buffer)
}

// Runner abstracts "execute one SPMD body and return per-rank stats" — the
// engine lifecycle, as opposed to Ctx, which is the in-body API. Two
// lifecycles implement it on the real engine: the one-shot form (spawn
// ranks, run, tear down; armci.OneShot) and the persistent team (ranks stay
// parked between bodies; armci.Team). Harness and serving code written
// against Runner works with either, so a test path and a production path
// can share one multiply implementation.
type Runner interface {
	Run(body func(Ctx)) ([]*Stats, error)
}

// Unwrapper is implemented by Ctx middleware (fault injection, resilience)
// so capability interfaces provided by the underlying engine stay
// discoverable through the wrapper chain.
type Unwrapper interface {
	Unwrap() Ctx
}

// FindKernelTuner walks c's Unwrap chain and returns the first layer that
// can tune kernel threads, or nil.
func FindKernelTuner(c Ctx) KernelTuner {
	for c != nil {
		if t, ok := c.(KernelTuner); ok {
			return t
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil
		}
		c = u.Unwrap()
	}
	return nil
}

// FindBufferReleaser walks c's Unwrap chain and returns the first layer
// that can recycle scratch buffers, or nil.
func FindBufferReleaser(c Ctx) BufferReleaser {
	for c != nil {
		if r, ok := c.(BufferReleaser); ok {
			return r
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil
		}
		c = u.Unwrap()
	}
	return nil
}

// Recorded is an optional capability of a Ctx: exposing the obs.Recorder
// this process's spans land in. Algorithm layers that want to emit their
// own spans (e.g. the executor's fetch-issue intervals) discover it with
// FindRecorder; the result may be nil, which obs treats as disabled for
// free.
type Recorded interface {
	// ObsRecorder returns the recorder attached to this process, or nil
	// when tracing is off.
	ObsRecorder() *obs.Recorder
}

// FindRecorder walks c's Unwrap chain and returns the attached recorder, or
// nil when no layer records (a valid, zero-cost recorder per obs).
func FindRecorder(c Ctx) *obs.Recorder {
	for c != nil {
		if r, ok := c.(Recorded); ok {
			return r.ObsRecorder()
		}
		u, ok := c.(Unwrapper)
		if !ok {
			return nil
		}
		c = u.Unwrap()
	}
	return nil
}

// Stats accumulates per-process communication and computation accounting.
// It is an alias of the observability spine's canonical counter block, so
// engines, /metrics exporters and benchmark dumps all share one definition.
// Times are in engine seconds (wall for the real engine, virtual for the
// sim engine).
type Stats = obs.Meters

// Topology describes how ranks map onto physical nodes and shared-memory
// domains. On clusters a domain is an SMP node; on the SGI Altix and Cray X1
// the paper treats the whole machine as one domain even though the hardware
// is built from small bricks, so the two notions are kept separate.
//
// A third, logical level sits on top: ranks are partitioned into GROUPS of
// GroupSize consecutive ranks. Groups are the unit of the hierarchical
// two-level multiplication (internal/hier): the outer level schedules panel
// movement between groups, the inner level is a flat SRUMMA team inside
// each group. GroupSize == 0 means "groups coincide with shared-memory
// domains", the natural default; an explicit GroupSize lets a planner carve
// a large domain into several groups.
type Topology struct {
	NProcs       int
	ProcsPerNode int
	// DomainSpansMachine marks scalable shared-memory systems where every
	// rank can load/store (or memcpy) any other rank's segment.
	DomainSpansMachine bool
	// GroupSize is the number of consecutive ranks per logical group, or 0
	// when groups are the shared-memory domains themselves.
	GroupSize int
}

// Validate checks the topology is usable.
func (t Topology) Validate() error {
	if t.NProcs <= 0 {
		return fmt.Errorf("rt: %d processes", t.NProcs)
	}
	if t.ProcsPerNode <= 0 {
		return fmt.Errorf("rt: %d procs per node", t.ProcsPerNode)
	}
	if t.GroupSize < 0 {
		return fmt.Errorf("rt: %d group size", t.GroupSize)
	}
	return nil
}

// NumNodes returns the number of physical nodes (the last may be partial).
func (t Topology) NumNodes() int {
	return (t.NProcs + t.ProcsPerNode - 1) / t.ProcsPerNode
}

// NodeOf returns the physical node of rank.
func (t Topology) NodeOf(rank int) int { return rank / t.ProcsPerNode }

// DomainOf returns the shared-memory domain of rank.
func (t Topology) DomainOf(rank int) int {
	if t.DomainSpansMachine {
		return 0
	}
	return t.NodeOf(rank)
}

// SameDomain reports whether two ranks share a memory domain.
func (t Topology) SameDomain(a, b int) bool { return t.DomainOf(a) == t.DomainOf(b) }

// groupSize resolves GroupSize: an unset (0) group size means groups are
// the shared-memory domains — the whole machine when the domain spans it,
// one node otherwise.
func (t Topology) groupSize() int {
	if t.GroupSize > 0 {
		return t.GroupSize
	}
	if t.DomainSpansMachine {
		return t.NProcs
	}
	return t.ProcsPerNode
}

// GroupOf returns the logical group of rank.
func (t Topology) GroupOf(rank int) int { return rank / t.groupSize() }

// SameGroup reports whether two ranks belong to the same logical group.
func (t Topology) SameGroup(a, b int) bool { return t.GroupOf(a) == t.GroupOf(b) }

// NumGroups returns the number of logical groups (the last may be partial).
func (t Topology) NumGroups() int {
	gs := t.groupSize()
	return (t.NProcs + gs - 1) / gs
}

// GroupRanks returns the rank range [lo, hi) of group g.
func (t Topology) GroupRanks(g int) (lo, hi int) {
	gs := t.groupSize()
	lo = g * gs
	hi = lo + gs
	if hi > t.NProcs {
		hi = t.NProcs
	}
	return lo, hi
}

// GroupsNestInDomains reports whether every group fits inside one
// shared-memory domain — the precondition for the hierarchical path's
// staged bands to be readable by direct load/store within a group.
func (t Topology) GroupsNestInDomains() bool {
	for g := 0; g < t.NumGroups(); g++ {
		lo, hi := t.GroupRanks(g)
		if !t.SameDomain(lo, hi-1) {
			return false
		}
	}
	return true
}

// Ctx is the per-process runtime handle. All methods are called from the
// process's own goroutine. Element counts are float64 elements; engines
// convert to bytes (8 per element) for transport accounting.
type Ctx interface {
	// Identity and topology.
	Rank() int
	Size() int
	Topo() Topology

	// Now returns seconds since the run started (virtual or wall).
	Now() float64
	// Stats returns this process's accounting (live; read after the run).
	Stats() *Stats

	// Malloc collectively allocates a Global with `elems` elements on every
	// rank (ranks may pass different sizes; all must call). Free releases it
	// collectively.
	Malloc(elems int) Global
	Free(g Global)
	// LocalBuf allocates process-local scratch.
	LocalBuf(elems int) Buffer
	// Local returns this rank's own segment of g for in-place use.
	Local(g Global) Buffer
	// CanDirect reports whether rank's segment of a Global may be accessed
	// directly (same shared-memory domain and, on the sim engine, a
	// platform whose remote memory is load/store accessible).
	CanDirect(rank int) bool
	// Direct returns rank's segment for direct load/store access. Panics if
	// !CanDirect(rank).
	Direct(g Global, rank int) Buffer

	// One-sided operations (ARMCI model). Get copies n elements from
	// rank's segment of g at offset off into dst at dstOff, blocking. NbGet
	// is its nonblocking form completed by Wait. Put is the symmetric
	// blocking write.
	Get(g Global, rank, off, n int, dst Buffer, dstOff int)
	NbGet(g Global, rank, off, n int, dst Buffer, dstOff int) Handle
	// NbGetSub is the strided form (ARMCI_NbGetS): fetch the rows x cols
	// sub-block starting at element off of rank's segment, whose rows are
	// ld elements apart, packing it tight row-major into dst at dstOff.
	// SRUMMA fetches exactly the sub-blocks its tasks multiply, so on
	// misaligned (transposed / p != q) layouts it moves no excess data.
	NbGetSub(g Global, rank, off, ld, rows, cols int, dst Buffer, dstOff int) Handle
	Put(src Buffer, srcOff, n int, g Global, rank, off int)
	// NbPut is the nonblocking put completed by Wait. The source buffer
	// must not be reused until completion.
	NbPut(src Buffer, srcOff, n int, g Global, rank, off int) Handle
	// NbPutSub is the strided put (ARMCI_NbPutS): scatter a tight
	// row-major rows x cols block from src at srcOff into rank's segment
	// at element off with row stride ld.
	NbPutSub(src Buffer, srcOff int, g Global, rank, off, ld, rows, cols int) Handle
	// Acc atomically accumulates (ARMCI_Acc): rank's segment[off+i] +=
	// alpha * src[srcOff+i] for i in [0, n). Blocking; concurrent Accs to
	// overlapping regions are safe.
	Acc(alpha float64, src Buffer, srcOff, n int, g Global, rank, off int)
	// FetchAdd atomically adds delta to element off of rank's segment and
	// returns the PREVIOUS value (ARMCI_Rmw / GA read_inc) — the primitive
	// behind Global Arrays' dynamic load balancing. Blocking; linearizable
	// with respect to other FetchAdds on the same element. The sim engine
	// maintains real counter values (control flow depends on them) while
	// charging a round trip to the owner.
	FetchAdd(g Global, rank, off int, delta float64) float64
	Wait(h Handle)

	// Two-sided operations (MPI model).
	Send(to, tag int, src Buffer, off, n int)
	Recv(from, tag int, dst Buffer, off, n int)
	Isend(to, tag int, src Buffer, off, n int) Handle
	Irecv(from, tag int, dst Buffer, off, n int) Handle

	// Barrier synchronizes all ranks.
	Barrier()

	// Gemm computes c = alpha*op(a)*op(b) + beta*c. The real engine executes
	// it; the sim engine charges modeled time.
	Gemm(alpha float64, a, b Mat, beta float64, c Mat)
	// Pack copies the src view into dst as a tight row-major block starting
	// at dstOff (charging memory-copy cost on the sim engine).
	Pack(src Mat, dst Buffer, dstOff int)
	// Unpack is the inverse: scatter a tight block from src at srcOff into
	// the dst view.
	Unpack(src Buffer, srcOff int, dst Mat)
	// UnpackTranspose scatters a tight row-major (dst.Cols x dst.Rows)
	// block from src at srcOff into the dst view transposed:
	// dst(i,j) = block(j,i). Redistribution of transposed operands (the
	// pdgemm baseline's PxTRANS step) is built on it.
	UnpackTranspose(src Buffer, srcOff int, dst Mat)

	// WriteBuf and ReadBuf are harness operations OUTSIDE the performance
	// model: they initialize inputs and extract results at zero modeled
	// cost. The real engine moves actual data; the sim engine only
	// validates ranges (ReadBuf returns nil there).
	WriteBuf(dst Buffer, off int, vals []float64)
	ReadBuf(src Buffer, off, n int) []float64
}

package rt

import (
	"strings"
	"testing"
	"testing/quick"
)

type fakeBuf int

func (f fakeBuf) Len() int { return int(f) }

func TestMatValid(t *testing.T) {
	buf := fakeBuf(100)
	good := []Mat{
		{Buf: buf, LD: 10, Rows: 10, Cols: 10},
		{Buf: buf, Off: 5, LD: 5, Rows: 19, Cols: 5},
		{Buf: buf, Off: 99, LD: 1, Rows: 1, Cols: 1},
		{Buf: buf, LD: 0, Rows: 7, Cols: 0},  // zero-width views allowed
		{Buf: buf, LD: 10, Rows: 0, Cols: 3}, // zero-height views allowed
	}
	for i, m := range good {
		if err := m.Valid(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []struct {
		m    Mat
		want string
	}{
		{Mat{LD: 1, Rows: 1, Cols: 1}, "nil buffer"},
		{Mat{Buf: buf, LD: 2, Rows: 3, Cols: 4}, "malformed"}, // LD < Cols
		{Mat{Buf: buf, Off: -1, LD: 4, Rows: 1, Cols: 1}, "malformed"},
		{Mat{Buf: buf, LD: 10, Rows: -2, Cols: 1}, "malformed"},
		{Mat{Buf: buf, Off: 95, LD: 10, Rows: 2, Cols: 2}, "overruns"},
		{Mat{Buf: buf, LD: 10, Rows: 11, Cols: 10}, "overruns"},
	}
	for i, tc := range bad {
		err := tc.m.Valid()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("bad[%d]: err = %v, want contains %q", i, err, tc.want)
		}
	}
}

func TestMatOpShapeAndElems(t *testing.T) {
	m := Mat{Buf: fakeBuf(100), LD: 10, Rows: 4, Cols: 7}
	if r, c := m.OpShape(); r != 4 || c != 7 {
		t.Fatalf("OpShape = %d,%d", r, c)
	}
	m.Trans = true
	if r, c := m.OpShape(); r != 7 || c != 4 {
		t.Fatalf("transposed OpShape = %d,%d", r, c)
	}
	if m.Elems() != 28 {
		t.Fatalf("Elems = %d", m.Elems())
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{NProcs: 4, ProcsPerNode: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Topology{NProcs: 0, ProcsPerNode: 2}).Validate(); err == nil {
		t.Fatal("want error for 0 procs")
	}
	if err := (Topology{NProcs: 4, ProcsPerNode: 0}).Validate(); err == nil {
		t.Fatal("want error for 0 ppn")
	}
}

func TestTopologyNodeMath(t *testing.T) {
	topo := Topology{NProcs: 10, ProcsPerNode: 4}
	if topo.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", topo.NumNodes())
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(3) != 0 || topo.NodeOf(4) != 1 || topo.NodeOf(9) != 2 {
		t.Fatal("NodeOf wrong")
	}
	if !topo.SameDomain(0, 3) || topo.SameDomain(3, 4) {
		t.Fatal("SameDomain wrong for node domains")
	}
	shared := Topology{NProcs: 10, ProcsPerNode: 4, DomainSpansMachine: true}
	if !shared.SameDomain(0, 9) || shared.DomainOf(7) != 0 {
		t.Fatal("machine-wide domain wrong")
	}
	// Physical nodes still distinct under a machine-wide domain.
	if shared.NodeOf(9) != 2 {
		t.Fatal("NodeOf must ignore DomainSpansMachine")
	}
}

func TestTopologyQuickNodeContainsRank(t *testing.T) {
	f := func(np, ppn uint8) bool {
		topo := Topology{NProcs: 1 + int(np%64), ProcsPerNode: 1 + int(ppn%8)}
		for r := 0; r < topo.NProcs; r++ {
			n := topo.NodeOf(r)
			if n < 0 || n >= topo.NumNodes() {
				return false
			}
			if topo.DomainOf(r) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{BytesShared: 1, BytesRemote: 2, GetsShared: 3, GetsRemote: 4, Puts: 5,
		Msgs: 6, MsgBytes: 7, Flops: 8, ComputeTime: 9, WaitTime: 10,
		PackTime: 11, BarrierTime: 12, StealTime: 13}
	b := a
	b.Add(&a)
	if b.BytesShared != 2 || b.StealTime != 26 || b.Flops != 16 || b.MsgBytes != 14 {
		t.Fatalf("Add wrong: %+v", b)
	}
}

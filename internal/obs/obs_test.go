package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestKindNamesAndGlyphs(t *testing.T) {
	want := map[Kind]struct {
		name  string
		glyph byte
	}{
		KindGemm: {"gemm", 'g'}, KindWait: {"wait", 'w'}, KindCopy: {"copy", 'c'},
		KindPack: {"pack", 'p'}, KindBarrier: {"barrier", 'b'}, KindSteal: {"steal", 's'},
		KindGet: {"get", 't'}, KindPut: {"put", 'u'}, KindIssue: {"issue", 'i'},
		KindJob: {"job", 'j'}, KindRequest: {"request", 'r'}, KindQueue: {"queue", 'q'},
		KindBatch: {"batch", 'a'},
	}
	for k, w := range want {
		if k.String() != w.name || k.Glyph() != w.glyph {
			t.Errorf("kind %d: got (%q,%q), want (%q,%q)", k, k.String(), k.Glyph(), w.name, w.glyph)
		}
	}
	if Kind(200).String() != "unknown" || Kind(200).Glyph() != '?' {
		t.Errorf("out-of-range kind should be unknown/?")
	}
}

func TestRecorderUnbounded(t *testing.T) {
	r := NewRecorder(2, 0)
	r.Record(0, KindGemm, 1, 2)
	r.Record(0, KindWait, 0.5, 0.8)
	r.Record(1, KindGemm, 3, 4)
	r.Record(0, KindGemm, 2, 2)   // degenerate: dropped silently
	r.Record(5, KindGemm, 0, 1)   // misplaced lane
	r.Record(-1, KindGemm, 0, 1)  // misplaced lane
	ev := r.ByLane(0)
	if len(ev) != 2 || ev[0].Kind != KindWait || ev[1].Kind != KindGemm {
		t.Fatalf("lane 0 events wrong: %+v", ev)
	}
	if all := r.Events(); len(all) != 3 {
		t.Fatalf("Events() = %d events, want 3", len(all))
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2 (misplaced)", r.Dropped())
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatalf("Reset left events behind")
	}
}

func TestRecorderRingOverwrite(t *testing.T) {
	r := NewRecorder(1, 3)
	for i := 0; i < 5; i++ {
		s := float64(i)
		r.Record(0, KindGemm, s, s+0.5)
	}
	ev := r.ByLane(0)
	if len(ev) != 3 {
		t.Fatalf("ring lane holds %d events, want 3", len(ev))
	}
	// Oldest survivors are events 2,3,4.
	if ev[0].Start != 2 || ev[2].Start != 4 {
		t.Fatalf("ring kept wrong events: %+v", ev)
	}
	if r.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2 overwrites", r.Dropped())
	}
}

func TestRecorderWallEpoch(t *testing.T) {
	r := NewRecorder(1, 0)
	t0 := r.Epoch().Add(10 * time.Millisecond)
	t1 := r.Epoch().Add(30 * time.Millisecond)
	r.RecordWall(0, KindJob, t0, t1)
	ev := r.ByLane(0)
	if len(ev) != 1 {
		t.Fatalf("want 1 event, got %d", len(ev))
	}
	if math.Abs(ev[0].Start-0.010) > 1e-9 || math.Abs(ev[0].End-0.030) > 1e-9 {
		t.Fatalf("wall conversion wrong: %+v", ev[0])
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(0, KindGemm, 0, 1)
	r.RecordWall(0, KindGemm, time.Now(), time.Now().Add(time.Second))
	if r.Enabled() || r.Lanes() != 0 || r.Events() != nil || r.Dropped() != 0 || r.Now() != 0 {
		t.Fatalf("nil recorder misbehaved")
	}
	r.Reset()
}

// The disabled tracing path must cost zero allocations: engines call Record
// unconditionally on their hot paths with a nil recorder.
func TestRecordDisabledZeroAlloc(t *testing.T) {
	var r *Recorder
	n := testing.AllocsPerRun(1000, func() {
		r.Record(0, KindGemm, 1, 2)
	})
	if n != 0 {
		t.Fatalf("nil-recorder Record allocates %v/op, want 0", n)
	}
}

// An enabled ring lane must also be allocation-free per event: the ring is
// preallocated, so always-on serving traces cannot pressure the GC.
func TestRecordRingZeroAlloc(t *testing.T) {
	r := NewRecorder(1, 64)
	s := 0.0
	n := testing.AllocsPerRun(1000, func() {
		r.Record(0, KindGemm, s, s+1)
		s += 2
	})
	if n != 0 {
		t.Fatalf("ring Record allocates %v/op, want 0", n)
	}
}

func TestCountersAndGauges(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x.count")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	c.RaiseTo(3)
	if c.Load() != 5 {
		t.Fatalf("RaiseTo lowered the counter")
	}
	c.RaiseTo(9)
	if c.Load() != 9 {
		t.Fatalf("RaiseTo(9) = %d", c.Load())
	}
	if reg.Counter("x.count") != c {
		t.Fatalf("registry returned a different pointer for the same name")
	}
	g := reg.Gauge("x.depth")
	g.Add(3)
	g.Add(-1)
	if g.Load() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Load())
	}
	f := reg.Float("x.seconds")
	f.Add(0.5)
	f.Add(0.25)
	if f.Load() != 0.75 {
		t.Fatalf("float counter = %v, want 0.75", f.Load())
	}
	snap := reg.Snapshot()
	names := make([]string, len(snap))
	for i, s := range snap {
		names[i] = s.Name
	}
	joined := strings.Join(names, ",")
	if joined != "x.count,x.depth,x.seconds" {
		t.Fatalf("snapshot names = %s", joined)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram should read zero")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	h.Observe(0.5)
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.5); p50 < 0.001 || p50 > 0.00125 {
		t.Fatalf("p50 = %v, want ~1ms bucket upper bound", p50)
	}
	if h.Max() != 0.5 {
		t.Fatalf("max = %v", h.Max())
	}
	if q := h.Quantile(1.0); q != 0.5 {
		t.Fatalf("p100 = %v, want clamped to max 0.5", q)
	}
	if m := h.Mean(); math.Abs(m-(100*0.001+0.5)/101) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	// Sub-base and beyond-top observations land in the edge buckets.
	var edge Histogram
	edge.Observe(1e-9)
	if q := edge.Quantile(0.5); q != histBase {
		t.Fatalf("sub-base quantile = %v, want %v", q, histBase)
	}
	edge.Observe(1e9)
	if edge.Count() != 2 {
		t.Fatalf("edge count = %d", edge.Count())
	}
}

func TestRegistryHistogramSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat").Observe(0.002)
	snap := reg.Snapshot()
	want := []string{"lat.count", "lat.max_s", "lat.mean_s", "lat.p50_s", "lat.p99_s"}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d samples, want %d", len(snap), len(want))
	}
	for i, s := range snap {
		if s.Name != want[i] {
			t.Fatalf("sample %d = %q, want %q", i, s.Name, want[i])
		}
	}
}

func TestRateWindow(t *testing.T) {
	var rw RateWindow
	now := time.Unix(1000, 0)
	for i := 0; i < 16; i++ {
		rw.Record(now)
	}
	if rps := rw.RPS(now); rps != 2 {
		t.Fatalf("rps = %v, want 2", rps)
	}
	// Far in the future the window has drained.
	if rps := rw.RPS(now.Add(time.Hour)); rps != 0 {
		t.Fatalf("stale rps = %v, want 0", rps)
	}
}

func TestMetersAddAndEach(t *testing.T) {
	a := Meters{GetsShared: 2, WaitTime: 0.5, Flops: 100}
	b := Meters{GetsShared: 3, WaitTime: 0.25, FaultRetries: 1}
	a.Add(&b)
	if a.GetsShared != 5 || a.WaitTime != 0.75 || a.FaultRetries != 1 {
		t.Fatalf("Add wrong: %+v", a)
	}
	m := a.Map()
	if m["gets_shared"] != 5 || m["wait_time_s"] != 0.75 || m["flops"] != 100 {
		t.Fatalf("Map wrong: %+v", m)
	}
	if len(m) != 22 {
		t.Fatalf("Map has %d meters, want 22 (did a field get added without Each?)", len(m))
	}
}

func TestSummaryAndTimeline(t *testing.T) {
	events := []Event{
		{Rank: 0, Kind: KindGemm, Start: 0, End: 0.5},
		{Rank: 0, Kind: KindWait, Start: 0.5, End: 0.75},
		{Rank: 1, Kind: KindGemm, Start: 0, End: 1},
	}
	sum := Summary(events)
	if sum["gemm"] != 1.5 || sum["wait"] != 0.25 {
		t.Fatalf("summary wrong: %+v", sum)
	}
	tl := Timeline(events, 2, 4, 1.0)
	wantTl := "rank   0 |ggww|\nrank   1 |gggg|\n"
	if tl != wantTl {
		t.Fatalf("timeline:\n%s\nwant:\n%s", tl, wantTl)
	}
	if Timeline(events, 2, 0, 1.0) != "" || Timeline(events, 2, 4, 0) != "" {
		t.Fatalf("degenerate timeline should be empty")
	}
}

func TestOverlapRatio(t *testing.T) {
	// Rank 0: gemm [0,1], wait [1,1.5], gemm [1.5,2.5]. Window [0,2.5]:
	// compute=2, wait=0.5 -> ratio 0.8.
	events := []Event{
		{Rank: 0, Kind: KindGemm, Start: 0, End: 1},
		{Rank: 0, Kind: KindWait, Start: 1, End: 1.5},
		{Rank: 0, Kind: KindGemm, Start: 1.5, End: 2.5},
		// Startup wait entirely before the first gemm: excluded.
		{Rank: 0, Kind: KindWait, Start: -1, End: -0.2},
		// A lane with no gemm contributes nothing.
		{Rank: 1, Kind: KindWait, Start: 0, End: 10},
	}
	wait, compute, ratio := OverlapRatio(events)
	if wait != 0.5 || compute != 2 {
		t.Fatalf("wait=%v compute=%v", wait, compute)
	}
	if math.Abs(ratio-0.8) > 1e-12 {
		t.Fatalf("ratio = %v, want 0.8", ratio)
	}
	if w, c, r := OverlapRatio(nil); w != 0 || c != 0 || r != 0 {
		t.Fatalf("empty overlap should be zero")
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	events := []Event{
		{Rank: 1, Kind: KindWait, Start: 0.001, End: 0.002},
		{Rank: 0, Kind: KindGemm, Start: 0, End: 0.0005},
		{Rank: 0, Kind: KindGemm, Start: 0.001, End: 0.001}, // zero-length -> dur clamped to 1us
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 2, "test run"); err != nil {
		t.Fatal(err)
	}
	slices, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}
	if slices != 3 {
		t.Fatalf("validated %d slices, want 3", slices)
	}
	if !strings.Contains(buf.String(), `"rank 1"`) || !strings.Contains(buf.String(), `"test run"`) {
		t.Fatalf("meta rows missing: %s", buf.String())
	}

	var named bytes.Buffer
	if err := WriteChromeTraceNamed(&named, events, []string{"rank 0", "server"}, "svc"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(named.String(), `"server"`) {
		t.Fatalf("named lane missing: %s", named.String())
	}

	if _, err := ValidateChromeTrace([]byte(`{"not":"an array"}`)); err == nil {
		t.Fatalf("non-array should fail validation")
	}
	if _, err := ValidateChromeTrace([]byte(`[{"ph":"X","ts":1,"dur":1,"tid":0}]`)); err == nil {
		t.Fatalf("nameless entry should fail validation")
	}
	if _, err := ValidateChromeTrace([]byte(`[{"name":"x","ph":"X","ts":-5,"dur":1,"tid":0}]`)); err == nil {
		t.Fatalf("negative ts should fail validation")
	}
}

package obs

import (
	"strings"
	"testing"
)

// Golden test for the 0.0.4 text exposition: a registry with every metric
// kind renders byte-for-byte stably (Snapshot is name-sorted).
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests").Add(3)
	r.Gauge("breaker.state./multiply").Set(1)
	r.Float("sched.service_s").Add(0.25)
	r.Histogram("sched.queue_wait.batch") // empty: quantiles export as 0

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE breaker_state__multiply untyped
breaker_state__multiply 1
# TYPE sched_queue_wait_batch_count untyped
sched_queue_wait_batch_count 0
# TYPE sched_queue_wait_batch_max_s untyped
sched_queue_wait_batch_max_s 0
# TYPE sched_queue_wait_batch_mean_s untyped
sched_queue_wait_batch_mean_s 0
# TYPE sched_queue_wait_batch_p50_s untyped
sched_queue_wait_batch_p50_s 0
# TYPE sched_queue_wait_batch_p99_s untyped
sched_queue_wait_batch_p99_s 0
# TYPE sched_service_s untyped
sched_service_s 0.25
# TYPE server_requests untyped
server_requests 3
`
	if b.String() != want {
		t.Fatalf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"server.requests":   "server_requests",
		"breaker.state./x":  "breaker_state__x",
		"9lives":            "_lives",
		"ok_name:subsystem": "ok_name:subsystem",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

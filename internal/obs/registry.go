package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// RaiseTo lifts the counter to v if v is larger (a running maximum).
func (c *Counter) RaiseTo(v int64) {
	for {
		cur := c.v.Load()
		if v <= cur || c.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Gauge is an atomic instantaneous value (goes up and down).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatCounter is a monotonic float64 accumulator (flops served, seconds
// busy) implemented with a CAS loop over the bit pattern.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates d.
func (f *FloatCounter) Add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the accumulated value.
func (f *FloatCounter) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Registry is a named metric namespace: get-or-create accessors hand out
// stable pointers callers cache on their hot paths, and Snapshot walks
// everything for export. One registry typically backs one subsystem
// (server, scheduler); names are dotted paths like "sched.submitted".
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatCounter
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatCounter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Float returns the named float counter, creating it on first use.
func (r *Registry) Float(name string) *FloatCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.floats[name]
	if !ok {
		f = &FloatCounter{}
		r.floats[name] = f
	}
	return f
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Sample is one exported metric value.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot returns every metric as a name-sorted sample list. Histograms
// expand into .count/.mean_s/.p50_s/.p99_s/.max_s samples.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.floats)+5*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{name, float64(c.Load())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{name, float64(g.Load())})
	}
	for name, f := range r.floats {
		out = append(out, Sample{name, f.Load()})
	}
	for name, h := range r.hists {
		out = append(out,
			Sample{name + ".count", float64(h.Count())},
			Sample{name + ".mean_s", h.Mean()},
			Sample{name + ".p50_s", h.Quantile(0.50)},
			Sample{name + ".p99_s", h.Quantile(0.99)},
			Sample{name + ".max_s", h.Max()},
		)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

package obs

// Meters is the canonical per-process counter block — the one counter
// model every layer shares. The runtime abstraction aliases it as rt.Stats,
// engines increment its fields directly on their hot paths (plain fields:
// each rank owns its block, so no atomics are needed), and exporters walk
// it with Each. Times are in engine seconds (wall for the real engine,
// virtual for the sim engine).
type Meters struct {
	BytesShared int64 // one-sided bytes moved within a shared-memory domain
	BytesRemote int64 // one-sided bytes moved between domains (RMA)
	GetsShared  int64
	GetsRemote  int64
	Puts        int64
	Msgs        int64 // two-sided messages sent
	MsgBytes    int64
	Flops       float64
	ComputeTime float64
	WaitTime    float64 // time blocked in Wait/Recv/Get
	PackTime    float64
	BarrierTime float64
	StealTime   float64 // CPU time stolen servicing non-zero-copy remote ops
	// ScratchBytes counts local scratch allocated via LocalBuf — the
	// algorithm's memory footprint beyond the distributed operands
	// themselves (communication buffers, panels, redistribution staging).
	ScratchBytes int64

	// Fault-injection and recovery accounting, populated only when the
	// internal/faults chaos layer wraps the engine (zero otherwise).
	FaultsInjected  int64 // faults the injector planted into this rank's ops
	FaultRetries    int64 // one-sided ops re-issued after a timed-out transfer
	FaultRefetches  int64 // one-sided ops re-issued after a checksum mismatch
	ChecksumErrors  int64 // corrupted payloads detected end-to-end
	StragglerSteals int64 // tasks executed out of order to dodge a slow rank
	DegradedMode    int64 // 1 once the rank fell back to blocking transfers
	ABFTDetected    int64 // C blocks failing Huang-Abraham sum verification
	ABFTRecomputed  int64 // corrupted C blocks restored and recomputed clean
}

// Add accumulates o into s.
func (s *Meters) Add(o *Meters) {
	s.BytesShared += o.BytesShared
	s.BytesRemote += o.BytesRemote
	s.GetsShared += o.GetsShared
	s.GetsRemote += o.GetsRemote
	s.Puts += o.Puts
	s.Msgs += o.Msgs
	s.MsgBytes += o.MsgBytes
	s.Flops += o.Flops
	s.ComputeTime += o.ComputeTime
	s.WaitTime += o.WaitTime
	s.PackTime += o.PackTime
	s.BarrierTime += o.BarrierTime
	s.StealTime += o.StealTime
	s.ScratchBytes += o.ScratchBytes
	s.FaultsInjected += o.FaultsInjected
	s.FaultRetries += o.FaultRetries
	s.FaultRefetches += o.FaultRefetches
	s.ChecksumErrors += o.ChecksumErrors
	s.StragglerSteals += o.StragglerSteals
	s.DegradedMode += o.DegradedMode
	s.ABFTDetected += o.ABFTDetected
	s.ABFTRecomputed += o.ABFTRecomputed
}

// Each calls f once per meter in declaration order, with the canonical
// snake_case name exporters use.
func (s *Meters) Each(f func(name string, value float64)) {
	f("bytes_shared", float64(s.BytesShared))
	f("bytes_remote", float64(s.BytesRemote))
	f("gets_shared", float64(s.GetsShared))
	f("gets_remote", float64(s.GetsRemote))
	f("puts", float64(s.Puts))
	f("msgs", float64(s.Msgs))
	f("msg_bytes", float64(s.MsgBytes))
	f("flops", s.Flops)
	f("compute_time_s", s.ComputeTime)
	f("wait_time_s", s.WaitTime)
	f("pack_time_s", s.PackTime)
	f("barrier_time_s", s.BarrierTime)
	f("steal_time_s", s.StealTime)
	f("scratch_bytes", float64(s.ScratchBytes))
	f("faults_injected", float64(s.FaultsInjected))
	f("fault_retries", float64(s.FaultRetries))
	f("fault_refetches", float64(s.FaultRefetches))
	f("checksum_errors", float64(s.ChecksumErrors))
	f("straggler_steals", float64(s.StragglerSteals))
	f("degraded_mode", float64(s.DegradedMode))
	f("abft_detected", float64(s.ABFTDetected))
	f("abft_recomputed", float64(s.ABFTRecomputed))
}

// Map returns the meters as a name→value map (for JSON benchmark dumps).
func (s *Meters) Map() map[string]float64 {
	out := make(map[string]float64, 20)
	s.Each(func(name string, v float64) { out[name] = v })
	return out
}

package obs

// Streaming latency instruments, moved here from the serving layer so any
// subsystem can price its tail behaviour from the same implementation.
// Everything is O(1) per observation and bounded in memory, so the metrics
// path cannot become the bottleneck it is supposed to observe.

import (
	"math"
	"sync"
	"time"
)

// Histogram buckets are geometric: bucket i covers latencies in
// [histBase*histGrowth^(i-1), histBase*histGrowth^i), with bucket 0
// catching everything below histBase. 96 buckets at 12% growth span 50us
// to ~2.7h, which is wider than any admissible request.
const (
	histBuckets = 96
	histBase    = 50e-6
	histGrowth  = 1.12
)

// Histogram is a streaming log-bucketed latency histogram. All methods are
// mutex-guarded; contention is negligible at request rates.
type Histogram struct {
	mu     sync.Mutex
	counts [histBuckets]uint64
	total  uint64
	sum    float64
	max    float64
}

// Observe records one latency in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	if seconds >= histBase {
		i = 1 + int(math.Log(seconds/histBase)/math.Log(histGrowth))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += seconds
	if seconds > h.max {
		h.max = seconds
	}
	h.mu.Unlock()
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it — a deliberate over-estimate, never flattering.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i == 0 {
				return histBase
			}
			ub := histBase * math.Pow(histGrowth, float64(i))
			if ub > h.max && h.max > 0 {
				return h.max
			}
			return ub
		}
	}
	return h.max
}

// Mean returns the average observed latency in seconds.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Max returns the largest observed latency in seconds.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// rateWindowSecs is the trailing window of the completion-rate estimator.
const rateWindowSecs = 8

// RateWindow counts events in a ring of 1-second buckets, giving a
// recent-rate estimate that is O(1) per event and immune to uptime
// averaging (a burst an hour ago must not price Retry-After now).
type RateWindow struct {
	mu     sync.Mutex
	counts [rateWindowSecs]uint64
	epochs [rateWindowSecs]int64 // unix second each bucket last belonged to
}

// Record counts one event at now.
func (rw *RateWindow) Record(now time.Time) {
	sec := now.Unix()
	i := int(sec % rateWindowSecs)
	rw.mu.Lock()
	if rw.epochs[i] != sec {
		rw.epochs[i] = sec
		rw.counts[i] = 0
	}
	rw.counts[i]++
	rw.mu.Unlock()
}

// RPS returns events per second over the window, counting only buckets
// young enough to still be inside it.
func (rw *RateWindow) RPS(now time.Time) float64 {
	sec := now.Unix()
	var n uint64
	rw.mu.Lock()
	for i := 0; i < rateWindowSecs; i++ {
		if sec-rw.epochs[i] < rateWindowSecs {
			n += rw.counts[i]
		}
	}
	rw.mu.Unlock()
	return float64(n) / rateWindowSecs
}

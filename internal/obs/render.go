package obs

// Event analysis and text rendering shared by both engines: per-kind busy
// summaries, fixed-width rank timelines, and the paper's overlap ratio.

import (
	"fmt"
	"sort"
	"strings"
)

// Summary aggregates per-kind busy time (seconds) over all events, keyed by
// the kind's stable name.
func Summary(events []Event) map[string]float64 {
	out := map[string]float64{}
	for _, e := range events {
		out[e.Kind.String()] += e.Duration()
	}
	return out
}

// Timeline renders per-lane activity bars: one row per lane, `width`
// character cells spanning [0, horizon] seconds, each cell showing the glyph
// of the last event covering it ('.' = idle). This is the pipeline view the
// paper's Figure-style overlap plots reduce to in a terminal.
func Timeline(events []Event, lanes, width int, horizon float64) string {
	if horizon <= 0 || width <= 0 {
		return ""
	}
	byLane := make([][]Event, lanes)
	for _, e := range events {
		if e.Rank >= 0 && e.Rank < lanes {
			byLane[e.Rank] = append(byLane[e.Rank], e)
		}
	}
	var b strings.Builder
	for r := 0; r < lanes; r++ {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		sort.SliceStable(byLane[r], func(i, j int) bool { return byLane[r][i].Start < byLane[r][j].Start })
		for _, e := range byLane[r] {
			lo := int(e.Start / horizon * float64(width))
			hi := int(e.End / horizon * float64(width))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i >= 0; i++ {
				row[i] = e.Kind.Glyph()
			}
		}
		fmt.Fprintf(&b, "rank %3d |%s|\n", r, row)
	}
	return b.String()
}

// OverlapRatio computes the paper's overlap metric from traced events: how
// much of the communication latency was hidden behind dgemm during the
// pipelined phase. Per lane, the window is [first gemm start, last gemm end]
// — the steady state where the algorithm is supposed to be overlapping —
// and within it wait time is the KindWait total and compute time the
// KindGemm total. The ratio is 1 - wait/(wait+compute), aggregated over
// lanes: 1.0 means every transfer completed behind a dgemm, 0.0 means the
// ranks computed nothing while waiting.
//
// Returns (wait seconds, compute seconds, ratio). Ratio is 0 when no gemm
// events exist.
func OverlapRatio(events []Event) (wait, compute, ratio float64) {
	type window struct {
		lo, hi float64
		seen   bool
	}
	win := map[int]*window{}
	for _, e := range events {
		if e.Kind != KindGemm {
			continue
		}
		w := win[e.Rank]
		if w == nil {
			w = &window{lo: e.Start, hi: e.End, seen: true}
			win[e.Rank] = w
			continue
		}
		if e.Start < w.lo {
			w.lo = e.Start
		}
		if e.End > w.hi {
			w.hi = e.End
		}
	}
	for _, e := range events {
		w := win[e.Rank]
		if w == nil {
			continue
		}
		switch e.Kind {
		case KindGemm:
			compute += e.Duration()
		case KindWait:
			// Clip the wait to the lane's pipelined window: waits before the
			// first gemm (initial fetch) or after the last are startup/drain,
			// not failed overlap.
			lo, hi := e.Start, e.End
			if lo < w.lo {
				lo = w.lo
			}
			if hi > w.hi {
				hi = w.hi
			}
			if hi > lo {
				wait += hi - lo
			}
		}
	}
	if wait+compute > 0 {
		ratio = 1 - wait/(wait+compute)
	}
	return wait, compute, ratio
}

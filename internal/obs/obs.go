// Package obs is the engine-agnostic observability spine: one event model,
// one counter model, one exporter, shared by every layer of the system.
//
// Before it existed the repo had four instrumentation surfaces — the sim
// engine's private tracer, the real engine's end-of-run rt.Stats, the
// serving layer's /metrics machinery and the scheduler's snapshot counters
// — which meant the paper's central claim (nonblocking RMA overlapping
// dgemm) could only be *seen* on the virtual-time engine. obs unifies them:
//
//   - Event/Kind: one span type with monotonic timestamps in engine seconds
//     (virtual for simrt, wall for armci), collected into per-rank ring
//     buffers by Recorder;
//   - Meters: the canonical per-process counter block (rt.Stats is an alias
//     of it), so engine accounting, /metrics and benchmark dumps share one
//     definition;
//   - Counter/Gauge/FloatCounter/Histogram/Registry: named atomic metrics
//     for the serving and scheduling layers;
//   - Chrome trace-event export, timeline rendering and the paper's overlap
//     ratio, computed from the same events on either engine.
//
// The disabled path is free: a nil *Recorder is a valid recorder whose
// Record methods are no-ops, pinned at zero allocations by tests.
package obs

// Kind classifies one traced activity interval.
type Kind uint8

// Activity kinds. The first six match the virtual-time tracer's historical
// names (their rendered output is pinned by a golden test); the rest are
// emitted by the real engine and the serving layers.
const (
	KindGemm    Kind = iota // local dgemm execution
	KindWait                // blocked in Wait/Recv on a pending transfer
	KindCopy                // same-domain memcpy (blocking shared-memory get)
	KindPack                // pack/unpack copies
	KindBarrier             // barrier synchronization
	KindSteal               // CPU stolen servicing non-zero-copy remote ops
	KindGet                 // one-sided get (real engine: the eager copy)
	KindPut                 // one-sided put/accumulate
	KindIssue               // executor issuing nonblocking fetches
	KindJob                 // one SPMD job on a team rank (wake to unwind)
	KindRequest             // one admitted serving-layer request
	KindQueue               // task queue-wait (admission to dispatch)
	KindBatch               // one scheduler dispatch on a worker
	KindRecover             // job recovery work: salvage, resume, ABFT redo
	numKinds
)

var kindNames = [numKinds]string{
	"gemm", "wait", "copy", "pack", "barrier", "steal",
	"get", "put", "issue", "job", "request", "queue", "batch", "recover",
}

// glyphs are the single-cell timeline letters. The first six are pinned by
// the golden sim output.
var glyphs = [numKinds]byte{'g', 'w', 'c', 'p', 'b', 's', 't', 'u', 'i', 'j', 'r', 'q', 'a', 'v'}

// String returns the kind's stable name (used in Chrome traces, summaries
// and BENCH json).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Glyph returns the kind's one-character timeline cell.
func (k Kind) Glyph() byte {
	if int(k) < len(glyphs) {
		return glyphs[k]
	}
	return '?'
}

// Event is one traced activity interval on one rank (or serving-layer
// lane), in engine seconds — virtual on the sim engine, wall seconds since
// the recorder's epoch on the real engine.
type Event struct {
	Rank       int
	Kind       Kind
	Start, End float64
}

// Duration returns the event length in seconds.
func (e Event) Duration() float64 { return e.End - e.Start }

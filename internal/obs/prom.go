package obs

// Prometheus text exposition (format version 0.0.4) over a Registry
// snapshot. The repo's native /metrics is JSON; a scraper wants the
// text format, and the mapping is mechanical: dotted metric names become
// underscore-separated, every sample is exported untyped (the registry
// does not distinguish monotonic counters from gauges at export time, and
// untyped is the format's honest answer for that). No labels: the
// registry's names are already fully qualified paths.

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the 0.0.4 text format.
const PrometheusContentType = "text/plain; version=0.0.4"

// promName rewrites a dotted registry name into a valid Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*, dots and any other invalid byte mapped
// to underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			c = '_'
		}
		b.WriteByte(c)
	}
	return b.String()
}

// WritePrometheus writes the samples in the 0.0.4 text exposition format,
// one `# TYPE <name> untyped` header and one value line per sample, in the
// samples' (name-sorted) order.
func WritePrometheus(w io.Writer, samples []Sample) error {
	for _, s := range samples {
		name := promName(s.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s untyped\n%s %s\n",
			name, name, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

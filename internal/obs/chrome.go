package obs

// Chrome trace-event export: serializes events in the Trace Event Format
// (the JSON understood by chrome://tracing and https://ui.perfetto.dev),
// with one "thread" per lane. This turns either engine's run — a simulated
// 128-processor SRUMMA job or a real multicore one — into an interactively
// zoomable pipeline view.

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// chromeEvent is one complete ("X" phase) event in the Trace Event Format.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`  // microseconds
	Dur  int64  `json:"dur"` // microseconds
	PID  int    `json:"pid"`
	TID  int    `json:"tid"`
}

// chromeMeta names processes/threads in the viewer.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace writes events as a Trace Event Format JSON array with
// lanes named "rank 0".."rank lanes-1". Engine seconds map to trace
// microseconds.
func WriteChromeTrace(w io.Writer, events []Event, lanes int, procName string) error {
	names := make([]string, lanes)
	for r := range names {
		names[r] = "rank " + strconv.Itoa(r)
	}
	return WriteChromeTraceNamed(w, events, names, procName)
}

// WriteChromeTraceNamed is WriteChromeTrace with explicit lane names
// (serving layers label their extra lanes "server"/"sched").
func WriteChromeTraceNamed(w io.Writer, events []Event, laneNames []string, procName string) error {
	var out []any
	out = append(out, chromeMeta{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]string{"name": procName},
	})
	for r, name := range laneNames {
		out = append(out, chromeMeta{
			Name: "thread_name", Ph: "M", PID: 0, TID: r,
			Args: map[string]string{"name": name},
		})
	}
	sorted := append([]Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Rank != sorted[j].Rank {
			return sorted[i].Rank < sorted[j].Rank
		}
		return sorted[i].Start < sorted[j].Start
	})
	for _, e := range sorted {
		dur := int64((e.End - e.Start) * 1e6)
		if dur < 1 {
			dur = 1 // the viewer drops zero-length slices
		}
		out = append(out, chromeEvent{
			Name: e.Kind.String(),
			Cat:  "srumma",
			Ph:   "X",
			TS:   int64(e.Start * 1e6),
			Dur:  dur,
			PID:  0,
			TID:  e.Rank,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateChromeTrace parses a Trace Event Format JSON array and checks its
// basic shape: every element has a name and a phase, and "X" slices have
// nonnegative timestamps and positive durations. Returns the slice count.
// Used by trace-smoke tooling so exported files are known-loadable without
// external tools.
func ValidateChromeTrace(data []byte) (slices int, err error) {
	var raw []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		TID  int     `json:"tid"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return 0, err
	}
	for i, e := range raw {
		if e.Name == "" || e.Ph == "" {
			return slices, errEntry(i, "missing name or ph")
		}
		if e.Ph == "X" {
			if e.TS < 0 || e.Dur <= 0 || e.TID < 0 {
				return slices, errEntry(i, "bad ts/dur/tid")
			}
			slices++
		}
	}
	return slices, nil
}

type chromeErr struct {
	idx int
	msg string
}

func (e chromeErr) Error() string { return "trace entry " + strconv.Itoa(e.idx) + ": " + e.msg }

func errEntry(i int, msg string) error { return chromeErr{i, msg} }

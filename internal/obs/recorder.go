package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recorder collects events into per-lane buffers. A lane is usually an SPMD
// rank; serving layers append extra lanes for request and scheduler spans.
// Lanes are independently locked, so the engine's one-goroutine-per-rank
// writers never contend.
//
// A lane with capacity > 0 is a ring: the newest events win and the
// overwrite count is reported by Dropped. Capacity <= 0 grows without bound
// (the right shape for one traced run; rings are for always-on serving).
//
// A nil *Recorder is the disabled state: Record/RecordWall are no-ops
// costing one pointer compare and zero allocations.
type Recorder struct {
	epoch     time.Time
	lanes     []lane
	misplaced atomic.Uint64 // records aimed at a lane that does not exist
}

type lane struct {
	mu      sync.Mutex
	buf     []Event
	cap     int
	next    int  // ring write cursor (cap > 0)
	full    bool // ring has wrapped
	dropped uint64
}

// NewRecorder creates a recorder with `lanes` lanes of `perLaneCap` ring
// capacity each (<= 0 for unbounded). The epoch — the zero point for
// RecordWall and Now — is the creation instant.
func NewRecorder(lanes, perLaneCap int) *Recorder {
	if lanes < 1 {
		lanes = 1
	}
	r := &Recorder{epoch: time.Now(), lanes: make([]lane, lanes)}
	for i := range r.lanes {
		r.lanes[i].cap = perLaneCap
		if perLaneCap > 0 {
			r.lanes[i].buf = make([]Event, perLaneCap)
		}
	}
	return r
}

// Enabled reports whether the recorder actually records (nil receivers do
// not).
func (r *Recorder) Enabled() bool { return r != nil }

// Lanes returns the lane count (0 for a nil recorder).
func (r *Recorder) Lanes() int {
	if r == nil {
		return 0
	}
	return len(r.lanes)
}

// Epoch returns the recorder's wall-clock zero point.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Now returns wall seconds since the epoch.
func (r *Recorder) Now() float64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Seconds()
}

// Record stores one event with timestamps already in engine seconds.
// Degenerate (end <= start) and misplaced (unknown lane) events are
// dropped; nil recorders drop everything for free.
func (r *Recorder) Record(laneIdx int, k Kind, start, end float64) {
	if r == nil || end <= start {
		return
	}
	if laneIdx < 0 || laneIdx >= len(r.lanes) {
		r.misplaced.Add(1)
		return
	}
	l := &r.lanes[laneIdx]
	l.mu.Lock()
	if l.cap > 0 {
		if l.full {
			l.dropped++
		}
		l.buf[l.next] = Event{Rank: laneIdx, Kind: k, Start: start, End: end}
		l.next++
		if l.next == l.cap {
			l.next = 0
			l.full = true
		}
	} else {
		l.buf = append(l.buf, Event{Rank: laneIdx, Kind: k, Start: start, End: end})
	}
	l.mu.Unlock()
}

// RecordWall stores one wall-clock span, converting to seconds since the
// epoch. This is the real engine's entry point: t0/t1 come straight from
// time.Now at the span's boundaries.
func (r *Recorder) RecordWall(laneIdx int, k Kind, t0, t1 time.Time) {
	if r == nil {
		return
	}
	r.Record(laneIdx, k, t0.Sub(r.epoch).Seconds(), t1.Sub(r.epoch).Seconds())
}

// ByLane returns lane's events in start order. Ring lanes return oldest
// surviving first.
func (r *Recorder) ByLane(laneIdx int) []Event {
	if r == nil || laneIdx < 0 || laneIdx >= len(r.lanes) {
		return nil
	}
	l := &r.lanes[laneIdx]
	l.mu.Lock()
	var out []Event
	if l.cap > 0 {
		if l.full {
			out = make([]Event, 0, l.cap)
			out = append(out, l.buf[l.next:]...)
			out = append(out, l.buf[:l.next]...)
		} else {
			out = append([]Event(nil), l.buf[:l.next]...)
		}
	} else {
		out = append([]Event(nil), l.buf...)
	}
	l.mu.Unlock()
	// Writers within a lane are single-goroutine in the engines, but
	// serving lanes interleave goroutines: normalize to start order.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Events returns every lane's events, lane-major then start-ordered.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.lanes {
		out = append(out, r.ByLane(i)...)
	}
	return out
}

// Dropped returns how many events were lost to ring overwrites or aimed at
// nonexistent lanes.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.misplaced.Load()
	for i := range r.lanes {
		l := &r.lanes[i]
		l.mu.Lock()
		n += l.dropped
		l.mu.Unlock()
	}
	return n
}

// Reset discards all recorded events (capacities are kept).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.lanes {
		l := &r.lanes[i]
		l.mu.Lock()
		l.next, l.full, l.dropped = 0, false, 0
		if l.cap <= 0 {
			l.buf = nil
		}
		l.mu.Unlock()
	}
}

package cannon

import (
	"testing"
	"testing/quick"

	"srumma/internal/armci"
	"srumma/internal/driver"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/simrt"
)

func runReal(t *testing.T, p int, d Dims, seedA, seedB uint64) *mat.Matrix {
	t.Helper()
	g, err := grid.New(p, p)
	if err != nil {
		t.Fatal(err)
	}
	da, db, dc := Dists(g, d)
	aGlob := mat.Random(d.M, d.K, seedA)
	bGlob := mat.Random(d.K, d.N, seedB)
	co := driver.NewCollect(g.Size())
	topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
	_, err = armci.Run(topo, func(c rt.Ctx) {
		ga := driver.AllocBlock(c, da)
		gb := driver.AllocBlock(c, db)
		gc := driver.AllocBlock(c, dc)
		driver.LoadBlock(c, da, ga, aGlob)
		driver.LoadBlock(c, db, gb, bGlob)
		if err := Multiply(c, g, d, ga, gb, gc); err != nil {
			panic(err)
		}
		co.Deposit(c, driver.StoreBlock(c, dc, gc))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dc.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func check(t *testing.T, p int, d Dims) {
	t.Helper()
	got := runReal(t, p, d, 41, 42)
	a := mat.Random(d.M, d.K, 41)
	b := mat.Random(d.K, d.N, 42)
	want := mat.New(d.M, d.N)
	if err := mat.GemmNaive(false, false, 1, a, b, 0, want); err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-10*float64(d.K) {
		t.Errorf("p=%d dims=%+v: diff %g", p, d, diff)
	}
}

func TestCannonSquare(t *testing.T) {
	check(t, 1, Dims{M: 8, N: 8, K: 8})
	check(t, 2, Dims{M: 16, N: 16, K: 16})
	check(t, 3, Dims{M: 18, N: 18, K: 18})
	check(t, 4, Dims{M: 32, N: 32, K: 32})
}

func TestCannonUnevenBlocks(t *testing.T) {
	check(t, 3, Dims{M: 17, N: 19, K: 23})
	check(t, 2, Dims{M: 5, N: 9, K: 7})
	check(t, 4, Dims{M: 10, N: 13, K: 6}) // some narrow k chunks
}

func TestCannonRectangular(t *testing.T) {
	check(t, 2, Dims{M: 24, N: 8, K: 16})
	check(t, 3, Dims{M: 9, N: 27, K: 12})
}

func TestCannonRejectsNonSquareGrid(t *testing.T) {
	g, _ := grid.New(2, 3)
	topo := rt.Topology{NProcs: 6, ProcsPerNode: 2}
	_, err := armci.Run(topo, func(c rt.Ctx) {
		gg := c.Malloc(1)
		if err := Multiply(c, g, Dims{M: 6, N: 6, K: 6}, gg, gg, gg); err == nil {
			panic("want non-square error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCannonQuick(t *testing.T) {
	f := func(mm, nn, kk, pp uint8) bool {
		p := 1 + int(pp%3) // 1..3
		d := Dims{M: 1 + int(mm%20), N: 1 + int(nn%20), K: 1 + int(kk%20)}
		g, _ := grid.New(p, p)
		da, db, dc := Dists(g, d)
		seed := uint64(mm) + uint64(nn)*7
		aGlob := mat.Random(d.M, d.K, seed)
		bGlob := mat.Random(d.K, d.N, seed+1)
		co := driver.NewCollect(g.Size())
		topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
		_, err := armci.Run(topo, func(c rt.Ctx) {
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gcG := driver.AllocBlock(c, dc)
			driver.LoadBlock(c, da, ga, aGlob)
			driver.LoadBlock(c, db, gb, bGlob)
			if err := Multiply(c, g, d, ga, gb, gcG); err != nil {
				panic(err)
			}
			co.Deposit(c, driver.StoreBlock(c, dc, gcG))
		})
		if err != nil {
			return false
		}
		got, err := dc.Gather(co.Blocks)
		if err != nil {
			return false
		}
		want := mat.New(d.M, d.N)
		if mat.GemmNaive(false, false, 1, aGlob, bGlob, 0, want) != nil {
			return false
		}
		return mat.MaxAbsDiff(got, want) <= 1e-10*float64(d.K)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCannonOnSimEngine(t *testing.T) {
	prof := machine.LinuxMyrinet()
	g, _ := grid.New(3, 3)
	d := Dims{M: 300, N: 300, K: 300}
	da, db, dc := Dists(g, d)
	res, err := simrt.Run(prof, 9, func(c rt.Ctx) {
		r, cc := da.LocalShape(c.Rank())
		ga := c.Malloc(r * cc)
		r, cc = db.LocalShape(c.Rank())
		gb := c.Malloc(r * cc)
		r, cc = dc.LocalShape(c.Rank())
		gcG := c.Malloc(r * cc)
		if err := Multiply(c, g, d, ga, gb, gcG); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatal("no virtual time")
	}
}

// TestCannonSingleRankGrid pins the 1x1-grid path: the skew degenerates to
// an identity Pack copy, and the whole multiply is one local gemm.
func TestCannonSingleRankGrid(t *testing.T) {
	check(t, 1, Dims{M: 1, N: 1, K: 1})
	check(t, 1, Dims{M: 7, N: 3, K: 5})
}

// TestCannonEmptyChunks pins the empty-k-chunk edge the removed defensive
// fallback was guarding: with K < p some steps carry zero-width chunks, but
// every rank still meets a non-empty chunk within its p steps, so C is
// written (with beta=0 first) exactly once per tile.
func TestCannonEmptyChunks(t *testing.T) {
	check(t, 2, Dims{M: 8, N: 8, K: 1})  // chunks 1,0
	check(t, 3, Dims{M: 9, N: 9, K: 2})  // chunks 1,1,0
	check(t, 4, Dims{M: 8, N: 8, K: 3})  // chunks 1,1,1,0
	check(t, 2, Dims{M: 1, N: 1, K: 1})  // every dimension below the grid
	check(t, 3, Dims{M: 2, N: 2, K: 1})  // ranks with empty C tiles too
}

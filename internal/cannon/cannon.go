// Package cannon implements Cannon's algorithm (1969), the classic
// message-passing matrix multiplication whose algorithmic efficiency SRUMMA
// matches (paper §2): after an initial skew that aligns blocks, the grid
// performs p steps of local multiply followed by a circular shift of A
// leftward and B upward. It requires a square process grid. The paper uses
// Cannon as the analytic reference point for the isoefficiency comparison;
// here it is also a runnable baseline.
package cannon

import (
	"fmt"

	"srumma/internal/grid"
	"srumma/internal/mp"
	"srumma/internal/rt"
)

// Dims are the operation sizes (C is M x N, contraction K).
type Dims struct{ M, N, K int }

// Dists returns the block distributions of A (M x K), B (K x N) and
// C (M x N) on the square grid.
func Dists(g *grid.Grid, d Dims) (da, db, dc *grid.BlockDist) {
	return grid.NewBlockDist(g, d.M, d.K), grid.NewBlockDist(g, d.K, d.N), grid.NewBlockDist(g, d.M, d.N)
}

const (
	tagSkewA  = 8300
	tagSkewB  = 8301
	tagShiftA = 8310
	tagShiftB = 8311
)

// Multiply runs Cannon's algorithm collectively: C = A B (NN only) on a
// square p x p grid. C is overwritten.
func Multiply(c rt.Ctx, g *grid.Grid, d Dims, ga, gb, gc rt.Global) error {
	if g.P != g.Q {
		return fmt.Errorf("cannon: requires a square grid, got %dx%d", g.P, g.Q)
	}
	if d.M <= 0 || d.N <= 0 || d.K <= 0 {
		return fmt.Errorf("cannon: dimensions %+v must be positive", d)
	}
	if g.Size() != c.Size() {
		return fmt.Errorf("cannon: grid needs %d ranks, runtime has %d", g.Size(), c.Size())
	}
	p := g.P
	da, db, _ := Dists(g, d)
	me := c.Rank()
	i, j := g.Coords(me)
	mLoc := da.RowChunks[i].N
	nLoc := db.ColChunks[j].N
	kChunks := da.ColChunks // == db.RowChunks on a square grid
	if gc.LenAt(me) != mLoc*nLoc {
		return fmt.Errorf("cannon: C segment %d != %dx%d", gc.LenAt(me), mLoc, nLoc)
	}

	c.Barrier()
	maxK := kChunks[0].N
	bufA := [2]rt.Buffer{c.LocalBuf(mLoc * maxK), c.LocalBuf(mLoc * maxK)}
	bufB := [2]rt.Buffer{c.LocalBuf(maxK * nLoc), c.LocalBuf(maxK * nLoc)}

	// kAt returns the k-chunk index held at (i, j) after s shifts.
	kAtA := func(s int) int { return (j + i + s) % p }
	kAtB := func(s int) int { return (i + j + s) % p }

	// Initial skew: my stored A(i,j) goes to the process whose post-skew
	// holding is A(i,j); I receive A(i, (j+i) mod p) from its owner.
	if p > 1 {
		aDst := g.Rank(i, ((j-i)%p+p)%p)
		aSrc := g.Rank(i, kAtA(0))
		mp.Sendrecv(c,
			aDst, tagSkewA, c.Local(ga), 0, mLoc*kChunks[j].N,
			aSrc, tagSkewA, bufA[0], 0, mLoc*kChunks[kAtA(0)].N)
		bDst := g.Rank(((i-j)%p+p)%p, j)
		bSrc := g.Rank(kAtB(0), j)
		mp.Sendrecv(c,
			bDst, tagSkewB, c.Local(gb), 0, kChunks[i].N*nLoc,
			bSrc, tagSkewB, bufB[0], 0, kChunks[kAtB(0)].N*nLoc)
	} else {
		// Single process: "skew" is the identity; copy via Pack.
		c.Pack(rt.Mat{Buf: c.Local(ga), LD: d.K, Rows: d.M, Cols: d.K}, bufA[0], 0)
		c.Pack(rt.Mat{Buf: c.Local(gb), LD: d.N, Rows: d.K, Cols: d.N}, bufB[0], 0)
	}

	cLocal := c.Local(gc)
	cur := 0
	wroteC := false
	left := g.Rank(i, (j+p-1)%p)
	right := g.Rank(i, (j+1)%p)
	up := g.Rank((i+p-1)%p, j)
	down := g.Rank((i+1)%p, j)
	for s := 0; s < p; s++ {
		w := kChunks[kAtA(s)].N
		if mLoc > 0 && nLoc > 0 && w > 0 {
			beta := 1.0
			if !wroteC {
				beta = 0
				wroteC = true
			}
			c.Gemm(1,
				rt.Mat{Buf: bufA[cur], LD: w, Rows: mLoc, Cols: w},
				rt.Mat{Buf: bufB[cur], LD: nLoc, Rows: w, Cols: nLoc},
				beta,
				rt.Mat{Buf: cLocal, LD: nLoc, Rows: mLoc, Cols: nLoc})
		}
		if s == p-1 {
			break
		}
		// Shift A left, B up; receive the next blocks into the spare
		// buffers.
		nxt := 1 - cur
		wNext := kChunks[kAtA(s+1)].N
		mp.Sendrecv(c,
			left, tagShiftA+2*(s%2), bufA[cur], 0, mLoc*w,
			right, tagShiftA+2*(s%2), bufA[nxt], 0, mLoc*wNext)
		wNextB := kChunks[kAtB(s+1)].N
		mp.Sendrecv(c,
			up, tagShiftB+2*(s%2), bufB[cur], 0, w*nLoc,
			down, tagShiftB+2*(s%2), bufB[nxt], 0, wNextB*nLoc)
		cur = nxt
	}
	// Over the p steps each rank cycles through every k-chunk, and for K > 0
	// (validated above) at least one chunk is non-empty, so every rank with a
	// local C tile has written it (beta=0 on its first gemm) by this point.
	c.Barrier()
	return nil
}

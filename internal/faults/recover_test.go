package faults_test

// Seeded recovery determinism: the gemm fault stream (silent compute
// corruption, mid-compute crashes) is a pure function of (seed, rank,
// gemm-op index), so the same seed must reproduce the identical detection
// counts and the identical recovered product, run after run. This is what
// makes a chaos failure reported by CI replayable at a desk.

import (
	"errors"
	"testing"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/grid"
	"srumma/internal/mat"
	"srumma/internal/rt"
)

// abftRun executes one SRUMMA multiply with ABFT verification on the real
// engine under a gemm fault plan, returning the gathered C and summed stats.
func abftRun(t *testing.T, cfg faults.Config) (*mat.Matrix, rt.Stats, error) {
	t.Helper()
	g, err := grid.Square(chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Dims{M: chaosN, N: chaosN, K: chaosN}
	opts := core.Options{Case: core.NN, Flavor: core.FlavorDirect, MaxTaskK: chaosTaskK, ABFT: true}
	da, db, dc := core.Dists(g, d, opts.Case)
	aGlob := mat.Random(da.Rows, da.Cols, 11)
	bGlob := mat.Random(db.Rows, db.Cols, 22)
	co := driver.NewCollect(chaosProcs)
	topo := rt.Topology{NProcs: chaosProcs, ProcsPerNode: chaosPPN}
	plan, err := faults.NewPlan(cfg, chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := armci.RunWithTimeout(topo, chaosTimout, func(c rt.Ctx) {
		cc := faults.Resilient(faults.Inject(c, plan, nil), faults.RecoveryConfig{})
		ga := driver.AllocBlock(cc, da)
		gb := driver.AllocBlock(cc, db)
		gc := driver.AllocBlock(cc, dc)
		driver.LoadBlock(cc, da, ga, aGlob)
		driver.LoadBlock(cc, db, gb, bGlob)
		if err := core.Multiply(cc, g, d, opts, ga, gb, gc); err != nil {
			panic(err)
		}
		co.Deposit(cc, driver.StoreBlock(cc, dc, gc))
	})
	var sum rt.Stats
	for _, s := range stats {
		sum.Add(s)
	}
	if err != nil {
		return nil, sum, err
	}
	got, gerr := dc.Gather(co.Blocks)
	if gerr != nil {
		t.Fatal(gerr)
	}
	return got, sum, nil
}

// TestBadBlockABFTRecoversDeterministically plants silent compute
// corruption at several seeds: every run must detect at least one corrupted
// block, recompute every detection, land on the correct product, and replay
// BIT-IDENTICALLY (same detections, same C) when repeated with its seed.
func TestBadBlockABFTRecoversDeterministically(t *testing.T) {
	want := chaosReference(t)
	for _, seed := range []uint64{1, 2, 3} {
		cfg := faults.Config{Seed: seed, BadBlockRate: 0.2}
		got1, sum1, err := abftRun(t, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sum1.ABFTDetected == 0 {
			t.Fatalf("seed %d: no corrupted blocks detected at rate 0.2", seed)
		}
		if sum1.ABFTRecomputed != sum1.ABFTDetected {
			t.Fatalf("seed %d: detected %d but recomputed %d", seed, sum1.ABFTDetected, sum1.ABFTRecomputed)
		}
		if diff := mat.MaxAbsDiff(got1, want); diff > 1e-10*float64(chaosN) {
			t.Fatalf("seed %d: recovered C wrong: max diff %g", seed, diff)
		}

		got2, sum2, err := abftRun(t, cfg)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if sum2.ABFTDetected != sum1.ABFTDetected {
			t.Fatalf("seed %d: replay detected %d, first run %d", seed, sum2.ABFTDetected, sum1.ABFTDetected)
		}
		for i := range got1.Data {
			if got1.Data[i] != got2.Data[i] {
				t.Fatalf("seed %d: replay C[%d] = %v != %v (must be bit-identical)", seed, i, got2.Data[i], got1.Data[i])
			}
		}
	}
}

// TestBadBlockWithoutABFTIsSilent pins the threat model: without
// verification the corruption lands undetected and the product is wrong —
// the reason the ABFT option exists.
func TestBadBlockWithoutABFTIsSilent(t *testing.T) {
	g, err := grid.Square(chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Dims{M: chaosN, N: chaosN, K: chaosN}
	opts := core.Options{Case: core.NN, Flavor: core.FlavorDirect, MaxTaskK: chaosTaskK}
	da, db, dc := core.Dists(g, d, opts.Case)
	aGlob := mat.Random(da.Rows, da.Cols, 11)
	bGlob := mat.Random(db.Rows, db.Cols, 22)
	co := driver.NewCollect(chaosProcs)
	plan, err := faults.NewPlan(faults.Config{Seed: 1, BadBlockRate: 0.5}, chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	_, err = armci.RunWithTimeout(rt.Topology{NProcs: chaosProcs, ProcsPerNode: chaosPPN}, chaosTimout, func(c rt.Ctx) {
		cc := faults.Inject(c, plan, nil)
		ga := driver.AllocBlock(cc, da)
		gb := driver.AllocBlock(cc, db)
		gc := driver.AllocBlock(cc, dc)
		driver.LoadBlock(cc, da, ga, aGlob)
		driver.LoadBlock(cc, db, gb, bGlob)
		if err := core.Multiply(cc, g, d, opts, ga, gb, gc); err != nil {
			panic(err)
		}
		co.Deposit(cc, driver.StoreBlock(cc, dc, gc))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dc.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, chaosReference(t)); diff <= 1e-10*float64(chaosN) {
		t.Fatal("half the blocks corrupted yet C is correct: the injector is not corrupting compute")
	}
}

// TestComputeCrashPanicsWithContext pins the mid-compute crash fault: the
// planted rank dies inside the task loop, the error names it, and
// errors.As reaches the CrashError through armci's RankPanicError wrapper.
func TestComputeCrashPanicsWithContext(t *testing.T) {
	g, err := grid.Square(chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Dims{M: chaosN, N: chaosN, K: chaosN}
	opts := core.Options{Case: core.NN, Flavor: core.FlavorDirect, MaxTaskK: chaosTaskK}
	da, db, dc := core.Dists(g, d, opts.Case)
	aGlob := mat.Random(da.Rows, da.Cols, 11)
	bGlob := mat.Random(db.Rows, db.Cols, 22)
	plan, err := faults.NewPlan(faults.Config{Seed: 5, ComputeCrash: true, ComputeCrashOpSpan: 4}, chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	wantRank, _ := plan.ComputeCrashPoint()
	start := time.Now()
	_, err = armci.RunWithTimeout(rt.Topology{NProcs: chaosProcs, ProcsPerNode: chaosPPN}, chaosTimout, func(c rt.Ctx) {
		cc := faults.Resilient(faults.Inject(c, plan, nil), faults.RecoveryConfig{})
		ga := driver.AllocBlock(cc, da)
		gb := driver.AllocBlock(cc, db)
		gc := driver.AllocBlock(cc, dc)
		driver.LoadBlock(cc, da, ga, aGlob)
		driver.LoadBlock(cc, db, gb, bGlob)
		if err := core.Multiply(cc, g, d, opts, ga, gb, gc); err != nil {
			panic(err)
		}
	})
	if err == nil {
		t.Fatal("planted compute crash produced no error")
	}
	var ce faults.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("error does not unwrap to CrashError: %v", err)
	}
	if ce.Rank != wantRank || !ce.Compute {
		t.Fatalf("CrashError = %+v, want compute crash on rank %d", ce, wantRank)
	}
	if time.Since(start) > chaosTimout {
		t.Fatal("crash recovery exceeded the watchdog window")
	}
}

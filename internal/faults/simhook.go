package faults

import (
	"srumma/internal/simnet"
	"srumma/internal/vtime"
)

// NetHook adapts a plan to the virtual-time engine: faults become injected
// latency and loss events on the simulated fabric. The i-th transfer
// observed from node src to node dst is perturbed per the schedule entry
// At(dst, i) for that pair — the size-only engine moves no data, so drop
// and corrupt faults (which a reliable transport recovers by
// retransmission or refetch) are charged as a retry-timeout latency
// penalty, delay faults as their planned latency, and transfers sourced at
// a straggler node as the straggler service delay. Crash entries are
// skipped: the performance model has no notion of process death.
//
// The hook keeps per-pair counters, and the vtime kernel serializes all
// Transfer calls, so a faulty simulation replays bit-identically for a
// given seed and topology.
func (p *Plan) NetHook() simnet.FaultHook {
	retry := vtime.FromSeconds(8 * p.cfg.DelayUnit.Seconds())
	type pair struct{ src, dst int }
	ops := make(map[pair]int)
	return func(src, dst int, bytes int64) simnet.Fault {
		k := pair{src, dst}
		op := ops[k]
		ops[k] = op + 1
		var out simnet.Fault
		switch f := p.At(dst, op); f.Class {
		case Drop, Corrupt:
			out.Lost = true
			out.RetryAfter = retry
		case Delay:
			d := f.Dur
			if d == Forever {
				// The sim engine must terminate: an unrecoverable delay is
				// charged as one full retry timeout instead.
				out.Lost = true
				out.RetryAfter = retry
			} else {
				out.ExtraLatency = vtime.FromSeconds(d.Seconds())
			}
		}
		if p.Straggler(src % p.nprocs) {
			out.ExtraLatency += vtime.FromSeconds(p.cfg.StragglerDelay.Seconds())
		}
		return out
	}
}

// Package faults is the deterministic fault-injection and recovery layer
// of the SRUMMA reproduction. The paper's performance story rests on
// one-sided RMA progress (nonblocking get pipelines, direct shared-memory
// access); this package supplies the robustness story for the same
// machinery: the networks the paper targets (Myrinet GM, IBM SP LAPI) drop,
// delay and corrupt transfers, and nodes stall or die mid-run.
//
// The package has three parts:
//
//   - Plan: a seedable, pure planner that decides — from (seed, rank,
//     op-index) alone — whether a one-sided operation is dropped, delayed,
//     corrupted, or issued by a crashing rank, and which ranks are
//     stragglers. The schedule is a pure function, so the same seed and
//     topology replay the identical fault sequence on every engine and
//     every run.
//
//   - Inject: an rt.Ctx wrapper for the real (armci) engine that plants the
//     planned faults into the actual data movement. The virtual-time engine
//     consumes the same Plan through a simnet fault hook (see NetHook),
//     where faults appear as injected latency and loss events.
//
//   - Resilient: an rt.Ctx wrapper that survives what Inject plants:
//     per-op timeouts with capped exponential backoff and retry, end-to-end
//     payload checksums with refetch on mismatch, per-owner latency
//     tracking that flags stragglers for the SRUMMA task scheduler, and
//     graceful degradation from the nonblocking double-buffered pipeline to
//     blocking transfers when handles repeatedly fail.
//
// Accumulate-style operations (Acc, FetchAdd) are never faulted: they are
// not idempotent, so retrying them safely needs sequence numbers the ARMCI
// model does not have. The fault model covers the read/write RMA path —
// exactly what SRUMMA's pipeline is built from.
package faults

import (
	"fmt"
	"time"
)

// Class is a fault category.
type Class uint8

// The injected fault classes.
const (
	None     Class = iota
	Drop           // the transfer silently moves no data
	Delay          // the transfer completes late (or never, see Forever)
	Corrupt        // the payload lands with a flipped bit
	Straggle       // the op targets a straggler rank: service is slow
	Crash          // the issuing rank dies at this op
	BadBlock       // the local gemm's produced C block lands silently corrupted
)

func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	case Straggle:
		return "straggle"
	case Crash:
		return "crash"
	case BadBlock:
		return "badblock"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Forever marks a delayed transfer that never completes: only a recovery
// timeout can get past it.
const Forever time.Duration = -1

// Fault is one planned perturbation of a one-sided operation.
type Fault struct {
	Class Class
	// Dur is the injected latency for Delay (Forever = never completes)
	// and Straggle faults.
	Dur time.Duration
	// Elem and Bit locate the flipped bit for Corrupt faults: bit Bit of
	// payload element Elem%n.
	Elem int
	Bit  uint
}

// Config parameterizes a fault plan. Rates are per-op probabilities; their
// sum must not exceed 1. The zero value plans no faults.
type Config struct {
	Seed uint64

	DropRate    float64 // transfer moves no data
	DelayRate   float64 // transfer completes late
	CorruptRate float64 // payload lands with a flipped bit

	// DelayUnit scales injected delays: a delayed op completes after
	// 1..7 units (deterministic per op). Default 2ms.
	DelayUnit time.Duration
	// DelayForever makes every delayed transfer hang instead: it can only
	// be recovered by a timeout-and-retry.
	DelayForever bool

	// Stragglers picks that many distinct ranks (deterministically from
	// the seed) whose RMA service is slow: every op TARGETING a straggler
	// is delayed by StragglerDelay (default 4ms).
	Stragglers     int
	StragglerDelay time.Duration

	// Crash plants one rank death: a deterministically chosen rank panics
	// (with rank and op context) at a deterministically chosen op index in
	// [0, CrashOpSpan) (default 32).
	Crash       bool
	CrashOpSpan int

	// BadBlockRate plants silent COMPUTE corruption: each local gemm's
	// produced C view has this probability of landing with one flipped
	// high-order bit. Transport checksums cannot see these (the payloads
	// that moved were correct); only ABFT verification (internal/core)
	// can. The gemm fault stream is independent of the one-sided stream.
	BadBlockRate float64

	// ComputeCrash plants one rank death INSIDE the task loop: a
	// deterministically chosen rank panics at a deterministically chosen
	// local-gemm index in [0, ComputeCrashOpSpan) (default 16) — the
	// mid-job death the block-level recovery ledger exists for.
	ComputeCrash       bool
	ComputeCrashOpSpan int
}

func (c Config) withDefaults() Config {
	if c.DelayUnit <= 0 {
		c.DelayUnit = 2 * time.Millisecond
	}
	if c.StragglerDelay <= 0 {
		c.StragglerDelay = 4 * time.Millisecond
	}
	if c.CrashOpSpan <= 0 {
		c.CrashOpSpan = 32
	}
	if c.ComputeCrashOpSpan <= 0 {
		c.ComputeCrashOpSpan = 16
	}
	return c
}

// Validate rejects malformed rate configurations.
func (c Config) Validate() error {
	rates := []float64{c.DropRate, c.DelayRate, c.CorruptRate}
	sum := 0.0
	for _, r := range rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: rate %g outside [0,1]", r)
		}
		sum += r
	}
	if sum > 1 {
		return fmt.Errorf("faults: rates sum to %g > 1", sum)
	}
	if c.Stragglers < 0 {
		return fmt.Errorf("faults: %d stragglers", c.Stragglers)
	}
	if c.BadBlockRate < 0 || c.BadBlockRate > 1 {
		return fmt.Errorf("faults: bad-block rate %g outside [0,1]", c.BadBlockRate)
	}
	return nil
}

// Plan is a materialized fault schedule for one topology. All methods are
// pure and safe for concurrent use from every rank.
type Plan struct {
	cfg        Config
	nprocs     int
	straggler  []bool
	crashRank  int
	crashOp    int
	gcrashRank int // compute-crash rank (-1 when not planned)
	gcrashOp   int // compute-crash local-gemm index
}

// NewPlan builds the deterministic schedule for nprocs ranks.
func NewPlan(cfg Config, nprocs int) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nprocs <= 0 {
		return nil, fmt.Errorf("faults: %d ranks", nprocs)
	}
	cfg = cfg.withDefaults()
	p := &Plan{cfg: cfg, nprocs: nprocs, straggler: make([]bool, nprocs), crashRank: -1, crashOp: -1, gcrashRank: -1, gcrashOp: -1}
	// Straggler set: a seeded partial Fisher-Yates pick of distinct ranks.
	ns := cfg.Stragglers
	if ns > nprocs {
		ns = nprocs
	}
	perm := make([]int, nprocs)
	for i := range perm {
		perm[i] = i
	}
	h := splitmix(cfg.Seed ^ 0x5354524147474c45) // "STRAGGLE"
	for i := 0; i < ns; i++ {
		h = splitmix(h)
		j := i + int(h%uint64(nprocs-i))
		perm[i], perm[j] = perm[j], perm[i]
		p.straggler[perm[i]] = true
	}
	if cfg.Crash {
		h := splitmix(cfg.Seed ^ 0x4352415348) // "CRASH"
		p.crashRank = int(h % uint64(nprocs))
		h = splitmix(h)
		p.crashOp = int(h % uint64(cfg.CrashOpSpan))
	}
	if cfg.ComputeCrash {
		h := splitmix(cfg.Seed ^ 0x47454d4d43524153) // "GEMMCRAS"
		p.gcrashRank = int(h % uint64(nprocs))
		h = splitmix(h)
		p.gcrashOp = int(h % uint64(cfg.ComputeCrashOpSpan))
	}
	return p, nil
}

// Config returns the (defaulted) configuration behind the plan.
func (p *Plan) Config() Config { return p.cfg }

// NProcs returns the topology size the plan was built for.
func (p *Plan) NProcs() int { return p.nprocs }

// Straggler reports whether rank's RMA service is planned slow.
func (p *Plan) Straggler(rank int) bool {
	return rank >= 0 && rank < p.nprocs && p.straggler[rank]
}

// CrashPoint returns the planned (rank, op) of the injected crash, or
// (-1, -1) when no crash is planned.
func (p *Plan) CrashPoint() (rank, op int) { return p.crashRank, p.crashOp }

// At returns the fault planted into the op-index'th faultable one-sided
// operation issued by rank. It is a pure function of (seed, rank, op):
// replaying the same schedule needs nothing but the same Config and
// topology. Straggle faults are keyed by the TARGET of an op, not its
// issuer, so they are reported by TargetedBy instead.
func (p *Plan) At(rank, op int) Fault {
	if rank == p.crashRank && op == p.crashOp {
		return Fault{Class: Crash}
	}
	h := splitmix(splitmix(p.cfg.Seed^uint64(rank)*0x9e3779b97f4a7c15) ^ uint64(op)*0xbf58476d1ce4e5b9)
	u := float64(h>>11) / float64(1<<53)
	switch {
	case u < p.cfg.DropRate:
		return Fault{Class: Drop}
	case u < p.cfg.DropRate+p.cfg.DelayRate:
		h = splitmix(h)
		f := Fault{Class: Delay, Dur: time.Duration(1+h%7) * p.cfg.DelayUnit}
		if p.cfg.DelayForever {
			f.Dur = Forever
		}
		return f
	case u < p.cfg.DropRate+p.cfg.DelayRate+p.cfg.CorruptRate:
		h = splitmix(h)
		return Fault{Class: Corrupt, Elem: int(h % (1 << 30)), Bit: uint((h >> 32) % 63)}
	}
	return Fault{}
}

// ComputeCrashPoint returns the planned (rank, local-gemm index) of the
// injected compute crash, or (-1, -1) when none is planned.
func (p *Plan) ComputeCrashPoint() (rank, op int) { return p.gcrashRank, p.gcrashOp }

// AtGemm returns the fault planted into the op-index'th local gemm
// executed by rank — a stream independent of the one-sided schedule, so
// adding compute faults never perturbs a transport replay. BadBlock
// faults flip an EXPONENT bit (52..62, never the sign) of one element of
// the produced C view: the element at least doubles or halves, so the
// perturbation always clears ABFT's block-sum tolerance — a mantissa flip
// on a small element could hide below the checksum noise floor of a large
// block and would make the fault undetectable by design.
func (p *Plan) AtGemm(rank, op int) Fault {
	if rank == p.gcrashRank && op == p.gcrashOp {
		return Fault{Class: Crash}
	}
	if p.cfg.BadBlockRate <= 0 {
		return Fault{}
	}
	h := splitmix(splitmix(p.cfg.Seed^0x4241444241444221^uint64(rank)*0x9e3779b97f4a7c15) ^ uint64(op)*0xbf58476d1ce4e5b9)
	u := float64(h>>11) / float64(1<<53)
	if u < p.cfg.BadBlockRate {
		h = splitmix(h)
		return Fault{Class: BadBlock, Elem: int(h % (1 << 30)), Bit: 52 + uint((h>>32)%11)}
	}
	return Fault{}
}

// TargetedBy returns the service-side fault of an op from `rank` targeting
// `target`: the straggler delay, if the target is a planned straggler.
func (p *Plan) TargetedBy(rank, target int) Fault {
	if p.Straggler(target) {
		return Fault{Class: Straggle, Dur: p.cfg.StragglerDelay}
	}
	return Fault{}
}

// Schedule materializes the first opsPerRank entries of every rank's
// schedule — the replayable object the determinism and fuzz tests compare.
func (p *Plan) Schedule(opsPerRank int) [][]Fault {
	out := make([][]Fault, p.nprocs)
	for r := range out {
		out[r] = make([]Fault, opsPerRank)
		for op := 0; op < opsPerRank; op++ {
			out[r][op] = p.At(r, op)
		}
	}
	return out
}

// splitmix is the splitmix64 finalizer: the repo-standard way to turn a
// seed and a counter into well-mixed bits (see mat.RNG).
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

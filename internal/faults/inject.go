package faults

import (
	"fmt"
	"math"
	"time"

	"srumma/internal/rt"
)

// SourceChecksummer is the engine capability behind end-to-end payload
// verification: the engine checksums the authoritative source region (the
// "sender side" of a transfer) so the recovery layer can compare it with
// what actually landed. The real engine (internal/armci) implements it;
// the size-only sim engine does not (there is no data to protect).
type SourceChecksummer interface {
	// ChecksumRegion checksums the rows x cols region at element `off` of
	// rank's segment of g, rows `ld` elements apart, in packed row-major
	// order (the same order the payload lands in).
	ChecksumRegion(g rt.Global, rank, off, ld, rows, cols int) uint64
}

// unwrapper lets layered ctx wrappers expose the engine underneath.
type unwrapper interface{ Unwrap() rt.Ctx }

// checksummerOf walks a wrapper chain down to the first layer that can
// checksum source regions, or nil.
func checksummerOf(ctx rt.Ctx) SourceChecksummer {
	for c := ctx; c != nil; {
		if s, ok := c.(SourceChecksummer); ok {
			return s
		}
		u, ok := c.(unwrapper)
		if !ok {
			return nil
		}
		c = u.Unwrap()
	}
	return nil
}

// CrashError is the panic payload of an injected rank death. The armci
// runtime recovers it into the run error, so a crashed run fails loudly
// with rank and op context instead of hanging.
type CrashError struct {
	Rank    int
	Op      int
	Compute bool // the crash fired mid-task-loop (local gemm), not at an RMA op
}

func (e CrashError) Error() string {
	if e.Compute {
		return fmt.Sprintf("faults: rank %d crashed (injected fault) at local gemm %d", e.Rank, e.Op)
	}
	return fmt.Sprintf("faults: rank %d crashed (injected fault) at one-sided op %d", e.Rank, e.Op)
}

// Event is one injected fault, for replay-determinism assertions.
type Event struct {
	Op    int // per-rank faultable-op index
	Class Class
}

// Recorder collects the injected fault sequence per rank. Slots are
// per-rank, so concurrent ranks record race-free.
type Recorder struct {
	logs [][]Event
}

// NewRecorder sizes a recorder for nprocs ranks.
func NewRecorder(nprocs int) *Recorder {
	return &Recorder{logs: make([][]Event, nprocs)}
}

// Log returns rank's recorded fault sequence (read after the run).
func (r *Recorder) Log(rank int) []Event { return r.logs[rank] }

// Total returns the number of recorded faults across ranks.
func (r *Recorder) Total() int {
	n := 0
	for _, l := range r.logs {
		n += len(l)
	}
	return n
}

// Inject wraps a real-engine ctx so every faultable one-sided operation
// (Get/NbGet/NbGetSub, Put/NbPut/NbPutSub) consults the plan and suffers
// the planned fault: drops move no data, delays hide completion behind a
// wall-clock deadline (or forever), corruptions flip one payload bit after
// the data lands, ops targeting straggler ranks stall for the service
// delay, and the planned crash panics with CrashError. rec may be nil.
//
// The wrapper is for the real engine only: delays are wall-clock. The
// virtual-time engine consumes the same plan through NetHook instead.
func Inject(inner rt.Ctx, p *Plan, rec *Recorder) rt.Ctx {
	return &injCtx{Ctx: inner, plan: p, rec: rec}
}

type injCtx struct {
	rt.Ctx // inner engine; non-faulted methods pass through
	plan   *Plan
	rec    *Recorder
	op     int     // per-rank faultable-op counter
	gop    int     // per-rank local-gemm counter
	shared *Shared // non-nil in serving mode: process-wide counters + crash latches
}

// Unwrap exposes the engine beneath for capability discovery.
func (c *injCtx) Unwrap() rt.Ctx { return c.Ctx }

// nextOp consumes one one-sided op index: process-wide when the injector
// is Shared (serving mode), per-wrapper otherwise.
func (c *injCtx) nextOp() int {
	if c.shared != nil {
		return int(c.shared.ops[c.Rank()].Add(1) - 1)
	}
	op := c.op
	c.op++
	return op
}

func (c *injCtx) nextGemmOp() int {
	if c.shared != nil {
		return int(c.shared.gops[c.Rank()].Add(1) - 1)
	}
	op := c.gop
	c.gop++
	return op
}

// next consumes one op index and returns its planned faults: the per-op
// roll and the target-side straggler delay. It panics on a planned crash
// and records/counts whatever it injects.
func (c *injCtx) next(target int) (Fault, Fault) {
	op := c.nextOp()
	f := c.plan.At(c.Rank(), op)
	if f.Class == Crash && c.shared != nil && !c.shared.crashed.CompareAndSwap(false, true) {
		f = Fault{} // the process-wide crash already fired; the retry lives
	}
	if f.Class == Crash {
		c.record(op, Crash)
		panic(CrashError{Rank: c.Rank(), Op: op})
	}
	s := c.plan.TargetedBy(c.Rank(), target)
	if f.Class != None {
		c.record(op, f.Class)
	}
	if s.Class != None {
		c.record(op, s.Class)
	}
	return f, s
}

func (c *injCtx) record(op int, cl Class) {
	c.Stats().FaultsInjected++
	if c.rec != nil {
		c.rec.logs[c.Rank()] = append(c.rec.logs[c.Rank()], Event{Op: op, Class: cl})
	}
}

// corruptBuf flips the planned bit of one payload element that landed in
// dst at [off, off+n).
func (c *injCtx) corruptBuf(f Fault, dst rt.Buffer, off, n int) {
	if n <= 0 {
		return
	}
	i := off + f.Elem%n
	v := c.Ctx.ReadBuf(dst, i, 1)
	bits := math.Float64bits(v[0]) ^ (1 << f.Bit)
	c.Ctx.WriteBuf(dst, i, []float64{math.Float64frombits(bits)})
}

// delayedHandle hides an already-complete operation until a wall-clock
// deadline; forever-delayed handles never report done, so only a recovery
// timeout (or the run watchdog) gets past them.
type delayedHandle struct {
	inner   rt.Handle
	ready   time.Time
	forever bool
}

func (h *delayedHandle) Done() bool {
	return !h.forever && time.Now().After(h.ready) && h.inner.Done()
}

// doneFault is the handle of a dropped op: "complete", moved nothing.
type doneFault struct{}

func (doneFault) Done() bool { return true }

// wrapHandle hides the op's completion behind its planned delay and the
// target's straggler service delay. The slowness lands on the COMPLETION
// side, not the issue side: a nonblocking op on a real RMA network returns
// immediately however slow the remote service is — which is also what lets
// the resilient layer's wait-latency tracking detect stragglers.
func (c *injCtx) wrapHandle(f, s Fault, h rt.Handle) rt.Handle {
	if f.Class == Delay && f.Dur == Forever {
		return &delayedHandle{inner: h, forever: true}
	}
	var d time.Duration
	if f.Class == Delay {
		d += f.Dur
	}
	if s.Class == Straggle {
		d += s.Dur
	}
	if d <= 0 {
		return h
	}
	return &delayedHandle{inner: h, ready: time.Now().Add(d)}
}

func (c *injCtx) NbGet(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) rt.Handle {
	f, s := c.next(rank)
	if f.Class == Drop {
		return doneFault{}
	}
	h := c.Ctx.NbGet(g, rank, off, n, dst, dstOff)
	if f.Class == Corrupt {
		c.corruptBuf(f, dst, dstOff, n)
	}
	return c.wrapHandle(f, s, h)
}

func (c *injCtx) Get(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) {
	c.Wait(c.NbGet(g, rank, off, n, dst, dstOff))
}

func (c *injCtx) NbGetSub(g rt.Global, rank, off, ld, rows, cols int, dst rt.Buffer, dstOff int) rt.Handle {
	f, s := c.next(rank)
	if f.Class == Drop {
		return doneFault{}
	}
	h := c.Ctx.NbGetSub(g, rank, off, ld, rows, cols, dst, dstOff)
	if f.Class == Corrupt {
		c.corruptBuf(f, dst, dstOff, rows*cols)
	}
	return c.wrapHandle(f, s, h)
}

func (c *injCtx) NbPut(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) rt.Handle {
	f, s := c.next(rank)
	switch f.Class {
	case Drop:
		return doneFault{}
	case Corrupt:
		// The payload is corrupted in flight: put a bit-flipped copy so
		// the caller's source buffer stays intact.
		if n > 0 {
			scratch := c.Ctx.LocalBuf(n)
			c.Ctx.WriteBuf(scratch, 0, c.Ctx.ReadBuf(src, srcOff, n))
			c.corruptBuf(f, scratch, 0, n)
			return c.wrapHandle(f, s, c.Ctx.NbPut(scratch, 0, n, g, rank, off))
		}
	}
	return c.wrapHandle(f, s, c.Ctx.NbPut(src, srcOff, n, g, rank, off))
}

func (c *injCtx) Put(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) {
	c.Wait(c.NbPut(src, srcOff, n, g, rank, off))
}

func (c *injCtx) NbPutSub(src rt.Buffer, srcOff int, g rt.Global, rank, off, ld, rows, cols int) rt.Handle {
	f, s := c.next(rank)
	n := rows * cols
	switch f.Class {
	case Drop:
		return doneFault{}
	case Corrupt:
		if n > 0 {
			scratch := c.Ctx.LocalBuf(n)
			c.Ctx.WriteBuf(scratch, 0, c.Ctx.ReadBuf(src, srcOff, n))
			c.corruptBuf(f, scratch, 0, n)
			return c.wrapHandle(f, s, c.Ctx.NbPutSub(scratch, 0, g, rank, off, ld, rows, cols))
		}
	}
	return c.wrapHandle(f, s, c.Ctx.NbPutSub(src, srcOff, g, rank, off, ld, rows, cols))
}

// Gemm consults the gemm fault stream: the planned compute crash panics
// mid-task-loop (CrashError with Compute set), and BadBlock faults flip
// one bit of the produced C view AFTER the kernel ran — silent corruption
// that only ABFT verification can see.
func (c *injCtx) Gemm(alpha float64, a, b rt.Mat, beta float64, cm rt.Mat) {
	op := c.nextGemmOp()
	f := c.plan.AtGemm(c.Rank(), op)
	if f.Class == Crash && c.shared != nil && !c.shared.gcrashed.CompareAndSwap(false, true) {
		f = Fault{}
	}
	if f.Class == Crash {
		c.record(op, Crash)
		panic(CrashError{Rank: c.Rank(), Op: op, Compute: true})
	}
	c.Ctx.Gemm(alpha, a, b, beta, cm)
	if f.Class == BadBlock && cm.Rows*cm.Cols > 0 {
		c.record(op, BadBlock)
		e := f.Elem % (cm.Rows * cm.Cols)
		i := cm.Off + (e/cm.Cols)*cm.LD + e%cm.Cols
		v := c.Ctx.ReadBuf(cm.Buf, i, 1)
		bits := math.Float64bits(v[0]) ^ (1 << f.Bit)
		c.Ctx.WriteBuf(cm.Buf, i, []float64{math.Float64frombits(bits)})
	}
}

// Wait understands the injector's own handle types. Waiting on a
// forever-delayed handle without the recovery layer blocks until the run
// watchdog fires — which is exactly the failure mode the resilient layer
// exists to remove.
func (c *injCtx) Wait(h rt.Handle) {
	switch v := h.(type) {
	case doneFault:
	case *delayedHandle:
		t0 := time.Now()
		for !v.Done() {
			time.Sleep(200 * time.Microsecond)
		}
		c.Stats().WaitTime += time.Since(t0).Seconds()
	default:
		c.Ctx.Wait(h)
	}
}

package faults_test

// Chaos suite: end-to-end fault injection on the REAL engine running the
// full SRUMMA multiply, plus the replay-determinism contracts on both
// engines. The acceptance bar for every fault class at every seed:
//
//   - the run either recovers to a C matching a serial dgemm, or
//   - fails loudly with an error naming the faulty rank (and op), and
//   - never hangs: every run executes under the armci watchdog.

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/simnet"
	"srumma/internal/simrt"
)

// Chaos problem: 6 ranks as 3 nodes x 2 ranks, a 3x2 grid, fine task
// granularity so every rank issues a healthy number of one-sided gets.
const (
	chaosN      = 60
	chaosProcs  = 6
	chaosPPN    = 2
	chaosTaskK  = 8
	chaosTimout = 30 * time.Second
)

// chaosRun executes one SRUMMA multiply on the real engine under the fault
// plan (nil plan = fault-free) and returns the gathered C with summed
// stats. rec may be nil.
func chaosRun(t *testing.T, cfg *faults.Config, recov faults.RecoveryConfig, rec *faults.Recorder) (*mat.Matrix, rt.Stats, error) {
	t.Helper()
	g, err := grid.Square(chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Dims{M: chaosN, N: chaosN, K: chaosN}
	opts := core.Options{Case: core.NN, Flavor: core.FlavorDirect, MaxTaskK: chaosTaskK}
	da, db, dc := core.Dists(g, d, opts.Case)
	aGlob := mat.Random(da.Rows, da.Cols, 11)
	bGlob := mat.Random(db.Rows, db.Cols, 22)
	co := driver.NewCollect(chaosProcs)
	topo := rt.Topology{NProcs: chaosProcs, ProcsPerNode: chaosPPN}

	body := func(c rt.Ctx) {
		ga := driver.AllocBlock(c, da)
		gb := driver.AllocBlock(c, db)
		gc := driver.AllocBlock(c, dc)
		driver.LoadBlock(c, da, ga, aGlob)
		driver.LoadBlock(c, db, gb, bGlob)
		if err := core.Multiply(c, g, d, opts, ga, gb, gc); err != nil {
			panic(err)
		}
		co.Deposit(c, driver.StoreBlock(c, dc, gc))
	}

	var stats []*rt.Stats
	if cfg != nil {
		plan, perr := faults.NewPlan(*cfg, chaosProcs)
		if perr != nil {
			t.Fatal(perr)
		}
		stats, err = armci.RunWithTimeout(topo, chaosTimout, func(c rt.Ctx) {
			body(faults.Resilient(faults.Inject(c, plan, rec), recov))
		})
	} else {
		stats, err = armci.Run(topo, body)
	}
	var sum rt.Stats
	for _, s := range stats {
		sum.Add(s)
	}
	if err != nil {
		return nil, sum, err
	}
	got, err := dc.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	return got, sum, nil
}

func chaosReference(t *testing.T) *mat.Matrix {
	t.Helper()
	g, err := grid.Square(chaosProcs)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Dims{M: chaosN, N: chaosN, K: chaosN}
	da, db, _ := core.Dists(g, d, core.NN)
	a := mat.Random(da.Rows, da.Cols, 11)
	b := mat.Random(db.Rows, db.Cols, 22)
	want := mat.New(chaosN, chaosN)
	if err := mat.GemmNaive(false, false, 1, a, b, 0, want); err != nil {
		t.Fatal(err)
	}
	return want
}

func classConfig(t *testing.T, class string, seed uint64) faults.Config {
	t.Helper()
	cfg := faults.Config{Seed: seed}
	switch class {
	case "drop":
		cfg.DropRate = 0.15
	case "delay":
		cfg.DelayRate = 0.2
		cfg.DelayUnit = 500 * time.Microsecond
	case "corrupt":
		cfg.CorruptRate = 0.15
	case "straggle":
		cfg.Stragglers = 2
		cfg.StragglerDelay = 2 * time.Millisecond
	case "crash":
		cfg.Crash = true
		cfg.CrashOpSpan = 4
	default:
		t.Fatalf("unknown class %q", class)
	}
	return cfg
}

// TestChaosRecoverableClasses: every recoverable fault class, three seeds
// each, must recover to the serial-dgemm result with faults actually
// injected — never a hang (watchdog-bounded), never a silently wrong C.
func TestChaosRecoverableClasses(t *testing.T) {
	want := chaosReference(t)
	tol := 1e-10 * float64(chaosN)
	for _, class := range []string{"drop", "delay", "corrupt", "straggle"} {
		t.Run(class, func(t *testing.T) {
			var injected int64
			for _, seed := range []uint64{1, 2, 3} {
				cfg := classConfig(t, class, seed)
				got, sum, err := chaosRun(t, &cfg, faults.RecoveryConfig{}, nil)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if diff := mat.MaxAbsDiff(got, want); diff > tol {
					t.Errorf("seed %d: max diff %g vs serial dgemm", seed, diff)
				}
				injected += sum.FaultsInjected
			}
			if injected == 0 {
				t.Error("no faults injected across three seeds: the class was not exercised")
			}
		})
	}
}

// TestChaosCrash: an injected rank death must fail loudly, naming the
// crashed rank and op — and must not hang the run.
func TestChaosCrash(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		cfg := classConfig(t, "crash", seed)
		plan, err := faults.NewPlan(cfg, chaosProcs)
		if err != nil {
			t.Fatal(err)
		}
		wantRank, wantOp := plan.CrashPoint()
		_, _, err = chaosRun(t, &cfg, faults.RecoveryConfig{}, nil)
		if err == nil {
			t.Fatalf("seed %d: crash planned at rank %d op %d but run succeeded", seed, wantRank, wantOp)
		}
		var we *armci.WatchdogError
		if errors.As(err, &we) {
			t.Fatalf("seed %d: crash hung the run instead of failing loudly: %v", seed, err)
		}
		msg := err.Error()
		if !strings.Contains(msg, "rank") || !strings.Contains(msg, "crash") {
			t.Errorf("seed %d: error lacks rank/crash context: %q", seed, msg)
		}
	}
}

// TestChaosReplayDeterministicReal: the same seed and topology must inject
// the identical fault sequence on every rank across runs of the real
// engine. Drop and corrupt faults are used because their injection points
// are data-dependent, not wall-clock-dependent; the straggler threshold is
// raised so scheduling never depends on timing noise.
func TestChaosReplayDeterministicReal(t *testing.T) {
	cfg := faults.Config{Seed: 99, DropRate: 0.1, CorruptRate: 0.1}
	recov := faults.RecoveryConfig{StragglerLatency: time.Hour, MaxAttempts: 16}
	rec1 := faults.NewRecorder(chaosProcs)
	rec2 := faults.NewRecorder(chaosProcs)
	if _, _, err := chaosRun(t, &cfg, recov, rec1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := chaosRun(t, &cfg, recov, rec2); err != nil {
		t.Fatal(err)
	}
	if rec1.Total() == 0 {
		t.Fatal("no faults recorded: nothing to replay")
	}
	for r := 0; r < chaosProcs; r++ {
		if !reflect.DeepEqual(rec1.Log(r), rec2.Log(r)) {
			t.Errorf("rank %d: fault sequences differ between identical runs:\n run1: %v\n run2: %v",
				r, rec1.Log(r), rec2.Log(r))
		}
	}
}

// TestChaosReplayDeterministicSim: the virtual-time engine consumes the
// same plan through the simnet hook; two runs with the same seed must see
// the identical injected event sequence (the vtime kernel serializes all
// transfers, so the log order is well-defined).
func TestChaosReplayDeterministicSim(t *testing.T) {
	cfg := faults.Config{Seed: 99, DropRate: 0.1, DelayRate: 0.1, Stragglers: 1}
	type ev struct {
		src, dst int
		bytes    int64
		f        simnet.Fault
	}
	runOnce := func() []ev {
		plan, err := faults.NewPlan(cfg, chaosProcs)
		if err != nil {
			t.Fatal(err)
		}
		inner := plan.NetHook()
		var log []ev
		hook := func(src, dst int, bytes int64) simnet.Fault {
			f := inner(src, dst, bytes)
			log = append(log, ev{src, dst, bytes, f})
			return f
		}
		g, err := grid.Square(chaosProcs)
		if err != nil {
			t.Fatal(err)
		}
		d := core.Dims{M: chaosN, N: chaosN, K: chaosN}
		opts := core.Options{Case: core.NN, Flavor: core.FlavorCopy, MaxTaskK: chaosTaskK}
		da, db, dc := core.Dists(g, d, opts.Case)
		_, err = simrt.RunWithFaults(machine.LinuxMyrinet(), chaosProcs, hook, func(c rt.Ctx) {
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			if err := core.Multiply(c, g, d, opts, ga, gb, gc); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return log
	}
	log1 := runOnce()
	log2 := runOnce()
	if len(log1) == 0 {
		t.Fatal("sim run saw no transfers")
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("sim fault-event sequences differ between identical runs (%d vs %d events)", len(log1), len(log2))
	}
	perturbed := 0
	for _, e := range log1 {
		if e.f.Lost || e.f.ExtraLatency > 0 {
			perturbed++
		}
	}
	if perturbed == 0 {
		t.Error("no transfer was perturbed: the hook was not exercised")
	}
}

// TestChaosGracefulDegradation: under forever-delays the recovery layer
// must retry past the wedged handles, degrade to blocking mode, and still
// produce the right C.
func TestChaosGracefulDegradation(t *testing.T) {
	want := chaosReference(t)
	cfg := faults.Config{Seed: 4, DelayRate: 0.35, DelayForever: true}
	recov := faults.RecoveryConfig{
		OpTimeout:    2 * time.Millisecond,
		MaxBackoff:   8 * time.Millisecond,
		MaxAttempts:  16,
		DegradeAfter: 2,
	}
	got, sum, err := chaosRun(t, &cfg, recov, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-10*float64(chaosN) {
		t.Errorf("max diff %g vs serial dgemm", diff)
	}
	if sum.FaultRetries == 0 {
		t.Error("no retries: forever-delays were not exercised")
	}
	if sum.DegradedMode == 0 {
		t.Error("no rank degraded to blocking mode")
	}
}

// TestChaosStragglerStealing: with stragglers planned and a tight latency
// threshold, the dynamic executor must route around the slow ranks.
func TestChaosStragglerStealing(t *testing.T) {
	want := chaosReference(t)
	cfg := faults.Config{Seed: 6, Stragglers: 2, StragglerDelay: 4 * time.Millisecond}
	recov := faults.RecoveryConfig{StragglerLatency: 500 * time.Microsecond}
	got, sum, err := chaosRun(t, &cfg, recov, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-10*float64(chaosN) {
		t.Errorf("max diff %g vs serial dgemm", diff)
	}
	if sum.StragglerSteals == 0 {
		t.Error("no tasks were re-ordered around the planned stragglers")
	}
}

// TestChaosWatchdogWithoutRecovery demonstrates why the resilience layer
// exists: injection alone (no Resilient wrapper) with a forever-delayed
// transfer wedges the waiting rank, and the run watchdog converts the hang
// into a WatchdogError naming the leaked rank.
func TestChaosWatchdogWithoutRecovery(t *testing.T) {
	topo := rt.Topology{NProcs: 2, ProcsPerNode: 2}
	plan, err := faults.NewPlan(faults.Config{Seed: 1, DelayRate: 1, DelayForever: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = armci.RunWithTimeout(topo, 500*time.Millisecond, func(raw rt.Ctx) {
		c := faults.Inject(raw, plan, nil)
		g := c.Malloc(8)
		c.Barrier()
		if c.Rank() == 0 {
			dst := c.LocalBuf(8)
			c.Get(g, 1, 0, 8, dst, 0) // forever-delayed: wedges rank 0
		}
		c.Barrier()
	})
	var we *armci.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("want WatchdogError, got %v", err)
	}
	found := false
	for _, r := range we.Leaked {
		if r == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("leaked rank set %v does not name the wedged rank 0", we.Leaked)
	}
}

// TestChaosZeroConfigTransparent: wrapping with a no-fault plan and the
// recovery layer must not change the result or count anything.
func TestChaosZeroConfigTransparent(t *testing.T) {
	want := chaosReference(t)
	cfg := faults.Config{Seed: 1}
	got, sum, err := chaosRun(t, &cfg, faults.RecoveryConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-10*float64(chaosN) {
		t.Errorf("max diff %g vs serial dgemm", diff)
	}
	if sum.FaultsInjected != 0 || sum.ChecksumErrors != 0 {
		t.Errorf("no-fault plan injected %d faults, %d checksum errors", sum.FaultsInjected, sum.ChecksumErrors)
	}
}

package faults

// Serving-mode injector state. The per-job Inject wrapper restarts its op
// counters at zero for every wrap, which is right for one-shot runs but
// wrong for a server: every request would replay the schedule's opening
// ops — and a planned crash would kill every single job, so no retry could
// ever succeed. Shared keeps the counters (and once-only crash latches) at
// process scope, so the fault schedule advances ACROSS jobs and teams and
// an injected rank death fires exactly once per process. That is the shape
// a recovery gate needs: the first attempt dies mid-compute, the resumed
// retry runs clean.

import (
	"sync/atomic"

	"srumma/internal/rt"
)

// Shared is process-lifetime injector state for a serving layer: per-rank
// op counters persistent across jobs, plus crash latches. Safe for
// concurrent use from every rank of every in-flight job.
type Shared struct {
	plan     *Plan
	ops      []atomic.Int64 // one-sided op counters, indexed by rank
	gops     []atomic.Int64 // local-gemm counters, indexed by rank
	crashed  atomic.Bool    // the one-sided crash already fired
	gcrashed atomic.Bool    // the compute crash already fired
}

// NewShared builds shared injector state over the plan's topology.
func NewShared(p *Plan) *Shared {
	return &Shared{
		plan: p,
		ops:  make([]atomic.Int64, p.NProcs()),
		gops: make([]atomic.Int64, p.NProcs()),
	}
}

// Plan returns the schedule behind the shared state.
func (s *Shared) Plan() *Plan { return s.plan }

// Wrap layers the injector over one job's engine ctx, drawing op indices
// from the shared process-wide counters.
func (s *Shared) Wrap(inner rt.Ctx) rt.Ctx {
	return &injCtx{Ctx: inner, plan: s.plan, shared: s}
}

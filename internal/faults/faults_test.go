package faults_test

import (
	"reflect"
	"testing"
	"time"

	"srumma/internal/armci"
	"srumma/internal/faults"
	"srumma/internal/rt"
)

func TestConfigValidate(t *testing.T) {
	bad := []faults.Config{
		{DropRate: -0.1},
		{DelayRate: 1.5},
		{CorruptRate: -1},
		{DropRate: 0.5, DelayRate: 0.4, CorruptRate: 0.2}, // sum > 1
		{Stragglers: -1},
	}
	for _, cfg := range bad {
		if _, err := faults.NewPlan(cfg, 4); err == nil {
			t.Errorf("config %+v: want error, got nil", cfg)
		}
	}
	if _, err := faults.NewPlan(faults.Config{DropRate: 0.3, DelayRate: 0.3, CorruptRate: 0.3}, 4); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if _, err := faults.NewPlan(faults.Config{}, 0); err == nil {
		t.Error("0 ranks: want error, got nil")
	}
}

// TestPlanDeterminism is the replay contract at the planner level: the
// schedule is a pure function of (Config, nprocs).
func TestPlanDeterminism(t *testing.T) {
	cfg := faults.Config{
		Seed: 42, DropRate: 0.2, DelayRate: 0.2, CorruptRate: 0.2,
		Stragglers: 2, Crash: true,
	}
	p1, err := faults.NewPlan(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := faults.NewPlan(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Schedule(128), p2.Schedule(128)) {
		t.Error("same config, same topology: schedules differ")
	}
	r1, o1 := p1.CrashPoint()
	r2, o2 := p2.CrashPoint()
	if r1 != r2 || o1 != o2 {
		t.Errorf("crash point not deterministic: (%d,%d) vs (%d,%d)", r1, o1, r2, o2)
	}
	for r := 0; r < 8; r++ {
		if p1.Straggler(r) != p2.Straggler(r) {
			t.Errorf("straggler set not deterministic at rank %d", r)
		}
	}

	// And At is pure: evaluation order must not matter.
	if f1, f2 := p1.At(3, 77), p1.At(3, 77); f1 != f2 {
		t.Errorf("At not pure: %+v vs %+v", f1, f2)
	}

	// A different seed plans a different schedule (at these rates, 8x128
	// identical rolls would be astronomically unlikely).
	cfg.Seed = 43
	p3, err := faults.NewPlan(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(p1.Schedule(128), p3.Schedule(128)) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestPlanRates(t *testing.T) {
	p, err := faults.NewPlan(faults.Config{Seed: 7, DropRate: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for op := 0; op < 64; op++ {
			if f := p.At(r, op); f.Class != faults.Drop {
				t.Fatalf("DropRate=1: rank %d op %d got %v", r, op, f.Class)
			}
		}
	}
	p, err = faults.NewPlan(faults.Config{Seed: 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		for op := 0; op < 64; op++ {
			if f := p.At(r, op); f.Class != faults.None {
				t.Fatalf("zero rates: rank %d op %d got %v", r, op, f.Class)
			}
		}
	}
}

func TestStragglerSet(t *testing.T) {
	for _, want := range []int{0, 1, 3, 6, 9} {
		p, err := faults.NewPlan(faults.Config{Seed: 5, Stragglers: want}, 6)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for r := 0; r < 6; r++ {
			if p.Straggler(r) {
				n++
			}
		}
		capped := want
		if capped > 6 {
			capped = 6
		}
		if n != capped {
			t.Errorf("Stragglers=%d: %d ranks flagged, want %d", want, n, capped)
		}
	}
}

func TestCrashPointBounds(t *testing.T) {
	p, err := faults.NewPlan(faults.Config{Seed: 9, Crash: true, CrashOpSpan: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r, op := p.CrashPoint()
	if r < 0 || r >= 3 || op < 0 || op >= 5 {
		t.Errorf("crash point (%d,%d) outside rank [0,3) x op [0,5)", r, op)
	}
	p, err = faults.NewPlan(faults.Config{Seed: 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r, op := p.CrashPoint(); r != -1 || op != -1 {
		t.Errorf("no crash planned but CrashPoint = (%d,%d)", r, op)
	}
}

// TestPutRecovery drives the recovery loop at the op level: rank 0 puts
// batches into rank 1's segment through the injector at aggressive
// drop+corrupt rates; every batch must land bit-correct (verified from the
// target's own view) and the stats must show the detected checksum
// failures and re-issues.
func TestPutRecovery(t *testing.T) {
	const n, rounds = 32, 12
	topo := rt.Topology{NProcs: 2, ProcsPerNode: 2}
	plan, err := faults.NewPlan(faults.Config{Seed: 11, DropRate: 0.25, CorruptRate: 0.25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got [rounds][n]float64
	stats, err := armci.Run(topo, func(raw rt.Ctx) {
		c := faults.Resilient(faults.Inject(raw, plan, nil), faults.RecoveryConfig{
			OpTimeout: 2 * time.Millisecond, MaxAttempts: 12,
		})
		g := c.Malloc(n)
		c.Barrier()
		if c.Rank() == 0 {
			src := c.LocalBuf(n)
			for round := 0; round < rounds; round++ {
				vals := make([]float64, n)
				for i := range vals {
					vals[i] = float64(round*n + i)
				}
				c.WriteBuf(src, 0, vals)
				c.Put(src, 0, n, g, 1, 0)
				copy(got[round][:], c.ReadBuf(c.Direct(g, 1), 0, n))
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		for i, v := range got[round] {
			if v != float64(round*n+i) {
				t.Fatalf("round %d elem %d: got %g, want %g", round, i, v, float64(round*n+i))
			}
		}
	}
	var sum rt.Stats
	for _, s := range stats {
		sum.Add(s)
	}
	if sum.FaultsInjected == 0 {
		t.Error("no faults injected at 50% combined rate over 12 puts")
	}
	if sum.ChecksumErrors == 0 || sum.FaultRefetches == 0 {
		t.Errorf("recovery not exercised: %d checksum errors, %d refetches", sum.ChecksumErrors, sum.FaultRefetches)
	}
}

// TestGetRecovery is the read-side counterpart: gets through the injector
// at drop+corrupt rates must always land the authoritative source data.
func TestGetRecovery(t *testing.T) {
	const n, rounds = 32, 12
	topo := rt.Topology{NProcs: 2, ProcsPerNode: 2}
	plan, err := faults.NewPlan(faults.Config{Seed: 17, DropRate: 0.25, CorruptRate: 0.25}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var bad int
	stats, err := armci.Run(topo, func(raw rt.Ctx) {
		c := faults.Resilient(faults.Inject(raw, plan, nil), faults.RecoveryConfig{
			OpTimeout: 2 * time.Millisecond, MaxAttempts: 12,
		})
		g := c.Malloc(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(c.Rank()*1000 + i)
		}
		c.WriteBuf(c.Local(g), 0, vals)
		c.Barrier()
		if c.Rank() == 0 {
			dst := c.LocalBuf(n)
			for round := 0; round < rounds; round++ {
				c.Get(g, 1, 0, n, dst, 0)
				for i, v := range c.ReadBuf(dst, 0, n) {
					if v != float64(1000+i) {
						bad++
					}
				}
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Fatalf("%d corrupted elements survived recovery", bad)
	}
	var sum rt.Stats
	for _, s := range stats {
		sum.Add(s)
	}
	if sum.FaultsInjected == 0 || sum.FaultRefetches == 0 {
		t.Errorf("recovery not exercised: %d faults, %d refetches", sum.FaultsInjected, sum.FaultRefetches)
	}
}

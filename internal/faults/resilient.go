package faults

import (
	"fmt"
	"time"

	"srumma/internal/rt"
)

// RecoveryConfig tunes the resilient wrapper. The zero value gets sensible
// defaults (25ms first-attempt timeout, 8 attempts, checksums on when the
// engine supports them).
type RecoveryConfig struct {
	// OpTimeout is the first-attempt completion deadline of a one-sided
	// op; each retry doubles it up to MaxBackoff (capped exponential
	// backoff).
	OpTimeout  time.Duration
	MaxBackoff time.Duration
	// MaxAttempts bounds issues per op; exhausting it panics with rank and
	// op context (fail loudly, never silently wrong).
	MaxAttempts int
	// NoChecksum disables end-to-end payload verification even when the
	// engine supports it.
	NoChecksum bool
	// StragglerLatency flags an owner as slow once the EWMA of blocked
	// wait time on its transfers exceeds this (default 1ms).
	StragglerLatency time.Duration
	// DegradeAfter is the failed-attempt count (timeouts plus checksum
	// mismatches) after which the rank degrades from the nonblocking
	// double-buffered pipeline to blocking single-buffer transfers.
	DegradeAfter int
}

func (c RecoveryConfig) withDefaults() RecoveryConfig {
	if c.OpTimeout <= 0 {
		c.OpTimeout = 25 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.StragglerLatency <= 0 {
		c.StragglerLatency = time.Millisecond
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 4
	}
	return c
}

// Resilient wraps a (possibly fault-injected) real-engine ctx with the
// recovery mechanics: every one-sided get/put gets a completion timeout
// with capped exponential backoff and re-issue, payloads are verified
// end-to-end by checksum and refetched on mismatch, per-owner wait
// latencies are tracked so the SRUMMA executor can route around
// stragglers (IsSlow), and repeated failures flip the rank into degraded
// blocking mode (Degraded). Recovery actions are counted in rt.Stats.
//
// Like Inject, it is wall-clock based and therefore for the real engine
// only.
func Resilient(inner rt.Ctx, cfg RecoveryConfig) rt.Ctx {
	return &resCtx{
		Ctx:  inner,
		cfg:  cfg.withDefaults(),
		sum:  checksummerOf(inner),
		ewma: make([]float64, inner.Size()),
	}
}

type resCtx struct {
	rt.Ctx // inner (typically the injector); everything else passes through
	cfg    RecoveryConfig
	sum    SourceChecksummer // nil when the engine cannot checksum sources
	ewma   []float64         // per-owner blocked-wait EWMA, seconds
	fails  int               // failed attempts so far
	slow   bool              // degraded to blocking mode
	ops    int64             // issue ordinal, for error context
}

// Unwrap exposes the layer beneath.
func (c *resCtx) Unwrap() rt.Ctx { return c.Ctx }

// IsSlow reports whether transfers from rank have been stalling: the
// SRUMMA executor defers tasks whose operands live on slow ranks.
func (c *resCtx) IsSlow(rank int) bool {
	return c.ewma[rank] > c.cfg.StragglerLatency.Seconds()
}

// Degraded reports whether this rank has fallen back to blocking
// single-buffer transfers after repeated handle failures.
func (c *resCtx) Degraded() bool { return c.slow }

func (c *resCtx) noteFailure() {
	c.fails++
	if !c.slow && c.fails >= c.cfg.DegradeAfter {
		c.slow = true
		c.Stats().DegradedMode = 1
	}
}

// observe folds one blocked wait on `rank` into its latency EWMA.
func (c *resCtx) observe(rank int, waited float64) {
	c.ewma[rank] = 0.75*c.ewma[rank] + 0.25*waited
}

// pollUntil waits for h to complete within `limit`, polling (engine Wait
// cannot be used: a faulted handle may never complete). Returns false on
// timeout.
func pollUntil(h rt.Handle, limit time.Duration) bool {
	if h.Done() {
		return true
	}
	deadline := time.Now().Add(limit)
	for {
		time.Sleep(100 * time.Microsecond)
		if h.Done() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
	}
}

// retryGet is a nonblocking get with enough captured state to be
// re-issued. rows/cols/ld describe the strided region; contiguous gets use
// rows=1, ld=cols=n.
type retryGet struct {
	c                         *resCtx
	g                         rt.Global
	rank, off, ld, rows, cols int
	dst                       rt.Buffer
	dstOff                    int
	h                         rt.Handle
	want                      uint64 // source checksum, when available
	attempt                   int
	op                        int64 // issue ordinal, for error context
}

func (r *retryGet) Done() bool { return r.h.Done() }

// retryPut is the symmetric nonblocking put. Puts are verified by
// checksumming the target region against the source payload after
// completion (puts are idempotent, so re-issue is safe).
type retryPut struct {
	c                         *resCtx
	src                       rt.Buffer
	srcOff                    int
	g                         rt.Global
	rank, off, ld, rows, cols int
	h                         rt.Handle
	want                      uint64
	attempt                   int
	op                        int64
}

func (r *retryPut) Done() bool { return r.h.Done() }

func (c *resCtx) newGet(g rt.Global, rank, off, ld, rows, cols int, dst rt.Buffer, dstOff int) *retryGet {
	r := &retryGet{c: c, g: g, rank: rank, off: off, ld: ld, rows: rows, cols: cols, dst: dst, dstOff: dstOff}
	if c.sum != nil && !c.cfg.NoChecksum {
		r.want = c.sum.ChecksumRegion(g, rank, off, ld, rows, cols)
	}
	c.ops++
	r.op = c.ops
	r.issue()
	return r
}

func (r *retryGet) issue() {
	if r.rows == 1 {
		r.h = r.c.Ctx.NbGet(r.g, r.rank, r.off, r.cols, r.dst, r.dstOff)
	} else {
		r.h = r.c.Ctx.NbGetSub(r.g, r.rank, r.off, r.ld, r.rows, r.cols, r.dst, r.dstOff)
	}
}

// verify reports whether the landed payload matches the source checksum.
func (r *retryGet) verify() bool {
	if r.c.sum == nil || r.c.cfg.NoChecksum {
		return true
	}
	return rt.Checksum(r.c.Ctx.ReadBuf(r.dst, r.dstOff, r.rows*r.cols)) == r.want
}

func (c *resCtx) NbGet(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) rt.Handle {
	return c.newGet(g, rank, off, n, 1, n, dst, dstOff)
}

func (c *resCtx) NbGetSub(g rt.Global, rank, off, ld, rows, cols int, dst rt.Buffer, dstOff int) rt.Handle {
	return c.newGet(g, rank, off, ld, rows, cols, dst, dstOff)
}

func (c *resCtx) Get(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) {
	c.Wait(c.NbGet(g, rank, off, n, dst, dstOff))
}

func (c *resCtx) NbPut(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) rt.Handle {
	return c.newPut(src, srcOff, g, rank, off, n, 1, n)
}

func (c *resCtx) NbPutSub(src rt.Buffer, srcOff int, g rt.Global, rank, off, ld, rows, cols int) rt.Handle {
	return c.newPut(src, srcOff, g, rank, off, ld, rows, cols)
}

func (c *resCtx) Put(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) {
	c.Wait(c.NbPut(src, srcOff, n, g, rank, off))
}

func (c *resCtx) newPut(src rt.Buffer, srcOff int, g rt.Global, rank, off, ld, rows, cols int) *retryPut {
	r := &retryPut{c: c, src: src, srcOff: srcOff, g: g, rank: rank, off: off, ld: ld, rows: rows, cols: cols}
	if c.sum != nil && !c.cfg.NoChecksum {
		r.want = rt.Checksum(c.Ctx.ReadBuf(src, srcOff, rows*cols))
	}
	c.ops++
	r.op = c.ops
	r.issue()
	return r
}

func (r *retryPut) issue() {
	if r.rows == 1 {
		r.h = r.c.Ctx.NbPut(r.src, r.srcOff, r.cols, r.g, r.rank, r.off)
	} else {
		r.h = r.c.Ctx.NbPutSub(r.src, r.srcOff, r.g, r.rank, r.off, r.ld, r.rows, r.cols)
	}
}

func (r *retryPut) verify() bool {
	if r.c.sum == nil || r.c.cfg.NoChecksum {
		return true
	}
	return r.c.sum.ChecksumRegion(r.g, r.rank, r.off, r.ld, r.rows, r.cols) == r.want
}

// Wait drives the recovery loop for the wrapper's own handles and passes
// everything else through.
func (c *resCtx) Wait(h rt.Handle) {
	switch r := h.(type) {
	case *retryGet:
		c.recover(r.rank, r.op, "get", &r.attempt, func(limit time.Duration) bool {
			return pollUntil(r.h, limit)
		}, r.verify, r.issue)
	case *retryPut:
		c.recover(r.rank, r.op, "put", &r.attempt, func(limit time.Duration) bool {
			return pollUntil(r.h, limit)
		}, r.verify, r.issue)
	default:
		c.Ctx.Wait(h)
	}
}

// recover runs the shared timeout/verify/retry loop of one op: poll to the
// attempt deadline, verify the payload end-to-end, re-issue with doubled
// (capped) timeout on either failure, and fail loudly with rank and op
// context once attempts are exhausted.
func (c *resCtx) recover(target int, op int64, kind string, attempt *int,
	poll func(time.Duration) bool, verify func() bool, reissue func()) {
	t0 := time.Now()
	defer func() {
		waited := time.Since(t0).Seconds()
		c.Stats().WaitTime += waited
		c.observe(target, waited)
	}()
	limit := c.cfg.OpTimeout
	for {
		ok := poll(limit)
		if ok {
			if verify() {
				return
			}
			c.Stats().ChecksumErrors++
			c.Stats().FaultRefetches++
		} else {
			c.Stats().FaultRetries++
		}
		c.noteFailure()
		*attempt++
		if *attempt >= c.cfg.MaxAttempts {
			panic(fmt.Sprintf("faults: rank %d: one-sided %s targeting rank %d failed after %d attempts (op %d): transfer lost or corrupted beyond recovery",
				c.Rank(), kind, target, *attempt, op))
		}
		limit *= 2
		if limit > c.cfg.MaxBackoff {
			limit = c.cfg.MaxBackoff
		}
		reissue()
	}
}

package faults_test

// Fuzzing the fault planner: for ARBITRARY (seed, topology, op-count,
// rates) the plan must be a valid, deterministic, replayable schedule —
// the property every chaos test and every post-mortem replay rests on.

import (
	"math"
	"reflect"
	"testing"

	"srumma/internal/faults"
)

// fuzzRate squashes an arbitrary float64 into [0, 1/3] so three of them
// always form a valid rate triple.
func fuzzRate(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(math.Abs(x), 1) / 3
}

func FuzzPlan(f *testing.F) {
	f.Add(uint64(1), 4, 32, 0.1, 0.2, 0.3, 1, false)
	f.Add(uint64(0), 1, 1, 0.0, 0.0, 0.0, 0, false)
	f.Add(uint64(0xdeadbeef), 64, 256, 0.9, 0.05, 0.05, 7, true)
	f.Add(uint64(42), 6, 100, 0.0, 1.0, 0.0, 100, true)
	f.Fuzz(func(t *testing.T, seed uint64, nprocs, ops int, drop, delay, corrupt float64, stragglers int, crash bool) {
		nprocs = 1 + abs(nprocs)%64
		ops = abs(ops) % 256
		cfg := faults.Config{
			Seed:        seed,
			DropRate:    fuzzRate(drop),
			DelayRate:   fuzzRate(delay),
			CorruptRate: fuzzRate(corrupt),
			Stragglers:  abs(stragglers) % (2 * nprocs),
			Crash:       crash,
		}
		p1, err := faults.NewPlan(cfg, nprocs)
		if err != nil {
			t.Fatalf("sanitized config rejected: %v (cfg %+v)", err, cfg)
		}
		p2, err := faults.NewPlan(cfg, nprocs)
		if err != nil {
			t.Fatal(err)
		}

		// Replay: two plans from the same inputs are the same schedule.
		s1, s2 := p1.Schedule(ops), p2.Schedule(ops)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatal("same (config, nprocs): schedules differ")
		}

		// Purity: re-evaluating any entry gives the schedule's answer.
		for r := 0; r < nprocs; r += 1 + nprocs/7 {
			for op := 0; op < ops; op += 1 + ops/11 {
				if got := p1.At(r, op); got != s1[r][op] {
					t.Fatalf("At(%d,%d) = %+v, schedule says %+v", r, op, got, s1[r][op])
				}
			}
		}

		// Structural invariants.
		ns := 0
		for r := 0; r < nprocs; r++ {
			if p1.Straggler(r) {
				ns++
			}
		}
		want := cfg.Stragglers
		if want > nprocs {
			want = nprocs
		}
		if ns != want {
			t.Fatalf("%d stragglers flagged, want %d", ns, want)
		}
		cr, cop := p1.CrashPoint()
		if crash {
			span := p1.Config().CrashOpSpan
			if cr < 0 || cr >= nprocs || cop < 0 || cop >= span {
				t.Fatalf("crash point (%d,%d) outside rank [0,%d) x op [0,%d)", cr, cop, nprocs, span)
			}
		} else if cr != -1 || cop != -1 {
			t.Fatalf("no crash requested but CrashPoint = (%d,%d)", cr, cop)
		}
		for r := range s1 {
			for op, fa := range s1[r] {
				switch fa.Class {
				case faults.None, faults.Drop, faults.Delay, faults.Corrupt, faults.Crash:
				default:
					t.Fatalf("rank %d op %d: unexpected class %v in per-op schedule", r, op, fa.Class)
				}
				if fa.Class == faults.Crash && (r != cr || op != cop) {
					t.Fatalf("crash at (%d,%d) but planned point is (%d,%d)", r, op, cr, cop)
				}
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == math.MinInt {
			return 0
		}
		return -x
	}
	return x
}

// Package summa implements SUMMA (van de Geijn & Watts 1997), the
// message-passing matrix multiplication the paper compares against: a loop
// over K panels of width nb, each step broadcasting a column panel of A
// along grid rows and a row panel of B along grid columns (pipelined ring
// broadcasts), followed by a local rank-nb dgemm update. Operands use the
// regular block distribution; transposed cases are reduced to NN by a
// distributed transpose first (package redist), the way PBLAS handles
// PxTRANS operands.
package summa

import (
	"fmt"

	"srumma/internal/grid"
	"srumma/internal/mp"
	"srumma/internal/redist"
	"srumma/internal/rt"
)

// DefaultNB is the panel width used when Options.NB is zero.
const DefaultNB = 64

// Options configure the SUMMA baseline.
type Options struct {
	// Case selects the transpose variant; non-NN cases pay a distributed
	// transpose up front.
	Case Case
	// NB is the panel width (DefaultNB when zero).
	NB int
	// BinomialBcast replaces the pipelined ring broadcast with a binomial
	// tree (ablation; real SUMMA pipelines).
	BinomialBcast bool
	// Segment is the ring-broadcast pipeline segment in elements
	// (panel-size when zero, i.e. no segmentation).
	Segment int
	// DIMMA processes k-panels grouped by owning grid column/row instead of
	// in ascending k order — Choi's DIMMA (IPPS'97) modification of SUMMA's
	// communication schedule, which keeps each broadcast root streaming
	// consecutive panels instead of handing the ring off every step.
	DIMMA bool
}

// Case mirrors core.Case so callers don't need to import core for the
// baseline. Values are identical.
type Case int

// The four transpose cases.
const (
	NN Case = iota
	TN
	NT
	TT
)

// TransA reports whether A is transposed.
func (cs Case) TransA() bool { return cs == TN || cs == TT }

// TransB reports whether B is transposed.
func (cs Case) TransB() bool { return cs == NT || cs == TT }

// Dims are the operation sizes (C is M x N, contraction K).
type Dims struct{ M, N, K int }

// Dists returns the block distributions of the stored operands A, B, C.
func Dists(g *grid.Grid, d Dims, cs Case) (da, db, dc *grid.BlockDist) {
	ar, ac := d.M, d.K
	if cs.TransA() {
		ar, ac = d.K, d.M
	}
	br, bc := d.K, d.N
	if cs.TransB() {
		br, bc = d.N, d.K
	}
	return grid.NewBlockDist(g, ar, ac), grid.NewBlockDist(g, br, bc), grid.NewBlockDist(g, d.M, d.N)
}

const (
	tagA = 8100
	tagB = 8200
)

// ScheduleOrder is the reusable core of SUMMA's communication schedule: the
// processing order of n panel steps given the broadcast root of each step.
// With dimma false it is the identity (van de Geijn & Watts' ascending-k
// SUMMA). With dimma true it applies Choi's DIMMA (IPPS'97) regrouping —
// steps sorted stably by root so each root streams its panels back to back —
// with the root sequence additionally rotated by rot (mod nRoots), the
// diagonal-shift stagger SRUMMA applies per requester (paper Figure 4).
//
// SUMMA itself calls it with grid columns as roots and rot 0; the
// hierarchical outer level (internal/hier) reuses it with GROUPS as roots
// and rot = the requesting group's index, so at any outer step each group
// serves roughly one other group instead of all groups draining the same
// owner.
func ScheduleOrder(n int, root func(step int) int, nRoots, rot int, dimma bool) []int {
	order := make([]int, 0, n)
	if !dimma || nRoots <= 0 {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	for r := 0; r < nRoots; r++ {
		want := (r + rot) % nRoots
		for i := 0; i < n; i++ {
			if root(i) == want {
				order = append(order, i)
			}
		}
	}
	// Steps whose root falls outside [0, nRoots) would otherwise be dropped;
	// keep them at the tail in original order so the schedule stays total.
	for i := 0; i < n; i++ {
		if r := root(i); r < 0 || r >= nRoots {
			order = append(order, i)
		}
	}
	return order
}

// Multiply runs SUMMA collectively: C = op(A) op(B) with the operands
// block-distributed per Dists. C is overwritten.
func Multiply(c rt.Ctx, g *grid.Grid, d Dims, opts Options, ga, gb, gc rt.Global) error {
	if d.M <= 0 || d.N <= 0 || d.K <= 0 {
		return fmt.Errorf("summa: dimensions %+v must be positive", d)
	}
	if g.Size() != c.Size() {
		return fmt.Errorf("summa: grid needs %d ranks, runtime has %d", g.Size(), c.Size())
	}
	nb := opts.NB
	if nb <= 0 {
		nb = DefaultNB
	}
	c.Barrier()

	// Reduce transposed operands to NN layout with a distributed transpose.
	daNN := grid.NewBlockDist(g, d.M, d.K)
	dbNN := grid.NewBlockDist(g, d.K, d.N)
	aNN, bNN := ga, gb
	if opts.Case.TransA() {
		daT := grid.NewBlockDist(g, d.K, d.M)
		r, cc := daNN.LocalShape(c.Rank())
		aNN = c.Malloc(r * cc)
		redist.TransposeBlock(c, daT, daNN, ga, aNN)
	}
	if opts.Case.TransB() {
		dbT := grid.NewBlockDist(g, d.N, d.K)
		r, cc := dbNN.LocalShape(c.Rank())
		bNN = c.Malloc(r * cc)
		redist.TransposeBlock(c, dbT, dbNN, gb, bNN)
	}

	me := c.Rank()
	myRow, myCol := g.Coords(me)
	mLoc := daNN.RowChunks[myRow].N
	nLoc := dbNN.ColChunks[myCol].N
	kColsA := daNN.ColChunks // K over Q
	kRowsB := dbNN.RowChunks // K over P
	dc := grid.NewBlockDist(g, d.M, d.N)
	cr, ccols := dc.LocalShape(me)
	if gc.LenAt(me) != cr*ccols {
		return fmt.Errorf("summa: C segment %d does not match local block %dx%d", gc.LenAt(me), cr, ccols)
	}

	rowGroup := g.RowRanks(myRow)
	colGroup := g.ColRanks(myCol)
	aPanel := c.LocalBuf(mLoc * nb)
	bPanel := c.LocalBuf(nb * nLoc)
	aLocal := c.Local(aNN)
	bLocal := c.Local(bNN)
	cLocal := c.Local(gc)

	bcast := func(root int, group []int, buf rt.Buffer, n, tag int) {
		if opts.BinomialBcast {
			mp.Bcast(c, root, group, buf, 0, n, tag)
			return
		}
		seg := opts.Segment
		if seg <= 0 {
			seg = n
		}
		mp.RingBcast(c, root, group, buf, 0, n, seg, tag)
	}

	// Walk K in panels that never straddle an owner boundary: cut at every
	// multiple of nb and at every chunk edge of A's and B's k-partitions.
	type panel struct {
		kLo, w, ocA, orB int
	}
	var panels []panel
	for kLo := 0; kLo < d.K; {
		ocA := grid.PartitionOf(d.K, g.Q, kLo)
		orB := grid.PartitionOf(d.K, g.P, kLo)
		w := nb
		if rem := kColsA[ocA].Lo + kColsA[ocA].N - kLo; rem < w {
			w = rem
		}
		if rem := kRowsB[orB].Lo + kRowsB[orB].N - kLo; rem < w {
			w = rem
		}
		if rem := d.K - kLo; rem < w {
			w = rem
		}
		panels = append(panels, panel{kLo: kLo, w: w, ocA: ocA, orB: orB})
		kLo += w
	}
	if opts.DIMMA {
		// Group panels by their A-broadcast root column so each root streams
		// its panels back to back (stable within a group, so k stays
		// ascending per root).
		order := ScheduleOrder(len(panels), func(i int) int { return panels[i].ocA }, g.Q, 0, true)
		grouped := make([]panel, 0, len(panels))
		for _, i := range order {
			grouped = append(grouped, panels[i])
		}
		panels = grouped
	}

	for step, pn := range panels {
		kLo, w, ocA, orB := pn.kLo, pn.w, pn.ocA, pn.orB

		// A panel: owner column ocA packs local columns, broadcast along rows.
		aRoot := g.Rank(myRow, ocA)
		if me == aRoot && mLoc > 0 && w > 0 {
			c.Pack(rt.Mat{
				Buf:  aLocal,
				Off:  kLo - kColsA[ocA].Lo,
				LD:   kColsA[ocA].N,
				Rows: mLoc,
				Cols: w,
			}, aPanel, 0)
		}
		if mLoc > 0 && w > 0 {
			bcast(aRoot, rowGroup, aPanel, mLoc*w, tagA+step%64)
		}
		// B panel: owner row orB packs local rows, broadcast along columns.
		bRoot := g.Rank(orB, myCol)
		if me == bRoot && nLoc > 0 && w > 0 {
			c.Pack(rt.Mat{
				Buf:  bLocal,
				Off:  (kLo - kRowsB[orB].Lo) * nLoc,
				LD:   nLoc,
				Rows: w,
				Cols: nLoc,
			}, bPanel, 0)
		}
		if nLoc > 0 && w > 0 {
			bcast(bRoot, colGroup, bPanel, w*nLoc, tagB+step%64)
		}

		if mLoc > 0 && nLoc > 0 && w > 0 {
			beta := 1.0
			if step == 0 {
				beta = 0
			}
			c.Gemm(1,
				rt.Mat{Buf: aPanel, LD: w, Rows: mLoc, Cols: w},
				rt.Mat{Buf: bPanel, LD: nLoc, Rows: w, Cols: nLoc},
				beta,
				rt.Mat{Buf: cLocal, LD: nLoc, Rows: mLoc, Cols: nLoc})
		}
	}
	if opts.Case.TransA() {
		c.Free(aNN)
	}
	if opts.Case.TransB() {
		c.Free(bNN)
	}
	c.Barrier()
	return nil
}

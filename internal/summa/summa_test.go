package summa

import (
	"testing"

	"srumma/internal/armci"
	"srumma/internal/driver"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/simrt"
)

func runReal(t *testing.T, p, q int, d Dims, opts Options, seedA, seedB uint64) *mat.Matrix {
	t.Helper()
	g, err := grid.New(p, q)
	if err != nil {
		t.Fatal(err)
	}
	da, db, dc := Dists(g, d, opts.Case)
	aGlob := mat.Random(da.Rows, da.Cols, seedA)
	bGlob := mat.Random(db.Rows, db.Cols, seedB)
	co := driver.NewCollect(g.Size())
	topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
	_, err = armci.Run(topo, func(c rt.Ctx) {
		ga := driver.AllocBlock(c, da)
		gb := driver.AllocBlock(c, db)
		gc := driver.AllocBlock(c, dc)
		driver.LoadBlock(c, da, ga, aGlob)
		driver.LoadBlock(c, db, gb, bGlob)
		if err := Multiply(c, g, d, opts, ga, gb, gc); err != nil {
			panic(err)
		}
		co.Deposit(c, driver.StoreBlock(c, dc, gc))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dc.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func check(t *testing.T, p, q int, d Dims, opts Options) {
	t.Helper()
	got := runReal(t, p, q, d, opts, 31, 32)
	ar, ac := d.M, d.K
	if opts.Case.TransA() {
		ar, ac = d.K, d.M
	}
	br, bc := d.K, d.N
	if opts.Case.TransB() {
		br, bc = d.N, d.K
	}
	a := mat.Random(ar, ac, 31)
	b := mat.Random(br, bc, 32)
	want := mat.New(d.M, d.N)
	if err := mat.GemmNaive(opts.Case.TransA(), opts.Case.TransB(), 1, a, b, 0, want); err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-10*float64(d.K) {
		t.Errorf("grid %dx%d %+v: diff %g", p, q, opts, diff)
	}
}

func TestSummaNNVariousGrids(t *testing.T) {
	for _, pq := range [][2]int{{1, 1}, {2, 2}, {2, 3}, {3, 2}, {1, 4}} {
		check(t, pq[0], pq[1], Dims{M: 20, N: 24, K: 28}, Options{NB: 5})
	}
}

func TestSummaAllCases(t *testing.T) {
	for _, cs := range []Case{NN, TN, NT, TT} {
		check(t, 2, 3, Dims{M: 18, N: 22, K: 26}, Options{Case: cs, NB: 4})
	}
}

func TestSummaPanelWidths(t *testing.T) {
	for _, nb := range []int{1, 3, 7, 64, 1000} {
		check(t, 2, 2, Dims{M: 16, N: 16, K: 16}, Options{NB: nb})
	}
}

func TestSummaBinomialAndSegments(t *testing.T) {
	check(t, 2, 3, Dims{M: 20, N: 20, K: 20}, Options{NB: 6, BinomialBcast: true})
	check(t, 2, 3, Dims{M: 20, N: 20, K: 20}, Options{NB: 6, Segment: 13})
}

func TestSummaUnevenAndSkinny(t *testing.T) {
	check(t, 3, 3, Dims{M: 17, N: 19, K: 23}, Options{NB: 4})
	check(t, 2, 2, Dims{M: 40, N: 40, K: 3}, Options{NB: 8})
	check(t, 4, 2, Dims{M: 5, N: 33, K: 19}, Options{NB: 4})
}

func TestSummaRejectsBadInput(t *testing.T) {
	g, _ := grid.New(2, 2)
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	_, err := armci.Run(topo, func(c rt.Ctx) {
		gg := c.Malloc(1)
		if err := Multiply(c, g, Dims{M: -1, N: 4, K: 4}, Options{}, gg, gg, gg); err == nil {
			panic("want dims error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSummaOnSimEngine(t *testing.T) {
	prof := machine.SGIAltix()
	g, _ := grid.New(2, 4)
	d := Dims{M: 256, N: 256, K: 256}
	da, db, dc := Dists(g, d, NN)
	run := func() float64 {
		res, err := simrt.Run(prof, 8, func(c rt.Ctx) {
			r, cc := da.LocalShape(c.Rank())
			ga := c.Malloc(r * cc)
			r, cc = db.LocalShape(c.Rank())
			gb := c.Malloc(r * cc)
			r, cc = dc.LocalShape(c.Rank())
			gcG := c.Malloc(r * cc)
			if err := Multiply(c, g, d, Options{NB: 64}, ga, gb, gcG); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	t1, t2 := run(), run()
	if t1 != t2 || t1 <= 0 {
		t.Fatalf("sim run bad: %v vs %v", t1, t2)
	}
}

func TestSummaDIMMA(t *testing.T) {
	// DIMMA reorders the panel schedule; results must be unchanged.
	check(t, 2, 3, Dims{M: 20, N: 24, K: 28}, Options{NB: 5, DIMMA: true})
	check(t, 3, 3, Dims{M: 17, N: 19, K: 23}, Options{NB: 4, DIMMA: true})
	for _, cs := range []Case{TN, NT, TT} {
		check(t, 2, 2, Dims{M: 16, N: 16, K: 16}, Options{Case: cs, NB: 4, DIMMA: true})
	}
}

func TestSummaDIMMAOnSimEngine(t *testing.T) {
	// Both schedules must terminate; DIMMA should be at least competitive
	// on a latency-heavy platform at small panels.
	prof := machine.IBMSP()
	g, _ := grid.New(2, 4)
	d := Dims{M: 512, N: 512, K: 512}
	da, db, dc := Dists(g, d, NN)
	timeOf := func(dimma bool) float64 {
		res, err := simrt.Run(prof, 8, func(c rt.Ctx) {
			r, cc := da.LocalShape(c.Rank())
			ga := c.Malloc(r * cc)
			r, cc = db.LocalShape(c.Rank())
			gb := c.Malloc(r * cc)
			r, cc = dc.LocalShape(c.Rank())
			gcG := c.Malloc(r * cc)
			if err := Multiply(c, g, d, Options{NB: 32, DIMMA: dimma}, ga, gb, gcG); err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	plain, dimma := timeOf(false), timeOf(true)
	if dimma <= 0 || plain <= 0 {
		t.Fatal("zero simulated time")
	}
	t.Logf("summa %.4gs vs dimma %.4gs", plain, dimma)
}

package sched

// The run queue: one index heap per workload class, EDF-ordered within the
// class, picked across classes by weighted fair queueing with starvation
// aging. The heap is an index heap (every task carries its heap position)
// so membership operations stay O(log n) and cancelled tasks can be
// dropped the moment they surface, not after a full scan.

import (
	"container/heap"
	"fmt"
	"time"
)

// Class is a workload class. Classes share the engine pool under weighted
// fairness; within a class dispatch order is earliest-deadline-first.
type Class uint8

const (
	// ClassInteractive is latency-sensitive traffic: the default class,
	// weighted ahead of batch work.
	ClassInteractive Class = iota
	// ClassBatch is throughput traffic: it yields to interactive work up to
	// the fairness weights and the starvation bound.
	ClassBatch
	// NumClasses is the number of workload classes.
	NumClasses = 2
)

func (c Class) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassBatch:
		return "batch"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ParseClass maps wire names onto classes; the empty string is the
// interactive default.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "interactive":
		return ClassInteractive, nil
	case "batch":
		return ClassBatch, nil
	}
	return 0, fmt.Errorf("sched: unknown class %q (want interactive or batch)", s)
}

// taskLess orders a class heap: earliest deadline first, deadline-less
// tasks last in FIFO (submission) order, ties broken FIFO.
func taskLess(a, b *Task) bool {
	az, bz := a.Deadline.IsZero(), b.Deadline.IsZero()
	switch {
	case az && bz:
		return a.seq < b.seq
	case az:
		return false
	case bz:
		return true
	case a.Deadline.Equal(b.Deadline):
		return a.seq < b.seq
	}
	return a.Deadline.Before(b.Deadline)
}

// taskHeap is an index heap of tasks (container/heap interface).
type taskHeap []*Task

func (h taskHeap) Len() int           { return len(h) }
func (h taskHeap) Less(i, j int) bool { return taskLess(h[i], h[j]) }
func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *taskHeap) Push(x any) {
	t := x.(*Task)
	t.index = len(*h)
	*h = append(*h, t)
}

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// runQueue is the scheduler's admitted-but-undispatched state. All access
// is under the scheduler mutex.
type runQueue struct {
	heaps [NumClasses]taskHeap
	// vtime is each class's weighted virtual service time: picking the
	// smallest implements weighted fair queueing across classes.
	vtime [NumClasses]float64
	seq   uint64
}

func (q *runQueue) len() int {
	n := 0
	for c := range q.heaps {
		n += len(q.heaps[c])
	}
	return n
}

// push enqueues t, stamping its FIFO sequence. A class waking from empty
// has its virtual time pulled up to the busiest floor of the active
// classes, so an idle class cannot hoard credit and then monopolize the
// pool.
func (q *runQueue) push(t *Task, enq time.Time) {
	t.seq = q.seq
	q.seq++
	t.enq = enq
	c := t.Class
	if len(q.heaps[c]) == 0 {
		floor, ok := q.minActiveVtime(c)
		if ok && floor > q.vtime[c] {
			q.vtime[c] = floor
		}
	}
	heap.Push(&q.heaps[c], t)
}

// minActiveVtime returns the smallest virtual time among non-empty classes
// other than `except`.
func (q *runQueue) minActiveVtime(except Class) (float64, bool) {
	best, ok := 0.0, false
	for c := range q.heaps {
		if Class(c) == except || len(q.heaps[c]) == 0 {
			continue
		}
		if !ok || q.vtime[c] < best {
			best = q.vtime[c]
			ok = true
		}
	}
	return best, ok
}

func (q *runQueue) popHead(c Class) *Task {
	return heap.Pop(&q.heaps[c]).(*Task)
}

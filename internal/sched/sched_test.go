package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- test harness ----------------------------------------------------------

type fakeWorker struct {
	id     int
	closed atomic.Bool
}

func (w *fakeWorker) Close() error {
	w.closed.Store(true)
	return nil
}

// harness wires a Scheduler to an in-memory executor that records every
// dispatch and can be blocked via gate tasks.
type harness struct {
	t *testing.T
	s *Scheduler

	mu         sync.Mutex
	dispatches [][]*Task
	made       int
}

func newHarness(t *testing.T, cfg Config, exec func(w Worker, tasks []*Task) Outcome) *harness {
	t.Helper()
	h := &harness{t: t}
	cfg.NewWorker = func() (Worker, error) {
		h.mu.Lock()
		h.made++
		id := h.made
		h.mu.Unlock()
		return &fakeWorker{id: id}, nil
	}
	if exec == nil {
		exec = func(w Worker, tasks []*Task) Outcome {
			for _, tk := range tasks {
				tk.Finish(nil)
			}
			return Outcome{}
		}
	}
	cfg.Exec = func(w Worker, tasks []*Task) Outcome {
		cp := append([]*Task(nil), tasks...)
		h.mu.Lock()
		h.dispatches = append(h.dispatches, cp)
		h.mu.Unlock()
		return exec(w, tasks)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h.s = s
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		h.s.Close(ctx)
	})
	return h
}

func (h *harness) dispatchOrder() []*Task {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*Task
	for _, d := range h.dispatches {
		out = append(out, d...)
	}
	return out
}

func (h *harness) workersMade() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.made
}

// gate is a payload that blocks the executor until released; it pins a
// worker so the queue can be built up deterministically behind it.
type gate struct {
	entered chan struct{}
	release chan struct{}
}

func newGate() *gate {
	return &gate{entered: make(chan struct{}), release: make(chan struct{})}
}

// gateExec finishes plain tasks immediately and parks on gate payloads.
func gateExec(w Worker, tasks []*Task) Outcome {
	for _, tk := range tasks {
		if g, ok := tk.Payload.(*gate); ok {
			close(g.entered)
			<-g.release
		}
		tk.Finish(nil)
	}
	return Outcome{}
}

// submitGate pins the (single) worker behind a gate and waits until the
// executor has actually entered it.
func (h *harness) submitGate() *gate {
	h.t.Helper()
	g := newGate()
	tk := &Task{Payload: g}
	if err := h.s.Submit(tk); err != nil {
		h.t.Fatalf("submit gate: %v", err)
	}
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		h.t.Fatalf("gate never entered")
	}
	return g
}

func mustSubmit(t *testing.T, s *Scheduler, tk *Task) {
	t.Helper()
	if err := s.Submit(tk); err != nil {
		t.Fatalf("Submit: %v", err)
	}
}

func waitDone(t *testing.T, tasks ...*Task) {
	t.Helper()
	for i, tk := range tasks {
		select {
		case <-tk.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("task %d never finished", i)
		}
	}
}

// fakeClock is an injectable Config.Now.
type fakeClock struct{ t atomic.Int64 }

func newFakeClock(at time.Time) *fakeClock {
	c := &fakeClock{}
	c.t.Store(at.UnixNano())
	return c
}
func (c *fakeClock) now() time.Time          { return time.Unix(0, c.t.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.t.Add(int64(d)) }

// ---- behavior --------------------------------------------------------------

func TestSchedulerRunsTasks(t *testing.T) {
	h := newHarness(t, Config{QueueCap: 16}, nil)
	tasks := make([]*Task, 8)
	for i := range tasks {
		tasks[i] = &Task{Payload: i}
		mustSubmit(t, h.s, tasks[i])
	}
	waitDone(t, tasks...)
	for i, tk := range tasks {
		if err := tk.Err(); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	snap := h.s.Snapshot()
	if snap.Completed != 8 || snap.Submitted != 8 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestSchedulerEDFWithinClass: with a single pinned worker, queued tasks of
// one class dispatch earliest-deadline-first regardless of arrival order.
func TestSchedulerEDFWithinClass(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 16}, gateExec)
	g := h.submitGate()

	base := time.Now().Add(time.Hour)
	order := []int{3, 0, 2, 1} // submit deadlines out of order
	tasks := make([]*Task, len(order))
	for i, d := range order {
		tasks[i] = &Task{Deadline: base.Add(time.Duration(d) * time.Minute), Payload: d}
		mustSubmit(t, h.s, tasks[i])
	}
	close(g.release)
	waitDone(t, tasks...)

	got := h.dispatchOrder()[1:] // strip the gate
	for i, tk := range got {
		if tk.Payload.(int) != i {
			t.Fatalf("dispatch %d: deadline rank %v, want %d", i, tk.Payload, i)
		}
	}
}

// TestSchedulerBatchCoalescing: queued batchable tasks of one class
// dispatch as a single locality-sorted batch.
func TestSchedulerBatchCoalescing(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 32, BatchMax: 16}, gateExec)
	g := h.submitGate()

	keys := []uint64{5, 1, 9, 1, 3, 7, 2, 8}
	tasks := make([]*Task, len(keys))
	for i, k := range keys {
		tasks[i] = &Task{Batchable: true, LocKey: k, Payload: i}
		mustSubmit(t, h.s, tasks[i])
	}
	close(g.release)
	waitDone(t, tasks...)

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.dispatches) != 2 { // gate + one coalesced batch
		t.Fatalf("got %d dispatches, want 2 (gate + batch)", len(h.dispatches))
	}
	batch := h.dispatches[1]
	if len(batch) != len(keys) {
		t.Fatalf("batch size %d, want %d", len(batch), len(keys))
	}
	for i := 1; i < len(batch); i++ {
		if batch[i-1].LocKey > batch[i].LocKey {
			t.Fatalf("batch not locality-sorted: key[%d]=%d > key[%d]=%d",
				i-1, batch[i-1].LocKey, i, batch[i].LocKey)
		}
		if batch[i-1].LocKey == batch[i].LocKey && batch[i-1].seq > batch[i].seq {
			t.Fatalf("equal keys not FIFO at %d", i)
		}
	}
	snap := h.s.Snapshot()
	if snap.MaxBatch != int64(len(keys)) {
		t.Fatalf("MaxBatch = %d, want %d", snap.MaxBatch, len(keys))
	}
	if snap.BatchOccupancy <= 1 {
		t.Fatalf("BatchOccupancy = %v, want > 1", snap.BatchOccupancy)
	}
}

// TestSchedulerBatchMaxRespected: a backlog larger than BatchMax splits
// into dispatches of at most BatchMax tasks.
func TestSchedulerBatchMaxRespected(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 64, BatchMax: 4}, gateExec)
	g := h.submitGate()
	tasks := make([]*Task, 10)
	for i := range tasks {
		tasks[i] = &Task{Batchable: true, Payload: i}
		mustSubmit(t, h.s, tasks[i])
	}
	close(g.release)
	waitDone(t, tasks...)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range h.dispatches[1:] {
		if len(d) > 4 {
			t.Fatalf("dispatch of %d tasks exceeds BatchMax 4", len(d))
		}
	}
}

// TestSchedulerNonBatchableSingleton: a non-batchable task never rides in a
// multi-task dispatch.
func TestSchedulerNonBatchableSingleton(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 32}, gateExec)
	g := h.submitGate()
	var tasks []*Task
	for i := 0; i < 6; i++ {
		tk := &Task{Batchable: i%2 == 0, Payload: i}
		tasks = append(tasks, tk)
		mustSubmit(t, h.s, tk)
	}
	close(g.release)
	waitDone(t, tasks...)
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range h.dispatches {
		if len(d) > 1 {
			for _, tk := range d {
				if !tk.Batchable {
					t.Fatalf("non-batchable task in a %d-task dispatch", len(d))
				}
			}
		}
	}
}

// TestSchedulerWeightedFairness: with both classes backlogged, the 4:1
// default weights serve roughly four interactive tasks per batch task.
func TestSchedulerWeightedFairness(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 64, StarveAfter: -1}, gateExec)
	g := h.submitGate()
	var tasks []*Task
	for i := 0; i < 20; i++ {
		ti := &Task{Class: ClassInteractive, Payload: i}
		tb := &Task{Class: ClassBatch, Payload: i}
		tasks = append(tasks, ti, tb)
		mustSubmit(t, h.s, ti)
		mustSubmit(t, h.s, tb)
	}
	close(g.release)
	waitDone(t, tasks...)

	order := h.dispatchOrder()[1:]
	// Count interactive completions in the first half of the schedule: with
	// weights 4:1 the share must be close to 4/5, certainly above 3/5.
	half := order[:len(order)/2]
	ni := 0
	for _, tk := range half {
		if tk.Class == ClassInteractive {
			ni++
		}
	}
	if ni*5 < len(half)*3 {
		t.Fatalf("interactive share %d/%d below weighted-fair expectation", ni, len(half))
	}
	// And batch work is not locked out entirely.
	nb := 0
	for _, tk := range half {
		if tk.Class == ClassBatch {
			nb++
		}
	}
	if nb == 0 {
		t.Fatalf("batch class fully starved in first half of schedule")
	}
}

// TestSchedulerStarvationAging: a batch head older than StarveAfter is
// dispatched ahead of the weighted-fair (interactive) pick.
func TestSchedulerStarvationAging(t *testing.T) {
	clk := newFakeClock(time.Unix(1000, 0))
	h := newHarness(t, Config{
		MinWorkers: 1, MaxWorkers: 1, QueueCap: 32,
		StarveAfter: 2 * time.Second, Now: clk.now,
	}, gateExec)
	// Pin the worker with a batch-class gate so both classes carry equal
	// virtual time when the contested pick happens (tie → interactive is
	// the fair choice; only aging can promote the batch head).
	g := newGate()
	gt := &Task{Class: ClassBatch, Payload: g}
	mustSubmit(t, h.s, gt)
	select {
	case <-g.entered:
	case <-time.After(5 * time.Second):
		t.Fatalf("gate never entered")
	}

	old := &Task{Class: ClassBatch, Payload: "old"}
	mustSubmit(t, h.s, old)
	clk.advance(3 * time.Second) // old batch task is now starving
	young := &Task{Class: ClassInteractive, Payload: "young"}
	mustSubmit(t, h.s, young)

	close(g.release)
	waitDone(t, old, young)
	order := h.dispatchOrder()[1:]
	if order[0].Payload != "old" {
		t.Fatalf("aged batch task not promoted: first dispatch %v", order[0].Payload)
	}
	if snap := h.s.Snapshot(); snap.StarvationPromotions == 0 {
		t.Fatalf("StarvationPromotions not counted")
	}
}

// TestSchedulerNoStarvationUnderLoad: under a sustained stream of
// interactive work on one worker, a batch task still completes within the
// aging bound.
func TestSchedulerNoStarvationUnderLoad(t *testing.T) {
	exec := func(w Worker, tasks []*Task) Outcome {
		time.Sleep(200 * time.Microsecond)
		for _, tk := range tasks {
			tk.Finish(nil)
		}
		return Outcome{}
	}
	h := newHarness(t, Config{
		MinWorkers: 1, MaxWorkers: 1, QueueCap: 8,
		StarveAfter: 20 * time.Millisecond,
		Weights:     [NumClasses]float64{1000, 0.001},
	}, exec)

	victim := &Task{Class: ClassBatch, Payload: "victim"}
	mustSubmit(t, h.s, victim)

	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-victim.Done():
			return
		case <-deadline:
			t.Fatalf("batch task starved for 5s under interactive load")
		default:
		}
		tk := &Task{Class: ClassInteractive}
		if err := h.s.Submit(tk); err != nil {
			// queue full: let the worker drain a little
			time.Sleep(time.Millisecond)
		}
	}
}

// TestSchedulerDropsCancelledAtHead: a task whose Cancel fires while queued
// is finished with ErrCancelled without reaching the executor.
func TestSchedulerDropsCancelledAtHead(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 16}, gateExec)
	g := h.submitGate()

	cancel := make(chan struct{})
	doomed := &Task{Cancel: cancel, Payload: "doomed"}
	live := &Task{Payload: "live"}
	mustSubmit(t, h.s, doomed)
	mustSubmit(t, h.s, live)
	close(cancel)
	close(g.release)

	waitDone(t, doomed, live)
	if !errors.Is(doomed.Err(), ErrCancelled) {
		t.Fatalf("doomed.Err() = %v, want ErrCancelled", doomed.Err())
	}
	if live.Err() != nil {
		t.Fatalf("live.Err() = %v", live.Err())
	}
	for _, tk := range h.dispatchOrder() {
		if tk.Payload == "doomed" {
			t.Fatalf("cancelled task reached the executor")
		}
	}
	if snap := h.s.Snapshot(); snap.ExpiredBeforeRun != 1 || snap.Cancelled != 1 {
		t.Fatalf("snapshot: expired=%d cancelled=%d", snap.ExpiredBeforeRun, snap.Cancelled)
	}
}

// TestSchedulerRequeueUnfinished: tasks an executor returns as Unfinished
// are requeued and complete on a later dispatch.
func TestSchedulerRequeueUnfinished(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	exec := func(w Worker, tasks []*Task) Outcome {
		if g, ok := tasks[0].Payload.(*gate); ok {
			close(g.entered)
			<-g.release
			tasks[0].Finish(nil)
			return Outcome{}
		}
		if len(tasks) > 1 && fail.CompareAndSwap(true, false) {
			// Crash mid-batch: finish the first task only.
			tasks[0].Finish(nil)
			return Outcome{Unfinished: tasks[1:], Err: errors.New("boom")}
		}
		for _, tk := range tasks {
			tk.Finish(nil)
		}
		return Outcome{}
	}
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 32, BatchMax: 8}, exec)
	g := h.submitGate() // pin the worker so a real multi-task batch forms
	tasks := make([]*Task, 6)
	for i := range tasks {
		tasks[i] = &Task{Batchable: true, Payload: i}
	}
	for _, tk := range tasks {
		mustSubmit(t, h.s, tk)
	}
	close(g.release)
	waitDone(t, tasks...)
	for i, tk := range tasks {
		if err := tk.Err(); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	snap := h.s.Snapshot()
	if snap.Requeued == 0 {
		t.Fatalf("no tasks requeued: %+v", snap)
	}
	if snap.Completed != uint64(len(tasks))+1 { // +1 for the gate task
		t.Fatalf("completed %d, want %d", snap.Completed, len(tasks)+1)
	}
}

// TestSchedulerRetriesExhausted: a dispatch that always fails finishes its
// tasks with ErrRetriesExhausted after MaxAttempts.
func TestSchedulerRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	exec := func(w Worker, tasks []*Task) Outcome {
		calls.Add(1)
		return Outcome{Unfinished: tasks, Err: errors.New("always broken")}
	}
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 8, MaxAttempts: 3}, exec)
	tk := &Task{Payload: "cursed"}
	mustSubmit(t, h.s, tk)
	waitDone(t, tk)
	if !errors.Is(tk.Err(), ErrRetriesExhausted) {
		t.Fatalf("Err = %v, want ErrRetriesExhausted", tk.Err())
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("executor called %d times, want 3", got)
	}
	if tk.Attempts() != 3 {
		t.Fatalf("Attempts = %d, want 3", tk.Attempts())
	}
	if snap := h.s.Snapshot(); snap.RetriesExhausted != 1 || snap.Failed != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

// TestSchedulerQueueFull: Submit refuses with ErrQueueFull once QueueCap
// tasks are admitted (queued + executing).
func TestSchedulerQueueFull(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 3}, gateExec)
	g := h.submitGate() // occupies 1 admission slot while executing
	a, b := &Task{}, &Task{}
	mustSubmit(t, h.s, a)
	mustSubmit(t, h.s, b)
	if err := h.s.Submit(&Task{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: %v, want ErrQueueFull", err)
	}
	if snap := h.s.Snapshot(); snap.Rejected != 1 {
		t.Fatalf("Rejected = %d", snap.Rejected)
	}
	close(g.release)
	waitDone(t, a, b)
}

// TestSchedulerSubmitInvalidClass rejects out-of-range classes.
func TestSchedulerSubmitInvalidClass(t *testing.T) {
	h := newHarness(t, Config{}, nil)
	if err := h.s.Submit(&Task{Class: Class(9)}); err == nil {
		t.Fatalf("invalid class accepted")
	}
}

// TestSchedulerCloseDrains: Close finishes admitted work before stopping
// and closes every worker; Submit afterwards refuses.
func TestSchedulerCloseDrains(t *testing.T) {
	var execd atomic.Int64
	exec := func(w Worker, tasks []*Task) Outcome {
		for _, tk := range tasks {
			time.Sleep(100 * time.Microsecond)
			execd.Add(1)
			tk.Finish(nil)
		}
		return Outcome{}
	}
	cfg := Config{MinWorkers: 2, MaxWorkers: 2, QueueCap: 32}
	h := newHarness(t, cfg, exec)
	tasks := make([]*Task, 16)
	for i := range tasks {
		tasks[i] = &Task{Batchable: true}
		mustSubmit(t, h.s, tasks[i])
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := execd.Load(); got != 16 {
		t.Fatalf("executed %d tasks, want all 16 drained", got)
	}
	if err := h.s.Submit(&Task{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// TestSchedulerCloseInterrupted: an expired drain context flushes queued
// tasks with ErrClosed rather than hanging.
func TestSchedulerCloseInterrupted(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 8}, gateExec)
	g := h.submitGate()
	stuck := &Task{Payload: "stuck"}
	mustSubmit(t, h.s, stuck)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := h.s.Close(ctx); err == nil {
		t.Fatalf("interrupted Close returned nil")
	}
	waitDone(t, stuck)
	if !errors.Is(stuck.Err(), ErrClosed) {
		t.Fatalf("flushed task err = %v, want ErrClosed", stuck.Err())
	}
	close(g.release) // unstick the worker so Cleanup can finish
}

// TestSchedulerSteadyStateAllocs pins the per-task allocation count of the
// submit→dispatch→finish cycle.
func TestSchedulerSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting in -short")
	}
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 8}, nil)
	// Warm up so pool slices reach steady capacity.
	for i := 0; i < 64; i++ {
		tk := &Task{Batchable: true}
		mustSubmit(t, h.s, tk)
		waitDone(t, tk)
	}
	tk := &Task{Batchable: true}
	avg := testing.AllocsPerRun(200, func() {
		*tk = Task{Batchable: true}
		mustSubmit(t, h.s, tk)
		<-tk.Done()
	})
	// Budget: the done channel, the harness's dispatch-record copy, and a
	// couple of runtime incidentals. The hot path itself must not allocate
	// per task beyond that.
	if avg > 8 {
		t.Fatalf("steady-state allocs per task = %.1f, want <= 8", avg)
	}
}

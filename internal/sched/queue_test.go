package sched

import (
	"testing"
	"time"
)

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		err  bool
	}{
		{"", ClassInteractive, false},
		{"interactive", ClassInteractive, false},
		{"batch", ClassBatch, false},
		{"bulk", 0, true},
		{"INTERACTIVE", 0, true},
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if c.err != (err != nil) {
			t.Fatalf("ParseClass(%q): err=%v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseClass(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if ClassInteractive.String() != "interactive" || ClassBatch.String() != "batch" {
		t.Fatalf("Class.String mismatch: %q %q", ClassInteractive, ClassBatch)
	}
}

// TestQueueEDFOrder: within a class, pops come earliest-deadline-first,
// deadline-less tasks last, all ties FIFO.
func TestQueueEDFOrder(t *testing.T) {
	var q runQueue
	base := time.Now()
	mk := func(id int, dl time.Time) *Task {
		return &Task{Deadline: dl, Payload: id}
	}
	// Push out of order: no-deadline, late, early, duplicate-early, no-deadline.
	q.push(mk(0, time.Time{}), base)
	q.push(mk(1, base.Add(300*time.Millisecond)), base)
	q.push(mk(2, base.Add(100*time.Millisecond)), base)
	q.push(mk(3, base.Add(100*time.Millisecond)), base)
	q.push(mk(4, time.Time{}), base)

	want := []int{2, 3, 1, 0, 4}
	for i, w := range want {
		got := q.popHead(ClassInteractive).Payload.(int)
		if got != w {
			t.Fatalf("pop %d: got task %d, want %d", i, got, w)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after draining: %d", q.len())
	}
}

// TestQueueFIFOWithoutDeadlines: with no deadlines at all the heap degrades
// to plain FIFO.
func TestQueueFIFOWithoutDeadlines(t *testing.T) {
	var q runQueue
	base := time.Now()
	for i := 0; i < 16; i++ {
		q.push(&Task{Payload: i}, base)
	}
	for i := 0; i < 16; i++ {
		if got := q.popHead(ClassInteractive).Payload.(int); got != i {
			t.Fatalf("pop %d: got %d, want FIFO order", i, got)
		}
	}
}

// TestQueueClassesIndependent: each class has its own heap and length.
func TestQueueClassesIndependent(t *testing.T) {
	var q runQueue
	base := time.Now()
	q.push(&Task{Class: ClassBatch, Payload: "b"}, base)
	q.push(&Task{Class: ClassInteractive, Payload: "i"}, base)
	if q.len() != 2 {
		t.Fatalf("len = %d, want 2", q.len())
	}
	if got := q.popHead(ClassBatch).Payload; got != "b" {
		t.Fatalf("batch head = %v", got)
	}
	if got := q.popHead(ClassInteractive).Payload; got != "i" {
		t.Fatalf("interactive head = %v", got)
	}
}

// TestQueueVtimeFloor: a class waking from empty is pulled up to the
// smallest active virtual time, so idle classes cannot bank credit.
func TestQueueVtimeFloor(t *testing.T) {
	var q runQueue
	base := time.Now()
	q.vtime[ClassInteractive] = 10
	q.push(&Task{Class: ClassInteractive}, base) // interactive active at vtime 10
	q.push(&Task{Class: ClassBatch}, base)       // batch wakes: floored to 10
	if got := q.vtime[ClassBatch]; got != 10 {
		t.Fatalf("batch vtime = %v, want floored to 10", got)
	}
	// A class that is already ahead is not pulled backwards.
	q.popHead(ClassBatch)
	q.vtime[ClassBatch] = 50
	q.push(&Task{Class: ClassBatch}, base)
	if got := q.vtime[ClassBatch]; got != 50 {
		t.Fatalf("batch vtime = %v, want unchanged 50", got)
	}
}

// TestQueueIndexMaintenance: heap indices track positions through pushes,
// pops and swaps (required for future in-place removal correctness).
func TestQueueIndexMaintenance(t *testing.T) {
	var q runQueue
	base := time.Now()
	tasks := make([]*Task, 0, 20)
	for i := 0; i < 20; i++ {
		var dl time.Time
		if i%3 != 0 {
			dl = base.Add(time.Duration((i*7)%13) * time.Millisecond)
		}
		tk := &Task{Deadline: dl}
		tasks = append(tasks, tk)
		q.push(tk, base)
	}
	h := q.heaps[ClassInteractive]
	for i, tk := range h {
		if tk.index != i {
			t.Fatalf("heap[%d].index = %d", i, tk.index)
		}
	}
	for q.len() > 0 {
		popped := q.popHead(ClassInteractive)
		if popped.index != -1 {
			t.Fatalf("popped task keeps index %d", popped.index)
		}
		for i, tk := range q.heaps[ClassInteractive] {
			if tk.index != i {
				t.Fatalf("after pop: heap[%d].index = %d", i, tk.index)
			}
		}
	}
	_ = tasks
}

package sched

import (
	"sync/atomic"
	"time"
)

// Task is one schedulable unit of work. The caller fills the public
// fields, Submit-s it, and waits on Done; the executor completes it with
// Finish. A Task is engine-agnostic: the scheduler never looks inside
// Payload, it only orders, groups and dispatches.
type Task struct {
	// Class selects the run queue (weighted fairness across classes).
	Class Class
	// Deadline is the EDF key within the class; the zero time means "no
	// deadline" and sorts after every deadlined task, FIFO. A deadline is a
	// scheduling hint, not an enforcement mechanism — a task that misses it
	// still runs (and is counted in DeadlineMisses); enforcement is the
	// caller's Cancel channel.
	Deadline time.Time
	// Cost estimates the work (e.g. flop count); it feeds the weighted
	// fairness accounting. Zero is treated as 1.
	Cost float64
	// Batchable marks tasks that may be coalesced with other batchable
	// tasks of the same class into one dispatch.
	Batchable bool
	// LocKey is the locality key: a dispatch batch is sorted by it, so
	// tasks sharing a key (e.g. a GEMM shape) run consecutively against
	// warm scratch pools.
	LocKey uint64
	// Cancel, when non-nil and closed, aborts the task: the scheduler
	// drops it if still queued, and executors should skip it.
	Cancel <-chan struct{}
	// Payload is the executor's work description (opaque to the scheduler).
	Payload any

	s        *Scheduler
	seq      uint64
	enq      time.Time
	index    int // heap position; -1 when not queued
	attempts atomic.Int32
	state    atomic.Int32 // 0 pending, 1 finished
	err      error
	done     chan struct{}
}

// Done returns a channel closed when the task has finished (successfully,
// with an error, or dropped). Valid only after Submit accepted the task.
func (t *Task) Done() <-chan struct{} { return t.done }

// Err returns the task's outcome. It is nil until Done() is closed; read
// it only after waiting on Done.
func (t *Task) Err() error {
	select {
	case <-t.done:
		return t.err
	default:
		return nil
	}
}

// Finished reports whether Finish has been called.
func (t *Task) Finished() bool { return t.state.Load() == 1 }

// Attempts returns how many times the task has been dispatched.
func (t *Task) Attempts() int { return int(t.attempts.Load()) }

// Cancelled polls the Cancel channel without blocking.
func (t *Task) Cancelled() bool {
	if t.Cancel == nil {
		return false
	}
	select {
	case <-t.Cancel:
		return true
	default:
		return false
	}
}

// Finish settles the task exactly once (extra calls are no-ops), records
// it with the scheduler and releases everyone waiting on Done. Executors
// call it for every task they complete; the scheduler calls it for tasks
// dropped in the queue or out of retries.
func (t *Task) Finish(err error) {
	if !t.state.CompareAndSwap(0, 1) {
		return
	}
	t.err = err
	if t.s != nil {
		t.s.taskFinished(t, err)
	}
	close(t.done)
}

// Package sched is the workload scheduler between request admission and
// the engine pool: it decides WHAT runs next and on HOW MANY engines,
// while staying agnostic about what an engine is (Worker) and how work
// executes on it (Config.Exec). Three policies compose:
//
//   - batched execution: queued batchable tasks of one class are coalesced
//     into a single dispatch, sorted by locality key, so the executor can
//     amortize per-dispatch overhead (engine wake, barriers) across many
//     small tasks;
//   - priority + deadline dispatch: per-class index-heap run queues with
//     EDF order within a class, weighted fair queueing across classes, and
//     starvation aging (a head task waiting past StarveAfter is served
//     regardless of weights);
//   - elastic pooling: the worker pool grows toward MaxWorkers when the
//     queue backs up, shrinks toward MinWorkers when workers sit idle, and
//     replaces workers the executor reports as poisoned. A dispatch that
//     dies mid-batch returns its unfinished tasks, which are requeued up
//     to MaxAttempts.
//
// The scheduler guarantees every accepted task is finished exactly once:
// by its executor, by queue-drop (cancelled before dispatch), by retry
// exhaustion, or by Close.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"srumma/internal/obs"
)

var (
	// ErrQueueFull is returned by Submit when QueueCap tasks are already
	// admitted (queued + executing): backpressure, not buffering.
	ErrQueueFull = errors.New("sched: queue full")
	// ErrClosed is returned by Submit after Close, and attached to tasks
	// flushed by an interrupted drain.
	ErrClosed = errors.New("sched: scheduler closed")
	// ErrCancelled finishes tasks whose Cancel channel fired before
	// dispatch.
	ErrCancelled = errors.New("sched: task cancelled before dispatch")
	// ErrRetriesExhausted finishes tasks requeued MaxAttempts times by
	// failing dispatches.
	ErrRetriesExhausted = errors.New("sched: dispatch retries exhausted")
)

// Worker is one engine owned by the pool — for the GEMM service a
// persistent armci.Team, in tests anything. The scheduler only creates
// (Config.NewWorker), hands to Exec, and closes them.
type Worker interface {
	Close() error
}

// Outcome reports one dispatch back to the scheduler. The zero value means
// "all tasks finished, worker healthy".
type Outcome struct {
	// Unfinished are the batch's tasks the executor did not Finish (a crash
	// mid-batch): the scheduler requeues them, dropping any that exceed
	// MaxAttempts with ErrRetriesExhausted.
	Unfinished []*Task
	// ReplaceWorker marks the worker poisoned (e.g. leaked ranks): the
	// scheduler closes it and creates a fresh one in its place.
	ReplaceWorker bool
	// Err is the dispatch failure cause, attached to tasks dropped for
	// retry exhaustion.
	Err error
}

// Config sizes the scheduler. NewWorker and Exec are required; everything
// else has serviceable defaults from fill().
type Config struct {
	// MinWorkers..MaxWorkers bound the elastic pool (defaults 1..MinWorkers,
	// i.e. a fixed pool unless MaxWorkers is raised).
	MinWorkers int
	MaxWorkers int
	// QueueCap bounds admitted tasks — queued plus executing (default
	// 4*MaxWorkers).
	QueueCap int
	// BatchMax caps tasks coalesced into one dispatch (default 32).
	BatchMax int
	// Weights are the per-class fair shares (default interactive 4,
	// batch 1).
	Weights [NumClasses]float64
	// StarveAfter bounds cross-class starvation: a class head waiting this
	// long is dispatched regardless of weights (default 2s; <0 disables).
	StarveAfter time.Duration
	// IdleAfter is how long a worker above MinWorkers may sit idle before
	// the pool shrinks it away (default 30s).
	IdleAfter time.Duration
	// GrowAt is the queue depth per worker that triggers pool growth
	// (default 2: grow when queued > 2*workers).
	GrowAt int
	// MaxAttempts bounds dispatches per task before it is failed with
	// ErrRetriesExhausted (default 3).
	MaxAttempts int
	// GroupsPerWorker declares how many rank groups each worker engine
	// hosts (hierarchical mode: an engine's ranks are carved into SUMMA
	// groups, see internal/hier). The scheduler does not change its
	// dispatch decisions on it — a worker is still the dispatch unit —
	// but the elastic pool doubles as the group manager: growing or
	// shrinking by one worker adds or retires GroupsPerWorker groups,
	// and the live group count is exported as the "sched.groups" gauge
	// and Scheduler.Groups(). 0 means flat mode (one implicit group per
	// worker is NOT assumed; the gauge stays 0).
	GroupsPerWorker int
	// NewWorker creates a pool worker (required).
	NewWorker func() (Worker, error)
	// Exec runs one dispatch — a locality-sorted batch of one class, or a
	// single non-batchable task — on a worker (required). It must Finish
	// every task it completes and return the rest in Outcome.Unfinished.
	Exec func(w Worker, tasks []*Task) Outcome
	// Now is the clock used for deadlines and aging (default time.Now;
	// injectable for tests).
	Now func() time.Time
	// Metrics is the registry the scheduler's counters live in (names
	// "sched.*"). A private registry is created when nil; either way
	// Scheduler.Registry returns the one in use, so the serving layer can
	// export scheduler and server metrics from one namespace.
	Metrics *obs.Registry
	// Trace receives queue-wait and dispatch spans on lane TraceLane when
	// non-nil. Tracing off (nil, the default) costs nothing.
	Trace     *obs.Recorder
	TraceLane int
}

func (c Config) fill() Config {
	if c.MinWorkers <= 0 {
		c.MinWorkers = 1
	}
	if c.MaxWorkers < c.MinWorkers {
		c.MaxWorkers = c.MinWorkers
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxWorkers
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.Weights[ClassInteractive] <= 0 {
		c.Weights[ClassInteractive] = 4
	}
	if c.Weights[ClassBatch] <= 0 {
		c.Weights[ClassBatch] = 1
	}
	if c.StarveAfter == 0 {
		c.StarveAfter = 2 * time.Second
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 30 * time.Second
	}
	if c.GrowAt <= 0 {
		c.GrowAt = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Scheduler owns the run queue and the elastic worker pool. Create with
// New, feed with Submit, stop with Close.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	q        runQueue
	workers  int
	draining bool
	stopped  bool
	closeErr error

	ready chan struct{} // work-available wakeups (best effort, never lost)
	stop  chan struct{}
	wg    sync.WaitGroup

	// Counters live in an obs.Registry (cfg.Metrics or a private one) under
	// "sched.*" names; the struct caches the pointers so hot paths never
	// take the registry lock.
	reg      *obs.Registry
	inflight *obs.Gauge // admitted and not yet finished
	groups   *obs.Gauge // live rank groups (workers * GroupsPerWorker)

	submitted       *obs.Counter
	rejected        *obs.Counter
	completed       *obs.Counter
	failed          *obs.Counter
	cancelled       *obs.Counter
	dispatches      *obs.Counter
	dispatchedTasks *obs.Counter
	maxBatch        *obs.Counter // running maximum via RaiseTo
	requeued        *obs.Counter
	retriesDropped  *obs.Counter
	expired         *obs.Counter
	misses          *obs.Counter
	starved         *obs.Counter
	grown           *obs.Counter
	shrunk          *obs.Counter
	replaced        *obs.Counter
	growFailed      *obs.Counter
	served          [NumClasses]*obs.Counter
	qwait           [NumClasses]*obs.Histogram // admission-to-dispatch wait
}

// New builds a scheduler and spins up MinWorkers workers synchronously (a
// factory failure fails New).
func New(cfg Config) (*Scheduler, error) {
	if cfg.NewWorker == nil || cfg.Exec == nil {
		return nil, errors.New("sched: Config.NewWorker and Config.Exec are required")
	}
	cfg = cfg.fill()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Scheduler{
		cfg:             cfg,
		ready:           make(chan struct{}, cfg.QueueCap),
		stop:            make(chan struct{}),
		reg:             reg,
		inflight:        reg.Gauge("sched.in_flight"),
		groups:          reg.Gauge("sched.groups"),
		submitted:       reg.Counter("sched.submitted"),
		rejected:        reg.Counter("sched.rejected"),
		completed:       reg.Counter("sched.completed"),
		failed:          reg.Counter("sched.failed"),
		cancelled:       reg.Counter("sched.cancelled"),
		dispatches:      reg.Counter("sched.dispatches"),
		dispatchedTasks: reg.Counter("sched.dispatched_tasks"),
		maxBatch:        reg.Counter("sched.max_batch"),
		requeued:        reg.Counter("sched.requeued"),
		retriesDropped:  reg.Counter("sched.retries_exhausted"),
		expired:         reg.Counter("sched.expired_before_run"),
		misses:          reg.Counter("sched.deadline_misses"),
		starved:         reg.Counter("sched.starvation_promotions"),
		grown:           reg.Counter("sched.pool_grown"),
		shrunk:          reg.Counter("sched.pool_shrunk"),
		replaced:        reg.Counter("sched.pool_replaced"),
		growFailed:      reg.Counter("sched.pool_grow_failed"),
	}
	for c := 0; c < NumClasses; c++ {
		s.served[c] = reg.Counter("sched.served." + Class(c).String())
		s.qwait[c] = reg.Histogram("sched.queue_wait." + Class(c).String())
	}
	initial := make([]Worker, 0, cfg.MinWorkers)
	for i := 0; i < cfg.MinWorkers; i++ {
		w, err := cfg.NewWorker()
		if err != nil {
			for _, prev := range initial {
				prev.Close()
			}
			return nil, fmt.Errorf("sched: starting worker %d: %w", i, err)
		}
		initial = append(initial, w)
	}
	s.workers = len(initial)
	s.syncGroupsLocked()
	for _, w := range initial {
		s.wg.Add(1)
		go s.runWorker(w)
	}
	return s, nil
}

// Registry returns the obs.Registry holding the scheduler's "sched.*"
// counters — cfg.Metrics when one was provided, a private registry
// otherwise.
func (s *Scheduler) Registry() *obs.Registry { return s.reg }

// Workers returns the current pool size.
func (s *Scheduler) Workers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workers
}

// Groups returns the live rank-group count under group management
// (Workers() * GroupsPerWorker; 0 in flat mode).
func (s *Scheduler) Groups() int {
	return int(s.groups.Load())
}

// Queued returns the number of admitted tasks waiting for dispatch.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.len()
}

func (s *Scheduler) now() time.Time { return s.cfg.Now() }

// Submit admits t or refuses with ErrQueueFull/ErrClosed. On admission the
// task WILL be finished eventually; wait on t.Done().
func (s *Scheduler) Submit(t *Task) error {
	if t.Class >= NumClasses {
		return fmt.Errorf("sched: invalid class %d", t.Class)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrClosed
	}
	if int(s.inflight.Load()) >= s.cfg.QueueCap {
		s.mu.Unlock()
		s.rejected.Add(1)
		return ErrQueueFull
	}
	s.inflight.Add(1)
	t.s = s
	t.done = make(chan struct{})
	s.q.push(t, s.now())
	s.resizeLocked()
	s.mu.Unlock()
	s.submitted.Add(1)
	s.wake()
	return nil
}

// wake nudges one worker. The channel is sized to QueueCap, so a full
// channel already holds at least as many wakeups as there can be queued
// tasks — dropping the send cannot strand work.
func (s *Scheduler) wake() {
	select {
	case s.ready <- struct{}{}:
	default:
	}
}

// resizeLocked grows the pool toward the queue-depth target and repairs it
// back up to MinWorkers after factory failures.
func (s *Scheduler) resizeLocked() {
	for s.workers < s.cfg.MinWorkers {
		s.spawnLocked()
	}
	if queued := s.q.len(); s.workers < s.cfg.MaxWorkers && queued > s.cfg.GrowAt*s.workers {
		s.grown.Add(1)
		s.spawnLocked()
	}
}

func (s *Scheduler) spawnLocked() {
	s.workers++
	s.syncGroupsLocked()
	s.wg.Add(1)
	go s.runWorker(nil)
}

// syncGroupsLocked keeps the group-manager gauge in step with the pool:
// every worker hosts GroupsPerWorker rank groups, so pool elasticity IS
// group elasticity.
func (s *Scheduler) syncGroupsLocked() {
	if s.cfg.GroupsPerWorker > 0 {
		s.groups.Set(int64(s.workers * s.cfg.GroupsPerWorker))
	}
}

// taskFinished is the single accounting point for settled tasks. It may
// run with or without s.mu held (queue drops hold it), so it touches only
// atomics.
func (s *Scheduler) taskFinished(t *Task, err error) {
	s.inflight.Add(-1)
	switch {
	case err == nil:
		s.completed.Add(1)
		if !t.Deadline.IsZero() && s.now().After(t.Deadline) {
			s.misses.Add(1)
		}
	case errors.Is(err, ErrCancelled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Add(1)
	default:
		s.failed.Add(1)
	}
	s.served[t.Class].Add(1)
}

// pickClassLocked chooses the class to dispatch from: a starving head
// overrides the weighted-fair choice (oldest starving head wins); ties on
// virtual time go to the lower class index (interactive).
func (s *Scheduler) pickClassLocked(now time.Time) (Class, bool) {
	aged, fair := -1, -1
	var oldest time.Time
	for c := 0; c < NumClasses; c++ {
		h := s.q.heaps[c]
		if len(h) == 0 {
			continue
		}
		head := h[0]
		if s.cfg.StarveAfter > 0 && now.Sub(head.enq) >= s.cfg.StarveAfter {
			if aged < 0 || head.enq.Before(oldest) {
				aged = c
				oldest = head.enq
			}
		}
		if fair < 0 || s.q.vtime[c] < s.q.vtime[fair] {
			fair = c
		}
	}
	if aged >= 0 {
		if aged != fair {
			s.starved.Add(1)
		}
		return Class(aged), true
	}
	if fair >= 0 {
		return Class(fair), true
	}
	return 0, false
}

// popBatch assembles the next dispatch into buf: the picked class's EDF
// head, extended with up to BatchMax-1 further batchable heads of the same
// class, sorted by locality key. Cancelled tasks surfacing at the head are
// dropped on the spot. An empty result means no dispatchable work.
func (s *Scheduler) popBatch(buf []*Task) []*Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	c, ok := s.pickClassLocked(now)
	if !ok {
		return buf
	}
	h := &s.q.heaps[c]
	var cost float64
	for len(*h) > 0 {
		head := (*h)[0]
		if head.Cancelled() {
			s.q.popHead(c)
			s.expired.Add(1)
			head.Finish(ErrCancelled)
			continue
		}
		if len(buf) > 0 && (!head.Batchable || len(buf) >= s.cfg.BatchMax) {
			break
		}
		s.q.popHead(c)
		head.attempts.Add(1)
		// Queue-wait lands in the per-class histogram so /metrics separates
		// wait p99 from service p99 — the queueing-delay half of latency.
		s.qwait[c].Observe(now.Sub(head.enq).Seconds())
		if s.cfg.Trace != nil {
			// Queue-wait span: admission (enq) to dispatch, on the sched lane.
			s.cfg.Trace.RecordWall(s.cfg.TraceLane, obs.KindQueue, head.enq, now)
		}
		buf = append(buf, head)
		if head.Cost > 1 {
			cost += head.Cost
		} else {
			cost++
		}
		if !head.Batchable {
			break
		}
	}
	if len(buf) == 0 {
		return buf
	}
	s.q.vtime[c] += cost / s.cfg.Weights[c]
	if len(buf) > 1 {
		sort.Slice(buf, func(i, j int) bool {
			if buf[i].LocKey != buf[j].LocKey {
				return buf[i].LocKey < buf[j].LocKey
			}
			return buf[i].seq < buf[j].seq
		})
	}
	return buf
}

// runWorker is one pool worker: create the engine if needed, then loop
// pop → exec → requeue/replace until shut down or shrunk away.
func (s *Scheduler) runWorker(w Worker) {
	defer s.wg.Done()
	if w == nil {
		var err error
		w, err = s.cfg.NewWorker()
		if err != nil {
			s.growFailed.Add(1)
			s.mu.Lock()
			s.workers--
			s.mu.Unlock()
			return
		}
	}
	defer func() {
		if w == nil {
			return
		}
		if err := w.Close(); err != nil {
			s.mu.Lock()
			if s.closeErr == nil {
				s.closeErr = err
			}
			s.mu.Unlock()
		}
	}()
	batch := make([]*Task, 0, s.cfg.BatchMax)
	idle := time.NewTimer(s.cfg.IdleAfter)
	defer idle.Stop()
	for {
		batch = s.popBatch(batch[:0])
		if len(batch) == 0 {
			select {
			case <-s.stop:
				return
			default:
			}
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(s.cfg.IdleAfter)
			select {
			case <-s.stop:
				return
			case <-s.ready:
				continue
			case <-idle.C:
				if s.tryShrink() {
					return
				}
				continue
			}
		}
		// Count the dispatch when it is issued, not when Exec returns:
		// tasks Finish() inside Exec, so an observer woken by a completion
		// must already see the dispatch that produced it in the counters.
		s.dispatches.Add(1)
		s.dispatchedTasks.Add(int64(len(batch)))
		s.maxBatch.RaiseTo(int64(len(batch)))
		var t0 time.Time
		if s.cfg.Trace != nil {
			t0 = s.now()
		}
		out := s.cfg.Exec(w, batch)
		if s.cfg.Trace != nil {
			s.cfg.Trace.RecordWall(s.cfg.TraceLane, obs.KindBatch, t0, s.now())
		}
		s.settle(out)
		if out.ReplaceWorker {
			w.Close()
			w = nil
			s.replaced.Add(1)
			nw, err := s.cfg.NewWorker()
			if err != nil {
				// Could not replace: shrink rather than pool a corpse; the
				// next Submit repairs the pool back up to MinWorkers.
				s.growFailed.Add(1)
				s.mu.Lock()
				s.workers--
				s.mu.Unlock()
				return
			}
			w = nw
		}
	}
}

// settle requeues a failed dispatch's unfinished tasks, dropping those out
// of attempts.
func (s *Scheduler) settle(out Outcome) {
	for _, t := range out.Unfinished {
		if t == nil || t.Finished() {
			continue
		}
		if int(t.attempts.Load()) >= s.cfg.MaxAttempts {
			cause := out.Err
			if cause == nil {
				cause = errors.New("dispatch failed")
			}
			s.retriesDropped.Add(1)
			t.Finish(fmt.Errorf("%w (%d attempts): %v", ErrRetriesExhausted, t.Attempts(), cause))
			continue
		}
		s.mu.Lock()
		s.q.push(t, t.enq) // keep the original admission time: aging still sees it
		s.mu.Unlock()
		s.requeued.Add(1)
		s.wake()
	}
}

// tryShrink retires this worker if the pool is above MinWorkers and there
// is genuinely nothing to do.
func (s *Scheduler) tryShrink() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.workers <= s.cfg.MinWorkers || s.q.len() > 0 {
		return false
	}
	s.workers--
	s.syncGroupsLocked()
	s.shrunk.Add(1)
	return true
}

// Close drains and stops the scheduler: Submit starts refusing, admitted
// tasks run to completion (bounded by ctx — on expiry the queue is flushed
// with ErrClosed and the drain reports interruption), then the workers
// stop and their engines close. The first worker-close error (e.g. a
// leaked-rank report) is returned. Close is idempotent.
func (s *Scheduler) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		done := s.stopped
		err := s.closeErr
		s.mu.Unlock()
		if !done {
			return errors.New("sched: Close already in progress")
		}
		return err
	}
	s.draining = true
	s.mu.Unlock()

	drainErr := error(nil)
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() > 0 {
		select {
		case <-ctx.Done():
			s.flush(ErrClosed)
			drainErr = fmt.Errorf("sched: drain interrupted: %w", ctx.Err())
		case <-tick.C:
			continue
		}
		break
	}

	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	s.mu.Unlock()

	waited := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(waited)
	}()
	select {
	case <-waited:
	case <-ctx.Done():
		if drainErr == nil {
			drainErr = fmt.Errorf("sched: worker shutdown interrupted: %w", ctx.Err())
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if drainErr != nil {
		return drainErr
	}
	return s.closeErr
}

// flush finishes every queued task with err (drain interruption).
func (s *Scheduler) flush(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := 0; c < NumClasses; c++ {
		for len(s.q.heaps[c]) > 0 {
			t := s.q.popHead(Class(c))
			t.Finish(err)
		}
	}
}

package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// pollWorkers waits until the pool reaches want workers or times out.
func pollWorkers(t *testing.T, s *Scheduler, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Workers() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("pool stuck at %d workers, want %d", s.Workers(), want)
}

// TestPoolGrowsUnderBacklog: queue depth beyond GrowAt*workers grows the
// pool, and the pool NEVER exceeds MaxWorkers even under a deep backlog.
func TestPoolGrowsUnderBacklog(t *testing.T) {
	var peak atomic.Int64
	block := make(chan struct{})
	exec := func(w Worker, tasks []*Task) Outcome {
		<-block
		for _, tk := range tasks {
			tk.Finish(nil)
		}
		return Outcome{}
	}
	h := newHarness(t, Config{
		MinWorkers: 1, MaxWorkers: 3, GrowAt: 1, QueueCap: 64,
	}, exec)
	track := func() {
		if n := int64(h.s.Workers()); n > peak.Load() {
			peak.Store(n)
		}
	}
	tasks := make([]*Task, 32)
	for i := range tasks {
		tasks[i] = &Task{}
		mustSubmit(t, h.s, tasks[i])
		track()
	}
	pollWorkers(t, h.s, 3)
	for i := 0; i < 50; i++ {
		track()
		time.Sleep(time.Millisecond)
	}
	close(block)
	waitDone(t, tasks...)
	if peak.Load() > 3 {
		t.Fatalf("pool exceeded MaxWorkers: peak %d", peak.Load())
	}
	if snap := h.s.Snapshot(); snap.PoolGrown == 0 {
		t.Fatalf("PoolGrown not counted: %+v", snap)
	}
}

// TestPoolShrinksWhenIdle: after the backlog drains, idle workers above
// MinWorkers retire, and the pool never drops below MinWorkers.
func TestPoolShrinksWhenIdle(t *testing.T) {
	exec := func(w Worker, tasks []*Task) Outcome {
		time.Sleep(50 * time.Microsecond) // slow enough that a backlog forms
		for _, tk := range tasks {
			tk.Finish(nil)
		}
		return Outcome{}
	}
	h := newHarness(t, Config{
		MinWorkers: 1, MaxWorkers: 4, GrowAt: 1, QueueCap: 64,
		IdleAfter: 10 * time.Millisecond,
	}, exec)
	// Drive enough work to grow the pool.
	for round := 0; round < 4; round++ {
		tasks := make([]*Task, 32)
		for i := range tasks {
			tasks[i] = &Task{}
			mustSubmit(t, h.s, tasks[i])
		}
		waitDone(t, tasks...)
	}
	pollWorkers(t, h.s, 1)
	// Stays at the floor: never observed below MinWorkers.
	for i := 0; i < 30; i++ {
		if n := h.s.Workers(); n < 1 {
			t.Fatalf("pool dropped below MinWorkers: %d", n)
		}
		time.Sleep(time.Millisecond)
	}
	snap := h.s.Snapshot()
	if snap.PoolShrunk == 0 {
		t.Fatalf("PoolShrunk not counted: %+v", snap)
	}
	// A shrunk pool still serves new work.
	tk := &Task{}
	mustSubmit(t, h.s, tk)
	waitDone(t, tk)
}

// TestPoolFixedByDefault: with MaxWorkers unset the pool is pinned at
// MinWorkers — elasticity is opt-in.
func TestPoolFixedByDefault(t *testing.T) {
	h := newHarness(t, Config{MinWorkers: 2, QueueCap: 64}, gateExec)
	tasks := make([]*Task, 16)
	for i := range tasks {
		tasks[i] = &Task{}
		mustSubmit(t, h.s, tasks[i])
	}
	if n := h.s.Workers(); n != 2 {
		t.Fatalf("fixed pool at %d workers, want 2", n)
	}
	waitDone(t, tasks...)
}

// TestPoolReplacesPoisonedWorker: ReplaceWorker closes the old engine and
// installs a fresh one; the batch's unfinished tasks complete on it.
func TestPoolReplacesPoisonedWorker(t *testing.T) {
	var poisoned atomic.Bool
	poisoned.Store(true)
	exec := func(w Worker, tasks []*Task) Outcome {
		if g, ok := tasks[0].Payload.(*gate); ok {
			close(g.entered)
			<-g.release
			tasks[0].Finish(nil)
			return Outcome{}
		}
		if len(tasks) > 1 && poisoned.CompareAndSwap(true, false) {
			tasks[0].Finish(nil)
			return Outcome{
				Unfinished:    tasks[1:],
				ReplaceWorker: true,
				Err:           errors.New("team leaked ranks"),
			}
		}
		for _, tk := range tasks {
			tk.Finish(nil)
		}
		return Outcome{}
	}
	h := newHarness(t, Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 32, BatchMax: 8}, exec)
	g := h.submitGate()
	tasks := make([]*Task, 5)
	for i := range tasks {
		tasks[i] = &Task{Batchable: true, Payload: i}
		mustSubmit(t, h.s, tasks[i])
	}
	close(g.release)
	waitDone(t, tasks...)
	for i, tk := range tasks {
		if err := tk.Err(); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	snap := h.s.Snapshot()
	if snap.PoolReplaced != 1 {
		t.Fatalf("PoolReplaced = %d, want 1", snap.PoolReplaced)
	}
	if snap.Requeued == 0 {
		t.Fatalf("unfinished tasks not requeued after crash")
	}
	if made := h.workersMade(); made != 2 {
		t.Fatalf("workers created = %d, want 2 (original + replacement)", made)
	}
	if h.s.Workers() != 1 {
		t.Fatalf("pool size %d after replacement, want 1", h.s.Workers())
	}
}

// TestPoolRepairsAfterFactoryFailure: when a replacement factory call
// fails, the pool shrinks, and the next Submit repairs it to MinWorkers.
func TestPoolRepairsAfterFactoryFailure(t *testing.T) {
	var factoryCalls atomic.Int64
	var factoryFail atomic.Bool
	var poisonOnce atomic.Bool
	poisonOnce.Store(true)
	exec := func(w Worker, tasks []*Task) Outcome {
		if poisonOnce.CompareAndSwap(true, false) {
			for _, tk := range tasks {
				tk.Finish(nil)
			}
			return Outcome{ReplaceWorker: true, Err: errors.New("poisoned")}
		}
		for _, tk := range tasks {
			tk.Finish(nil)
		}
		return Outcome{}
	}
	cfg := Config{MinWorkers: 1, MaxWorkers: 1, QueueCap: 8}
	cfg.Exec = exec
	cfg.NewWorker = func() (Worker, error) {
		if factoryFail.Load() {
			return nil, errors.New("factory down")
		}
		factoryCalls.Add(1)
		return &fakeWorker{}, nil
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	}()

	// Poison the worker while the factory is down: the pool drops to 0.
	factoryFail.Store(true)
	tk := &Task{}
	mustSubmit(t, s, tk)
	waitDone(t, tk)
	deadline := time.Now().Add(5 * time.Second)
	for s.Workers() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := s.Workers(); n != 0 {
		t.Fatalf("pool at %d after failed replacement, want 0", n)
	}

	// Factory recovers: the next Submit repairs the pool and the task runs.
	factoryFail.Store(false)
	tk2 := &Task{}
	mustSubmit(t, s, tk2)
	waitDone(t, tk2)
	if s.Workers() != 1 {
		t.Fatalf("pool not repaired: %d workers", s.Workers())
	}
	if snap := s.Snapshot(); snap.PoolGrowFailed == 0 {
		t.Fatalf("PoolGrowFailed not counted")
	}
}

// TestPoolNewFailsCleanly: a factory error during New closes the workers
// already created and reports the error.
func TestPoolNewFailsCleanly(t *testing.T) {
	var made []*fakeWorker
	calls := 0
	cfg := Config{
		MinWorkers: 3,
		NewWorker: func() (Worker, error) {
			calls++
			if calls == 3 {
				return nil, errors.New("third worker broken")
			}
			w := &fakeWorker{id: calls}
			made = append(made, w)
			return w, nil
		},
		Exec: func(w Worker, tasks []*Task) Outcome { return Outcome{} },
	}
	if _, err := New(cfg); err == nil {
		t.Fatalf("New succeeded with a broken factory")
	}
	for i, w := range made {
		if !w.closed.Load() {
			t.Fatalf("worker %d not closed after failed New", i)
		}
	}
}

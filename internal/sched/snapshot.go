package sched

// Snapshot is a point-in-time view of the scheduler for metrics export.
// Counters are cumulative since New; gauges are instantaneous.
type Snapshot struct {
	// Gauges.
	Workers  int   `json:"workers"`
	Queued   int   `json:"queued"`
	InFlight int64 `json:"in_flight"`
	// QueuedByClass is the per-class run-queue depth, indexed by
	// Class.String().
	QueuedByClass map[string]int `json:"queued_by_class"`

	// Admission counters.
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// ServedByClass counts finished tasks per class.
	ServedByClass map[string]uint64 `json:"served_by_class"`
	// QueueWait is the per-class admission-to-dispatch wait distribution,
	// indexed by Class.String() — queueing delay, separate from service
	// time, so a loaded server's latency decomposes in /metrics.
	QueueWait map[string]WaitStats `json:"queue_wait"`

	// Batching.
	Dispatches      uint64  `json:"dispatches"`
	DispatchedTasks uint64  `json:"dispatched_tasks"`
	BatchOccupancy  float64 `json:"batch_occupancy"` // mean tasks per dispatch
	MaxBatch        int64   `json:"max_batch"`

	// Deadlines and aging.
	DeadlineMisses       uint64 `json:"deadline_misses"`
	ExpiredBeforeRun     uint64 `json:"expired_before_run"`
	StarvationPromotions uint64 `json:"starvation_promotions"`

	// Resilience.
	Requeued         uint64 `json:"requeued"`
	RetriesExhausted uint64 `json:"retries_exhausted"`

	// Pool elasticity.
	PoolGrown      uint64 `json:"pool_grown"`
	PoolShrunk     uint64 `json:"pool_shrunk"`
	PoolReplaced   uint64 `json:"pool_replaced"`
	PoolGrowFailed uint64 `json:"pool_grow_failed"`
}

// WaitStats summarizes one class's queue-wait distribution.
type WaitStats struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Snapshot captures the scheduler's current state.
func (s *Scheduler) Snapshot() Snapshot {
	s.mu.Lock()
	workers := s.workers
	queued := s.q.len()
	byClass := make(map[string]int, NumClasses)
	for c := 0; c < NumClasses; c++ {
		byClass[Class(c).String()] = len(s.q.heaps[c])
	}
	s.mu.Unlock()

	served := make(map[string]uint64, NumClasses)
	qwait := make(map[string]WaitStats, NumClasses)
	for c := 0; c < NumClasses; c++ {
		served[Class(c).String()] = uint64(s.served[c].Load())
		h := s.qwait[c]
		qwait[Class(c).String()] = WaitStats{
			Count:  h.Count(),
			MeanMs: h.Mean() * 1e3,
			P50Ms:  h.Quantile(0.5) * 1e3,
			P99Ms:  h.Quantile(0.99) * 1e3,
		}
	}
	snap := Snapshot{
		Workers:              workers,
		Queued:               queued,
		InFlight:             s.inflight.Load(),
		QueuedByClass:        byClass,
		Submitted:            uint64(s.submitted.Load()),
		Rejected:             uint64(s.rejected.Load()),
		Completed:            uint64(s.completed.Load()),
		Failed:               uint64(s.failed.Load()),
		Cancelled:            uint64(s.cancelled.Load()),
		ServedByClass:        served,
		QueueWait:            qwait,
		Dispatches:           uint64(s.dispatches.Load()),
		DispatchedTasks:      uint64(s.dispatchedTasks.Load()),
		MaxBatch:             s.maxBatch.Load(),
		DeadlineMisses:       uint64(s.misses.Load()),
		ExpiredBeforeRun:     uint64(s.expired.Load()),
		StarvationPromotions: uint64(s.starved.Load()),
		Requeued:             uint64(s.requeued.Load()),
		RetriesExhausted:     uint64(s.retriesDropped.Load()),
		PoolGrown:            uint64(s.grown.Load()),
		PoolShrunk:           uint64(s.shrunk.Load()),
		PoolReplaced:         uint64(s.replaced.Load()),
		PoolGrowFailed:       uint64(s.growFailed.Load()),
	}
	if snap.Dispatches > 0 {
		snap.BatchOccupancy = float64(snap.DispatchedTasks) / float64(snap.Dispatches)
	}
	return snap
}

package ipcrt

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	cases := []frame{
		{Op: opHello, P: [5]int64{3}},
		{Op: opBarrier, Seq: 9},
		{Op: opMalloc, P: [5]int64{4096}},
		{Op: opMallocAck, P: [5]int64{7}, Body: putInt64s([]int64{16, 32, 0, 64})},
		{Op: opGet, Seq: 42, P: [5]int64{1, 128, 256}},
		{Op: opGetSub, Seq: 43, P: [5]int64{1, 10, 64, 8, 16}},
		{Op: opPut, Seq: 44, P: [5]int64{2, 0}, Body: floatBytes([]float64{1.5, -2.25, math.Pi})},
		{Op: opAcc, Seq: 45, P: [5]int64{2, 8, float64bits(0.5)}, Body: floatBytes([]float64{4, 8})},
		{Op: opFetchAdd, Seq: 46, P: [5]int64{0, 3, float64bits(1)}},
		{Op: opMsg, P: [5]int64{2, 17}, Body: floatBytes([]float64{9})},
		{Op: opAck, Seq: 42, Body: floatBytes([]float64{0, 1, 2})},
		{Op: opErr, Seq: 44, Body: []byte("boom")},
		{Op: opFin, Body: []byte(`{"Rank":1}`)},
	}
	for _, want := range cases {
		var buf bytes.Buffer
		if err := writeFrame(&buf, &want); err != nil {
			t.Fatalf("%v: write: %v", want.Op, err)
		}
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("%v: read: %v", want.Op, err)
		}
		if got.Op != want.Op || got.Seq != want.Seq || got.P != want.P || !bytes.Equal(got.Body, want.Body) {
			t.Errorf("%v: round trip mismatch: got %+v want %+v", want.Op, got, want)
		}
	}
}

// corrupt returns the encoding of a valid opGet frame with mut applied.
func corrupt(t *testing.T, f frame, mut func(h []byte)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, &f); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	mut(raw[:headerLen])
	return raw
}

func TestWireMalformed(t *testing.T) {
	get := frame{Op: opGet, Seq: 1, P: [5]int64{1, 0, 8}}
	tests := []struct {
		name string
		raw  []byte
		want string
	}{
		{"bad magic", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint32(h[0:4], 0xdeadbeef)
		}), "bad magic"},
		{"bad version", corrupt(t, get, func(h []byte) { h[4] = 99 }), "wire version"},
		{"zero op", corrupt(t, get, func(h []byte) { h[5] = 0 }), "unknown op"},
		{"op out of range", corrupt(t, get, func(h []byte) { h[5] = byte(opCount) }), "unknown op"},
		{"reserved bytes set", corrupt(t, get, func(h []byte) { h[6] = 1 }), "reserved"},
		{"oversized body", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[56:64], uint64(maxBodyLen)+1)
		}), "body length"},
		{"negative body (wrapped)", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[56:64], math.MaxUint64)
		}), "body length"},
		{"negative segment id", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], math.MaxUint64)
		}), "segment id"},
		{"huge segment id", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], uint64(maxSegID)+1)
		}), "segment id"},
		{"negative offset", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[24:32], math.MaxUint64)
		}), "offset"},
		{"huge offset", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[24:32], uint64(maxElems)+1)
		}), "offset"},
		{"huge get count", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[32:40], uint64(maxElems)+1)
		}), "element count"},
		{"get-sub ld < cols", corrupt(t, frame{Op: opGetSub, P: [5]int64{1, 0, 4, 2, 8}},
			func(h []byte) {}), "malformed region"},
		{"get-sub negative rows", corrupt(t, frame{Op: opGetSub, P: [5]int64{1, 0, 8, -1, 8}},
			func(h []byte) {}), "malformed region"},
		{"get-sub huge ld", corrupt(t, frame{Op: opGetSub, P: [5]int64{1, 0, maxElems + 1, 1, 1}},
			func(h []byte) {}), "malformed region"},
		{"get-sub product overflow", corrupt(t, frame{Op: opGetSub,
			P: [5]int64{1, 0, maxElems, maxElems, maxElems}}, func(h []byte) {}), "too large"},
		{"put body not float-aligned", corrupt(t, frame{Op: opPut, P: [5]int64{1, 0}, Body: make([]byte, 12)},
			func(h []byte) {}), "not whole float64s"},
		{"msg body not float-aligned", corrupt(t, frame{Op: opMsg, P: [5]int64{0, 1}, Body: make([]byte, 7)},
			func(h []byte) {}), "not whole float64s"},
		{"malloc huge count", corrupt(t, frame{Op: opMalloc, P: [5]int64{maxElems + 1}},
			func(h []byte) {}), "element count"},
		{"hello negative rank", corrupt(t, frame{Op: opHello}, func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], math.MaxUint64)
		}), "negative rank"},
		{"msg negative source", corrupt(t, frame{Op: opMsg}, func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], math.MaxUint64)
		}), "negative source"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := readFrame(bytes.NewReader(tc.raw))
			if err == nil {
				t.Fatalf("malformed frame accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestWireTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{Op: opPut, P: [5]int64{1, 0}, Body: floatBytes(make([]float64, 16))}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Truncated header.
	if _, err := readFrame(bytes.NewReader(raw[:headerLen-8])); err == nil {
		t.Error("truncated header accepted")
	}
	// Truncated body.
	if _, err := readFrame(bytes.NewReader(raw[:headerLen+24])); err == nil {
		t.Error("truncated body accepted")
	} else if err == io.ErrUnexpectedEOF {
		t.Error("truncated body error lost frame context")
	}
}

func TestFloatBytesRoundTrip(t *testing.T) {
	vals := []float64{0, 1.5, -math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	b := floatBytes(vals)
	if len(b) != len(vals)*8 {
		t.Fatalf("floatBytes length %d", len(b))
	}
	// The wire is defined as little-endian regardless of host.
	if got := math.Float64frombits(binary.LittleEndian.Uint64(b[8:16])); got != 1.5 {
		t.Fatalf("element 1 encodes to %v", got)
	}
	out := make([]float64, len(vals))
	copyFloats(out, b)
	for i := range vals {
		if math.Float64bits(out[i]) != math.Float64bits(vals[i]) {
			t.Errorf("element %d: %v != %v", i, out[i], vals[i])
		}
	}
}

func TestInt64sRoundTrip(t *testing.T) {
	vals := []int64{0, -1, 1 << 40, math.MaxInt64}
	out, err := getInt64s(putInt64s(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] {
			t.Errorf("element %d: %d != %d", i, out[i], vals[i])
		}
	}
	if _, err := getInt64s(make([]byte, 9)); err == nil {
		t.Error("ragged int64 body accepted")
	}
}

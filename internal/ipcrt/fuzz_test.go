package ipcrt

import (
	"bytes"
	"testing"
)

// FuzzIPCWire drives arbitrary bytes through the frame reader. Accepted
// frames must re-encode and re-parse to the same frame (the codec is
// canonical); everything else must be rejected without panicking or
// allocating the declared body.
func FuzzIPCWire(f *testing.F) {
	seed := []frame{
		{Op: opHello, P: [5]int64{2}},
		{Op: opGet, Seq: 7, P: [5]int64{1, 64, 32}},
		{Op: opGetSub, Seq: 8, P: [5]int64{1, 0, 16, 4, 8}},
		{Op: opPut, Seq: 9, P: [5]int64{0, 8}, Body: floatBytes([]float64{1, 2, 3})},
		{Op: opMallocAck, P: [5]int64{3}, Body: putInt64s([]int64{8, 8})},
		{Op: opErr, Seq: 5, Body: []byte("nope")},
	}
	for _, fr := range seed {
		var buf bytes.Buffer
		if err := writeFrame(&buf, &fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(make([]byte, headerLen-1))
	f.Add(bytes.Repeat([]byte{0xff}, headerLen+16))

	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := readFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, &got); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		again, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("re-parsing re-encoded frame: %v", err)
		}
		if again.Op != got.Op || again.Seq != got.Seq || again.P != got.P || !bytes.Equal(again.Body, got.Body) {
			t.Fatalf("canonical round trip mismatch: %+v vs %+v", again, got)
		}
	})
}

//go:build !linux && !darwin

package ipcrt

import (
	"errors"
	"os/exec"
)

// Platforms without the mmap shared-segment path: the ipc engine is
// reported unavailable (Available() == false) and Launch fails cleanly
// instead of at first segment registration.

func mmapAvailable() bool { return false }

type segMap struct {
	data []float64
	raw  []byte
}

func mapSegment(path string, elems int, create bool) (*segMap, error) {
	return nil, errors.New("ipcrt: shared-memory segments are not supported on this platform")
}

func (m *segMap) unmap() error { return nil }

func exitInfo(err error) (code int, sig string) {
	if err == nil {
		return 0, ""
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode(), ""
	}
	return -1, ""
}

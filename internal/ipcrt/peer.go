package ipcrt

// Peer-to-peer one-sided RMA. Every worker listens on a unix-domain socket
// (rank<i>.sock in the run directory); a rank needing cross-node data
// dials the owner lazily and keeps one pipelined connection per peer:
//
//   - The requesting rank goroutine writes request frames tagged with a
//     per-connection sequence number and registers a pending completion.
//     NbGet therefore really is nonblocking — the call returns once the
//     64-byte request header is on the wire.
//   - A per-connection reader goroutine matches responses to pending ops
//     by sequence number, lands the payload in the destination buffer and
//     completes the handle (the channel close publishes the buffer to the
//     waiting rank goroutine).
//   - On the owning side, one goroutine per inbound connection serves
//     requests sequentially against the owner's own mmap segment, under
//     the process-wide hb mutex (see ctx.go for the memory model).
//
// Atomics (Acc, FetchAdd) always go through the owner's socket — even from
// the owner itself or a same-node peer — so the owner's server is the one
// serialization point, exactly like ARMCI routing atomics through the
// owning node's data server.

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Addresses are scheme-prefixed ("unix:/path", "tcp:host:port"); a rank's
// address-table entry may list several, "|"-separated, in which case the
// dialer picks by scheme (see pickAddr).

// schemeOf splits the scheme off a single address.
func schemeOf(addr string) string {
	if i := strings.IndexByte(addr, ':'); i > 0 {
		return addr[:i]
	}
	return ""
}

// dialAddr connects to one scheme-prefixed address.
func dialAddr(addr string) (net.Conn, error) {
	i := strings.IndexByte(addr, ':')
	if i <= 0 || i == len(addr)-1 {
		return nil, fmt.Errorf("ipcrt: malformed address %q", addr)
	}
	scheme, rest := addr[:i], addr[i+1:]
	switch scheme {
	case "unix", "tcp":
		return net.Dial(scheme, rest)
	}
	return nil, fmt.Errorf("ipcrt: unsupported address scheme %q", scheme)
}

// pickAddr selects the transport for one peer from its advertised entry:
// shared-memory-domain peers get the unix socket (cheapest local path),
// cross-domain peers get TCP when the peer offers it. Falls back to the
// first address either way.
func pickAddr(entry string, sameDomain bool) string {
	addrs := strings.Split(entry, "|")
	want := "tcp"
	if sameDomain {
		want = "unix"
	}
	for _, a := range addrs {
		if schemeOf(a) == want {
			return a
		}
	}
	return addrs[0]
}

// doneHandle is an already-completed nonblocking operation (direct-path
// gets and puts complete eagerly, like armci's single-address-space ops).
type doneHandle struct{}

func (doneHandle) Done() bool { return true }

// opHandle completes when the reader goroutine lands the response (or the
// transport dies). err is written before the channel close and read only
// after it, so the close is the publication point.
type opHandle struct {
	done chan struct{}
	once sync.Once
	err  error
}

func newOpHandle() *opHandle { return &opHandle{done: make(chan struct{})} }

func (h *opHandle) finish() { h.once.Do(func() { close(h.done) }) }

func (h *opHandle) fail(err error) {
	h.once.Do(func() {
		h.err = err
		close(h.done)
	})
}

func (h *opHandle) Done() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// pendingOp is one in-flight request: complete runs on the reader
// goroutine with the response frame, then the handle is finished.
type pendingOp struct {
	h        *opHandle
	complete func(f *frame) error
}

// peerConn is one requester->owner connection with pipelined requests.
type peerConn struct {
	to   int
	conn net.Conn

	wmu sync.Mutex // serializes request writes

	pmu     sync.Mutex
	seq     uint64
	pending map[uint64]*pendingOp
	dead    error
}

func dialPeer(addr string, to int) (*peerConn, error) {
	conn, err := dialAddr(addr)
	if err != nil {
		return nil, fmt.Errorf("ipcrt: dialing rank %d at %s: %w", to, addr, err)
	}
	pc := &peerConn{to: to, conn: conn, pending: make(map[uint64]*pendingOp)}
	go pc.readLoop()
	return pc, nil
}

// issue registers p, stamps the frame with a fresh sequence number and
// writes it. Returns an error only when the connection is already dead;
// transport failures after registration fail the handle asynchronously.
func (pc *peerConn) issue(f *frame, p *pendingOp) {
	pc.pmu.Lock()
	if pc.dead != nil {
		err := pc.dead
		pc.pmu.Unlock()
		p.h.fail(err)
		return
	}
	pc.seq++
	f.Seq = pc.seq
	pc.pending[f.Seq] = p
	pc.pmu.Unlock()

	pc.wmu.Lock()
	err := writeFrame(pc.conn, f)
	pc.wmu.Unlock()
	if err != nil {
		pc.die(fmt.Errorf("ipcrt: writing to rank %d: %w", pc.to, err))
	}
}

// send writes a one-way frame (opMsg) with no completion.
func (pc *peerConn) send(f *frame) error {
	pc.pmu.Lock()
	if pc.dead != nil {
		err := pc.dead
		pc.pmu.Unlock()
		return err
	}
	pc.pmu.Unlock()
	pc.wmu.Lock()
	err := writeFrame(pc.conn, f)
	pc.wmu.Unlock()
	if err != nil {
		pc.die(fmt.Errorf("ipcrt: writing to rank %d: %w", pc.to, err))
	}
	return err
}

func (pc *peerConn) readLoop() {
	for {
		f, err := readFrame(pc.conn)
		if err != nil {
			pc.die(fmt.Errorf("ipcrt: connection to rank %d lost: %w", pc.to, err))
			return
		}
		pc.pmu.Lock()
		p := pc.pending[f.Seq]
		delete(pc.pending, f.Seq)
		pc.pmu.Unlock()
		if p == nil {
			pc.die(fmt.Errorf("ipcrt: rank %d sent unmatched response seq %d", pc.to, f.Seq))
			return
		}
		if f.Op == opErr {
			p.h.fail(fmt.Errorf("ipcrt: rank %d: %s", pc.to, f.Body))
			continue
		}
		if err := p.complete(&f); err != nil {
			p.h.fail(err)
			continue
		}
		p.h.finish()
	}
}

// die fails every in-flight op and poisons the connection.
func (pc *peerConn) die(err error) {
	pc.pmu.Lock()
	if pc.dead == nil {
		pc.dead = err
	}
	stuck := pc.pending
	pc.pending = make(map[uint64]*pendingOp)
	pc.pmu.Unlock()
	pc.conn.Close()
	for _, p := range stuck {
		p.h.fail(err)
	}
}

func (pc *peerConn) close() { pc.die(fmt.Errorf("ipcrt: connection to rank %d closed", pc.to)) }

// ---- owner side ----

// serveRMA accepts peer connections for the lifetime of the worker.
func (c *ipcCtx) serveRMA(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go c.serveRMAConn(conn)
	}
}

// serveRMAConn serves one requester sequentially. Responses carry the
// request's sequence number; opMsg is one-way.
func (c *ipcCtx) serveRMAConn(conn net.Conn) {
	defer conn.Close()
	for {
		f, err := readFrame(conn)
		if err != nil {
			return
		}
		resp, oneway := c.handleRMA(&f)
		if oneway {
			continue
		}
		resp.Seq = f.Seq
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// handleRMA executes one request against this worker's own segments. Data
// access happens under the hb mutex (in-process happens-before edges with
// the rank goroutine; see ctx.go), and payloads are copied inside the
// critical section so the socket write happens outside it.
func (c *ipcCtx) handleRMA(f *frame) (resp *frame, oneway bool) {
	fail := func(format string, args ...any) (*frame, bool) {
		return &frame{Op: opErr, Body: []byte(fmt.Sprintf(format, args...))}, false
	}
	if f.Op == opMsg {
		payload := make([]float64, len(f.Body)/8)
		copyFloats(payload, f.Body)
		c.mbox.deposit(int(f.P[0]), int(f.P[1]), payload)
		return nil, true
	}

	// The maps container is mutated by the rank goroutine (lazy same-node
	// peer mappings), so the read of this rank's own entry must hold segMu
	// like every other access.
	own, ok := c.ownData(f.P[0])
	if !ok {
		return fail("unknown segment %d", f.P[0])
	}
	off := int(f.P[1])
	t0 := time.Now()

	switch f.Op {
	case opGet:
		n := int(f.P[2])
		if off+n > len(own) {
			return fail("get [%d,%d) of %d", off, off+n, len(own))
		}
		out := make([]float64, n)
		c.hbMu.Lock()
		copy(out, own[off:off+n])
		c.hbMu.Unlock()
		c.serveSpan(t0)
		return &frame{Op: opAck, Body: floatBytes(out)}, false

	case opGetSub:
		ld, rows, cols := int(f.P[2]), int(f.P[3]), int(f.P[4])
		if rows > 0 && cols > 0 {
			if last := off + (rows-1)*ld + cols; last > len(own) {
				return fail("get-sub region ends at %d of %d", last, len(own))
			}
		}
		out := make([]float64, rows*cols)
		c.hbMu.Lock()
		for r := 0; r < rows; r++ {
			copy(out[r*cols:(r+1)*cols], own[off+r*ld:off+r*ld+cols])
		}
		c.hbMu.Unlock()
		c.serveSpan(t0)
		return &frame{Op: opAck, Body: floatBytes(out)}, false

	case opPut:
		n := len(f.Body) / 8
		if off+n > len(own) {
			return fail("put [%d,%d) of %d", off, off+n, len(own))
		}
		c.hbMu.Lock()
		copyFloats(own[off:off+n], f.Body)
		c.hbMu.Unlock()
		c.serveSpan(t0)
		return &frame{Op: opAck}, false

	case opPutSub:
		ld, rows, cols := int(f.P[2]), int(f.P[3]), int(f.P[4])
		if len(f.Body) != rows*cols*8 {
			return fail("put-sub body %d bytes for %dx%d region", len(f.Body), rows, cols)
		}
		if rows > 0 && cols > 0 {
			if last := off + (rows-1)*ld + cols; last > len(own) {
				return fail("put-sub region ends at %d of %d", last, len(own))
			}
		}
		c.hbMu.Lock()
		for r := 0; r < rows; r++ {
			copyFloats(own[off+r*ld:off+r*ld+cols], f.Body[r*cols*8:(r+1)*cols*8])
		}
		c.hbMu.Unlock()
		c.serveSpan(t0)
		return &frame{Op: opAck}, false

	case opAcc:
		n := len(f.Body) / 8
		if off+n > len(own) {
			return fail("acc [%d,%d) of %d", off, off+n, len(own))
		}
		alpha := float64frombits(f.P[2])
		vals := make([]float64, n)
		copyFloats(vals, f.Body)
		c.hbMu.Lock()
		for i, v := range vals {
			own[off+i] += alpha * v
		}
		c.hbMu.Unlock()
		c.serveSpan(t0)
		return &frame{Op: opAck}, false

	case opFetchAdd:
		if off >= len(own) {
			return fail("fetch-add offset %d of %d", off, len(own))
		}
		delta := float64frombits(f.P[2])
		c.hbMu.Lock()
		old := own[off]
		own[off] = old + delta
		c.hbMu.Unlock()
		return &frame{Op: opAck, P: [5]int64{float64bits(old)}}, false

	case opChecksum:
		ld, rows, cols := int(f.P[2]), int(f.P[3]), int(f.P[4])
		if rows > 0 && cols > 0 {
			if last := off + (rows-1)*ld + cols; last > len(own) {
				return fail("checksum region ends at %d of %d", last, len(own))
			}
		}
		c.hbMu.Lock()
		sum := checksumRegion(own, off, ld, rows, cols)
		c.hbMu.Unlock()
		return &frame{Op: opAck, P: [5]int64{int64(sum)}}, false
	}
	return fail("op %v is not a peer RMA request", f.Op)
}

// serveSpan records owner CPU spent servicing a remote op (the paper's
// "data server" cost) when tracing is on.
func (c *ipcCtx) serveSpan(t0 time.Time) {
	if rec := c.rec.Load(); rec != nil {
		rec.RecordWall(c.rank, kindSteal, t0, time.Now())
	}
}

// Package ipcrt is the multi-process engine: a third rt.Ctx implementation
// in which every rank is an OS process. It is the deployment shape the
// paper's ARMCI implementation actually runs in — one process per CPU,
// shared-memory segments inside a node, a real transport between nodes:
//
//   - Ranks on the same emulated node map each other's Globals as
//     mmap(MAP_SHARED) segments, so CanDirect/Direct are true load/store
//     and the shared-memory-first task order pays only cache traffic.
//   - Ranks on different nodes speak a one-sided RMA protocol
//     (Get/NbGet/Put/Acc/FetchAdd, plus the mailbox behind internal/mp)
//     over unix-domain sockets, paying genuine serialization + copy costs.
//   - A coordinator process (the CLI, a test) launches the workers, runs
//     the collectives (Barrier, Malloc/Free segment registration),
//     dispatches jobs, and converts worker death into a typed error
//     instead of a hang.
//
// This file is the wire codec: one fixed-size little-endian frame header,
// in the framing discipline of the serving layer's binary wire (PR 7) —
// reject-before-allocate validation, explicit LE byte order, zero-copy
// float64<->byte reinterpretation where the host allows it.
package ipcrt

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// Frame header layout, little-endian, 64 bytes:
//
//	[0:4)   magic "SRI1"
//	[4]     version (wireVersion)
//	[5]     op
//	[6:8)   reserved, must be zero
//	[8:16)  seq    uint64  request/response correlation id
//	[16:56) p0..p4 int64   op-specific parameters
//	[56:64) bodyLen uint64 bytes of body following the header
//
// The parameter slots by op (unused slots must be zero):
//
//	opHello      p0=rank
//	opBarrier    (none)                          ack: opBarrierAck
//	opMalloc     p0=elems                        ack: opMallocAck p0=segID, body=int64 sizes
//	opFree       p0=segID                        ack: opFreeAck
//	opFin        body=JSON RankResult
//	opJob        body=JSON JobSpec
//	opGet        p0=segID p1=off p2=n            ack: body=floats
//	opGetSub     p0=segID p1=off p2=ld p3=rows p4=cols   ack: body=floats (packed)
//	opPut        p0=segID p1=off, body=floats    ack: empty
//	opPutSub     p0=segID p1=off p2=ld p3=rows p4=cols, body=floats   ack: empty
//	opAcc        p0=segID p1=off p2=alphaBits, body=floats            ack: empty
//	opFetchAdd   p0=segID p1=off p2=deltaBits    ack: p0=oldBits
//	opMsg        p0=srcRank p1=tag, body=floats  (one-way, no ack)
//	opChecksum   p0=segID p1=off p2=ld p3=rows p4=cols   ack: p0=checksum bits
//	opAck        response frame; seq echoes the request
//	opErr        response frame; body=error text
//	opAddrs      body=JSON []string per-rank RMA addresses (coordinator -> worker)
//	opPing       p0=ping seq (coordinator -> worker)     reply: opPong
//	opPong       p0=echoed ping seq (worker -> coordinator)
const (
	wireMagic   = uint32(0x31495253) // "SRI1" read little-endian
	wireVersion = 1
	headerLen   = 64
)

// Hard frame limits, enforced before any allocation. A segment id is a
// small coordinator-issued counter and an RMA body is at most one operand
// block, so anything near these bounds is a corrupt or hostile frame.
const (
	maxBodyLen = int64(1) << 31 // 2 GiB
	maxSegID   = int64(1) << 20
	maxElems   = maxBodyLen / 8
)

type op uint8

const (
	opInvalid op = iota
	// Control plane, worker -> coordinator.
	opHello
	opBarrier
	opMalloc
	opFree
	opFin
	// Control plane, coordinator -> worker.
	opJob
	opBarrierAck
	opMallocAck
	opFreeAck
	opShutdown
	// One-sided RMA, requester -> owning worker.
	opGet
	opGetSub
	opPut
	opPutSub
	opAcc
	opFetchAdd
	opMsg
	opChecksum
	// RMA responses, owning worker -> requester.
	opAck
	opErr
	// Cluster control additions (appended so earlier op values stay stable):
	// the per-rank address table broadcast after launch, and the liveness
	// ping/pong the node supervisor's heartbeat rides on.
	opAddrs
	opPing
	opPong
	opCount // sentinel, not a valid op
)

var opNames = [opCount]string{
	"invalid", "hello", "barrier", "malloc", "free", "fin",
	"job", "barrier-ack", "malloc-ack", "free-ack", "shutdown",
	"get", "get-sub", "put", "put-sub", "acc", "fetch-add", "msg", "checksum",
	"ack", "err", "addrs", "ping", "pong",
}

func (o op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// frame is one decoded message. Body aliases the read buffer only inside
// the handler that decoded it; anything retained is copied.
type frame struct {
	Op   op
	Seq  uint64
	P    [5]int64
	Body []byte
}

// putHeader encodes the 64-byte header into dst.
func putHeader(dst []byte, f *frame) {
	_ = dst[headerLen-1]
	binary.LittleEndian.PutUint32(dst[0:4], wireMagic)
	dst[4] = wireVersion
	dst[5] = byte(f.Op)
	dst[6], dst[7] = 0, 0
	binary.LittleEndian.PutUint64(dst[8:16], f.Seq)
	for i, p := range f.P {
		binary.LittleEndian.PutUint64(dst[16+8*i:], uint64(p))
	}
	binary.LittleEndian.PutUint64(dst[56:64], uint64(len(f.Body)))
}

// parseHeader validates and decodes a header, rejecting malformed frames
// before any body allocation happens. It returns the declared body length
// separately so the transport can bound the read.
func parseHeader(h []byte) (frame, int64, error) {
	var f frame
	if len(h) < headerLen {
		return f, 0, fmt.Errorf("ipcrt: truncated header: %d of %d bytes", len(h), headerLen)
	}
	if m := binary.LittleEndian.Uint32(h[0:4]); m != wireMagic {
		return f, 0, fmt.Errorf("ipcrt: bad magic %#08x", m)
	}
	if h[4] != wireVersion {
		return f, 0, fmt.Errorf("ipcrt: unsupported wire version %d", h[4])
	}
	f.Op = op(h[5])
	if f.Op == opInvalid || f.Op >= opCount {
		return f, 0, fmt.Errorf("ipcrt: unknown op %d", h[5])
	}
	if h[6] != 0 || h[7] != 0 {
		return f, 0, fmt.Errorf("ipcrt: nonzero reserved bytes")
	}
	f.Seq = binary.LittleEndian.Uint64(h[8:16])
	for i := range f.P {
		f.P[i] = int64(binary.LittleEndian.Uint64(h[16+8*i:]))
	}
	bodyLen := int64(binary.LittleEndian.Uint64(h[56:64]))
	if bodyLen < 0 || bodyLen > maxBodyLen {
		return f, 0, fmt.Errorf("ipcrt: body length %d exceeds limit %d", uint64(bodyLen), maxBodyLen)
	}
	if err := validateFrame(&f, bodyLen); err != nil {
		return f, 0, err
	}
	return f, bodyLen, nil
}

// validateFrame applies per-op parameter checks — segment ids bounded,
// geometry non-negative, float bodies a whole number of elements — so a
// handler never sees a frame it must range-check again.
func validateFrame(f *frame, bodyLen int64) error {
	switch f.Op {
	case opGet, opGetSub, opPut, opPutSub, opAcc, opFetchAdd, opChecksum:
		if f.P[0] < 0 || f.P[0] > maxSegID {
			return fmt.Errorf("ipcrt: %v: segment id %d out of range", f.Op, f.P[0])
		}
		// Offsets are bounded like element counts so owner-side arithmetic
		// (off + n, off + (rows-1)*ld + cols) cannot overflow int.
		if f.P[1] < 0 || f.P[1] > maxElems {
			return fmt.Errorf("ipcrt: %v: offset %d out of range", f.Op, f.P[1])
		}
	}
	switch f.Op {
	case opGet:
		if f.P[2] < 0 || f.P[2] > maxElems {
			return fmt.Errorf("ipcrt: get: element count %d out of range", f.P[2])
		}
	case opGetSub, opPutSub, opChecksum:
		ld, rows, cols := f.P[2], f.P[3], f.P[4]
		if rows < 0 || cols < 0 || ld < cols || ld > maxElems {
			return fmt.Errorf("ipcrt: %v: malformed region %dx%d ld=%d", f.Op, rows, cols, ld)
		}
		// Overflow-safe product bound: rows*cols would wrap for hostile
		// 2^32-scale dimensions before a plain product check ran.
		if rows > maxElems || cols > maxElems || (rows > 0 && cols > maxElems/rows) {
			return fmt.Errorf("ipcrt: %v: region %dx%d too large", f.Op, rows, cols)
		}
	case opMalloc:
		if f.P[0] < 0 || f.P[0] > maxElems {
			return fmt.Errorf("ipcrt: malloc: element count %d out of range", f.P[0])
		}
	case opFree:
		if f.P[0] < 0 || f.P[0] > maxSegID {
			return fmt.Errorf("ipcrt: free: segment id %d out of range", f.P[0])
		}
	case opHello:
		if f.P[0] < 0 {
			return fmt.Errorf("ipcrt: hello: negative rank %d", f.P[0])
		}
		if f.P[1] < 0 || f.P[1] > 65535 {
			return fmt.Errorf("ipcrt: hello: RMA port %d out of range", f.P[1])
		}
	case opMsg:
		if f.P[0] < 0 {
			return fmt.Errorf("ipcrt: msg: negative source rank %d", f.P[0])
		}
	}
	switch f.Op {
	case opPut, opPutSub, opAcc, opMsg:
		if bodyLen%8 != 0 {
			return fmt.Errorf("ipcrt: %v: body %d bytes is not whole float64s", f.Op, bodyLen)
		}
	}
	return nil
}

// writeFrame writes one frame. Callers serialize per connection.
func writeFrame(w io.Writer, f *frame) error {
	var h [headerLen]byte
	putHeader(h[:], f)
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	if len(f.Body) > 0 {
		if _, err := w.Write(f.Body); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads and validates one frame, allocating the body only after
// the header passed validation.
func readFrame(r io.Reader) (frame, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return frame{}, err
	}
	f, bodyLen, err := parseHeader(h[:])
	if err != nil {
		return frame{}, err
	}
	if bodyLen > 0 {
		f.Body = make([]byte, bodyLen)
		if _, err := io.ReadFull(r, f.Body); err != nil {
			return frame{}, fmt.Errorf("ipcrt: short body for %v: %w", f.Op, err)
		}
	}
	return f, nil
}

// hostLittleEndian reports whether float64 slices can be reinterpreted as
// LE bytes for free (amd64/arm64 linux containers: yes).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// floatBytes reinterprets a float64 slice as its LE byte representation,
// zero-copy on little-endian hosts. The caller must not let the result
// outlive vals.
func floatBytes(vals []float64) []byte {
	if len(vals) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), len(vals)*8)
	}
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// copyFloats decodes an LE float64 body into dst (len(b) == 8*len(dst),
// guaranteed by validateFrame plus the caller's length check).
func copyFloats(dst []float64, b []byte) {
	if hostLittleEndian && len(b) > 0 {
		copy(dst, unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8))
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// putInt64s encodes a []int64 as an LE byte body (segment size tables).
func putInt64s(vals []int64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// getInt64s decodes an LE int64 body.
func getInt64s(b []byte) ([]int64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("ipcrt: int64 body %d bytes is not whole words", len(b))
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, nil
}

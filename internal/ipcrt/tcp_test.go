package ipcrt

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"srumma/internal/core"
	"srumma/internal/rt"
)

// launchClusterCfg is launchCluster with a full Config (transport tests).
func launchClusterCfg(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if !Available() {
		t.Skip("multi-process engine unavailable on this platform")
	}
	cl, err := Launch(cfg)
	if err != nil {
		t.Fatalf("Launch(%+v): %v", cfg, err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestTCPBitIdentical is the tcp-transport twin of TestIPCBitIdentical:
// same topology, control plane and cross-domain RMA over TCP instead of
// unix sockets, and the per-peer scheme selection must actually have
// dialed TCP (TCPPeers > 0) while producing bit-identical C blocks.
func TestTCPBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	cl := launchClusterCfg(t, Config{NP: topo.NProcs, PPN: topo.ProcsPerNode, Transport: "tcp"})

	for _, cs := range []core.Case{core.NN, core.TN, core.NT, core.TT} {
		t.Run(cs.String(), func(t *testing.T) {
			spec := DefaultSpec(96, 80, 112)
			spec.Case = int(cs)
			spec.Beta = 0.5
			spec.ReturnC = true
			spec.KernelThreads = 1

			results, err := cl.RunJob(spec, 2*time.Minute)
			if err != nil {
				t.Fatalf("RunJob: %v", err)
			}
			want := armciBlocks(t, topo, spec)
			tcpDials := int64(0)
			for rank, res := range results {
				if res.Err != "" {
					t.Fatalf("rank %d: %s", rank, res.Err)
				}
				tcpDials += res.TCPPeers
				if len(res.C) != len(want[rank]) {
					t.Fatalf("rank %d: C block has %d elements, armci has %d", rank, len(res.C), len(want[rank]))
				}
				for i := range res.C {
					if math.Float64bits(res.C[i]) != math.Float64bits(want[rank][i]) {
						t.Fatalf("rank %d element %d: tcp %v != armci %v (bit difference)",
							rank, i, res.C[i], want[rank][i])
					}
				}
			}
			if tcpDials == 0 {
				t.Error("no rank dialed a TCP peer: cross-domain traffic did not take the tcp transport")
			}
		})
	}
}

// rawTCPServer starts a coordinator-less ctx serving the RMA protocol on a
// TCP listener, with one 16-element segment registered as id 1.
func rawTCPServer(t *testing.T) string {
	t.Helper()
	c := newCtx(0, rt.Topology{NProcs: 1, ProcsPerNode: 1}, t.TempDir(), nil)
	c.segs[1] = &segment{id: 1, sizes: []int{16}, maps: map[int]*segMap{0: {data: make([]float64, 16)}}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("tcp listener: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go c.serveRMA(ln)
	return ln.Addr().String()
}

// expectServerAlive proves the RMA server survived a poisoned connection:
// a fresh dial must still answer a valid get.
func expectServerAlive(t *testing.T, addr string) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("redial after malformed frame: %v", err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &frame{Op: opGet, Seq: 1, P: [5]int64{1, 0, 4}}); err != nil {
		t.Fatalf("valid get after malformed frame: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatalf("reading get response: %v", err)
	}
	if resp.Op != opAck || resp.Seq != 1 || len(resp.Body) != 4*8 {
		t.Fatalf("get response %+v, want 4-element ack seq 1", resp)
	}
}

// TestTCPMalformed drives the unix-socket suite's malformed frames at a
// live TCP RMA server: every one must close the offending connection
// without tearing the server down — and without allocating the declared
// body (the oversized cases would OOM otherwise).
func TestTCPMalformed(t *testing.T) {
	addr := rawTCPServer(t)
	get := frame{Op: opGet, Seq: 1, P: [5]int64{1, 0, 8}}
	tests := []struct {
		name string
		raw  []byte
	}{
		{"bad magic", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint32(h[0:4], 0xdeadbeef)
		})},
		{"bad version", corrupt(t, get, func(h []byte) { h[4] = 99 })},
		{"zero op", corrupt(t, get, func(h []byte) { h[5] = 0 })},
		{"op out of range", corrupt(t, get, func(h []byte) { h[5] = byte(opCount) })},
		{"reserved bytes set", corrupt(t, get, func(h []byte) { h[6] = 1 })},
		{"oversized body", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[56:64], uint64(maxBodyLen)+1)
		})},
		{"negative body (wrapped)", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[56:64], math.MaxUint64)
		})},
		{"negative segment id", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], math.MaxUint64)
		})},
		{"huge segment id", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[16:24], uint64(maxSegID)+1)
		})},
		{"huge get count", corrupt(t, get, func(h []byte) {
			binary.LittleEndian.PutUint64(h[32:40], uint64(maxElems)+1)
		})},
		{"get-sub ld < cols", corrupt(t, frame{Op: opGetSub, P: [5]int64{1, 0, 4, 2, 8}},
			func(h []byte) {})},
		{"get-sub product overflow", corrupt(t, frame{Op: opGetSub,
			P: [5]int64{1, 0, maxElems, maxElems, maxElems}}, func(h []byte) {})},
		{"put body not float-aligned", corrupt(t, frame{Op: opPut, P: [5]int64{1, 0}, Body: make([]byte, 12)},
			func(h []byte) {})},
		{"control op on RMA conn", corrupt(t, frame{Op: opShutdown}, func(h []byte) {})},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer conn.Close()
			if _, err := conn.Write(tc.raw); err != nil {
				t.Fatalf("write: %v", err)
			}
			conn.(*net.TCPConn).CloseWrite()
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			// The server either answers opErr (validated op against the wrong
			// target) or drops the connection (frame-level garbage); in both
			// cases the stream must end without the server dying.
			for {
				f, err := readFrame(conn)
				if err != nil {
					break
				}
				if f.Op != opErr {
					t.Fatalf("malformed frame %q got non-error response %+v", tc.name, f)
				}
			}
			expectServerAlive(t, addr)
		})
	}
}

// TestTCPTruncated cuts the stream mid-header and mid-body: the server
// must treat both as a dead peer, not block or crash.
func TestTCPTruncated(t *testing.T) {
	addr := rawTCPServer(t)
	var buf bytes.Buffer
	if err := writeFrame(&buf, &frame{Op: opPut, Seq: 3, P: [5]int64{1, 0}, Body: floatBytes(make([]float64, 8))}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, tc := range []struct {
		name string
		cut  int
	}{
		{"mid-header", headerLen - 8},
		{"mid-body", headerLen + 24},
	} {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			defer conn.Close()
			if _, err := conn.Write(raw[:tc.cut]); err != nil {
				t.Fatalf("write: %v", err)
			}
			conn.(*net.TCPConn).CloseWrite()
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			if f, err := readFrame(conn); err == nil {
				t.Fatalf("truncated stream got response %+v", f)
			}
			expectServerAlive(t, addr)
		})
	}
}

var (
	fuzzTCPOnce sync.Once
	fuzzTCPAddr string
)

// FuzzTCPWire throws arbitrary byte streams at a LIVE TCP RMA server (one
// shared across the fuzzing session): whatever arrives, the server must
// keep running — close the connection or answer opErr frames, never panic
// or wedge. Server-side panics crash the whole test process, so survival
// of the fuzz loop is the assertion.
func FuzzTCPWire(f *testing.F) {
	seed := []frame{
		{Op: opGet, Seq: 7, P: [5]int64{1, 0, 8}},
		{Op: opGetSub, Seq: 8, P: [5]int64{1, 0, 16, 4, 8}},
		{Op: opPut, Seq: 9, P: [5]int64{1, 8}, Body: floatBytes([]float64{1, 2, 3})},
		{Op: opFetchAdd, Seq: 10, P: [5]int64{1, 3, float64bits(1)}},
		{Op: opMsg, P: [5]int64{0, 17}, Body: floatBytes([]float64{9})},
	}
	for _, fr := range seed {
		var buf bytes.Buffer
		if err := writeFrame(&buf, &fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add(make([]byte, headerLen-1))
	f.Add(bytes.Repeat([]byte{0xff}, headerLen+16))

	f.Fuzz(func(t *testing.T, raw []byte) {
		fuzzTCPOnce.Do(func() {
			c := newCtx(0, rt.Topology{NProcs: 1, ProcsPerNode: 1}, t.TempDir(), nil)
			c.segs[1] = &segment{id: 1, sizes: []int{16}, maps: map[int]*segMap{0: {data: make([]float64, 16)}}}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("tcp listener: %v", err)
			}
			go c.serveRMA(ln)
			fuzzTCPAddr = ln.Addr().String()
		})
		conn, err := net.Dial("tcp", fuzzTCPAddr)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		conn.Write(raw)
		conn.(*net.TCPConn).CloseWrite()
		// Drain until the server ends the stream (EOF after its last
		// response, or an immediate close on garbage).
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		io.Copy(io.Discard, conn)
	})
}

// TestSegmentPoolReuse pins the steady-state allocation contract: the
// second same-shape job on a warm cluster must create NO new segment
// files (flat lifetime MmapMallocs) and map NO new peer segments
// (DirectMaps == 0 for the job), while staying bit-identical to a fresh
// in-process run — stale pooled contents must never leak into results.
func TestSegmentPoolReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	cl := launchCluster(t, topo.NProcs, topo.ProcsPerNode)

	spec := DefaultSpec(64, 64, 64)
	spec.Beta = 0.5
	spec.ReturnC = true
	spec.KernelThreads = 1

	first, err := cl.RunJob(spec, 2*time.Minute)
	if err != nil {
		t.Fatalf("job 1: %v", err)
	}
	baseline := make([]int64, len(first))
	for rank, res := range first {
		if res.Err != "" {
			t.Fatalf("job 1 rank %d: %s", rank, res.Err)
		}
		if res.MmapMallocs == 0 {
			t.Fatalf("job 1 rank %d reports no mmap mallocs — counter dead", rank)
		}
		baseline[rank] = res.MmapMallocs
	}

	second, err := cl.RunJob(spec, 2*time.Minute)
	if err != nil {
		t.Fatalf("job 2: %v", err)
	}
	want := armciBlocks(t, topo, spec)
	for rank, res := range second {
		if res.Err != "" {
			t.Fatalf("job 2 rank %d: %s", rank, res.Err)
		}
		if res.MmapMallocs != baseline[rank] {
			t.Errorf("rank %d mmap mallocs %d -> %d: warm pool still creating segments",
				rank, baseline[rank], res.MmapMallocs)
		}
		if res.DirectMaps != 0 {
			t.Errorf("rank %d mapped %d peer segments on a warm pool", rank, res.DirectMaps)
		}
		for i := range res.C {
			if math.Float64bits(res.C[i]) != math.Float64bits(want[rank][i]) {
				t.Fatalf("rank %d element %d: pooled %v != armci %v (stale segment leaked)",
					rank, i, res.C[i], want[rank][i])
			}
		}
	}

	// A different shape must not be force-fitted into parked segments.
	other := DefaultSpec(96, 48, 32)
	other.KernelThreads = 1
	third, err := cl.RunJob(other, 2*time.Minute)
	if err != nil {
		t.Fatalf("job 3: %v", err)
	}
	for rank, res := range third {
		if res.Err != "" {
			t.Fatalf("job 3 rank %d: %s", rank, res.Err)
		}
		if res.MmapMallocs <= baseline[rank] {
			t.Errorf("rank %d mmap mallocs stuck at %d for a new shape", rank, res.MmapMallocs)
		}
	}
}

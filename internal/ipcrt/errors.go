package ipcrt

import (
	"fmt"
	"time"

	"srumma/internal/rt"
)

// RankExitError reports a worker process that died while a job (or a
// collective) needed it: the coordinator saw the process exit before its
// FIN arrived. It is the multi-process analogue of a rank goroutine
// unwinding mid-job, and it unwraps to rt.ErrRankExited so callers can
// distinguish "the rank is gone — relaunch and retry" from
// rt.ErrRankDeadlocked ("the rank is wedged — retrying will wedge too").
type RankExitError struct {
	Rank     int
	ExitCode int    // process exit code, -1 when killed by a signal
	Signal   string // terminating signal name, "" when exited normally
}

func (e *RankExitError) Error() string {
	if e.Signal != "" {
		return fmt.Sprintf("ipcrt: rank %d process killed by %s", e.Rank, e.Signal)
	}
	return fmt.Sprintf("ipcrt: rank %d process exited with code %d", e.Rank, e.ExitCode)
}

// Unwrap classifies the failure engine-independently.
func (e *RankExitError) Unwrap() error { return rt.ErrRankExited }

// DeadlockError reports a job that missed its watchdog deadline with every
// worker process still alive: the ranks are wedged (a collective mismatch,
// a hung user body, an injected fault), not gone. Pending lists the ranks
// whose FIN never arrived. Unwraps to rt.ErrRankDeadlocked, the same
// failure class as armci's WatchdogError.
type DeadlockError struct {
	Timeout time.Duration
	Pending []int
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("ipcrt: job watchdog fired after %v: ranks %v never finished (processes still alive)", e.Timeout, e.Pending)
}

// Unwrap classifies the failure engine-independently.
func (e *DeadlockError) Unwrap() error { return rt.ErrRankDeadlocked }

// RankJobError reports a job body that failed on a worker (panic or
// returned error) while the process itself survived and reported in.
type RankJobError struct {
	Rank int
	Msg  string
}

func (e *RankJobError) Error() string {
	return fmt.Sprintf("ipcrt: rank %d job failed: %s", e.Rank, e.Msg)
}

package ipcrt

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"srumma/internal/core"
	"srumma/internal/rt"
)

// envTestJoin carries explicit WorkerParams (JSON) to a re-executed copy
// of this test binary, exercising the cmd/srumma-worker -join contract:
// an external worker dialing a NoSpawn coordinator's advertised TCP
// control address, rather than being spawned through the env marker.
const envTestJoin = "SRUMMA_IPCTEST_JOIN"

func maybeJoinWorker() {
	spec := os.Getenv(envTestJoin)
	if spec == "" {
		return
	}
	var p WorkerParams
	if err := json.Unmarshal([]byte(spec), &p); err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt join worker: bad %s: %v\n", envTestJoin, err)
		os.Exit(2)
	}
	os.Exit(RunWorker(p))
}

// TestExternalWorkerJoin is the -join path end to end: a NoSpawn
// coordinator binds a fixed TCP control address, NP external worker
// processes dial and hello with explicit WorkerParams (exactly what
// cmd/srumma-worker -join passes), a GEMM runs bit-identical to the
// in-process engine, and shutdown leaves every joined worker exiting 0.
func TestExternalWorkerJoin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	if !Available() {
		t.Skip("multi-process engine unavailable on this platform")
	}

	// Reserve an ephemeral port so the bind address is known before
	// Launch blocks waiting for hellos.
	rsv, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	bind := rsv.Addr().String()
	rsv.Close()

	dir, err := os.MkdirTemp("", "srummaj")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	topo := rt.Topology{NProcs: 2, ProcsPerNode: 1}
	type launched struct {
		cl  *Cluster
		err error
	}
	ch := make(chan launched, 1)
	go func() {
		cl, err := Launch(Config{
			NP:         topo.NProcs,
			PPN:        topo.ProcsPerNode,
			Dir:        dir,
			Transport:  "tcp",
			ListenAddr: bind,
			NoSpawn:    true,
		})
		ch <- launched{cl, err}
	}()

	// Wait for the control listener before pointing workers at it.
	ok := false
	for i := 0; i < 200 && !ok; i++ {
		c, err := net.DialTimeout("tcp", bind, 100*time.Millisecond)
		if err == nil {
			c.Close()
			ok = true
		} else {
			time.Sleep(25 * time.Millisecond)
		}
	}
	if !ok {
		t.Fatalf("coordinator control listener never came up on %s", bind)
	}

	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmds := make([]*exec.Cmd, topo.NProcs)
	for rank := 0; rank < topo.NProcs; rank++ {
		params, err := json.Marshal(WorkerParams{
			Rank:      rank,
			NP:        topo.NProcs,
			PPN:       topo.ProcsPerNode,
			Dir:       dir,
			CoordAddr: "tcp:" + bind,
			Transport: "tcp",
		})
		if err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), envTestJoin+"="+string(params))
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting join worker %d: %v", rank, err)
		}
		cmds[rank] = cmd
	}

	var cl *Cluster
	select {
	case l := <-ch:
		if l.err != nil {
			t.Fatalf("Launch(NoSpawn): %v", l.err)
		}
		cl = l.cl
	case <-time.After(60 * time.Second):
		t.Fatal("Launch(NoSpawn) never returned")
	}
	defer cl.Close()
	if got := cl.Addr(); got != "tcp:"+bind {
		t.Fatalf("Addr() = %q, want %q", got, "tcp:"+bind)
	}

	spec := DefaultSpec(64, 48, 56)
	spec.Case = int(core.NT)
	spec.ReturnC = true
	spec.KernelThreads = 1
	results, err := cl.RunJob(spec, 2*time.Minute)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	want := armciBlocks(t, topo, spec)
	for rank, res := range results {
		if res.Err != "" {
			t.Fatalf("rank %d: %s", rank, res.Err)
		}
		if len(res.C) != len(want[rank]) {
			t.Fatalf("rank %d: C block has %d elements, armci has %d", rank, len(res.C), len(want[rank]))
		}
		for i := range res.C {
			if math.Float64bits(res.C[i]) != math.Float64bits(want[rank][i]) {
				t.Fatalf("rank %d element %d: joined %v != armci %v (bit difference)",
					rank, i, res.C[i], want[rank][i])
			}
		}
	}

	cl.Close()
	for rank, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("joined worker %d did not exit cleanly: %v", rank, err)
		}
	}
}

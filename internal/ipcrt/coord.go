package ipcrt

// The coordinator: launches one worker process per rank, runs the control
// plane (hello, counting barrier, Malloc/Free segment registration),
// dispatches JobSpecs and collects RankResults. It lives in the launching
// process (a CLI, a test) — workers are re-executions of the same binary
// diverted by MaybeWorker, or an explicit cmd/srumma-worker path.
//
// Failure model: worker death is detected by the process watcher, not by
// a hung read — RunJob returns a *RankExitError naming the dead rank and
// its exit code or signal. A job that misses its watchdog with every
// process alive returns *DeadlockError with the unfinished ranks. Either
// way the cluster is poisoned (collective counters can no longer be
// trusted) and further jobs are refused; Close kills what remains.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"srumma/internal/obs"
	"srumma/internal/rt"
)

// Config describes a cluster launch.
type Config struct {
	// NP is the total rank count; PPN is ranks per emulated node (the
	// shared-memory domain size). 2 nodes x 2 ppn on one machine is
	// NP=4, PPN=2: ranks 0,1 mmap each other, ranks 2,3 likewise, and
	// everything across the 0,1|2,3 cut goes over the socket protocol.
	NP, PPN int
	// Dir is the run directory holding the coordinator socket, per-rank
	// RMA sockets and segment files. Empty = a fresh temp dir, removed
	// by Close. Unix socket paths are length-limited; keep it short.
	Dir string
	// WorkerPath is the worker executable. Empty = this executable,
	// re-executed (its main must call ipcrt.MaybeWorker first).
	WorkerPath string
	// Stderr receives worker stderr/stdout (default os.Stderr).
	Stderr io.Writer
	// LaunchTimeout bounds worker spawn+hello (default 30s).
	LaunchTimeout time.Duration
	// Transport selects the inter-node RMA transport: "unix" (default)
	// keeps every cross-node frame on unix-domain sockets; "tcp" makes
	// each worker open a TCP RMA listener too and publishes both in the
	// per-rank address table, so peers pick by address scheme — unix
	// inside a shared-memory domain, TCP across domains. The control
	// plane follows the same choice.
	Transport string
	// ListenAddr binds the coordinator's TCP control listener (Transport
	// "tcp" only; default "127.0.0.1:0"). With NoSpawn this is the
	// address external workers -join.
	ListenAddr string
	// NoSpawn skips launching worker processes: the coordinator just
	// waits for NP external workers (cmd/srumma-worker -join) to report
	// in. Death detection then rides on the control connection instead
	// of a process watcher.
	NoSpawn bool
	// SegPoolCap bounds the persistent segment pool: collectively freed
	// segments (and every mapping of them) are parked and reused by the
	// next Malloc with an identical per-rank size table, so steady-state
	// jobs pay zero mmap/creat calls. 0 = default (12), negative =
	// disable pooling.
	SegPoolCap int
}

// defaultSegPoolCap holds one GEMM job's three operand profiles for a few
// distinct shapes; exact-match reuse keeps correctness trivial (stale
// contents are fully overwritten by the next job's loads).
const defaultSegPoolCap = 12

// death is one observed worker-process exit.
type death struct {
	rank int
	code int
	sig  string
}

// pong is one heartbeat reply, matched to its ping by sequence number.
type pong struct {
	rank int
	seq  int64
}

type workerHandle struct {
	rank     int
	cmd      *exec.Cmd // nil for external (NoSpawn) workers
	external bool
	conn     net.Conn
	wmu      sync.Mutex
	exited   chan struct{}
}

func (w *workerHandle) write(f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, f)
}

// Cluster is a running set of worker processes.
type Cluster struct {
	topo   rt.Topology
	dir    string
	ownDir bool
	ln     net.Listener

	workers []*workerHandle

	// Collective state. Every rank runs the same SPMD program, so at most
	// one collective of each kind is in flight and counting suffices.
	collMu       sync.Mutex
	barrierCount int
	mallocCount  int
	mallocSizes  []int64
	freeCount    int
	freeSegID    int64
	segSeq       int64
	// The persistent segment pool: freed segments parked for exact
	// size-profile reuse, plus the size table of every live segment.
	segPoolCap int
	segPool    []pooledSeg
	segSizes   map[int64][]int64

	fins    chan *RankResult
	deaths  chan death
	pongs   chan pong
	pingSeq atomic.Int64

	mu       sync.Mutex
	poisoned error
	closed   bool
}

// pooledSeg is one parked segment: its id and the per-rank size table a
// future Malloc must match exactly to reuse it.
type pooledSeg struct {
	id    int64
	sizes []int64
}

// failGrace is how long RunJob waits for the remaining FINs after one
// rank reported a job failure (the others may be wedged in a collective
// the failed rank abandoned).
const failGrace = 2 * time.Second

// Launch starts NP workers and returns once every rank has said hello.
func Launch(cfg Config) (*Cluster, error) {
	topo := rt.Topology{NProcs: cfg.NP, ProcsPerNode: cfg.PPN}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if !Available() {
		return nil, fmt.Errorf("ipcrt: multi-process engine unavailable on this platform")
	}
	dir, ownDir := cfg.Dir, false
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "srumma-ipc")
		if err != nil {
			return nil, err
		}
		ownDir = true
	}
	workerPath := cfg.WorkerPath
	if workerPath == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("ipcrt: resolving own executable for worker re-exec: %w", err)
		}
		workerPath = exe
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	launchTimeout := cfg.LaunchTimeout
	if launchTimeout <= 0 {
		launchTimeout = 30 * time.Second
	}
	transport := cfg.Transport
	if transport == "" {
		transport = "unix"
	}
	if transport != "unix" && transport != "tcp" {
		if ownDir {
			os.RemoveAll(dir)
		}
		return nil, fmt.Errorf("ipcrt: unknown transport %q (want unix or tcp)", transport)
	}
	segPoolCap := cfg.SegPoolCap
	if segPoolCap == 0 {
		segPoolCap = defaultSegPoolCap
	} else if segPoolCap < 0 {
		segPoolCap = 0
	}

	// The control listener follows the transport so external workers can
	// -join over a real network address.
	var ln net.Listener
	var err error
	coordAddr := ""
	if transport == "tcp" {
		bind := cfg.ListenAddr
		if bind == "" {
			bind = "127.0.0.1:0"
		}
		ln, err = net.Listen("tcp", bind)
		if err == nil {
			coordAddr = "tcp:" + ln.Addr().String()
		}
	} else {
		ln, err = net.Listen("unix", coordSockPath(dir))
		coordAddr = "unix:" + coordSockPath(dir)
	}
	if err != nil {
		if ownDir {
			os.RemoveAll(dir)
		}
		return nil, fmt.Errorf("ipcrt: coordinator listener: %w", err)
	}

	cl := &Cluster{
		topo:        topo,
		dir:         dir,
		ownDir:      ownDir,
		ln:          ln,
		workers:     make([]*workerHandle, cfg.NP),
		mallocSizes: make([]int64, cfg.NP),
		segPoolCap:  segPoolCap,
		segSizes:    make(map[int64][]int64),
		fins:        make(chan *RankResult, cfg.NP),
		deaths:      make(chan death, cfg.NP*2),
		pongs:       make(chan pong, cfg.NP*4),
	}

	if !cfg.NoSpawn {
		for rank := 0; rank < cfg.NP; rank++ {
			cmd := exec.Command(workerPath)
			cmd.Env = append(os.Environ(),
				envWorker+"=1",
				envRank+"="+strconv.Itoa(rank),
				envNP+"="+strconv.Itoa(cfg.NP),
				envPPN+"="+strconv.Itoa(cfg.PPN),
				envDir+"="+dir,
				envCoord+"="+coordAddr,
				envTransport+"="+transport,
			)
			cmd.Stdout = stderr
			cmd.Stderr = stderr
			if err := cmd.Start(); err != nil {
				cl.killAll()
				cl.cleanup()
				return nil, fmt.Errorf("ipcrt: starting worker %d: %w", rank, err)
			}
			w := &workerHandle{rank: rank, cmd: cmd, exited: make(chan struct{})}
			cl.workers[rank] = w
			go func() {
				werr := cmd.Wait()
				code, sig := exitInfo(werr)
				cl.deaths <- death{rank: w.rank, code: code, sig: sig}
				close(w.exited)
			}()
		}
	}

	// Collect hellos: each inbound connection identifies its rank with
	// its first frame; P[1] advertises the worker's TCP RMA port (0 when
	// unix-only).
	rmaAddrs := make([]string, cfg.NP)
	conns := make(chan net.Conn)
	acceptErr := make(chan error, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			conns <- conn
		}
	}()
	deadline := time.After(launchTimeout)
	for need := cfg.NP; need > 0; {
		select {
		case conn := <-conns:
			conn.SetReadDeadline(time.Now().Add(launchTimeout))
			f, err := readFrame(conn)
			conn.SetReadDeadline(time.Time{})
			if err != nil || f.Op != opHello {
				conn.Close()
				continue
			}
			rank := int(f.P[0])
			if rank < 0 || rank >= cfg.NP {
				conn.Close()
				continue
			}
			if cl.workers[rank] == nil {
				cl.workers[rank] = &workerHandle{rank: rank, external: true, exited: make(chan struct{})}
			}
			if cl.workers[rank].conn != nil {
				conn.Close()
				continue
			}
			cl.workers[rank].conn = conn
			if port := f.P[1]; port > 0 && port <= 65535 {
				host := "127.0.0.1"
				if ra, ok := conn.RemoteAddr().(*net.TCPAddr); ok && ra.IP != nil && !ra.IP.IsUnspecified() {
					host = ra.IP.String()
				}
				rmaAddrs[rank] = "tcp:" + net.JoinHostPort(host, strconv.FormatInt(port, 10))
			}
			need--
		case d := <-cl.deaths:
			err := &RankExitError{Rank: d.rank, ExitCode: d.code, Signal: d.sig}
			cl.killAll()
			cl.cleanup()
			return nil, fmt.Errorf("ipcrt: worker died during launch: %w", err)
		case err := <-acceptErr:
			cl.killAll()
			cl.cleanup()
			return nil, fmt.Errorf("ipcrt: accepting workers: %w", err)
		case <-deadline:
			cl.killAll()
			cl.cleanup()
			return nil, fmt.Errorf("ipcrt: timed out waiting for workers to report in")
		}
	}

	// Broadcast the per-rank address table before any job: every rank's
	// entry lists its unix RMA socket and, when it opened one, its TCP
	// listener. Peers select by scheme — unix inside a shared-memory
	// domain, TCP across domains — which is what makes the transport a
	// per-peer decision instead of a global mode.
	table := make([]string, cfg.NP)
	for rank := range table {
		table[rank] = "unix:" + rankSockPath(dir, rank)
		if rmaAddrs[rank] != "" {
			table[rank] += "|" + rmaAddrs[rank]
		}
	}
	body, err := json.Marshal(table)
	if err != nil {
		cl.killAll()
		cl.cleanup()
		return nil, fmt.Errorf("ipcrt: marshaling address table: %w", err)
	}
	cl.broadcast(&frame{Op: opAddrs, Body: body})

	for _, w := range cl.workers {
		go cl.handleWorker(w)
	}
	return cl, nil
}

// Topo returns the cluster topology.
func (cl *Cluster) Topo() rt.Topology { return cl.topo }

// Dir returns the run directory.
func (cl *Cluster) Dir() string { return cl.dir }

// Addr returns the scheme-prefixed control-listener address external
// workers would -join ("tcp:host:port", or "unix:/path" for the default
// transport).
func (cl *Cluster) Addr() string {
	if cl.ln == nil {
		return ""
	}
	return cl.ln.Addr().Network() + ":" + cl.ln.Addr().String()
}

// handleWorker routes one worker's control frames.
func (cl *Cluster) handleWorker(w *workerHandle) {
	if w.external {
		// No process watcher for a joined worker: the control connection
		// is the liveness signal.
		defer func() {
			cl.mu.Lock()
			closed := cl.closed
			cl.mu.Unlock()
			if !closed {
				cl.deaths <- death{rank: w.rank, code: -1, sig: "control connection lost"}
			}
			close(w.exited)
		}()
	}
	for {
		f, err := readFrame(w.conn)
		if err != nil {
			return // process watcher (or the defer above) reports the death
		}
		switch f.Op {
		case opBarrier:
			cl.collBarrier()
		case opMalloc:
			cl.collMalloc(w.rank, f.P[0])
		case opFree:
			cl.collFree(f.P[0])
		case opPong:
			select {
			case cl.pongs <- pong{rank: w.rank, seq: f.P[0]}:
			default: // stale heartbeat backlog; drop
			}
		case opFin:
			res := &RankResult{Rank: w.rank}
			if err := json.Unmarshal(f.Body, res); err != nil {
				res.Err = fmt.Sprintf("unmarshaling FIN: %v", err)
			}
			cl.fins <- res
		default:
			// A confused worker; drop the frame. The job watchdog will
			// surface the stall if the protocol is truly broken.
		}
	}
}

func (cl *Cluster) broadcast(f *frame) {
	for _, w := range cl.workers {
		if w.conn != nil {
			w.write(f) // write errors surface via the process watcher
		}
	}
}

func (cl *Cluster) collBarrier() {
	cl.collMu.Lock()
	cl.barrierCount++
	done := cl.barrierCount == cl.topo.NProcs
	if done {
		cl.barrierCount = 0
	}
	cl.collMu.Unlock()
	if done {
		cl.broadcast(&frame{Op: opBarrierAck})
	}
}

// collMalloc completes when every rank has declared its size; a parked
// segment whose per-rank size table matches exactly is reused (P[1]=1 in
// the ack) so workers skip file creation and mmap entirely.
func (cl *Cluster) collMalloc(rank int, elems int64) {
	cl.collMu.Lock()
	cl.mallocSizes[rank] = elems
	cl.mallocCount++
	done := cl.mallocCount == cl.topo.NProcs
	var segID, reused int64
	var sizes []byte
	if done {
		cl.mallocCount = 0
		segID = -1
		for i, p := range cl.segPool {
			if sizesEqual(p.sizes, cl.mallocSizes) {
				segID, reused = p.id, 1
				cl.segPool = append(cl.segPool[:i], cl.segPool[i+1:]...)
				break
			}
		}
		if segID < 0 {
			segID = cl.segSeq
			cl.segSeq++
		}
		table := make([]int64, len(cl.mallocSizes))
		copy(table, cl.mallocSizes)
		cl.segSizes[segID] = table
		sizes = putInt64s(table)
	}
	cl.collMu.Unlock()
	if done {
		cl.broadcast(&frame{Op: opMallocAck, P: [5]int64{segID, reused}, Body: sizes})
	}
}

// collFree completes the release round. Instead of tearing the segment
// down, the coordinator parks it in the pool when there is room (P[0]=1
// in the ack tells every worker to keep its mappings).
func (cl *Cluster) collFree(segID int64) {
	cl.collMu.Lock()
	cl.freeSegID = segID
	cl.freeCount++
	done := cl.freeCount == cl.topo.NProcs
	var pooled int64
	if done {
		cl.freeCount = 0
		id := cl.freeSegID
		if sizes := cl.segSizes[id]; sizes != nil && len(cl.segPool) < cl.segPoolCap {
			cl.segPool = append(cl.segPool, pooledSeg{id: id, sizes: sizes})
			pooled = 1
		} else {
			delete(cl.segSizes, id)
		}
	}
	cl.collMu.Unlock()
	if done {
		cl.broadcast(&frame{Op: opFreeAck, P: [5]int64{pooled}})
	}
}

func sizesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

func (cl *Cluster) poison(err error) {
	cl.mu.Lock()
	if cl.poisoned == nil {
		cl.poisoned = err
	}
	cl.mu.Unlock()
}

// RunJob dispatches one spec to every rank and collects all results.
// timeout == 0 disables the watchdog. On worker death it returns
// *RankExitError (errors.Is rt.ErrRankExited); on a missed deadline with
// live processes, *DeadlockError (errors.Is rt.ErrRankDeadlocked). Both
// poison the cluster, as does any per-rank job failure — the collective
// counters can't be realigned once ranks diverge.
func (cl *Cluster) RunJob(spec *JobSpec, timeout time.Duration) ([]*RankResult, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, fmt.Errorf("ipcrt: RunJob on closed cluster")
	}
	if cl.poisoned != nil {
		err := cl.poisoned
		cl.mu.Unlock()
		return nil, fmt.Errorf("ipcrt: cluster poisoned by earlier failure: %w", err)
	}
	cl.mu.Unlock()

	// Drain deaths that occurred between jobs.
	select {
	case d := <-cl.deaths:
		err := &RankExitError{Rank: d.rank, ExitCode: d.code, Signal: d.sig}
		cl.poison(err)
		return nil, err
	default:
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("ipcrt: marshaling job spec: %w", err)
	}
	cl.broadcast(&frame{Op: opJob, Body: body})

	results := make([]*RankResult, cl.topo.NProcs)
	var watchdog <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		watchdog = t.C
	}
	var grace <-chan time.Time
	var jobErr error
	got := 0
	for got < cl.topo.NProcs {
		select {
		case res := <-cl.fins:
			if results[res.Rank] == nil {
				results[res.Rank] = res
				got++
			}
			if res.Err != "" && jobErr == nil {
				jobErr = &RankJobError{Rank: res.Rank, Msg: res.Err}
				g := time.NewTimer(failGrace)
				defer g.Stop()
				grace = g.C
			}
		case d := <-cl.deaths:
			err := &RankExitError{Rank: d.rank, ExitCode: d.code, Signal: d.sig}
			cl.poison(err)
			return results, err
		case <-grace:
			cl.poison(jobErr)
			return results, jobErr
		case <-watchdog:
			if jobErr != nil {
				cl.poison(jobErr)
				return results, jobErr
			}
			var pending []int
			for rank, r := range results {
				if r == nil {
					pending = append(pending, rank)
				}
			}
			err := &DeadlockError{Timeout: timeout, Pending: pending}
			cl.poison(err)
			return results, err
		}
	}
	if jobErr != nil {
		cl.poison(jobErr)
		return results, jobErr
	}
	return results, nil
}

// Ping broadcasts a heartbeat and waits for every rank's matching pong —
// the node supervisor's between-jobs health check. A missed deadline or a
// death poisons the cluster exactly like a failed job: a rank that cannot
// answer a ping cannot be trusted to count collectives either.
func (cl *Cluster) Ping(timeout time.Duration) error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return fmt.Errorf("ipcrt: Ping on closed cluster")
	}
	if cl.poisoned != nil {
		err := cl.poisoned
		cl.mu.Unlock()
		return fmt.Errorf("ipcrt: cluster poisoned by earlier failure: %w", err)
	}
	cl.mu.Unlock()

	seq := cl.pingSeq.Add(1)
	cl.broadcast(&frame{Op: opPing, P: [5]int64{seq}})
	t := time.NewTimer(timeout)
	defer t.Stop()
	seen := make([]bool, cl.topo.NProcs)
	for need := cl.topo.NProcs; need > 0; {
		select {
		case p := <-cl.pongs:
			if p.seq == seq && !seen[p.rank] {
				seen[p.rank] = true
				need--
			}
		case d := <-cl.deaths:
			err := &RankExitError{Rank: d.rank, ExitCode: d.code, Signal: d.sig}
			cl.poison(err)
			return err
		case <-t.C:
			var pending []int
			for rank, ok := range seen {
				if !ok {
					pending = append(pending, rank)
				}
			}
			err := &DeadlockError{Timeout: timeout, Pending: pending}
			cl.poison(err)
			return err
		}
	}
	return nil
}

// Kill forcibly terminates one worker (supervision tests: an induced
// death the heartbeat or the next job must surface as rt.ErrRankExited).
func (cl *Cluster) Kill(rank int) error {
	if rank < 0 || rank >= len(cl.workers) || cl.workers[rank] == nil {
		return fmt.Errorf("ipcrt: Kill(%d): no such worker", rank)
	}
	w := cl.workers[rank]
	if w.cmd != nil && w.cmd.Process != nil {
		return w.cmd.Process.Kill()
	}
	if w.conn != nil {
		return w.conn.Close()
	}
	return nil
}

// killAll forcibly terminates every worker process.
func (cl *Cluster) killAll() {
	for _, w := range cl.workers {
		if w == nil {
			continue
		}
		if w.cmd != nil && w.cmd.Process != nil {
			w.cmd.Process.Kill()
		} else if w.conn != nil {
			w.conn.Close()
		}
	}
}

func (cl *Cluster) cleanup() {
	if cl.ln != nil {
		cl.ln.Close()
	}
	if cl.ownDir {
		os.RemoveAll(cl.dir)
	}
}

// Close shuts the cluster down: polite shutdown frames, a grace period,
// then SIGKILL for stragglers. Idempotent.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cl.mu.Unlock()

	cl.broadcast(&frame{Op: opShutdown})
	deadline := time.After(2 * time.Second)
	for _, w := range cl.workers {
		if w == nil || w.conn == nil {
			continue
		}
		select {
		case <-w.exited:
		case <-deadline:
			if w.cmd != nil && w.cmd.Process != nil {
				w.cmd.Process.Kill()
			} else {
				w.conn.Close()
			}
			<-w.exited
		}
	}
	cl.cleanup()
	return nil
}

// MergeEvents shifts per-worker trace events onto the given epoch (the
// coordinator-side recorder's) using each result's worker epoch: all
// processes share one machine clock, so a plain offset aligns the lanes.
func MergeEvents(results []*RankResult, epoch time.Time) []obs.Event {
	var out []obs.Event
	for _, r := range results {
		if r == nil {
			continue
		}
		shift := float64(r.EpochUnixNano-epoch.UnixNano()) / 1e9
		for _, e := range r.Events {
			e.Start += shift
			e.End += shift
			out = append(out, e)
		}
	}
	return out
}

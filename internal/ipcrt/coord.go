package ipcrt

// The coordinator: launches one worker process per rank, runs the control
// plane (hello, counting barrier, Malloc/Free segment registration),
// dispatches JobSpecs and collects RankResults. It lives in the launching
// process (a CLI, a test) — workers are re-executions of the same binary
// diverted by MaybeWorker, or an explicit cmd/srumma-worker path.
//
// Failure model: worker death is detected by the process watcher, not by
// a hung read — RunJob returns a *RankExitError naming the dead rank and
// its exit code or signal. A job that misses its watchdog with every
// process alive returns *DeadlockError with the unfinished ranks. Either
// way the cluster is poisoned (collective counters can no longer be
// trusted) and further jobs are refused; Close kills what remains.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"srumma/internal/obs"
	"srumma/internal/rt"
)

// Config describes a cluster launch.
type Config struct {
	// NP is the total rank count; PPN is ranks per emulated node (the
	// shared-memory domain size). 2 nodes x 2 ppn on one machine is
	// NP=4, PPN=2: ranks 0,1 mmap each other, ranks 2,3 likewise, and
	// everything across the 0,1|2,3 cut goes over the socket protocol.
	NP, PPN int
	// Dir is the run directory holding the coordinator socket, per-rank
	// RMA sockets and segment files. Empty = a fresh temp dir, removed
	// by Close. Unix socket paths are length-limited; keep it short.
	Dir string
	// WorkerPath is the worker executable. Empty = this executable,
	// re-executed (its main must call ipcrt.MaybeWorker first).
	WorkerPath string
	// Stderr receives worker stderr/stdout (default os.Stderr).
	Stderr io.Writer
	// LaunchTimeout bounds worker spawn+hello (default 30s).
	LaunchTimeout time.Duration
}

// death is one observed worker-process exit.
type death struct {
	rank int
	code int
	sig  string
}

type workerHandle struct {
	rank   int
	cmd    *exec.Cmd
	conn   net.Conn
	wmu    sync.Mutex
	exited chan struct{}
}

func (w *workerHandle) write(f *frame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return writeFrame(w.conn, f)
}

// Cluster is a running set of worker processes.
type Cluster struct {
	topo   rt.Topology
	dir    string
	ownDir bool
	ln     net.Listener

	workers []*workerHandle

	// Collective state. Every rank runs the same SPMD program, so at most
	// one collective of each kind is in flight and counting suffices.
	collMu       sync.Mutex
	barrierCount int
	mallocCount  int
	mallocSizes  []int64
	freeCount    int
	segSeq       int64

	fins   chan *RankResult
	deaths chan death

	mu       sync.Mutex
	poisoned error
	closed   bool
}

// failGrace is how long RunJob waits for the remaining FINs after one
// rank reported a job failure (the others may be wedged in a collective
// the failed rank abandoned).
const failGrace = 2 * time.Second

// Launch starts NP workers and returns once every rank has said hello.
func Launch(cfg Config) (*Cluster, error) {
	topo := rt.Topology{NProcs: cfg.NP, ProcsPerNode: cfg.PPN}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if !Available() {
		return nil, fmt.Errorf("ipcrt: multi-process engine unavailable on this platform")
	}
	dir, ownDir := cfg.Dir, false
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "srumma-ipc")
		if err != nil {
			return nil, err
		}
		ownDir = true
	}
	workerPath := cfg.WorkerPath
	if workerPath == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("ipcrt: resolving own executable for worker re-exec: %w", err)
		}
		workerPath = exe
	}
	stderr := cfg.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	launchTimeout := cfg.LaunchTimeout
	if launchTimeout <= 0 {
		launchTimeout = 30 * time.Second
	}

	ln, err := net.Listen("unix", coordSockPath(dir))
	if err != nil {
		if ownDir {
			os.RemoveAll(dir)
		}
		return nil, fmt.Errorf("ipcrt: coordinator listener: %w", err)
	}

	cl := &Cluster{
		topo:        topo,
		dir:         dir,
		ownDir:      ownDir,
		ln:          ln,
		workers:     make([]*workerHandle, cfg.NP),
		mallocSizes: make([]int64, cfg.NP),
		fins:        make(chan *RankResult, cfg.NP),
		deaths:      make(chan death, cfg.NP*2),
	}

	for rank := 0; rank < cfg.NP; rank++ {
		cmd := exec.Command(workerPath)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envRank+"="+strconv.Itoa(rank),
			envNP+"="+strconv.Itoa(cfg.NP),
			envPPN+"="+strconv.Itoa(cfg.PPN),
			envDir+"="+dir,
		)
		cmd.Stdout = stderr
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			cl.killAll()
			cl.cleanup()
			return nil, fmt.Errorf("ipcrt: starting worker %d: %w", rank, err)
		}
		w := &workerHandle{rank: rank, cmd: cmd, exited: make(chan struct{})}
		cl.workers[rank] = w
		go func() {
			werr := cmd.Wait()
			code, sig := exitInfo(werr)
			cl.deaths <- death{rank: w.rank, code: code, sig: sig}
			close(w.exited)
		}()
	}

	// Collect hellos: each inbound connection identifies its rank with
	// its first frame.
	conns := make(chan net.Conn)
	acceptErr := make(chan error, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			conns <- conn
		}
	}()
	deadline := time.After(launchTimeout)
	for need := cfg.NP; need > 0; {
		select {
		case conn := <-conns:
			conn.SetReadDeadline(time.Now().Add(launchTimeout))
			f, err := readFrame(conn)
			conn.SetReadDeadline(time.Time{})
			if err != nil || f.Op != opHello {
				conn.Close()
				continue
			}
			rank := int(f.P[0])
			if rank < 0 || rank >= cfg.NP || cl.workers[rank].conn != nil {
				conn.Close()
				continue
			}
			cl.workers[rank].conn = conn
			need--
		case d := <-cl.deaths:
			err := &RankExitError{Rank: d.rank, ExitCode: d.code, Signal: d.sig}
			cl.killAll()
			cl.cleanup()
			return nil, fmt.Errorf("ipcrt: worker died during launch: %w", err)
		case err := <-acceptErr:
			cl.killAll()
			cl.cleanup()
			return nil, fmt.Errorf("ipcrt: accepting workers: %w", err)
		case <-deadline:
			cl.killAll()
			cl.cleanup()
			return nil, fmt.Errorf("ipcrt: timed out waiting for workers to report in")
		}
	}
	for _, w := range cl.workers {
		go cl.handleWorker(w)
	}
	return cl, nil
}

// Topo returns the cluster topology.
func (cl *Cluster) Topo() rt.Topology { return cl.topo }

// Dir returns the run directory.
func (cl *Cluster) Dir() string { return cl.dir }

// handleWorker routes one worker's control frames.
func (cl *Cluster) handleWorker(w *workerHandle) {
	for {
		f, err := readFrame(w.conn)
		if err != nil {
			return // process watcher reports the death
		}
		switch f.Op {
		case opBarrier:
			cl.collBarrier()
		case opMalloc:
			cl.collMalloc(w.rank, f.P[0])
		case opFree:
			cl.collFree()
		case opFin:
			res := &RankResult{Rank: w.rank}
			if err := json.Unmarshal(f.Body, res); err != nil {
				res.Err = fmt.Sprintf("unmarshaling FIN: %v", err)
			}
			cl.fins <- res
		default:
			// A confused worker; drop the frame. The job watchdog will
			// surface the stall if the protocol is truly broken.
		}
	}
}

func (cl *Cluster) broadcast(f *frame) {
	for _, w := range cl.workers {
		if w.conn != nil {
			w.write(f) // write errors surface via the process watcher
		}
	}
}

func (cl *Cluster) collBarrier() {
	cl.collMu.Lock()
	cl.barrierCount++
	done := cl.barrierCount == cl.topo.NProcs
	if done {
		cl.barrierCount = 0
	}
	cl.collMu.Unlock()
	if done {
		cl.broadcast(&frame{Op: opBarrierAck})
	}
}

func (cl *Cluster) collMalloc(rank int, elems int64) {
	cl.collMu.Lock()
	cl.mallocSizes[rank] = elems
	cl.mallocCount++
	done := cl.mallocCount == cl.topo.NProcs
	var segID int64
	var sizes []byte
	if done {
		cl.mallocCount = 0
		segID = cl.segSeq
		cl.segSeq++
		sizes = putInt64s(cl.mallocSizes)
	}
	cl.collMu.Unlock()
	if done {
		cl.broadcast(&frame{Op: opMallocAck, P: [5]int64{segID}, Body: sizes})
	}
}

func (cl *Cluster) collFree() {
	cl.collMu.Lock()
	cl.freeCount++
	done := cl.freeCount == cl.topo.NProcs
	if done {
		cl.freeCount = 0
	}
	cl.collMu.Unlock()
	if done {
		cl.broadcast(&frame{Op: opFreeAck})
	}
}

func (cl *Cluster) poison(err error) {
	cl.mu.Lock()
	if cl.poisoned == nil {
		cl.poisoned = err
	}
	cl.mu.Unlock()
}

// RunJob dispatches one spec to every rank and collects all results.
// timeout == 0 disables the watchdog. On worker death it returns
// *RankExitError (errors.Is rt.ErrRankExited); on a missed deadline with
// live processes, *DeadlockError (errors.Is rt.ErrRankDeadlocked). Both
// poison the cluster, as does any per-rank job failure — the collective
// counters can't be realigned once ranks diverge.
func (cl *Cluster) RunJob(spec *JobSpec, timeout time.Duration) ([]*RankResult, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, fmt.Errorf("ipcrt: RunJob on closed cluster")
	}
	if cl.poisoned != nil {
		err := cl.poisoned
		cl.mu.Unlock()
		return nil, fmt.Errorf("ipcrt: cluster poisoned by earlier failure: %w", err)
	}
	cl.mu.Unlock()

	// Drain deaths that occurred between jobs.
	select {
	case d := <-cl.deaths:
		err := &RankExitError{Rank: d.rank, ExitCode: d.code, Signal: d.sig}
		cl.poison(err)
		return nil, err
	default:
	}

	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("ipcrt: marshaling job spec: %w", err)
	}
	cl.broadcast(&frame{Op: opJob, Body: body})

	results := make([]*RankResult, cl.topo.NProcs)
	var watchdog <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		watchdog = t.C
	}
	var grace <-chan time.Time
	var jobErr error
	got := 0
	for got < cl.topo.NProcs {
		select {
		case res := <-cl.fins:
			if results[res.Rank] == nil {
				results[res.Rank] = res
				got++
			}
			if res.Err != "" && jobErr == nil {
				jobErr = &RankJobError{Rank: res.Rank, Msg: res.Err}
				g := time.NewTimer(failGrace)
				defer g.Stop()
				grace = g.C
			}
		case d := <-cl.deaths:
			err := &RankExitError{Rank: d.rank, ExitCode: d.code, Signal: d.sig}
			cl.poison(err)
			return results, err
		case <-grace:
			cl.poison(jobErr)
			return results, jobErr
		case <-watchdog:
			if jobErr != nil {
				cl.poison(jobErr)
				return results, jobErr
			}
			var pending []int
			for rank, r := range results {
				if r == nil {
					pending = append(pending, rank)
				}
			}
			err := &DeadlockError{Timeout: timeout, Pending: pending}
			cl.poison(err)
			return results, err
		}
	}
	if jobErr != nil {
		cl.poison(jobErr)
		return results, jobErr
	}
	return results, nil
}

// killAll forcibly terminates every worker process.
func (cl *Cluster) killAll() {
	for _, w := range cl.workers {
		if w != nil && w.cmd.Process != nil {
			w.cmd.Process.Kill()
		}
	}
}

func (cl *Cluster) cleanup() {
	if cl.ln != nil {
		cl.ln.Close()
	}
	if cl.ownDir {
		os.RemoveAll(cl.dir)
	}
}

// Close shuts the cluster down: polite shutdown frames, a grace period,
// then SIGKILL for stragglers. Idempotent.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	cl.mu.Unlock()

	cl.broadcast(&frame{Op: opShutdown})
	deadline := time.After(2 * time.Second)
	for _, w := range cl.workers {
		if w == nil || w.conn == nil {
			continue
		}
		select {
		case <-w.exited:
		case <-deadline:
			w.cmd.Process.Kill()
			<-w.exited
		}
	}
	cl.cleanup()
	return nil
}

// MergeEvents shifts per-worker trace events onto the given epoch (the
// coordinator-side recorder's) using each result's worker epoch: all
// processes share one machine clock, so a plain offset aligns the lanes.
func MergeEvents(results []*RankResult, epoch time.Time) []obs.Event {
	var out []obs.Event
	for _, r := range results {
		if r == nil {
			continue
		}
		shift := float64(r.EpochUnixNano-epoch.UnixNano()) / 1e9
		for _, e := range r.Events {
			e.Start += shift
			e.End += shift
			out = append(out, e)
		}
	}
	return out
}

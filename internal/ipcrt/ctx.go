package ipcrt

// The per-worker rt.Ctx. One instance lives in each worker process and is
// handed to every job body that process runs.
//
// Memory model. Three kinds of goroutine touch float data in one worker
// process: the rank goroutine (the SPMD body), the per-connection RMA
// server goroutines (peers' Get/Put/Acc landing in this rank's segments),
// and the peer-connection reader goroutines (responses landing in this
// rank's destination buffers). Cross-PROCESS ordering is the algorithm's
// responsibility (SPMD barrier discipline, same as real ARMCI). In-PROCESS
// ordering — which the race detector checks — is built from two edges:
//
//   - completion handles: a reader goroutine writes the destination buffer,
//     then closes the handle channel; the rank goroutine reads only after
//     Wait. Channel close is the happens-before edge.
//   - the hb mutex: server goroutines hold hbMu while touching segment
//     memory, and Barrier lock/unlocks hbMu after the coordinator ack.
//     A segment write by the rank goroutine before a barrier is therefore
//     ordered before any later served remote read, and a served remote
//     write is ordered before the rank goroutine's post-barrier reads —
//     the in-process shadow of the cross-process barrier ordering.

import (
	"fmt"
	"math"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"srumma/internal/mat"
	"srumma/internal/obs"
	"srumma/internal/rt"
)

const kindSteal = obs.KindSteal

// buf is a process-local float64 buffer — either LocalBuf scratch or a
// view of an mmap segment (Local/Direct).
type buf struct {
	data []float64
}

func (b *buf) Len() int { return len(b.data) }

func bdata(x rt.Buffer) []float64 {
	b, ok := x.(*buf)
	if !ok {
		panic(fmt.Sprintf("ipcrt: foreign buffer type %T", x))
	}
	return b.data
}

// ipcGlobal is the caller-facing handle of a collectively registered
// segment set; the authoritative mapping state lives in ctx.segs.
type ipcGlobal struct {
	id    int64
	sizes []int
}

func (g *ipcGlobal) LenAt(rank int) int { return g.sizes[rank] }

// segment tracks this process's mappings of one Global: its own segment
// (created at Malloc) plus lazily-opened same-node peer segments.
type segment struct {
	id    int64
	sizes []int
	maps  map[int]*segMap
}

type ipcCtx struct {
	rank int
	topo rt.Topology
	dir  string

	coord *coordClient

	// hbMu builds the in-process happens-before edges described above.
	hbMu sync.Mutex
	mbox *mailbox

	segMu sync.Mutex
	segs  map[int64]*segment
	// pooled holds collectively freed segments the coordinator parked:
	// every mapping (own and peer) stays live so a reusing Malloc pays
	// zero mmap or file-system calls.
	pooled map[int64]*segment

	peerMu sync.Mutex
	peers  map[int]*peerConn

	rec   atomic.Pointer[obs.Recorder]
	stats *rt.Stats
	start time.Time

	kernelThreads int
	directMaps    int64
	// mmapMallocs counts segment-file create+mmap calls over the process
	// lifetime (never reset): the steady-state reuse test pins it flat
	// across same-shape jobs.
	mmapMallocs int64
	// tcpPeers counts peer connections dialed over TCP (process
	// lifetime), proving the cross-domain scheme selection fired.
	tcpPeers int64
}

func newCtx(rank int, topo rt.Topology, dir string, coord *coordClient) *ipcCtx {
	return &ipcCtx{
		rank:          rank,
		topo:          topo,
		dir:           dir,
		coord:         coord,
		mbox:          newMailbox(),
		segs:          make(map[int64]*segment),
		pooled:        make(map[int64]*segment),
		peers:         make(map[int]*peerConn),
		stats:         &rt.Stats{},
		start:         time.Now(),
		kernelThreads: max(1, goruntime.GOMAXPROCS(0)/topo.NProcs),
	}
}

func float64bits(v float64) int64     { return int64(math.Float64bits(v)) }
func float64frombits(b int64) float64 { return math.Float64frombits(uint64(b)) }

func (c *ipcCtx) Rank() int         { return c.rank }
func (c *ipcCtx) Size() int         { return c.topo.NProcs }
func (c *ipcCtx) Topo() rt.Topology { return c.topo }
func (c *ipcCtx) Now() float64      { return time.Since(c.start).Seconds() }
func (c *ipcCtx) Stats() *rt.Stats  { return c.stats }

// ObsRecorder implements rt.Recorded.
func (c *ipcCtx) ObsRecorder() *obs.Recorder { return c.rec.Load() }

// SetKernelThreads implements rt.KernelTuner. The default mirrors armci's
// oversubscription guard: NProcs worker PROCESSES share this machine, so
// each rank's dgemm gets an equal share of the cores.
func (c *ipcCtx) SetKernelThreads(n int) {
	if n <= 0 {
		n = max(1, goruntime.GOMAXPROCS(0)/c.topo.NProcs)
	}
	c.kernelThreads = n
}

// DirectMaps reports how many distinct peer segments this rank has mapped
// for direct load/store access (the intra-node fast-path counter shipped
// in RankResult).
func (c *ipcCtx) DirectMaps() int64 { return c.directMaps }

// MmapMallocs reports lifetime segment-file create+mmap calls; flat across
// same-shape jobs when the segment pool is doing its job.
func (c *ipcCtx) MmapMallocs() int64 { return c.mmapMallocs }

// TCPPeers reports lifetime peer connections dialed over TCP.
func (c *ipcCtx) TCPPeers() int64 { return c.tcpPeers }

func (c *ipcCtx) spanStart() time.Time {
	if c.rec.Load() == nil {
		return time.Time{}
	}
	return time.Now()
}

func (c *ipcCtx) span(k obs.Kind, t0 time.Time) {
	rec := c.rec.Load()
	if rec == nil || t0.IsZero() {
		return
	}
	rec.RecordWall(c.rank, k, t0, time.Now())
}

func (c *ipcCtx) segPath(segID int64, rank int) string {
	return segFilePath(c.dir, segID, rank)
}

// ownData returns this rank's own float view of segID (created at Malloc,
// so present whenever the segment is registered). Safe from any goroutine.
func (c *ipcCtx) ownData(segID int64) ([]float64, bool) {
	c.segMu.Lock()
	defer c.segMu.Unlock()
	seg := c.segs[segID]
	if seg == nil {
		return nil, false
	}
	if m := seg.maps[c.rank]; m != nil {
		return m.data, true
	}
	return nil, true
}

// mapping returns the segMap of rank's segment, lazily mapping same-node
// peer files on first use (the Direct fast path). Panics outside the
// shared-memory domain — cross-node access must go through the socket.
func (c *ipcCtx) mapping(segID int64, rank int) *segMap {
	c.segMu.Lock()
	seg := c.segs[segID]
	var m *segMap
	if seg != nil {
		m = seg.maps[rank]
	}
	c.segMu.Unlock()
	if m != nil {
		return m
	}
	if seg == nil {
		panic(fmt.Sprintf("ipcrt: unknown segment %d", segID))
	}
	if !c.topo.SameDomain(c.rank, rank) {
		panic(fmt.Sprintf("ipcrt: rank %d cannot map rank %d's segment (different domains)", c.rank, rank))
	}
	m, err := mapSegment(c.segPath(segID, rank), seg.sizes[rank], false)
	if err != nil {
		panic(err)
	}
	c.directMaps++
	c.segMu.Lock()
	if prev := seg.maps[rank]; prev != nil {
		m2 := m
		c.segMu.Unlock()
		m2.unmap()
		return prev
	}
	seg.maps[rank] = m
	c.segMu.Unlock()
	return m
}

// peerAddr resolves rank's RMA address from the coordinator's table,
// picking the scheme per peer: unix inside this rank's shared-memory
// domain, TCP across domains when the peer advertised one. Without a
// table (raw-ctx tests), the conventional unix socket path.
func (c *ipcCtx) peerAddr(rank int) string {
	var table []string
	if c.coord != nil {
		table = c.coord.peerAddrs
	}
	if rank < len(table) && table[rank] != "" {
		return pickAddr(table[rank], c.topo.SameDomain(c.rank, rank))
	}
	return "unix:" + rankSockPath(c.dir, rank)
}

// peer returns the lazily-dialed RMA connection to rank (including this
// rank itself — atomics route through the owner's server unconditionally).
func (c *ipcCtx) peer(rank int) *peerConn {
	c.peerMu.Lock()
	defer c.peerMu.Unlock()
	if pc := c.peers[rank]; pc != nil {
		return pc
	}
	addr := c.peerAddr(rank)
	pc, err := dialPeer(addr, rank)
	if err != nil {
		panic(err)
	}
	if schemeOf(addr) == "tcp" {
		c.tcpPeers++
	}
	c.peers[rank] = pc
	return pc
}

// ---- collective memory ----

func (c *ipcCtx) Malloc(elems int) rt.Global {
	if elems < 0 || int64(elems) > maxElems {
		panic(fmt.Sprintf("ipcrt: Malloc(%d)", elems))
	}
	segID, sizes, reused := c.coord.malloc(elems)
	var seg *segment
	if reused {
		// The coordinator matched a parked segment with this exact size
		// profile: reinstate it, mappings and all. Pool membership is
		// collective (the freeAck that parked it was broadcast), so the
		// segment must be present on every rank.
		c.segMu.Lock()
		seg = c.pooled[segID]
		delete(c.pooled, segID)
		if seg == nil {
			c.segMu.Unlock()
			panic(fmt.Sprintf("ipcrt: coordinator reused segment %d this rank never pooled", segID))
		}
		if got := seg.sizes[c.rank]; got != elems {
			c.segMu.Unlock()
			panic(fmt.Sprintf("ipcrt: pooled segment %d holds %d elems, Malloc wants %d", segID, got, elems))
		}
		c.segs[segID] = seg
		c.segMu.Unlock()
	} else {
		m, err := mapSegment(c.segPath(segID, c.rank), elems, true)
		if err != nil {
			panic(err)
		}
		c.mmapMallocs++
		seg = &segment{id: segID, sizes: sizes, maps: map[int]*segMap{c.rank: m}}
		c.segMu.Lock()
		c.segs[segID] = seg
		c.segMu.Unlock()
	}
	// Registration barrier: every rank's file exists and is sized (or its
	// pooled mappings reinstated) before anyone maps or RMAs it.
	c.Barrier()
	return &ipcGlobal{id: segID, sizes: sizes}
}

func (c *ipcCtx) Free(g rt.Global) {
	gg := g.(*ipcGlobal)
	// Collective: the barrier guarantees no rank still has ops in flight
	// against the segment before any mapping is torn down or parked.
	pooled := c.coord.free(gg.id)
	c.Barrier()
	c.segMu.Lock()
	seg := c.segs[gg.id]
	delete(c.segs, gg.id)
	if pooled && seg != nil {
		// Parked for reuse: keep the file and every mapping live. RMA
		// service for the id stops (ownData misses) until a Malloc
		// reinstates it.
		c.pooled[gg.id] = seg
		c.segMu.Unlock()
		return
	}
	c.segMu.Unlock()
	if seg == nil {
		return
	}
	for _, m := range seg.maps {
		m.unmap()
	}
	removeSegFile(c.segPath(gg.id, c.rank))
}

func (c *ipcCtx) LocalBuf(elems int) rt.Buffer {
	c.stats.ScratchBytes += int64(elems) * 8
	if elems <= 0 {
		return &buf{}
	}
	return &buf{data: make([]float64, elems)}
}

func (c *ipcCtx) Local(g rt.Global) rt.Buffer {
	gg := g.(*ipcGlobal)
	return &buf{data: c.mapping(gg.id, c.rank).data}
}

func (c *ipcCtx) CanDirect(rank int) bool {
	return c.topo.SameDomain(c.rank, rank)
}

func (c *ipcCtx) Direct(g rt.Global, rank int) rt.Buffer {
	if !c.CanDirect(rank) {
		panic(fmt.Sprintf("ipcrt: rank %d cannot direct-access rank %d (different domains)", c.rank, rank))
	}
	gg := g.(*ipcGlobal)
	return &buf{data: c.mapping(gg.id, rank).data}
}

// ---- one-sided operations ----

// directGet is the intra-node load path: a memcpy out of the owner's
// mmap segment.
func (c *ipcCtx) directGet(gg *ipcGlobal, rank, off, n int, d []float64, dstOff int) {
	t0 := c.spanStart()
	src := c.mapping(gg.id, rank).data
	if off < 0 || off+n > len(src) || dstOff < 0 || dstOff+n > len(d) {
		panic(fmt.Sprintf("ipcrt: Get range [%d,%d) of %d -> [%d,%d) of %d",
			off, off+n, len(src), dstOff, dstOff+n, len(d)))
	}
	copy(d[dstOff:dstOff+n], src[off:off+n])
	c.stats.BytesShared += int64(n) * 8
	c.stats.GetsShared++
	c.span(obs.KindGet, t0)
}

func (c *ipcCtx) Get(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) {
	if c.CanDirect(rank) {
		c.directGet(g.(*ipcGlobal), rank, off, n, bdata(dst), dstOff)
		return
	}
	c.Wait(c.NbGet(g, rank, off, n, dst, dstOff))
}

func (c *ipcCtx) NbGet(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) rt.Handle {
	gg := g.(*ipcGlobal)
	d := bdata(dst)
	if c.CanDirect(rank) {
		c.directGet(gg, rank, off, n, d, dstOff)
		return doneHandle{}
	}
	if off < 0 || n < 0 || off+n > gg.sizes[rank] || dstOff < 0 || dstOff+n > len(d) {
		panic(fmt.Sprintf("ipcrt: NbGet range [%d,%d) of %d -> [%d,%d) of %d",
			off, off+n, gg.sizes[rank], dstOff, dstOff+n, len(d)))
	}
	c.stats.BytesRemote += int64(n) * 8
	c.stats.GetsRemote++
	h := newOpHandle()
	dstSlice := d[dstOff : dstOff+n]
	rec := c.rec.Load()
	lane := c.rank
	t0 := time.Now()
	c.peer(rank).issue(
		&frame{Op: opGet, P: [5]int64{gg.id, int64(off), int64(n)}},
		&pendingOp{h: h, complete: func(f *frame) error {
			if len(f.Body) != n*8 {
				return fmt.Errorf("ipcrt: get of %d elements returned %d bytes", n, len(f.Body))
			}
			copyFloats(dstSlice, f.Body)
			if rec != nil {
				rec.RecordWall(lane, obs.KindGet, t0, time.Now())
			}
			return nil
		}},
	)
	return h
}

func (c *ipcCtx) NbGetSub(g rt.Global, rank, off, ld, rows, cols int, dst rt.Buffer, dstOff int) rt.Handle {
	gg := g.(*ipcGlobal)
	d := bdata(dst)
	if rows < 0 || cols < 0 || ld < cols || off < 0 {
		panic(fmt.Sprintf("ipcrt: NbGetSub malformed region %dx%d ld=%d off=%d", rows, cols, ld, off))
	}
	if dstOff < 0 || dstOff+rows*cols > len(d) {
		panic(fmt.Sprintf("ipcrt: NbGetSub dst [%d,%d) of %d", dstOff, dstOff+rows*cols, len(d)))
	}
	if c.CanDirect(rank) {
		t0 := c.spanStart()
		src := c.mapping(gg.id, rank).data
		if rows > 0 && cols > 0 {
			if last := off + (rows-1)*ld + cols; last > len(src) {
				panic(fmt.Sprintf("ipcrt: NbGetSub region ends at %d of %d", last, len(src)))
			}
		}
		for r := 0; r < rows; r++ {
			copy(d[dstOff+r*cols:dstOff+(r+1)*cols], src[off+r*ld:off+r*ld+cols])
		}
		c.stats.BytesShared += int64(rows*cols) * 8
		c.stats.GetsShared++
		c.span(obs.KindGet, t0)
		return doneHandle{}
	}
	n := rows * cols
	c.stats.BytesRemote += int64(n) * 8
	c.stats.GetsRemote++
	h := newOpHandle()
	dstSlice := d[dstOff : dstOff+n]
	rec := c.rec.Load()
	lane := c.rank
	t0 := time.Now()
	c.peer(rank).issue(
		&frame{Op: opGetSub, P: [5]int64{gg.id, int64(off), int64(ld), int64(rows), int64(cols)}},
		&pendingOp{h: h, complete: func(f *frame) error {
			if len(f.Body) != n*8 {
				return fmt.Errorf("ipcrt: get-sub of %d elements returned %d bytes", n, len(f.Body))
			}
			copyFloats(dstSlice, f.Body)
			if rec != nil {
				rec.RecordWall(lane, obs.KindGet, t0, time.Now())
			}
			return nil
		}},
	)
	return h
}

func (c *ipcCtx) Put(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) {
	c.Wait(c.NbPut(src, srcOff, n, g, rank, off))
}

func (c *ipcCtx) NbPut(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) rt.Handle {
	gg := g.(*ipcGlobal)
	s := bdata(src)
	if srcOff < 0 || n < 0 || srcOff+n > len(s) || off < 0 || off+n > gg.sizes[rank] {
		panic(fmt.Sprintf("ipcrt: Put range [%d,%d) of %d -> [%d,%d) of %d",
			srcOff, srcOff+n, len(s), off, off+n, gg.sizes[rank]))
	}
	c.stats.Puts++
	if c.CanDirect(rank) {
		t0 := c.spanStart()
		d := c.mapping(gg.id, rank).data
		copy(d[off:off+n], s[srcOff:srcOff+n])
		c.stats.BytesShared += int64(n) * 8
		c.span(obs.KindPut, t0)
		return doneHandle{}
	}
	c.stats.BytesRemote += int64(n) * 8
	h := newOpHandle()
	rec := c.rec.Load()
	lane := c.rank
	t0 := time.Now()
	c.peer(rank).issue(
		&frame{Op: opPut, P: [5]int64{gg.id, int64(off)}, Body: floatBytes(s[srcOff : srcOff+n])},
		&pendingOp{h: h, complete: func(f *frame) error {
			if rec != nil {
				rec.RecordWall(lane, obs.KindPut, t0, time.Now())
			}
			return nil
		}},
	)
	return h
}

func (c *ipcCtx) NbPutSub(src rt.Buffer, srcOff int, g rt.Global, rank, off, ld, rows, cols int) rt.Handle {
	gg := g.(*ipcGlobal)
	s := bdata(src)
	if rows < 0 || cols < 0 || ld < cols || off < 0 {
		panic(fmt.Sprintf("ipcrt: NbPutSub malformed region %dx%d ld=%d off=%d", rows, cols, ld, off))
	}
	n := rows * cols
	if srcOff < 0 || srcOff+n > len(s) {
		panic(fmt.Sprintf("ipcrt: NbPutSub src [%d,%d) of %d", srcOff, srcOff+n, len(s)))
	}
	c.stats.Puts++
	if c.CanDirect(rank) {
		t0 := c.spanStart()
		d := c.mapping(gg.id, rank).data
		if rows > 0 && cols > 0 {
			if last := off + (rows-1)*ld + cols; last > len(d) {
				panic(fmt.Sprintf("ipcrt: NbPutSub region ends at %d of %d", last, len(d)))
			}
		}
		for r := 0; r < rows; r++ {
			copy(d[off+r*ld:off+r*ld+cols], s[srcOff+r*cols:srcOff+(r+1)*cols])
		}
		c.stats.BytesShared += int64(n) * 8
		c.span(obs.KindPut, t0)
		return doneHandle{}
	}
	c.stats.BytesRemote += int64(n) * 8
	h := newOpHandle()
	rec := c.rec.Load()
	lane := c.rank
	t0 := time.Now()
	c.peer(rank).issue(
		&frame{Op: opPutSub, P: [5]int64{gg.id, int64(off), int64(ld), int64(rows), int64(cols)},
			Body: floatBytes(s[srcOff : srcOff+n])},
		&pendingOp{h: h, complete: func(f *frame) error {
			if rec != nil {
				rec.RecordWall(lane, obs.KindPut, t0, time.Now())
			}
			return nil
		}},
	)
	return h
}

// Acc routes through the owner's RMA server even locally: the server's hb
// mutex is the single serialization point, giving ARMCI's Acc-vs-Acc
// atomicity across processes (a local fast path would race a concurrent
// remote Acc landing through the server).
func (c *ipcCtx) Acc(alpha float64, src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) {
	gg := g.(*ipcGlobal)
	s := bdata(src)
	if srcOff < 0 || n < 0 || srcOff+n > len(s) || off < 0 || off+n > gg.sizes[rank] {
		panic(fmt.Sprintf("ipcrt: Acc range [%d,%d) of %d -> [%d,%d) of %d",
			srcOff, srcOff+n, len(s), off, off+n, gg.sizes[rank]))
	}
	t0 := c.spanStart()
	h := newOpHandle()
	c.peer(rank).issue(
		&frame{Op: opAcc, P: [5]int64{gg.id, int64(off), float64bits(alpha)},
			Body: floatBytes(s[srcOff : srcOff+n])},
		&pendingOp{h: h, complete: func(f *frame) error { return nil }},
	)
	c.waitHandle(h)
	c.stats.Puts++
	if c.CanDirect(rank) {
		c.stats.BytesShared += int64(n) * 8
	} else {
		c.stats.BytesRemote += int64(n) * 8
	}
	c.span(obs.KindPut, t0)
}

func (c *ipcCtx) FetchAdd(g rt.Global, rank, off int, delta float64) float64 {
	gg := g.(*ipcGlobal)
	if off < 0 || off >= gg.sizes[rank] {
		panic(fmt.Sprintf("ipcrt: FetchAdd offset %d of %d", off, gg.sizes[rank]))
	}
	h := newOpHandle()
	var old float64
	c.peer(rank).issue(
		&frame{Op: opFetchAdd, P: [5]int64{gg.id, int64(off), float64bits(delta)}},
		&pendingOp{h: h, complete: func(f *frame) error {
			old = float64frombits(f.P[0])
			return nil
		}},
	)
	c.waitHandle(h)
	c.stats.Puts++
	if c.CanDirect(rank) {
		c.stats.BytesShared += 8
	} else {
		c.stats.BytesRemote += 8
	}
	return old
}

// waitHandle blocks without stats/span accounting (internal round trips).
func (c *ipcCtx) waitHandle(h *opHandle) {
	<-h.done
	if h.err != nil {
		panic(h.err)
	}
}

func (c *ipcCtx) Wait(h rt.Handle) {
	switch v := h.(type) {
	case doneHandle:
	case *opHandle:
		t0 := time.Now()
		<-v.done
		if v.err != nil {
			panic(v.err)
		}
		c.stats.WaitTime += time.Since(t0).Seconds()
		c.span(obs.KindWait, t0)
	default:
		panic(fmt.Sprintf("ipcrt: Wait on foreign handle %T", h))
	}
}

// ---- two-sided operations ----

func (c *ipcCtx) Send(to, tag int, src rt.Buffer, off, n int) {
	s := bdata(src)
	if off < 0 || n < 0 || off+n > len(s) {
		panic(fmt.Sprintf("ipcrt: Send range [%d,%d) of %d", off, off+n, len(s)))
	}
	c.stats.Msgs++
	c.stats.MsgBytes += int64(n) * 8
	t0 := c.spanStart()
	err := c.peer(to).send(&frame{Op: opMsg, P: [5]int64{int64(c.rank), int64(tag)},
		Body: floatBytes(s[off : off+n])})
	if err != nil {
		panic(err)
	}
	c.span(obs.KindCopy, t0)
}

func (c *ipcCtx) Isend(to, tag int, src rt.Buffer, off, n int) rt.Handle {
	// The send is eager: the frame is on the wire when Send returns, and
	// the receiver's mailbox buffers it — the armci eager-send contract.
	c.Send(to, tag, src, off, n)
	return doneHandle{}
}

func (c *ipcCtx) Irecv(from, tag int, dst rt.Buffer, off, n int) rt.Handle {
	d := bdata(dst)
	if off < 0 || n < 0 || off+n > len(d) {
		panic(fmt.Sprintf("ipcrt: Irecv range [%d,%d) of %d", off, off+n, len(d)))
	}
	return c.mbox.recv(from, tag, d[off:off+n])
}

func (c *ipcCtx) Recv(from, tag int, dst rt.Buffer, off, n int) {
	c.Wait(c.Irecv(from, tag, dst, off, n))
}

func (c *ipcCtx) Barrier() {
	t0 := time.Now()
	c.coord.barrier()
	// In-process shadow of the cross-process barrier: pairs with the RMA
	// server's per-op critical sections (see the package memory model).
	c.hbMu.Lock()
	c.hbMu.Unlock() //nolint:staticcheck // empty critical section is the point
	c.stats.BarrierTime += time.Since(t0).Seconds()
	c.span(obs.KindBarrier, t0)
}

// ---- compute ----

func (c *ipcCtx) matView(m rt.Mat) *mat.Matrix {
	if err := m.Valid(); err != nil {
		panic(err)
	}
	d := bdata(m.Buf)
	end := m.Off
	if m.Rows > 0 && m.Cols > 0 {
		end = m.Off + (m.Rows-1)*m.LD + m.Cols
	}
	return &mat.Matrix{Rows: m.Rows, Cols: m.Cols, Stride: m.LD, Data: d[m.Off:end]}
}

func (c *ipcCtx) Gemm(alpha float64, a, b rt.Mat, beta float64, cm rt.Mat) {
	t0 := time.Now()
	am, bm, cmm := c.matView(a), c.matView(b), c.matView(cm)
	var err error
	if c.kernelThreads > 1 {
		err = mat.GemmParallel(c.kernelThreads, a.Trans, b.Trans, alpha, am, bm, beta, cmm)
	} else {
		err = mat.Gemm(a.Trans, b.Trans, alpha, am, bm, beta, cmm)
	}
	if err != nil {
		panic(fmt.Sprintf("ipcrt: Gemm: %v", err))
	}
	m, _ := a.OpShape()
	_, n := b.OpShape()
	k := a.Cols
	if a.Trans {
		k = a.Rows
	}
	c.stats.Flops += 2 * float64(m) * float64(n) * float64(k)
	c.stats.ComputeTime += time.Since(t0).Seconds()
	c.span(obs.KindGemm, t0)
}

func (c *ipcCtx) Pack(src rt.Mat, dst rt.Buffer, dstOff int) {
	t0 := time.Now()
	sm := c.matView(src)
	d := bdata(dst)
	need := src.Rows * src.Cols
	if dstOff < 0 || dstOff+need > len(d) {
		panic(fmt.Sprintf("ipcrt: Pack needs [%d,%d) of %d", dstOff, dstOff+need, len(d)))
	}
	mat.PackInto(d[dstOff:dstOff+need], sm, 0, 0, src.Rows, src.Cols)
	c.stats.PackTime += time.Since(t0).Seconds()
	c.span(obs.KindPack, t0)
}

func (c *ipcCtx) Unpack(src rt.Buffer, srcOff int, dst rt.Mat) {
	t0 := time.Now()
	dm := c.matView(dst)
	s := bdata(src)
	need := dst.Rows * dst.Cols
	if srcOff < 0 || srcOff+need > len(s) {
		panic(fmt.Sprintf("ipcrt: Unpack needs [%d,%d) of %d", srcOff, srcOff+need, len(s)))
	}
	mat.UnpackFrom(dm, s[srcOff:srcOff+need], 0, 0, dst.Rows, dst.Cols)
	c.stats.PackTime += time.Since(t0).Seconds()
	c.span(obs.KindPack, t0)
}

func (c *ipcCtx) UnpackTranspose(src rt.Buffer, srcOff int, dst rt.Mat) {
	t0 := time.Now()
	dm := c.matView(dst)
	s := bdata(src)
	need := dst.Rows * dst.Cols
	if srcOff < 0 || srcOff+need > len(s) {
		panic(fmt.Sprintf("ipcrt: UnpackTranspose needs [%d,%d) of %d", srcOff, srcOff+need, len(s)))
	}
	mat.UnpackTransposeFrom(dm, s[srcOff:srcOff+need], 0, 0, dst.Rows, dst.Cols)
	c.stats.PackTime += time.Since(t0).Seconds()
	c.span(obs.KindPack, t0)
}

// ChecksumRegion implements faults.SourceChecksummer: same-domain regions
// are checksummed straight off the mmap segment, cross-node regions are
// checksummed BY THE OWNER (opChecksum) so the source stays authoritative
// even when the transport corrupts payloads.
func (c *ipcCtx) ChecksumRegion(g rt.Global, rank, off, ld, rows, cols int) uint64 {
	gg := g.(*ipcGlobal)
	if rows < 0 || cols < 0 || ld < cols || off < 0 {
		panic(fmt.Sprintf("ipcrt: ChecksumRegion malformed region %dx%d ld=%d off=%d", rows, cols, ld, off))
	}
	if c.CanDirect(rank) {
		src := c.mapping(gg.id, rank).data
		if rows > 0 && cols > 0 {
			if last := off + (rows-1)*ld + cols; last > len(src) {
				panic(fmt.Sprintf("ipcrt: ChecksumRegion region ends at %d of %d", last, len(src)))
			}
		}
		return checksumRegion(src, off, ld, rows, cols)
	}
	h := newOpHandle()
	var sum uint64
	c.peer(rank).issue(
		&frame{Op: opChecksum, P: [5]int64{gg.id, int64(off), int64(ld), int64(rows), int64(cols)}},
		&pendingOp{h: h, complete: func(f *frame) error {
			sum = uint64(f.P[0])
			return nil
		}},
	)
	c.waitHandle(h)
	return sum
}

// checksumRegion folds a strided region with the shared rt checksum.
func checksumRegion(src []float64, off, ld, rows, cols int) uint64 {
	h := rt.ChecksumSeed()
	for r := 0; r < rows; r++ {
		for _, v := range src[off+r*ld : off+r*ld+cols] {
			h = rt.ChecksumAdd(h, v)
		}
	}
	return h
}

// ---- harness accessors ----

func (c *ipcCtx) WriteBuf(dst rt.Buffer, off int, vals []float64) {
	d := bdata(dst)
	if off < 0 || off+len(vals) > len(d) {
		panic(fmt.Sprintf("ipcrt: WriteBuf range [%d,%d) of %d", off, off+len(vals), len(d)))
	}
	copy(d[off:], vals)
}

func (c *ipcCtx) ReadBuf(src rt.Buffer, off, n int) []float64 {
	s := bdata(src)
	if off < 0 || off+n > len(s) {
		panic(fmt.Sprintf("ipcrt: ReadBuf range [%d,%d) of %d", off, off+n, len(s)))
	}
	out := make([]float64, n)
	copy(out, s[off:off+n])
	return out
}

// closePeers tears down the RMA client connections (worker shutdown).
func (c *ipcCtx) closePeers() {
	c.peerMu.Lock()
	peers := c.peers
	c.peers = make(map[int]*peerConn)
	c.peerMu.Unlock()
	for _, pc := range peers {
		pc.close()
	}
}

var (
	_ rt.Ctx         = (*ipcCtx)(nil)
	_ rt.KernelTuner = (*ipcCtx)(nil)
	_ rt.Recorded    = (*ipcCtx)(nil)
)

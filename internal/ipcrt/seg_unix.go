//go:build linux || darwin

package ipcrt

// Shared-memory segments. Every Global is one file per rank in the run
// directory, sized by that rank's Malloc argument and mapped MAP_SHARED by
// its owner. Ranks on the same emulated node map the owner's file too, so
// Direct access really is load/store against the same physical pages —
// the paper's intra-SMP fast path — while cross-node ranks never map it
// and go through the socket RMA protocol instead.

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"unsafe"
)

// mmapAvailable reports that this platform supports the shared-segment
// path (gates Available and the ipc engine in the CLIs).
func mmapAvailable() bool { return true }

// segMap is one mapping of one rank's segment file.
type segMap struct {
	data []float64
	raw  []byte
}

// mapSegment maps the segment file at path holding elems float64s. When
// create is true the file is created and sized (the owner's side);
// otherwise it must already exist with at least the wanted size (a peer
// mapping after the registration barrier).
func mapSegment(path string, elems int, create bool) (*segMap, error) {
	if elems < 0 {
		return nil, fmt.Errorf("ipcrt: segment of %d elements", elems)
	}
	if elems == 0 {
		return &segMap{}, nil // zero-length mappings are invalid; no data to share
	}
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o600)
	if err != nil {
		return nil, fmt.Errorf("ipcrt: segment %s: %w", path, err)
	}
	defer f.Close()
	size := int64(elems) * 8
	if create {
		if err := f.Truncate(size); err != nil {
			return nil, fmt.Errorf("ipcrt: sizing segment %s: %w", path, err)
		}
	} else if st, err := f.Stat(); err != nil {
		return nil, err
	} else if st.Size() < size {
		return nil, fmt.Errorf("ipcrt: segment %s is %d bytes, need %d", path, st.Size(), size)
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("ipcrt: mmap %s: %w", path, err)
	}
	return &segMap{
		data: unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), elems),
		raw:  raw,
	}, nil
}

// unmap releases the mapping. The float view must not be used afterwards.
func (m *segMap) unmap() error {
	if m == nil || m.raw == nil {
		return nil
	}
	raw := m.raw
	m.raw, m.data = nil, nil
	return syscall.Munmap(raw)
}

// exitInfo extracts an exit code or terminating signal name from a
// cmd.Wait error, for RankExitError reporting.
func exitInfo(err error) (code int, sig string) {
	if err == nil {
		return 0, ""
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return -1, ws.Signal().String()
		}
		return ee.ExitCode(), ""
	}
	return -1, ""
}

package ipcrt

import (
	"errors"
	"math"
	"os"
	"sync"
	"testing"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/obs"
	"srumma/internal/rt"
)

// TestMain is also the worker entry point: the coordinator re-executes this
// test binary, and MaybeWorker diverts those copies before any test runs.
func TestMain(m *testing.M) {
	MaybeWorker()
	maybeJoinWorker() // external-join copies (join_test.go) divert here
	os.Exit(m.Run())
}

func launchCluster(t *testing.T, np, ppn int) *Cluster {
	t.Helper()
	if !Available() {
		t.Skip("multi-process engine unavailable on this platform")
	}
	cl, err := Launch(Config{NP: np, PPN: ppn})
	if err != nil {
		t.Fatalf("Launch(np=%d, ppn=%d): %v", np, ppn, err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// armciBlocks runs the same spec through RunBody on the in-process engine
// with the same topology, returning per-rank C blocks.
func armciBlocks(t *testing.T, topo rt.Topology, spec *JobSpec) [][]float64 {
	t.Helper()
	blocks := make([][]float64, topo.NProcs)
	var mu sync.Mutex
	var firstErr error
	_, err := armci.Run(topo, func(c rt.Ctx) {
		out, _, _, err := RunBody(c, spec)
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		blocks[c.Rank()] = out
	})
	if err != nil {
		t.Fatalf("armci run: %v", err)
	}
	if firstErr != nil {
		t.Fatalf("armci body: %v", firstErr)
	}
	return blocks
}

// TestIPCBitIdentical is the engine's core gate: 2 emulated nodes x 2 ranks
// on localhost must produce bit-identical C blocks to the in-process armci
// engine with the same topology, for all four transpose cases.
func TestIPCBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	cl := launchCluster(t, topo.NProcs, topo.ProcsPerNode)

	for _, cs := range []core.Case{core.NN, core.TN, core.NT, core.TT} {
		t.Run(cs.String(), func(t *testing.T) {
			spec := DefaultSpec(96, 80, 112)
			spec.Case = int(cs)
			spec.Beta = 0.5
			spec.ReturnC = true
			// One kernel thread keeps the dgemm partitioning out of the
			// comparison; task order is already pinned by the shared topology.
			spec.KernelThreads = 1

			results, err := cl.RunJob(spec, 2*time.Minute)
			if err != nil {
				t.Fatalf("RunJob: %v", err)
			}
			want := armciBlocks(t, topo, spec)
			for rank, res := range results {
				if res.Err != "" {
					t.Fatalf("rank %d: %s", rank, res.Err)
				}
				if len(res.C) != len(want[rank]) {
					t.Fatalf("rank %d: C block has %d elements, armci has %d", rank, len(res.C), len(want[rank]))
				}
				for i := range res.C {
					if math.Float64bits(res.C[i]) != math.Float64bits(want[rank][i]) {
						t.Fatalf("rank %d element %d: ipc %v != armci %v (bit difference)",
							rank, i, res.C[i], want[rank][i])
					}
				}
			}
		})
	}
}

// TestIPCPaths pins the transport split: with 2 ranks per node, intra-node
// operands must ride the mmap Direct path (DirectMaps > 0, shared-domain
// get bytes) and cross-node operands the socket RMA path (remote gets).
// With every rank on one node, nothing may touch the socket data path.
func TestIPCPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	spec := DefaultSpec(64, 64, 64)
	spec.KernelThreads = 1

	t.Run("split", func(t *testing.T) {
		cl := launchCluster(t, 4, 2)
		results, err := cl.RunJob(spec, 2*time.Minute)
		if err != nil {
			t.Fatalf("RunJob: %v", err)
		}
		for rank, res := range results {
			if res.Err != "" {
				t.Fatalf("rank %d: %s", rank, res.Err)
			}
			// Same-domain operands skip Get entirely: the executor takes
			// Direct views of the peer's mmap segment, which is why the
			// counter to assert is DirectMaps rather than GetsShared.
			if res.DirectMaps == 0 {
				t.Errorf("rank %d mapped no peer segments: intra-node operands did not take the mmap path", rank)
			}
			if res.Stats.GetsRemote == 0 {
				t.Errorf("rank %d: no remote gets — cross-node operands did not use the socket", rank)
			}
		}
	})

	t.Run("single-node", func(t *testing.T) {
		cl := launchCluster(t, 4, 4)
		results, err := cl.RunJob(spec, 2*time.Minute)
		if err != nil {
			t.Fatalf("RunJob: %v", err)
		}
		for rank, res := range results {
			if res.Err != "" {
				t.Fatalf("rank %d: %s", rank, res.Err)
			}
			if res.Stats.GetsRemote != 0 || res.Stats.BytesRemote != 0 {
				t.Errorf("rank %d used the socket path (%d gets, %d bytes) with all ranks on one node",
					rank, res.Stats.GetsRemote, res.Stats.BytesRemote)
			}
		}
	})
}

// TestIPCMPCollectives drives internal/mp (Bcast + Allreduce, i.e. the
// mailbox send/recv layer) across the process boundary.
func TestIPCMPCollectives(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	cl := launchCluster(t, 4, 2)
	spec := DefaultSpec(0, 16, 0)
	spec.MPCheck = true
	spec.ReturnC = true
	spec.Seed = 42

	results, err := cl.RunJob(spec, time.Minute)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	want := ExpectedMPCheck(16, 4, 42)
	for rank, res := range results {
		if res.Err != "" {
			t.Fatalf("rank %d: %s", rank, res.Err)
		}
		if len(res.C) != len(want) {
			t.Fatalf("rank %d: %d elements, want %d", rank, len(res.C), len(want))
		}
		for i := range want {
			if res.C[i] != want[i] {
				t.Errorf("rank %d element %d: %v != %v", rank, i, res.C[i], want[i])
			}
		}
	}
}

// TestIPCTrace checks the observability plumbing: per-worker recorders ship
// their events home and MergeEvents aligns them on one timeline.
func TestIPCTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	cl := launchCluster(t, 4, 2)
	spec := DefaultSpec(64, 64, 64)
	spec.Trace = true
	spec.KernelThreads = 1

	results, err := cl.RunJob(spec, 2*time.Minute)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	merged := MergeEvents(results, time.Now())
	if len(merged) == 0 {
		t.Fatal("no events merged")
	}
	kinds := map[obs.Kind]bool{}
	lanes := map[int]bool{}
	for _, e := range merged {
		kinds[e.Kind] = true
		lanes[e.Rank] = true
	}
	for _, want := range []obs.Kind{obs.KindGemm, obs.KindGet, obs.KindBarrier, obs.KindJob} {
		if !kinds[want] {
			t.Errorf("no %v events in the merged trace", want)
		}
	}
	if len(lanes) != 4 {
		t.Errorf("events on %d lanes, want 4", len(lanes))
	}
}

// TestIPCWorkerDeath kills one rank mid-job and requires the typed
// worker-exited failure naming the rank and exit code — not a hang.
func TestIPCWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	cl := launchCluster(t, 4, 2)
	spec := DefaultSpec(64, 64, 64)
	spec.ExitRank = 2
	spec.ExitCode = 3

	_, err := cl.RunJob(spec, time.Minute)
	if err == nil {
		t.Fatal("job with a dying rank succeeded")
	}
	if !errors.Is(err, rt.ErrRankExited) {
		t.Fatalf("error %v is not rt.ErrRankExited", err)
	}
	if errors.Is(err, rt.ErrRankDeadlocked) {
		t.Fatalf("error %v claims both failure classes", err)
	}
	var ree *RankExitError
	if !errors.As(err, &ree) {
		t.Fatalf("error %v carries no RankExitError", err)
	}
	if ree.Rank != 2 || ree.ExitCode != 3 {
		t.Errorf("reported rank %d exit code %d, want rank 2 code 3", ree.Rank, ree.ExitCode)
	}

	// The cluster is poisoned: further jobs are refused, not hung.
	if _, err := cl.RunJob(DefaultSpec(8, 8, 8), time.Minute); err == nil {
		t.Error("poisoned cluster accepted another job")
	}
}

// TestIPCDeadlock wedges one rank and requires the deadlock classification
// with every live-but-stuck rank listed.
func TestIPCDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	cl := launchCluster(t, 4, 2)
	spec := DefaultSpec(64, 64, 64)
	spec.HangRank = 1

	_, err := cl.RunJob(spec, 3*time.Second)
	if err == nil {
		t.Fatal("job with a wedged rank succeeded")
	}
	if !errors.Is(err, rt.ErrRankDeadlocked) {
		t.Fatalf("error %v is not rt.ErrRankDeadlocked", err)
	}
	if errors.Is(err, rt.ErrRankExited) {
		t.Fatalf("error %v claims both failure classes", err)
	}
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %v carries no DeadlockError", err)
	}
	found := false
	for _, r := range de.Pending {
		if r == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("pending ranks %v do not include the wedged rank 1", de.Pending)
	}
}

// TestIPCJobError: a panicking job body comes back as a per-rank error and
// poisons the cluster without killing the test process.
func TestIPCJobError(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	cl := launchCluster(t, 2, 2)
	spec := DefaultSpec(0, 0, 0) // invalid dims: every rank fails cleanly

	results, err := cl.RunJob(spec, time.Minute)
	if err == nil {
		t.Fatal("invalid job succeeded")
	}
	var rje *RankJobError
	if !errors.As(err, &rje) {
		t.Fatalf("error %v carries no RankJobError", err)
	}
	for _, res := range results {
		if res != nil && res.Err == "" {
			t.Errorf("rank %d reported success on invalid dims", res.Rank)
		}
	}
}

func TestLaunchValidation(t *testing.T) {
	if !Available() {
		t.Skip("multi-process engine unavailable on this platform")
	}
	if _, err := Launch(Config{NP: 0, PPN: 1}); err == nil {
		t.Error("Launch accepted 0 processes")
	}
	if _, err := Launch(Config{NP: 4, PPN: 0}); err == nil {
		t.Error("Launch accepted 0 ranks per node")
	}
}

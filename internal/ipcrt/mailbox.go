package ipcrt

import (
	"fmt"
	"sync"
)

// mailbox is the receiver-side half of the two-sided layer. Senders write
// opMsg frames to the receiving worker's RMA socket; that worker's server
// goroutine deposits payloads here, where the rank goroutine's
// Recv/Irecv matches them by (source, tag) — the same eager,
// non-overtaking discipline as the armci mailbox. Frames from one sender
// arrive on one ordered connection, so queue order per key is send order.
type mailbox struct {
	mu      sync.Mutex
	queued  map[msgKey][][]float64
	waiting map[msgKey][]*pendingRecv
}

type msgKey struct {
	src, tag int
}

// pendingRecv is a posted Irecv: the server goroutine fills dst and
// completes h when a matching message arrives (the handle's channel close
// is the happens-before edge that publishes dst to the rank goroutine).
type pendingRecv struct {
	dst []float64
	h   *opHandle
}

func newMailbox() *mailbox {
	return &mailbox{
		queued:  make(map[msgKey][][]float64),
		waiting: make(map[msgKey][]*pendingRecv),
	}
}

// deposit hands an arrived payload (already copied out of the wire buffer)
// to the first waiting receiver, or queues it. Runs on the server goroutine.
func (m *mailbox) deposit(src, tag int, payload []float64) {
	key := msgKey{src, tag}
	m.mu.Lock()
	if ws := m.waiting[key]; len(ws) > 0 {
		w := ws[0]
		m.waiting[key] = ws[1:]
		m.mu.Unlock()
		w.complete(payload)
		return
	}
	m.queued[key] = append(m.queued[key], payload)
	m.mu.Unlock()
}

// recv posts a receive for n elements into dst and returns its handle,
// completing it immediately when a message is already queued. Runs on the
// rank goroutine.
func (m *mailbox) recv(src, tag int, dst []float64) *opHandle {
	key := msgKey{src, tag}
	h := newOpHandle()
	m.mu.Lock()
	if q := m.queued[key]; len(q) > 0 {
		payload := q[0]
		m.queued[key] = q[1:]
		m.mu.Unlock()
		(&pendingRecv{dst: dst, h: h}).complete(payload)
		return h
	}
	m.waiting[key] = append(m.waiting[key], &pendingRecv{dst: dst, h: h})
	m.mu.Unlock()
	return h
}

func (w *pendingRecv) complete(payload []float64) {
	if len(payload) != len(w.dst) {
		w.h.fail(fmt.Errorf("ipcrt: Recv of %d elements got a %d-element message", len(w.dst), len(payload)))
		return
	}
	copy(w.dst, payload)
	w.h.finish()
}

// abort fails every posted receive (transport death).
func (m *mailbox) abort(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for key, ws := range m.waiting {
		for _, w := range ws {
			w.h.fail(err)
		}
		delete(m.waiting, key)
	}
}

package ipcrt

import (
	"fmt"

	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/grid"
	"srumma/internal/hier"
	"srumma/internal/mat"
	"srumma/internal/mp"
	"srumma/internal/obs"
	"srumma/internal/rt"
)

// JobSpec is one SPMD job, serialized to every worker. Closures cannot
// cross a process boundary, so the multi-process engine dispatches jobs by
// value: the spec names the algorithm and its parameters, and RunBody —
// the one shared job body — reconstructs identical operands on every rank
// from the seed. Running the same spec through RunBody on the in-process
// armci engine (same topology) must produce bit-identical C blocks, which
// is exactly what the ipc-smoke gate asserts.
type JobSpec struct {
	// Problem shape: C (MxN) = alpha * op(A) op(B) + beta * C, contraction
	// length K, transpose case core.Case.
	M, N, K     int
	Case        int
	Alpha, Beta float64
	// Seed generates A (Seed), B (Seed+1) and, when Beta != 0, the initial
	// C (Seed+2) via mat.Random on every rank identically.
	Seed uint64
	// Data switches to inline operands (the serving path): A, B and — when
	// Beta != 0 — CIn carry the full row-major matrices, and every rank
	// packs its own block out of them instead of seed-generating.
	Data bool
	A    []float64 `json:",omitempty"`
	B    []float64 `json:",omitempty"`
	CIn  []float64 `json:",omitempty"`
	// UseLedger attaches a core.JobLedger so a crashing rank's completion
	// bitset rides back in its salvage; Prior* restore per-rank state
	// salvaged from a failed attempt (C block, ledger bits, task count) —
	// a rank with all three resumes mid-job, every other rank restarts.
	UseLedger  bool
	PriorC     map[int][]float64 `json:",omitempty"`
	PriorBits  map[int][]uint64  `json:",omitempty"`
	PriorTasks map[int]int       `json:",omitempty"`
	// ABFT forwards Huang–Abraham block verification to core.Options.
	ABFT    bool
	ABFTTol float64
	// Executor knobs, forwarded to core.Options.
	SingleBuffer    bool
	NoDiagonalShift bool
	KernelThreads   int
	MaxTaskK        int
	// Hier routes the job through the hierarchical two-level path
	// (internal/hier): groups of ranks stage their outer panels once per
	// group, bit-identical to the flat path. HierGroup overrides the group
	// size (0 = one group per emulated shared-memory domain, i.e. per
	// worker node — how internal/cluster maps groups onto nodes).
	Hier      bool
	HierGroup int
	// ReturnC ships each rank's C block back in its RankResult.
	ReturnC bool
	// Trace attaches a per-worker obs.Recorder; events come back in the
	// RankResult together with the worker's wall epoch so the coordinator
	// can merge the lanes onto its own timeline.
	Trace bool
	// Chaos, when non-nil, wraps the worker's Ctx in the deterministic
	// fault injector (faults.NewPlan(Chaos, NProcs)); Recover additionally
	// wraps the resilient retry/checksum layer around it.
	Chaos   *faults.Config
	Recover bool

	// MPCheck replaces the GEMM body with a two-sided collective exercise
	// (Bcast + Allreduce over internal/mp); the "C block" is the reduced
	// vector, identical on every rank and computable in closed form.
	MPCheck bool

	// Test hooks (used by the engine's own failure-path tests): the named
	// rank exits the process / hangs forever at job start. -1 disables.
	ExitRank int
	ExitCode int
	HangRank int
}

// DefaultSpec returns a spec with the hooks disabled and sane scalars.
func DefaultSpec(m, n, k int) *JobSpec {
	return &JobSpec{M: m, N: n, K: k, Alpha: 1, Seed: 1, ExitRank: -1, HangRank: -1}
}

// RankResult is one worker's FIN payload.
type RankResult struct {
	Rank int
	// Err is the job body's failure ("" on success): a recovered panic or
	// a core.Multiply error, with the rank's context.
	Err   string
	Stats *rt.Stats
	// C block (row-major CRows x CCols), present when the spec asked for it.
	C            []float64
	CRows, CCols int
	// Trace events on lane == rank, with the worker's recorder epoch in
	// unix nanos so the coordinator can shift them onto its own epoch.
	Events        []obs.Event
	EpochUnixNano int64
	// DirectMaps counts distinct PEER segments this rank mapped for direct
	// load/store access — the observable proof that intra-node operands
	// took the mmap path rather than the socket. Reset per job, so a
	// steady-state job on a warm segment pool reports 0.
	DirectMaps int64
	// MmapMallocs counts lifetime segment-file create+mmap calls in the
	// worker process; flat across same-shape jobs when the coordinator's
	// segment pool is reusing parked segments.
	MmapMallocs int64
	// TCPPeers counts lifetime peer connections this rank dialed over TCP
	// (the cross-domain scheme of the tcp transport).
	TCPPeers int64
	// Salvage of a failed body: when Salvaged is true, C/CRows/CCols hold
	// the partial block and LedgerBits/LedgerTasks this rank's completion
	// bitset — enough for a retry attempt to resume instead of restart.
	Salvaged    bool
	LedgerBits  []uint64 `json:",omitempty"`
	LedgerTasks int
}

// Salvage receives a failed job body's recoverable state (see RunBodyEx).
type Salvage struct {
	Valid      bool
	C          []float64
	Rows, Cols int
	Bits       []uint64
	Tasks      int
}

// RunBody executes one spec against any data-carrying engine Ctx. It is
// the body both sides of the bit-identity gate run: workers call it with
// their ipc ctx, and comparison harnesses call it on armci with the same
// topology. Results: this rank's C block and its shape.
func RunBody(c rt.Ctx, spec *JobSpec) ([]float64, int, int, error) {
	return RunBodyEx(c, spec, nil)
}

// matFrom wraps a row-major inline operand as a matrix view.
func matFrom(rows, cols int, data []float64, name string) *mat.Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("ipcrt: inline operand %s holds %d elements, want %dx%d", name, len(data), rows, cols))
	}
	return &mat.Matrix{Rows: rows, Cols: cols, Stride: cols, Data: data}
}

// RunBodyEx is RunBody with a salvage sink: when the body panics mid-run
// (an injected crash, a real bug) and the spec attached a ledger, the
// partial C block and the completion bitset are captured into salv before
// the panic continues — the raw material of a cross-process resume.
func RunBodyEx(c rt.Ctx, spec *JobSpec, salv *Salvage) ([]float64, int, int, error) {
	if spec.MPCheck {
		return runMPCheck(c, spec)
	}
	d := core.Dims{M: spec.M, N: spec.N, K: spec.K}
	if err := d.Validate(); err != nil {
		return nil, 0, 0, err
	}
	g, err := grid.Square(c.Size())
	if err != nil {
		return nil, 0, 0, err
	}
	cs := core.Case(spec.Case)
	da, db, dc := core.Dists(g, d, cs)

	ga := driver.AllocBlock(c, da)
	gb := driver.AllocBlock(c, db)
	gc := driver.AllocBlock(c, dc)

	me := c.Rank()
	rows, cols := dc.LocalShape(me)

	// Resume state: this rank rejoins mid-job only with all three pieces
	// of salvage (partial C, ledger bits, task count); otherwise it
	// restarts from the loaded operands with an empty ledger.
	var jl *core.JobLedger
	if spec.UseLedger {
		jl = core.NewJobLedger(c.Size())
	}
	prior := spec.PriorC[me]
	resumed := false
	if jl != nil && len(prior) == rows*cols {
		if bits := spec.PriorBits[me]; len(bits) > 0 && spec.PriorTasks[me] > 0 {
			jl.RestoreRank(me, spec.PriorTasks[me], bits)
			resumed = true
		}
	}

	ar, ac := d.M, d.K
	if cs.TransA() {
		ar, ac = d.K, d.M
	}
	br, bc := d.K, d.N
	if cs.TransB() {
		br, bc = d.N, d.K
	}
	if spec.Data {
		driver.LoadBlock(c, da, ga, matFrom(ar, ac, spec.A, "A"))
		driver.LoadBlock(c, db, gb, matFrom(br, bc, spec.B, "B"))
	} else {
		driver.LoadBlock(c, da, ga, mat.Random(ar, ac, spec.Seed))
		driver.LoadBlock(c, db, gb, mat.Random(br, bc, spec.Seed+1))
	}
	switch {
	case resumed:
		c.WriteBuf(c.Local(gc), 0, prior)
	case spec.Beta != 0 && spec.Data:
		driver.LoadBlock(c, dc, gc, matFrom(d.M, d.N, spec.CIn, "C"))
	case spec.Beta != 0:
		driver.LoadBlock(c, dc, gc, mat.Random(d.M, d.N, spec.Seed+2))
	}

	opts := core.Options{
		Case:            cs,
		SingleBuffer:    spec.SingleBuffer,
		NoDiagonalShift: spec.NoDiagonalShift,
		KernelThreads:   spec.KernelThreads,
		MaxTaskK:        spec.MaxTaskK,
		Ledger:          jl,
		ABFT:            spec.ABFT,
		ABFTTol:         spec.ABFTTol,
	}
	if salv != nil && jl != nil {
		defer func() {
			if p := recover(); p != nil {
				// Best-effort: the engine may be half-wedged, so a salvage
				// failure must not mask the original panic.
				func() {
					defer func() { _ = recover() }()
					cBlock := c.ReadBuf(c.Local(gc), 0, rows*cols)
					if bits, n := jl.RankBits(me); len(bits) > 0 && n > 0 {
						salv.C, salv.Rows, salv.Cols = cBlock, rows, cols
						salv.Bits, salv.Tasks = bits, n
						salv.Valid = true
					}
				}()
				panic(p)
			}
		}()
	}
	if spec.Hier {
		topo := c.Topo()
		topo.GroupSize = spec.HierGroup
		err = hier.MultiplyEx(c, hier.From(topo, g), d, hier.Options{Options: opts},
			spec.Alpha, spec.Beta, ga, gb, gc)
	} else {
		err = core.MultiplyEx(c, g, d, opts, spec.Alpha, spec.Beta, ga, gb, gc)
	}
	if err != nil {
		return nil, 0, 0, fmt.Errorf("rank %d: %w", me, err)
	}
	out := c.ReadBuf(c.Local(gc), 0, rows*cols)
	c.Free(ga)
	c.Free(gb)
	c.Free(gc)
	return out, rows, cols, nil
}

// runMPCheck exercises the two-sided layer end to end: rank 0 broadcasts a
// seed vector, every rank adds its own rank to each element, and an
// Allreduce sums the results. The expected outcome on every rank is
// Size*base[i] + sum(0..Size-1) — see ExpectedMPCheck.
func runMPCheck(c rt.Ctx, spec *JobSpec) ([]float64, int, int, error) {
	n := spec.N
	if n <= 0 {
		n = 8
	}
	all := make([]int, c.Size())
	for i := range all {
		all[i] = i
	}
	b := c.LocalBuf(n)
	if c.Rank() == 0 {
		c.WriteBuf(b, 0, mpCheckBase(n, spec.Seed))
	}
	mp.Bcast(c, 0, all, b, 0, n, 7)
	vals := c.ReadBuf(b, 0, n)
	for i := range vals {
		vals[i] += float64(c.Rank())
	}
	c.WriteBuf(b, 0, vals)
	mp.Allreduce(c, all, b, 0, n, 9)
	return c.ReadBuf(b, 0, n), 1, n, nil
}

// mpCheckBase is deliberately small-integer-valued so Bcast+Allreduce
// results are exact regardless of reduction association order.
func mpCheckBase(n int, seed uint64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64((seed + uint64(i)*7) % 1000)
	}
	return out
}

// ExpectedMPCheck computes what every rank's MPCheck result must be.
func ExpectedMPCheck(n, nprocs int, seed uint64) []float64 {
	base := mpCheckBase(n, seed)
	rankSum := float64(nprocs*(nprocs-1)) / 2
	out := make([]float64, n)
	for i, v := range base {
		out[i] = float64(nprocs)*v + rankSum
	}
	return out
}

// WrapChaos applies the spec's fault-injection layers around an engine
// Ctx, identically on workers and on in-process comparison runs.
func WrapChaos(c rt.Ctx, spec *JobSpec, nprocs int) (rt.Ctx, error) {
	if spec.Chaos == nil {
		return c, nil
	}
	plan, err := faults.NewPlan(*spec.Chaos, nprocs)
	if err != nil {
		return nil, err
	}
	wrapped := faults.Inject(c, plan, nil)
	if spec.Recover {
		wrapped = faults.Resilient(wrapped, faults.RecoveryConfig{})
	}
	return wrapped, nil
}

package ipcrt

// The worker process. Every rank of the multi-process engine is one OS
// process running workerMain: it dials the coordinator's unix socket,
// announces its rank, opens its own RMA listener, and then executes the
// jobs the coordinator dispatches. Workers are usually the SAME executable
// as the coordinator, re-executed with the SRUMMA_IPC_WORKER environment
// set — MaybeWorker() at the top of a main() (or TestMain) diverts the
// process into worker mode before any CLI logic runs. cmd/srumma-worker
// is the standalone form of the same loop.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"srumma/internal/obs"
	"srumma/internal/rt"
)

// Environment contract between the launcher and a worker process.
const (
	envWorker = "SRUMMA_IPC_WORKER"
	envRank   = "SRUMMA_IPC_RANK"
	envNP     = "SRUMMA_IPC_NP"
	envPPN    = "SRUMMA_IPC_PPN"
	envDir    = "SRUMMA_IPC_DIR"
)

// Available reports whether this platform can run the multi-process
// engine (mmap shared segments + unix sockets).
func Available() bool { return mmapAvailable() }

func coordSockPath(dir string) string { return filepath.Join(dir, "coord.sock") }

func rankSockPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank%d.sock", rank))
}

func segFilePath(dir string, segID int64, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("seg%d.r%d", segID, rank))
}

func removeSegFile(path string) { os.Remove(path) }

// MaybeWorker diverts the process into worker mode when the launcher's
// environment marker is present, never returning in that case. Every
// binary that launches ipc clusters by re-executing itself (the CLIs, the
// engine's own test binary) calls it first thing.
func MaybeWorker() {
	if os.Getenv(envWorker) == "" {
		return
	}
	os.Exit(workerMain())
}

func workerEnvInt(key string) int {
	v, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker: bad %s=%q: %v\n", key, os.Getenv(key), err)
		os.Exit(2)
	}
	return v
}

func workerMain() int {
	rank := workerEnvInt(envRank)
	np := workerEnvInt(envNP)
	ppn := workerEnvInt(envPPN)
	dir := os.Getenv(envDir)
	topo := rt.Topology{NProcs: np, ProcsPerNode: ppn}
	if err := topo.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker: %v\n", err)
		return 2
	}

	conn, err := net.Dial("unix", coordSockPath(dir))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker %d: dialing coordinator: %v\n", rank, err)
		return 2
	}
	cc := newCoordClient(conn)
	c := newCtx(rank, topo, dir, cc)

	ln, err := net.Listen("unix", rankSockPath(dir, rank))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker %d: RMA listener: %v\n", rank, err)
		return 2
	}
	defer ln.Close()
	go c.serveRMA(ln)

	// The hello declares "listener up, ready for jobs"; the coordinator
	// dispatches only after every rank has said it, so peers can dial
	// each other unconditionally once a job is running.
	if err := cc.write(&frame{Op: opHello, P: [5]int64{int64(rank)}}); err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker %d: hello: %v\n", rank, err)
		return 2
	}
	go cc.readLoop()

	for {
		select {
		case spec := <-cc.jobs:
			res := c.runJob(spec)
			body, err := json.Marshal(res)
			if err != nil {
				body, _ = json.Marshal(&RankResult{Rank: rank, Err: fmt.Sprintf("marshaling result: %v", err)})
			}
			if err := cc.write(&frame{Op: opFin, Body: body}); err != nil {
				return 1
			}
		case <-cc.shutdown:
			c.closePeers()
			return 0
		case <-cc.dead:
			// Coordinator gone: nothing to report to, don't linger.
			return 1
		}
	}
}

// runJob executes one spec with fresh per-job accounting, recovering
// panics into the result like a team rank does.
func (c *ipcCtx) runJob(spec *JobSpec) *RankResult {
	// Failure-path test hooks.
	if spec.ExitRank == c.rank {
		os.Exit(spec.ExitCode)
	}
	if spec.HangRank == c.rank {
		select {}
	}

	res := &RankResult{Rank: c.rank}
	c.stats = &rt.Stats{}
	c.directMaps = 0
	var rec *obs.Recorder
	if spec.Trace {
		rec = obs.NewRecorder(c.topo.NProcs, 0)
		res.EpochUnixNano = rec.Epoch().UnixNano()
	}
	c.rec.Store(rec)
	defer c.rec.Store(nil)

	t0 := time.Now()
	func() {
		defer func() {
			if p := recover(); p != nil {
				res.Err = fmt.Sprintf("panic: %v", p)
			}
		}()
		body, err := WrapChaos(c, spec, c.topo.NProcs)
		if err != nil {
			res.Err = err.Error()
			return
		}
		out, rows, cols, err := RunBody(body, spec)
		if err != nil {
			res.Err = err.Error()
			return
		}
		if spec.ReturnC {
			res.C, res.CRows, res.CCols = out, rows, cols
		}
	}()
	if rec != nil {
		rec.RecordWall(c.rank, obs.KindJob, t0, time.Now())
		res.Events = rec.Events()
	}
	res.Stats = c.stats
	res.DirectMaps = c.directMaps
	return res
}

// coordClient is the worker's half of the control connection: the rank
// goroutine writes collective requests and FINs; readLoop routes the
// coordinator's frames back (there is at most one outstanding collective,
// the rank goroutine being one thread of one SPMD program).
type coordClient struct {
	conn net.Conn
	wmu  sync.Mutex

	jobs       chan *JobSpec
	barrierAck chan struct{}
	mallocAck  chan mallocReply
	freeAck    chan struct{}
	shutdown   chan struct{}
	dead       chan struct{}

	deadOnce sync.Once
	deadErr  error
}

type mallocReply struct {
	segID int64
	sizes []int
}

func newCoordClient(conn net.Conn) *coordClient {
	return &coordClient{
		conn:       conn,
		jobs:       make(chan *JobSpec, 1),
		barrierAck: make(chan struct{}, 1),
		mallocAck:  make(chan mallocReply, 1),
		freeAck:    make(chan struct{}, 1),
		shutdown:   make(chan struct{}),
		dead:       make(chan struct{}),
	}
}

func (cc *coordClient) write(f *frame) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return writeFrame(cc.conn, f)
}

func (cc *coordClient) die(err error) {
	cc.deadOnce.Do(func() {
		cc.deadErr = err
		close(cc.dead)
		cc.conn.Close()
	})
}

func (cc *coordClient) readLoop() {
	for {
		f, err := readFrame(cc.conn)
		if err != nil {
			cc.die(fmt.Errorf("ipcrt: coordinator connection lost: %w", err))
			return
		}
		switch f.Op {
		case opJob:
			spec := &JobSpec{ExitRank: -1, HangRank: -1}
			if err := json.Unmarshal(f.Body, spec); err != nil {
				cc.die(fmt.Errorf("ipcrt: bad job spec: %w", err))
				return
			}
			cc.jobs <- spec
		case opBarrierAck:
			cc.barrierAck <- struct{}{}
		case opMallocAck:
			sizes64, err := getInt64s(f.Body)
			if err != nil {
				cc.die(err)
				return
			}
			sizes := make([]int, len(sizes64))
			for i, v := range sizes64 {
				sizes[i] = int(v)
			}
			cc.mallocAck <- mallocReply{segID: f.P[0], sizes: sizes}
		case opFreeAck:
			cc.freeAck <- struct{}{}
		case opShutdown:
			close(cc.shutdown)
			return
		default:
			cc.die(fmt.Errorf("ipcrt: unexpected control frame %v from coordinator", f.Op))
			return
		}
	}
}

// barrier runs one counting-barrier round through the coordinator.
func (cc *coordClient) barrier() {
	if err := cc.write(&frame{Op: opBarrier}); err != nil {
		panic(fmt.Errorf("ipcrt: barrier send: %w", err))
	}
	select {
	case <-cc.barrierAck:
	case <-cc.shutdown:
		// Shutdown mid-collective: another rank failed or the coordinator is
		// tearing the cluster down; this barrier can never complete.
		os.Exit(0)
	case <-cc.dead:
		panic(cc.deadErr)
	}
}

// malloc registers this rank's segment size and returns the collective's
// segment id and the full per-rank size table.
func (cc *coordClient) malloc(elems int) (int64, []int) {
	if err := cc.write(&frame{Op: opMalloc, P: [5]int64{int64(elems)}}); err != nil {
		panic(fmt.Errorf("ipcrt: malloc send: %w", err))
	}
	select {
	case r := <-cc.mallocAck:
		return r.segID, r.sizes
	case <-cc.shutdown:
		os.Exit(0)
		panic("unreachable")
	case <-cc.dead:
		panic(cc.deadErr)
	}
}

// free runs the collective release round for segID.
func (cc *coordClient) free(segID int64) {
	if err := cc.write(&frame{Op: opFree, P: [5]int64{segID}}); err != nil {
		panic(fmt.Errorf("ipcrt: free send: %w", err))
	}
	select {
	case <-cc.freeAck:
	case <-cc.shutdown:
		os.Exit(0)
	case <-cc.dead:
		panic(cc.deadErr)
	}
}

package ipcrt

// The worker process. Every rank of the multi-process engine is one OS
// process running workerMain: it dials the coordinator's unix socket,
// announces its rank, opens its own RMA listener, and then executes the
// jobs the coordinator dispatches. Workers are usually the SAME executable
// as the coordinator, re-executed with the SRUMMA_IPC_WORKER environment
// set — MaybeWorker() at the top of a main() (or TestMain) diverts the
// process into worker mode before any CLI logic runs. cmd/srumma-worker
// is the standalone form of the same loop.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"srumma/internal/obs"
	"srumma/internal/rt"
)

// Environment contract between the launcher and a worker process.
const (
	envWorker    = "SRUMMA_IPC_WORKER"
	envRank      = "SRUMMA_IPC_RANK"
	envNP        = "SRUMMA_IPC_NP"
	envPPN       = "SRUMMA_IPC_PPN"
	envDir       = "SRUMMA_IPC_DIR"
	envCoord     = "SRUMMA_IPC_COORD"
	envTransport = "SRUMMA_IPC_TRANSPORT"
)

// Available reports whether this platform can run the multi-process
// engine (mmap shared segments + unix sockets).
func Available() bool { return mmapAvailable() }

func coordSockPath(dir string) string { return filepath.Join(dir, "coord.sock") }

func rankSockPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("rank%d.sock", rank))
}

func segFilePath(dir string, segID int64, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("seg%d.r%d", segID, rank))
}

func removeSegFile(path string) { os.Remove(path) }

// MaybeWorker diverts the process into worker mode when the launcher's
// environment marker is present, never returning in that case. Every
// binary that launches ipc clusters by re-executing itself (the CLIs, the
// engine's own test binary) calls it first thing.
func MaybeWorker() {
	if os.Getenv(envWorker) == "" {
		return
	}
	os.Exit(workerMain())
}

func workerEnvInt(key string) int {
	v, err := strconv.Atoi(os.Getenv(key))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker: bad %s=%q: %v\n", key, os.Getenv(key), err)
		os.Exit(2)
	}
	return v
}

// WorkerParams describes one worker's identity and wiring — what the env
// contract carries for spawned workers, and what cmd/srumma-worker -join
// supplies explicitly for external ones.
type WorkerParams struct {
	Rank, NP, PPN int
	// Dir is the shared run directory for segment files and unix RMA
	// sockets (external workers must share a filesystem with the
	// coordinator's emulated nodes they co-host).
	Dir string
	// CoordAddr is the scheme-prefixed coordinator control address
	// ("unix:/path/coord.sock" or "tcp:host:port"). Empty = the default
	// unix socket under Dir.
	CoordAddr string
	// Transport "tcp" additionally opens a TCP RMA listener, advertised
	// in the hello so cross-domain peers dial it instead of the socket
	// file. Default "unix".
	Transport string
}

func workerMain() int {
	return RunWorker(WorkerParams{
		Rank:      workerEnvInt(envRank),
		NP:        workerEnvInt(envNP),
		PPN:       workerEnvInt(envPPN),
		Dir:       os.Getenv(envDir),
		CoordAddr: os.Getenv(envCoord),
		Transport: os.Getenv(envTransport),
	})
}

// RunWorker runs one worker rank to completion: dial the coordinator,
// open RMA listeners, hello, then serve jobs until shutdown. Returns the
// process exit code.
func RunWorker(p WorkerParams) int {
	rank, dir := p.Rank, p.Dir
	topo := rt.Topology{NProcs: p.NP, ProcsPerNode: p.PPN}
	if err := topo.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker: %v\n", err)
		return 2
	}

	coordAddr := p.CoordAddr
	if coordAddr == "" {
		coordAddr = "unix:" + coordSockPath(dir)
	}
	conn, err := dialAddr(coordAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker %d: dialing coordinator: %v\n", rank, err)
		return 2
	}
	cc := newCoordClient(conn)
	c := newCtx(rank, topo, dir, cc)

	ln, err := net.Listen("unix", rankSockPath(dir, rank))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker %d: RMA listener: %v\n", rank, err)
		return 2
	}
	defer ln.Close()
	go c.serveRMA(ln)

	// The TCP RMA listener (tcp transport only): same protocol, same
	// serve loop, a different scheme in the address table.
	tcpPort := int64(0)
	if p.Transport == "tcp" {
		tln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcrt worker %d: TCP RMA listener: %v\n", rank, err)
			return 2
		}
		defer tln.Close()
		go c.serveRMA(tln)
		tcpPort = int64(tln.Addr().(*net.TCPAddr).Port)
	}

	// The hello declares "listener up, ready for jobs"; the coordinator
	// dispatches only after every rank has said it, so peers can dial
	// each other unconditionally once a job is running.
	if err := cc.write(&frame{Op: opHello, P: [5]int64{int64(rank), tcpPort}}); err != nil {
		fmt.Fprintf(os.Stderr, "ipcrt worker %d: hello: %v\n", rank, err)
		return 2
	}
	go cc.readLoop()

	for {
		select {
		case spec := <-cc.jobs:
			res := c.runJob(spec)
			body, err := json.Marshal(res)
			if err != nil {
				body, _ = json.Marshal(&RankResult{Rank: rank, Err: fmt.Sprintf("marshaling result: %v", err)})
			}
			if err := cc.write(&frame{Op: opFin, Body: body}); err != nil {
				return 1
			}
		case <-cc.shutdown:
			c.closePeers()
			return 0
		case <-cc.dead:
			// Coordinator gone: nothing to report to, don't linger.
			return 1
		}
	}
}

// runJob executes one spec with fresh per-job accounting, recovering
// panics into the result like a team rank does.
func (c *ipcCtx) runJob(spec *JobSpec) *RankResult {
	// Failure-path test hooks.
	if spec.ExitRank == c.rank {
		os.Exit(spec.ExitCode)
	}
	if spec.HangRank == c.rank {
		select {}
	}

	res := &RankResult{Rank: c.rank}
	c.stats = &rt.Stats{}
	c.directMaps = 0
	var rec *obs.Recorder
	if spec.Trace {
		rec = obs.NewRecorder(c.topo.NProcs, 0)
		res.EpochUnixNano = rec.Epoch().UnixNano()
	}
	c.rec.Store(rec)
	defer c.rec.Store(nil)

	t0 := time.Now()
	salv := &Salvage{}
	func() {
		defer func() {
			if p := recover(); p != nil {
				res.Err = fmt.Sprintf("panic: %v", p)
			}
		}()
		body, err := WrapChaos(c, spec, c.topo.NProcs)
		if err != nil {
			res.Err = err.Error()
			return
		}
		out, rows, cols, err := RunBodyEx(body, spec, salv)
		if err != nil {
			res.Err = err.Error()
			return
		}
		if spec.ReturnC {
			res.C, res.CRows, res.CCols = out, rows, cols
		}
	}()
	if res.Err != "" && salv.Valid {
		res.C, res.CRows, res.CCols = salv.C, salv.Rows, salv.Cols
		res.LedgerBits, res.LedgerTasks = salv.Bits, salv.Tasks
		res.Salvaged = true
	}
	if rec != nil {
		rec.RecordWall(c.rank, obs.KindJob, t0, time.Now())
		res.Events = rec.Events()
	}
	res.Stats = c.stats
	res.DirectMaps = c.directMaps
	res.MmapMallocs = c.mmapMallocs
	res.TCPPeers = c.tcpPeers
	return res
}

// coordClient is the worker's half of the control connection: the rank
// goroutine writes collective requests and FINs; readLoop routes the
// coordinator's frames back (there is at most one outstanding collective,
// the rank goroutine being one thread of one SPMD program).
type coordClient struct {
	conn net.Conn
	wmu  sync.Mutex

	jobs       chan *JobSpec
	barrierAck chan struct{}
	mallocAck  chan mallocReply
	freeAck    chan bool
	shutdown   chan struct{}
	dead       chan struct{}

	// peerAddrs is the coordinator's address table (opAddrs), written by
	// readLoop before any job is delivered — the jobs channel is the
	// happens-before edge to the rank goroutine that dials peers.
	peerAddrs []string

	deadOnce sync.Once
	deadErr  error
}

type mallocReply struct {
	segID  int64
	sizes  []int
	reused bool
}

func newCoordClient(conn net.Conn) *coordClient {
	return &coordClient{
		conn:       conn,
		jobs:       make(chan *JobSpec, 1),
		barrierAck: make(chan struct{}, 1),
		mallocAck:  make(chan mallocReply, 1),
		freeAck:    make(chan bool, 1),
		shutdown:   make(chan struct{}),
		dead:       make(chan struct{}),
	}
}

func (cc *coordClient) write(f *frame) error {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return writeFrame(cc.conn, f)
}

func (cc *coordClient) die(err error) {
	cc.deadOnce.Do(func() {
		cc.deadErr = err
		close(cc.dead)
		cc.conn.Close()
	})
}

func (cc *coordClient) readLoop() {
	for {
		f, err := readFrame(cc.conn)
		if err != nil {
			cc.die(fmt.Errorf("ipcrt: coordinator connection lost: %w", err))
			return
		}
		switch f.Op {
		case opJob:
			spec := &JobSpec{ExitRank: -1, HangRank: -1}
			if err := json.Unmarshal(f.Body, spec); err != nil {
				cc.die(fmt.Errorf("ipcrt: bad job spec: %w", err))
				return
			}
			cc.jobs <- spec
		case opBarrierAck:
			cc.barrierAck <- struct{}{}
		case opMallocAck:
			sizes64, err := getInt64s(f.Body)
			if err != nil {
				cc.die(err)
				return
			}
			sizes := make([]int, len(sizes64))
			for i, v := range sizes64 {
				sizes[i] = int(v)
			}
			cc.mallocAck <- mallocReply{segID: f.P[0], sizes: sizes, reused: f.P[1] != 0}
		case opFreeAck:
			cc.freeAck <- f.P[0] != 0
		case opAddrs:
			var addrs []string
			if err := json.Unmarshal(f.Body, &addrs); err != nil {
				cc.die(fmt.Errorf("ipcrt: bad address table: %w", err))
				return
			}
			cc.peerAddrs = addrs
		case opPing:
			// Answered from the read loop so a wedged job body cannot fake
			// liveness for the whole process — but a healthy worker always
			// pongs, even mid-job.
			if err := cc.write(&frame{Op: opPong, P: [5]int64{f.P[0]}}); err != nil {
				cc.die(fmt.Errorf("ipcrt: pong: %w", err))
				return
			}
		case opShutdown:
			close(cc.shutdown)
			return
		default:
			cc.die(fmt.Errorf("ipcrt: unexpected control frame %v from coordinator", f.Op))
			return
		}
	}
}

// barrier runs one counting-barrier round through the coordinator.
func (cc *coordClient) barrier() {
	if err := cc.write(&frame{Op: opBarrier}); err != nil {
		panic(fmt.Errorf("ipcrt: barrier send: %w", err))
	}
	select {
	case <-cc.barrierAck:
	case <-cc.shutdown:
		// Shutdown mid-collective: another rank failed or the coordinator is
		// tearing the cluster down; this barrier can never complete.
		os.Exit(0)
	case <-cc.dead:
		panic(cc.deadErr)
	}
}

// malloc registers this rank's segment size and returns the collective's
// segment id, the full per-rank size table, and whether the id names a
// parked pool segment to reinstate instead of creating files.
func (cc *coordClient) malloc(elems int) (int64, []int, bool) {
	if err := cc.write(&frame{Op: opMalloc, P: [5]int64{int64(elems)}}); err != nil {
		panic(fmt.Errorf("ipcrt: malloc send: %w", err))
	}
	select {
	case r := <-cc.mallocAck:
		return r.segID, r.sizes, r.reused
	case <-cc.shutdown:
		os.Exit(0)
		panic("unreachable")
	case <-cc.dead:
		panic(cc.deadErr)
	}
}

// free runs the collective release round for segID; pooled=true means the
// coordinator parked the segment and every mapping must be kept.
func (cc *coordClient) free(segID int64) (pooled bool) {
	if err := cc.write(&frame{Op: opFree, P: [5]int64{segID}}); err != nil {
		panic(fmt.Errorf("ipcrt: free send: %w", err))
	}
	select {
	case pooled = <-cc.freeAck:
		return pooled
	case <-cc.shutdown:
		os.Exit(0)
		panic("unreachable")
	case <-cc.dead:
		panic(cc.deadErr)
	}
}

package ipcrt

import (
	"math"
	"testing"
	"time"

	"srumma/internal/core"
	"srumma/internal/rt"
)

// TestHierIPCBitIdentical crosses both axes of the hierarchical gate at
// once: the hierarchical path on the multi-process engine (groups = the
// emulated worker nodes) must produce bit-identical C blocks to the FLAT
// path on the in-process armci engine, for all four transpose cases. Any
// divergence in the outer staging, the band handoff, or the inner
// executor's operand bytes shows up here.
func TestHierIPCBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	cl := launchCluster(t, topo.NProcs, topo.ProcsPerNode)

	for _, cs := range []core.Case{core.NN, core.TN, core.NT, core.TT} {
		t.Run(cs.String(), func(t *testing.T) {
			spec := DefaultSpec(72, 60, 84)
			spec.Case = int(cs)
			spec.Beta = -0.25
			spec.MaxTaskK = 17
			spec.ReturnC = true
			spec.KernelThreads = 1
			spec.Hier = true

			results, err := cl.RunJob(spec, 2*time.Minute)
			if err != nil {
				t.Fatalf("RunJob: %v", err)
			}
			flat := *spec
			flat.Hier = false
			want := armciBlocks(t, topo, &flat)
			for rank, res := range results {
				if res.Err != "" {
					t.Fatalf("rank %d: %s", rank, res.Err)
				}
				if len(res.C) != len(want[rank]) {
					t.Fatalf("rank %d: C block has %d elements, flat armci has %d", rank, len(res.C), len(want[rank]))
				}
				for i := range res.C {
					if math.Float64bits(res.C[i]) != math.Float64bits(want[rank][i]) {
						t.Fatalf("rank %d element %d: hier ipc %v != flat armci %v (bit difference)",
							rank, i, res.C[i], want[rank][i])
					}
				}
			}
		})
	}
}

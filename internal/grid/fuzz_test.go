package grid

import "testing"

// FuzzIntersect verifies the partition-intersection invariants SRUMMA's
// planner depends on: full coverage, no overlap, containment in both
// parents.
func FuzzIntersect(f *testing.F) {
	f.Add(uint16(12), uint8(3), uint8(4))
	f.Add(uint16(1), uint8(1), uint8(1))
	f.Add(uint16(600), uint8(8), uint8(16))
	f.Add(uint16(7), uint8(5), uint8(3))
	f.Fuzz(func(t *testing.T, nn uint16, pa, pb uint8) {
		n := int(nn % 2000)
		a := BlockPartition(n, 1+int(pa%32))
		b := BlockPartition(n, 1+int(pb%32))
		ov := Intersect(a, b)
		pos := 0
		for _, o := range ov {
			if o.Lo != pos || o.N <= 0 {
				t.Fatalf("gap/overlap at %d: %+v", pos, o)
			}
			ac, bc := a[o.AIdx], b[o.BIdx]
			if o.Lo < ac.Lo || o.Lo+o.N > ac.Lo+ac.N {
				t.Fatalf("piece %+v escapes a-chunk %+v", o, ac)
			}
			if o.Lo < bc.Lo || o.Lo+o.N > bc.Lo+bc.N {
				t.Fatalf("piece %+v escapes b-chunk %+v", o, bc)
			}
			pos += o.N
		}
		if pos != n {
			t.Fatalf("covered %d of %d", pos, n)
		}
	})
}

// FuzzCyclicMapping verifies the block-cyclic index maps are mutually
// inverse and owner-consistent.
func FuzzCyclicMapping(f *testing.F) {
	f.Add(uint16(100), uint8(4), uint8(3))
	f.Add(uint16(0), uint8(1), uint8(1))
	f.Add(uint16(9999), uint8(64), uint8(7))
	f.Fuzz(func(t *testing.T, gg uint16, nb8, np8 uint8) {
		g := int(gg)
		nb := 1 + int(nb8%64)
		nprocs := 1 + int(np8%16)
		p, l := GlobalToLocal(g, nb, nprocs)
		if p < 0 || p >= nprocs || l < 0 {
			t.Fatalf("GlobalToLocal(%d,%d,%d) = (%d,%d)", g, nb, nprocs, p, l)
		}
		if back := LocalToGlobal(l, nb, p, nprocs); back != g {
			t.Fatalf("round trip %d -> (%d,%d) -> %d", g, p, l, back)
		}
	})
}

// Package grid provides two-dimensional process grids and the data
// distributions used by the parallel matrix-multiplication algorithms:
// regular block distribution (SRUMMA, SUMMA, Cannon) and block-cyclic
// distribution (the pdgemm/ScaLAPACK baseline). It also implements the
// k-partition intersection that SRUMMA's task planner needs when the two
// input matrices split the contraction dimension differently (p x q grids
// with p != q, and the transpose cases).
package grid

import (
	"errors"
	"fmt"
)

// Grid is a P x Q arrangement of process ranks. Ranks are assigned
// column-major (rank = col*P + row), matching the paper's Figure 4 where a
// node of an SMP cluster holds a column of the grid.
type Grid struct {
	P, Q int // rows, cols of the process grid
}

// New returns a p x q grid or an error when either dimension is
// non-positive.
func New(p, q int) (*Grid, error) {
	if p <= 0 || q <= 0 {
		return nil, fmt.Errorf("grid: invalid %dx%d grid", p, q)
	}
	return &Grid{P: p, Q: q}, nil
}

// Square returns the most square grid p x q with p*q = nprocs and p <= q.
func Square(nprocs int) (*Grid, error) {
	if nprocs <= 0 {
		return nil, errors.New("grid: nprocs must be positive")
	}
	best := 1
	for d := 1; d*d <= nprocs; d++ {
		if nprocs%d == 0 {
			best = d
		}
	}
	return New(best, nprocs/best)
}

// BestFor returns the p x q factorization of nprocs that minimizes the
// per-process communication volume of a block algorithm on an m x n result:
// each process touches a row strip of height m/p and a column strip of
// width n/q, so the cost model is m/p + n/q. For square results this
// reduces to the most-square grid; for skinny results it stretches the grid
// to match.
func BestFor(nprocs, m, n int) (*Grid, error) {
	if nprocs <= 0 {
		return nil, errors.New("grid: nprocs must be positive")
	}
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("grid: BestFor with %dx%d result", m, n)
	}
	bestP := 1
	bestCost := float64(m) + float64(n)/float64(nprocs)
	for p := 1; p <= nprocs; p++ {
		if nprocs%p != 0 {
			continue
		}
		q := nprocs / p
		cost := float64(m)/float64(p) + float64(n)/float64(q)
		if cost < bestCost {
			bestCost = cost
			bestP = p
		}
	}
	return New(bestP, nprocs/bestP)
}

// Size returns the number of ranks in the grid.
func (g *Grid) Size() int { return g.P * g.Q }

// Rank returns the rank of the process at grid position (row, col).
func (g *Grid) Rank(row, col int) int {
	if row < 0 || row >= g.P || col < 0 || col >= g.Q {
		panic(fmt.Sprintf("grid: position (%d,%d) outside %dx%d", row, col, g.P, g.Q))
	}
	return col*g.P + row
}

// Coords returns the (row, col) grid position of rank.
func (g *Grid) Coords(rank int) (row, col int) {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("grid: rank %d outside %dx%d", rank, g.P, g.Q))
	}
	return rank % g.P, rank / g.P
}

// RowRanks returns the ranks of grid row `row` in column order.
func (g *Grid) RowRanks(row int) []int {
	out := make([]int, g.Q)
	for c := 0; c < g.Q; c++ {
		out[c] = g.Rank(row, c)
	}
	return out
}

// ColRanks returns the ranks of grid column `col` in row order.
func (g *Grid) ColRanks(col int) []int {
	out := make([]int, g.P)
	for r := 0; r < g.P; r++ {
		out[r] = g.Rank(r, col)
	}
	return out
}

// Chunk describes one contiguous piece of a 1-D block partition:
// global indices [Lo, Lo+N) assigned to partition index Idx.
type Chunk struct {
	Idx int
	Lo  int
	N   int
}

// BlockPartition splits n indices into parts chunks as evenly as possible
// (the first n%parts chunks get one extra element). Every chunk is returned,
// including empty ones when parts > n, so chunk index always equals grid
// coordinate.
func BlockPartition(n, parts int) []Chunk {
	if parts <= 0 {
		panic(fmt.Sprintf("grid: BlockPartition with %d parts", parts))
	}
	if n < 0 {
		panic(fmt.Sprintf("grid: BlockPartition with negative n=%d", n))
	}
	base := n / parts
	extra := n % parts
	out := make([]Chunk, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < extra {
			sz++
		}
		out[i] = Chunk{Idx: i, Lo: lo, N: sz}
		lo += sz
	}
	return out
}

// PartitionOf returns the chunk index owning global index i under
// BlockPartition(n, parts). It panics when i is out of range.
func PartitionOf(n, parts, i int) int {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("grid: index %d outside [0,%d)", i, n))
	}
	base := n / parts
	extra := n % parts
	// First `extra` chunks have size base+1.
	wide := extra * (base + 1)
	if i < wide {
		return i / (base + 1)
	}
	if base == 0 {
		panic("grid: unreachable: index beyond all non-empty chunks")
	}
	return extra + (i-wide)/base
}

// Overlap describes the intersection of chunk A-chunk ai and B-chunk bi of
// two partitions of the same index space: global range [Lo, Lo+N).
type Overlap struct {
	AIdx, BIdx int
	Lo, N      int
}

// Intersect returns the non-empty pairwise intersections of two block
// partitions of the same n indices, ordered by Lo. SRUMMA uses this to form
// tasks when matrix A splits k into q chunks while matrix B splits k into p
// chunks.
func Intersect(a, b []Chunk) []Overlap {
	var out []Overlap
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].N == 0 {
			i++
			continue
		}
		if b[j].N == 0 {
			j++
			continue
		}
		lo := max(a[i].Lo, b[j].Lo)
		hi := min(a[i].Lo+a[i].N, b[j].Lo+b[j].N)
		if hi > lo {
			out = append(out, Overlap{AIdx: a[i].Idx, BIdx: b[j].Idx, Lo: lo, N: hi - lo})
		}
		// Advance whichever chunk ends first.
		if a[i].Lo+a[i].N <= b[j].Lo+b[j].N {
			i++
		} else {
			j++
		}
	}
	return out
}

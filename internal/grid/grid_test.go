package grid

import (
	"testing"
	"testing/quick"
)

func TestNewGridValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Fatal("expected error for 0 rows")
	}
	if _, err := New(3, -1); err == nil {
		t.Fatal("expected error for negative cols")
	}
	g, err := New(2, 3)
	if err != nil || g.Size() != 6 {
		t.Fatalf("New(2,3): %v, size %d", err, g.Size())
	}
}

func TestSquareGrid(t *testing.T) {
	cases := map[int][2]int{
		1: {1, 1}, 4: {2, 2}, 6: {2, 3}, 12: {3, 4}, 16: {4, 4},
		128: {8, 16}, 7: {1, 7}, 36: {6, 6},
	}
	for n, want := range cases {
		g, err := Square(n)
		if err != nil {
			t.Fatalf("Square(%d): %v", n, err)
		}
		if g.P != want[0] || g.Q != want[1] {
			t.Errorf("Square(%d) = %dx%d, want %dx%d", n, g.P, g.Q, want[0], want[1])
		}
	}
	if _, err := Square(0); err == nil {
		t.Fatal("expected error for Square(0)")
	}
}

func TestRankCoordsRoundTrip(t *testing.T) {
	g, _ := New(3, 5)
	seen := make(map[int]bool)
	for r := 0; r < 3; r++ {
		for c := 0; c < 5; c++ {
			rank := g.Rank(r, c)
			if seen[rank] {
				t.Fatalf("duplicate rank %d", rank)
			}
			seen[rank] = true
			rr, cc := g.Coords(rank)
			if rr != r || cc != c {
				t.Fatalf("Coords(Rank(%d,%d)) = (%d,%d)", r, c, rr, cc)
			}
		}
	}
	if len(seen) != 15 {
		t.Fatalf("covered %d ranks, want 15", len(seen))
	}
}

func TestColumnMajorRanks(t *testing.T) {
	// Paper Figure 4: a node holds a grid column, so column-major rank
	// numbering puts P00, P10, P20, P30 on ranks 0..3.
	g, _ := New(4, 4)
	for r := 0; r < 4; r++ {
		if g.Rank(r, 0) != r {
			t.Fatalf("Rank(%d,0) = %d, want %d", r, g.Rank(r, 0), r)
		}
	}
	if g.Rank(0, 1) != 4 {
		t.Fatalf("Rank(0,1) = %d, want 4", g.Rank(0, 1))
	}
}

func TestRowColRanks(t *testing.T) {
	g, _ := New(2, 3)
	row := g.RowRanks(1)
	if len(row) != 3 || row[0] != g.Rank(1, 0) || row[2] != g.Rank(1, 2) {
		t.Fatalf("RowRanks(1) = %v", row)
	}
	col := g.ColRanks(2)
	if len(col) != 2 || col[0] != g.Rank(0, 2) || col[1] != g.Rank(1, 2) {
		t.Fatalf("ColRanks(2) = %v", col)
	}
}

func TestBlockPartitionCoversAll(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{10, 3}, {10, 10}, {10, 1}, {3, 5}, {0, 4}, {100, 7}, {1, 1},
	} {
		chunks := BlockPartition(tc.n, tc.parts)
		if len(chunks) != tc.parts {
			t.Fatalf("n=%d parts=%d: %d chunks", tc.n, tc.parts, len(chunks))
		}
		pos, total := 0, 0
		for i, ch := range chunks {
			if ch.Idx != i || ch.Lo != pos || ch.N < 0 {
				t.Fatalf("n=%d parts=%d chunk %d: %+v (pos %d)", tc.n, tc.parts, i, ch, pos)
			}
			pos += ch.N
			total += ch.N
		}
		if total != tc.n {
			t.Fatalf("n=%d parts=%d: chunks cover %d", tc.n, tc.parts, total)
		}
		// Sizes differ by at most one and are non-increasing.
		for i := 1; i < len(chunks); i++ {
			if chunks[i].N > chunks[i-1].N {
				t.Fatalf("chunk sizes increase at %d: %v", i, chunks)
			}
			if chunks[0].N-chunks[i].N > 1 {
				t.Fatalf("chunk sizes differ by more than one: %v", chunks)
			}
		}
	}
}

func TestPartitionOfMatchesChunks(t *testing.T) {
	f := func(nn, pp uint8) bool {
		n := 1 + int(nn%200)
		parts := 1 + int(pp%16)
		chunks := BlockPartition(n, parts)
		for _, ch := range chunks {
			for i := ch.Lo; i < ch.Lo+ch.N; i++ {
				if PartitionOf(n, parts, i) != ch.Idx {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectAligned(t *testing.T) {
	a := BlockPartition(12, 4)
	b := BlockPartition(12, 4)
	ov := Intersect(a, b)
	if len(ov) != 4 {
		t.Fatalf("aligned intersect gave %d overlaps", len(ov))
	}
	for i, o := range ov {
		if o.AIdx != i || o.BIdx != i || o.N != 3 {
			t.Fatalf("overlap %d: %+v", i, o)
		}
	}
}

func TestIntersectMisaligned(t *testing.T) {
	a := BlockPartition(12, 3) // 4,4,4
	b := BlockPartition(12, 4) // 3,3,3,3
	ov := Intersect(a, b)
	// Boundaries at 3,4,6,8,9 -> pieces 0-3,3-4,4-6,6-8,8-9,9-12.
	if len(ov) != 6 {
		t.Fatalf("misaligned intersect gave %d overlaps: %+v", len(ov), ov)
	}
	total := 0
	pos := 0
	for _, o := range ov {
		if o.Lo != pos {
			t.Fatalf("gap or overlap at %d: %+v", pos, o)
		}
		pos += o.N
		total += o.N
	}
	if total != 12 {
		t.Fatalf("overlaps cover %d of 12", total)
	}
}

func TestIntersectQuickCoversRange(t *testing.T) {
	f := func(nn, pa, pb uint8) bool {
		n := 1 + int(nn%100)
		a := BlockPartition(n, 1+int(pa%8))
		b := BlockPartition(n, 1+int(pb%8))
		ov := Intersect(a, b)
		pos := 0
		for _, o := range ov {
			if o.Lo != pos || o.N <= 0 {
				return false
			}
			// Every overlap must lie inside both named chunks.
			ac, bc := a[o.AIdx], b[o.BIdx]
			if o.Lo < ac.Lo || o.Lo+o.N > ac.Lo+ac.N || o.Lo < bc.Lo || o.Lo+o.N > bc.Lo+bc.N {
				return false
			}
			pos += o.N
		}
		return pos == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectEmptyChunks(t *testing.T) {
	a := BlockPartition(3, 5) // sizes 1,1,1,0,0
	b := BlockPartition(3, 2)
	ov := Intersect(a, b)
	pos := 0
	for _, o := range ov {
		pos += o.N
	}
	if pos != 3 {
		t.Fatalf("overlaps cover %d of 3: %+v", pos, ov)
	}
}

func TestBestForSquareMatchesSquare(t *testing.T) {
	for _, n := range []int{4, 16, 64} {
		got, err := BestFor(n, 1000, 1000)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Square(n)
		if got.P != want.P || got.Q != want.Q {
			t.Errorf("BestFor(%d, square) = %dx%d, want %dx%d", n, got.P, got.Q, want.P, want.Q)
		}
	}
}

func TestBestForSkinnyResults(t *testing.T) {
	// Tall result: more grid rows than columns.
	g, err := BestFor(16, 8000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if g.P <= g.Q {
		t.Errorf("tall result should stretch rows: got %dx%d", g.P, g.Q)
	}
	// Wide result: the mirror.
	g, _ = BestFor(16, 500, 8000)
	if g.Q <= g.P {
		t.Errorf("wide result should stretch cols: got %dx%d", g.P, g.Q)
	}
	// Vector result (n=1): the grid collapses to a column.
	g, _ = BestFor(12, 6000, 1)
	if g.P != 12 || g.Q != 1 {
		t.Errorf("vector result: got %dx%d, want 12x1", g.P, g.Q)
	}
}

func TestBestForValidation(t *testing.T) {
	if _, err := BestFor(0, 4, 4); err == nil {
		t.Error("nprocs=0 accepted")
	}
	if _, err := BestFor(4, 0, 4); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestBestForQuickIsOptimal(t *testing.T) {
	f := func(np8, mm, nn uint8) bool {
		nprocs := 1 + int(np8%32)
		m := 1 + int(mm)*16
		n := 1 + int(nn)*16
		g, err := BestFor(nprocs, m, n)
		if err != nil || g.Size() != nprocs {
			return false
		}
		got := float64(m)/float64(g.P) + float64(n)/float64(g.Q)
		for p := 1; p <= nprocs; p++ {
			if nprocs%p != 0 {
				continue
			}
			alt := float64(m)/float64(p) + float64(n)/float64(nprocs/p)
			if alt < got-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

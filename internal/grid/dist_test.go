package grid

import (
	"testing"
	"testing/quick"

	"srumma/internal/mat"
)

func TestBlockDistShapes(t *testing.T) {
	g, _ := New(2, 3)
	d := NewBlockDist(g, 10, 11)
	totalR, totalC := 0, 0
	for pr := 0; pr < 2; pr++ {
		r, _ := d.BlockShape(pr, 0)
		totalR += r
	}
	for pc := 0; pc < 3; pc++ {
		_, c := d.BlockShape(0, pc)
		totalC += c
	}
	if totalR != 10 || totalC != 11 {
		t.Fatalf("block shapes sum to %dx%d", totalR, totalC)
	}
	if d.MaxBlockElems() != 5*4 {
		t.Fatalf("MaxBlockElems = %d, want 20", d.MaxBlockElems())
	}
}

func TestBlockDistOwnerOf(t *testing.T) {
	g, _ := New(2, 2)
	d := NewBlockDist(g, 4, 4)
	if d.OwnerOf(0, 0) != g.Rank(0, 0) || d.OwnerOf(3, 3) != g.Rank(1, 1) {
		t.Fatal("corner ownership wrong")
	}
	if d.OwnerOf(1, 2) != g.Rank(0, 1) {
		t.Fatal("(1,2) ownership wrong")
	}
}

func TestBlockScatterGatherRoundTrip(t *testing.T) {
	g, _ := New(3, 2)
	d := NewBlockDist(g, 7, 9)
	global := mat.Indexed(7, 9)
	blocks, err := d.Scatter(global)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.Gather(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(global, back) {
		t.Fatal("scatter/gather round trip lost data")
	}
}

func TestBlockScatterShapeError(t *testing.T) {
	g, _ := New(2, 2)
	d := NewBlockDist(g, 4, 4)
	if _, err := d.Scatter(mat.New(5, 4)); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := d.Gather(make([]*mat.Matrix, 3)); err == nil {
		t.Fatal("expected block-count error")
	}
}

func TestNumLocalMatchesEnumeration(t *testing.T) {
	f := func(nn, nb8, np8 uint8) bool {
		n := int(nn % 200)
		nb := 1 + int(nb8%16)
		nprocs := 1 + int(np8%8)
		counts := make([]int, nprocs)
		for gidx := 0; gidx < n; gidx++ {
			p, _ := GlobalToLocal(gidx, nb, nprocs)
			counts[p]++
		}
		for p := 0; p < nprocs; p++ {
			if counts[p] != NumLocal(n, nb, p, nprocs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalLocalRoundTrip(t *testing.T) {
	f := func(gg, nb8, np8 uint8) bool {
		g := int(gg)
		nb := 1 + int(nb8%16)
		nprocs := 1 + int(np8%8)
		p, l := GlobalToLocal(g, nb, nprocs)
		return LocalToGlobal(l, nb, p, nprocs) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicLocalIndicesIncrease(t *testing.T) {
	// Within one partition, local indices must appear in increasing global
	// order — pdgemm's panel math depends on it.
	nb, nprocs := 3, 4
	lastLocal := make(map[int]int)
	for g := 0; g < 50; g++ {
		p, l := GlobalToLocal(g, nb, nprocs)
		if prev, ok := lastLocal[p]; ok && l != prev+1 {
			t.Fatalf("partition %d local indices not consecutive: %d after %d (g=%d)", p, l, prev, g)
		}
		lastLocal[p] = l
	}
}

func TestCyclicScatterGatherRoundTrip(t *testing.T) {
	g, _ := New(2, 3)
	d, err := NewCyclicDist(g, 11, 13, 2)
	if err != nil {
		t.Fatal(err)
	}
	global := mat.Indexed(11, 13)
	blocks, err := d.Scatter(global)
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.Gather(blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(global, back) {
		t.Fatal("cyclic scatter/gather round trip lost data")
	}
}

func TestCyclicScatterQuick(t *testing.T) {
	f := func(seed uint64, rr, cc, nb8 uint8) bool {
		rows := 1 + int(rr%20)
		cols := 1 + int(cc%20)
		nb := 1 + int(nb8%5)
		g, _ := New(2, 2)
		d, err := NewCyclicDist(g, rows, cols, nb)
		if err != nil {
			return false
		}
		global := mat.Random(rows, cols, seed)
		blocks, err := d.Scatter(global)
		if err != nil {
			return false
		}
		back, err := d.Gather(blocks)
		if err != nil {
			return false
		}
		return mat.Equal(global, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicDistValidation(t *testing.T) {
	g, _ := New(2, 2)
	if _, err := NewCyclicDist(g, 4, 4, 0); err == nil {
		t.Fatal("expected error for nb=0")
	}
}

func TestCyclicOwnerOf(t *testing.T) {
	g, _ := New(2, 2)
	d, _ := NewCyclicDist(g, 8, 8, 2)
	// Tile (0,0) -> (0,0); tile (1,1) -> (1,1); tile (2,2) wraps to (0,0).
	if d.OwnerOf(0, 0) != g.Rank(0, 0) {
		t.Fatal("tile (0,0) owner wrong")
	}
	if d.OwnerOf(2, 2) != g.Rank(1, 1) {
		t.Fatal("tile (1,1) owner wrong")
	}
	if d.OwnerOf(4, 4) != g.Rank(0, 0) {
		t.Fatal("tile (2,2) should wrap to (0,0)")
	}
}

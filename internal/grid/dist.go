package grid

import (
	"fmt"

	"srumma/internal/mat"
)

// BlockDist is the regular two-dimensional block distribution the paper
// assumes for SRUMMA (Figure 2): an m x n matrix on a P x Q grid, with rows
// split into P near-equal chunks and columns into Q near-equal chunks, one
// block per process.
type BlockDist struct {
	G          *Grid
	Rows, Cols int
	RowChunks  []Chunk // length G.P
	ColChunks  []Chunk // length G.Q
}

// NewBlockDist builds the block distribution of an rows x cols matrix over g.
func NewBlockDist(g *Grid, rows, cols int) *BlockDist {
	return &BlockDist{
		G:         g,
		Rows:      rows,
		Cols:      cols,
		RowChunks: BlockPartition(rows, g.P),
		ColChunks: BlockPartition(cols, g.Q),
	}
}

// BlockShape returns the local block shape of the process at grid position
// (pr, pc).
func (d *BlockDist) BlockShape(pr, pc int) (r, c int) {
	return d.RowChunks[pr].N, d.ColChunks[pc].N
}

// BlockOrigin returns the global (row, col) of the top-left element of the
// block at grid position (pr, pc).
func (d *BlockDist) BlockOrigin(pr, pc int) (i, j int) {
	return d.RowChunks[pr].Lo, d.ColChunks[pc].Lo
}

// OwnerOf returns the rank owning global element (i, j).
func (d *BlockDist) OwnerOf(i, j int) int {
	pr := PartitionOf(d.Rows, d.G.P, i)
	pc := PartitionOf(d.Cols, d.G.Q, j)
	return d.G.Rank(pr, pc)
}

// LocalShape returns the block shape owned by rank.
func (d *BlockDist) LocalShape(rank int) (r, c int) {
	pr, pc := d.G.Coords(rank)
	return d.BlockShape(pr, pc)
}

// MaxBlockElems returns the largest local block size over all ranks, which
// sizes the communication buffers.
func (d *BlockDist) MaxBlockElems() int {
	return d.RowChunks[0].N * d.ColChunks[0].N // first chunks are the widest
}

// Scatter splits a global matrix into per-rank blocks (tightly strided
// copies) indexed by rank.
func (d *BlockDist) Scatter(global *mat.Matrix) ([]*mat.Matrix, error) {
	if global.Rows != d.Rows || global.Cols != d.Cols {
		return nil, fmt.Errorf("grid: Scatter shape %dx%d does not match distribution %dx%d",
			global.Rows, global.Cols, d.Rows, d.Cols)
	}
	out := make([]*mat.Matrix, d.G.Size())
	for rank := 0; rank < d.G.Size(); rank++ {
		pr, pc := d.G.Coords(rank)
		r, c := d.BlockShape(pr, pc)
		i, j := d.BlockOrigin(pr, pc)
		out[rank] = global.View(i, j, r, c).Clone()
	}
	return out, nil
}

// Gather reassembles per-rank blocks into a global matrix. It is the inverse
// of Scatter.
func (d *BlockDist) Gather(blocks []*mat.Matrix) (*mat.Matrix, error) {
	if len(blocks) != d.G.Size() {
		return nil, fmt.Errorf("grid: Gather got %d blocks, want %d", len(blocks), d.G.Size())
	}
	global := mat.New(d.Rows, d.Cols)
	for rank, blk := range blocks {
		pr, pc := d.G.Coords(rank)
		r, c := d.BlockShape(pr, pc)
		if blk.Rows != r || blk.Cols != c {
			return nil, fmt.Errorf("grid: Gather rank %d block %dx%d, want %dx%d", rank, blk.Rows, blk.Cols, r, c)
		}
		i, j := d.BlockOrigin(pr, pc)
		for row := 0; row < r; row++ {
			copy(global.Data[(i+row)*global.Stride+j:(i+row)*global.Stride+j+c],
				blk.Data[row*blk.Stride:row*blk.Stride+c])
		}
	}
	return global, nil
}

// CyclicDist is the two-dimensional block-cyclic distribution used by
// ScaLAPACK/PBLAS: nb x nb tiles dealt round-robin over the grid, so tile
// (bi, bj) lives on grid position (bi mod P, bj mod Q). The pdgemm baseline
// runs on this layout.
type CyclicDist struct {
	G          *Grid
	Rows, Cols int
	NB         int
}

// NewCyclicDist builds a block-cyclic distribution with square tiles of
// side nb.
func NewCyclicDist(g *Grid, rows, cols, nb int) (*CyclicDist, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("grid: block-cyclic nb must be positive, got %d", nb)
	}
	return &CyclicDist{G: g, Rows: rows, Cols: cols, NB: nb}, nil
}

// NumLocal is ScaLAPACK's NUMROC: the number of the n indices that land on
// partition `proc` of `nprocs` under 1-D block-cyclic dealing with block nb.
func NumLocal(n, nb, proc, nprocs int) int {
	nblocks := n / nb
	local := (nblocks / nprocs) * nb
	extra := nblocks % nprocs
	switch {
	case proc < extra:
		local += nb
	case proc == extra:
		local += n % nb
	}
	return local
}

// LocalShape returns the local array shape owned by rank.
func (d *CyclicDist) LocalShape(rank int) (r, c int) {
	pr, pc := d.G.Coords(rank)
	return NumLocal(d.Rows, d.NB, pr, d.G.P), NumLocal(d.Cols, d.NB, pc, d.G.Q)
}

// GlobalToLocal maps a global index g to (owner partition, local index)
// under the 1-D block-cyclic map.
func GlobalToLocal(g, nb, nprocs int) (proc, local int) {
	b := g / nb
	return b % nprocs, (b/nprocs)*nb + g%nb
}

// LocalToGlobal is the inverse of GlobalToLocal for a fixed partition.
func LocalToGlobal(local, nb, proc, nprocs int) int {
	lb := local / nb
	return (lb*nprocs+proc)*nb + local%nb
}

// OwnerOf returns the rank owning global element (i, j).
func (d *CyclicDist) OwnerOf(i, j int) int {
	pr, _ := GlobalToLocal(i, d.NB, d.G.P)
	pc, _ := GlobalToLocal(j, d.NB, d.G.Q)
	return d.G.Rank(pr, pc)
}

// Scatter splits a global matrix into per-rank local arrays in block-cyclic
// order.
func (d *CyclicDist) Scatter(global *mat.Matrix) ([]*mat.Matrix, error) {
	if global.Rows != d.Rows || global.Cols != d.Cols {
		return nil, fmt.Errorf("grid: cyclic Scatter shape %dx%d does not match %dx%d",
			global.Rows, global.Cols, d.Rows, d.Cols)
	}
	out := make([]*mat.Matrix, d.G.Size())
	for rank := range out {
		r, c := d.LocalShape(rank)
		out[rank] = mat.New(r, c)
	}
	for i := 0; i < d.Rows; i++ {
		pr, li := GlobalToLocal(i, d.NB, d.G.P)
		for j := 0; j < d.Cols; j++ {
			pc, lj := GlobalToLocal(j, d.NB, d.G.Q)
			blk := out[d.G.Rank(pr, pc)]
			blk.Data[li*blk.Stride+lj] = global.Data[i*global.Stride+j]
		}
	}
	return out, nil
}

// Gather reassembles block-cyclic local arrays into a global matrix.
func (d *CyclicDist) Gather(blocks []*mat.Matrix) (*mat.Matrix, error) {
	if len(blocks) != d.G.Size() {
		return nil, fmt.Errorf("grid: cyclic Gather got %d blocks, want %d", len(blocks), d.G.Size())
	}
	for rank, blk := range blocks {
		r, c := d.LocalShape(rank)
		if blk.Rows != r || blk.Cols != c {
			return nil, fmt.Errorf("grid: cyclic Gather rank %d block %dx%d, want %dx%d",
				rank, blk.Rows, blk.Cols, r, c)
		}
	}
	global := mat.New(d.Rows, d.Cols)
	for i := 0; i < d.Rows; i++ {
		pr, li := GlobalToLocal(i, d.NB, d.G.P)
		for j := 0; j < d.Cols; j++ {
			pc, lj := GlobalToLocal(j, d.NB, d.G.Q)
			blk := blocks[d.G.Rank(pr, pc)]
			global.Data[i*global.Stride+j] = blk.Data[li*blk.Stride+lj]
		}
	}
	return global, nil
}

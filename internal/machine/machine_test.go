package machine

import (
	"sort"
	"testing"
)

func TestAllProfilesValidate(t *testing.T) {
	for name, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("map key %q != profile name %q", name, p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("sgi-altix")
	if err != nil || p.Name != "sgi-altix" {
		t.Fatalf("ByName: %v %v", p.Name, err)
	}
	if _, err := ByName("cray-t3e"); err == nil {
		t.Fatal("expected error for unknown platform")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.ProcsPerNode = 0 },
		func(p *Profile) { p.PeakFlops = 0 },
		func(p *Profile) { p.MemBW = -1 },
		func(p *Profile) { p.ZeroCopy = false; p.HostCopyBW = 0 },
		func(p *Profile) { p.RemoteGemmDerate = 0.5 },
		func(p *Profile) { p.EagerThreshold = -1 },
	}
	for i, mutate := range cases {
		p := LinuxMyrinet()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestGemmRateMonotoneInDims(t *testing.T) {
	p := SGIAltix()
	if p.GemmRate(10, 10, 10, false) >= p.GemmRate(1000, 1000, 1000, false) {
		t.Fatal("small multiplies should run below asymptotic rate")
	}
	if p.GemmRate(1000, 1000, 1000, false) >= p.PeakFlops {
		t.Fatal("rate must stay below peak")
	}
	// The smallest dimension dominates: a skinny k should throttle.
	if p.GemmRate(1000, 1000, 4, false) >= p.GemmRate(1000, 1000, 256, false) {
		t.Fatal("skinny-k multiply should be slower")
	}
}

func TestGemmRateRemoteDerate(t *testing.T) {
	x1 := CrayX1()
	local := x1.GemmRate(500, 500, 500, false)
	remote := x1.GemmRate(500, 500, 500, true)
	if remote >= local {
		t.Fatal("remote operands must derate on the X1")
	}
	ratio := local / remote
	if ratio < x1.RemoteGemmDerate*0.99 || ratio > x1.RemoteGemmDerate*1.01 {
		t.Fatalf("derate ratio %g, want %g", ratio, x1.RemoteGemmDerate)
	}
	// Altix derates much less than the X1 — that asymmetry is Figure 5.
	if SGIAltix().RemoteGemmDerate >= x1.RemoteGemmDerate {
		t.Fatal("Altix must derate less than X1")
	}
}

func TestGemmTimeScalesWithWork(t *testing.T) {
	p := LinuxMyrinet()
	t1 := p.GemmTime(200, 200, 200, false)
	t2 := p.GemmTime(400, 400, 400, false)
	if t2 <= 7*t1 { // 8x flops, slightly higher efficiency
		t.Fatalf("t(400)=%g vs t(200)=%g", t2, t1)
	}
}

func TestPlatformCharacterAssumptions(t *testing.T) {
	// These relationships drive the paper's qualitative results; lock them
	// in so a careless recalibration cannot silently invert a conclusion.
	lm, sp, x1, al := LinuxMyrinet(), IBMSP(), CrayX1(), SGIAltix()
	if !lm.ZeroCopy || sp.ZeroCopy {
		t.Fatal("Myrinet is zero-copy, LAPI is not")
	}
	if !x1.DomainSpansMachine || !al.DomainSpansMachine || lm.DomainSpansMachine || sp.DomainSpansMachine {
		t.Fatal("only X1 and Altix are machine-wide shared memory")
	}
	if x1.RemoteCacheable || !al.RemoteCacheable {
		t.Fatal("X1 remote memory is uncacheable; Altix is cacheable")
	}
	if al.MPIBW >= al.NetBW*0.5 {
		t.Fatal("MPI on Altix must cost extra copies vs direct memcpy")
	}
	if sp.ProcsPerNode != 16 || lm.ProcsPerNode != 2 {
		t.Fatal("node widths: SP is 16-way, Linux cluster is 2-way")
	}
	names := make([]string, 0)
	for n := range All() {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) != 6 {
		t.Fatalf("expected 6 platforms, have %v", names)
	}
	if mc := ModernCluster(); !mc.ZeroCopy || mc.NetBW <= LinuxMyrinet().NetBW*10 {
		t.Fatal("modern cluster must be zero-copy with a far faster fabric")
	}
	// The KLAPI projection differs from the SP only in the RMA path.
	sp, kl := IBMSP(), IBMSPKLAPI()
	if !kl.ZeroCopy || sp.ZeroCopy {
		t.Fatal("KLAPI must be the zero-copy SP")
	}
	if kl.RMALatency >= sp.RMALatency {
		t.Fatal("KLAPI get latency should improve on LAPI's")
	}
	if kl.MPIBW != sp.MPIBW || kl.PeakFlops != sp.PeakFlops {
		t.Fatal("KLAPI must not change non-RMA parameters")
	}
}

// Package machine defines the modeled platform profiles for the four
// systems in the paper's experimental study (Section 4): a Linux/Xeon
// cluster with Myrinet-2000, an IBM SP with 16-way Power3 nodes, a Cray X1,
// and a 128-processor SGI Altix 3000. A profile parameterizes the
// virtual-time runtime (internal/simrt): node speed as a dgemm efficiency
// curve, memory and network bandwidths/latencies, protocol properties
// (zero-copy capability, eager/rendezvous threshold), and the shared-memory
// structure (whether remote memory is load/store accessible and cacheable).
//
// Parameter values are calibrated so the simulated runs land near the
// paper's reported GFLOP/s; EXPERIMENTS.md records paper-vs-measured for
// every figure and table. The numbers are per-component models (peak dgemm
// rate of an Itanium-2, Myrinet wire rate, LAPI latency, ...), not curve
// fits to the result charts.
package machine

import "fmt"

// Profile describes one modeled platform.
type Profile struct {
	Name string

	// Topology.
	ProcsPerNode int
	// DomainSpansMachine marks systems where any processor can reach all
	// memory with load/store or direct memcpy (SGI Altix, Cray X1).
	DomainSpansMachine bool
	// RemoteCacheable reports whether remotely accessed memory is cacheable
	// (Altix: yes; Cray X1: no, so SRUMMA's copy-based flavor wins there).
	RemoteCacheable bool

	// Serial dgemm model: time = (2mnk + GemmSurface*(mn+nk+km)) / PeakFlops.
	// The surface term charges the per-call boundary work (loading/storing
	// panel edges, pipeline startup) that makes skinny multiplies run below
	// the asymptotic rate. PeakFlops is the asymptotic *achieved* dgemm
	// rate of the vendor BLAS, not the marketing peak.
	PeakFlops   float64 // flops/s per processor
	GemmSurface float64 // overhead flops per boundary element
	// RemoteGemmDerate divides the dgemm rate when an operand is accessed
	// directly in remote memory (NUMA or non-cached loads).
	RemoteGemmDerate float64

	// Memory system (intra-node copies, buffer packing).
	MemBW      float64 // bytes/s per node memory port
	MemLatency float64 // seconds
	// CopyBW caps the rate of a single CPU-driven shared-memory copy (the
	// intra-domain get path): one processor streaming read+write moves data
	// slower than the fabric's peak. 0 means uncapped.
	CopyBW float64

	// Interconnect.
	NetBW      float64 // bytes/s per NIC direction
	NetLatency float64 // one-way latency, seconds
	// BisectionPerNode, when positive, contributes to a machine-wide
	// bisection cap of BisectionPerNode * numNodes shared by all
	// inter-node traffic (the IBM SP's colony switch is not a full
	// crossbar). 0 = full bisection.
	BisectionPerNode float64

	// One-sided protocol (ARMCI model).
	RMALatency float64 // extra get request/response overhead, seconds
	ZeroCopy   bool    // NIC moves user buffers without host CPU (Myrinet GM)
	HostCopyBW float64 // staging-copy bandwidth when !ZeroCopy, bytes/s

	// Two-sided protocol (MPI model).
	MPILatency     float64 // per-message overhead, seconds
	MPIBW          float64 // effective max MPI bandwidth (copies included)
	EagerThreshold int     // bytes; larger messages use rendezvous
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	switch {
	case p.ProcsPerNode <= 0:
		return fmt.Errorf("machine %s: ProcsPerNode=%d", p.Name, p.ProcsPerNode)
	case p.PeakFlops <= 0 || p.MemBW <= 0 || p.NetBW <= 0 || p.MPIBW <= 0:
		return fmt.Errorf("machine %s: non-positive rate", p.Name)
	case !p.ZeroCopy && p.HostCopyBW <= 0:
		return fmt.Errorf("machine %s: HostCopyBW required without zero-copy", p.Name)
	case p.RemoteGemmDerate < 1:
		return fmt.Errorf("machine %s: RemoteGemmDerate=%g < 1", p.Name, p.RemoteGemmDerate)
	case p.EagerThreshold < 0:
		return fmt.Errorf("machine %s: EagerThreshold=%d", p.Name, p.EagerThreshold)
	}
	return nil
}

// GemmTime returns the modeled seconds for an m x n x k multiply-add.
// remote derates for direct access to non-local memory.
func (p Profile) GemmTime(m, n, k int, remote bool) float64 {
	fm, fn, fk := float64(m), float64(n), float64(k)
	work := 2*fm*fn*fk + p.GemmSurface*(fm*fn+fn*fk+fk*fm)
	t := work / p.PeakFlops
	if remote {
		t *= p.RemoteGemmDerate
	}
	return t
}

// GemmRate returns the modeled dgemm rate in flops/s for an m x n x k
// multiply (the useful 2mnk flops over the modeled time).
func (p Profile) GemmRate(m, n, k int, remote bool) float64 {
	t := p.GemmTime(m, n, k, remote)
	if t <= 0 {
		return p.PeakFlops
	}
	return 2 * float64(m) * float64(n) * float64(k) / t
}

// LinuxMyrinet models the dual-2.4 GHz Xeon / Myrinet-2000 cluster: a
// zero-copy-capable RMA network (GM), MKL dgemm, small SMP nodes.
func LinuxMyrinet() Profile {
	return Profile{
		Name:             "linux-myrinet",
		ProcsPerNode:     2,
		PeakFlops:        3.9e9, // MKL on a 2.4 GHz P4 Xeon (4.8 peak)
		GemmSurface:      15,
		RemoteGemmDerate: 1, // no remote load/store on a cluster
		MemBW:            1.6e9,
		MemLatency:       0.3e-6,
		CopyBW:           1.2e9, // single-CPU memcpy on the shared bus
		NetBW:            245e6, // Myrinet-2000 ~250 MB/s
		NetLatency:       7e-6,
		RMALatency:       9e-6, // get = request + reply
		ZeroCopy:         true,
		HostCopyBW:       150e6, // staging through host memory (Fig. 9 ablation)
		MPILatency:       7e-6,
		MPIBW:            230e6, // MPICH-GM slightly below wire rate
		EagerThreshold:   16 << 10,
	}
}

// IBMSP models the NERSC IBM SP: 16-way 375 MHz Power3 nodes, colony
// switch, LAPI (interrupt-driven, not zero-copy).
func IBMSP() Profile {
	return Profile{
		Name:             "ibm-sp",
		ProcsPerNode:     16,
		PeakFlops:        1.3e9, // ESSL on Power3 (1.5 peak)
		GemmSurface:      14,
		RemoteGemmDerate: 1,
		MemBW:            1.0e9,
		MemLatency:       0.4e-6,
		CopyBW:           700e6, // single-CPU copy on a 16-way Power3 node
		NetBW:            350e6, // colony switch per node
		NetLatency:       17e-6,
		BisectionPerNode: 300e6, // colony bisection slightly under full crossbar
		RMALatency:       24e-6, // LAPI interrupt cost makes get latency high
		ZeroCopy:         false, // LAPI stages through DMA buffers
		HostCopyBW:       340e6, // staging lands just below the 350 MB/s wire
		MPILatency:       16e-6, // IBM MPI polls, cheaper than LAPI interrupts
		MPIBW:            330e6,
		EagerThreshold:   16 << 10,
	}
}

// IBMSPKLAPI models the paper's stated future-work expectation: the IBM SP
// with KLAPI, IBM's kernel-space zero-copy variant of LAPI ("we would
// expect our matrix multiplication to benefit from zero-copy protocols in
// LAPI, which IBM has already introduced in KLAPI", §4.1). Identical to
// IBMSP except the RMA path is zero-copy, so the staging copies and the
// remote-CPU steal disappear.
func IBMSPKLAPI() Profile {
	p := IBMSP()
	p.Name = "ibm-sp-klapi"
	p.ZeroCopy = true
	p.HostCopyBW = 0
	// The kernel-assisted path also shaves the interrupt-heavy get latency.
	p.RMALatency = 18e-6
	return p
}

// CrayX1 models ORNL's X1: 4 MSPs per node, globally addressable memory
// that is NOT cacheable remotely, very high copy bandwidth, comparatively
// slow MPI.
func CrayX1() Profile {
	return Profile{
		Name:               "cray-x1",
		ProcsPerNode:       4,
		DomainSpansMachine: true,
		RemoteCacheable:    false,
		PeakFlops:          11.0e9, // libsci on a 12.8 GFLOP/s MSP
		GemmSurface:        30,     // vector startup wants long dimensions
		RemoteGemmDerate:   6,      // uncached remote loads cripple dgemm (Fig. 5)
		MemBW:              18e9,
		MemLatency:         0.2e-6,
		CopyBW:             9e9,  // vectorized bcopy streams near fabric speed
		NetBW:              10e9, // remote load/store fabric per node
		NetLatency:         1.5e-6,
		RMALatency:         1.5e-6, // direct memcpy path, no NIC handshake
		ZeroCopy:           true,   // copies are done by the shared fabric
		HostCopyBW:         0,
		MPILatency:         20e-6, // X1 MPI latency is notoriously high
		MPIBW:              500e6, // unvectorized copies; far below the fabric
		EagerThreshold:     16 << 10,
	}
}

// SGIAltix models PNNL's Altix 3000: 128 Itanium-2 1.5 GHz processors,
// NUMAlink, cache-coherent global shared memory (remote data is cacheable,
// so SRUMMA's direct-access flavor wins there).
func SGIAltix() Profile {
	return Profile{
		Name:               "sgi-altix",
		ProcsPerNode:       2, // C-brick pairs
		DomainSpansMachine: true,
		RemoteCacheable:    true,
		PeakFlops:          5.5e9, // SCSL on 6 GFLOP/s Itanium-2
		GemmSurface:        16,
		RemoteGemmDerate:   1.06, // NUMA read penalty, mostly amortized by caching
		MemBW:              6.4e9,
		MemLatency:         0.15e-6,
		CopyBW:             1.4e9, // single-Itanium memcpy, well below NUMAlink
		NetBW:              3.2e9, // NUMAlink-4 per brick
		NetLatency:         0.6e-6,
		RMALatency:         0.6e-6,
		ZeroCopy:           true,
		HostCopyBW:         0,
		MPILatency:         10e-6, // SGI MPT over shared memory, buffered path
		MPIBW:              150e6, // double-copy through per-pair MPT buffers
		EagerThreshold:     16 << 10,
	}
}

// ModernCluster is an extrapolation beyond the paper: a contemporary
// commodity cluster (64-core nodes, 200 Gb/s RDMA fabric) expressed in the
// same model, to check whether the paper's conclusions — one-sided zero-copy
// RMA beating two-sided message passing, overlap via nonblocking gets —
// survive two decades of hardware evolution. The ratios shrink (networks
// grew faster than the per-core flops SRUMMA must hide) but the ordering
// holds; see EXPERIMENTS.md.
func ModernCluster() Profile {
	return Profile{
		Name:             "modern-cluster",
		ProcsPerNode:     64,
		PeakFlops:        45e9, // one AVX-512 core running vendor dgemm
		GemmSurface:      20,
		RemoteGemmDerate: 1,
		MemBW:            200e9, // DDR5 node aggregate
		MemLatency:       0.1e-6,
		CopyBW:           12e9, // single-core streaming copy
		NetBW:            25e9, // 200 Gb/s NIC
		NetLatency:       1.3e-6,
		RMALatency:       1.8e-6, // RDMA read
		ZeroCopy:         true,   // RDMA is zero-copy by construction
		HostCopyBW:       8e9,
		MPILatency:       1.2e-6,
		MPIBW:            23e9,
		EagerThreshold:   8 << 10,
	}
}

// All returns the modeled platforms keyed by name: the paper's four
// evaluation systems, the KLAPI projection from its conclusions, and the
// modern-cluster extrapolation.
func All() map[string]Profile {
	out := map[string]Profile{}
	for _, p := range []Profile{LinuxMyrinet(), IBMSP(), IBMSPKLAPI(), CrayX1(), SGIAltix(), ModernCluster()} {
		out[p.Name] = p
	}
	return out
}

// ByName returns the named profile or an error listing the valid names.
func ByName(name string) (Profile, error) {
	all := All()
	if p, ok := all[name]; ok {
		return p, nil
	}
	names := make([]string, 0, len(all))
	for n := range all {
		names = append(names, n)
	}
	return Profile{}, fmt.Errorf("machine: unknown platform %q (have %v)", name, names)
}

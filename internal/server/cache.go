package server

// Content addressing for the serving layer. Every operand is identified
// by the SHA-256 of its shape-prefixed little-endian byte image — a
// wire-independent digest, so the same matrix sent over JSON and over the
// binary wire hashes identically. On top of the digests sit two
// structures:
//
//   - resultCache: a bounded LRU keyed by the full multiply identity
//     (digest_A, digest_B, case, alpha, beta, digest_C). A hit returns
//     the cached result matrix and skips admission queueing, the
//     scheduler, and the engine entirely. Hits are bit-identical to a
//     fresh compute because the engine itself is: GemmParallel partitions
//     deterministically and is pinned thread-count-invariant, so the
//     same operand bytes always produce the same result bytes.
//
//   - blockTable: a refcounted digest → operand-bytes intern table. When
//     concurrent or batched requests share an operand (the shared-weight
//     serving shape), every request after the first adopts the interned
//     slice, its own pooled decode buffer is returned immediately, and
//     the scheduler's LocKey coalescing packs the one canonical buffer
//     once per team job instead of once per request.
//
// Cached results are always freshly-allocated matrices (mat.New or
// engine Gather output) — never pooled request storage — so retaining
// them in the cache cannot alias a recycled decode buffer.

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"
	"time"

	"srumma/internal/core"
	"srumma/internal/mat"
	"srumma/internal/obs"
)

// digest is a SHA-256 content address.
type digest = [32]byte

// digester bundles a SHA-256 state with scratch space for the shape prefix
// and the sum. Pooling the whole bundle keeps steady-state digest
// computation allocation-free: writing a stack array into hash.Hash (or
// summing into one) would force it to escape on every call.
type digester struct {
	h     hash.Hash
	shape [16]byte
	sum   [sha256.Size]byte
}

var digesterPool = sync.Pool{New: func() any { return &digester{h: sha256.New()} }}

// digestMatrix content-addresses one operand: SHA-256 over a 16-byte
// little-endian (rows, cols) prefix followed by the little-endian float64
// image of data. The shape prefix keeps a 2x8 and an 8x2 with identical
// elements distinct; the LE image makes the digest equal across wires and
// hosts.
func digestMatrix(rows, cols int, data []float64) digest {
	dg := digesterPool.Get().(*digester)
	h := dg.h
	h.Reset()
	binary.LittleEndian.PutUint64(dg.shape[0:], uint64(rows))
	binary.LittleEndian.PutUint64(dg.shape[8:], uint64(cols))
	h.Write(dg.shape[:])
	if hostLittleEndian {
		h.Write(floatBytes(data))
	} else {
		var chunk [8192]byte
		for len(data) > 0 {
			n := len(data)
			if n > len(chunk)/8 {
				n = len(chunk) / 8
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(data[i]))
			}
			h.Write(chunk[:8*n])
			data = data[n:]
		}
	}
	h.Sum(dg.sum[:0])
	d := dg.sum
	digesterPool.Put(dg)
	return d
}

// cacheKey is the full identity of one multiply: operand content, the
// transpose case, and the exact scalar bits. digC is the zero digest when
// beta == 0 (C unread). Scalars are keyed by their IEEE bit patterns so
// -0.0 and 0.0 — which can produce different result bits — stay distinct.
type cacheKey struct {
	a, b, cIn digest
	cs        core.Case
	alphaBits uint64
	betaBits  uint64
}

type cacheEntry struct {
	key     cacheKey
	out     mat.Matrix
	dig     digest // result digest, echoed on every hit
	bytes   int64
	expires time.Time
	elem    *list.Element
}

// CacheStats is the result-cache slice of a metrics snapshot.
type CacheStats struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Evictions  int64   `json:"evictions"`
	Expired    int64   `json:"expired"`
	Entries    int64   `json:"entries"`
	Bytes      int64   `json:"bytes"`
	BlockDedup int64   `json:"block_dedup"`
	HitRate    float64 `json:"hit_rate"`
}

// resultCache is the bounded LRU result store. All methods are
// goroutine-safe; the cached matrices themselves are immutable by
// convention (handlers copy-on-write into responses only in the sense of
// encoding them — nothing mutates out.Data after insert).
type resultCache struct {
	mu         sync.Mutex
	entries    map[cacheKey]*cacheEntry
	lru        *list.List // front = most recent
	maxEntries int
	maxBytes   int64
	ttl        time.Duration
	bytes      int64
	now        func() time.Time // injectable for TTL tests

	hits, misses, evictions, expired *obs.Counter
	gEntries, gBytes                 *obs.Gauge
}

func newResultCache(maxEntries int, maxBytes int64, ttl time.Duration, reg *obs.Registry) *resultCache {
	return &resultCache{
		entries:    make(map[cacheKey]*cacheEntry),
		lru:        list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ttl:        ttl,
		now:        time.Now,
		hits:       reg.Counter("server.cache.hits"),
		misses:     reg.Counter("server.cache.misses"),
		evictions:  reg.Counter("server.cache.evictions"),
		expired:    reg.Counter("server.cache.expired"),
		gEntries:   reg.Gauge("server.cache.entries"),
		gBytes:     reg.Gauge("server.cache.bytes"),
	}
}

// get returns the cached result for key, refreshing its LRU position. A
// TTL-expired entry is removed and reported as a miss.
func (c *resultCache) get(key cacheKey) (mat.Matrix, digest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return mat.Matrix{}, digest{}, false
	}
	if c.ttl > 0 && c.now().After(e.expires) {
		c.remove(e)
		c.expired.Inc()
		c.misses.Inc()
		return mat.Matrix{}, digest{}, false
	}
	c.lru.MoveToFront(e.elem)
	c.hits.Inc()
	return e.out, e.dig, true
}

// put inserts (or refreshes) a result, then evicts from the LRU tail
// until both bounds hold. out must be freshly allocated — the cache takes
// ownership of its backing array.
func (c *resultCache) put(key cacheKey, out mat.Matrix, dig digest) {
	size := int64(len(out.Data)) * 8
	if c.maxBytes > 0 && size > c.maxBytes {
		return // larger than the whole cache; not worth evicting everything
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		if c.ttl > 0 {
			e.expires = c.now().Add(c.ttl)
		}
		return
	}
	e := &cacheEntry{key: key, out: out, dig: dig, bytes: size}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.bytes += size
	for (c.maxEntries > 0 && len(c.entries) > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes) {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.remove(tail.Value.(*cacheEntry))
		c.evictions.Inc()
	}
	c.gEntries.Set(int64(len(c.entries)))
	c.gBytes.Set(c.bytes)
}

// remove unlinks e. Caller holds c.mu.
func (c *resultCache) remove(e *cacheEntry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
	c.gEntries.Set(int64(len(c.entries)))
	c.gBytes.Set(c.bytes)
}

// len reports the live entry count (tests).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// stats snapshots the cache counters.
func (c *resultCache) stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Expired:   c.expired.Load(),
		Entries:   c.gEntries.Load(),
		Bytes:     c.gBytes.Load(),
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}

// ---------------------------------------------------------------------------
// Operand interning.

type blockRef struct {
	data []float64
	buf  *alignedBuf // pooled storage to return at refcount zero; nil for JSON-wire operands
	refs int
}

// blockTable interns operand buffers by content digest so requests that
// ship the same matrix share one canonical copy for their lifetime.
type blockTable struct {
	mu     sync.Mutex
	blocks map[digest]*blockRef
	pool   *bufPool
	dedup  *obs.Counter // interned adoptions (a duplicate buffer avoided)
}

func newBlockTable(pool *bufPool, reg *obs.Registry) *blockTable {
	return &blockTable{
		blocks: make(map[digest]*blockRef),
		pool:   pool,
		dedup:  reg.Counter("server.cache.block_dedup"),
	}
}

// intern registers (dig, data) and returns the canonical slice for that
// content. If the digest is already live, the caller's own buffer is
// returned to the pool and the existing copy adopted. buf is the pooled
// storage backing data (nil when data is not pooled, e.g. JSON-decoded).
// Every successful intern must be paired with one release(dig).
func (t *blockTable) intern(dig digest, data []float64, buf *alignedBuf) []float64 {
	t.mu.Lock()
	ref, ok := t.blocks[dig]
	if ok {
		ref.refs++
		t.mu.Unlock()
		t.dedup.Inc()
		if buf != nil {
			t.pool.put(buf)
		}
		return ref.data
	}
	t.blocks[dig] = &blockRef{data: data, buf: buf, refs: 1}
	t.mu.Unlock()
	return data
}

// release drops one reference to dig, returning the canonical buffer to
// the pool when the last holder leaves.
func (t *blockTable) release(dig digest) {
	t.mu.Lock()
	ref, ok := t.blocks[dig]
	if !ok {
		t.mu.Unlock()
		return
	}
	ref.refs--
	if ref.refs > 0 {
		t.mu.Unlock()
		return
	}
	delete(t.blocks, dig)
	t.mu.Unlock()
	if ref.buf != nil {
		t.pool.put(ref.buf)
	}
}

// abandon is release for a request whose engine run may have leaked rank
// goroutines still reading the canonical buffer (watchdog errors,
// deadline-abandoned dispatches): the reference is dropped but the buffer
// is permanently withheld from the pool — for every current holder — so a
// zombie reader can never observe a recycled decode landing in it.
func (t *blockTable) abandon(dig digest) {
	t.mu.Lock()
	if ref, ok := t.blocks[dig]; ok {
		ref.buf = nil // GC reclaims it once the last reader drops the slice
	}
	t.mu.Unlock()
	t.release(dig)
}

// live reports the number of interned blocks (tests).
func (t *blockTable) live() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.blocks)
}

// dedupCount reports how many duplicate operand shipments interning
// avoided.
func (t *blockTable) dedupCount() int64 { return t.dedup.Load() }

// ---------------------------------------------------------------------------
// Server-side digest plumbing.

// computeDigests content-addresses wr's operands, interns them in the
// block table, and builds the request's cache key. dims must already have
// validated the request. Called only when the cache is enabled.
func (s *Server) computeDigests(wr *wireRequest, cs core.Case, d core.Dims) cacheKey {
	wr.digA = digestMatrix(wr.req.ARows, wr.req.ACols, wr.req.A)
	wr.req.A = s.blocks.intern(wr.digA, wr.req.A, wr.bufs[0])
	wr.bufs[0] = nil // ownership moved to the block table
	wr.interned = append(wr.interned, wr.digA)

	wr.digB = digestMatrix(wr.req.BRows, wr.req.BCols, wr.req.B)
	wr.req.B = s.blocks.intern(wr.digB, wr.req.B, wr.bufs[1])
	wr.bufs[1] = nil
	wr.interned = append(wr.interned, wr.digB)

	key := cacheKey{
		a:         wr.digA,
		b:         wr.digB,
		cs:        cs,
		alphaBits: math.Float64bits(wr.req.alpha()),
		betaBits:  math.Float64bits(wr.req.beta()),
	}
	// C only contributes when beta != 0 (otherwise it is never read, and
	// keying on it would split identical computations).
	if wr.req.beta() != 0 && len(wr.req.C) > 0 {
		wr.digC = digestMatrix(d.M, d.N, wr.req.C)
		key.cIn = wr.digC
	}
	wr.haveDigests = true
	return key
}

func hexDigest(d digest) string { return hex.EncodeToString(d[:]) }

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"srumma/internal/mat"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// post runs one request through the handler and decodes the body into out
// (when non-nil), returning the HTTP status and response recorder.
func post(t *testing.T, s *Server, req MultiplyRequest, out any) (int, *httptest.ResponseRecorder) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader(body))
	s.Handler().ServeHTTP(w, r)
	if out != nil && w.Code == http.StatusOK {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return w.Code, w
}

// wantGemm computes the serial reference result for req.
func wantGemm(t *testing.T, req MultiplyRequest) *mat.Matrix {
	t.Helper()
	cs, err := parseCase(req.Case)
	if err != nil {
		t.Fatal(err)
	}
	d, err := req.dims(cs, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a := &mat.Matrix{Rows: req.ARows, Cols: req.ACols, Stride: req.ACols, Data: req.A}
	b := &mat.Matrix{Rows: req.BRows, Cols: req.BCols, Stride: req.BCols, Data: req.B}
	c := mat.New(d.M, d.N)
	if req.beta() != 0 {
		copy(c.Data, req.C)
	}
	if err := mat.Gemm(cs.TransA(), cs.TransB(), req.alpha(), a, b, req.beta(), c); err != nil {
		t.Fatal(err)
	}
	return c
}

func randReq(m, k, n int, seed uint64) MultiplyRequest {
	a := mat.Random(m, k, seed)
	b := mat.Random(k, n, seed+1)
	return MultiplyRequest{
		ARows: m, ACols: k, A: a.Data,
		BRows: k, BCols: n, B: b.Data,
	}
}

func checkResult(t *testing.T, resp MultiplyResponse, want *mat.Matrix, tol float64) {
	t.Helper()
	if resp.Rows != want.Rows || resp.Cols != want.Cols {
		t.Fatalf("result shape %dx%d, want %dx%d", resp.Rows, resp.Cols, want.Rows, want.Cols)
	}
	got := &mat.Matrix{Rows: resp.Rows, Cols: resp.Cols, Stride: resp.Cols, Data: resp.C}
	if diff := mat.MaxAbsDiff(got, want); diff > tol {
		t.Fatalf("result wrong: max abs diff %g > %g", diff, tol)
	}
}

func TestServerSmallRouteMatchesSerial(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4})
	req := randReq(32, 48, 24, 100)
	req.ID = "small-1"
	var resp MultiplyResponse
	code, _ := post(t, s, req, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if resp.Route != routeSmall {
		t.Fatalf("route %q, want %q", resp.Route, routeSmall)
	}
	if resp.ID != "small-1" {
		t.Fatalf("response ID %q not echoed", resp.ID)
	}
	checkResult(t, resp, wantGemm(t, req), 1e-10)
}

func TestServerSRUMMARouteMatchesSerial(t *testing.T) {
	// SmallMNK 1 forces every product onto the distributed engine.
	s := newTestServer(t, Config{NProcs: 4, SmallMNK: 1})
	alpha, beta := 1.5, -0.5
	for _, cse := range []string{"NN", "TN", "NT", "TT"} {
		req := randReq(48, 32, 40, 200)
		if cse == "TN" || cse == "TT" {
			req.ARows, req.ACols = req.ACols, req.ARows // stored transposed
		}
		if cse == "NT" || cse == "TT" {
			req.BRows, req.BCols = req.BCols, req.BRows
		}
		req.Case = cse
		req.Alpha, req.Beta = &alpha, &beta
		req.C = mat.Random(48, 40, 300).Data
		var resp MultiplyResponse
		code, w := post(t, s, req, &resp)
		if code != http.StatusOK {
			t.Fatalf("case %s: status %d: %s", cse, code, w.Body.String())
		}
		if resp.Route != routeSRUMMA {
			t.Fatalf("case %s: route %q, want %q", cse, resp.Route, routeSRUMMA)
		}
		checkResult(t, resp, wantGemm(t, req), 1e-9)
	}
}

func TestServerValidation(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, MaxDim: 64})
	cases := []struct {
		name string
		req  MultiplyRequest
	}{
		{"bad case", func() MultiplyRequest { r := randReq(8, 8, 8, 1); r.Case = "XX"; return r }()},
		{"short a", func() MultiplyRequest { r := randReq(8, 8, 8, 1); r.A = r.A[:10]; return r }()},
		{"inner mismatch", func() MultiplyRequest { r := randReq(8, 8, 8, 1); r.BRows = 6; r.B = r.B[:6*8]; return r }()},
		{"over max dim", randReq(128, 8, 8, 1)},
		{"beta without c", func() MultiplyRequest {
			r := randReq(8, 8, 8, 1)
			b := 2.0
			r.Beta = &b
			return r
		}()},
		{"zero dim", func() MultiplyRequest { r := randReq(8, 8, 8, 1); r.ARows = 0; return r }()},
	}
	for _, tc := range cases {
		code, _ := post(t, s, tc.req, nil)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	// Method check.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/multiply", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", w.Code)
	}
}

// TestServerOverflow429 fills the admission queue deterministically by
// withholding the only engine team, then verifies overflow gets 429 with a
// Retry-After hint while every admitted request still completes correctly.
func TestServerOverflow429(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, Teams: 1, QueueCap: 2, SmallMNK: 1, SchedMode: "fifo"})
	tm := <-s.teams // occupy the engine: admitted requests queue on it

	req := randReq(24, 24, 24, 400)
	want := wantGemm(t, req)

	type result struct {
		code int
		resp MultiplyResponse
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var resp MultiplyResponse
			code, _ := post(t, s, req, &resp)
			results <- result{code, resp}
		}()
	}
	// Wait until both are admitted (queued on the withheld team).
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Admitted < 2 {
		if time.Now().After(deadline) {
			t.Fatal("requests were not admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is full: the next request must bounce with 429 + Retry-After.
	code, w := post(t, s, req, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.RetryAfterSeconds < 1 {
		t.Fatalf("retry_after_s = %d, want >= 1", eresp.RetryAfterSeconds)
	}

	// Release the engine: both admitted requests complete and are correct.
	s.teams <- tm
	wg.Wait()
	close(results)
	for res := range results {
		if res.code != http.StatusOK {
			t.Fatalf("admitted request status %d, want 200", res.code)
		}
		checkResult(t, res.resp, want, 1e-9)
	}
	m := s.Metrics()
	if m.Rejected != 1 {
		t.Fatalf("rejected_429_total = %d, want 1", m.Rejected)
	}
	if m.Completed != 2 {
		t.Fatalf("completed_total = %d, want 2", m.Completed)
	}
}

// TestServerDeadlineWhileQueued verifies a request whose deadline expires
// before an engine frees up gets 504 and counts as cancelled — and the
// server keeps serving afterwards.
func TestServerDeadlineWhileQueued(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, Teams: 1, SmallMNK: 1, SchedMode: "fifo"})
	tm := <-s.teams

	req := randReq(24, 24, 24, 500)
	req.TimeoutMillis = 20
	code, w := post(t, s, req, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, w.Body.String())
	}
	if m := s.Metrics(); m.Cancelled != 1 {
		t.Fatalf("cancelled_total = %d, want 1", m.Cancelled)
	}

	s.teams <- tm
	req.TimeoutMillis = 0
	var resp MultiplyResponse
	code, _ = post(t, s, req, &resp)
	if code != http.StatusOK {
		t.Fatalf("post-timeout status %d, want 200", code)
	}
	checkResult(t, resp, wantGemm(t, req), 1e-9)
}

func TestServerMetricsSnapshot(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, SmallMNK: 32 * 32 * 32})
	small := randReq(16, 16, 16, 600)
	big := randReq(48, 48, 48, 700)
	for i := 0; i < 3; i++ {
		if code, w := post(t, s, small, nil); code != http.StatusOK {
			t.Fatalf("small %d: status %d: %s", i, code, w.Body.String())
		}
	}
	if code, w := post(t, s, big, nil); code != http.StatusOK {
		t.Fatalf("big: status %d: %s", code, w.Body.String())
	}

	m := s.Metrics()
	if m.Admitted != 4 || m.Completed != 4 {
		t.Fatalf("admitted/completed = %d/%d, want 4/4", m.Admitted, m.Completed)
	}
	if m.QueueDepth != 0 || m.Executing != 0 {
		t.Fatalf("idle server reports queue_depth=%d executing=%d", m.QueueDepth, m.Executing)
	}
	if m.Routes[routeSmall].Count != 3 {
		t.Fatalf("small route count = %d, want 3", m.Routes[routeSmall].Count)
	}
	if m.Routes[routeSRUMMA].Count != 1 {
		t.Fatalf("srumma route count = %d, want 1", m.Routes[routeSRUMMA].Count)
	}
	if m.LatencyP50Ms <= 0 || m.LatencyP99Ms < m.LatencyP50Ms {
		t.Fatalf("implausible latency quantiles: p50=%g p99=%g", m.LatencyP50Ms, m.LatencyP99Ms)
	}
	if m.FlopsTotal <= 0 || m.ThroughputRPS <= 0 {
		t.Fatalf("flops_total=%g throughput=%g, want positive", m.FlopsTotal, m.ThroughputRPS)
	}

	// The endpoint serves the same snapshot as JSON.
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", w.Code)
	}
	var viaHTTP MetricsSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &viaHTTP); err != nil {
		t.Fatal(err)
	}
	if viaHTTP.Completed != 4 {
		t.Fatalf("/metrics completed_total = %d, want 4", viaHTTP.Completed)
	}
}

func TestServerInfoAndHealth(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4})
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", w.Code)
	}
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/info", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/info status %d", w.Code)
	}
	var info InfoResponse
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.NProcs != 4 || info.QueueCap != 4 || info.Kernel == "" {
		t.Fatalf("implausible info: %+v", info)
	}
}

// TestServerShutdownDrains verifies graceful shutdown: an in-flight
// (admitted, engine-waiting) request completes with 200, new requests and
// healthz are refused, and the engine teams close without leak reports.
func TestServerShutdownDrains(t *testing.T) {
	s, err := New(Config{NProcs: 4, Teams: 1, SmallMNK: 1, SchedMode: "fifo"})
	if err != nil {
		t.Fatal(err)
	}
	tm := <-s.teams // request admits, then waits for the engine

	req := randReq(24, 24, 24, 800)
	want := wantGemm(t, req)
	type result struct {
		code int
		resp MultiplyResponse
	}
	done := make(chan result, 1)
	go func() {
		var resp MultiplyResponse
		code, _ := post(t, s, req, &resp)
		done <- result{code, resp}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().Admitted < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request was not admitted")
		}
		time.Sleep(time.Millisecond)
	}

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr <- s.Shutdown(ctx)
	}()
	// Draining: wait for the flag, then confirm refusals.
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	if code, _ := post(t, s, req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("multiply during drain: status %d, want 503", code)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", w.Code)
	}

	// Release the engine: the admitted request completes, then teams close.
	s.teams <- tm
	res := <-done
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", res.code)
	}
	checkResult(t, res.resp, want, 1e-9)
	if err := <-shutErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerSequentialSRUMMARequests exercises the persistent team across
// many back-to-back requests through the full HTTP path.
func TestServerSequentialSRUMMARequests(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, SmallMNK: 1})
	req := randReq(32, 32, 32, 900)
	want := wantGemm(t, req)
	n := 20
	if testing.Short() {
		n = 5
	}
	for i := 0; i < n; i++ {
		var resp MultiplyResponse
		code, w := post(t, s, req, &resp)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, w.Body.String())
		}
		checkResult(t, resp, want, 1e-9)
	}
	if m := s.Metrics(); m.Completed != uint64(n) {
		t.Fatalf("completed_total = %d, want %d", m.Completed, n)
	}
}

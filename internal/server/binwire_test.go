package server

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"unsafe"
)

func uintptrOf(f []float64) uintptr {
	return uintptr(unsafe.Pointer(&f[0]))
}

// binPost runs one binary-wire request through the handler. Options tune
// the transport: gz compresses the body, accept overrides the Accept
// header ("" keeps none, so the response mirrors the request wire).
func binPost(t *testing.T, s *Server, req MultiplyRequest, gz bool, accept string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := EncodeBinaryRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	if gz {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		zw.Write(body)
		zw.Close()
		body = buf.Bytes()
	}
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader(body))
	r.Header.Set("Content-Type", ContentTypeBinary)
	if gz {
		r.Header.Set("Content-Encoding", "gzip")
		r.Header.Set("Accept-Encoding", "gzip")
	}
	if accept != "" {
		r.Header.Set("Accept", accept)
	}
	if req.ID != "" {
		r.Header.Set("X-Srumma-Id", req.ID)
	}
	if req.Class != "" {
		r.Header.Set("X-Srumma-Class", req.Class)
	}
	s.Handler().ServeHTTP(w, r)
	return w
}

// decodeBinRecorder parses a binary response out of a recorder, gunzipping
// when the response says so.
func decodeBinRecorder(t *testing.T, w *httptest.ResponseRecorder) (int, int, []float64) {
	t.Helper()
	if got := w.Header().Get("Content-Type"); got != ContentTypeBinaryResult {
		t.Fatalf("response Content-Type %q, want %q", got, ContentTypeBinaryResult)
	}
	body := w.Body
	if w.Header().Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(body)
		if err != nil {
			t.Fatal(err)
		}
		defer zr.Close()
		rows, cols, c, err := DecodeBinaryResponse(zr)
		if err != nil {
			t.Fatal(err)
		}
		return rows, cols, c
	}
	rows, cols, c, err := DecodeBinaryResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	return rows, cols, c
}

func TestBinaryWireMatchesSerial(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4})
	alpha, beta := 1.25, -0.5
	for _, cse := range []string{"NN", "TN", "NT", "TT"} {
		req := randReq(24, 32, 16, 300)
		req.Case = cse
		if cse == "TN" || cse == "TT" {
			req.ARows, req.ACols = req.ACols, req.ARows
		}
		if cse == "NT" || cse == "TT" {
			req.BRows, req.BCols = req.BCols, req.BRows
		}
		req.Alpha, req.Beta = &alpha, &beta
		cIn := make([]float64, 24*16)
		for i := range cIn {
			cIn[i] = float64(i%7) - 3
		}
		req.C = cIn
		req.ID = "bin-" + cse

		w := binPost(t, s, req, false, "")
		if w.Code != http.StatusOK {
			t.Fatalf("case %s: status %d: %s", cse, w.Code, w.Body.String())
		}
		if got := w.Header().Get("X-Srumma-Id"); got != req.ID {
			t.Fatalf("case %s: X-Srumma-Id %q, want %q", cse, got, req.ID)
		}
		if got := w.Header().Get("X-Srumma-Route"); got != routeSmall {
			t.Fatalf("case %s: route %q, want %q", cse, got, routeSmall)
		}
		rows, cols, c := decodeBinRecorder(t, w)
		want := wantGemm(t, req)
		checkResult(t, MultiplyResponse{Rows: rows, Cols: cols, C: c}, want, 1e-10)
	}
}

func TestBinaryWireGzipRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4})
	req := randReq(16, 16, 16, 400)
	w := binPost(t, s, req, true, "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Content-Encoding"); got != "gzip" {
		t.Fatalf("response Content-Encoding %q, want gzip (client sent gzip and accepts it)", got)
	}
	rows, cols, c := decodeBinRecorder(t, w)
	checkResult(t, MultiplyResponse{Rows: rows, Cols: cols, C: c}, wantGemm(t, req), 1e-10)
}

func TestWireNegotiation(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4})
	req := randReq(8, 8, 8, 500)

	// JSON request asking for a binary result via Accept.
	body, _ := json.Marshal(req)
	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader(body))
	r.Header.Set("Accept", ContentTypeBinaryResult)
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	rows, cols, c := decodeBinRecorder(t, w)
	checkResult(t, MultiplyResponse{Rows: rows, Cols: cols, C: c}, wantGemm(t, req), 1e-10)

	// Binary request asking for JSON back.
	w2 := binPost(t, s, req, false, ContentTypeJSON)
	if w2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w2.Code, w2.Body.String())
	}
	var resp MultiplyResponse
	if err := json.Unmarshal(w2.Body.Bytes(), &resp); err != nil {
		t.Fatalf("binary request with Accept json got non-JSON body: %v", err)
	}
	checkResult(t, resp, wantGemm(t, req), 1e-10)
}

func TestJSONOnlyDisablesBinaryWire(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, JSONOnly: true})
	req := randReq(8, 8, 8, 600)
	w := binPost(t, s, req, false, "")
	if w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d, want 415", w.Code)
	}
	// JSON still served, and Accept for binary is ignored.
	body, _ := json.Marshal(req)
	w2 := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader(body))
	r.Header.Set("Accept", ContentTypeBinaryResult)
	s.Handler().ServeHTTP(w2, r)
	if w2.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w2.Code, w2.Body.String())
	}
	if ct := w2.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json-only server answered Content-Type %q", ct)
	}
}

// validBinBody builds a well-formed binary request body for mutation.
func validBinBody(t *testing.T) []byte {
	t.Helper()
	req := randReq(4, 3, 5, 700)
	body, err := EncodeBinaryRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestBinaryWireMalformed(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, MaxDim: 64})
	valid := validBinBody(t)

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"empty body", nil, http.StatusBadRequest},
		{"truncated header", valid[:20], http.StatusBadRequest},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), http.StatusBadRequest},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 9; return b }), http.StatusBadRequest},
		{"bad case", mutate(func(b []byte) []byte { b[5] = 7; return b }), http.StatusBadRequest},
		{"unknown flags", mutate(func(b []byte) []byte { b[6] = 0x80; return b }), http.StatusBadRequest},
		{"nonzero reserved", mutate(func(b []byte) []byte { b[7] = 1; return b }), http.StatusBadRequest},
		{"zero dimension", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 0)
			return b
		}), http.StatusBadRequest},
		// Shape beyond MaxDim with a huge implied body: must be refused from
		// the 48-byte header alone, before any buffer is sized from it.
		{"oversized dimension", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 1<<20)
			return b[:binReqHeaderLen]
		}), http.StatusBadRequest},
		{"nan alpha", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], math.Float64bits(math.NaN()))
			return b
		}), http.StatusBadRequest},
		{"inf beta", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:], math.Float64bits(math.Inf(1)))
			return b
		}), http.StatusBadRequest},
		{"kernel threads out of range", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[40:], 1<<20)
			return b
		}), http.StatusBadRequest},
		{"nan operand", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[binReqHeaderLen:], math.Float64bits(math.NaN()))
			return b
		}), http.StatusBadRequest},
		{"inf operand", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[binReqHeaderLen+8:], math.Float64bits(math.Inf(-1)))
			return b
		}), http.StatusBadRequest},
		{"truncated operands", valid[:len(valid)-8], http.StatusBadRequest},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAB), http.StatusBadRequest},
		// Shape/length mismatch: header says 8x8 operands but the body holds
		// the original 4x3/3x5 floats.
		{"shape vs length mismatch", mutate(func(b []byte) []byte {
			for i := 0; i < 4; i++ {
				binary.LittleEndian.PutUint32(b[8+4*i:], 8)
			}
			return b
		}), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader(tc.body))
			r.Header.Set("Content-Type", ContentTypeBinary)
			s.Handler().ServeHTTP(w, r)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d (body: %s)", w.Code, tc.want, w.Body.String())
			}
			var eresp ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &eresp); err != nil || eresp.Error == "" {
				t.Fatalf("malformed request did not produce a JSON error body: %s", w.Body.String())
			}
		})
	}
}

func TestJSONWireMalformed(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, MaxDim: 8})
	big := make([]float64, 40000) // ~360 KB of JSON, beyond jsonBodyLimit(8)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "hello", http.StatusBadRequest},
		{"truncated json", `{"a_rows": 2, "a_cols":`, http.StatusBadRequest},
		{"nan alpha", `{"a_rows":1,"a_cols":1,"a":[1],"b_rows":1,"b_cols":1,"b":[1],"alpha":"NaN"}`, http.StatusBadRequest},
		{"length mismatch", `{"a_rows":2,"a_cols":2,"a":[1,2,3],"b_rows":2,"b_cols":2,"b":[1,2,3,4]}`, http.StatusBadRequest},
		{"oversized body", func() string {
			b, _ := json.Marshal(MultiplyRequest{ARows: 200, ACols: 200, A: big, BRows: 200, BCols: 200, B: big})
			return string(b)
		}(), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodPost, "/v1/multiply", bytes.NewReader([]byte(tc.body)))
			r.Header.Set("Content-Type", "application/json")
			s.Handler().ServeHTTP(w, r)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d (body: %s)", w.Code, tc.want, w.Body.String())
			}
		})
	}
}

// TestBinaryDecodeAllocs pins the zero-copy promise: steady-state binary
// decodes draw their operand buffers from the pool and perform no
// per-element conversion, so a decode is allocation-free.
func TestBinaryDecodeAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	req := randReq(32, 32, 32, 800)
	body, err := EncodeBinaryRequest(&req)
	if err != nil {
		t.Fatal(err)
	}
	pool := &bufPool{}
	rd := bytes.NewReader(body)
	var wr wireRequest
	// Warm the pool's size classes.
	for i := 0; i < 3; i++ {
		rd.Reset(body)
		wr = wireRequest{}
		if werr := decodeBinaryRequest(rd, int64(len(body)), 4096, pool, &wr); werr != nil {
			t.Fatal(werr)
		}
		for _, b := range wr.bufs {
			pool.put(b)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		rd.Reset(body)
		wr = wireRequest{}
		if werr := decodeBinaryRequest(rd, int64(len(body)), 4096, pool, &wr); werr != nil {
			t.Fatal(werr)
		}
		for _, b := range wr.bufs {
			pool.put(b)
		}
	})
	if avg > 0 {
		t.Fatalf("steady-state binary decode allocates %.1f objects/op, want 0", avg)
	}
}

func TestAlignedPoolAlignment(t *testing.T) {
	pool := &bufPool{}
	for _, n := range []int{1, 7, 64, 1000, 65536} {
		b := pool.get(n)
		if len(b.data) != n {
			t.Fatalf("get(%d): len %d", n, len(b.data))
		}
		if addr := uintptrOf(b.data); addr%bufAlign != 0 {
			t.Fatalf("get(%d): data not %d-byte aligned (addr %#x)", n, bufAlign, addr)
		}
		pool.put(b)
	}
}

// FuzzBinWire drives the binary request decoder with arbitrary bytes (must
// never panic, never allocate from unvalidated lengths) and checks the
// round-trip property: anything that decodes re-encodes to a body that
// decodes to the same request.
func FuzzBinWire(f *testing.F) {
	req := randReqFuzz(3, 4, 2)
	seed, _ := EncodeBinaryRequest(&req)
	f.Add(seed)
	alpha, beta := 2.5, 1.0
	req2 := randReqFuzz(2, 2, 2)
	req2.Alpha, req2.Beta = &alpha, &beta
	req2.C = []float64{1, 2, 3, 4}
	req2.Case = "TT"
	seed2, _ := EncodeBinaryRequest(&req2)
	f.Add(seed2)
	f.Add([]byte(binReqMagic))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		pool := &bufPool{}
		var wr wireRequest
		werr := decodeBinaryRequest(bytes.NewReader(data), int64(len(data)), 128, pool, &wr)
		if werr != nil {
			return
		}
		// Decoded OK: the re-encoded body must decode to the same request.
		out, err := EncodeBinaryRequest(&wr.req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		var wr2 wireRequest
		if werr := decodeBinaryRequest(bytes.NewReader(out), int64(len(out)), 128, pool, &wr2); werr != nil {
			t.Fatalf("re-encoded body does not decode: %v", werr)
		}
		if wr2.req.ARows != wr.req.ARows || wr2.req.ACols != wr.req.ACols ||
			wr2.req.BRows != wr.req.BRows || wr2.req.BCols != wr.req.BCols ||
			wr2.req.Case != wr.req.Case ||
			wr2.req.alpha() != wr.req.alpha() || wr2.req.beta() != wr.req.beta() ||
			wr2.req.KernelThreads != wr.req.KernelThreads ||
			wr2.req.TimeoutMillis != wr.req.TimeoutMillis {
			t.Fatalf("round trip changed the header: %+v vs %+v", wr.req, wr2.req)
		}
		for _, pair := range [][2][]float64{{wr.req.A, wr2.req.A}, {wr.req.B, wr2.req.B}, {wr.req.C, wr2.req.C}} {
			if len(pair[0]) != len(pair[1]) {
				t.Fatalf("round trip changed an operand length: %d vs %d", len(pair[0]), len(pair[1]))
			}
			for i := range pair[0] {
				if math.Float64bits(pair[0][i]) != math.Float64bits(pair[1][i]) {
					t.Fatalf("round trip changed operand bits at %d", i)
				}
			}
		}
	})
}

func randReqFuzz(m, k, n int) MultiplyRequest {
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = float64(i) * 0.5
	}
	for i := range b {
		b[i] = float64(i) * -0.25
	}
	return MultiplyRequest{ARows: m, ACols: k, A: a, BRows: k, BCols: n, B: b}
}

package server

// Serving-layer tests for hierarchical routing mode: the two-level
// multiply behind /v1/multiply must be bit-identical to the flat route,
// and a crashed rank — which takes its whole SUMMA group's progress with
// it — must fold into the same retry/ledger-resume machinery the flat
// path uses (under hier the static inner executor runs; failure handling
// is the job level's responsibility).

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"srumma/internal/faults"
)

// TestHierServeBitIdentical pins the serving-layer half of the
// hierarchical gate: a hier-mode server and a flat server answer the same
// requests with bit-identical products, across sizes that exercise both
// tie and strict-staging group carvings.
func TestHierServeBitIdentical(t *testing.T) {
	flat := newTestServer(t, Config{NProcs: 4, ProcsPerNode: 2, SmallMNK: 1, MaxTaskK: 16})
	hierS := newTestServer(t, Config{NProcs: 4, ProcsPerNode: 2, SmallMNK: 1, MaxTaskK: 16, Hier: true})

	for i, dims := range [][3]int{{64, 64, 64}, {72, 60, 84}, {48, 96, 32}} {
		req := randReq(dims[0], dims[1], dims[2], uint64(700+i))
		req.ID = fmt.Sprintf("hier-bit-%d", i)

		var want MultiplyResponse
		if code, w := post(t, flat, req, &want); code != http.StatusOK {
			t.Fatalf("request %d: flat status %d: %s", i, code, w.Body.String())
		}
		var got MultiplyResponse
		if code, w := post(t, hierS, req, &got); code != http.StatusOK {
			t.Fatalf("request %d: hier status %d: %s", i, code, w.Body.String())
		}
		if len(got.C) != len(want.C) {
			t.Fatalf("request %d: hier returned %d elements, flat %d", i, len(got.C), len(want.C))
		}
		for e := range got.C {
			if got.C[e] != want.C[e] {
				t.Fatalf("request %d: C[%d] = %v on the hier route, want %v (bit-exact)", i, e, got.C[e], want.C[e])
			}
		}
	}

	m := hierS.Metrics()
	if m.HierGroups != 2 || m.HierGroupShape == "" {
		t.Errorf("hier metrics: groups=%d shape=%q, want 2 groups with a shape", m.HierGroups, m.HierGroupShape)
	}
}

// TestHierServeChaosKillGroup is the kill-one-group gate: a planted
// mid-compute rank crash under hierarchical mode takes the rank's whole
// group down with the job, and the serving layer must bring the request
// back through retry + ledger resume — bit-correct against a fault-free
// flat server, with the recovery counters showing a resume actually
// happened.
func TestHierServeChaosKillGroup(t *testing.T) {
	plan, err := faults.NewPlan(faults.Config{
		Seed:               3,
		ComputeCrash:       true,
		ComputeCrashOpSpan: 6,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	faulty := newTestServer(t, Config{
		NProcs:       4,
		ProcsPerNode: 2,
		SmallMNK:     1,
		MaxTaskK:     8,
		Hier:         true,
		FaultPlan:    plan,
		RetryBudget:  3,
		RetryBackoff: 2 * time.Millisecond,
	})
	clean := newTestServer(t, Config{NProcs: 4, ProcsPerNode: 2, SmallMNK: 1, MaxTaskK: 8})

	for i := 0; i < 4; i++ {
		n := 64 - 8*(i%2)
		req := randReq(n, n, n, uint64(1300+i))
		req.ID = fmt.Sprintf("hier-chaos-%d", i)

		var want MultiplyResponse
		if code, _ := post(t, clean, req, &want); code != http.StatusOK {
			t.Fatalf("request %d: clean status %d", i, code)
		}
		var got MultiplyResponse
		code, w := post(t, faulty, req, &got)
		if code != http.StatusOK {
			t.Fatalf("request %d: hier chaos status %d: %s", i, code, w.Body.String())
		}
		for e := range got.C {
			if got.C[e] != want.C[e] {
				t.Fatalf("request %d: C[%d] = %v after group kill, want %v (bit-exact)", i, e, got.C[e], want.C[e])
			}
		}
	}

	rec := faulty.Metrics().Recovery
	if rec.Retries == 0 {
		t.Error("no handler retries recorded; the planted crash never killed a group")
	}
	if rec.ResumedJobs == 0 {
		t.Errorf("no resumed jobs (retries=%d restarted=%d): the hier retry is not salvaging completed work", rec.Retries, rec.RestartedJobs)
	}
	t.Logf("hier chaos recovery: %+v", rec)
}

package server

// Serving metrics: monotonic counters, gauges derived from the admission
// machinery, and latency quantiles from streaming log-bucketed histograms.
// All instruments live in an obs.Registry shared with the workload
// scheduler (names "server.*" and "sched.*"), so /metrics is a view over
// the same observability spine the engines trace into — one counter model
// across the stack. Everything is O(1) per request and bounded in memory,
// so the metrics path cannot become the bottleneck it is supposed to
// observe.

import (
	"sync"
	"time"

	"srumma/internal/cluster"
	"srumma/internal/obs"
	"srumma/internal/sched"
)

// RouteStats is the per-execution-tier slice of a metrics snapshot.
type RouteStats struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// MetricsSnapshot is the JSON body of GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_s"`

	Admitted  uint64 `json:"admitted_total"`
	Completed uint64 `json:"completed_total"`
	Rejected  uint64 `json:"rejected_429_total"`
	Errors    uint64 `json:"error_total"`
	Cancelled uint64 `json:"cancelled_total"`
	// TeamsReplaced counts pooled engine teams retired after leaking ranks.
	TeamsReplaced uint64 `json:"teams_replaced_total"`

	QueueDepth int `json:"queue_depth"`
	Executing  int `json:"executing"`
	QueueCap   int `json:"queue_cap"`

	ThroughputRPS float64 `json:"throughput_rps"`
	// GFlopsServed is aggregate useful arithmetic divided by uptime.
	GFlopsServed float64 `json:"gflops_served"`
	FlopsTotal   float64 `json:"flops_total"`

	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	// RecentRPS is the completion rate over the trailing rate window —
	// the observed service rate that prices Retry-After hints.
	RecentRPS float64 `json:"recent_rps"`

	Routes map[string]RouteStats `json:"routes"`
	// Classes breaks latency down by workload class (interactive/batch).
	Classes map[string]RouteStats `json:"classes"`

	// Wire breaks request traffic down by wire format ("json"/"binary"):
	// request counts and bytes on the wire in each direction, with p50/p99
	// body sizes from streaming histograms.
	Wire map[string]WireStats `json:"wire,omitempty"`
	// Cache is the content-addressed result cache view (omitted when the
	// cache is disabled).
	Cache *CacheStats `json:"cache,omitempty"`

	// Sched is the workload scheduler's view (nil in FIFO mode): per-class
	// queue depth, batch occupancy, deadline misses, pool elasticity.
	Sched *sched.Snapshot `json:"sched,omitempty"`

	// Recovery is the block-level job recovery view: handler retries,
	// resumed vs restarted jobs, tasks skipped by resume, ABFT detections.
	Recovery RecoveryStats `json:"recovery"`
	// Breakers is the per-route circuit-breaker view (omitted when the
	// breaker is disabled).
	Breakers map[string]BreakerStats `json:"breakers,omitempty"`

	// Cluster is the node pool's supervision view (omitted outside cluster
	// mode): per-node health, job counts, and replacements.
	Cluster []cluster.NodeStats `json:"cluster,omitempty"`

	// HierGroups/HierGroupShape describe the two-level topology in
	// hierarchical routing mode (omitted when flat): how many SUMMA
	// groups the engine grid is carved into and the intra-group grid
	// shape "RxC".
	HierGroups     int    `json:"hier_groups,omitempty"`
	HierGroupShape string `json:"hier_group_shape,omitempty"`
}

// RecoveryStats is the recovery slice of a metrics snapshot.
type RecoveryStats struct {
	Retries          uint64 `json:"retries"`
	ResumedJobs      uint64 `json:"resumed_jobs"`
	RestartedJobs    uint64 `json:"restarted_jobs"`
	ResumedTasks     uint64 `json:"resumed_tasks"`
	ABFTDetected     uint64 `json:"abft_detected"`
	ABFTRecomputed   uint64 `json:"abft_recomputed"`
	BrownoutRequests uint64 `json:"brownout_requests"`
}

// WireStats is one wire format's traffic slice of a metrics snapshot.
type WireStats struct {
	Requests uint64 `json:"requests"`
	BytesIn  uint64 `json:"bytes_in"`
	BytesOut uint64 `json:"bytes_out"`
	// Per-request body sizes (bytes) from log-bucketed histograms.
	BytesInP50  float64 `json:"bytes_in_p50"`
	BytesInP99  float64 `json:"bytes_in_p99"`
	BytesOutP50 float64 `json:"bytes_out_p50"`
	BytesOutP99 float64 `json:"bytes_out_p99"`
}

// BreakerStats is one route's circuit-breaker view.
type BreakerStats struct {
	State  string `json:"state"`
	Opened uint64 `json:"opened"`
	Shed   uint64 `json:"shed"`
}

// metrics is the serving layer's instrument block: cached pointers into the
// shared registry, so hot paths never take the registry's lock.
type metrics struct {
	start    time.Time
	queueCap int

	reg           *obs.Registry
	admitted      *obs.Counter
	completed     *obs.Counter
	rejected      *obs.Counter
	errors        *obs.Counter
	cancelled     *obs.Counter
	teamsReplaced *obs.Counter
	inFlight      *obs.Gauge
	executing     *obs.Gauge
	flops         *obs.FloatCounter
	overall       *obs.Histogram
	routes        map[string]*obs.Histogram
	classes       map[string]*obs.Histogram
	rate          obs.RateWindow

	retries        *obs.Counter
	resumedJobs    *obs.Counter
	restartedJobs  *obs.Counter
	resumedTasks   *obs.Counter
	abftDetected   *obs.Counter
	abftRecomputed *obs.Counter
	brownoutG      *obs.Gauge
	brownoutReqs   *obs.Counter

	// wires is the per-wire-format traffic instrument block, keyed by
	// wireJSON/wireBinary. A request is attributed to the wire its BODY
	// arrived on (responses usually mirror it; Accept can diverge).
	wires map[string]*wireInstruments

	// mu guards schedSnap, which is installed after construction in
	// scheduler mode.
	mu sync.Mutex
	// schedSnap, when set, sources the queue/executing gauges and the Sched
	// section from the workload scheduler instead of the FIFO admission
	// counters.
	schedSnap func() sched.Snapshot
}

func newMetrics(queueCap int) *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		start:         time.Now(),
		queueCap:      queueCap,
		reg:           reg,
		admitted:      reg.Counter("server.admitted"),
		completed:     reg.Counter("server.completed"),
		rejected:      reg.Counter("server.rejected_429"),
		errors:        reg.Counter("server.errors"),
		cancelled:     reg.Counter("server.cancelled"),
		teamsReplaced: reg.Counter("server.teams_replaced"),
		inFlight:      reg.Gauge("server.in_flight"),
		executing:     reg.Gauge("server.executing"),
		flops:         reg.Float("server.flops"),
		overall:       reg.Histogram("server.latency"),
		routes: map[string]*obs.Histogram{
			routeSmall:   reg.Histogram("server.latency.route." + routeSmall),
			routeSRUMMA:  reg.Histogram("server.latency.route." + routeSRUMMA),
			routeCache:   reg.Histogram("server.latency.route." + routeCache),
			routeCluster: reg.Histogram("server.latency.route." + routeCluster),
		},
		wires: map[string]*wireInstruments{
			wireJSON:   newWireInstruments(reg, wireJSON),
			wireBinary: newWireInstruments(reg, wireBinary),
		},
		classes: map[string]*obs.Histogram{
			sched.ClassInteractive.String(): reg.Histogram("server.latency.class." + sched.ClassInteractive.String()),
			sched.ClassBatch.String():       reg.Histogram("server.latency.class." + sched.ClassBatch.String()),
		},
		retries:        reg.Counter("recover.retries"),
		resumedJobs:    reg.Counter("recover.resumed_jobs"),
		restartedJobs:  reg.Counter("recover.restarted_jobs"),
		resumedTasks:   reg.Counter("recover.resumed_tasks"),
		abftDetected:   reg.Counter("recover.abft_detected"),
		abftRecomputed: reg.Counter("recover.abft_recomputed"),
		brownoutG:      reg.Gauge("server.brownout"),
		brownoutReqs:   reg.Counter("server.brownout_requests"),
	}
}

// wireByteScale maps body sizes into the log-bucketed histogram's native
// range: obs.Histogram buckets cover [50e-6, ~9.7e3] in its unit, so
// observing bytes*1e-6 gives distinct buckets for bodies from 50 bytes to
// ~10 GB. wireSnapshot multiplies quantiles back out.
const wireByteScale = 1e-6

// wireInstruments is one wire format's traffic counters.
type wireInstruments struct {
	reqs     *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter
	inHist   *obs.Histogram
	outHist  *obs.Histogram
}

func newWireInstruments(reg *obs.Registry, wire string) *wireInstruments {
	return &wireInstruments{
		reqs:     reg.Counter("server.wire." + wire + ".requests"),
		bytesIn:  reg.Counter("server.wire." + wire + ".bytes_in"),
		bytesOut: reg.Counter("server.wire." + wire + ".bytes_out"),
		inHist:   reg.Histogram("server.wire." + wire + ".body_in_bytes"),
		outHist:  reg.Histogram("server.wire." + wire + ".body_out_bytes"),
	}
}

// noteWire attributes one completed request's body sizes to its wire.
func (m *metrics) noteWire(wire string, bytesIn, bytesOut int64) {
	wi := m.wires[wire]
	if wi == nil {
		return
	}
	wi.reqs.Inc()
	wi.bytesIn.Add(bytesIn)
	wi.bytesOut.Add(bytesOut)
	wi.inHist.Observe(float64(bytesIn) * wireByteScale)
	wi.outHist.Observe(float64(bytesOut) * wireByteScale)
}

// wireSnapshot materializes the per-wire traffic view.
func (m *metrics) wireSnapshot() map[string]WireStats {
	out := make(map[string]WireStats, len(m.wires))
	for wire, wi := range m.wires {
		out[wire] = WireStats{
			Requests:    uint64(wi.reqs.Load()),
			BytesIn:     uint64(wi.bytesIn.Load()),
			BytesOut:    uint64(wi.bytesOut.Load()),
			BytesInP50:  wi.inHist.Quantile(0.50) / wireByteScale,
			BytesInP99:  wi.inHist.Quantile(0.99) / wireByteScale,
			BytesOutP50: wi.outHist.Quantile(0.50) / wireByteScale,
			BytesOutP99: wi.outHist.Quantile(0.99) / wireByteScale,
		}
	}
	return out
}

// noteRetry records one handler-level retry of a failed SRUMMA job:
// resumed when the ledger salvaged completed work, restarted otherwise.
func (m *metrics) noteRetry(resumedTasks int) {
	m.retries.Inc()
	if resumedTasks > 0 {
		m.resumedJobs.Inc()
		m.resumedTasks.Add(int64(resumedTasks))
	} else {
		m.restartedJobs.Inc()
	}
}

// noteABFT accumulates a run's verification counts.
func (m *metrics) noteABFT(detected, recomputed int64) {
	if detected > 0 {
		m.abftDetected.Add(detected)
	}
	if recomputed > 0 {
		m.abftRecomputed.Add(recomputed)
	}
}

func (m *metrics) admit() {
	m.admitted.Inc()
	m.inFlight.Add(1)
}

func (m *metrics) reject() {
	m.rejected.Inc()
}

func (m *metrics) execStart() {
	m.executing.Add(1)
}

// finish settles one admitted request. route is "" for requests that never
// executed (bad input discovered post-admission, cancellation while
// queued); class labels the workload class; outcome is one of "ok",
// "error", "cancelled".
func (m *metrics) finish(route, class string, outcome string, latency time.Duration, flops float64, executed bool) {
	m.inFlight.Add(-1)
	if executed {
		m.executing.Add(-1)
	}
	switch outcome {
	case "ok":
		m.completed.Inc()
		m.flops.Add(flops)
		m.rate.Record(time.Now())
		m.overall.Observe(latency.Seconds())
		if h := m.routes[route]; h != nil {
			h.Observe(latency.Seconds())
		}
		if h := m.classes[class]; h != nil {
			h.Observe(latency.Seconds())
		}
	case "cancelled":
		m.cancelled.Inc()
	default:
		m.errors.Inc()
	}
}

// recentRPS is the completion rate over the trailing window.
func (m *metrics) recentRPS() float64 {
	return m.rate.RPS(time.Now())
}

func (m *metrics) teamReplaced() {
	m.teamsReplaced.Inc()
}

// setSchedSnap installs the scheduler's snapshot source (scheduler mode).
func (m *metrics) setSchedSnap(f func() sched.Snapshot) {
	m.mu.Lock()
	m.schedSnap = f
	m.mu.Unlock()
}

func histStats(h *obs.Histogram) RouteStats {
	return RouteStats{
		Count:  h.Count(),
		P50Ms:  h.Quantile(0.50) * 1e3,
		P99Ms:  h.Quantile(0.99) * 1e3,
		MeanMs: h.Mean() * 1e3,
	}
}

func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	schedSnap := m.schedSnap
	m.mu.Unlock()
	var ss *sched.Snapshot
	if schedSnap != nil {
		snap := schedSnap() // the scheduler has its own locking
		ss = &snap
	}
	up := time.Since(m.start).Seconds()
	inFlight := int(m.inFlight.Load())
	executing := int(m.executing.Load())
	s := MetricsSnapshot{
		UptimeSeconds: up,
		Admitted:      uint64(m.admitted.Load()),
		Completed:     uint64(m.completed.Load()),
		Rejected:      uint64(m.rejected.Load()),
		Errors:        uint64(m.errors.Load()),
		Cancelled:     uint64(m.cancelled.Load()),
		TeamsReplaced: uint64(m.teamsReplaced.Load()),
		QueueDepth:    inFlight - executing,
		Executing:     executing,
		QueueCap:      m.queueCap,
		FlopsTotal:    m.flops.Load(),
		LatencyP50Ms:  m.overall.Quantile(0.50) * 1e3,
		LatencyP90Ms:  m.overall.Quantile(0.90) * 1e3,
		LatencyP99Ms:  m.overall.Quantile(0.99) * 1e3,
		LatencyMeanMs: m.overall.Mean() * 1e3,
		LatencyMaxMs:  m.overall.Max() * 1e3,
		RecentRPS:     m.rate.RPS(time.Now()),
		Routes:        make(map[string]RouteStats, len(m.routes)),
		Classes:       make(map[string]RouteStats, len(m.classes)),
		Recovery: RecoveryStats{
			Retries:          uint64(m.retries.Load()),
			ResumedJobs:      uint64(m.resumedJobs.Load()),
			RestartedJobs:    uint64(m.restartedJobs.Load()),
			ResumedTasks:     uint64(m.resumedTasks.Load()),
			ABFTDetected:     uint64(m.abftDetected.Load()),
			ABFTRecomputed:   uint64(m.abftRecomputed.Load()),
			BrownoutRequests: uint64(m.brownoutReqs.Load()),
		},
	}
	// The two gauges are updated independently on the hot path, so a
	// snapshot between the paired updates can transiently skew; clamp.
	if s.QueueDepth < 0 {
		s.QueueDepth = 0
	}
	if up > 0 {
		s.ThroughputRPS = float64(s.Completed) / up
		s.GFlopsServed = s.FlopsTotal / up / 1e9
	}
	for name, h := range m.routes {
		s.Routes[name] = histStats(h)
	}
	for name, h := range m.classes {
		s.Classes[name] = histStats(h)
	}
	if ss != nil {
		// Under the scheduler the run queue lives in internal/sched, not in
		// the FIFO admission counters: source the gauges from it.
		s.Sched = ss
		s.QueueDepth = ss.Queued
		s.Executing = int(ss.InFlight) - ss.Queued
		if s.Executing < 0 {
			s.Executing = 0
		}
	}
	return s
}

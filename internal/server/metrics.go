package server

// Serving metrics: monotonic counters, gauges derived from the admission
// machinery, and latency quantiles from a streaming log-bucketed histogram.
// Everything is O(1) per request and bounded in memory, so the metrics path
// cannot become the bottleneck it is supposed to observe.

import (
	"math"
	"sync"
	"time"

	"srumma/internal/sched"
)

// Histogram buckets are geometric: bucket i covers latencies in
// [histBase*histGrowth^(i-1), histBase*histGrowth^i), with bucket 0
// catching everything below histBase. 96 buckets at 12% growth span 50us
// to ~2.7h, which is wider than any admissible request.
const (
	histBuckets = 96
	histBase    = 50e-6
	histGrowth  = 1.12
)

// histogram is a streaming latency histogram. All methods are
// mutex-guarded; contention is negligible at HTTP request rates.
type histogram struct {
	counts [histBuckets]uint64
	total  uint64
	sum    float64
	max    float64
}

func (h *histogram) observe(seconds float64) {
	i := 0
	if seconds >= histBase {
		i = 1 + int(math.Log(seconds/histBase)/math.Log(histGrowth))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.counts[i]++
	h.total++
	h.sum += seconds
	if seconds > h.max {
		h.max = seconds
	}
}

// quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it — a deliberate over-estimate, never flattering.
func (h *histogram) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			if i == 0 {
				return histBase
			}
			ub := histBase * math.Pow(histGrowth, float64(i))
			if ub > h.max && h.max > 0 {
				return h.max
			}
			return ub
		}
	}
	return h.max
}

func (h *histogram) mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// RouteStats is the per-execution-tier slice of a metrics snapshot.
type RouteStats struct {
	Count  uint64  `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// MetricsSnapshot is the JSON body of GET /metrics.
type MetricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_s"`

	Admitted  uint64 `json:"admitted_total"`
	Completed uint64 `json:"completed_total"`
	Rejected  uint64 `json:"rejected_429_total"`
	Errors    uint64 `json:"error_total"`
	Cancelled uint64 `json:"cancelled_total"`
	// TeamsReplaced counts pooled engine teams retired after leaking ranks.
	TeamsReplaced uint64 `json:"teams_replaced_total"`

	QueueDepth int `json:"queue_depth"`
	Executing  int `json:"executing"`
	QueueCap   int `json:"queue_cap"`

	ThroughputRPS float64 `json:"throughput_rps"`
	// GFlopsServed is aggregate useful arithmetic divided by uptime.
	GFlopsServed float64 `json:"gflops_served"`
	FlopsTotal   float64 `json:"flops_total"`

	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
	LatencyMeanMs float64 `json:"latency_mean_ms"`
	LatencyMaxMs  float64 `json:"latency_max_ms"`

	// RecentRPS is the completion rate over the trailing rate window —
	// the observed service rate that prices Retry-After hints.
	RecentRPS float64 `json:"recent_rps"`

	Routes map[string]RouteStats `json:"routes"`
	// Classes breaks latency down by workload class (interactive/batch).
	Classes map[string]RouteStats `json:"classes"`

	// Sched is the workload scheduler's view (nil in FIFO mode): per-class
	// queue depth, batch occupancy, deadline misses, pool elasticity.
	Sched *sched.Snapshot `json:"sched,omitempty"`
}

// rateWindow counts ok-completions in a ring of 1-second buckets, giving a
// recent-throughput estimate that is O(1) per request and immune to
// uptime averaging (a burst an hour ago must not price Retry-After now).
const rateWindowSecs = 8

type rateWindow struct {
	counts [rateWindowSecs]uint64
	epochs [rateWindowSecs]int64 // unix second each bucket last belonged to
}

func (rw *rateWindow) record(now time.Time) {
	sec := now.Unix()
	i := int(sec % rateWindowSecs)
	if rw.epochs[i] != sec {
		rw.epochs[i] = sec
		rw.counts[i] = 0
	}
	rw.counts[i]++
}

// rps returns completions per second over the window, counting only
// buckets young enough to still be inside it.
func (rw *rateWindow) rps(now time.Time) float64 {
	sec := now.Unix()
	var n uint64
	for i := 0; i < rateWindowSecs; i++ {
		if sec-rw.epochs[i] < rateWindowSecs {
			n += rw.counts[i]
		}
	}
	return float64(n) / rateWindowSecs
}

type metrics struct {
	start    time.Time
	queueCap int

	mu            sync.Mutex
	admitted      uint64
	completed     uint64
	rejected      uint64
	errors        uint64
	cancelled     uint64
	teamsReplaced uint64
	inFlight      int
	executing     int
	flops         float64
	overall       histogram
	routes        map[string]*histogram
	classes       map[string]*histogram
	rate          rateWindow

	// schedSnap, when set, sources the queue/executing gauges and the Sched
	// section from the workload scheduler instead of the FIFO admission
	// counters.
	schedSnap func() sched.Snapshot
}

func newMetrics(queueCap int) *metrics {
	return &metrics{
		start:    time.Now(),
		queueCap: queueCap,
		routes:   map[string]*histogram{routeSmall: {}, routeSRUMMA: {}},
		classes: map[string]*histogram{
			sched.ClassInteractive.String(): {},
			sched.ClassBatch.String():       {},
		},
	}
}

func (m *metrics) admit() {
	m.mu.Lock()
	m.admitted++
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) reject() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

func (m *metrics) execStart() {
	m.mu.Lock()
	m.executing++
	m.mu.Unlock()
}

// finish settles one admitted request. route is "" for requests that never
// executed (bad input discovered post-admission, cancellation while
// queued); class labels the workload class; outcome is one of "ok",
// "error", "cancelled".
func (m *metrics) finish(route, class string, outcome string, latency time.Duration, flops float64, executed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight--
	if executed {
		m.executing--
	}
	switch outcome {
	case "ok":
		m.completed++
		m.flops += flops
		m.rate.record(time.Now())
		m.overall.observe(latency.Seconds())
		if h := m.routes[route]; h != nil {
			h.observe(latency.Seconds())
		}
		if h := m.classes[class]; h != nil {
			h.observe(latency.Seconds())
		}
	case "cancelled":
		m.cancelled++
	default:
		m.errors++
	}
}

// recentRPS is the completion rate over the trailing window.
func (m *metrics) recentRPS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rate.rps(time.Now())
}

func (m *metrics) teamReplaced() {
	m.mu.Lock()
	m.teamsReplaced++
	m.mu.Unlock()
}

func (m *metrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	schedSnap := m.schedSnap
	m.mu.Unlock()
	var ss *sched.Snapshot
	if schedSnap != nil {
		snap := schedSnap() // outside m.mu: the scheduler has its own lock
		ss = &snap
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	up := time.Since(m.start).Seconds()
	s := MetricsSnapshot{
		UptimeSeconds: up,
		Admitted:      m.admitted,
		Completed:     m.completed,
		Rejected:      m.rejected,
		Errors:        m.errors,
		Cancelled:     m.cancelled,
		TeamsReplaced: m.teamsReplaced,
		QueueDepth:    m.inFlight - m.executing,
		Executing:     m.executing,
		QueueCap:      m.queueCap,
		FlopsTotal:    m.flops,
		LatencyP50Ms:  m.overall.quantile(0.50) * 1e3,
		LatencyP90Ms:  m.overall.quantile(0.90) * 1e3,
		LatencyP99Ms:  m.overall.quantile(0.99) * 1e3,
		LatencyMeanMs: m.overall.mean() * 1e3,
		LatencyMaxMs:  m.overall.max * 1e3,
		RecentRPS:     m.rate.rps(time.Now()),
		Routes:        make(map[string]RouteStats, len(m.routes)),
		Classes:       make(map[string]RouteStats, len(m.classes)),
	}
	if up > 0 {
		s.ThroughputRPS = float64(m.completed) / up
		s.GFlopsServed = m.flops / up / 1e9
	}
	for name, h := range m.routes {
		s.Routes[name] = RouteStats{
			Count:  h.total,
			P50Ms:  h.quantile(0.50) * 1e3,
			P99Ms:  h.quantile(0.99) * 1e3,
			MeanMs: h.mean() * 1e3,
		}
	}
	for name, h := range m.classes {
		s.Classes[name] = RouteStats{
			Count:  h.total,
			P50Ms:  h.quantile(0.50) * 1e3,
			P99Ms:  h.quantile(0.99) * 1e3,
			MeanMs: h.mean() * 1e3,
		}
	}
	if ss != nil {
		// Under the scheduler the run queue lives in internal/sched, not in
		// the FIFO admission counters: source the gauges from it.
		s.Sched = ss
		s.QueueDepth = ss.Queued
		s.Executing = int(ss.InFlight) - ss.Queued
		if s.Executing < 0 {
			s.Executing = 0
		}
	}
	return s
}

package server

// Dense binary wire format for /v1/multiply — the serving hot path without
// float→decimal text. A request is a fixed 48-byte little-endian header
// (shape, case, alpha/beta, per-request knobs) followed by the operands as
// raw little-endian float64 arrays: A, then B, then (when flagged) the
// input C. A response is a 16-byte header followed by the result floats.
// Request identity, workload class and the deadline hint — strings and
// scheduling metadata, not bulk data — ride as X-Srumma-* HTTP headers.
//
// The decoder is zero-copy on little-endian hosts: the body is read with
// io.ReadFull directly into the float64 backing store of a pooled,
// 64-byte-aligned buffer (reinterpreted as bytes via unsafe.Slice), and
// that buffer flows into the engine as the operand — no intermediate
// []byte staging and no per-element conversion. On a big-endian host the
// same path runs with an in-place byte swap after the read, so the wire
// image is identical everywhere.
//
// Resource protection happens BEFORE allocation: the header's shapes are
// validated against the server's MaxDim bound, and (for identity-encoded
// bodies) the Content-Length must equal the header-derived body size
// exactly, so a hostile or truncated request is refused without ever
// sizing a buffer from attacker-controlled lengths. Optional gzip is
// negotiated with the standard Content-Encoding/Accept-Encoding headers.

import (
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"unsafe"

	"srumma/internal/core"
)

// Content types negotiated on POST /v1/multiply. JSON stays the default
// and the compatibility path; the binary types opt a client into the
// dense wire.
const (
	// ContentTypeBinary marks a binary-encoded request body.
	ContentTypeBinary = "application/x-srumma-gemm"
	// ContentTypeBinaryResult marks a binary-encoded response body; send
	// it in Accept to get a binary result regardless of the request wire.
	ContentTypeBinaryResult = "application/x-srumma-gemm-result"
	// ContentTypeJSON is the default wire.
	ContentTypeJSON = "application/json"
)

// Wire labels used by the metrics instruments.
const (
	wireJSON   = "json"
	wireBinary = "binary"
)

// Binary framing constants.
const (
	binReqMagic  = "SRW1" // request header magic
	binRespMagic = "SRWR" // response header magic
	binVersion   = 1

	binReqHeaderLen  = 48
	binRespHeaderLen = 16

	binFlagHasC = 1 << 0 // request body carries an input C after B

	// maxWireKernelThreads bounds the per-request kernel-thread knob; a
	// wire value beyond it is a malformed request, not a tuning choice.
	maxWireKernelThreads = 4096
)

var binCaseNames = [4]string{"NN", "TN", "NT", "TT"}

// hostLittleEndian reports whether float64 memory already matches the
// little-endian wire image (true on every supported platform; the
// big-endian fallback byte-swaps in place).
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// floatBytes reinterprets f's backing array as its raw bytes. The view
// aliases f — valid only while f is alive and unmoved (slices are heap
// stable in Go), and only meaningful as wire data on little-endian hosts.
func floatBytes(f []float64) []byte {
	if len(f) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&f[0])), 8*len(f))
}

// readFloats fills dst with little-endian float64s from r, reading the
// wire bytes directly into dst's backing store (zero-copy on LE hosts).
func readFloats(r io.Reader, dst []float64) error {
	b := floatBytes(dst)
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	if !hostLittleEndian {
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
	}
	return nil
}

// writeFloats writes src as little-endian float64 wire bytes.
func writeFloats(w io.Writer, src []float64) error {
	if hostLittleEndian {
		_, err := w.Write(floatBytes(src))
		return err
	}
	var chunk [8192]byte
	for len(src) > 0 {
		n := len(src)
		if n > len(chunk)/8 {
			n = len(chunk) / 8
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(src[i]))
		}
		if _, err := w.Write(chunk[:8*n]); err != nil {
			return err
		}
		src = src[n:]
	}
	return nil
}

// ---------------------------------------------------------------------------
// Pooled 64-byte-aligned operand buffers.

// bufAlign is the alignment of pooled operand buffers: one cache line, so
// the packed kernel's streaming loads start line-aligned no matter which
// request produced the operand.
const bufAlign = 64

// alignedBuf is one pooled operand buffer: raw is the allocation, data the
// 64-byte-aligned window the decoder fills and the engine reads.
type alignedBuf struct {
	raw  []float64
	data []float64
	cls  int
}

// bufPool pools aligned operand buffers by power-of-two size class (the
// armci scratch-pool shape), keeping steady-state binary decodes
// allocation-free.
type bufPool struct {
	classes [40]sync.Pool
}

// bufSizeClass returns the smallest c with 1<<c >= n (n >= 1).
func bufSizeClass(n int) int {
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// get returns an aligned buffer with len(data) == n.
func (p *bufPool) get(n int) *alignedBuf {
	const pad = bufAlign / 8 // extra floats so an aligned window always fits
	cls := bufSizeClass(n + pad)
	b, _ := p.classes[cls].Get().(*alignedBuf)
	if b == nil {
		raw := make([]float64, 1<<cls)
		b = &alignedBuf{raw: raw, cls: cls}
	}
	addr := uintptr(unsafe.Pointer(&b.raw[0]))
	off := int((bufAlign-addr%bufAlign)%bufAlign) / 8
	b.data = b.raw[off : off+n]
	return b
}

// put returns b to its size-class pool.
func (p *bufPool) put(b *alignedBuf) {
	if b == nil {
		return
	}
	b.data = nil
	p.classes[b.cls].Put(b)
}

// ---------------------------------------------------------------------------
// Request decode.

// wireError is a decode failure with its HTTP status: 400 for malformed
// payloads, 413 for oversized bodies, 415 for a disabled wire.
type wireError struct {
	status int
	msg    string
}

func (e *wireError) Error() string { return e.msg }

func badWire(format string, args ...any) *wireError {
	return &wireError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// wireRequest is one decoded /v1/multiply request plus the wire state the
// handler needs to respond and to release pooled storage afterwards: which
// wire it arrived on, how many wire bytes it occupied, the pooled operand
// buffers (binary wire), and — once the cache layer has run — the operand
// digests and block-table registrations.
type wireRequest struct {
	req     MultiplyRequest
	wire    string // wireJSON or wireBinary
	gzipped bool   // request body arrived gzip-encoded
	bytesIn int64  // wire bytes of the request body (compressed size if gzipped)

	// bufs holds pooled operand storage in A, B, C order; entries are nil
	// on the JSON wire or once ownership moved into the block table.
	bufs [3]*alignedBuf

	// Content addressing (filled by Server.computeDigests when the cache
	// is enabled). interned lists the digests registered in the block
	// table, released when the request finishes.
	digA, digB, digC [32]byte
	haveDigests      bool
	interned         [][32]byte

	// scratch is header/probe space for the binary decoder: reading into a
	// field of the (already heap-allocated) request keeps the steady-state
	// decode at zero allocations, where a local array would escape through
	// the io.Reader interface.
	scratch [binReqHeaderLen]byte

	// noPool marks a request whose engine run may have left rank
	// goroutines behind (watchdog leak) or was abandoned mid-execution:
	// its operand buffers are dropped for the GC instead of recycled, so
	// a zombie reader can never observe another request's decode landing
	// in them.
	noPool bool
}

// release returns the request's pooled and interned operand storage. Must
// run after the response is written: the engine and the encoder read the
// operand slices in place.
func (wr *wireRequest) release(s *Server) {
	for _, dig := range wr.interned {
		if wr.noPool {
			s.blocks.abandon(dig)
		} else {
			s.blocks.release(dig)
		}
	}
	wr.interned = nil
	for i, b := range wr.bufs {
		if b == nil {
			continue
		}
		if !wr.noPool {
			s.pool.put(b)
		}
		wr.bufs[i] = nil
	}
}

// countingReader counts wire bytes as they are read.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// binShape is the header-derived shape of one binary request, validated
// against the server bound before any buffer is sized from it.
type binShape struct {
	cs                     core.Case
	aRows, aCols           int
	bRows, bCols           int
	m, n                   int // result shape under the transpose case
	hasC                   bool
	alpha, beta            float64
	kernelThreads, timeout int
}

// parseBinHeader validates a request header, rejecting before the caller
// allocates anything: bad framing, out-of-range shapes and non-finite
// scalars all fail here.
func parseBinHeader(hdr *[binReqHeaderLen]byte, maxDim int) (binShape, *wireError) {
	var sh binShape
	if string(hdr[0:4]) != binReqMagic {
		return sh, badWire("bad magic %q (want %q)", hdr[0:4], binReqMagic)
	}
	if hdr[4] != binVersion {
		return sh, badWire("unsupported binary wire version %d (want %d)", hdr[4], binVersion)
	}
	if hdr[5] > 3 {
		return sh, badWire("bad transpose case %d (want 0..3)", hdr[5])
	}
	sh.cs = core.Case(hdr[5])
	if hdr[6]&^byte(binFlagHasC) != 0 {
		return sh, badWire("unknown flag bits 0x%02x", hdr[6]&^byte(binFlagHasC))
	}
	sh.hasC = hdr[6]&binFlagHasC != 0
	if hdr[7] != 0 {
		return sh, badWire("nonzero reserved header byte")
	}
	dims := [4]int{}
	for i := range dims {
		v := binary.LittleEndian.Uint32(hdr[8+4*i:])
		if v == 0 || int64(v) > int64(maxDim) {
			return sh, badWire("dimension %d out of range [1, %d]", v, maxDim)
		}
		dims[i] = int(v)
	}
	sh.aRows, sh.aCols, sh.bRows, sh.bCols = dims[0], dims[1], dims[2], dims[3]
	sh.alpha = math.Float64frombits(binary.LittleEndian.Uint64(hdr[24:]))
	sh.beta = math.Float64frombits(binary.LittleEndian.Uint64(hdr[32:]))
	if !isFinite(sh.alpha) || !isFinite(sh.beta) {
		return sh, badWire("alpha and beta must be finite")
	}
	kt := binary.LittleEndian.Uint32(hdr[40:])
	if kt > maxWireKernelThreads {
		return sh, badWire("kernel_threads %d out of range [0, %d]", kt, maxWireKernelThreads)
	}
	sh.kernelThreads = int(kt)
	sh.timeout = int(binary.LittleEndian.Uint32(hdr[44:]))
	sh.m, sh.n = sh.aRows, sh.bCols
	if sh.cs.TransA() {
		sh.m = sh.aCols
	}
	if sh.cs.TransB() {
		sh.n = sh.bRows
	}
	return sh, nil
}

// bodyLen is the exact identity-encoded body size the header implies.
func (sh binShape) bodyLen() int64 {
	elems := int64(sh.aRows)*int64(sh.aCols) + int64(sh.bRows)*int64(sh.bCols)
	if sh.hasC {
		elems += int64(sh.m) * int64(sh.n)
	}
	return binReqHeaderLen + 8*elems
}

// decodeBinaryRequest reads one binary request from r into wr, drawing
// operand storage from pool. contentLength is the transport's claimed
// body size (-1 when unknown or gzip-compressed); when known it must
// match the header-derived size exactly — checked before allocation.
func decodeBinaryRequest(r io.Reader, contentLength int64, maxDim int, pool *bufPool, wr *wireRequest) *wireError {
	if _, err := io.ReadFull(r, wr.scratch[:]); err != nil {
		return badWire("truncated binary header: %v", err)
	}
	sh, werr := parseBinHeader(&wr.scratch, maxDim)
	if werr != nil {
		return werr
	}
	if contentLength >= 0 && contentLength != sh.bodyLen() {
		return badWire("content length %d does not match header-derived body size %d", contentLength, sh.bodyLen())
	}

	sizes := [3]int{sh.aRows * sh.aCols, sh.bRows * sh.bCols, 0}
	if sh.hasC {
		sizes[2] = sh.m * sh.n
	}
	for i, n := range sizes {
		if n == 0 {
			continue
		}
		buf := pool.get(n)
		if err := readFloats(r, buf.data); err != nil {
			pool.put(buf)
			return badWire("truncated operand %c: %v", 'a'+i, err)
		}
		wr.bufs[i] = buf
	}
	// The body must end exactly where the header said it would; trailing
	// bytes mean a framing bug (or a length-smuggling attempt).
	if n, _ := r.Read(wr.scratch[:1]); n != 0 {
		return badWire("trailing bytes after request body")
	}

	wr.req = MultiplyRequest{
		Case:  binCaseNames[sh.cs],
		ARows: sh.aRows, ACols: sh.aCols, A: wr.bufs[0].data,
		BRows: sh.bRows, BCols: sh.bCols, B: wr.bufs[1].data,
	}
	if sh.hasC {
		wr.req.C = wr.bufs[2].data
	}
	if sh.alpha != 1 {
		a := sh.alpha
		wr.req.Alpha = &a
	}
	if sh.beta != 0 {
		b := sh.beta
		wr.req.Beta = &b
	}
	wr.req.KernelThreads = sh.kernelThreads
	wr.req.TimeoutMillis = int64(sh.timeout)
	return nil
}

// encodeBinaryRequest is the client-side encoder (srumma-load, tests, the
// fuzz round-trip): the exact inverse of decodeBinaryRequest.
func encodeBinaryRequest(w io.Writer, req *MultiplyRequest) error {
	cs, err := parseCase(req.Case)
	if err != nil {
		return err
	}
	var hdr [binReqHeaderLen]byte
	copy(hdr[0:4], binReqMagic)
	hdr[4] = binVersion
	hdr[5] = byte(cs)
	if len(req.C) > 0 {
		hdr[6] |= binFlagHasC
	}
	binary.LittleEndian.PutUint32(hdr[8:], uint32(req.ARows))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(req.ACols))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(req.BRows))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(req.BCols))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(req.alpha()))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(req.beta()))
	binary.LittleEndian.PutUint32(hdr[40:], uint32(req.KernelThreads))
	binary.LittleEndian.PutUint32(hdr[44:], uint32(req.TimeoutMillis))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, f := range [][]float64{req.A, req.B, req.C} {
		if err := writeFloats(w, f); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Response encode / decode.

// encodeBinaryResponse writes the response body: 16-byte header + result
// floats. Everything scalar about the response travels as X-Srumma-*
// headers (set by the caller); the body is pure data.
func encodeBinaryResponse(w io.Writer, rows, cols int, c []float64) error {
	var hdr [binRespHeaderLen]byte
	copy(hdr[0:4], binRespMagic)
	hdr[4] = binVersion
	binary.LittleEndian.PutUint32(hdr[8:], uint32(rows))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(cols))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	return writeFloats(w, c)
}

// DecodeBinaryResponse parses a binary response body (client side).
func DecodeBinaryResponse(r io.Reader) (rows, cols int, c []float64, err error) {
	var hdr [binRespHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, fmt.Errorf("truncated binary response header: %w", err)
	}
	if string(hdr[0:4]) != binRespMagic {
		return 0, 0, nil, fmt.Errorf("bad response magic %q", hdr[0:4])
	}
	if hdr[4] != binVersion {
		return 0, 0, nil, fmt.Errorf("unsupported binary wire version %d", hdr[4])
	}
	rows = int(binary.LittleEndian.Uint32(hdr[8:]))
	cols = int(binary.LittleEndian.Uint32(hdr[12:]))
	if rows <= 0 || cols <= 0 || int64(rows)*int64(cols) > int64(math.MaxInt32) {
		return 0, 0, nil, fmt.Errorf("bad response shape %dx%d", rows, cols)
	}
	c = make([]float64, rows*cols)
	if err = readFloats(r, c); err != nil {
		return 0, 0, nil, fmt.Errorf("truncated binary response body: %w", err)
	}
	return rows, cols, c, nil
}

// EncodeBinaryRequest marshals req onto the binary wire (client side).
func EncodeBinaryRequest(req *MultiplyRequest) ([]byte, error) {
	var sb sliceWriter
	if err := encodeBinaryRequest(&sb, req); err != nil {
		return nil, err
	}
	return sb.b, nil
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}

// ---------------------------------------------------------------------------
// HTTP glue.

// jsonBodyLimit bounds a JSON request body: three maxDim x maxDim operands
// at a worst-case ~32 text bytes per element, plus framing slack. Anything
// beyond it is refused mid-read rather than buffered.
func jsonBodyLimit(maxDim int) int64 {
	return 3*int64(maxDim)*int64(maxDim)*32 + 1<<16
}

// binBodyLimit bounds a binary request body independently of its header
// (the header-derived exact check is stricter, but gzip-encoded bodies
// have no trustworthy Content-Length to compare against).
func binBodyLimit(maxDim int) int64 {
	return 3*int64(maxDim)*int64(maxDim)*8 + binReqHeaderLen + 1<<12
}

// decodeRequest dispatches on Content-Type: the binary wire for
// ContentTypeBinary, JSON for everything else (the compatibility default).
// Either way the body is size-bounded, optionally gzip-decoded, counted,
// and scanned for non-finite operands.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (*wireRequest, *wireError) {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	wr := &wireRequest{wire: wireJSON}
	wr.gzipped = r.Header.Get("Content-Encoding") == "gzip"

	if ct == ContentTypeBinary {
		if s.cfg.JSONOnly {
			return nil, &wireError{status: http.StatusUnsupportedMediaType, msg: "binary wire disabled (server runs -json-only)"}
		}
		wr.wire = wireBinary
		cr := &countingReader{r: http.MaxBytesReader(w, r.Body, binBodyLimit(s.cfg.MaxDim))}
		var body io.Reader = cr
		contentLength := r.ContentLength
		if wr.gzipped {
			gz, err := gzip.NewReader(cr)
			if err != nil {
				return nil, badWire("bad gzip body: %v", err)
			}
			defer gz.Close()
			body = gz
			contentLength = -1 // compressed size says nothing about the payload
		}
		werr := decodeBinaryRequest(body, contentLength, s.cfg.MaxDim, s.pool, wr)
		wr.bytesIn = cr.n
		if werr != nil {
			wr.release(s)
			if isMaxBytesError(werr) {
				werr.status = http.StatusRequestEntityTooLarge
			}
			return nil, werr
		}
		// Scalars that have no binary field ride as headers.
		wr.req.ID = r.Header.Get("X-Srumma-Id")
		wr.req.Class = r.Header.Get("X-Srumma-Class")
		if v := r.Header.Get("X-Srumma-Deadline-Ms"); v != "" {
			ms, err := strconv.ParseInt(v, 10, 64)
			if err != nil || ms < 0 {
				wr.release(s)
				return nil, badWire("bad X-Srumma-Deadline-Ms %q", v)
			}
			wr.req.DeadlineMillis = ms
		}
	} else {
		cr := &countingReader{r: http.MaxBytesReader(w, r.Body, jsonBodyLimit(s.cfg.MaxDim))}
		var body io.Reader = cr
		if wr.gzipped {
			gz, err := gzip.NewReader(cr)
			if err != nil {
				return nil, badWire("bad gzip body: %v", err)
			}
			defer gz.Close()
			body = gz
		}
		err := json.NewDecoder(body).Decode(&wr.req)
		wr.bytesIn = cr.n
		if err != nil {
			werr := badWire("bad request body: %v", err)
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				werr.status = http.StatusRequestEntityTooLarge
			}
			return nil, werr
		}
	}

	if err := checkFinite(&wr.req); err != nil {
		wr.release(s)
		return nil, badWire("%v", err)
	}
	return wr, nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// checkFinite enforces the non-finite policy on both wires: NaN and Inf
// operands are rejected at the door. A NaN poisons every block it meets
// and defeats both the ABFT checksums and content addressing (NaN != NaN),
// so it is a malformed request, not a numerical edge case.
func checkFinite(req *MultiplyRequest) error {
	if (req.Alpha != nil && !isFinite(*req.Alpha)) || (req.Beta != nil && !isFinite(*req.Beta)) {
		return fmt.Errorf("alpha and beta must be finite")
	}
	for _, op := range []struct {
		name string
		data []float64
	}{{"a", req.A}, {"b", req.B}, {"c", req.C}} {
		for _, v := range op.data {
			if !isFinite(v) {
				return fmt.Errorf("operand %s contains a non-finite value", op.name)
			}
		}
	}
	return nil
}

func isMaxBytesError(werr *wireError) bool {
	return werr != nil && strings.Contains(werr.msg, "request body too large")
}

package server

// Per-route circuit breaker. When one execution tier goes bad — a wedged
// team pool, a fault storm on the distributed engine — retry budgets turn
// every request into several slow failures. The breaker converts that into
// fast failure: it watches a sliding window of request outcomes per route,
// opens when the failure fraction crosses the threshold, sheds subsequent
// requests with 503 + Retry-After for a cooldown, then admits one probe
// (half-open) and closes again only if the probe succeeds. Disabled unless
// Config.BreakerThreshold > 0, so the default serving path is unchanged.

import (
	"sync"
	"time"

	"srumma/internal/obs"
)

// Breaker states, exported in metrics as breaker.state.<route>.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

type breaker struct {
	threshold  float64 // failure fraction that opens
	window     int     // outcomes in the decision window
	minSamples int     // outcomes required before the breaker may open
	cooldown   time.Duration
	now        func() time.Time // injectable clock for tests

	mu       sync.Mutex
	ring     []bool // true = failure; circular, newest overwrites oldest
	idx      int
	filled   int
	state    int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	stateG *obs.Gauge
	opened *obs.Counter
	shed   *obs.Counter
}

func newBreaker(route string, threshold float64, window int, cooldown time.Duration, reg *obs.Registry, now func() time.Time) *breaker {
	if window > 128 {
		window = 128
	}
	return &breaker{
		threshold:  threshold,
		window:     window,
		minSamples: (window + 1) / 2,
		cooldown:   cooldown,
		now:        now,
		ring:       make([]bool, window),
		stateG:     reg.Gauge("breaker.state." + route),
		opened:     reg.Counter("breaker.opened." + route),
		shed:       reg.Counter("breaker.shed." + route),
	}
}

// allow decides whether a request may proceed. When it may not, the second
// return is how long the client should back off (the remaining cooldown).
func (b *breaker) allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		remaining := b.cooldown - b.now().Sub(b.openedAt)
		if remaining > 0 {
			b.shed.Add(1)
			return false, remaining
		}
		// Cooldown over: this request is the half-open probe.
		b.setState(breakerHalfOpen)
		b.probing = true
		return true, 0
	case breakerHalfOpen:
		if b.probing {
			b.shed.Add(1)
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
	return true, 0
}

// record settles one allowed request's outcome.
func (b *breaker) record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probing = false
		if ok {
			// The probe succeeded: close and forget the bad window.
			for i := range b.ring {
				b.ring[i] = false
			}
			b.filled, b.idx = 0, 0
			b.setState(breakerClosed)
		} else {
			b.openedAt = b.now()
			b.setState(breakerOpen)
		}
		return
	}
	if b.state == breakerOpen {
		// A straggler admitted before the trip; its outcome is stale.
		return
	}
	b.ring[b.idx] = !ok
	b.idx = (b.idx + 1) % len(b.ring)
	if b.filled < len(b.ring) {
		b.filled++
	}
	if b.filled < b.minSamples {
		return
	}
	fails := 0
	for i := 0; i < b.filled; i++ {
		if b.ring[i] {
			fails++
		}
	}
	if float64(fails)/float64(b.filled) >= b.threshold {
		b.openedAt = b.now()
		b.opened.Add(1)
		b.setState(breakerOpen)
	}
}

func (b *breaker) setState(s int) {
	b.state = s
	b.stateG.Set(int64(s))
}

// snapshot returns the breaker's exported view.
func (b *breaker) snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:  breakerStateName(b.state),
		Opened: uint64(b.opened.Load()),
		Shed:   uint64(b.shed.Load()),
	}
}

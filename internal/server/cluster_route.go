package server

// Cluster route: the serving layer's bridge to internal/cluster. When the
// server runs with Config.Cluster, requests that would take the in-process
// SRUMMA route are sharded onto a pool of worker NODES — each an ipcrt
// coordinator owning OS-process ranks — placed by a locality key so a
// node's persistent segment pool stays warm for repeated shapes.
//
// Failure folds into the EXISTING recovery policy rather than growing a
// new one: a worker death surfaces from the pool as rt.ErrRankExited (the
// node is replaced synchronously before the error returns), the handler's
// retry budget resubmits the job, and clusterRecover carries the salvaged
// per-rank C blocks + ledger bitsets across attempts so the retry resumes
// from completed tasks instead of restarting — bit-identical either way.
// Unlike the in-process path, a node failure never poisons the scheduler's
// team worker (ReplaceWorker): the unit of repair is the node, and the
// pool already replaced it.

import (
	"fmt"
	mathbits "math/bits"
	"sync"
	"time"

	"srumma/internal/cluster"
	"srumma/internal/grid"
	"srumma/internal/ipcrt"
	"srumma/internal/mat"
	"srumma/internal/sched"
)

// clusterRecover is one sharded request's recovery state, shared by every
// retry attempt: the per-rank salvage (partial C block, ledger bitset,
// task count) that a failed attempt's workers shipped back in their FIN
// payloads.
type clusterRecover struct {
	resume bool // ledger-based resume enabled (!NoResume)
	abft   bool // this request verifies blocks (may be shed by brownout)

	mu     sync.Mutex
	priorC map[int][]float64
	bits   map[int][]uint64
	tasks  map[int]int
}

func (s *Server) newClusterRecover(abft bool) *clusterRecover {
	return &clusterRecover{resume: !s.cfg.NoResume, abft: abft}
}

// store replaces the salvage with what the failed attempt's results carry.
// Ranks without salvage (they exited cleanly before a peer's death aborted
// the run) simply have no entry and restart from the request inputs — the
// same reconciliation recoverJob.prepareRetry performs in-process.
func (cr *clusterRecover) store(results []*ipcrt.RankResult) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.priorC, cr.bits, cr.tasks = nil, nil, nil
	for _, r := range results {
		if r == nil || !r.Salvaged {
			continue
		}
		if cr.priorC == nil {
			cr.priorC = make(map[int][]float64)
			cr.bits = make(map[int][]uint64)
			cr.tasks = make(map[int]int)
		}
		cr.priorC[r.Rank] = r.C
		cr.bits[r.Rank] = r.LedgerBits
		cr.tasks[r.Rank] = r.LedgerTasks
	}
}

// resumedTasks counts the completed tasks the next attempt will skip — the
// resumed-work figure the recovery metrics report.
func (cr *clusterRecover) resumedTasks() int {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	n := 0
	for _, bits := range cr.bits {
		for _, w := range bits {
			n += mathbits.OnesCount64(w)
		}
	}
	return n
}

// take consumes the salvage for one attempt. Consuming on read keeps
// salvage and marks in lockstep across multiple retries, exactly like
// recoverJob.take: stale salvage can never pair with newer ledger state.
func (cr *clusterRecover) take() (c map[int][]float64, bits map[int][]uint64, tasks map[int]int) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	c, bits, tasks = cr.priorC, cr.bits, cr.tasks
	cr.priorC, cr.bits, cr.tasks = nil, nil, nil
	return c, bits, tasks
}

// execClusterTask runs one sharded multiply from the scheduler. The team
// worker hosting this dispatch stays idle (the pool's worker processes do
// the arithmetic) but healthy: node failures are repaired inside the pool,
// so the outcome never requests ReplaceWorker.
func (s *Server) execClusterTask(t *sched.Task, job *schedJob) sched.Outcome {
	job.started = time.Now()
	job.batch = 1
	out, err := s.runCluster(job)
	job.out = out
	job.finished = time.Now()
	t.Finish(err)
	return sched.Outcome{}
}

// runCluster builds the wire-level job spec from the request (inline
// operands, resume salvage, verification flags), places it on a node by
// locality key, and assembles the per-rank C blocks into the result. On
// failure it banks whatever the ranks salvaged for the handler's retry.
func (s *Server) runCluster(job *schedJob) (*mat.Matrix, error) {
	req, cs, d, crec := job.req, job.cs, job.d, job.crec
	if err := job.ctx.Err(); err != nil {
		return nil, err
	}
	kt := req.KernelThreads
	if kt <= 0 {
		kt = s.cfg.KernelThreads
	}
	spec := &ipcrt.JobSpec{
		M: d.M, N: d.N, K: d.K,
		Case:  int(cs),
		Alpha: req.alpha(),
		Beta:  req.beta(),
		Data:  true,
		A:     req.A,
		B:     req.B,

		KernelThreads: kt,
		MaxTaskK:      s.cfg.MaxTaskK,
		ReturnC:       true,
		Trace:         job.traced && s.rec != nil,
		ExitRank:      -1,
		HangRank:      -1,
	}
	if req.beta() != 0 {
		spec.CIn = req.C
	}
	if crec.resume {
		spec.UseLedger = true
		spec.PriorC, spec.PriorBits, spec.PriorTasks = crec.take()
	}
	if crec.abft {
		spec.ABFT = true
		spec.ABFTTol = s.cfg.ABFTTol
	}
	if s.cfg.Hier {
		// Hierarchical routing mode: the worker ranks run the two-level
		// multiply with groups mapped onto the emulated domains — i.e. one
		// group per worker node (JobSpec.HierGroup 0 keeps that default).
		spec.Hier = true
		spec.HierGroup = s.cfg.HierGroup
	}

	class := req.Class
	if class == "" {
		class = sched.ClassInteractive.String()
	}
	key := cluster.PlaceKey{Class: class, M: d.M, N: d.N, K: d.K, Case: int(cs)}
	results, err := s.cpool.Run(spec, key)

	// Cross-process observability rides the FIN payloads: worker trace
	// events merge onto the server recorder's epoch (rank lanes are shared
	// with the in-process teams — one timeline for the whole service), and
	// worker-side ABFT counts land in the same recover.* counters.
	if spec.Trace {
		for _, e := range ipcrt.MergeEvents(results, s.rec.Epoch()) {
			s.rec.Record(e.Rank, e.Kind, e.Start, e.End)
		}
	}
	var det, rec int64
	for _, r := range results {
		if r != nil && r.Stats != nil {
			det += r.Stats.ABFTDetected
			rec += r.Stats.ABFTRecomputed
		}
	}
	s.met.noteABFT(det, rec)

	if err != nil {
		if crec.resume {
			crec.store(results)
		}
		return nil, err
	}

	blocks := make([]*mat.Matrix, len(results))
	for rank, r := range results {
		if r == nil {
			return nil, fmt.Errorf("cluster: rank %d returned no result", rank)
		}
		if r.Err != "" {
			return nil, fmt.Errorf("cluster: rank %d: %s", rank, r.Err)
		}
		blocks[rank] = &mat.Matrix{Rows: r.CRows, Cols: r.CCols, Stride: r.CCols, Data: r.C}
	}
	return grid.NewBlockDist(s.g, d.M, d.N).Gather(blocks)
}

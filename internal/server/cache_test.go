package server

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"srumma/internal/mat"
	"srumma/internal/obs"
)

// bitsEqual compares float slices by IEEE bit pattern — the cache's
// bit-identity contract, stricter than numeric equality.
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestCacheHitBitIdentical pins the headline guarantee: a cache hit serves
// exactly the bytes a fresh compute produced — same result digest, same
// float bits — while skipping the engine, and the digests are
// wire-independent (a JSON-filled entry hits from the binary wire).
func TestCacheHitBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, CacheEntries: 16})
	req := randReq(24, 32, 16, 900)
	req.ID = "fresh"

	var fresh MultiplyResponse
	code, _ := post(t, s, req, &fresh)
	if code != http.StatusOK {
		t.Fatalf("fresh status %d", code)
	}
	if fresh.Cached || fresh.Route == routeCache {
		t.Fatalf("first request served from cache: %+v", fresh)
	}
	if fresh.Digest == "" || fresh.DigestA == "" || fresh.DigestB == "" {
		t.Fatalf("fresh response missing digest chain: %+v", fresh)
	}

	req.ID = "hit"
	var hit MultiplyResponse
	code, _ = post(t, s, req, &hit)
	if code != http.StatusOK {
		t.Fatalf("hit status %d", code)
	}
	if !hit.Cached || hit.Route != routeCache {
		t.Fatalf("identical request not served from cache: route %q cached %v", hit.Route, hit.Cached)
	}
	if hit.Digest != fresh.Digest || hit.DigestA != fresh.DigestA || hit.DigestB != fresh.DigestB {
		t.Fatalf("hit digest chain differs from fresh:\n%+v\n%+v", fresh, hit)
	}
	if !bitsEqual(fresh.C, hit.C) {
		t.Fatal("cache hit is not bit-identical to the fresh compute")
	}

	// Same operands over the binary wire: digests are computed over the
	// shape-prefixed LE byte image, not the wire encoding, so this hits too.
	w := binPost(t, s, req, false, "")
	if w.Code != http.StatusOK {
		t.Fatalf("binary status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Srumma-Cached"); got != "1" {
		t.Fatalf("binary-wire repeat of a JSON-cached request missed the cache (X-Srumma-Cached %q)", got)
	}
	if got := w.Header().Get("X-Srumma-Digest"); got != fresh.Digest {
		t.Fatalf("binary hit digest %q, want %q", got, fresh.Digest)
	}
	rows, cols, c := decodeBinRecorder(t, w)
	if rows != fresh.Rows || cols != fresh.Cols || !bitsEqual(fresh.C, c) {
		t.Fatal("binary-wire cache hit is not bit-identical to the fresh compute")
	}

	m := s.Metrics()
	if m.Cache == nil || m.Cache.Hits != 2 || m.Cache.Misses != 1 {
		t.Fatalf("cache stats: %+v", m.Cache)
	}
}

// TestCacheHitSRUMMARoute repeats the bit-identity pin on the distributed
// route: the cached Gather output must match a fresh engine run bit for
// bit.
func TestCacheHitSRUMMARoute(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, SmallMNK: 1, CacheEntries: 4})
	req := randReq(48, 32, 40, 901)
	var fresh, hit MultiplyResponse
	if code, _ := post(t, s, req, &fresh); code != http.StatusOK {
		t.Fatalf("fresh status %d", code)
	}
	if fresh.Route != routeSRUMMA {
		t.Fatalf("route %q, want %q", fresh.Route, routeSRUMMA)
	}
	if code, _ := post(t, s, req, &hit); code != http.StatusOK {
		t.Fatalf("hit status %d", code)
	}
	if hit.Route != routeCache || !bitsEqual(fresh.C, hit.C) {
		t.Fatalf("SRUMMA-route cache hit not bit-identical (route %q)", hit.Route)
	}
	checkResult(t, hit, wantGemm(t, req), 1e-10)
}

// TestCacheKeyDiscriminates: the key covers operands, case, scalars and
// input C, so near-identical requests do not collide.
func TestCacheKeyDiscriminates(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, CacheEntries: 16})
	req := randReq(8, 8, 8, 902)
	var r1, r2, r3 MultiplyResponse
	post(t, s, req, &r1)

	alpha := 2.0
	req2 := req
	req2.Alpha = &alpha
	if code, _ := post(t, s, req2, &r2); code != http.StatusOK {
		t.Fatal("alpha variant failed")
	}
	if r2.Cached {
		t.Fatal("different alpha hit the same cache entry")
	}

	beta := 1.0
	req3 := req
	req3.Beta = &beta
	req3.C = make([]float64, 64)
	for i := range req3.C {
		req3.C[i] = float64(i)
	}
	if code, _ := post(t, s, req3, &r3); code != http.StatusOK {
		t.Fatal("beta variant failed")
	}
	if r3.Cached {
		t.Fatal("beta/C variant hit the same cache entry")
	}
	if r3.DigestCIn == "" {
		t.Fatal("beta != 0 response missing digest_c_in")
	}

	// The original request still hits.
	var again MultiplyResponse
	post(t, s, req, &again)
	if !again.Cached {
		t.Fatal("original request evicted or mis-keyed")
	}
}

func newTestCache(entries int, bytes int64, ttl time.Duration) *resultCache {
	return newResultCache(entries, bytes, ttl, obs.NewRegistry())
}

func matOf(vals ...float64) mat.Matrix {
	return mat.Matrix{Rows: 1, Cols: len(vals), Stride: len(vals), Data: vals}
}

func TestResultCacheLRU(t *testing.T) {
	c := newTestCache(2, 0, 0)
	k := func(i byte) cacheKey { return cacheKey{a: digest{i}} }
	c.put(k(1), matOf(1), digest{1})
	c.put(k(2), matOf(2), digest{2})
	if _, _, ok := c.get(k(1)); !ok { // refresh 1: now 2 is LRU
		t.Fatal("entry 1 missing")
	}
	c.put(k(3), matOf(3), digest{3}) // evicts 2
	if _, _, ok := c.get(k(2)); ok {
		t.Fatal("LRU entry 2 survived eviction")
	}
	if _, _, ok := c.get(k(1)); !ok {
		t.Fatal("recently-used entry 1 evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
	if st := c.stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

func TestResultCacheByteBound(t *testing.T) {
	c := newTestCache(0, 100, 0) // 100 bytes = 12 floats max resident
	k := func(i byte) cacheKey { return cacheKey{a: digest{i}} }
	c.put(k(1), matOf(make([]float64, 8)...), digest{1}) // 64 bytes
	c.put(k(2), matOf(make([]float64, 8)...), digest{2}) // 128 total: evicts 1
	if _, _, ok := c.get(k(1)); ok {
		t.Fatal("byte bound did not evict")
	}
	if _, _, ok := c.get(k(2)); !ok {
		t.Fatal("newest entry evicted instead of oldest")
	}
	// An entry larger than the whole cache is refused outright.
	c.put(k(3), matOf(make([]float64, 64)...), digest{3})
	if _, _, ok := c.get(k(3)); ok {
		t.Fatal("oversized entry retained")
	}
}

func TestResultCacheTTL(t *testing.T) {
	c := newTestCache(8, 0, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	k := cacheKey{a: digest{9}}
	c.put(k, matOf(1, 2), digest{9})
	if _, _, ok := c.get(k); !ok {
		t.Fatal("entry missing before TTL")
	}
	now = now.Add(2 * time.Minute)
	if _, _, ok := c.get(k); ok {
		t.Fatal("entry survived past TTL")
	}
	if st := c.stats(); st.Expired != 1 || st.Entries != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}
}

func TestBlockTableInterning(t *testing.T) {
	pool := &bufPool{}
	tbl := newBlockTable(pool, obs.NewRegistry())
	d := digest{42}

	b1 := pool.get(4)
	copy(b1.data, []float64{1, 2, 3, 4})
	canon := tbl.intern(d, b1.data, b1)

	b2 := pool.get(4)
	copy(b2.data, []float64{1, 2, 3, 4})
	got := tbl.intern(d, b2.data, b2) // duplicate: adopts canon, pools b2
	if &got[0] != &canon[0] {
		t.Fatal("duplicate intern did not adopt the canonical buffer")
	}
	if tbl.dedupCount() != 1 {
		t.Fatalf("dedup count %d, want 1", tbl.dedupCount())
	}
	if tbl.live() != 1 {
		t.Fatalf("live blocks %d, want 1", tbl.live())
	}
	tbl.release(d)
	if tbl.live() != 1 {
		t.Fatal("block released while a holder remains")
	}
	tbl.release(d)
	if tbl.live() != 0 {
		t.Fatal("block not released at refcount zero")
	}
}

func TestBlockTableAbandonWithholdsBuffer(t *testing.T) {
	if raceEnabled {
		t.Skip("pool recycling assertions are meaningless under the race detector")
	}
	pool := &bufPool{}
	tbl := newBlockTable(pool, obs.NewRegistry())
	d := digest{7}
	b := pool.get(4)
	addr := uintptrOf(b.data)
	tbl.intern(d, b.data, b)
	tbl.abandon(d)
	if tbl.live() != 0 {
		t.Fatal("abandon did not drop the reference")
	}
	// The abandoned buffer must NOT come back from the pool.
	if got := pool.get(4); uintptrOf(got.data) == addr {
		t.Fatal("abandoned buffer was recycled into the pool")
	}
}

// TestInternSharesRepeatedOperandInOneRequest: a request whose A and B are
// the same matrix interns one canonical buffer (dedup 1), visible in the
// metrics snapshot.
func TestInternSharesRepeatedOperandInOneRequest(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, CacheEntries: 4})
	sq := mat.Random(16, 16, 77)
	req := MultiplyRequest{
		ARows: 16, ACols: 16, A: sq.Data,
		BRows: 16, BCols: 16, B: sq.Data,
	}
	var resp MultiplyResponse
	if code, _ := post(t, s, req, &resp); code != http.StatusOK {
		t.Fatal("request failed")
	}
	if resp.DigestA != resp.DigestB {
		t.Fatal("identical operands digested differently")
	}
	m := s.Metrics()
	if m.Cache == nil || m.Cache.BlockDedup < 1 {
		t.Fatalf("block dedup not counted: %+v", m.Cache)
	}
	if s.blocks.live() != 0 {
		t.Fatalf("interned blocks leaked: %d live after request", s.blocks.live())
	}
}

// TestDigestCacheLookupAllocs pins the cache probe hot path: digesting two
// operands and probing the LRU allocates O(1) small objects, independent
// of matrix size.
func TestDigestCacheLookupAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under the race detector")
	}
	a := mat.Random(64, 64, 5)
	b := mat.Random(64, 64, 6)
	c := newTestCache(8, 0, 0)
	key := cacheKey{a: digestMatrix(64, 64, a.Data), b: digestMatrix(64, 64, b.Data)}
	c.put(key, matOf(1, 2, 3), digest{1})
	avg := testing.AllocsPerRun(100, func() {
		k := cacheKey{a: digestMatrix(64, 64, a.Data), b: digestMatrix(64, 64, b.Data)}
		if _, _, ok := c.get(k); !ok {
			t.Fatal("lookup missed")
		}
	})
	// The sha256 digest state is pooled; the only tolerated allocations are
	// the hash.Sum escape (one per digest).
	if avg > 2 {
		t.Fatalf("digest+lookup allocates %.1f objects/op, want <= 2", avg)
	}
}

// TestMetricsWireAndCacheSnapshot: the /metrics JSON round-trips the new
// wire and cache sections (srumma-load parses this shape).
func TestMetricsWireAndCacheSnapshot(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, CacheEntries: 4})
	req := randReq(8, 8, 8, 903)
	post(t, s, req, nil)
	post(t, s, req, nil)
	binPost(t, s, req, false, "")

	raw, err := json.Marshal(s.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cache == nil || snap.Cache.Hits != 2 || snap.Cache.Misses != 1 {
		t.Fatalf("cache section: %+v", snap.Cache)
	}
	if snap.Cache.HitRate < 0.6 || snap.Cache.HitRate > 0.7 {
		t.Fatalf("hit rate %g, want 2/3", snap.Cache.HitRate)
	}
	jw, bw := snap.Wire[wireJSON], snap.Wire[wireBinary]
	if jw.Requests != 2 || bw.Requests != 1 {
		t.Fatalf("wire request counts: json %d binary %d", jw.Requests, bw.Requests)
	}
	if jw.BytesIn == 0 || jw.BytesOut == 0 || bw.BytesIn == 0 || bw.BytesOut == 0 {
		t.Fatalf("wire byte counters empty: %+v %+v", jw, bw)
	}
	// The binary body is dense: 3 8x8 float64 payloads' worth of JSON text
	// is strictly larger than the 48-byte header + 1024 bytes of floats.
	if bw.BytesInP50 >= jw.BytesInP50 {
		t.Fatalf("binary request body (%g) not smaller than JSON (%g)", bw.BytesInP50, jw.BytesInP50)
	}
}

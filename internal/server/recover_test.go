package server

// Recovery-layer tests: the end-to-end chaos gate (crash + silent compute
// corruption against a live server, every accepted request bit-correct),
// the circuit breaker state machine under a fake clock, the retryability
// classification, the recoverJob salvage/ledger reconciliation, and the
// brownout shed counter.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/faults"
	"srumma/internal/obs"
	"srumma/internal/sched"
)

// TestChaosServe is the end-to-end chaos gate: a server with the fault
// injector planted under every engine job — one mid-compute rank crash,
// silent C-block corruption, transport drops — must return a bit-correct
// product for every accepted request, and the recovery counters must show
// the machinery actually fired (handler retries, ABFT detections that were
// recomputed). A fault-free twin provides the bit-exact reference.
func TestChaosServe(t *testing.T) {
	// Seed 1 plants the compute crash at rank 3's gemm op 4. With MaxTaskK 8
	// every rank owns 8 tasks in the 64-K first request, so the crash fires
	// mid-request-0 with completed, salvageable tasks behind it — the gate
	// deterministically exercises RESUME, not just restart.
	plan, err := faults.NewPlan(faults.Config{
		Seed:               1,
		ComputeCrash:       true,
		ComputeCrashOpSpan: 6,
		BadBlockRate:       0.05,
		DropRate:           0.02,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	faulty := newTestServer(t, Config{
		NProcs:       4,
		SmallMNK:     1, // everything on the distributed engine
		MaxTaskK:     8,
		ABFT:         true,
		FaultPlan:    plan,
		RetryBudget:  3,
		RetryBackoff: 2 * time.Millisecond,
	})
	// A twin with the same plan pins seeded determinism: the whole recovery
	// story — which request crashes, what resumes, what ABFT catches — must
	// replay identically, or chaos failures cannot be reproduced at a desk.
	twin := newTestServer(t, Config{
		NProcs:       4,
		SmallMNK:     1,
		MaxTaskK:     8,
		ABFT:         true,
		FaultPlan:    plan,
		RetryBudget:  3,
		RetryBackoff: 2 * time.Millisecond,
	})
	clean := newTestServer(t, Config{NProcs: 4, SmallMNK: 1, MaxTaskK: 8})

	const requests = 10
	for i := 0; i < requests; i++ {
		n := 64 - 8*(i%3) // 64 first (the crash request), then 56, 48
		req := randReq(n, n, n, uint64(900+i))
		req.ID = fmt.Sprintf("chaos-%d", i)

		var want MultiplyResponse
		code, _ := post(t, clean, req, &want)
		if code != http.StatusOK {
			t.Fatalf("request %d: clean twin status %d", i, code)
		}
		var got MultiplyResponse
		code, w := post(t, faulty, req, &got)
		if code != http.StatusOK {
			t.Fatalf("request %d: chaos server status %d: %s", i, code, w.Body.String())
		}
		for e := range got.C {
			if got.C[e] != want.C[e] {
				t.Fatalf("request %d: C[%d] = %v under chaos, want %v (bit-exact)", i, e, got.C[e], want.C[e])
			}
		}
		var got2 MultiplyResponse
		if code, _ := post(t, twin, req, &got2); code != http.StatusOK {
			t.Fatalf("request %d: twin status %d", i, code)
		}
		for e := range got.C {
			if got2.C[e] != got.C[e] {
				t.Fatalf("request %d: twin C[%d] diverged under the same seed", i, e)
			}
		}
	}

	rec := faulty.Metrics().Recovery
	// ResumedTasks is the one timing-dependent field: how much peer ranks
	// had completed when the crash abort unwound them varies run to run.
	// Everything else — which request failed, that it resumed rather than
	// restarted, every ABFT detection — must replay exactly.
	rec2 := twin.Metrics().Recovery
	rec2.ResumedTasks, rec.ResumedTasks = 0, 0
	if rec2 != rec {
		t.Errorf("same seed, different recovery story:\n first %+v\n  twin %+v", rec, rec2)
	}
	rec = faulty.Metrics().Recovery
	if rec.Retries == 0 {
		t.Error("no handler retries recorded; the planted compute crash never fired")
	}
	if rec.ResumedJobs == 0 {
		t.Errorf("no resumed jobs (retries=%d restarted=%d): retries are not salvaging completed work", rec.Retries, rec.RestartedJobs)
	}
	if rec.ResumedTasks == 0 {
		t.Error("resumed jobs skipped zero tasks; the ledger is not carrying completions across attempts")
	}
	if rec.ABFTDetected == 0 {
		t.Error("ABFT detected no corrupted blocks despite BadBlockRate > 0")
	}
	if rec.ABFTRecomputed == 0 {
		t.Error("ABFT recomputed no blocks; detections did not recover")
	}
	t.Logf("chaos recovery: %+v", rec)
}

// TestChaosServeFIFO runs a reduced chaos gate through the FIFO dispatch
// path, which retries on the same pinned team.
func TestChaosServeFIFO(t *testing.T) {
	plan, err := faults.NewPlan(faults.Config{
		Seed:               1,
		ComputeCrash:       true,
		ComputeCrashOpSpan: 6,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{
		NProcs:       4,
		SmallMNK:     1,
		MaxTaskK:     8,
		SchedMode:    "fifo",
		ABFT:         true,
		FaultPlan:    plan,
		RetryBudget:  3,
		RetryBackoff: 2 * time.Millisecond,
	})
	clean := newTestServer(t, Config{NProcs: 4, SmallMNK: 1, MaxTaskK: 8, SchedMode: "fifo"})
	for i := 0; i < 4; i++ {
		req := randReq(64, 64, 64, uint64(700+i))
		var want MultiplyResponse
		if code, _ := post(t, clean, req, &want); code != http.StatusOK {
			t.Fatalf("request %d: clean twin status %d", i, code)
		}
		var resp MultiplyResponse
		code, w := post(t, s, req, &resp)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, w.Body.String())
		}
		for e := range resp.C {
			if resp.C[e] != want.C[e] {
				t.Fatalf("request %d: C[%d] = %v under chaos, want %v (bit-exact)", i, e, resp.C[e], want.C[e])
			}
		}
	}
	if rec := s.Metrics().Recovery; rec.Retries == 0 {
		t.Errorf("FIFO path recorded no retries: %+v", rec)
	}
}

// TestBreakerStateMachine drives the circuit breaker through
// closed -> open -> half-open -> closed and the failed-probe reopen, under
// an injectable clock.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	b := newBreaker("test", 0.5, 4, time.Second, obs.NewRegistry(), clock)

	if ok, _ := b.allow(); !ok {
		t.Fatal("fresh breaker must allow")
	}
	// Below minSamples (2 of window 4) one failure must not trip it.
	b.record(false)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker tripped below minSamples")
	}
	b.record(false) // 2/2 failures >= 0.5: trips
	if ok, wait := b.allow(); ok {
		t.Fatal("breaker did not open at the failure threshold")
	} else if wait <= 0 || wait > time.Second {
		t.Fatalf("open breaker advertised cooldown %v", wait)
	}
	if got := b.snapshot(); got.State != "open" || got.Opened != 1 || got.Shed != 1 {
		t.Fatalf("snapshot after trip = %+v", got)
	}

	// Cooldown elapses: exactly one probe is admitted.
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker did not admit a probe after cooldown")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	b.record(true) // probe succeeds: closed, window forgotten
	if got := b.snapshot(); got.State != "closed" {
		t.Fatalf("state after successful probe = %q", got.State)
	}
	b.record(false)
	if ok, _ := b.allow(); !ok {
		t.Fatal("breaker reopened on a forgotten window")
	}

	// Trip again; this time the probe fails and the breaker reopens.
	b.record(false)
	if ok, _ := b.allow(); ok {
		t.Fatal("breaker did not reopen")
	}
	now = now.Add(1100 * time.Millisecond)
	if ok, _ := b.allow(); !ok {
		t.Fatal("no probe after second cooldown")
	}
	b.record(false)
	if got := b.snapshot(); got.State != "open" {
		t.Fatalf("state after failed probe = %q", got.State)
	}
}

// TestBreakerServes503 wires the breaker into the serving path: a route
// forced open by consecutive failures sheds with 503 + Retry-After.
func TestBreakerServes503(t *testing.T) {
	s := newTestServer(t, Config{
		NProcs:           2,
		BreakerThreshold: 0.5,
		BreakerWindow:    4, // minSamples 2: trips on the second failure
		BreakerCooldown:  time.Minute,
		RetryBudget:      -1, // isolate the breaker from the retry machinery
	})
	// Force failures through the small route by making its dispatch panic.
	s.setBatchHook(func(tk *sched.Task) { panic("chaos: wedged tier") })
	req := randReq(8, 8, 8, 1)
	for i := 0; i < 2; i++ {
		if code, _ := post(t, s, req, nil); code != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d, want 500", i, code)
		}
	}
	code, w := post(t, s, req, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d after trip, want 503 (body %s)", code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if s.Metrics().Breakers[routeSmall].State != "open" {
		t.Fatalf("breaker state = %+v, want open", s.Metrics().Breakers)
	}
}

// TestRetryableRunError pins the retry classification: recoverable engine
// failures retry; cancellations, drain and exhausted scheduler budgets are
// final.
func TestRetryableRunError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"cancelled", core.ErrCancelled, false},
		{"ctx-cancel", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"sched-cancel", sched.ErrCancelled, false},
		{"drain", sched.ErrClosed, false},
		{"sched-budget-spent", fmt.Errorf("%w (3 attempts): boom", sched.ErrRetriesExhausted), false},
		{"rank-panic", &armci.RankPanicError{Rank: 2, Cause: "boom"}, true},
		{"wrapped-rank-panic", fmt.Errorf("run: %w", &armci.RankPanicError{Rank: 0, Cause: "x"}), true},
		{"watchdog", &armci.WatchdogError{Leaked: []int{1}}, true},
		{"abft", fmt.Errorf("rank 3: %w", core.ErrABFT), true},
		{"plain", errors.New("some bug"), false},
	}
	for _, tc := range cases {
		if got := retryableRunError(tc.err); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestRecoverJobSalvage pins the salvage/ledger reconciliation: ranks with
// salvage keep their marks, ranks without are reset, and take consumes —
// a segment can never be paired with a ledger newer than itself.
func TestRecoverJobSalvage(t *testing.T) {
	rj := &recoverJob{ledger: core.NewJobLedger(2), salv: make([][]float64, 2)}
	lg0 := rj.ledger.Rank(0, 4)
	lg0.Mark(0)
	lg0.Mark(2)
	lg1 := rj.ledger.Rank(1, 4)
	lg1.Mark(1)
	rj.save(0, []float64{1, 2, 3})

	// Rank 1 has marks but no salvage: reset; rank 0 resumes 2 tasks.
	if got := rj.prepareRetry(); got != 2 {
		t.Fatalf("prepareRetry = %d resumed tasks, want 2", got)
	}
	if lg1.Completed() != 0 {
		t.Fatal("unsalvaged rank's ledger not reset")
	}
	if got := rj.take(0); len(got) != 3 {
		t.Fatalf("take(0) = %v", got)
	}
	if rj.take(0) != nil {
		t.Fatal("take did not consume the salvage")
	}
	// Next failure with no new salvage: rank 0's ledger resets too.
	if got := rj.prepareRetry(); got != 0 {
		t.Fatalf("second prepareRetry = %d, want 0 (stale ledger must reset)", got)
	}

	// Resume disabled: no ledger, nothing resumes.
	none := &recoverJob{salv: make([][]float64, 2)}
	if got := none.prepareRetry(); got != 0 {
		t.Fatalf("no-resume prepareRetry = %d, want 0", got)
	}
}

// TestBrownoutShedsOptionalWork builds a backlog past the brownout
// threshold and verifies newly admitted requests are counted as browned
// out (served without ABFT or batching) while still succeeding.
func TestBrownoutShedsOptionalWork(t *testing.T) {
	s := newTestServer(t, Config{
		NProcs:     2,
		Teams:      1,
		QueueCap:   8,
		BrownoutAt: 0.25, // 2 queued trips it
		ABFT:       true,
	})
	release, entered := blockOn(s, "blocker")
	defer release()
	blocker := randReq(16, 16, 16, 1)
	blocker.ID = "blocker"
	blockerCh := postAsync(t, s, blocker)
	<-entered

	var chans []<-chan struct {
		code int
		resp MultiplyResponse
	}
	for i := 0; i < 4; i++ {
		req := randReq(16, 16, 16, uint64(10+i))
		req.ID = fmt.Sprintf("bg-%d", i)
		chans = append(chans, postAsync(t, s, req))
		waitQueued(t, s, i+1)
	}
	release()
	for i, ch := range chans {
		if out := <-ch; out.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, out.code)
		}
	}
	if out := <-blockerCh; out.code != http.StatusOK {
		t.Fatalf("blocker status %d", out.code)
	}
	if got := s.Metrics().Recovery.BrownoutRequests; got == 0 {
		t.Fatal("no requests counted as browned out despite a backlog past the threshold")
	}
}

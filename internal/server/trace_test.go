package server

// Tests for the service-level tracing surface: request spans, engine spans
// from pooled teams, the shared sched lane, and the /debug/trace export.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"srumma/internal/obs"
)

// TestDebugTraceDisabledByDefault: with TraceEvents unset the endpoint says
// so instead of returning an empty trace, and no recorder exists.
func TestDebugTraceDisabledByDefault(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4})
	if s.rec != nil {
		t.Fatal("recorder allocated with TraceEvents=0")
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("status %d, want 404", w.Code)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if er.Error == "" {
		t.Fatal("empty error message")
	}
}

// TestDebugTraceExportsSpans drives requests through both routes of a traced
// scheduler-mode server and checks the exported Chrome trace: it validates,
// names every lane, and contains request, engine and scheduler spans.
func TestDebugTraceExportsSpans(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, TraceEvents: 256, SmallMNK: 1})
	// SmallMNK=1 forces the distributed route; then a batchable small one.
	big := randReq(24, 24, 24, 300)
	var resp MultiplyResponse
	if code, _ := post(t, s, big, &resp); code != http.StatusOK {
		t.Fatalf("srumma route status %d", code)
	}
	checkResult(t, resp, wantGemm(t, big), 1e-12)

	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/trace", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("trace status %d, want 200", w.Code)
	}
	slices, err := obs.ValidateChromeTrace(w.Body.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if slices == 0 {
		t.Fatal("trace has no slices")
	}

	events := s.rec.Events()
	kinds := map[obs.Kind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindRequest, obs.KindGemm, obs.KindJob, obs.KindQueue, obs.KindBatch} {
		if kinds[k] == 0 {
			t.Errorf("no %s spans recorded", k)
		}
	}
	// Request spans live on the server lane, sched spans on the sched lane.
	for _, e := range events {
		switch e.Kind {
		case obs.KindRequest:
			if e.Rank != s.cfg.NProcs {
				t.Errorf("request span on lane %d, want %d", e.Rank, s.cfg.NProcs)
			}
		case obs.KindQueue, obs.KindBatch:
			if e.Rank != s.cfg.NProcs+1 {
				t.Errorf("%s span on lane %d, want %d", e.Kind, e.Rank, s.cfg.NProcs+1)
			}
		}
	}
}

// TestSchedRegistryShared: in scheduler mode the sched.* instruments live in
// the server's registry — one namespace for the whole service.
func TestSchedRegistryShared(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 1})
	req := randReq(8, 8, 8, 400)
	var resp MultiplyResponse
	if code, _ := post(t, s, req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	got := map[string]float64{}
	for _, smp := range s.met.reg.Snapshot() {
		got[smp.Name] = smp.Value
	}
	if got["sched.completed"] < 1 {
		t.Fatalf("sched.completed = %v in shared registry, want >= 1", got["sched.completed"])
	}
	if got["server.admitted"] < 1 {
		t.Fatalf("server.admitted = %v, want >= 1", got["server.admitted"])
	}
}

// TestFifoTeamsTraced: the FIFO pool's teams also share the recorder.
func TestFifoTeamsTraced(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, SchedMode: "fifo", TraceEvents: 128, SmallMNK: 1})
	req := randReq(16, 16, 16, 500)
	var resp MultiplyResponse
	if code, _ := post(t, s, req, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	checkResult(t, resp, wantGemm(t, req), 1e-12)
	var gemm, request bool
	for _, e := range s.rec.Events() {
		switch e.Kind {
		case obs.KindGemm:
			gemm = true
		case obs.KindRequest:
			request = true
		}
	}
	if !gemm || !request {
		t.Fatalf("fifo trace missing spans: gemm=%v request=%v", gemm, request)
	}
}

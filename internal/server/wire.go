package server

// JSON wire format of the GEMM service. One request is one
// C = alpha * op(A) op(B) + beta * C; matrices travel as flat row-major
// float64 arrays with explicit stored shapes, mirroring the library API
// (operands are the STORED matrices — for case "TN" pass A as the k x m
// array that will be used transposed).

import (
	"fmt"

	"srumma/internal/core"
)

// MultiplyRequest is the body of POST /v1/multiply.
type MultiplyRequest struct {
	// ID is an optional caller-chosen request identifier, echoed back in
	// the response and server logs.
	ID string `json:"id,omitempty"`
	// Case is the transpose case: "NN" (default), "TN", "NT" or "TT".
	Case string `json:"case,omitempty"`

	ARows int       `json:"a_rows"`
	ACols int       `json:"a_cols"`
	A     []float64 `json:"a"`
	BRows int       `json:"b_rows"`
	BCols int       `json:"b_cols"`
	B     []float64 `json:"b"`
	// C is the optional m x n input C, required when beta != 0.
	C []float64 `json:"c,omitempty"`

	// Alpha and Beta default to 1 and 0 when omitted.
	Alpha *float64 `json:"alpha,omitempty"`
	Beta  *float64 `json:"beta,omitempty"`

	// KernelThreads caps the local-dgemm worker count per rank for this
	// request; 0 keeps the engine's oversubscription guard.
	KernelThreads int `json:"kernel_threads,omitempty"`
	// TimeoutMillis bounds this request's execution (queueing excluded);
	// 0 uses the server default. The deadline is enforced as cooperative
	// cancellation between SRUMMA tasks.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`

	// Class is the workload class: "interactive" (default) or "batch".
	// Under the scheduler, classes share the engine pool by weighted
	// fairness; interactive traffic is weighted ahead of batch.
	Class string `json:"class,omitempty"`
	// DeadlineMillis is the scheduling deadline from admission: requests
	// with earlier deadlines dispatch first within their class (EDF). It is
	// a hint, not an enforcement bound — enforcement stays with
	// timeout_ms. 0 derives the deadline from the effective timeout.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// MultiplyResponse is the success body of POST /v1/multiply.
type MultiplyResponse struct {
	ID   string    `json:"id,omitempty"`
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	C    []float64 `json:"c"`
	// Route reports which execution tier served the request: "small"
	// (direct local kernel) or "srumma" (distributed multiply on a pooled
	// persistent team).
	Route string `json:"route"`
	// QueueMillis is time spent admitted but waiting for an engine;
	// ElapsedMillis is execution time after that.
	QueueMillis   float64 `json:"queue_ms"`
	ElapsedMillis float64 `json:"elapsed_ms"`
	GFlops        float64 `json:"gflops"`
	// Class echoes the workload class the request was scheduled under.
	Class string `json:"class,omitempty"`
	// Batch is the size of the dispatch that served this request: 1 for a
	// solo run, >1 when the scheduler coalesced it with other small GEMMs
	// into one team job.
	Batch int `json:"batch,omitempty"`

	// Digest chain (present when the server runs with the result cache
	// enabled): SHA-256 content addresses of the operands as decoded and
	// of the result as served, hex-encoded. DigestCIn is set only when
	// beta != 0 (C unread otherwise). A client can verify end to end that
	// the served bytes are the multiply of exactly the operands it sent,
	// and that a cached result digests identically to a fresh compute.
	DigestA   string `json:"digest_a,omitempty"`
	DigestB   string `json:"digest_b,omitempty"`
	DigestCIn string `json:"digest_c_in,omitempty"`
	Digest    string `json:"digest,omitempty"`
	// Cached reports that the result came from the content-addressed
	// result cache — bit-identical to a fresh compute — and the request
	// skipped the scheduler and engine entirely.
	Cached bool `json:"cached,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	ID    string `json:"id,omitempty"`
	Error string `json:"error"`
	// RetryAfterSeconds accompanies 429 responses (also sent as the
	// Retry-After header): the client should back off at least this long.
	RetryAfterSeconds int `json:"retry_after_s,omitempty"`
}

// parseCase maps the wire case names onto core's transpose cases.
func parseCase(s string) (core.Case, error) {
	switch s {
	case "", "NN", "nn":
		return core.NN, nil
	case "TN", "tn":
		return core.TN, nil
	case "NT", "nt":
		return core.NT, nil
	case "TT", "tt":
		return core.TT, nil
	}
	return 0, fmt.Errorf("unknown case %q (want NN, TN, NT or TT)", s)
}

// dims derives (M, N, K) from the stored shapes under the transpose case
// and validates the request, enforcing maxDim as the resource-protection
// bound.
func (r *MultiplyRequest) dims(cs core.Case, maxDim int) (core.Dims, error) {
	if r.ARows <= 0 || r.ACols <= 0 || r.BRows <= 0 || r.BCols <= 0 {
		return core.Dims{}, fmt.Errorf("matrix shapes must be positive, got A %dx%d, B %dx%d", r.ARows, r.ACols, r.BRows, r.BCols)
	}
	for _, d := range []int{r.ARows, r.ACols, r.BRows, r.BCols} {
		if d > maxDim {
			return core.Dims{}, fmt.Errorf("dimension %d exceeds server limit %d", d, maxDim)
		}
	}
	if len(r.A) != r.ARows*r.ACols {
		return core.Dims{}, fmt.Errorf("a has %d elements, want a_rows*a_cols = %d", len(r.A), r.ARows*r.ACols)
	}
	if len(r.B) != r.BRows*r.BCols {
		return core.Dims{}, fmt.Errorf("b has %d elements, want b_rows*b_cols = %d", len(r.B), r.BRows*r.BCols)
	}
	m, k := r.ARows, r.ACols
	if cs.TransA() {
		m, k = r.ACols, r.ARows
	}
	kb, n := r.BRows, r.BCols
	if cs.TransB() {
		kb, n = r.BCols, r.BRows
	}
	if k != kb {
		return core.Dims{}, fmt.Errorf("inner dimensions disagree: op(A) is %dx%d, op(B) is %dx%d", m, k, kb, n)
	}
	if r.beta() != 0 && len(r.C) != m*n {
		return core.Dims{}, fmt.Errorf("beta != 0 needs c with m*n = %d elements, got %d", m*n, len(r.C))
	}
	if r.beta() == 0 && len(r.C) != 0 && len(r.C) != m*n {
		return core.Dims{}, fmt.Errorf("c has %d elements, want %d (or omit it)", len(r.C), m*n)
	}
	d := core.Dims{M: m, N: n, K: k}
	return d, d.Validate()
}

func (r *MultiplyRequest) alpha() float64 {
	if r.Alpha == nil {
		return 1
	}
	return *r.Alpha
}

func (r *MultiplyRequest) beta() float64 {
	if r.Beta == nil {
		return 0
	}
	return *r.Beta
}

package server

// Cluster serving gate: the sharded route must be bit-identical to the
// in-process distributed route across every transpose case, absorb an
// induced worker death through the retry budget with zero wrong answers,
// and resume (not restart) after a mid-compute crash via the cross-process
// salvage. This is the test `make cluster-smoke` runs under -race.

import (
	"math"
	"net/http"
	"os"
	"testing"

	"srumma/internal/faults"
	"srumma/internal/ipcrt"
	"srumma/internal/mat"
)

// TestMain doubles as the worker entry point: a cluster-mode server
// re-executes this test binary for its node ranks, and MaybeWorker diverts
// those copies into rank mode before any test runs.
func TestMain(m *testing.M) {
	ipcrt.MaybeWorker()
	os.Exit(m.Run())
}

// clusterCaseReq builds one deterministic request with the STORED operand
// shapes of the given transpose case (for "TN" A is the k x m array used
// transposed, etc.).
func clusterCaseReq(m, k, n int, cse string, seed uint64, beta float64) MultiplyRequest {
	ar, ac := m, k
	if cse == "TN" || cse == "TT" {
		ar, ac = k, m
	}
	br, bc := k, n
	if cse == "NT" || cse == "TT" {
		br, bc = n, k
	}
	req := MultiplyRequest{
		Case:  cse,
		ARows: ar, ACols: ac, A: mat.Random(ar, ac, seed).Data,
		BRows: br, BCols: bc, B: mat.Random(br, bc, seed+1).Data,
	}
	if beta != 0 {
		req.Beta = &beta
		req.C = mat.Random(m, n, seed+2).Data
	}
	return req
}

func skipWithoutCluster(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("multi-process cluster run in -short mode")
	}
	if !ipcrt.Available() {
		t.Skip("multi-process engine unavailable on this platform")
	}
}

func bitIdentical(t *testing.T, label string, got, want MultiplyResponse) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d, want %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	if len(got.C) != len(want.C) {
		t.Fatalf("%s: %d elements, want %d", label, len(got.C), len(want.C))
	}
	for i := range got.C {
		if math.Float64bits(got.C[i]) != math.Float64bits(want.C[i]) {
			t.Fatalf("%s: element %d: %v != %v (not bit-identical)", label, i, got.C[i], want.C[i])
		}
	}
}

// TestClusterServeSmoke shards /v1/multiply across two emulated worker
// nodes (2 ranks x 2 domains each) and holds every transpose case to the
// in-process SRUMMA route bit for bit, then induces a worker death and
// requires the retry budget to absorb it — same answer, HTTP 200, node
// replaced.
func TestClusterServeSmoke(t *testing.T) {
	skipWithoutCluster(t)
	// SmallMNK 1 forces the distributed route for the modest shapes the
	// test can afford; both servers share topology so blocks land alike.
	ref := newTestServer(t, Config{NProcs: 4, ProcsPerNode: 2, SmallMNK: 1})
	cl := newTestServer(t, Config{
		NProcs: 4, ProcsPerNode: 2, SmallMNK: 1,
		Cluster: true, ClusterNodes: 2, ClusterHeartbeat: -1,
	})

	for i, cse := range []string{"NN", "TN", "NT", "TT"} {
		req := clusterCaseReq(96, 80, 112, cse, uint64(40+3*i), 0.5)
		req.ID = "cluster-" + cse
		req.KernelThreads = 1
		var refResp, clResp MultiplyResponse
		if code, w := post(t, ref, req, &refResp); code != http.StatusOK {
			t.Fatalf("case %s in-process: HTTP %d: %s", cse, code, w.Body.String())
		}
		if code, w := post(t, cl, req, &clResp); code != http.StatusOK {
			t.Fatalf("case %s cluster: HTTP %d: %s", cse, code, w.Body.String())
		}
		if refResp.Route != routeSRUMMA {
			t.Fatalf("case %s: reference took route %q, want %q", cse, refResp.Route, routeSRUMMA)
		}
		if clResp.Route != routeCluster {
			t.Fatalf("case %s: cluster server took route %q, want %q", cse, clResp.Route, routeCluster)
		}
		bitIdentical(t, "case "+cse, clResp, refResp)
	}

	// Induced worker death: rank 1 of whichever node takes the next job
	// exits at job start. The pool replaces the node, the handler retries,
	// and the client still sees 200 with the bit-identical answer.
	cl.cpool.InjectExit(1, 3)
	req := clusterCaseReq(96, 80, 112, "NN", 40, 0.5)
	req.ID = "cluster-after-death"
	req.KernelThreads = 1
	var refResp, clResp MultiplyResponse
	if code, w := post(t, ref, req, &refResp); code != http.StatusOK {
		t.Fatalf("post-death in-process: HTTP %d: %s", code, w.Body.String())
	}
	if code, w := post(t, cl, req, &clResp); code != http.StatusOK {
		t.Fatalf("post-death cluster: HTTP %d: %s", code, w.Body.String())
	}
	bitIdentical(t, "post-death", clResp, refResp)

	snap := cl.Metrics()
	if snap.Recovery.Retries == 0 {
		t.Error("worker death produced no handler retry")
	}
	if len(snap.Cluster) != 2 {
		t.Fatalf("metrics report %d nodes, want 2", len(snap.Cluster))
	}
	replaced := int64(0)
	for _, nd := range snap.Cluster {
		if !nd.Healthy {
			t.Errorf("node %d unhealthy after replacement: %+v", nd.ID, nd)
		}
		replaced += nd.Replaced
	}
	if replaced == 0 {
		t.Error("no node replacement recorded after induced worker death")
	}
}

// TestClusterServeChaosResume kills a worker rank mid-job (a seeded,
// deterministic crash inside the task loop, after tasks have completed)
// and requires the retried job to RESUME from the salvaged ledger — not
// restart — and still produce the bit-identical result.
func TestClusterServeChaosResume(t *testing.T) {
	skipWithoutCluster(t)
	ref := newTestServer(t, Config{NProcs: 4, ProcsPerNode: 2, SmallMNK: 1, MaxTaskK: 8})
	cl := newTestServer(t, Config{
		NProcs: 4, ProcsPerNode: 2, SmallMNK: 1, MaxTaskK: 8,
		Cluster: true, ClusterNodes: 1, ClusterHeartbeat: -1,
	})

	// One-shot planted fault: a deterministically chosen rank panics at a
	// deterministically chosen local-gemm index — the mid-job death the
	// block-level recovery ledger exists for. MaxTaskK 8 gives the ledger
	// fine units so the crash lands after completed tasks.
	// Seed 13 plants the death at rank 3's 6th local gemm (deterministic:
	// faults.Plan.ComputeCrashPoint), so completed tasks exist to salvage.
	cl.cpool.InjectChaos(&faults.Config{Seed: 13, ComputeCrash: true, ComputeCrashOpSpan: 6})

	req := clusterCaseReq(96, 80, 112, "NN", 7, 0.5)
	req.ID = "cluster-chaos"
	req.KernelThreads = 1
	var refResp, clResp MultiplyResponse
	if code, w := post(t, ref, req, &refResp); code != http.StatusOK {
		t.Fatalf("in-process: HTTP %d: %s", code, w.Body.String())
	}
	if code, w := post(t, cl, req, &clResp); code != http.StatusOK {
		t.Fatalf("cluster with chaos: HTTP %d: %s", code, w.Body.String())
	}
	bitIdentical(t, "chaos-resume", clResp, refResp)

	snap := cl.Metrics()
	if snap.Recovery.Retries == 0 {
		t.Fatal("planted crash produced no handler retry")
	}
	if snap.Recovery.ResumedJobs == 0 || snap.Recovery.ResumedTasks == 0 {
		t.Errorf("retry restarted instead of resuming: %+v", snap.Recovery)
	}
}

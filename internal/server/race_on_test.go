//go:build race

package server

// raceEnabled skips allocation-count assertions: the race detector makes
// sync.Pool drop puts on purpose, so AllocsPerRun is meaningless there.
const raceEnabled = true

package server

// Block-level job recovery for the SRUMMA route. One recoverJob rides
// along with each distributed request across its retry attempts: it owns
// the core.JobLedger (which tasks each rank completed) and the salvaged
// per-rank C segments read out of a failed attempt. A retried job reloads
// the salvage, hands the ledger back to the executor, and re-executes only
// the tasks absent from it — bit-identical to an uninterrupted run. Ranks
// whose C could not be salvaged (they exited the job body cleanly before a
// peer's failure aborted the run, so their salvage hook never fired) have
// their ledger reset and restart from their request inputs.

import (
	"context"
	"errors"
	"sync"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/ipcrt"
	"srumma/internal/rt"
	"srumma/internal/sched"
)

// recoverJob is one SRUMMA request's recovery state, shared by every
// attempt. salv is written by team ranks during unwind and read by the
// next attempt's ranks; the ledger is the executor's own.
type recoverJob struct {
	ledger *core.JobLedger // nil when resume is disabled (restart-only retries)
	abft   bool            // this request verifies blocks (may be shed by brownout)

	mu   sync.Mutex
	salv [][]float64 // per-rank C segment rescued from a failed attempt
}

func (s *Server) newRecoverJob(abft bool) *recoverJob {
	rj := &recoverJob{abft: abft, salv: make([][]float64, s.cfg.NProcs)}
	if !s.cfg.NoResume {
		rj.ledger = core.NewJobLedger(s.cfg.NProcs)
	}
	return rj
}

func (rj *recoverJob) save(rank int, c []float64) {
	rj.mu.Lock()
	rj.salv[rank] = c
	rj.mu.Unlock()
}

// take consumes rank's salvaged C segment. Clearing on read is what keeps
// salvage and ledger in lockstep across multiple retries: a rank that later
// exits cleanly while the job fails again has salv == nil at the next
// prepareRetry, so its (now stale relative to its advanced ledger) segment
// can never be paired with newer marks — the ledger resets and the rank
// restarts.
func (rj *recoverJob) take(rank int) []float64 {
	if rj == nil {
		return nil
	}
	rj.mu.Lock()
	defer rj.mu.Unlock()
	c := rj.salv[rank]
	rj.salv[rank] = nil
	return c
}

// prepareRetry reconciles the ledger with what actually survived: a rank
// with completed tasks but no salvaged C lost its work, so its marks are
// cleared and it restarts. Returns how many tasks the retry will skip —
// the resumed-work count the recovery metrics report.
func (rj *recoverJob) prepareRetry() int {
	if rj.ledger == nil {
		return 0
	}
	rj.mu.Lock()
	defer rj.mu.Unlock()
	for rank, s := range rj.salv {
		if s == nil {
			rj.ledger.Reset(rank)
		}
	}
	return rj.ledger.Completed()
}

// retryableRunError classifies a failed SRUMMA run: rank panics (injected
// crashes included), leaked-rank watchdog reports, exhausted ABFT
// recomputes, and — on the cluster route — worker-process death or
// deadlock (rt.ErrRankExited / rt.ErrRankDeadlocked, surfaced after the
// pool replaced the node) and worker-side job-body failures are
// transient-with-recovery; cancellations, deadlines and drain are final.
func retryableRunError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, core.ErrCancelled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, sched.ErrCancelled) ||
		errors.Is(err, sched.ErrClosed) || errors.Is(err, sched.ErrRetriesExhausted) {
		// ErrRetriesExhausted means the scheduler's own requeue budget is
		// already spent; stacking the handler budget on top would square
		// the retry count.
		return false
	}
	var rpe *armci.RankPanicError
	var werr *armci.WatchdogError
	var rje *ipcrt.RankJobError
	return errors.As(err, &rpe) || errors.As(err, &werr) || errors.Is(err, core.ErrABFT) ||
		errors.Is(err, rt.ErrRankExited) || errors.Is(err, rt.ErrRankDeadlocked) ||
		errors.As(err, &rje)
}

// retryBackoff is the wait before retry attempt `attempt` (0-based):
// base * 2^attempt.
func retryBackoff(base time.Duration, attempt int) time.Duration {
	return base << uint(attempt)
}

// sleepCtx sleeps d unless ctx expires first; reports whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

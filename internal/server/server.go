// Package server is the GEMM-as-a-service layer: an HTTP front end that
// turns the SRUMMA engine from a one-shot library call into a long-running
// service. It combines
//
//   - a pool of persistent engine teams (armci.Team) whose rank goroutines,
//     kernel-thread configuration and scratch pools stay warm across
//     requests;
//   - an admission-controlled request queue with backpressure: a bounded
//     number of requests is admitted (queued + executing); overflow is
//     refused immediately with 429 and a Retry-After hint rather than
//     buffered without bound;
//   - size-based routing across execution tiers (cf. the hierarchical
//     platform argument of Quintin et al.): small products run directly on
//     the local packed parallel kernel, large ones on the distributed
//     SRUMMA engine;
//   - per-request deadlines enforced as cooperative cancellation between
//     SRUMMA tasks (core.Options.Cancel), so an expired request releases
//     its engine promptly and the team survives for the next one;
//   - observability (/metrics with streaming latency quantiles, /healthz)
//     and graceful shutdown that drains in-flight work.
package server

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	goruntime "runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"srumma/internal/armci"
	"srumma/internal/cluster"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/grid"
	"srumma/internal/hier"
	"srumma/internal/ipcrt"
	"srumma/internal/mat"
	"srumma/internal/obs"
	"srumma/internal/rt"
	"srumma/internal/sched"
)

// Execution tiers. routeCache is the zero-compute tier: a content-addressed
// result-cache hit that skips admission queueing, the scheduler, and the
// engine entirely. routeCluster replaces routeSRUMMA when the server runs
// in cluster mode: the same large products, sharded across OS-process
// worker nodes instead of the in-process teams.
const (
	routeSmall   = "small"
	routeSRUMMA  = "srumma"
	routeCache   = "cache"
	routeCluster = "cluster"
)

// Config sizes the service. The zero value gets production-lean defaults
// from fill().
type Config struct {
	// NProcs is the SPMD rank count of each pooled team (default 4).
	NProcs int
	// ProcsPerNode groups ranks into shared-memory domains (default:
	// NProcs, one machine-wide domain).
	ProcsPerNode int
	// Teams is the number of persistent engine teams, i.e. the maximum
	// concurrently executing SRUMMA requests (default 1).
	Teams int
	// QueueCap bounds ADMITTED requests — executing plus waiting. Requests
	// beyond it are refused with 429 (default 4 * Teams).
	QueueCap int
	// SmallMNK routes products with M*N*K at or below it to the direct
	// local kernel instead of the distributed engine (default 2^21,
	// i.e. 128^3).
	SmallMNK int
	// MaxDim rejects any matrix dimension beyond it (default 4096).
	MaxDim int
	// DefaultTimeout bounds requests that do not set timeout_ms (default
	// 30s); MaxTimeout caps what a request may ask for (default 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// KernelThreads is the per-rank local-dgemm worker count used when a
	// request does not choose one; 0 keeps the engine default.
	KernelThreads int

	// TraceEvents, when positive, turns on always-on span tracing: every
	// engine rank, the request handlers and the scheduler record into a
	// per-lane ring buffer holding the most recent TraceEvents spans each,
	// exported as Chrome trace JSON from GET /debug/trace. Zero (the
	// default) disables tracing; the disabled path records nothing and
	// allocates nothing.
	TraceEvents int

	// SchedMode selects the dispatch path: "sched" (default) runs admitted
	// requests through the workload scheduler — batched small GEMMs,
	// priority/deadline dispatch, elastic team pool; "fifo" keeps the
	// plain first-come-first-served channel of the original serving layer.
	SchedMode string
	// MaxTeams is the elastic pool ceiling in sched mode: the pool grows
	// from Teams toward it under backlog and shrinks back when teams idle
	// (default: Teams, i.e. a fixed pool).
	MaxTeams int
	// BatchMax caps how many queued small GEMMs coalesce into one team job
	// (default 32).
	BatchMax int
	// StarveAfter bounds cross-class starvation: a request waiting this
	// long dispatches regardless of class weights (default 2s).
	StarveAfter time.Duration
	// TeamIdleAfter is how long a team above Teams may idle before the
	// elastic pool retires it (default 30s).
	TeamIdleAfter time.Duration
	// InteractiveWeight and BatchWeight are the fair-share weights of the
	// workload classes (defaults 4 and 1).
	InteractiveWeight float64
	BatchWeight       float64

	// MaxTaskK caps the contraction length of one SRUMMA task on the
	// distributed route (core.Options.MaxTaskK). Finer tasks mean smaller
	// fetch buffers AND finer recovery units: the ledger resumes at task
	// granularity, so a retried job re-executes at most one MaxTaskK panel
	// per rank beyond what completed. 0 keeps the engine default (one task
	// per K block).
	MaxTaskK int

	// ABFT verifies every SRUMMA task's produced C block against
	// Huang-Abraham operand sums (core.Options.ABFT), restoring and
	// recomputing corrupted blocks. ABFTTol is the relative tolerance
	// (0 = core default 1e-6).
	ABFT    bool
	ABFTTol float64
	// NoResume disables ledger-based resume: retried jobs restart from the
	// request inputs instead of salvaging completed blocks.
	NoResume bool
	// RetryBudget is how many times a recoverably-failed SRUMMA job (rank
	// panic, leaked-rank watchdog, exhausted ABFT recompute) is retried
	// with exponential backoff before its error surfaces (default 2;
	// negative disables retries).
	RetryBudget int
	// RetryBackoff is the base pre-retry backoff, doubling per attempt
	// (default 10ms).
	RetryBackoff time.Duration
	// BreakerThreshold enables the per-route circuit breaker when > 0: a
	// route whose failure fraction over its last BreakerWindow outcomes
	// (default 20) reaches the threshold opens, shedding requests with
	// 503 + Retry-After for BreakerCooldown (default 2s), then admitting
	// a single probe.
	BreakerThreshold float64
	BreakerWindow    int
	BreakerCooldown  time.Duration
	// BrownoutAt sheds optional work before refusing traffic: when queue
	// depth reaches this fraction of QueueCap, newly admitted requests run
	// without ABFT verification or batching (default 0.9; negative
	// disables brownout).
	BrownoutAt float64
	// TraceSample head-samples request tracing when > 1: one in every
	// TraceSample requests records handler and engine spans (requires
	// TraceEvents > 0). 0 or 1 keeps always-on tracing.
	TraceSample int

	// Hier routes distributed SRUMMA requests through the hierarchical
	// two-level path (internal/hier): ranks are carved into groups —
	// shared-memory domains by default, HierGroup consecutive ranks when
	// set — and each remote operand region is staged ONCE per group before
	// the flat executor runs, cutting inter-node volume while staying
	// bit-identical to the flat path. Applies to the in-process teams and
	// to the cluster route (where groups map onto worker nodes). The
	// ledger/salvage recovery machinery is unchanged: the hierarchical
	// path runs the same grid and task lists, so resumed retries work
	// identically.
	Hier      bool
	HierGroup int

	// Cluster shards the SRUMMA route across OS-process worker nodes: an
	// internal/cluster pool of ClusterNodes nodes (each NProcs ranks, PPN
	// ProcsPerNode) replaces the in-process distributed tier. Requires
	// SchedMode "sched". The small route, batching, cache, breaker and
	// retry machinery are unchanged; worker death folds into the retry
	// budget via the pool's typed errors and the cross-process salvage.
	Cluster bool
	// ClusterNodes is the pool size (default 2).
	ClusterNodes int
	// ClusterTransport selects each node's inter-domain RMA transport:
	// "unix" (default) or "tcp".
	ClusterTransport string
	// ClusterListen, when set, binds each node coordinator's TCP control
	// listener at a fixed "host:port" (node i gets port+i) instead of an
	// ephemeral one — the addresses external workers -join, reported per
	// node in /metrics. Implies ClusterTransport "tcp".
	ClusterListen string
	// ClusterHeartbeat is the idle-node health-check period (default 2s;
	// negative disables the background checker).
	ClusterHeartbeat time.Duration

	// CacheEntries enables the content-addressed result cache when > 0:
	// operands are SHA-256 digested at decode, identical requests are
	// served bit-identical results from a bounded LRU without touching
	// the scheduler or engine, and repeated operands are interned so
	// concurrent requests share one canonical buffer. 0 (the default)
	// disables content addressing entirely.
	CacheEntries int
	// CacheBytes bounds the cache's resident result bytes (default 256
	// MiB when the cache is enabled).
	CacheBytes int64
	// CacheTTL expires entries this long after insertion; 0 keeps entries
	// until LRU eviction.
	CacheTTL time.Duration
	// JSONOnly disables the binary wire: binary-typed requests get 415
	// and responses are always JSON (goldens, debugging).
	JSONOnly bool
	// FaultPlan, when set, layers the deterministic fault injector over
	// every engine job, drawing op indices from process-wide counters
	// (faults.Shared) so schedules advance across jobs and an injected
	// crash fires exactly once. Chaos testing only; nil in production.
	FaultPlan *faults.Plan
}

func (c Config) fill() Config {
	if c.NProcs <= 0 {
		c.NProcs = 4
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = c.NProcs
	}
	if c.Teams <= 0 {
		c.Teams = 1
	}
	if c.SchedMode == "" {
		c.SchedMode = "sched"
	}
	if c.MaxTeams < c.Teams {
		c.MaxTeams = c.Teams
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxTeams
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.StarveAfter == 0 {
		c.StarveAfter = 2 * time.Second
	}
	if c.TeamIdleAfter <= 0 {
		c.TeamIdleAfter = 30 * time.Second
	}
	if c.InteractiveWeight <= 0 {
		c.InteractiveWeight = 4
	}
	if c.BatchWeight <= 0 {
		c.BatchWeight = 1
	}
	if c.SmallMNK <= 0 {
		c.SmallMNK = 128 * 128 * 128
	}
	if c.MaxDim <= 0 {
		c.MaxDim = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.BreakerWindow <= 0 {
		c.BreakerWindow = 20
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.BrownoutAt == 0 {
		c.BrownoutAt = 0.9
	}
	if c.BrownoutAt < 0 {
		c.BrownoutAt = 0
	}
	if c.CacheEntries > 0 && c.CacheBytes <= 0 {
		c.CacheBytes = 256 << 20
	}
	if c.Cluster {
		if c.ClusterNodes <= 0 {
			c.ClusterNodes = 2
		}
		if c.ClusterListen != "" && c.ClusterTransport == "" {
			c.ClusterTransport = "tcp"
		}
		if c.ClusterHeartbeat == 0 {
			c.ClusterHeartbeat = 2 * time.Second
		}
		if c.ClusterHeartbeat < 0 {
			c.ClusterHeartbeat = 0
		}
	}
	return c
}

// Server is the GEMM service. Create with New, expose via Handler or
// ListenAndServe, stop with Shutdown.
type Server struct {
	cfg  Config
	topo rt.Topology
	g    *grid.Grid

	// FIFO mode ("fifo"): channel-based admission and a fixed team pool.
	slots chan struct{}    // admission tokens, cap = QueueCap
	teams chan *armci.Team // engine pool, cap = Teams

	// Scheduler mode ("sched", default): the workload scheduler owns
	// admission, ordering, batching and the elastic team pool.
	sched *sched.Scheduler

	// cpool is the cluster node pool (nil unless Config.Cluster): the
	// SRUMMA route's jobs shard onto it instead of the in-process teams.
	cpool *cluster.Pool

	met      *metrics
	draining atomic.Bool
	jobs     sync.WaitGroup // in-flight multiply handlers

	// pool recycles the 64-byte-aligned operand buffers the binary wire
	// decodes into; blocks interns operands by content digest and cache is
	// the bounded LRU result store (both nil unless CacheEntries > 0).
	pool   *bufPool
	cache  *resultCache
	blocks *blockTable

	// chaos is the process-wide fault injector state (nil unless
	// Config.FaultPlan is set); breakers is the per-route circuit breaker
	// map (nil unless Config.BreakerThreshold > 0).
	chaos    *faults.Shared
	breakers map[string]*breaker
	traceSeq atomic.Uint64 // head-sampling counter (TraceSample > 1)

	// rec is the span recorder behind /debug/trace (nil when
	// Config.TraceEvents is 0): lanes 0..NProcs-1 are engine ranks,
	// lane NProcs the request handlers, lane NProcs+1 the scheduler.
	rec       *obs.Recorder
	laneNames []string

	// testBatchHook holds a func(*sched.Task) tests install to block or
	// crash dispatches deterministically; nil in production.
	testBatchHook atomic.Value

	mux *http.ServeMux

	hsMu sync.Mutex
	hs   *http.Server
}

// New builds a server and spins up its persistent engine teams.
func New(cfg Config) (*Server, error) {
	cfg = cfg.fill()
	g, err := grid.Square(cfg.NProcs)
	if err != nil {
		return nil, err
	}
	topo := rt.Topology{NProcs: cfg.NProcs, ProcsPerNode: cfg.ProcsPerNode,
		DomainSpansMachine: cfg.ProcsPerNode >= cfg.NProcs, GroupSize: cfg.HierGroup}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Hier {
		// Fail fast on a group carving the staged-band handoff cannot
		// serve, instead of erroring every request.
		if err := hier.From(topo, g).Validate(); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:  cfg,
		topo: topo,
		g:    g,
		met:  newMetrics(cfg.QueueCap),
		pool: &bufPool{},
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CacheTTL, s.met.reg)
		s.blocks = newBlockTable(s.pool, s.met.reg)
	}
	if cfg.FaultPlan != nil {
		s.chaos = faults.NewShared(cfg.FaultPlan)
	}
	if cfg.BreakerThreshold > 0 {
		s.breakers = map[string]*breaker{
			routeSmall:  newBreaker(routeSmall, cfg.BreakerThreshold, cfg.BreakerWindow, cfg.BreakerCooldown, s.met.reg, time.Now),
			routeSRUMMA: newBreaker(routeSRUMMA, cfg.BreakerThreshold, cfg.BreakerWindow, cfg.BreakerCooldown, s.met.reg, time.Now),
		}
		if cfg.Cluster {
			s.breakers[routeCluster] = newBreaker(routeCluster, cfg.BreakerThreshold, cfg.BreakerWindow, cfg.BreakerCooldown, s.met.reg, time.Now)
		}
	}
	if cfg.TraceEvents > 0 {
		// One ring-buffered lane per engine rank plus one for the request
		// handlers and one for the scheduler; every team in the pool shares
		// the recorder, so /debug/trace is one timeline for the whole service.
		s.rec = obs.NewRecorder(cfg.NProcs+2, cfg.TraceEvents)
		s.laneNames = make([]string, cfg.NProcs+2)
		for i := 0; i < cfg.NProcs; i++ {
			s.laneNames[i] = "rank " + strconv.Itoa(i)
		}
		s.laneNames[cfg.NProcs] = "server"
		s.laneNames[cfg.NProcs+1] = "sched"
	}
	if cfg.Cluster {
		if cfg.SchedMode != "sched" {
			return nil, fmt.Errorf("server: cluster mode requires SchedMode \"sched\", got %q", cfg.SchedMode)
		}
		if !ipcrt.Available() {
			return nil, fmt.Errorf("server: cluster mode needs the multi-process engine, unavailable on this platform")
		}
		if cfg.ClusterListen != "" && cfg.ClusterTransport != "tcp" {
			return nil, fmt.Errorf("server: ClusterListen needs the tcp cluster transport, got %q", cfg.ClusterTransport)
		}
		pool, err := cluster.New(cluster.Config{
			Nodes:          cfg.ClusterNodes,
			NP:             cfg.NProcs,
			PPN:            cfg.ProcsPerNode,
			Transport:      cfg.ClusterTransport,
			ListenAddr:     cfg.ClusterListen,
			JobTimeout:     cfg.MaxTimeout,
			HeartbeatEvery: cfg.ClusterHeartbeat,
			Metrics:        s.met.reg,
			Hier:           cfg.Hier,
			HierGroup:      cfg.HierGroup,
		})
		if err != nil {
			return nil, err
		}
		s.cpool = pool
	}
	switch cfg.SchedMode {
	case "sched":
		sc, err := s.newScheduler()
		if err != nil {
			if s.cpool != nil {
				s.cpool.Close()
			}
			return nil, err
		}
		s.sched = sc
		s.met.schedSnap = sc.Snapshot
	case "fifo":
		s.slots = make(chan struct{}, cfg.QueueCap)
		s.teams = make(chan *armci.Team, cfg.Teams)
		for i := 0; i < cfg.Teams; i++ {
			tm, err := armci.NewTeam(topo)
			if err != nil {
				s.closeTeams()
				return nil, err
			}
			tm.SetRecorder(s.rec)
			s.teams <- tm
		}
	default:
		return nil, fmt.Errorf("server: unknown SchedMode %q (want sched or fifo)", cfg.SchedMode)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/multiply", s.handleMultiply)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/info", s.handleInfo)
	return s, nil
}

// Handler returns the service's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns a point-in-time metrics snapshot.
func (s *Server) Metrics() MetricsSnapshot {
	snap := s.met.snapshot()
	if s.breakers != nil {
		snap.Breakers = make(map[string]BreakerStats, len(s.breakers))
		for route, b := range s.breakers {
			snap.Breakers[route] = b.snapshot()
		}
	}
	snap.Wire = s.met.wireSnapshot()
	if s.cpool != nil {
		snap.Cluster = s.cpool.Snapshot()
	}
	if s.cache != nil {
		cs := s.cache.stats()
		cs.BlockDedup = s.blocks.dedupCount()
		snap.Cache = &cs
	}
	if s.cfg.Hier {
		ht := hier.From(s.topo, s.g)
		snap.HierGroups = ht.NumGroups()
		gr, gc := ht.GroupShape(0)
		snap.HierGroupShape = fmt.Sprintf("%dx%d", gr, gc)
	}
	return snap
}

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{Handler: s.mux}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	err := hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the service: new work is refused (healthz goes 503,
// multiplies get 503), in-flight requests run to completion (or their
// deadlines), the listener closes, and the engine teams are closed with
// leaked-rank detection — a team that fails to drain surfaces as a
// *WatchdogError.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	var herr error
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs != nil {
		herr = hs.Shutdown(ctx) // waits for in-flight HTTP handlers
	}
	done := make(chan struct{})
	go func() {
		s.jobs.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
	if s.sched != nil {
		// Scheduler mode: drain the run queue and close every pooled team
		// (leaked-rank reports surface through the scheduler's Close), then
		// shut the cluster node pool down — after the scheduler, so no
		// dispatch can race a closing pool.
		cerr := s.sched.Close(ctx)
		if s.cpool != nil {
			s.cpool.Close()
		}
		if cerr != nil {
			return cerr
		}
		return herr
	}
	if cerr := s.closeTeams(); cerr != nil {
		return cerr
	}
	return herr
}

func (s *Server) closeTeams() error {
	if s.teams == nil {
		return nil
	}
	var first error
	for {
		select {
		case tm := <-s.teams:
			if err := tm.Close(); err != nil && first == nil {
				first = err
			}
		default:
			return first
		}
	}
}

func boolToInt64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		// Prometheus text exposition over the same registry snapshot the
		// JSON view is derived from: server.*, sched.*, recover.*, breaker.*.
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		obs.WritePrometheus(w, s.met.reg.Snapshot())
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleTrace dumps the span recorder as Chrome trace-event JSON (load the
// body into chrome://tracing or Perfetto). The rings hold the most recent
// Config.TraceEvents spans per lane, so the dump is a trailing window of
// service activity, not an unbounded history.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.rec == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "tracing disabled: start the server with TraceEvents > 0"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteChromeTraceNamed(w, s.rec.Events(), s.laneNames, "srumma serve")
}

// InfoResponse is the body of GET /v1/info: the deployment parameters an
// operator or load balancer needs.
type InfoResponse struct {
	NProcs        int    `json:"nprocs"`
	ProcsPerNode  int    `json:"procs_per_node"`
	Teams         int    `json:"teams"`
	QueueCap      int    `json:"queue_cap"`
	SmallMNK      int    `json:"small_mnk"`
	MaxDim        int    `json:"max_dim"`
	Kernel        string `json:"kernel"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	KernelThreads int    `json:"default_kernel_threads"`
	// Scheduler deployment parameters (sched mode).
	SchedMode string `json:"sched_mode"`
	MaxTeams  int    `json:"max_teams"`
	BatchMax  int    `json:"batch_max"`
	// Wire and cache deployment parameters: whether the dense binary wire
	// is negotiable, and the content-addressed result cache bounds (zero
	// entries = content addressing off).
	BinaryWire      bool    `json:"binary_wire"`
	CacheEntries    int     `json:"cache_entries"`
	CacheBytes      int64   `json:"cache_bytes,omitempty"`
	CacheTTLSeconds float64 `json:"cache_ttl_s,omitempty"`
	// Cluster deployment parameters: node count and inter-domain RMA
	// transport of the sharded distributed tier (zero nodes = in-process).
	ClusterNodes     int    `json:"cluster_nodes,omitempty"`
	ClusterTransport string `json:"cluster_transport,omitempty"`
	// Hierarchical routing mode: the two-level topology the planner
	// decided (group count and intra-group shape on the composite grid).
	Hier           bool   `json:"hier,omitempty"`
	HierGroups     int    `json:"hier_groups,omitempty"`
	HierGroupShape string `json:"hier_group_shape,omitempty"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	kt := s.cfg.KernelThreads
	if kt <= 0 {
		kt = armci.DefaultKernelThreads(s.cfg.NProcs)
	}
	clusterNodes, clusterTransport := 0, ""
	if s.cpool != nil {
		clusterNodes = s.cpool.Nodes()
		clusterTransport = s.cfg.ClusterTransport
		if clusterTransport == "" {
			clusterTransport = "unix"
		}
	}
	var hierGroups int
	var hierShape string
	if s.cfg.Hier {
		ht := hier.From(s.topo, s.g)
		hierGroups = ht.NumGroups()
		gr, gc := ht.GroupShape(0)
		hierShape = fmt.Sprintf("%dx%d", gr, gc)
	}
	writeJSON(w, http.StatusOK, InfoResponse{
		NProcs:        s.cfg.NProcs,
		ProcsPerNode:  s.cfg.ProcsPerNode,
		Teams:         s.cfg.Teams,
		QueueCap:      s.cfg.QueueCap,
		SmallMNK:      s.cfg.SmallMNK,
		MaxDim:        s.cfg.MaxDim,
		Kernel:        mat.KernelName(),
		GOMAXPROCS:    goruntime.GOMAXPROCS(0),
		KernelThreads: kt,
		SchedMode:     s.cfg.SchedMode,
		MaxTeams:      s.cfg.MaxTeams,
		BatchMax:      s.cfg.BatchMax,

		BinaryWire:      !s.cfg.JSONOnly,
		CacheEntries:    s.cfg.CacheEntries,
		CacheBytes:      s.cfg.CacheBytes,
		CacheTTLSeconds: s.cfg.CacheTTL.Seconds(),

		ClusterNodes:     clusterNodes,
		ClusterTransport: clusterTransport,

		Hier:           s.cfg.Hier,
		HierGroups:     hierGroups,
		HierGroupShape: hierShape,
	})
}

// retryAfter estimates how long an overflowing client should back off,
// priced from the observed service rate: the backlog ahead of the client
// divided by recent completions per second. When the rate window is empty
// (cold start, long stall) it falls back to one mean service time. The
// hint is clamped to [1s, 60s].
func (s *Server) retryAfter() int {
	depth := 0
	if s.sched != nil {
		depth = s.sched.Queued()
	} else {
		snap := s.met.snapshot()
		depth = snap.QueueDepth
	}
	secs := 0
	if rps := s.met.recentRPS(); rps > 0 {
		secs = int(math.Ceil(float64(depth+1) / rps))
	} else {
		snap := s.met.snapshot()
		secs = int(snap.LatencyMeanMs/1e3) + 1
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// reqEnv bundles one decoded request's routing state through the handler
// layers: the wire it arrived (and will answer) on, the validated shape,
// class and deadline, and — when the cache is on — its content-addressed
// identity.
type reqEnv struct {
	wr      *wireRequest
	cs      core.Case
	d       core.Dims
	cls     sched.Class
	timeout time.Duration
	route   string
	traced  bool

	respWire string // wireJSON or wireBinary, from Accept (default: mirror the request)
	gzipOut  bool   // gzip the (binary) response body

	key     cacheKey
	haveKey bool
}

func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	t0 := time.Now()
	traced := s.sampleTrace()
	if traced {
		defer func() { s.rec.RecordWall(s.cfg.NProcs, obs.KindRequest, t0, time.Now()) }()
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server draining"})
		return
	}
	wr, werr := s.decodeRequest(w, r)
	if werr != nil {
		writeJSON(w, werr.status, ErrorResponse{Error: werr.msg})
		return
	}
	// Pooled and interned operand storage is recycled when the handler
	// leaves — after the response (which may encode straight out of it)
	// is written. release honors wr.noPool for runs that may have leaked
	// engine readers.
	defer wr.release(s)
	req := &wr.req

	cs, err := parseCase(req.Case)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{ID: req.ID, Error: err.Error()})
		return
	}
	d, err := req.dims(cs, s.cfg.MaxDim)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{ID: req.ID, Error: err.Error()})
		return
	}
	cls, err := sched.ParseClass(req.Class)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{ID: req.ID, Error: err.Error()})
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	env := &reqEnv{wr: wr, cs: cs, d: d, cls: cls, timeout: timeout, traced: traced}
	env.respWire, env.gzipOut = s.negotiateRespWire(r, wr)

	// Content addressing: digest the operands, intern them (repeated
	// operands collapse onto one canonical buffer), and probe the result
	// cache. A hit is served straight from memory — bit-identical to a
	// fresh compute — without touching admission, scheduler, or engine.
	if s.cache != nil {
		env.key = s.computeDigests(wr, cs, d)
		env.haveKey = true
		if out, dig, ok := s.cache.get(env.key); ok {
			s.serveCacheHit(w, env, t0, out, dig)
			return
		}
	}

	route := routeSRUMMA
	if d.M*d.N*d.K <= s.cfg.SmallMNK || s.cfg.NProcs == 1 {
		route = routeSmall
	}
	if route == routeSRUMMA && s.cpool != nil {
		// Cluster mode: the distributed tier runs on the node pool.
		route = routeCluster
	}
	env.route = route
	// Circuit breaker: an open route fails fast with a cooldown hint
	// instead of burning a team (and a retry budget) on a known-bad tier.
	if br := s.breakers[route]; br != nil {
		if ok, wait := br.allow(); !ok {
			ra := int(math.Ceil(wait.Seconds()))
			if ra < 1 {
				ra = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{ID: req.ID, Error: "circuit open: route " + route + " is shedding load", RetryAfterSeconds: ra})
			return
		}
	}

	if s.sched != nil {
		s.handleSchedMultiply(w, r, env)
		return
	}

	// FIFO admission: a bounded number of requests may be in the building.
	// Overflow is backpressure, not buffering.
	select {
	case s.slots <- struct{}{}:
	default:
		ra := s.retryAfter()
		s.met.reject()
		w.Header().Set("Retry-After", strconv.Itoa(ra))
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{ID: req.ID, Error: "queue full", RetryAfterSeconds: ra})
		return
	}
	s.jobs.Add(1)
	s.met.admit()
	admitted := time.Now()
	defer func() {
		<-s.slots
		s.jobs.Done()
	}()

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp, out, status, eresp := s.execute(ctx, env, admitted)
	s.recordBreaker(route, status)
	if eresp != nil {
		s.writeErr(w, env, status, *eresp)
		return
	}
	s.storeResult(env, out, resp)
	s.writeOK(w, env, resp)
}

// negotiateRespWire picks the response encoding: Accept wins when it names
// a supported type, otherwise the response mirrors the request's wire.
// gzipOut additionally compresses a binary response when the client both
// sent gzip and accepts it — compression stays a client choice, never a
// surprise CPU cost.
func (s *Server) negotiateRespWire(r *http.Request, wr *wireRequest) (string, bool) {
	wire := wr.wire
	accept := r.Header.Get("Accept")
	if strings.Contains(accept, ContentTypeBinaryResult) {
		wire = wireBinary
	} else if strings.Contains(accept, ContentTypeJSON) {
		wire = wireJSON
	}
	if s.cfg.JSONOnly {
		wire = wireJSON
	}
	gzipOut := wire == wireBinary && wr.gzipped &&
		strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
	return wire, gzipOut
}

// countingWriter counts response bytes for the per-wire traffic metrics.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// writeOK writes a success response on the negotiated wire and settles the
// request's traffic metrics. On the binary wire the scalar response fields
// travel as X-Srumma-* headers and the body is the bare result matrix.
func (s *Server) writeOK(w http.ResponseWriter, env *reqEnv, resp *MultiplyResponse) {
	cw := &countingWriter{w: w}
	if env.respWire == wireBinary {
		h := w.Header()
		h.Set("Content-Type", ContentTypeBinaryResult)
		setIf := func(k, v string) {
			if v != "" {
				h.Set(k, v)
			}
		}
		setIf("X-Srumma-Id", resp.ID)
		h.Set("X-Srumma-Route", resp.Route)
		h.Set("X-Srumma-Queue-Ms", strconv.FormatFloat(resp.QueueMillis, 'g', -1, 64))
		h.Set("X-Srumma-Elapsed-Ms", strconv.FormatFloat(resp.ElapsedMillis, 'g', -1, 64))
		h.Set("X-Srumma-Gflops", strconv.FormatFloat(resp.GFlops, 'g', -1, 64))
		setIf("X-Srumma-Class", resp.Class)
		if resp.Batch > 0 {
			h.Set("X-Srumma-Batch", strconv.Itoa(resp.Batch))
		}
		if resp.Cached {
			h.Set("X-Srumma-Cached", "1")
		}
		setIf("X-Srumma-Digest-A", resp.DigestA)
		setIf("X-Srumma-Digest-B", resp.DigestB)
		setIf("X-Srumma-Digest-C-In", resp.DigestCIn)
		setIf("X-Srumma-Digest", resp.Digest)
		if env.gzipOut {
			h.Set("Content-Encoding", "gzip")
		}
		w.WriteHeader(http.StatusOK)
		if env.gzipOut {
			gz := gzip.NewWriter(cw)
			encodeBinaryResponse(gz, resp.Rows, resp.Cols, resp.C)
			gz.Close()
		} else {
			encodeBinaryResponse(cw, resp.Rows, resp.Cols, resp.C)
		}
	} else {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(cw).Encode(resp)
	}
	s.met.noteWire(env.wr.wire, env.wr.bytesIn, cw.n)
}

// writeErr writes an error response (always JSON, regardless of the
// request wire) and settles the request's traffic metrics.
func (s *Server) writeErr(w http.ResponseWriter, env *reqEnv, status int, eresp ErrorResponse) {
	cw := &countingWriter{w: w}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(cw).Encode(eresp)
	s.met.noteWire(env.wr.wire, env.wr.bytesIn, cw.n)
}

// serveCacheHit answers a request from the result cache: zero compute,
// zero queueing, the full digest chain attached. Admission metrics still
// see the request (route "cache") so hit traffic is visible in the same
// latency/throughput views as computed traffic.
func (s *Server) serveCacheHit(w http.ResponseWriter, env *reqEnv, t0 time.Time, out mat.Matrix, dig digest) {
	s.met.admit()
	resp := &MultiplyResponse{
		ID:      env.wr.req.ID,
		Rows:    env.d.M,
		Cols:    env.d.N,
		C:       out.Data,
		Route:   routeCache,
		Class:   env.cls.String(),
		Cached:  true,
		DigestA: hexDigest(env.wr.digA),
		DigestB: hexDigest(env.wr.digB),
		Digest:  hexDigest(dig),
	}
	if env.key.cIn != (digest{}) {
		resp.DigestCIn = hexDigest(env.wr.digC)
	}
	s.met.finish(routeCache, env.cls.String(), "ok", time.Since(t0), 0, false)
	s.writeOK(w, env, resp)
}

// storeResult content-addresses a fresh result, stamps the response's
// digest chain, and retains the result in the cache. out is always a
// freshly allocated matrix (mat.New or engine Gather output) — never
// pooled request storage — so the cache can own its backing array.
func (s *Server) storeResult(env *reqEnv, out *mat.Matrix, resp *MultiplyResponse) {
	if !env.haveKey || out == nil {
		return
	}
	dig := digestMatrix(resp.Rows, resp.Cols, out.Data)
	resp.DigestA = hexDigest(env.wr.digA)
	resp.DigestB = hexDigest(env.wr.digB)
	if env.key.cIn != (digest{}) {
		resp.DigestCIn = hexDigest(env.wr.digC)
	}
	resp.Digest = hexDigest(dig)
	s.cache.put(env.key, *out, dig)
}

// sampleTrace decides whether this request records spans: always when
// tracing is on without sampling, one in every TraceSample otherwise.
func (s *Server) sampleTrace() bool {
	if s.rec == nil {
		return false
	}
	if s.cfg.TraceSample <= 1 {
		return true
	}
	return s.traceSeq.Add(1)%uint64(s.cfg.TraceSample) == 1
}

// recordBreaker settles one allowed request with the route's breaker:
// 200 is a success, 500 a failure; cancellations and shedding are neither.
func (s *Server) recordBreaker(route string, status int) {
	br := s.breakers[route]
	if br == nil {
		return
	}
	switch status {
	case http.StatusOK:
		br.record(true)
	case http.StatusInternalServerError:
		br.record(false)
	}
}

// handleSchedMultiply runs one validated request through the workload
// scheduler: build a task, submit (backpressure on a full run queue), wait
// for the executor — or the deadline — and translate the outcome. A SRUMMA
// job that fails recoverably (rank panic, exhausted ABFT recompute) is
// resubmitted with exponential backoff up to RetryBudget times, resuming
// from its recovery ledger.
func (s *Server) handleSchedMultiply(w http.ResponseWriter, r *http.Request, env *reqEnv) {
	req, cs, d := &env.wr.req, env.cs, env.d
	cls, timeout, route, traced := env.cls, env.timeout, env.route, env.traced
	admitted := time.Now()
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// The scheduling deadline (EDF key) defaults to the enforcement
	// deadline; deadline_ms lets a client ask for earlier placement
	// without shrinking its timeout.
	deadline := admitted.Add(timeout)
	if req.DeadlineMillis > 0 {
		deadline = admitted.Add(time.Duration(req.DeadlineMillis) * time.Millisecond)
	}
	flops := 2 * float64(d.M) * float64(d.N) * float64(d.K)

	// Brownout: at BrownoutAt of queue capacity, shed the optional work —
	// verification and batching — before the admission control starts
	// refusing traffic outright.
	brownout := false
	if s.cfg.BrownoutAt > 0 {
		brownout = float64(s.sched.Queued()) >= s.cfg.BrownoutAt*float64(s.cfg.QueueCap)
		if brownout {
			s.met.brownoutReqs.Inc()
		}
		s.met.brownoutG.Set(boolToInt64(brownout))
	}

	job := &schedJob{req: req, cs: cs, d: d, ctx: ctx, traced: traced}
	switch route {
	case routeSRUMMA:
		job.rec = s.newRecoverJob(s.cfg.ABFT && !brownout)
	case routeCluster:
		job.crec = s.newClusterRecover(s.cfg.ABFT && !brownout)
	}

	// Register the job BEFORE Submit: once submitted, the task can dispatch
	// (and observers can react) before this goroutine runs another line, so
	// the drain ledger must already include it.
	s.jobs.Add(1)
	defer s.jobs.Done()

	var err error
	var lastTask *sched.Task
	sawWatchdog := false
	inFlight := false
	for attempt := 0; ; attempt++ {
		task := &sched.Task{
			Class:     cls,
			Deadline:  deadline,
			Cost:      flops,
			Batchable: route == routeSmall && !brownout,
			LocKey:    locKey(cs, d),
			Cancel:    ctx.Done(),
			Payload:   job,
		}
		if serr := s.sched.Submit(task); serr != nil {
			if inFlight {
				// A retry that cannot even queue: surface the run error the
				// retry was trying to fix, not the admission refusal.
				break
			}
			if errors.Is(serr, sched.ErrClosed) {
				s.writeErr(w, env, http.StatusServiceUnavailable, ErrorResponse{ID: req.ID, Error: "server draining"})
				return
			}
			ra := s.retryAfter()
			s.met.reject()
			w.Header().Set("Retry-After", strconv.Itoa(ra))
			s.writeErr(w, env, http.StatusTooManyRequests, ErrorResponse{ID: req.ID, Error: "queue full", RetryAfterSeconds: ra})
			return
		}
		// From here the scheduler (and soon an engine) can read the operand
		// buffers; they may be recycled only after a provably-joined run.
		env.wr.noPool = true
		lastTask = task
		if !inFlight {
			s.met.admit()
			inFlight = true
		}

		select {
		case <-task.Done():
		case <-ctx.Done():
			// Deadline while queued or executing: the scheduler drops a queued
			// task when it surfaces; an executing one finishes into the void —
			// possibly still reading the operands, so wr.noPool stays set.
			s.met.finish(route, cls.String(), "cancelled", 0, 0, false)
			s.writeErr(w, env, http.StatusGatewayTimeout, ErrorResponse{ID: req.ID, Error: "deadline exceeded: " + ctx.Err().Error()})
			return
		}

		err = task.Err()
		var werr *armci.WatchdogError
		if errors.As(err, &werr) {
			sawWatchdog = true
		}
		if err == nil || (job.rec == nil && job.crec == nil) || attempt >= s.cfg.RetryBudget || !retryableRunError(err) {
			break
		}
		t0 := time.Now()
		if job.crec != nil {
			s.met.noteRetry(job.crec.resumedTasks())
		} else {
			s.met.noteRetry(job.rec.prepareRetry())
		}
		if s.rec != nil {
			s.rec.RecordWall(s.cfg.NProcs, obs.KindRecover, t0, time.Now())
		}
		if !sleepCtx(ctx, retryBackoff(s.cfg.RetryBackoff, attempt)) {
			s.met.finish(route, cls.String(), "cancelled", 0, 0, false)
			s.writeErr(w, env, http.StatusGatewayTimeout, ErrorResponse{ID: req.ID, Error: "deadline exceeded: " + ctx.Err().Error()})
			return
		}
	}
	// Every dispatch joined its ranks (no watchdog leak at the handler or
	// scheduler level): pooled operand buffers are safe to recycle.
	if !sawWatchdog && lastTask != nil && lastTask.Attempts() <= 1 {
		env.wr.noPool = false
	}

	switch {
	case err == nil:
		s.recordBreaker(route, http.StatusOK)
		total := time.Since(admitted)
		s.met.finish(route, cls.String(), "ok", total, flops, false)
		elapsed := job.finished.Sub(job.started)
		resp := MultiplyResponse{
			ID:            req.ID,
			Rows:          d.M,
			Cols:          d.N,
			C:             job.out.Data,
			Route:         route,
			QueueMillis:   job.started.Sub(admitted).Seconds() * 1e3,
			ElapsedMillis: elapsed.Seconds() * 1e3,
			Class:         cls.String(),
			Batch:         job.batch,
		}
		if secs := elapsed.Seconds(); secs > 0 {
			resp.GFlops = flops / secs / 1e9
		}
		s.storeResult(env, job.out, &resp)
		s.writeOK(w, env, &resp)
	case errors.Is(err, sched.ErrCancelled), errors.Is(err, core.ErrCancelled),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.met.finish(route, cls.String(), "cancelled", 0, 0, false)
		s.writeErr(w, env, http.StatusGatewayTimeout, ErrorResponse{ID: req.ID, Error: "cancelled: " + err.Error()})
	case errors.Is(err, sched.ErrClosed):
		s.met.finish(route, cls.String(), "cancelled", 0, 0, false)
		s.writeErr(w, env, http.StatusServiceUnavailable, ErrorResponse{ID: req.ID, Error: "server draining"})
	default:
		s.recordBreaker(route, http.StatusInternalServerError)
		s.met.finish(route, cls.String(), "error", 0, 0, false)
		s.writeErr(w, env, http.StatusInternalServerError, ErrorResponse{ID: req.ID, Error: err.Error()})
	}
}

// execute routes and runs one admitted request, settling metrics exactly
// once. It returns either a success response (with the freshly allocated
// result matrix, for the cache) or an error response with its HTTP status.
func (s *Server) execute(ctx context.Context, env *reqEnv, admitted time.Time) (*MultiplyResponse, *mat.Matrix, int, *ErrorResponse) {
	req, cs, d, route, traced := &env.wr.req, env.cs, env.d, env.route, env.traced
	class := env.cls.String()
	flops := 2 * float64(d.M) * float64(d.N) * float64(d.K)

	var (
		out      *mat.Matrix
		queueed  time.Duration
		execTime time.Duration
		err      error
	)
	switch route {
	case routeSmall:
		s.met.execStart()
		queueed = time.Since(admitted)
		t0 := time.Now()
		out, err = s.runSmall(ctx, req, cs, d)
		execTime = time.Since(t0)
	default:
		var tm *armci.Team
		select {
		case tm = <-s.teams:
		case <-ctx.Done():
			s.met.finish(route, class, "cancelled", 0, 0, false)
			return nil, nil, http.StatusGatewayTimeout, &ErrorResponse{ID: req.ID, Error: "deadline exceeded while queued"}
		}
		s.met.execStart()
		queueed = time.Since(admitted)
		t0 := time.Now()
		// The engine reads the operand buffers from here; recycle only
		// after a run whose ranks provably joined (no watchdog leak).
		env.wr.noPool = true
		rj := s.newRecoverJob(s.cfg.ABFT)
		for attempt := 0; ; attempt++ {
			out, err = s.runSRUMMA(ctx, tm, req, cs, d, rj, traced)
			if err == nil || attempt >= s.cfg.RetryBudget || !retryableRunError(err) {
				break
			}
			var werr *armci.WatchdogError
			if errors.As(err, &werr) {
				// FIFO mode retries on the SAME team; a leaked-rank team is
				// suspect, so surface the error and let recycleTeam replace it.
				break
			}
			t0r := time.Now()
			s.met.noteRetry(rj.prepareRetry())
			if s.rec != nil {
				s.rec.RecordWall(s.cfg.NProcs, obs.KindRecover, t0r, time.Now())
			}
			if !sleepCtx(ctx, retryBackoff(s.cfg.RetryBackoff, attempt)) {
				break
			}
		}
		execTime = time.Since(t0)
		var werr *armci.WatchdogError
		if !errors.As(err, &werr) {
			env.wr.noPool = false
		}
		s.recycleTeam(tm, err)
	}

	switch {
	case err == nil:
		total := time.Since(admitted)
		s.met.finish(route, class, "ok", total, flops, true)
		resp := &MultiplyResponse{
			ID:            req.ID,
			Rows:          d.M,
			Cols:          d.N,
			C:             out.Data,
			Route:         route,
			QueueMillis:   queueed.Seconds() * 1e3,
			ElapsedMillis: execTime.Seconds() * 1e3,
			Class:         class,
			Batch:         1,
		}
		if secs := execTime.Seconds(); secs > 0 {
			resp.GFlops = flops / secs / 1e9
		}
		return resp, out, http.StatusOK, nil
	case errors.Is(err, core.ErrCancelled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.met.finish(route, class, "cancelled", 0, 0, true)
		return nil, nil, http.StatusGatewayTimeout, &ErrorResponse{ID: req.ID, Error: "cancelled: " + err.Error()}
	default:
		s.met.finish(route, class, "error", 0, 0, true)
		return nil, nil, http.StatusInternalServerError, &ErrorResponse{ID: req.ID, Error: err.Error()}
	}
}

// recycleTeam returns a team to the pool, replacing it first when the run
// leaked ranks (a wedged team never accepts another job).
func (s *Server) recycleTeam(tm *armci.Team, runErr error) {
	var werr *armci.WatchdogError
	if errors.As(runErr, &werr) && len(werr.Leaked) > 0 {
		tm.Close() // returns the leak report again; already surfaced to the caller
		if fresh, err := armci.NewTeam(s.topo); err == nil {
			fresh.SetRecorder(s.rec)
			s.met.teamReplaced()
			s.teams <- fresh
			return
		}
		// Could not replace: shrink the pool rather than pool a corpse.
		s.met.teamReplaced()
		return
	}
	s.teams <- tm
}

// runSmall executes the request on the local packed parallel kernel — the
// fast tier for products too small to amortize distribution.
func (s *Server) runSmall(ctx context.Context, req *MultiplyRequest, cs core.Case, d core.Dims) (*mat.Matrix, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a := &mat.Matrix{Rows: req.ARows, Cols: req.ACols, Stride: req.ACols, Data: req.A}
	b := &mat.Matrix{Rows: req.BRows, Cols: req.BCols, Stride: req.BCols, Data: req.B}
	c := mat.New(d.M, d.N)
	if req.beta() != 0 {
		copy(c.Data, req.C)
	}
	threads := req.KernelThreads
	if threads <= 0 {
		threads = s.cfg.KernelThreads
	}
	if threads <= 0 {
		threads = goruntime.GOMAXPROCS(0)
	}
	if err := mat.GemmParallel(threads, cs.TransA(), cs.TransB(), req.alpha(), a, b, req.beta(), c); err != nil {
		return nil, err
	}
	return c, nil
}

// runSRUMMA executes the request on a persistent engine team: distribute,
// multiply under the request deadline, gather. rj (nil on the non-recovering
// paths) carries the request's recovery state across retry attempts: a rank
// that panics mid-job salvages its C segment on the unwind, and a retried
// attempt reloads the salvage and hands the completion ledger to the
// executor so only unfinished tasks re-execute. traced gates span recording
// under head-sampling.
func (s *Server) runSRUMMA(ctx context.Context, tm *armci.Team, req *MultiplyRequest, cs core.Case, d core.Dims, rj *recoverJob, traced bool) (*mat.Matrix, error) {
	a := &mat.Matrix{Rows: req.ARows, Cols: req.ACols, Stride: req.ACols, Data: req.A}
	b := &mat.Matrix{Rows: req.BRows, Cols: req.BCols, Stride: req.BCols, Data: req.B}
	var cIn *mat.Matrix
	if req.beta() != 0 {
		cIn = &mat.Matrix{Rows: d.M, Cols: d.N, Stride: d.N, Data: req.C}
	}
	cOpts := core.Options{
		Case:          cs,
		Flavor:        core.FlavorDirect,
		MaxTaskK:      s.cfg.MaxTaskK,
		KernelThreads: req.KernelThreads,
		Cancel:        ctx.Done(),
	}
	if cOpts.KernelThreads <= 0 {
		cOpts.KernelThreads = s.cfg.KernelThreads
	}
	if rj != nil {
		cOpts.Ledger = rj.ledger
		cOpts.ABFT = rj.abft
		cOpts.ABFTTol = s.cfg.ABFTTol
	}
	da, db, dc := core.Dists(s.g, d, cs)
	n := s.topo.NProcs
	errs := make([]error, n)
	co := driver.NewCollect(n)
	if s.cfg.TraceSample > 1 {
		// Head-sampling: attach the recorder only for sampled requests. Safe
		// because a team runs one job at a time.
		if traced {
			tm.SetRecorder(s.rec)
		} else {
			tm.SetRecorder(nil)
		}
	}
	stats, err := tm.Run(func(rawC rt.Ctx) {
		c := rawC
		if s.chaos != nil {
			// Chaos layering: the injector draws from process-wide op counters
			// (so fault schedules advance across jobs) and the resilience layer
			// sits on top because transport drops/corruption are invisible to
			// ABFT — a corrupted OPERAND yields a consistent-but-wrong
			// prediction, so it must be caught by transfer checksums, not sums.
			c = faults.Resilient(s.chaos.Wrap(rawC), faults.RecoveryConfig{})
		}
		rank := c.Rank()
		lr, lc := dc.LocalShape(rank)
		var gc rt.Global
		haveC := false
		if rj != nil && rj.ledger != nil {
			// Salvage hook: on panic (injected crash, real bug) copy this
			// rank's C segment out before the unwind destroys the run, then
			// re-panic so the team-level error handling still fires. Only the
			// panic path salvages — a rank returning an error (e.g. exhausted
			// ABFT recompute) holds a corrupted accumulation for an unmarked
			// task, and resuming over it would double-add.
			defer func() {
				if p := recover(); p != nil {
					if haveC {
						if data := c.ReadBuf(c.Local(gc), 0, lr*lc); data != nil {
							rj.save(rank, append([]float64(nil), data...))
						}
					}
					panic(p)
				}
			}()
		}
		// Restore the per-request kernel-thread configuration explicitly:
		// team ranks keep the previous request's setting warm, which is
		// only correct if every request states its own.
		if kt := rt.FindKernelTuner(c); kt != nil {
			kt.SetKernelThreads(cOpts.KernelThreads)
		}
		ga := driver.AllocBlock(c, da)
		gb := driver.AllocBlock(c, db)
		gc = driver.AllocBlock(c, dc)
		haveC = true
		driver.LoadBlock(c, da, ga, a)
		driver.LoadBlock(c, db, gb, b)
		if salv := rj.take(rank); salv != nil {
			// Resume: start from the salvaged segment of the failed attempt;
			// the ledger says which tasks it already contains.
			c.WriteBuf(c.Local(gc), 0, salv)
		} else if cIn != nil {
			driver.LoadBlock(c, dc, gc, cIn)
		}
		if s.cfg.Hier {
			// Hierarchical routing mode: same grid, same task lists, same
			// ledger/salvage semantics — only the data movement changes, so
			// the retry/resume policy above needs no adjustment.
			errs[rank] = hier.MultiplyEx(c, hier.From(s.topo, s.g), d,
				hier.Options{Options: cOpts}, req.alpha(), req.beta(), ga, gb, gc)
		} else {
			errs[rank] = core.MultiplyEx(c, s.g, d, cOpts, req.alpha(), req.beta(), ga, gb, gc)
		}
		co.Deposit(c, driver.StoreBlock(c, dc, gc))
	})
	if s.met != nil {
		var det, rec int64
		for _, st := range stats {
			if st != nil {
				det += st.ABFTDetected
				rec += st.ABFTRecomputed
			}
		}
		s.met.noteABFT(det, rec)
	}
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return grid.NewBlockDist(s.g, d.M, d.N).Gather(co.Blocks)
}

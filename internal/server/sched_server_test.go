package server

// Scheduler-mode serving tests: batching bit-identity, priority dispatch,
// deadline handling, overflow, elastic pooling, drain, and the chaos case
// where a team crash mid-batch requeues the batch's unfinished tasks.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"srumma/internal/mat"
	"srumma/internal/obs"
	"srumma/internal/sched"
)

// blockOn installs a batch hook that parks any dispatch whose request ID
// matches id until the returned release func is called. It pins the single
// scheduler worker so tests can build a backlog deterministically.
func blockOn(s *Server, id string) (release func(), entered <-chan struct{}) {
	rel := make(chan struct{})
	ent := make(chan struct{})
	var onceEnter sync.Once
	s.setBatchHook(func(tk *sched.Task) {
		job := tk.Payload.(*schedJob)
		if job.req.ID == id {
			onceEnter.Do(func() { close(ent) })
			<-rel
		}
	})
	var onceRel sync.Once
	return func() { onceRel.Do(func() { close(rel) }) }, ent
}

// postAsync issues the request from a goroutine, delivering the outcome on
// the returned channel.
func postAsync(t *testing.T, s *Server, req MultiplyRequest) <-chan struct {
	code int
	resp MultiplyResponse
} {
	t.Helper()
	ch := make(chan struct {
		code int
		resp MultiplyResponse
	}, 1)
	go func() {
		var resp MultiplyResponse
		code, _ := post(t, s, req, &resp)
		ch <- struct {
			code int
			resp MultiplyResponse
		}{code, resp}
	}()
	return ch
}

// waitQueued polls until the scheduler holds n queued tasks.
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.sched.Queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", n, s.sched.Queued())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerSchedBatchingBitIdentical pre-queues a pile of small GEMMs
// behind a pinned worker, releases it, and verifies they were served by
// coalesced dispatches with results BIT-IDENTICAL to the serial kernel.
func TestServerSchedBatchingBitIdentical(t *testing.T) {
	const n = 24
	s := newTestServer(t, Config{NProcs: 4, Teams: 1, QueueCap: n + 4, BatchMax: n})
	release, entered := blockOn(s, "blocker")

	blocker := randReq(8, 8, 8, 1)
	blocker.ID = "blocker"
	blockerCh := postAsync(t, s, blocker)
	<-entered

	reqs := make([]MultiplyRequest, n)
	chans := make([]<-chan struct {
		code int
		resp MultiplyResponse
	}, n)
	for i := range reqs {
		reqs[i] = randReq(16+i%5, 12+i%3, 16+i%7, uint64(1000+i))
		chans[i] = postAsync(t, s, reqs[i])
	}
	waitQueued(t, s, n)
	release()

	<-blockerCh
	sawCoalesced := false
	for i, ch := range chans {
		res := <-ch
		if res.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, res.code)
		}
		if res.resp.Route != routeSmall {
			t.Fatalf("request %d routed %q, want small", i, res.resp.Route)
		}
		if res.resp.Batch > 1 {
			sawCoalesced = true
		}
		want := wantGemm(t, reqs[i])
		got := &mat.Matrix{Rows: res.resp.Rows, Cols: res.resp.Cols, Stride: res.resp.Cols, Data: res.resp.C}
		if diff := mat.MaxAbsDiff(got, want); diff != 0 {
			t.Fatalf("request %d: batched result differs from serial by %g, want bit-identical", i, diff)
		}
	}
	if !sawCoalesced {
		t.Fatal("no request was served by a coalesced dispatch")
	}
	m := s.Metrics()
	if m.Sched == nil {
		t.Fatal("metrics missing sched section")
	}
	if m.Sched.BatchOccupancy <= 1 {
		t.Fatalf("batch occupancy %g, want > 1", m.Sched.BatchOccupancy)
	}
	if m.Sched.MaxBatch < 2 {
		t.Fatalf("max batch %d, want >= 2", m.Sched.MaxBatch)
	}
}

// TestServerSchedPriorityOrder: with equal virtual time, an interactive
// request dispatches ahead of an earlier-submitted batch request.
func TestServerSchedPriorityOrder(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, Teams: 1, QueueCap: 8, SmallMNK: 1})

	var mu sync.Mutex
	var order []string
	rel := make(chan struct{})
	entered := make(chan struct{})
	var onceEnter sync.Once
	s.setBatchHook(func(tk *sched.Task) {
		job := tk.Payload.(*schedJob)
		if job.req.ID == "blocker" {
			onceEnter.Do(func() { close(entered) })
			<-rel
			return
		}
		mu.Lock()
		order = append(order, job.req.ID)
		mu.Unlock()
	})

	blocker := randReq(24, 24, 24, 1)
	blocker.ID = "blocker"
	blocker.Class = "batch"
	blockerCh := postAsync(t, s, blocker)
	<-entered

	// Batch-class first, interactive second: dispatch order must invert.
	bReq := randReq(24, 24, 24, 2)
	bReq.ID = "batch-req"
	bReq.Class = "batch"
	bCh := postAsync(t, s, bReq)
	waitQueued(t, s, 1)
	iReq := randReq(24, 24, 24, 3)
	iReq.ID = "interactive-req"
	iReq.Class = "interactive"
	iCh := postAsync(t, s, iReq)
	waitQueued(t, s, 2)
	close(rel)

	for _, ch := range []<-chan struct {
		code int
		resp MultiplyResponse
	}{blockerCh, bCh, iCh} {
		if res := <-ch; res.code != http.StatusOK {
			t.Fatalf("request failed with %d", res.code)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "interactive-req" || order[1] != "batch-req" {
		t.Fatalf("dispatch order %v, want [interactive-req batch-req]", order)
	}
}

// TestServerSchedDeadlineWhileQueued: a queued request whose timeout fires
// before dispatch gets 504 and the server keeps serving.
func TestServerSchedDeadlineWhileQueued(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, Teams: 1, QueueCap: 8})
	release, entered := blockOn(s, "blocker")
	blocker := randReq(8, 8, 8, 1)
	blocker.ID = "blocker"
	blockerCh := postAsync(t, s, blocker)
	<-entered

	req := randReq(16, 16, 16, 2)
	req.TimeoutMillis = 20
	code, w := post(t, s, req, nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, w.Body.String())
	}
	if m := s.Metrics(); m.Cancelled != 1 {
		t.Fatalf("cancelled_total = %d, want 1", m.Cancelled)
	}
	release()
	if res := <-blockerCh; res.code != http.StatusOK {
		t.Fatalf("blocker status %d", res.code)
	}
	req.TimeoutMillis = 0
	var resp MultiplyResponse
	if code, _ := post(t, s, req, &resp); code != http.StatusOK {
		t.Fatalf("post-timeout status %d, want 200", code)
	}
	checkResult(t, resp, wantGemm(t, req), 1e-10)
}

// TestServerSchedOverflow429: a full run queue refuses with 429 and a
// Retry-After hint, and admitted requests still complete.
func TestServerSchedOverflow429(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4, Teams: 1, QueueCap: 2})
	release, entered := blockOn(s, "blocker")
	blocker := randReq(8, 8, 8, 1)
	blocker.ID = "blocker"
	blockerCh := postAsync(t, s, blocker)
	<-entered

	req := randReq(16, 16, 16, 2)
	queuedCh := postAsync(t, s, req)
	waitQueued(t, s, 1)

	// QueueCap 2 = 1 executing + 1 queued: the next request bounces.
	code, w := post(t, s, req, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d, want 429", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eresp ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &eresp); err != nil {
		t.Fatal(err)
	}
	if eresp.RetryAfterSeconds < 1 || eresp.RetryAfterSeconds > 60 {
		t.Fatalf("retry_after_s = %d, want in [1, 60]", eresp.RetryAfterSeconds)
	}

	release()
	if res := <-blockerCh; res.code != http.StatusOK {
		t.Fatalf("blocker status %d", res.code)
	}
	if res := <-queuedCh; res.code != http.StatusOK {
		t.Fatalf("queued request status %d", res.code)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected_429_total = %d, want 1", m.Rejected)
	}
}

// TestServerSchedChaosCrashRequeue: a rank panic mid-batch (injected via
// the batch hook, recovered by the team's rank watchdog) fails the
// dispatch; the batch's unfinished tasks are requeued and every request
// still completes correctly.
func TestServerSchedChaosCrashRequeue(t *testing.T) {
	const n = 8
	s := newTestServer(t, Config{NProcs: 4, Teams: 1, QueueCap: n + 4, BatchMax: n})

	rel := make(chan struct{})
	entered := make(chan struct{})
	var onceEnter sync.Once
	var crashed atomic.Bool
	s.setBatchHook(func(tk *sched.Task) {
		job := tk.Payload.(*schedJob)
		if job.req.ID == "blocker" {
			onceEnter.Do(func() { close(entered) })
			<-rel
			return
		}
		if crashed.CompareAndSwap(false, true) {
			panic("chaos: injected rank crash mid-batch")
		}
	})

	blocker := randReq(8, 8, 8, 1)
	blocker.ID = "blocker"
	blockerCh := postAsync(t, s, blocker)
	<-entered

	reqs := make([]MultiplyRequest, n)
	chans := make([]<-chan struct {
		code int
		resp MultiplyResponse
	}, n)
	for i := range reqs {
		reqs[i] = randReq(16, 16, 16, uint64(2000+i))
		chans[i] = postAsync(t, s, reqs[i])
	}
	waitQueued(t, s, n)
	close(rel)

	<-blockerCh
	for i, ch := range chans {
		res := <-ch
		if res.code != http.StatusOK {
			t.Fatalf("request %d: status %d after injected crash", i, res.code)
		}
		want := wantGemm(t, reqs[i])
		got := &mat.Matrix{Rows: res.resp.Rows, Cols: res.resp.Cols, Stride: res.resp.Cols, Data: res.resp.C}
		if diff := mat.MaxAbsDiff(got, want); diff != 0 {
			t.Fatalf("request %d: result differs by %g after requeue", i, diff)
		}
	}
	m := s.Metrics()
	if m.Sched == nil || m.Sched.Requeued == 0 {
		t.Fatalf("crash did not requeue any tasks: %+v", m.Sched)
	}
	if m.Completed != n+1 {
		t.Fatalf("completed_total = %d, want %d", m.Completed, n+1)
	}
}

// TestServerSchedElasticPool: the team pool grows under backlog up to
// MaxTeams and shrinks back to Teams when idle.
func TestServerSchedElasticPool(t *testing.T) {
	// BatchMax 1 keeps every dispatch a singleton, so the blocked workers
	// cannot swallow the whole backlog into one batch — the queue stays
	// deep and growth is observable.
	s := newTestServer(t, Config{
		NProcs: 2, Teams: 1, MaxTeams: 3, QueueCap: 64, BatchMax: 1,
		TeamIdleAfter: 20 * time.Millisecond,
	})
	rel := make(chan struct{})
	s.setBatchHook(func(tk *sched.Task) { <-rel })

	const n = 24
	chans := make([]<-chan struct {
		code int
		resp MultiplyResponse
	}, n)
	for i := range chans {
		chans[i] = postAsync(t, s, randReq(16, 16, 16, uint64(3000+i)))
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Sched.Workers < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never grew to MaxTeams (at %d)", s.Metrics().Sched.Workers)
		}
		time.Sleep(time.Millisecond)
	}
	if w := s.Metrics().Sched.Workers; w > 3 {
		t.Fatalf("pool exceeded MaxTeams: %d", w)
	}
	close(rel)
	for i, ch := range chans {
		if res := <-ch; res.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, res.code)
		}
	}
	// Idle: the pool shrinks back to the floor and no further.
	deadline = time.Now().Add(10 * time.Second)
	for s.Metrics().Sched.Workers != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("pool never shrank to Teams (at %d)", s.Metrics().Sched.Workers)
		}
		time.Sleep(time.Millisecond)
	}
	m := s.Metrics()
	if m.Sched.PoolGrown == 0 || m.Sched.PoolShrunk == 0 {
		t.Fatalf("elasticity counters not moving: %+v", m.Sched)
	}
}

// TestServerSchedShutdownDrains: graceful shutdown in scheduler mode — the
// admitted request completes, new work and healthz are refused, and the
// pooled teams close clean.
func TestServerSchedShutdownDrains(t *testing.T) {
	s, err := New(Config{NProcs: 4, Teams: 1, QueueCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	release, entered := blockOn(s, "blocker")
	blocker := randReq(16, 16, 16, 1)
	blocker.ID = "blocker"
	want := wantGemm(t, blocker)
	blockerCh := postAsync(t, s, blocker)
	<-entered

	shutErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutErr <- s.Shutdown(ctx)
	}()
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	if code, _ := post(t, s, blocker, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("multiply during drain: status %d, want 503", code)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", w.Code)
	}

	release()
	res := <-blockerCh
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request status %d, want 200", res.code)
	}
	checkResult(t, res.resp, want, 0)
	if err := <-shutErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServerSchedClassValidation: an unknown class is a 400, and classes
// are echoed in responses and broken out in metrics.
func TestServerSchedClassValidation(t *testing.T) {
	s := newTestServer(t, Config{NProcs: 4})
	req := randReq(8, 8, 8, 1)
	req.Class = "bulk"
	if code, _ := post(t, s, req, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown class: status %d, want 400", code)
	}
	req.Class = "batch"
	var resp MultiplyResponse
	if code, _ := post(t, s, req, &resp); code != http.StatusOK {
		t.Fatalf("batch class: status %d", code)
	}
	if resp.Class != "batch" {
		t.Fatalf("response class %q, want batch", resp.Class)
	}
	m := s.Metrics()
	if m.Classes["batch"].Count != 1 {
		t.Fatalf("batch class count = %d, want 1", m.Classes["batch"].Count)
	}
}

// TestRateWindow pins the recent-throughput estimator feeding Retry-After
// (the 8-second obs.RateWindow the serving layer uses).
func TestRateWindow(t *testing.T) {
	const windowSecs = 8
	var rw obs.RateWindow
	now := time.Unix(5000, 0)
	for i := 0; i < 40; i++ {
		rw.Record(now)
	}
	if got := rw.RPS(now); got != 40.0/windowSecs {
		t.Fatalf("rps = %g, want %g", got, 40.0/windowSecs)
	}
	// Completions age out of the window.
	later := now.Add((windowSecs + 1) * time.Second)
	if got := rw.RPS(later); got != 0 {
		t.Fatalf("rps after window = %g, want 0", got)
	}
	// Spread load: 1/sec for 8s is 1 rps.
	var rw2 obs.RateWindow
	for i := 0; i < windowSecs; i++ {
		rw2.Record(now.Add(time.Duration(i) * time.Second))
	}
	if got := rw2.RPS(now.Add((windowSecs - 1) * time.Second)); got != 1 {
		t.Fatalf("spread rps = %g, want 1", got)
	}
}

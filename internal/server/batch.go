package server

// Scheduler integration: the glue between internal/sched (which decides
// WHAT runs next) and the armci.Team engine pool (which runs it). A
// sched.Worker is a persistent team; a sched.Task carries one admitted
// multiply as a schedJob payload. Small batchable products are coalesced
// into one team job and executed as a dynamic task list — each rank pulls
// the next GEMM off a shared counter — so the team wake/barrier cost is
// paid once per batch instead of once per request. Results are bit
// identical to individual runs because mat.GemmParallel's stripe split is
// thread-count-invariant.
//
// With the content-addressed cache on, batched jobs that share an operand
// (the LocKey sort puts equal shapes — and therefore repeated operands —
// adjacent) reference ONE interned canonical buffer: the block table
// dedups at decode, so the shared matrix is resident once and each
// gemmLocal in the batch reads the same backing array instead of its own
// copy ("pack/ship it once"; server.cache.block_dedup counts the
// duplicates avoided).

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/hier"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/sched"
)

// schedJob is the payload of one scheduled multiply. The handler fills the
// request half, the executor fills the result half; the handler reads the
// result only after Task.Done() closes, which orders the accesses.
type schedJob struct {
	req *MultiplyRequest
	cs  core.Case
	d   core.Dims
	ctx context.Context // request context; Done() doubles as Task.Cancel
	// rec carries the SRUMMA route's recovery state (ledger + salvaged C
	// segments) across retry attempts; nil on the small route. crec is its
	// cluster-route twin (cross-process salvage); at most one is set.
	rec    *recoverJob
	crec   *clusterRecover
	traced bool // head-sampling verdict for this request's spans

	out      *mat.Matrix
	batch    int // dispatch size that served this job
	started  time.Time
	finished time.Time
}

// teamWorker adapts a persistent engine team to sched.Worker.
type teamWorker struct {
	tm *armci.Team
}

func (w *teamWorker) Close() error { return w.tm.Close() }

// locKey packs the problem shape and transpose case into the scheduler's
// locality key: batches sort by it, so equal shapes run consecutively
// against warm scratch. Dims are bounded by MaxDim (<= 4096), well inside
// the 20-bit fields.
func locKey(cs core.Case, d core.Dims) uint64 {
	return uint64(d.M)<<42 | uint64(d.N)<<22 | uint64(d.K)<<2 | uint64(cs)&3
}

// newScheduler builds the workload scheduler over a pool of persistent
// teams. In hierarchical mode each team's ranks are carved into SUMMA
// groups, so the elastic pool doubles as the group manager: its
// GroupsPerWorker tells the scheduler how many groups one team hosts.
func (s *Server) newScheduler() (*sched.Scheduler, error) {
	groupsPerWorker := 0
	if s.cfg.Hier {
		groupsPerWorker = hier.From(s.topo, s.g).NumGroups()
	}
	return sched.New(sched.Config{
		MinWorkers:  s.cfg.Teams,
		MaxWorkers:  s.cfg.MaxTeams,
		QueueCap:    s.cfg.QueueCap,
		BatchMax:    s.cfg.BatchMax,
		StarveAfter: s.cfg.StarveAfter,
		IdleAfter:   s.cfg.TeamIdleAfter,
		Weights: [sched.NumClasses]float64{
			sched.ClassInteractive: s.cfg.InteractiveWeight,
			sched.ClassBatch:       s.cfg.BatchWeight,
		},
		// One registry backs the whole service: the scheduler's "sched.*"
		// instruments live next to the serving layer's "server.*" ones, and
		// its queue-wait/batch spans land on the recorder's sched lane.
		Metrics:         s.met.reg,
		Trace:           s.rec,
		TraceLane:       s.cfg.NProcs + 1,
		GroupsPerWorker: groupsPerWorker,
		NewWorker: func() (sched.Worker, error) {
			tm, err := armci.NewTeam(s.topo)
			if err != nil {
				return nil, err
			}
			tm.SetRecorder(s.rec)
			return &teamWorker{tm: tm}, nil
		},
		Exec: s.schedExec,
	})
}

// schedExec runs one dispatch on a team: a singleton SRUMMA job, or a
// locality-sorted batch of small GEMMs.
func (s *Server) schedExec(w sched.Worker, tasks []*sched.Task) sched.Outcome {
	tm := w.(*teamWorker).tm
	if !tasks[0].Batchable {
		return s.execSRUMMATask(tm, tasks[0])
	}
	return s.execGemmBatch(tm, tasks)
}

// execSRUMMATask runs one large multiply on the team, translating the run
// outcome into the scheduler's resilience protocol: a leaked-rank watchdog
// report poisons the team (ReplaceWorker) and, if the task itself never
// completed, requeues it.
func (s *Server) execSRUMMATask(tm *armci.Team, t *sched.Task) sched.Outcome {
	job := t.Payload.(*schedJob)
	if hook := s.batchHook(); hook != nil {
		hook(t)
	}
	if t.Cancelled() {
		t.Finish(sched.ErrCancelled)
		return sched.Outcome{}
	}
	if job.crec != nil {
		// Cluster route: the pool's worker processes run the job; the team
		// hosting this dispatch just serializes cluster jobs with the rest
		// of the workload. Node failure is repaired inside the pool, so it
		// never poisons the team (no ReplaceWorker).
		return s.execClusterTask(t, job)
	}
	if t.Attempts() > 1 && job.rec != nil {
		// The scheduler requeued this task (watchdog-leaked team): reconcile
		// the recovery ledger with whatever the failed dispatch salvaged so
		// the replacement team resumes rather than double-accumulates.
		s.met.noteRetry(job.rec.prepareRetry())
	}
	job.started = time.Now()
	job.batch = 1
	out, err := s.runSRUMMA(job.ctx, tm, job.req, job.cs, job.d, job.rec, job.traced)
	job.out = out
	job.finished = time.Now()

	var werr *armci.WatchdogError
	if errors.As(err, &werr) && len(werr.Leaked) > 0 {
		// The team is wedged: report, replace it, and let the scheduler
		// retry the job on the replacement (it produced no result).
		return sched.Outcome{Unfinished: []*sched.Task{t}, ReplaceWorker: true, Err: err}
	}
	t.Finish(err)
	return sched.Outcome{}
}

// execGemmBatch executes a coalesced batch of small GEMMs as ONE team job:
// the ranks pull tasks off a shared counter (the same dynamic owner-
// computes shape as the engine's task executor) and each task runs on the
// local packed kernel. One wake + one barrier pays for the whole batch.
func (s *Server) execGemmBatch(tm *armci.Team, tasks []*sched.Task) sched.Outcome {
	var next atomic.Int64
	hook := s.batchHook()
	n := len(tasks)
	threads := s.batchKernelThreads()
	if s.cfg.TraceSample > 1 {
		// Head-sampling: the batch records spans iff any member was sampled.
		traced := false
		for _, t := range tasks {
			if t.Payload.(*schedJob).traced {
				traced = true
				break
			}
		}
		if traced {
			tm.SetRecorder(s.rec)
		} else {
			tm.SetRecorder(nil)
		}
	}
	_, runErr := tm.Run(func(c rt.Ctx) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			t := tasks[i]
			if hook != nil {
				hook(t)
			}
			if t.Cancelled() {
				t.Finish(sched.ErrCancelled)
				continue
			}
			job := t.Payload.(*schedJob)
			job.started = time.Now()
			job.batch = n
			out, err := s.gemmLocal(job.req, job.cs, job.d, threads)
			job.out = out
			job.finished = time.Now()
			t.Finish(err)
		}
	})
	if runErr == nil {
		// The job function finishes every task it reaches, so a clean run
		// means a clean batch.
		return sched.Outcome{}
	}
	// A rank died mid-batch (panic or watchdog): the tasks it — or ranks
	// that aborted with it — never reached are requeued.
	out := sched.Outcome{Err: runErr}
	for _, t := range tasks {
		if !t.Finished() {
			out.Unfinished = append(out.Unfinished, t)
		}
	}
	var werr *armci.WatchdogError
	if errors.As(runErr, &werr) && len(werr.Leaked) > 0 {
		out.ReplaceWorker = true
	}
	return out
}

// batchKernelThreads is the local-kernel width each rank uses inside a
// batch: the configured per-rank width, so a full team of ranks running
// batch tasks concurrently saturates the machine without oversubscribing.
func (s *Server) batchKernelThreads() int {
	if s.cfg.KernelThreads > 0 {
		return s.cfg.KernelThreads
	}
	return armci.DefaultKernelThreads(s.cfg.NProcs)
}

// gemmLocal runs one product on the local packed parallel kernel. The
// result is bit-identical for every threads value (GemmParallel's
// guarantee), which is what makes batched and unbatched execution
// indistinguishable to the caller.
func (s *Server) gemmLocal(req *MultiplyRequest, cs core.Case, d core.Dims, threads int) (*mat.Matrix, error) {
	a := &mat.Matrix{Rows: req.ARows, Cols: req.ACols, Stride: req.ACols, Data: req.A}
	b := &mat.Matrix{Rows: req.BRows, Cols: req.BCols, Stride: req.BCols, Data: req.B}
	c := mat.New(d.M, d.N)
	if req.beta() != 0 {
		copy(c.Data, req.C)
	}
	if req.KernelThreads > 0 {
		threads = req.KernelThreads
	}
	if threads <= 0 {
		threads = 1
	}
	if err := mat.GemmParallel(threads, cs.TransA(), cs.TransB(), req.alpha(), a, b, req.beta(), c); err != nil {
		return nil, err
	}
	return c, nil
}

// batchHook returns the test-only per-task hook, if any (set via
// setBatchHook from tests to block or crash dispatches deterministically).
func (s *Server) batchHook() func(*sched.Task) {
	if v := s.testBatchHook.Load(); v != nil {
		return v.(func(*sched.Task))
	}
	return nil
}

func (s *Server) setBatchHook(h func(*sched.Task)) {
	s.testBatchHook.Store(h)
}

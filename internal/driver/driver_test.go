package driver

import (
	"testing"

	"srumma/internal/armci"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/simrt"
)

func TestLoadStoreBlockRoundTrip(t *testing.T) {
	g, _ := grid.New(2, 3)
	d := grid.NewBlockDist(g, 11, 13)
	global := mat.Indexed(11, 13)
	co := NewCollect(6)
	topo := rt.Topology{NProcs: 6, ProcsPerNode: 2}
	_, err := armci.Run(topo, func(c rt.Ctx) {
		ga := AllocBlock(c, d)
		LoadBlock(c, d, ga, global)
		co.Deposit(c, StoreBlock(c, d, ga))
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(global, back) {
		t.Fatal("block round trip lost data")
	}
}

func TestLoadStoreCyclicRoundTrip(t *testing.T) {
	g, _ := grid.New(2, 2)
	d, err := grid.NewCyclicDist(g, 10, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	global := mat.Indexed(10, 9)
	co := NewCollect(4)
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	_, err = armci.Run(topo, func(c rt.Ctx) {
		ga := AllocCyclic(c, d)
		LoadCyclic(c, d, ga, global)
		co.Deposit(c, StoreCyclic(c, d, ga))
	})
	if err != nil {
		t.Fatal(err)
	}
	back, err := d.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(global, back) {
		t.Fatal("cyclic round trip lost data")
	}
}

func TestLoadBlockShapeMismatchPanics(t *testing.T) {
	g, _ := grid.New(2, 2)
	d := grid.NewBlockDist(g, 8, 8)
	topo := rt.Topology{NProcs: 4, ProcsPerNode: 2}
	_, err := armci.Run(topo, func(c rt.Ctx) {
		ga := AllocBlock(c, d)
		LoadBlock(c, d, ga, mat.New(9, 8))
	})
	if err == nil {
		t.Fatal("expected shape panic")
	}
}

func TestHelpersOnSimEngine(t *testing.T) {
	// On the sim engine the loads are size checks and stores return zero
	// matrices of the right shape.
	g, _ := grid.New(2, 2)
	d := grid.NewBlockDist(g, 8, 8)
	global := mat.Indexed(8, 8)
	_, err := simrt.Run(machine.LinuxMyrinet(), 4, func(c rt.Ctx) {
		ga := AllocBlock(c, d)
		LoadBlock(c, d, ga, global)
		out := StoreBlock(c, d, ga)
		r, cc := d.LocalShape(c.Rank())
		if out.Rows != r || out.Cols != cc {
			panic("sim StoreBlock shape wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

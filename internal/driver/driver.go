// Package driver holds the harness glue shared by tests, examples and
// benchmarks: allocating distributed operands, loading real input matrices
// into them on the real engine, and extracting local blocks for gathering.
// These helpers sit outside the performance model (they use the zero-cost
// WriteBuf/ReadBuf accessors).
package driver

import (
	"fmt"

	"srumma/internal/grid"
	"srumma/internal/mat"
	"srumma/internal/rt"
)

// AllocBlock collectively allocates a Global matching a block distribution:
// each rank's segment is its (rows x cols) block, tight row-major.
func AllocBlock(c rt.Ctx, d *grid.BlockDist) rt.Global {
	r, cc := d.LocalShape(c.Rank())
	return c.Malloc(r * cc)
}

// AllocCyclic collectively allocates a Global matching a block-cyclic
// distribution.
func AllocCyclic(c rt.Ctx, d *grid.CyclicDist) rt.Global {
	r, cc := d.LocalShape(c.Rank())
	return c.Malloc(r * cc)
}

// LoadBlock writes this rank's block of the global matrix into its segment
// of g. On the sim engine it is a size check only.
func LoadBlock(c rt.Ctx, d *grid.BlockDist, g rt.Global, global *mat.Matrix) {
	if global.Rows != d.Rows || global.Cols != d.Cols {
		panic(fmt.Sprintf("driver: LoadBlock matrix %dx%d vs distribution %dx%d",
			global.Rows, global.Cols, d.Rows, d.Cols))
	}
	pr, pc := d.G.Coords(c.Rank())
	r, cc := d.BlockShape(pr, pc)
	i, j := d.BlockOrigin(pr, pc)
	buf := make([]float64, r*cc)
	mat.PackInto(buf, global, i, j, r, cc)
	c.WriteBuf(c.Local(g), 0, buf)
}

// LoadCyclic writes this rank's block-cyclic local array of the global
// matrix into its segment of g.
func LoadCyclic(c rt.Ctx, d *grid.CyclicDist, g rt.Global, global *mat.Matrix) {
	if global.Rows != d.Rows || global.Cols != d.Cols {
		panic(fmt.Sprintf("driver: LoadCyclic matrix %dx%d vs distribution %dx%d",
			global.Rows, global.Cols, d.Rows, d.Cols))
	}
	pr, pc := d.G.Coords(c.Rank())
	lr, lc := d.LocalShape(c.Rank())
	buf := make([]float64, lr*lc)
	for i := 0; i < d.Rows; i++ {
		owner, li := grid.GlobalToLocal(i, d.NB, d.G.P)
		if owner != pr {
			continue
		}
		for j := 0; j < d.Cols; j++ {
			ownerC, lj := grid.GlobalToLocal(j, d.NB, d.G.Q)
			if ownerC != pc {
				continue
			}
			buf[li*lc+lj] = global.Data[i*global.Stride+j]
		}
	}
	c.WriteBuf(c.Local(g), 0, buf)
}

// StoreBlock reads this rank's segment of g back as a matrix (the local
// block). On the sim engine it returns a zero matrix of the right shape.
func StoreBlock(c rt.Ctx, d *grid.BlockDist, g rt.Global) *mat.Matrix {
	r, cc := d.LocalShape(c.Rank())
	out := mat.New(r, cc)
	if data := c.ReadBuf(c.Local(g), 0, r*cc); data != nil {
		copy(out.Data, data)
	}
	return out
}

// StoreCyclic reads this rank's block-cyclic segment back as a local array.
func StoreCyclic(c rt.Ctx, d *grid.CyclicDist, g rt.Global) *mat.Matrix {
	r, cc := d.LocalShape(c.Rank())
	out := mat.New(r, cc)
	if data := c.ReadBuf(c.Local(g), 0, r*cc); data != nil {
		copy(out.Data, data)
	}
	return out
}

// Collect is a test/example convenience: ranks deposit their local result
// blocks into a shared slice (indexed by rank, so concurrent writes are
// race-free) which the caller gathers after the run.
type Collect struct {
	Blocks []*mat.Matrix
}

// NewCollect sizes the collection for nprocs ranks.
func NewCollect(nprocs int) *Collect {
	return &Collect{Blocks: make([]*mat.Matrix, nprocs)}
}

// Deposit stores rank's block.
func (co *Collect) Deposit(c rt.Ctx, m *mat.Matrix) {
	co.Blocks[c.Rank()] = m
}

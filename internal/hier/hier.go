// Package hier implements the hierarchical two-level multiplication:
// group-level SUMMA over SRUMMA teams (Quintin, Hasanov & Lastovetsky,
// arXiv:1306.4161, composed with the paper's flat SRUMMA).
//
// Ranks are partitioned into GROUPS — shared-memory domains by default,
// carved finer when rt.Topology.GroupSize says so. The OUTER level moves
// operand panels between groups: each group computes the deduplicated
// union of the remote sub-blocks its members' task lists will fetch
// (core.GroupFetchPlan), orders those regions as a DIMMA-style panel
// schedule across owner groups (summa.ScheduleOrder with the requesting
// group's diagonal shift as the rotation), splits the staging work across
// members, and pulls each region exactly once into a collectively
// allocated band with rt one-sided gets. The INNER level is the untouched
// flat SRUMMA executor (core.MultiplyEx): a ctx wrapper serves its fetches
// from the group band by direct shared-memory access, so no extra copies
// cross the group boundary and — because the task lists, their order, and
// every Gemm operand value are exactly the flat plan's — the result is
// bit-identical to flat SRUMMA.
//
// What changes is communication volume: a region needed by several group
// members crosses the interconnect once instead of once per member. The
// crossover against flat SRUMMA is swept on the virtual-time engine by
// srumma-bench -hier (BENCH_hier.json).
//
// À la COSMA (arXiv:1908.09606) the composite grid need not be square:
// Choose evaluates every P×Q factorization by exact predicted inter-group
// volume for the given M×N×K shape and picks the cheapest.
package hier

import (
	"fmt"

	"srumma/internal/core"
	"srumma/internal/grid"
	"srumma/internal/rt"
	"srumma/internal/summa"
)

// Topo is the two-level topology: the composite process grid the flat plan
// runs on, plus the group structure (carried by rt.Topology) the outer
// level schedules across.
type Topo struct {
	rt.Topology
	Grid *grid.Grid
}

// From builds a two-level topology over an explicit composite grid. The
// group size comes from topo (0 = shared-memory domains).
func From(topo rt.Topology, g *grid.Grid) Topo {
	return Topo{Topology: topo, Grid: g}
}

// Validate checks the two-level topology: a usable flat topology, a grid
// matching the rank count, and groups that nest inside shared-memory
// domains — the precondition for members to read the staged band by direct
// load/store.
func (t Topo) Validate() error {
	if err := t.Topology.Validate(); err != nil {
		return err
	}
	if t.Grid == nil || t.Grid.Size() != t.NProcs {
		return fmt.Errorf("hier: grid does not cover %d ranks", t.NProcs)
	}
	if !t.GroupsNestInDomains() {
		return fmt.Errorf("hier: groups of %d ranks straddle shared-memory domains (%d per node)",
			t.GroupSize, t.ProcsPerNode)
	}
	return nil
}

// GroupShape returns the intra-group shape of group grp on the composite
// grid: how many distinct grid rows and columns its members occupy.
func (t Topo) GroupShape(grp int) (rows, cols int) {
	lo, hi := t.GroupRanks(grp)
	seenR := map[int]bool{}
	seenC := map[int]bool{}
	for m := lo; m < hi; m++ {
		r, c := t.Grid.Coords(m)
		seenR[r] = true
		seenC[c] = true
	}
	return len(seenR), len(seenC)
}

// Options configure the hierarchical multiply. The embedded core.Options
// are handed to the inner flat executor unchanged (that is what makes the
// result bit-identical to flat SRUMMA under the same options).
type Options struct {
	core.Options
	// NoOuterShift disables the group-level diagonal rotation of the outer
	// panel schedule (ablation; flat SRUMMA's Figure 4 argument applied to
	// groups).
	NoOuterShift bool
}

// Panel is one outer-level step of the group schedule: every staged region
// owned by one group, streamed back to back DIMMA-style.
type Panel struct {
	OwnerGroup int
	Regions    []core.FetchRegion
	Elems      int
}

// Schedule plans group grp's outer level: the staged regions of
// core.GroupFetchPlan arranged into per-owner-group panels, with the owner
// sequence rotated by grp (the group-level diagonal shift) unless
// NoOuterShift. Deterministic — every member of grp computes the same
// schedule, which is what lets the staging work be split without
// negotiation.
func Schedule(t Topo, grp int, d core.Dims, opts Options) []Panel {
	regions := core.GroupFetchPlan(t.Topology, grp, t.Grid, d, opts.Options)
	if len(regions) == 0 {
		return nil
	}
	nG := t.NumGroups()
	rot := 0
	if !opts.NoOuterShift {
		rot = grp % nG
	}
	order := summa.ScheduleOrder(len(regions),
		func(i int) int { return t.GroupOf(regions[i].Owner) }, nG, rot, true)
	byGroup := make(map[int]*Panel)
	var panels []Panel
	for _, i := range order {
		og := t.GroupOf(regions[i].Owner)
		p := byGroup[og]
		if p == nil {
			panels = append(panels, Panel{OwnerGroup: og})
			p = &panels[len(panels)-1]
			byGroup[og] = p
		}
		p.Regions = append(p.Regions, regions[i])
		p.Elems += regions[i].Elems()
	}
	return panels
}

// Volumes is the predicted communication volume of one multiply, in
// float64 elements, split by level. Flat* is what flat SRUMMA moves (every
// rank fetches for itself); Outer* is what the hierarchical staging moves
// between groups; InnerCopy is the intra-group band traffic that replaces
// the flat fetches (shared-memory copies, not interconnect bytes).
type Volumes struct {
	FlatRemote  int64 `json:"flat_remote"`  // flat: fetched across domains
	FlatShared  int64 `json:"flat_shared"`  // flat: fetched within a domain
	OuterRemote int64 `json:"outer_remote"` // hier: staged across domains
	OuterShared int64 `json:"outer_shared"` // hier: staged within a domain
	InnerCopy   int64 `json:"inner_copy"`   // hier: band reads inside groups
}

// PredictVolumes computes the per-level communication volumes analytically
// from the fetch plans — no engine run needed. The flat numbers use the
// executor's exact issue sequence (including its buffer-reuse dedup), so
// "OuterRemote < FlatRemote" here is the same comparison the virtual-time
// sweep measures.
func PredictVolumes(t Topo, d core.Dims, opts Options) Volumes {
	var v Volumes
	for me := 0; me < t.NProcs; me++ {
		for _, r := range core.RankFetches(t.Topology, me, t.Grid, d, opts.Options) {
			n := int64(r.Elems())
			if t.SameDomain(me, r.Owner) {
				v.FlatShared += n
			} else {
				v.FlatRemote += n
			}
			// Under hier every flat fetch becomes a read of the staged band.
			v.InnerCopy += n
		}
	}
	for grp := 0; grp < t.NumGroups(); grp++ {
		lo, _ := t.GroupRanks(grp)
		for _, p := range Schedule(t, grp, d, opts) {
			for _, r := range p.Regions {
				n := int64(r.Elems())
				if t.SameDomain(lo, r.Owner) {
					v.OuterShared += n
				} else {
					v.OuterRemote += n
				}
			}
		}
	}
	return v
}

// Choose picks the composite grid for an M×N×K shape the COSMA way: every
// P×Q factorization of the rank count is evaluated by exact predicted
// inter-group volume (PredictVolumes.OuterRemote, then OuterShared) and
// the cheapest wins; the square-ish default keeps ties. Use From with
// grid.Square instead when the result must be bit-comparable to a flat run
// on the default square-ish grid.
func Choose(topo rt.Topology, d core.Dims, opts Options) (Topo, error) {
	sq, err := grid.Square(topo.NProcs)
	if err != nil {
		return Topo{}, err
	}
	best := From(topo, sq)
	bestV := PredictVolumes(best, d, opts)
	for p := 1; p <= topo.NProcs; p++ {
		if topo.NProcs%p != 0 {
			continue
		}
		cand := From(topo, &grid.Grid{P: p, Q: topo.NProcs / p})
		v := PredictVolumes(cand, d, opts)
		if v.OuterRemote < bestV.OuterRemote ||
			(v.OuterRemote == bestV.OuterRemote && v.OuterShared < bestV.OuterShared) {
			best, bestV = cand, v
		}
	}
	return best, nil
}

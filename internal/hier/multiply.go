package hier

// The hierarchical multiply: stage the group's outer panels into a shared
// band with one-sided gets, then run the UNTOUCHED flat SRUMMA executor
// with its fetches served from the band. Bit-identity with flat SRUMMA
// falls out of the construction: the task lists, their order, the beta
// application and every Gemm operand value are exactly the flat plan's —
// only where the fetched bytes come from changes (PR 8 pinned that Gemm is
// layout-independent bitwise, so same bytes ⇒ same C).

import (
	"fmt"
	"time"

	"srumma/internal/core"
	"srumma/internal/obs"
	"srumma/internal/rt"
)

// bandLoc says where a staged region lives: which group member's band
// segment, at which element offset.
type bandLoc struct {
	member int
	off    int
}

// Multiply runs the hierarchical multiply collectively: C = op(A) op(B)
// with operands block-distributed per core.Dists on t.Grid. C is
// overwritten.
func Multiply(c rt.Ctx, t Topo, d core.Dims, opts Options, ga, gb, gc rt.Global) error {
	return MultiplyEx(c, t, d, opts, 1, 0, ga, gb, gc)
}

// MultiplyEx is the full dgemm form: C = alpha * op(A) op(B) + beta * C.
//
// Every rank stages its share of the group's outer panels (the schedule is
// deterministic, so members split the work without negotiation), barriers,
// and runs core.MultiplyEx through a ctx wrapper that satisfies the
// executor's fetches from the staged band by direct shared-memory access.
// On engines or platforms where group members cannot direct-map each
// other's band segments the group degrades to the flat path for this call
// (still correct, no staging win).
func MultiplyEx(c rt.Ctx, t Topo, d core.Dims, opts Options, alpha, beta float64, ga, gb, gc rt.Global) error {
	// The engine's topology is the ground truth the inner executor plans
	// against (core.MultiplyEx calls Plan with c.Topo()); only the group
	// carving and the grid are the caller's to choose. Overlaying here
	// keeps the staging plan and the executor's fetch keys derived from
	// the SAME topology no matter what the caller stuffed into t.
	et := c.Topo()
	et.GroupSize = t.GroupSize
	t.Topology = et
	if err := t.Validate(); err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return err
	}
	if t.Grid.Size() != c.Size() {
		return fmt.Errorf("hier: grid %dx%d needs %d ranks, runtime has %d",
			t.Grid.P, t.Grid.Q, t.Grid.Size(), c.Size())
	}

	me := c.Rank()
	grp := t.GroupOf(me)
	lo, hi := t.GroupRanks(grp)
	nMembers := hi - lo

	// Can this group share a band at all? Direct access is symmetric inside
	// a domain, so every member reaches the same verdict.
	direct := true
	for m := lo; m < hi; m++ {
		if m != me && !c.CanDirect(m) {
			direct = false
			break
		}
	}

	// The outer schedule, flattened into staging order. Region i is staged
	// by member lo + i%nMembers; every member derives the full assignment so
	// the band layout is agreed without messages.
	var regions []core.FetchRegion
	if direct {
		for _, p := range Schedule(t, grp, d, opts) {
			regions = append(regions, p.Regions...)
		}
	}
	bandElems := make([]int, nMembers)
	loc := make(map[core.FetchRegion]bandLoc, len(regions))
	for i, r := range regions {
		mi := i % nMembers
		loc[r] = bandLoc{member: lo + mi, off: bandElems[mi]}
		bandElems[mi] += r.Elems()
	}

	// Malloc is collective across ALL groups — even a group with nothing to
	// stage (or no direct access) allocates a token element so the global
	// call sequence stays aligned.
	myBand := bandElems[me-lo]
	if myBand == 0 {
		myBand = 1
	}
	band := c.Malloc(myBand)

	// Stage my share: one NbGetSub per assigned region, issued as one burst
	// (bracketed with a KindIssue span like the executor's own fetch
	// bursts), then drained. The gets run on the REAL ctx, so chaos layers
	// and engine accounting see ordinary one-sided traffic.
	rec := rt.FindRecorder(c)
	local := c.Local(band)
	var handles []rt.Handle
	t0 := issueStart(rec)
	for i, r := range regions {
		if i%nMembers != me-lo {
			continue
		}
		src := ga
		if r.Matrix == core.MatB {
			src = gb
		}
		h := c.NbGetSub(src, r.Owner, r.Off, r.LD, r.Rows, r.Cols, local, loc[r].off)
		handles = append(handles, h)
	}
	issueSpan(rec, me, t0)
	for _, h := range handles {
		c.Wait(h)
	}
	// Publish the bands: after this barrier every member may direct-read
	// every segment (the same write-then-barrier-then-read discipline the
	// flat direct path relies on).
	c.Barrier()

	var inner rt.Ctx = c
	if len(loc) > 0 {
		inner = &stagedCtx{Ctx: c, ga: ga, gb: gb, band: band, loc: loc}
	}
	err := core.MultiplyEx(inner, t.Grid, d, opts.Options, alpha, beta, ga, gb, gc)
	// core.MultiplyEx exits through a barrier on every path (including
	// cancellation), so the band is quiescent and the collective Free stays
	// aligned.
	c.Free(band)
	return err
}

// stagedCtx is the inner team's runtime: a pass-through rt.Ctx whose
// NbGetSub, when asked for a region the outer level staged, copies it out
// of the group band instead of touching the interconnect. The handle it
// returns is already complete; everything else — direct operands, scratch,
// Gemm, barriers, chaos injection in a wrapped engine — flows to the
// underlying ctx unchanged. It deliberately does NOT forward the
// resilient executor's rankHealth capability: under hier the static
// executor runs, and failures are handled at the job level (retry +
// ledger resume), not by per-fetch rescheduling.
type stagedCtx struct {
	rt.Ctx
	ga, gb rt.Global
	band   rt.Global
	loc    map[core.FetchRegion]bandLoc
}

// Unwrap keeps engine capabilities (kernel tuning, buffer pools, span
// recorders) discoverable through the wrapper.
func (s *stagedCtx) Unwrap() rt.Ctx { return s.Ctx }

// servedHandle is the no-op handle of a fetch satisfied from the band.
type servedHandle struct{}

func (servedHandle) Done() bool { return true }

func (s *stagedCtx) NbGetSub(g rt.Global, rank, off, ld, rows, cols int, dst rt.Buffer, dstOff int) rt.Handle {
	matrix := -1
	switch g {
	case s.ga:
		matrix = core.MatA
	case s.gb:
		matrix = core.MatB
	}
	if matrix >= 0 {
		key := core.FetchRegion{Matrix: matrix, Owner: rank, Off: off, LD: ld, Rows: rows, Cols: cols}
		if bl, ok := s.loc[key]; ok {
			var src rt.Buffer
			remote := bl.member != s.Ctx.Rank()
			if remote {
				src = s.Ctx.Direct(s.band, bl.member)
			} else {
				src = s.Ctx.Local(s.band)
			}
			// The band holds the region packed tight, so the copy into the
			// executor's fetch buffer is a contiguous rows x cols Pack —
			// charged as a shared-memory copy by the sim engine, a plain
			// memcpy on the real ones.
			s.Ctx.Pack(rt.Mat{Buf: src, Off: bl.off, LD: cols, Rows: rows, Cols: cols, Remote: remote}, dst, dstOff)
			return servedHandle{}
		}
	}
	return s.Ctx.NbGetSub(g, rank, off, ld, rows, cols, dst, dstOff)
}

func (s *stagedCtx) Wait(h rt.Handle) {
	if _, ok := h.(servedHandle); ok {
		return
	}
	s.Ctx.Wait(h)
}

// issueStart and issueSpan mirror the executor's KindIssue bracketing for
// the staging burst.
func issueStart(rec *obs.Recorder) time.Time {
	if rec == nil {
		return time.Time{}
	}
	return time.Now()
}

func issueSpan(rec *obs.Recorder, lane int, t0 time.Time) {
	if rec == nil || t0.IsZero() {
		return
	}
	rec.RecordWall(lane, obs.KindIssue, t0, time.Now())
}

package hier

import (
	"fmt"
	"math"
	"testing"

	"srumma/internal/armci"
	"srumma/internal/core"
	"srumma/internal/driver"
	"srumma/internal/grid"
	"srumma/internal/machine"
	"srumma/internal/mat"
	"srumma/internal/rt"
	"srumma/internal/simrt"
)

// runEngine executes one multiply (flat or hierarchical) on the real engine
// and returns the gathered C.
func runEngine(t *testing.T, topo rt.Topology, g *grid.Grid, d core.Dims, opts Options, hier bool,
	alpha, beta float64, seedA, seedB, seedC uint64) *mat.Matrix {
	t.Helper()
	da, db, dc := core.Dists(g, d, opts.Case)
	aGlob := mat.Random(da.Rows, da.Cols, seedA)
	bGlob := mat.Random(db.Rows, db.Cols, seedB)
	cGlob := mat.Random(dc.Rows, dc.Cols, seedC)
	co := driver.NewCollect(g.Size())
	_, err := armci.Run(topo, func(c rt.Ctx) {
		ga := driver.AllocBlock(c, da)
		gb := driver.AllocBlock(c, db)
		gc := driver.AllocBlock(c, dc)
		driver.LoadBlock(c, da, ga, aGlob)
		driver.LoadBlock(c, db, gb, bGlob)
		driver.LoadBlock(c, dc, gc, cGlob)
		var err error
		if hier {
			err = MultiplyEx(c, From(topo, g), d, opts, alpha, beta, ga, gb, gc)
		} else {
			err = core.MultiplyEx(c, g, d, opts.Options, alpha, beta, ga, gb, gc)
		}
		if err != nil {
			panic(err)
		}
		co.Deposit(c, driver.StoreBlock(c, dc, gc))
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dc.Gather(co.Blocks)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func bitsEqual(t *testing.T, flat, hier *mat.Matrix, label string) {
	t.Helper()
	if flat.Rows != hier.Rows || flat.Cols != hier.Cols {
		t.Fatalf("%s: shape mismatch %dx%d vs %dx%d", label, flat.Rows, flat.Cols, hier.Rows, hier.Cols)
	}
	for i := range flat.Data {
		if math.Float64bits(flat.Data[i]) != math.Float64bits(hier.Data[i]) {
			t.Fatalf("%s: element %d differs bitwise: flat %v hier %v", label, i, flat.Data[i], hier.Data[i])
		}
	}
}

// TestHierBitIdenticalToFlat is the property the whole design hangs on:
// across all four transpose cases, grids, group carvings and a non-trivial
// alpha/beta, the hierarchical path produces the SAME BITS as flat SRUMMA.
func TestHierBitIdenticalToFlat(t *testing.T) {
	configs := []struct {
		p, q, ppn, groupSize int
		span                 bool
		d                    core.Dims
		maxK                 int
	}{
		{p: 2, q: 2, ppn: 2, d: core.Dims{M: 24, N: 24, K: 24}},
		{p: 2, q: 3, ppn: 2, d: core.Dims{M: 20, N: 25, K: 30}, maxK: 7},
		{p: 3, q: 2, ppn: 3, d: core.Dims{M: 19, N: 17, K: 23}},
		// Four ranks per node carved into two groups of two.
		{p: 2, q: 4, ppn: 4, groupSize: 2, d: core.Dims{M: 32, N: 28, K: 26}, maxK: 9},
		// Shared machine: one domain, groups carved out of it.
		{p: 2, q: 2, ppn: 4, span: true, groupSize: 2, d: core.Dims{M: 16, N: 16, K: 16}},
	}
	for _, cfg := range configs {
		for _, cs := range core.Cases {
			label := fmt.Sprintf("%dx%d/ppn%d/gs%d/%v", cfg.p, cfg.q, cfg.ppn, cfg.groupSize, cs)
			t.Run(label, func(t *testing.T) {
				g, err := grid.New(cfg.p, cfg.q)
				if err != nil {
					t.Fatal(err)
				}
				topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: cfg.ppn,
					DomainSpansMachine: cfg.span, GroupSize: cfg.groupSize}
				opts := Options{Options: core.Options{Case: cs, MaxTaskK: cfg.maxK}}
				flat := runEngine(t, topo, g, cfg.d, opts, false, 1.25, -0.5, 11, 22, 33)
				hier := runEngine(t, topo, g, cfg.d, opts, true, 1.25, -0.5, 11, 22, 33)
				bitsEqual(t, flat, hier, label)
			})
		}
	}
}

// TestHierMatchesReference pins the hierarchical result against the naive
// kernel independently of the flat path.
func TestHierMatchesReference(t *testing.T) {
	d := core.Dims{M: 20, N: 25, K: 30}
	for _, cs := range core.Cases {
		t.Run(cs.String(), func(t *testing.T) {
			g, err := grid.New(2, 3)
			if err != nil {
				t.Fatal(err)
			}
			topo := rt.Topology{NProcs: 6, ProcsPerNode: 2}
			got := runEngine(t, topo, g, d, Options{Options: core.Options{Case: cs}}, true, 1, 0, 5, 6, 7)
			ar, ac := d.M, d.K
			if cs.TransA() {
				ar, ac = d.K, d.M
			}
			br, bc := d.K, d.N
			if cs.TransB() {
				br, bc = d.N, d.K
			}
			a := mat.Random(ar, ac, 5)
			b := mat.Random(br, bc, 6)
			want := mat.New(d.M, d.N)
			if err := mat.GemmNaive(cs.TransA(), cs.TransB(), 1, a, b, 0, want); err != nil {
				t.Fatal(err)
			}
			if diff := mat.MaxAbsDiff(got, want); diff > 1e-10*float64(d.K) {
				t.Errorf("%v: max diff vs reference %g", cs, diff)
			}
		})
	}
}

// TestScheduleCoversAllFetches: the staged band must satisfy every fetch
// the inner executors will issue — each region a member's executor fetches
// appears in its group's outer schedule.
func TestScheduleCoversAllFetches(t *testing.T) {
	g, err := grid.New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	topo := rt.Topology{NProcs: 8, ProcsPerNode: 2}
	d := core.Dims{M: 40, N: 36, K: 44}
	for _, cs := range core.Cases {
		opts := Options{Options: core.Options{Case: cs, MaxTaskK: 10}}
		tp := From(topo, g)
		staged := make(map[core.FetchRegion]bool)
		perGroup := make(map[int]map[core.FetchRegion]bool)
		for grp := 0; grp < tp.NumGroups(); grp++ {
			set := make(map[core.FetchRegion]bool)
			for _, p := range Schedule(tp, grp, d, opts) {
				for _, r := range p.Regions {
					if set[r] {
						t.Fatalf("%v: group %d stages region %+v twice", cs, grp, r)
					}
					set[r] = true
					staged[r] = true
				}
			}
			perGroup[grp] = set
		}
		for me := 0; me < topo.NProcs; me++ {
			grp := topo.GroupOf(me)
			for _, r := range core.RankFetches(topo, me, g, d, opts.Options) {
				if !perGroup[grp][r] {
					t.Fatalf("%v: rank %d (group %d) fetch %+v not staged", cs, me, grp, r)
				}
			}
		}
		if len(staged) == 0 {
			t.Fatalf("%v: schedule staged nothing on a multi-node topology", cs)
		}
	}
}

// TestPredictVolumesHierWins: the hierarchical outer level never moves
// more across domains than flat SRUMMA, and strictly less once node-mates
// share fetch regions.
func TestPredictVolumesHierWins(t *testing.T) {
	d := core.Dims{M: 96, N: 96, K: 96}
	for _, np := range []int{4, 8, 16, 32} {
		g, err := grid.Square(np)
		if err != nil {
			t.Fatal(err)
		}
		topo := rt.Topology{NProcs: np, ProcsPerNode: 2}
		v := PredictVolumes(From(topo, g), d, Options{})
		if v.OuterRemote > v.FlatRemote {
			t.Errorf("np=%d: hier outer remote %d exceeds flat %d", np, v.OuterRemote, v.FlatRemote)
		}
		// At np=8 (2x4 grid, ppn=2) a node IS one grid column: no two
		// node-mates share a fetch region and the volumes tie — that tie is
		// the crossover point BENCH_hier.json reports. From np=16 on,
		// node-mates are column segments and the dedup win is strict.
		if np >= 16 && v.OuterRemote >= v.FlatRemote {
			t.Errorf("np=%d: expected strict hier win, got outer %d vs flat %d", np, v.OuterRemote, v.FlatRemote)
		}
	}
}

// TestSimVolumesMatchPrediction runs both paths on the virtual-time engine
// and checks the measured inter-node bytes agree with the analytic
// prediction: hier stages strictly fewer remote bytes than flat fetches.
func TestSimVolumesMatchPrediction(t *testing.T) {
	prof := machine.LinuxMyrinet()
	prof.ProcsPerNode = 2
	np := 16
	g, err := grid.Square(np)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Dims{M: 128, N: 128, K: 128}
	opts := Options{}

	remote := func(hier bool) int64 {
		res, err := simrt.Run(prof, np, func(c rt.Ctx) {
			da, db, dc := core.Dists(g, d, opts.Case)
			ga := driver.AllocBlock(c, da)
			gb := driver.AllocBlock(c, db)
			gc := driver.AllocBlock(c, dc)
			var err error
			if hier {
				err = Multiply(c, From(c.Topo(), g), d, opts, ga, gb, gc)
			} else {
				err = core.Multiply(c, g, d, opts.Options, ga, gb, gc)
			}
			if err != nil {
				panic(err)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, s := range res.Stats {
			total += s.BytesRemote
		}
		return total
	}

	flatB, hierB := remote(false), remote(true)
	if hierB >= flatB {
		t.Fatalf("sim remote bytes: hier %d not below flat %d", hierB, flatB)
	}
	topo := rt.Topology{NProcs: np, ProcsPerNode: prof.ProcsPerNode}
	v := PredictVolumes(From(topo, g), d, opts)
	if want := v.OuterRemote * 8; hierB != want {
		t.Errorf("hier measured remote bytes %d, predicted %d", hierB, want)
	}
	if want := v.FlatRemote * 8; flatB != want {
		t.Errorf("flat measured remote bytes %d, predicted %d", flatB, want)
	}
}

// TestChoosePrefersCheaperGrid: Choose never does worse than the square
// default, and goes non-square when the shape rewards it.
func TestChoosePrefersCheaperGrid(t *testing.T) {
	topo := rt.Topology{NProcs: 8, ProcsPerNode: 2}
	d := core.Dims{M: 1024, N: 32, K: 256}
	tp, err := Choose(topo, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sq, err := grid.Square(topo.NProcs)
	if err != nil {
		t.Fatal(err)
	}
	got := PredictVolumes(tp, d, Options{})
	def := PredictVolumes(From(topo, sq), d, Options{})
	if got.OuterRemote > def.OuterRemote {
		t.Errorf("Choose picked %dx%d with outer volume %d, square default %d",
			tp.Grid.P, tp.Grid.Q, got.OuterRemote, def.OuterRemote)
	}
}

// TestValidateRejectsStraddlingGroups: a group larger than its domain
// cannot share a staged band.
func TestValidateRejectsStraddlingGroups(t *testing.T) {
	g, err := grid.New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tp := From(rt.Topology{NProcs: 8, ProcsPerNode: 2, GroupSize: 4}, g)
	if err := tp.Validate(); err == nil {
		t.Fatal("expected validation error for groups straddling domains")
	}
	tp = From(rt.Topology{NProcs: 8, ProcsPerNode: 2, GroupSize: 4, DomainSpansMachine: true}, g)
	if err := tp.Validate(); err != nil {
		t.Fatalf("shared machine should allow any carving: %v", err)
	}
}

// TestGroupShape reports the intra-group footprint on the composite grid.
func TestGroupShape(t *testing.T) {
	g, err := grid.New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tp := From(rt.Topology{NProcs: 8, ProcsPerNode: 4}, g)
	// Column-major ranks: group 0 = ranks 0..3 = column 0 = 4x1.
	if r, c := tp.GroupShape(0); r != 4 || c != 1 {
		t.Errorf("group 0 shape %dx%d, want 4x1", r, c)
	}
}

package armci

import (
	"sync"

	"srumma/internal/rt"
)

// abortError is the panic payload raised in ranks that were unblocked
// because some other rank failed. Run reports the original failure in
// preference to these secondary unwinds.
type abortError struct{}

func (abortError) Error() string { return "armci: aborted because another rank failed" }

// barrier is a reusable generation barrier. abort releases everyone forever
// (used when a rank panics so the remaining ranks do not hang the test
// binary; they will typically then panic themselves, which Run also
// records).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(abortError{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		panic(abortError{})
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// msgKey identifies a matching queue: (source, destination, tag).
type msgKey struct {
	src, dst, tag int
}

// pendingRecv is a posted receive waiting for a matching send.
type pendingRecv struct {
	dst  []float64
	done chan struct{}
}

// mailbox implements eager two-sided matching with MPI's non-overtaking
// order per (src, dst, tag) triple. Sends buffer their payload, so a send
// never blocks — which is the behaviour of the eager protocol real MPIs use
// for the message sizes the real engine is exercised at. Buffered payloads
// live in pooled size-class buffers (the scratchPools machinery of
// armci.go) and queue pops shift in place, so steady-state traffic touches
// the allocator only when a queue grows past its high-water mark.
type mailbox struct {
	mu      sync.Mutex
	sends   map[msgKey][]*buffer
	recvs   map[msgKey][]*pendingRecv
	aborted bool
}

func newMailbox() *mailbox {
	return &mailbox{
		sends: make(map[msgKey][]*buffer),
		recvs: make(map[msgKey][]*pendingRecv),
	}
}

// getPayloadBuf returns a pooled buffer resized to n elements. The caller
// overwrites every element, so reused memory is not cleared.
func getPayloadBuf(n int) *buffer {
	if n <= 0 {
		return &buffer{}
	}
	cls := sizeClass(n)
	if cls >= scratchClasses {
		return &buffer{data: make([]float64, n)}
	}
	if v := scratchPools[cls].Get(); v != nil {
		b := v.(*buffer)
		b.data = b.data[:n]
		// Mailbox payloads are internal: clear the scratch mark so a payload
		// that somehow reaches ReleaseBuf fails loudly as foreign.
		b.scratch, b.released = false, false
		return b
	}
	b := &buffer{data: make([]float64, 1<<cls)}
	b.data = b.data[:n]
	return b
}

func putPayloadBuf(b *buffer) {
	cp := cap(b.data)
	if cp == 0 || cp&(cp-1) != 0 {
		return
	}
	if cls := sizeClass(cp); cls < scratchClasses {
		b.data = b.data[:cp]
		scratchPools[cls].Put(b)
	}
}

func (m *mailbox) send(k msgKey, payload []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		panic(abortError{})
	}
	if q := m.recvs[k]; len(q) > 0 {
		r := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		m.recvs[k] = q[:len(q)-1]
		if len(r.dst) != len(payload) {
			panic("armci: send/recv length mismatch")
		}
		copy(r.dst, payload)
		close(r.done)
		return
	}
	b := getPayloadBuf(len(payload))
	copy(b.data, payload)
	m.sends[k] = append(m.sends[k], b)
}

func (m *mailbox) recv(k msgKey, dst []float64) rt.Handle {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		panic(abortError{})
	}
	if q := m.sends[k]; len(q) > 0 {
		b := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		m.sends[k] = q[:len(q)-1]
		if len(dst) != len(b.data) {
			panic("armci: send/recv length mismatch")
		}
		copy(dst, b.data)
		putPayloadBuf(b)
		return doneHandle{}
	}
	h := &chanHandle{ch: make(chan struct{})}
	m.recvs[k] = append(m.recvs[k], &pendingRecv{dst: dst, done: h.ch})
	return h
}

func (m *mailbox) abort() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.aborted = true
	for _, q := range m.recvs {
		for _, r := range q {
			close(r.done)
		}
	}
	m.recvs = make(map[msgKey][]*pendingRecv)
}

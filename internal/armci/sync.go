package armci

import "sync"

// abortError is the panic payload raised in ranks that were unblocked
// because some other rank failed. Run reports the original failure in
// preference to these secondary unwinds.
type abortError struct{}

func (abortError) Error() string { return "armci: aborted because another rank failed" }

// barrier is a reusable generation barrier. abort releases everyone forever
// (used when a rank panics so the remaining ranks do not hang the test
// binary; they will typically then panic themselves, which Run also
// records).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	count   int
	gen     int
	aborted bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.aborted {
		panic(abortError{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for b.gen == gen && !b.aborted {
		b.cond.Wait()
	}
	if b.aborted {
		panic(abortError{})
	}
}

func (b *barrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// msgKey identifies a matching queue: (source, destination, tag).
type msgKey struct {
	src, dst, tag int
}

// pendingRecv is a posted receive waiting for a matching send.
type pendingRecv struct {
	dst  []float64
	done chan struct{}
}

// mailbox implements eager two-sided matching with MPI's non-overtaking
// order per (src, dst, tag) triple. Sends buffer their payload, so a send
// never blocks — which is the behaviour of the eager protocol real MPIs use
// for the message sizes the real engine is exercised at.
type mailbox struct {
	mu      sync.Mutex
	sends   map[msgKey][][]float64
	recvs   map[msgKey][]*pendingRecv
	aborted bool
}

func newMailbox() *mailbox {
	return &mailbox{
		sends: make(map[msgKey][][]float64),
		recvs: make(map[msgKey][]*pendingRecv),
	}
}

func (m *mailbox) send(k msgKey, payload []float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		panic(abortError{})
	}
	if q := m.recvs[k]; len(q) > 0 {
		r := q[0]
		m.recvs[k] = q[1:]
		if len(r.dst) != len(payload) {
			panic("armci: send/recv length mismatch")
		}
		copy(r.dst, payload)
		close(r.done)
		return
	}
	buf := make([]float64, len(payload))
	copy(buf, payload)
	m.sends[k] = append(m.sends[k], buf)
}

func (m *mailbox) recv(k msgKey, dst []float64) *chanHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.aborted {
		panic(abortError{})
	}
	h := &chanHandle{ch: make(chan struct{})}
	if q := m.sends[k]; len(q) > 0 {
		payload := q[0]
		m.sends[k] = q[1:]
		if len(dst) != len(payload) {
			panic("armci: send/recv length mismatch")
		}
		copy(dst, payload)
		close(h.ch)
		return h
	}
	m.recvs[k] = append(m.recvs[k], &pendingRecv{dst: dst, done: h.ch})
	return h
}

func (m *mailbox) abort() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.aborted = true
	for _, q := range m.recvs {
		for _, r := range q {
			close(r.done)
		}
	}
	m.recvs = make(map[msgKey][]*pendingRecv)
}

package armci

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"srumma/internal/rt"
)

// The two engine-independent failure classes: a watchdog firing means the
// ranks are still there but wedged (rt.ErrRankDeadlocked); a rank panic
// means the rank unwound and is gone (rt.ErrRankExited) — the same class
// the multi-process engine reports for a dead worker process. Callers
// route on errors.Is without knowing which engine ran the job.
func TestFailureClassUnwrap(t *testing.T) {
	wd := &WatchdogError{Timeout: time.Second, Leaked: []int{1, 3}}
	if !errors.Is(wd, rt.ErrRankDeadlocked) {
		t.Error("WatchdogError is not rt.ErrRankDeadlocked")
	}
	if errors.Is(wd, rt.ErrRankExited) {
		t.Error("WatchdogError claims rt.ErrRankExited too")
	}

	cause := fmt.Errorf("segment gone")
	rp := &RankPanicError{Rank: 2, Cause: cause}
	if !errors.Is(rp, rt.ErrRankExited) {
		t.Error("RankPanicError is not rt.ErrRankExited")
	}
	if errors.Is(rp, rt.ErrRankDeadlocked) {
		t.Error("RankPanicError claims rt.ErrRankDeadlocked too")
	}
	// The multi-branch unwrap keeps the original cause reachable.
	if !errors.Is(rp, cause) {
		t.Error("RankPanicError lost its cause")
	}

	// Non-error panic payloads still classify as rank-exited.
	rp2 := &RankPanicError{Rank: 0, Cause: "string payload"}
	if !errors.Is(rp2, rt.ErrRankExited) {
		t.Error("RankPanicError with non-error cause is not rt.ErrRankExited")
	}

	// Wrapping preserves the classification.
	wrapped := fmt.Errorf("job failed: %w", rp)
	if !errors.Is(wrapped, rt.ErrRankExited) {
		t.Error("wrapped RankPanicError lost its class")
	}
}

// TestWatchdogClassLive fires a real watchdog and checks the returned
// error classifies as a deadlock, not an exit.
func TestWatchdogClassLive(t *testing.T) {
	_, err := RunWithTimeout(rt.Topology{NProcs: 2, ProcsPerNode: 2}, 50*time.Millisecond, func(c rt.Ctx) {
		if c.Rank() == 0 {
			select {} // wedge one rank; the other blocks in Barrier
		}
		c.Barrier()
	})
	if err == nil {
		t.Fatal("wedged run succeeded")
	}
	if !errors.Is(err, rt.ErrRankDeadlocked) {
		t.Fatalf("watchdog error %v is not rt.ErrRankDeadlocked", err)
	}
	if errors.Is(err, rt.ErrRankExited) {
		t.Fatalf("watchdog error %v claims rt.ErrRankExited", err)
	}
}

package armci

import (
	"testing"

	"srumma/internal/rt"
)

// testCtx builds a standalone ctx (no Run harness) for allocation tests.
func testCtx() *ctx {
	topo := rt.Topology{NProcs: 1, ProcsPerNode: 1}
	r := &runtime{topo: topo, barrier: newBarrier(1), mbox: newMailbox(), slots: make(map[int]*collSlot)}
	return &ctx{rt: r, stats: &rt.Stats{}, kernelThreads: 1}
}

func TestLocalBufZeroedAfterReuse(t *testing.T) {
	c := testCtx()
	b := c.LocalBuf(100).(*buffer)
	for i := range b.data {
		b.data[i] = 7
	}
	c.ReleaseBuf(b)
	// The recycled buffer must come back zeroed (LocalBuf's contract) even
	// at a different length in the same size class.
	b2 := c.LocalBuf(120).(*buffer)
	if len(b2.data) != 120 {
		t.Fatalf("got %d elements, want 120", len(b2.data))
	}
	for i, v := range b2.data {
		if v != 0 {
			t.Fatalf("reused buffer dirty at %d: %g", i, v)
		}
	}
}

func TestLocalBufSteadyStateNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	c := testCtx()
	c.ReleaseBuf(c.LocalBuf(5000)) // warm the class pool
	if avg := testing.AllocsPerRun(50, func() {
		c.ReleaseBuf(c.LocalBuf(5000))
	}); avg != 0 {
		t.Fatalf("LocalBuf/ReleaseBuf cycle allocates %.1f objects, want 0", avg)
	}
}

// mustPanic runs f and fails the test unless it panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func TestReleaseBufForeignBufferPanics(t *testing.T) {
	c := testCtx()
	// A buffer LocalBuf did not produce — even one with a plausible pooled
	// capacity — must be rejected loudly: pooling it would hand aliased
	// memory to a later LocalBuf.
	mustPanic(t, "ReleaseBuf(hand-built buffer)", func() {
		c.ReleaseBuf(&buffer{data: make([]float64, 128)})
	})
}

func TestReleaseBufGlobalSegmentPanics(t *testing.T) {
	c := testCtx()
	g := c.Malloc(64)
	// Releasing a live Global segment is the catastrophic misuse: the pool
	// would hand the array under a distributed operand to the next scratch
	// request.
	mustPanic(t, "ReleaseBuf(Local(g))", func() {
		c.ReleaseBuf(c.Local(g))
	})
}

func TestReleaseBufDoubleReleasePanics(t *testing.T) {
	c := testCtx()
	b := c.LocalBuf(1000)
	c.ReleaseBuf(b)
	mustPanic(t, "second ReleaseBuf", func() {
		c.ReleaseBuf(b)
	})
	// A fresh hand-out of the same pooled header must be releasable again.
	b2 := c.LocalBuf(1000)
	c.ReleaseBuf(b2)
}

type foreignBuf struct{}

func (foreignBuf) Len() int { return 0 }

func TestReleaseBufForeignTypePanics(t *testing.T) {
	c := testCtx()
	mustPanic(t, "ReleaseBuf(foreign type)", func() {
		c.ReleaseBuf(foreignBuf{})
	})
}

// TestMailboxSteadyStateNoAlloc: after the first exchange establishes the
// queues and the payload pool, a buffered send->recv round trip must not
// allocate. This is the per-message copy the baselines pay on every panel
// broadcast step.
func TestMailboxSteadyStateNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	m := newMailbox()
	k := msgKey{src: 0, dst: 1, tag: 3}
	payload := make([]float64, 2048)
	dst := make([]float64, 2048)
	cycle := func() {
		m.send(k, payload)
		h := m.recv(k, dst)
		if !h.Done() {
			t.Fatal("buffered recv should complete immediately")
		}
	}
	cycle() // warm queue and pool
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("mailbox send/recv cycle allocates %.1f objects, want 0", avg)
	}
}

func TestMailboxPreservesOrderWithPooling(t *testing.T) {
	m := newMailbox()
	k := msgKey{src: 0, dst: 1, tag: 0}
	for i := 0; i < 8; i++ {
		m.send(k, []float64{float64(i)})
	}
	for i := 0; i < 8; i++ {
		var got [1]float64
		if h := m.recv(k, got[:]); !h.Done() {
			t.Fatalf("recv %d not immediate", i)
		}
		if got[0] != float64(i) {
			t.Fatalf("message %d delivered out of order: got %g", i, got[0])
		}
	}
}

// TestKernelThreadsDefault checks the oversubscription guard: with more
// ranks than GOMAXPROCS each rank gets exactly one kernel worker.
func TestKernelThreadsDefault(t *testing.T) {
	if got := defaultKernelThreads(1 << 20); got != 1 {
		t.Fatalf("default for huge nprocs = %d, want 1", got)
	}
	if got := defaultKernelThreads(1); got < 1 {
		t.Fatalf("default for 1 rank = %d, want >= 1", got)
	}
}

// TestSetKernelThreads exercises the rt.KernelTuner plumbing end to end on
// the real engine: a multi-threaded Gemm must produce the same numbers as
// the serial one (the parallel kernel preserves summation order).
func TestSetKernelThreads(t *testing.T) {
	topo := rt.Topology{NProcs: 1, ProcsPerNode: 1}
	var serial, parallel []float64
	for _, threads := range []int{1, 4} {
		threads := threads
		_, err := Run(topo, func(c rt.Ctx) {
			tuner := rt.FindKernelTuner(c)
			if tuner == nil {
				panic("armci ctx must implement rt.KernelTuner")
			}
			tuner.SetKernelThreads(threads)
			n := 96
			buf := c.LocalBuf(3 * n * n)
			vals := make([]float64, n*n)
			for i := range vals {
				vals[i] = float64(i%17) - 8
			}
			c.WriteBuf(buf, 0, vals)
			c.WriteBuf(buf, n*n, vals)
			am := rt.Mat{Buf: buf, Off: 0, LD: n, Rows: n, Cols: n}
			bm := rt.Mat{Buf: buf, Off: n * n, LD: n, Rows: n, Cols: n}
			cm := rt.Mat{Buf: buf, Off: 2 * n * n, LD: n, Rows: n, Cols: n}
			c.Gemm(1, am, bm, 0, cm)
			out := c.ReadBuf(buf, 2*n*n, n*n)
			if threads == 1 {
				serial = out
			} else {
				parallel = out
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("element %d: serial %g != parallel %g", i, serial[i], parallel[i])
		}
	}
}

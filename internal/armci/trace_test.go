package armci

import (
	"bytes"
	"testing"

	"srumma/internal/obs"
	"srumma/internal/rt"
)

// A traced one-shot run must produce gemm/wait/job spans on every rank's
// lane, and the export must be loadable Chrome trace JSON.
func TestRunTracedProducesSpans(t *testing.T) {
	const n = 4
	topo := rt.Topology{NProcs: n, ProcsPerNode: n}
	rec := obs.NewRecorder(n, 0)
	_, err := RunTraced(topo, rec, func(c rt.Ctx) {
		g := c.Malloc(64 * 64)
		dst := c.LocalBuf(64 * 64)
		h := c.NbGetSub(g, (c.Rank()+1)%n, 0, 64, 64, 64, dst, 0)
		cb := c.LocalBuf(64 * 64)
		m := rt.Mat{Buf: dst, LD: 64, Rows: 64, Cols: 64}
		c.Gemm(1, m, m, 0, rt.Mat{Buf: cb, LD: 64, Rows: 64, Cols: 64})
		c.Wait(h)
		c.Barrier()
		c.Free(g)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		sum := obs.Summary(rec.ByLane(r))
		if sum["gemm"] <= 0 {
			t.Fatalf("rank %d: no gemm span: %v", r, sum)
		}
		if sum["get"] <= 0 {
			t.Fatalf("rank %d: no get span: %v", r, sum)
		}
		if sum["job"] <= 0 {
			t.Fatalf("rank %d: no job span: %v", r, sum)
		}
		if sum["barrier"] <= 0 {
			t.Fatalf("rank %d: no barrier span: %v", r, sum)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, rec.Events(), n, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("real-engine trace does not validate: %v", err)
	}
}

// Successive jobs on a persistent team share the recorder's epoch, so the
// second job's spans land after the first's on one timeline.
func TestTeamRecorderSharedTimeline(t *testing.T) {
	tm := newTestTeam(t, 2)
	rec := obs.NewRecorder(2, 0)
	tm.SetRecorder(rec)
	body := func(c rt.Ctx) { c.Barrier() }
	if _, err := tm.Run(body); err != nil {
		t.Fatal(err)
	}
	first := rec.ByLane(0)
	if len(first) == 0 {
		t.Fatal("no spans from first job")
	}
	if _, err := tm.Run(body); err != nil {
		t.Fatal(err)
	}
	second := rec.ByLane(0)
	if len(second) <= len(first) {
		t.Fatal("second job added no spans")
	}
	firstEnd := first[len(first)-1].End
	if second[len(second)-1].Start < firstEnd {
		t.Fatalf("second job's spans not after the first's on the shared timeline")
	}
	// Detach: further jobs must not record.
	tm.SetRecorder(nil)
	if _, err := tm.Run(body); err != nil {
		t.Fatal(err)
	}
	if len(rec.ByLane(0)) != len(second) {
		t.Fatal("detached team still recorded")
	}
}

// With tracing off (the default), the span helpers on the one-sided hot
// path must not allocate: a serving deployment that never turns tracing on
// pays nothing for its existence.
func TestUntracedOneSidedOpsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under the race detector")
	}
	tm := newTestTeam(t, 1)
	var getAllocs, putAllocs float64
	if _, err := tm.Run(func(c rt.Ctx) {
		g := c.Malloc(64 * 64)
		dst := c.LocalBuf(64 * 64)
		getAllocs = testing.AllocsPerRun(100, func() {
			h := c.NbGetSub(g, 0, 0, 64, 64, 64, dst, 0)
			c.Wait(h)
		})
		putAllocs = testing.AllocsPerRun(100, func() {
			c.Put(dst, 0, 64*64, g, 0, 0)
		})
		c.Free(g)
	}); err != nil {
		t.Fatal(err)
	}
	if getAllocs != 0 {
		t.Fatalf("untraced NbGetSub+Wait allocates %.1f/op, want 0", getAllocs)
	}
	if putAllocs != 0 {
		t.Fatalf("untraced Put allocates %.1f/op, want 0", putAllocs)
	}
}

//go:build !race

package armci

const raceEnabled = false

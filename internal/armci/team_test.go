package armci

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"srumma/internal/rt"
)

func newTestTeam(t *testing.T, nprocs int) *Team {
	t.Helper()
	tm, err := NewTeam(rt.Topology{NProcs: nprocs, ProcsPerNode: nprocs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tm.Close() })
	return tm
}

func TestTeamSequentialJobs(t *testing.T) {
	tm := newTestTeam(t, 4)
	for job := 0; job < 50; job++ {
		var sum int64
		stats, err := tm.Run(func(c rt.Ctx) {
			g := c.Malloc(4)
			c.WriteBuf(c.Local(g), 0, []float64{float64(c.Rank())})
			c.Barrier()
			if c.Rank() == 0 {
				total := 0.0
				for r := 0; r < c.Size(); r++ {
					buf := c.LocalBuf(1)
					c.Get(g, r, 0, 1, buf, 0)
					total += c.ReadBuf(buf, 0, 1)[0]
					if rel, ok := rt.Ctx(c).(rt.BufferReleaser); ok {
						rel.ReleaseBuf(buf)
					}
				}
				atomic.StoreInt64(&sum, int64(total))
			}
			c.Barrier()
		})
		if err != nil {
			t.Fatalf("job %d: %v", job, err)
		}
		if got := atomic.LoadInt64(&sum); got != 0+1+2+3 {
			t.Fatalf("job %d: rank sum %d, want 6", job, got)
		}
		// Per-job stats must be fresh: exactly this job's traffic.
		if stats[0].GetsShared != 4 {
			t.Fatalf("job %d: rank 0 GetsShared = %d, want 4 (stats leaked across jobs?)", job, stats[0].GetsShared)
		}
	}
}

func TestTeamKernelThreadsStayWarm(t *testing.T) {
	tm := newTestTeam(t, 2)
	if _, err := tm.Run(func(c rt.Ctx) {
		c.(rt.KernelTuner).SetKernelThreads(3 + c.Rank())
	}); err != nil {
		t.Fatal(err)
	}
	// The next job on the same team sees the configuration it set.
	got := make([]int, 2)
	if _, err := tm.Run(func(c rt.Ctx) {
		got[c.Rank()] = c.(*ctx).kernelThreads
	}); err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("kernelThreads after restart = %v, want [3 4]", got)
	}
}

func TestTeamPanicLeavesTeamReusable(t *testing.T) {
	tm := newTestTeam(t, 4)
	_, err := tm.Run(func(c rt.Ctx) {
		c.Barrier()
		if c.Rank() == 2 {
			panic("boom")
		}
		c.Barrier() // survivors unwind via the aborted barrier
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2 panicked: boom") {
		t.Fatalf("want rank-2 panic error, got %v", err)
	}
	// The poisoned collectives died with the job; the team still works.
	var ok int32
	if _, err := tm.Run(func(c rt.Ctx) {
		c.Barrier()
		atomic.AddInt32(&ok, 1)
	}); err != nil {
		t.Fatalf("team unusable after panic job: %v", err)
	}
	if ok != 4 {
		t.Fatalf("%d ranks ran after panic job, want 4", ok)
	}
}

func TestTeamWatchdogLeakPoisonsTeam(t *testing.T) {
	tm := newTestTeam(t, 2)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) }) // unwedge the rank so the goroutine can exit
	_, err := tm.RunWithTimeout(50*time.Millisecond, func(c rt.Ctx) {
		if c.Rank() == 1 {
			<-release // wedged outside the runtime: unreclaimable
		}
	})
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("want WatchdogError, got %v", err)
	}
	if len(werr.Leaked) != 1 || werr.Leaked[0] != 1 {
		t.Fatalf("leaked ranks %v, want [1]", werr.Leaked)
	}
	// A team with leaked ranks must refuse further jobs...
	if _, err := tm.Run(func(rt.Ctx) {}); err == nil {
		t.Fatal("Run on a team with leaked ranks succeeded")
	}
	// ...and Close must re-report the leak (the drain watchdog).
	if cerr := tm.Close(); !errors.As(cerr, &werr) {
		t.Fatalf("Close after leak = %v, want WatchdogError", cerr)
	}
}

func TestTeamWatchdogRuntimeWedgeKeepsTeamUsable(t *testing.T) {
	tm := newTestTeam(t, 2)
	_, err := tm.RunWithTimeout(50*time.Millisecond, func(c rt.Ctx) {
		if c.Rank() == 1 {
			// Wedged INSIDE the runtime: a receive nobody sends. The abort
			// unblocks it, so the rank unwinds and nothing leaks.
			buf := c.LocalBuf(1)
			c.Recv(0, 99, buf, 0, 1)
		}
	})
	var werr *WatchdogError
	if !errors.As(err, &werr) {
		t.Fatalf("want WatchdogError, got %v", err)
	}
	if len(werr.Leaked) != 0 {
		t.Fatalf("leaked ranks %v, want none (rank was runtime-blocked)", werr.Leaked)
	}
	// Every rank unwound, so the team keeps serving.
	if _, err := tm.Run(func(c rt.Ctx) { c.Barrier() }); err != nil {
		t.Fatalf("team unusable after runtime-wedged watchdog: %v", err)
	}
}

func TestTeamCloseIdempotentAndRunAfterClose(t *testing.T) {
	tm := newTestTeam(t, 2)
	if err := tm.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := tm.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := tm.Run(func(rt.Ctx) {}); err == nil {
		t.Fatal("Run on closed team succeeded")
	}
}

func TestTeamScratchSteadyStateNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector")
	}
	tm := newTestTeam(t, 1)
	var avg float64
	if _, err := tm.Run(func(c rt.Ctx) {
		rel := c.(rt.BufferReleaser)
		rel.ReleaseBuf(c.LocalBuf(5000)) // warm the class pool
		avg = testing.AllocsPerRun(100, func() {
			rel.ReleaseBuf(c.LocalBuf(5000))
		})
	}); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("team LocalBuf/ReleaseBuf cycle allocates %.1f objects, want 0", avg)
	}
}

func TestOneShotRunnerMatchesTeam(t *testing.T) {
	topo := rt.Topology{NProcs: 3, ProcsPerNode: 3}
	run := func(r rt.Runner) []float64 {
		out := make([]float64, topo.NProcs)
		if _, err := r.Run(func(c rt.Ctx) {
			out[c.Rank()] = float64(c.Rank() * 10)
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	oneShot := run(OneShot{Topo: topo})
	tm := newTestTeam(t, 3)
	team := run(tm)
	for i := range oneShot {
		if oneShot[i] != team[i] {
			t.Fatalf("rank %d: one-shot %v vs team %v", i, oneShot, team)
		}
	}
}

// Package armci is the correctness engine: an ARMCI-like runtime in which
// every "process" is a goroutine in one address space. Collective memory
// allocation (ARMCI_Malloc), one-sided Get/Put/NbGet, direct shared-memory
// access, and a two-sided eager message layer are all implemented with real
// data movement, so algorithms running on it produce real numerical results
// that tests compare against serial dgemm.
//
// It mirrors the paper's portable implementation layer: ARMCI_Malloc returns
// the addresses of every rank's segment, ranks in the same shared-memory
// domain access each other's segments directly, and everything else goes
// through the (here trivially implemented) get/put calls.
package armci

import (
	"fmt"
	goruntime "runtime" // the package's own engine type is named runtime
	"sync"
	"time"

	"srumma/internal/mat"
	"srumma/internal/obs"
	"srumma/internal/rt"
)

// Run executes body once per rank under topo and returns per-rank stats.
// Panics inside any rank are recovered and reported as errors with rank
// context; remaining ranks may then block forever, so Run also fails fast by
// propagating the first panic after all goroutines finish or the panicking
// rank is known. (Algorithms under test are deterministic; a panic means a
// bug, and tests want the message, not a hang.)
func Run(topo rt.Topology, body func(rt.Ctx)) ([]*rt.Stats, error) {
	return RunWithTimeout(topo, 0, body)
}

// WatchdogError is returned by RunWithTimeout when the SPMD program missed
// its deadline. Leaked is the set of ranks that were still running after
// the collectives were aborted and a grace period elapsed: those ranks are
// blocked outside the runtime (or wedged in injected faults) and their
// goroutines leak until process exit. An empty Leaked set means every rank
// unwound once the collectives were aborted — the run was wedged inside
// runtime collectives only.
type WatchdogError struct {
	Timeout time.Duration
	Leaked  []int
}

func (e *WatchdogError) Error() string {
	if len(e.Leaked) > 0 {
		return fmt.Sprintf("armci: watchdog fired after %v: ranks %v still running (goroutines leaked until process exit)", e.Timeout, e.Leaked)
	}
	return fmt.Sprintf("armci: watchdog fired after %v: run was wedged in runtime collectives", e.Timeout)
}

// Unwrap marks the watchdog as the engine-independent "rank deadlocked"
// failure class: the ranks are still there, wedged past the deadline —
// as opposed to rt.ErrRankExited, where a rank is gone (the multi-process
// engine's worker-death path). Callers route on errors.Is.
func (e *WatchdogError) Unwrap() error { return rt.ErrRankDeadlocked }

// RunWithTimeout is Run with a deadlock watchdog: if the SPMD program has
// not completed within `timeout` (0 = no watchdog), the collectives are
// aborted and the returned *WatchdogError records the leaked rank set.
// Aborted ranks unwind through their next barrier or pending receive; a
// rank blocked outside the runtime cannot be reclaimed (its goroutine
// leaks until process exit), which the error records.
//
// The one-shot lifecycle is a fresh single-job Team: spawn ranks, run the
// body, drain. Team (team.go) is the persistent form serving layers use.
func RunWithTimeout(topo rt.Topology, timeout time.Duration, body func(rt.Ctx)) ([]*rt.Stats, error) {
	t, err := NewTeam(topo)
	if err != nil {
		return nil, err
	}
	stats, err := t.RunWithTimeout(timeout, body)
	if _, wedged := err.(*WatchdogError); wedged {
		// The watchdog already reported the leaked ranks; don't make the
		// caller wait out Close's grace period re-detecting them.
		t.abandon()
		return stats, err
	}
	if cerr := t.Close(); err == nil {
		err = cerr
	}
	return stats, err
}

type runtime struct {
	topo    rt.Topology
	barrier *barrier
	mbox    *mailbox
	start   time.Time

	mu    sync.Mutex
	slots map[int]*collSlot
}

// collSlot carries one collective-call exchange: every rank deposits its
// argument, rank 0 publishes the result.
type collSlot struct {
	sizes []int
	g     *global
}

func (r *runtime) slot(seq int) *collSlot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.slots[seq]
	if !ok {
		s = &collSlot{sizes: make([]int, r.topo.NProcs)}
		r.slots[seq] = s
	}
	return s
}

func (r *runtime) dropSlot(seq int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.slots, seq)
}

// defaultKernelThreads is the oversubscription guard: with nprocs SPMD
// goroutines already competing for GOMAXPROCS cores, each rank's local
// dgemm gets an equal share of the remaining parallelism (at least one
// worker). A multiply on 4 ranks of a 16-core machine thus defaults to 4
// kernel workers per rank — 16 busy goroutines total, not 64.
func defaultKernelThreads(nprocs int) int {
	return max(1, goruntime.GOMAXPROCS(0)/nprocs)
}

// DefaultKernelThreads reports the engine's oversubscription guard for an
// nprocs-rank run on this machine: the per-rank local-dgemm worker count a
// rank gets when nothing overrides it. Exposed so operator tooling
// (srumma-info) can show how a deployment will slice the machine.
func DefaultKernelThreads(nprocs int) int {
	return defaultKernelThreads(max(1, nprocs))
}

// buffer is a real float64 buffer. scratch marks buffers handed out by
// LocalBuf (the only ones ReleaseBuf accepts); released marks a scratch
// buffer currently surrendered to the pools. Together they make pooled
// scratch misuse — double release, or releasing a Global segment / mailbox
// payload — fail loudly instead of aliasing a recycled buffer into a later
// request and silently breaking LocalBuf's zeroed-buffer guarantee.
type buffer struct {
	data     []float64
	scratch  bool
	released bool
}

func (b *buffer) Len() int { return len(b.data) }

// Scratch-buffer recycling. LocalBuf rounds requests up to power-of-two
// size classes and serves them from per-class pools of *buffer, so the
// SRUMMA executor's per-multiply communication buffers (released through
// ReleaseBuf) stop hitting the allocator once warm. Both the backing array
// and the buffer header are recycled; reused memory is cleared so LocalBuf
// keeps its zeroed-buffer guarantee.
const scratchClasses = 28 // largest pooled class: 2^27 elements = 1 GiB

var scratchPools [scratchClasses]sync.Pool

// sizeClass returns the smallest c with 1<<c >= n (n >= 1).
func sizeClass(n int) int {
	c := 0
	for 1<<c < n {
		c++
	}
	return c
}

// global is a collectively allocated set of per-rank segments. accMu
// serializes accumulate operations (ARMCI guarantees Acc atomicity with
// respect to other Accs on the same array).
type global struct {
	id    int
	segs  []*buffer
	accMu sync.Mutex
}

func (g *global) LenAt(rank int) int { return len(g.segs[rank].data) }

// doneHandle is an already-completed nonblocking operation.
type doneHandle struct{}

func (doneHandle) Done() bool { return true }

// chanHandle completes when ch is closed.
type chanHandle struct {
	ch chan struct{}
}

func (h *chanHandle) Done() bool {
	select {
	case <-h.ch:
		return true
	default:
		return false
	}
}

type ctx struct {
	rt      *runtime
	rank    int
	stats   *rt.Stats
	collSeq int
	// kernelThreads is the local-dgemm worker count (rt.KernelTuner);
	// only this rank's goroutine touches it.
	kernelThreads int
	// rec receives wall-clock spans when tracing is on (nil otherwise —
	// the default, in which case every span helper is a pointer compare).
	rec *obs.Recorder
}

// ObsRecorder implements rt.Recorded: algorithm layers (the executor's
// fetch-issue spans) discover this rank's recorder through the Ctx.
func (c *ctx) ObsRecorder() *obs.Recorder { return c.rec }

// spanStart returns time.Now when tracing is on, the zero time otherwise.
// Ops that do not already read the clock for stats use it so the disabled
// path never touches the clock.
func (c *ctx) spanStart() time.Time {
	if c.rec == nil {
		return time.Time{}
	}
	return time.Now()
}

// span records one wall-clock interval ending now on this rank's lane.
func (c *ctx) span(k obs.Kind, t0 time.Time) {
	if c.rec == nil || t0.IsZero() {
		return
	}
	c.rec.RecordWall(c.rank, k, t0, time.Now())
}

func (c *ctx) Rank() int         { return c.rank }
func (c *ctx) Size() int         { return c.rt.topo.NProcs }
func (c *ctx) Topo() rt.Topology { return c.rt.topo }
func (c *ctx) Now() float64      { return time.Since(c.rt.start).Seconds() }
func (c *ctx) Stats() *rt.Stats  { return c.stats }

func (c *ctx) Malloc(elems int) rt.Global {
	if elems < 0 {
		panic(fmt.Sprintf("armci: Malloc(%d)", elems))
	}
	seq := c.collSeq
	c.collSeq++
	s := c.rt.slot(seq)
	s.sizes[c.rank] = elems
	c.Barrier()
	if c.rank == 0 {
		g := &global{id: seq, segs: make([]*buffer, c.Size())}
		for i, n := range s.sizes {
			g.segs[i] = &buffer{data: make([]float64, n)}
		}
		s.g = g
	}
	c.Barrier()
	g := s.g
	if c.rank == 0 {
		c.rt.dropSlot(seq)
	}
	return g
}

func (c *ctx) Free(g rt.Global) {
	// Real memory is garbage collected; Free only keeps the collective
	// call-sequence aligned across engines.
	c.collSeq++
	c.Barrier()
}

func (c *ctx) LocalBuf(elems int) rt.Buffer {
	c.stats.ScratchBytes += int64(elems) * 8
	if elems <= 0 {
		return &buffer{scratch: true}
	}
	cls := sizeClass(elems)
	if cls >= scratchClasses {
		return &buffer{data: make([]float64, elems), scratch: true}
	}
	if v := scratchPools[cls].Get(); v != nil {
		b := v.(*buffer)
		b.data = b.data[:elems]
		clear(b.data)
		b.scratch, b.released = true, false
		return b
	}
	b := &buffer{data: make([]float64, 1<<cls), scratch: true}
	b.data = b.data[:elems]
	return b
}

// ReleaseBuf returns a LocalBuf scratch buffer to the size-class pools
// (rt.BufferReleaser). Only buffers LocalBuf itself handed out are
// accepted, exactly once: releasing a foreign buffer (a Global segment, a
// mailbox payload, another engine's type) or the same buffer twice panics,
// because pooling either would alias live or recycled memory into a later
// LocalBuf and corrupt its zeroed-buffer guarantee. Oversized buffers
// (beyond the largest pooled class) are accepted and fall through to the
// garbage collector.
func (c *ctx) ReleaseBuf(buf rt.Buffer) {
	b, ok := buf.(*buffer)
	if !ok {
		panic(fmt.Sprintf("armci: ReleaseBuf of foreign buffer type %T", buf))
	}
	if !b.scratch {
		panic("armci: ReleaseBuf of a buffer LocalBuf did not produce (Global segment or mailbox payload?)")
	}
	if b.released {
		panic("armci: double ReleaseBuf of the same scratch buffer")
	}
	b.released = true
	cp := cap(b.data)
	if cp == 0 || cp&(cp-1) != 0 {
		return
	}
	cls := sizeClass(cp)
	if cls >= scratchClasses {
		return
	}
	b.data = b.data[:cp]
	scratchPools[cls].Put(b)
}

// SetKernelThreads implements rt.KernelTuner: it sets how many goroutines
// this rank's Gemm calls may use (n <= 0 restores the engine default).
func (c *ctx) SetKernelThreads(n int) {
	if n <= 0 {
		n = defaultKernelThreads(c.rt.topo.NProcs)
	}
	c.kernelThreads = n
}

func (c *ctx) Local(g rt.Global) rt.Buffer {
	return g.(*global).segs[c.rank]
}

func (c *ctx) CanDirect(rank int) bool {
	return c.rt.topo.SameDomain(c.rank, rank)
}

func (c *ctx) Direct(g rt.Global, rank int) rt.Buffer {
	if !c.CanDirect(rank) {
		panic(fmt.Sprintf("armci: rank %d cannot direct-access rank %d (different domains)", c.rank, rank))
	}
	return g.(*global).segs[rank]
}

func (c *ctx) get(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) {
	t0 := c.spanStart()
	src := g.(*global).segs[rank].data
	d := dst.(*buffer).data
	if off < 0 || off+n > len(src) || dstOff < 0 || dstOff+n > len(d) {
		panic(fmt.Sprintf("armci: Get range [%d,%d) of %d -> [%d,%d) of %d",
			off, off+n, len(src), dstOff, dstOff+n, len(d)))
	}
	copy(d[dstOff:dstOff+n], src[off:off+n])
	c.span(obs.KindGet, t0)
	if c.rt.topo.SameDomain(c.rank, rank) {
		c.stats.BytesShared += int64(n) * 8
		c.stats.GetsShared++
	} else {
		c.stats.BytesRemote += int64(n) * 8
		c.stats.GetsRemote++
	}
}

func (c *ctx) Get(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) {
	c.get(g, rank, off, n, dst, dstOff)
}

func (c *ctx) NbGet(g rt.Global, rank, off, n int, dst rt.Buffer, dstOff int) rt.Handle {
	// In a single address space the copy is the whole operation; completing
	// it eagerly satisfies the nonblocking contract (Wait is a no-op).
	c.get(g, rank, off, n, dst, dstOff)
	return doneHandle{}
}

func (c *ctx) NbGetSub(g rt.Global, rank, off, ld, rows, cols int, dst rt.Buffer, dstOff int) rt.Handle {
	t0 := c.spanStart()
	src := g.(*global).segs[rank].data
	d := dst.(*buffer).data
	if rows < 0 || cols < 0 || ld < cols || off < 0 {
		panic(fmt.Sprintf("armci: NbGetSub malformed region %dx%d ld=%d off=%d", rows, cols, ld, off))
	}
	if rows > 0 && cols > 0 {
		if last := off + (rows-1)*ld + cols; last > len(src) {
			panic(fmt.Sprintf("armci: NbGetSub region ends at %d of %d", last, len(src)))
		}
	}
	if dstOff < 0 || dstOff+rows*cols > len(d) {
		panic(fmt.Sprintf("armci: NbGetSub dst [%d,%d) of %d", dstOff, dstOff+rows*cols, len(d)))
	}
	for r := 0; r < rows; r++ {
		copy(d[dstOff+r*cols:dstOff+(r+1)*cols], src[off+r*ld:off+r*ld+cols])
	}
	n := int64(rows*cols) * 8
	if c.rt.topo.SameDomain(c.rank, rank) {
		c.stats.BytesShared += n
		c.stats.GetsShared++
	} else {
		c.stats.BytesRemote += n
		c.stats.GetsRemote++
	}
	c.span(obs.KindGet, t0)
	return doneHandle{}
}

func (c *ctx) Put(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) {
	t0 := c.spanStart()
	s := src.(*buffer).data
	d := g.(*global).segs[rank].data
	if srcOff < 0 || srcOff+n > len(s) || off < 0 || off+n > len(d) {
		panic(fmt.Sprintf("armci: Put range [%d,%d) of %d -> [%d,%d) of %d",
			srcOff, srcOff+n, len(s), off, off+n, len(d)))
	}
	copy(d[off:off+n], s[srcOff:srcOff+n])
	c.stats.Puts++
	if c.rt.topo.SameDomain(c.rank, rank) {
		c.stats.BytesShared += int64(n) * 8
	} else {
		c.stats.BytesRemote += int64(n) * 8
	}
	c.span(obs.KindPut, t0)
}

func (c *ctx) NbPut(src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) rt.Handle {
	// Single address space: the copy completes eagerly, like NbGet.
	c.Put(src, srcOff, n, g, rank, off)
	return doneHandle{}
}

func (c *ctx) NbPutSub(src rt.Buffer, srcOff int, g rt.Global, rank, off, ld, rows, cols int) rt.Handle {
	t0 := c.spanStart()
	s := src.(*buffer).data
	d := g.(*global).segs[rank].data
	if rows < 0 || cols < 0 || ld < cols || off < 0 {
		panic(fmt.Sprintf("armci: NbPutSub malformed region %dx%d ld=%d off=%d", rows, cols, ld, off))
	}
	if rows > 0 && cols > 0 {
		if last := off + (rows-1)*ld + cols; last > len(d) {
			panic(fmt.Sprintf("armci: NbPutSub region ends at %d of %d", last, len(d)))
		}
	}
	if srcOff < 0 || srcOff+rows*cols > len(s) {
		panic(fmt.Sprintf("armci: NbPutSub src [%d,%d) of %d", srcOff, srcOff+rows*cols, len(s)))
	}
	for r := 0; r < rows; r++ {
		copy(d[off+r*ld:off+r*ld+cols], s[srcOff+r*cols:srcOff+(r+1)*cols])
	}
	bytes := int64(rows*cols) * 8
	c.stats.Puts++
	if c.rt.topo.SameDomain(c.rank, rank) {
		c.stats.BytesShared += bytes
	} else {
		c.stats.BytesRemote += bytes
	}
	c.span(obs.KindPut, t0)
	return doneHandle{}
}

func (c *ctx) Acc(alpha float64, src rt.Buffer, srcOff, n int, g rt.Global, rank, off int) {
	t0 := c.spanStart()
	gg := g.(*global)
	s := src.(*buffer).data
	d := gg.segs[rank].data
	if srcOff < 0 || srcOff+n > len(s) || off < 0 || off+n > len(d) {
		panic(fmt.Sprintf("armci: Acc range [%d,%d) of %d -> [%d,%d) of %d",
			srcOff, srcOff+n, len(s), off, off+n, len(d)))
	}
	gg.accMu.Lock()
	for i := 0; i < n; i++ {
		d[off+i] += alpha * s[srcOff+i]
	}
	gg.accMu.Unlock()
	c.stats.Puts++
	if c.rt.topo.SameDomain(c.rank, rank) {
		c.stats.BytesShared += int64(n) * 8
	} else {
		c.stats.BytesRemote += int64(n) * 8
	}
	c.span(obs.KindPut, t0)
}

func (c *ctx) FetchAdd(g rt.Global, rank, off int, delta float64) float64 {
	gg := g.(*global)
	d := gg.segs[rank].data
	if off < 0 || off >= len(d) {
		panic(fmt.Sprintf("armci: FetchAdd offset %d of %d", off, len(d)))
	}
	gg.accMu.Lock()
	old := d[off]
	d[off] = old + delta
	gg.accMu.Unlock()
	c.stats.Puts++
	if c.rt.topo.SameDomain(c.rank, rank) {
		c.stats.BytesShared += 8
	} else {
		c.stats.BytesRemote += 8
	}
	return old
}

func (c *ctx) Wait(h rt.Handle) {
	switch v := h.(type) {
	case doneHandle:
	case *chanHandle:
		t0 := time.Now()
		<-v.ch
		c.stats.WaitTime += time.Since(t0).Seconds()
		c.span(obs.KindWait, t0)
	default:
		panic(fmt.Sprintf("armci: Wait on foreign handle %T", h))
	}
}

func (c *ctx) Send(to, tag int, src rt.Buffer, off, n int) {
	s := src.(*buffer).data
	if off < 0 || off+n > len(s) {
		panic(fmt.Sprintf("armci: Send range [%d,%d) of %d", off, off+n, len(s)))
	}
	c.stats.Msgs++
	c.stats.MsgBytes += int64(n) * 8
	t0 := c.spanStart()
	c.rt.mbox.send(msgKey{c.rank, to, tag}, s[off:off+n])
	c.span(obs.KindCopy, t0)
}

func (c *ctx) Isend(to, tag int, src rt.Buffer, off, n int) rt.Handle {
	// The eager mailbox buffers the payload, so the send completes locally.
	c.Send(to, tag, src, off, n)
	return doneHandle{}
}

func (c *ctx) Irecv(from, tag int, dst rt.Buffer, off, n int) rt.Handle {
	d := dst.(*buffer).data
	if off < 0 || off+n > len(d) {
		panic(fmt.Sprintf("armci: Irecv range [%d,%d) of %d", off, off+n, len(d)))
	}
	return c.rt.mbox.recv(msgKey{from, c.rank, tag}, d[off:off+n])
}

func (c *ctx) Recv(from, tag int, dst rt.Buffer, off, n int) {
	c.Wait(c.Irecv(from, tag, dst, off, n))
}

func (c *ctx) Barrier() {
	t0 := time.Now()
	c.rt.barrier.await()
	c.stats.BarrierTime += time.Since(t0).Seconds()
	c.span(obs.KindBarrier, t0)
}

func (c *ctx) matView(m rt.Mat) *mat.Matrix {
	if err := m.Valid(); err != nil {
		panic(err)
	}
	b := m.Buf.(*buffer)
	end := m.Off
	if m.Rows > 0 && m.Cols > 0 {
		end = m.Off + (m.Rows-1)*m.LD + m.Cols
	}
	return &mat.Matrix{Rows: m.Rows, Cols: m.Cols, Stride: m.LD, Data: b.data[m.Off:end]}
}

func (c *ctx) Gemm(alpha float64, a, b rt.Mat, beta float64, cm rt.Mat) {
	t0 := time.Now()
	am, bm, cmm := c.matView(a), c.matView(b), c.matView(cm)
	var err error
	if c.kernelThreads > 1 {
		err = mat.GemmParallel(c.kernelThreads, a.Trans, b.Trans, alpha, am, bm, beta, cmm)
	} else {
		err = mat.Gemm(a.Trans, b.Trans, alpha, am, bm, beta, cmm)
	}
	if err != nil {
		panic(fmt.Sprintf("armci: Gemm: %v", err))
	}
	m, _ := a.OpShape()
	_, n := b.OpShape()
	k := a.Cols
	if a.Trans {
		k = a.Rows
	}
	c.stats.Flops += 2 * float64(m) * float64(n) * float64(k)
	c.stats.ComputeTime += time.Since(t0).Seconds()
	c.span(obs.KindGemm, t0)
}

func (c *ctx) Pack(src rt.Mat, dst rt.Buffer, dstOff int) {
	t0 := time.Now()
	sm := c.matView(src)
	d := dst.(*buffer).data
	need := src.Rows * src.Cols
	if dstOff < 0 || dstOff+need > len(d) {
		panic(fmt.Sprintf("armci: Pack needs [%d,%d) of %d", dstOff, dstOff+need, len(d)))
	}
	mat.PackInto(d[dstOff:dstOff+need], sm, 0, 0, src.Rows, src.Cols)
	c.stats.PackTime += time.Since(t0).Seconds()
	c.span(obs.KindPack, t0)
}

func (c *ctx) Unpack(src rt.Buffer, srcOff int, dst rt.Mat) {
	t0 := time.Now()
	dm := c.matView(dst)
	s := src.(*buffer).data
	need := dst.Rows * dst.Cols
	if srcOff < 0 || srcOff+need > len(s) {
		panic(fmt.Sprintf("armci: Unpack needs [%d,%d) of %d", srcOff, srcOff+need, len(s)))
	}
	mat.UnpackFrom(dm, s[srcOff:srcOff+need], 0, 0, dst.Rows, dst.Cols)
	c.stats.PackTime += time.Since(t0).Seconds()
	c.span(obs.KindPack, t0)
}

func (c *ctx) UnpackTranspose(src rt.Buffer, srcOff int, dst rt.Mat) {
	t0 := time.Now()
	dm := c.matView(dst)
	s := src.(*buffer).data
	need := dst.Rows * dst.Cols
	if srcOff < 0 || srcOff+need > len(s) {
		panic(fmt.Sprintf("armci: UnpackTranspose needs [%d,%d) of %d", srcOff, srcOff+need, len(s)))
	}
	mat.UnpackTransposeFrom(dm, s[srcOff:srcOff+need], 0, 0, dst.Rows, dst.Cols)
	c.stats.PackTime += time.Since(t0).Seconds()
	c.span(obs.KindPack, t0)
}

// ChecksumRegion checksums the rows x cols region at element off of rank's
// segment of g (rows ld apart) in packed row-major order, directly from
// the authoritative source data. This is the engine capability behind the
// fault-tolerance layer's end-to-end payload verification (the "sender
// side" checksum of internal/faults): an injected drop or bit flip only
// perturbs the landed copy, so the source checksum stays authoritative.
func (c *ctx) ChecksumRegion(g rt.Global, rank, off, ld, rows, cols int) uint64 {
	src := g.(*global).segs[rank].data
	if rows < 0 || cols < 0 || ld < cols || off < 0 {
		panic(fmt.Sprintf("armci: ChecksumRegion malformed region %dx%d ld=%d off=%d", rows, cols, ld, off))
	}
	if rows > 0 && cols > 0 {
		if last := off + (rows-1)*ld + cols; last > len(src) {
			panic(fmt.Sprintf("armci: ChecksumRegion region ends at %d of %d", last, len(src)))
		}
	}
	h := rt.ChecksumSeed()
	for r := 0; r < rows; r++ {
		for _, v := range src[off+r*ld : off+r*ld+cols] {
			h = rt.ChecksumAdd(h, v)
		}
	}
	return h
}

func (c *ctx) WriteBuf(dst rt.Buffer, off int, vals []float64) {
	d := dst.(*buffer).data
	if off < 0 || off+len(vals) > len(d) {
		panic(fmt.Sprintf("armci: WriteBuf range [%d,%d) of %d", off, off+len(vals), len(d)))
	}
	copy(d[off:], vals)
}

func (c *ctx) ReadBuf(src rt.Buffer, off, n int) []float64 {
	s := src.(*buffer).data
	if off < 0 || off+n > len(s) {
		panic(fmt.Sprintf("armci: ReadBuf range [%d,%d) of %d", off, off+n, len(s)))
	}
	out := make([]float64, n)
	copy(out, s[off:off+n])
	return out
}

var (
	_ rt.Ctx            = (*ctx)(nil)
	_ rt.KernelTuner    = (*ctx)(nil)
	_ rt.BufferReleaser = (*ctx)(nil)
	_ rt.Recorded       = (*ctx)(nil)
)

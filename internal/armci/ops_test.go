package armci

import (
	"strings"
	"testing"

	"srumma/internal/rt"
)

func TestNbGetSubStrided(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		g := c.Malloc(20) // a 4x5 block at the owner
		if c.Rank() == 1 {
			vals := make([]float64, 20)
			for i := range vals {
				vals[i] = float64(i)
			}
			c.WriteBuf(c.Local(g), 0, vals)
		}
		c.Barrier()
		if c.Rank() == 0 {
			// Fetch the 2x3 sub-block at (1,1): elements 6,7,8,11,12,13.
			dst := c.LocalBuf(6)
			c.Wait(c.NbGetSub(g, 1, 1*5+1, 5, 2, 3, dst, 0))
			got := c.ReadBuf(dst, 0, 6)
			want := []float64{6, 7, 8, 11, 12, 13}
			for i, w := range want {
				if got[i] != w {
					t.Errorf("sub[%d] = %v, want %v", i, got[i], w)
				}
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNbPutAndNbPutSub(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		g := c.Malloc(20)
		c.Barrier()
		if c.Rank() == 0 {
			src := c.LocalBuf(4)
			c.WriteBuf(src, 0, []float64{9, 8, 7, 6})
			c.Wait(c.NbPut(src, 0, 4, g, 1, 2))
			// Strided put: scatter a 2x2 block at (2,3) of the 4x5 layout.
			blk := c.LocalBuf(4)
			c.WriteBuf(blk, 0, []float64{1, 2, 3, 4})
			c.Wait(c.NbPutSub(blk, 0, g, 1, 2*5+3, 5, 2, 2))
		}
		c.Barrier()
		if c.Rank() == 1 {
			got := c.ReadBuf(c.Local(g), 0, 20)
			if got[2] != 9 || got[5] != 6 {
				t.Errorf("contiguous put wrong: %v", got[:6])
			}
			if got[13] != 1 || got[14] != 2 || got[18] != 3 || got[19] != 4 {
				t.Errorf("strided put wrong: %v", got[13:])
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAccAccumulates(t *testing.T) {
	_, err := Run(topo(3, 1, false), func(c rt.Ctx) {
		g := c.Malloc(4)
		c.Barrier()
		src := c.LocalBuf(4)
		c.WriteBuf(src, 0, []float64{1, 1, 1, 1})
		c.Acc(float64(c.Rank()+1), src, 0, 4, g, 0, 0) // +1, +2, +3
		c.Barrier()
		if c.Rank() == 0 {
			got := c.ReadBuf(c.Local(g), 0, 4)
			for i, v := range got {
				if v != 6 {
					t.Errorf("acc[%d] = %v, want 6", i, v)
				}
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFetchAddLinearizable(t *testing.T) {
	const nprocs, per = 6, 50
	_, err := Run(topo(nprocs, 2, false), func(c rt.Ctx) {
		g := c.Malloc(1)
		c.Barrier()
		seen := make(map[int]bool)
		for i := 0; i < per; i++ {
			v := int(c.FetchAdd(g, 0, 0, 1))
			if seen[v] {
				t.Errorf("rank %d saw duplicate ticket %d", c.Rank(), v)
			}
			seen[v] = true
		}
		c.Barrier()
		if c.Rank() == 0 {
			final := c.ReadBuf(c.Local(g), 0, 1)[0]
			if final != nprocs*per {
				t.Errorf("final counter %v, want %d", final, nprocs*per)
			}
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnpackTransposeThroughCtx(t *testing.T) {
	_, err := Run(topo(1, 1, false), func(c rt.Ctx) {
		// Packed 3x2 block (the transpose source for a 2x3 view).
		src := c.LocalBuf(6)
		c.WriteBuf(src, 0, []float64{1, 2, 3, 4, 5, 6}) // 3 rows x 2 cols
		dst := c.LocalBuf(6)
		c.UnpackTranspose(src, 0, rt.Mat{Buf: dst, LD: 3, Rows: 2, Cols: 3})
		got := c.ReadBuf(dst, 0, 6)
		// dst(i,j) = src(j,i): row0 = 1,3,5; row1 = 2,4,6.
		want := []float64{1, 3, 5, 2, 4, 6}
		for i, w := range want {
			if got[i] != w {
				t.Fatalf("got %v, want %v", got, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMiscAccessors(t *testing.T) {
	_, err := Run(topo(2, 2, true), func(c rt.Ctx) {
		if c.Topo().NProcs != 2 || !c.Topo().DomainSpansMachine {
			t.Error("Topo wrong")
		}
		if c.Now() < 0 {
			t.Error("Now negative")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpsRangeErrors(t *testing.T) {
	for name, body := range map[string]func(c rt.Ctx){
		"NbGetSub-overrun": func(c rt.Ctx) {
			g := c.Malloc(10)
			c.NbGetSub(g, 0, 5, 5, 2, 3, c.LocalBuf(6), 0)
		},
		"NbPutSub-overrun": func(c rt.Ctx) {
			g := c.Malloc(10)
			c.NbPutSub(c.LocalBuf(6), 0, g, 0, 5, 5, 2, 3)
		},
		"Acc-overrun": func(c rt.Ctx) {
			g := c.Malloc(4)
			c.Acc(1, c.LocalBuf(8), 0, 8, g, 0, 0)
		},
		"FetchAdd-offset": func(c rt.Ctx) {
			g := c.Malloc(2)
			c.FetchAdd(g, 0, 5, 1)
		},
	} {
		_, err := Run(topo(1, 1, false), body)
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

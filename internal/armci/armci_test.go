package armci

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"srumma/internal/mat"
	"srumma/internal/rt"
)

func topo(n, ppn int, span bool) rt.Topology {
	return rt.Topology{NProcs: n, ProcsPerNode: ppn, DomainSpansMachine: span}
}

func TestRunValidatesTopology(t *testing.T) {
	if _, err := Run(topo(0, 1, false), func(rt.Ctx) {}); err == nil {
		t.Fatal("expected error for 0 procs")
	}
}

func TestRankAndSize(t *testing.T) {
	var seen [4]int32
	_, err := Run(topo(4, 2, false), func(c rt.Ctx) {
		if c.Size() != 4 {
			t.Errorf("Size = %d", c.Size())
		}
		atomic.AddInt32(&seen[c.Rank()], 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range seen {
		if n != 1 {
			t.Fatalf("rank %d ran %d times", r, n)
		}
	}
}

func TestMallocGetPut(t *testing.T) {
	_, err := Run(topo(4, 2, false), func(c rt.Ctx) {
		g := c.Malloc(8)
		local := c.Local(g).(*buffer)
		for i := range local.data {
			local.data[i] = float64(c.Rank()*100 + i)
		}
		c.Barrier()
		// Every rank reads rank (r+1)%4's segment.
		src := (c.Rank() + 1) % 4
		dst := c.LocalBuf(8)
		c.Get(g, src, 0, 8, dst, 0)
		for i, v := range dst.(*buffer).data {
			if v != float64(src*100+i) {
				t.Errorf("rank %d got %v at %d, want %d", c.Rank(), v, i, src*100+i)
			}
		}
		c.Barrier()
		// Rank 0 puts into rank 3's segment tail.
		if c.Rank() == 0 {
			b := c.LocalBuf(2).(*buffer)
			b.data[0], b.data[1] = -1, -2
			c.Put(b, 0, 2, g, 3, 6)
		}
		c.Barrier()
		if c.Rank() == 3 {
			if local.data[6] != -1 || local.data[7] != -2 {
				t.Errorf("put did not land: %v", local.data[6:])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMallocDifferentSizes(t *testing.T) {
	_, err := Run(topo(3, 1, false), func(c rt.Ctx) {
		g := c.Malloc(10 * (c.Rank() + 1))
		for r := 0; r < 3; r++ {
			if g.LenAt(r) != 10*(r+1) {
				t.Errorf("LenAt(%d) = %d", r, g.LenAt(r))
			}
		}
		c.Free(g)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNbGetCompletesBeforeWait(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		g := c.Malloc(4)
		c.Local(g).(*buffer).data[0] = float64(c.Rank() + 1)
		c.Barrier()
		dst := c.LocalBuf(4)
		h := c.NbGet(g, 1-c.Rank(), 0, 1, dst, 0)
		if !h.Done() {
			t.Error("real-engine NbGet should complete eagerly")
		}
		c.Wait(h)
		if dst.(*buffer).data[0] != float64(2-c.Rank()) {
			t.Errorf("rank %d read %v", c.Rank(), dst.(*buffer).data[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirectAccessSameDomain(t *testing.T) {
	_, err := Run(topo(4, 2, false), func(c rt.Ctx) {
		g := c.Malloc(1)
		c.Local(g).(*buffer).data[0] = float64(c.Rank())
		c.Barrier()
		buddy := c.Rank() ^ 1 // same node under ppn=2
		if !c.CanDirect(buddy) {
			t.Errorf("rank %d cannot direct-access node buddy %d", c.Rank(), buddy)
		}
		if v := c.Direct(g, buddy).(*buffer).data[0]; v != float64(buddy) {
			t.Errorf("direct read %v, want %d", v, buddy)
		}
		other := (c.Rank() + 2) % 4 // other node
		if c.CanDirect(other) {
			t.Errorf("rank %d should not direct-access %d across nodes", c.Rank(), other)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDirectAcrossDomainsPanics(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		g := c.Malloc(1)
		c.Barrier()
		if c.Rank() == 0 {
			c.Direct(g, 1)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "direct-access") {
		t.Fatalf("err = %v", err)
	}
}

func TestDomainSpansMachine(t *testing.T) {
	_, err := Run(topo(4, 2, true), func(c rt.Ctx) {
		for r := 0; r < 4; r++ {
			if !c.CanDirect(r) {
				t.Errorf("rank %d cannot direct-access %d on shared machine", c.Rank(), r)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		b := c.LocalBuf(3).(*buffer)
		if c.Rank() == 0 {
			b.data[0], b.data[1], b.data[2] = 1, 2, 3
			c.Send(1, 7, b, 0, 3)
		} else {
			c.Recv(0, 7, b, 0, 3)
			if b.data[0] != 1 || b.data[2] != 3 {
				t.Errorf("recv got %v", b.data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessagesNonOvertaking(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		b := c.LocalBuf(1).(*buffer)
		if c.Rank() == 0 {
			for i := 0; i < 10; i++ {
				b.data[0] = float64(i)
				c.Send(1, 0, b, 0, 1)
			}
		} else {
			for i := 0; i < 10; i++ {
				c.Recv(0, 0, b, 0, 1)
				if b.data[0] != float64(i) {
					t.Errorf("message %d arrived as %v", i, b.data[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsSeparateStreams(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		b := c.LocalBuf(1).(*buffer)
		if c.Rank() == 0 {
			b.data[0] = 10
			c.Send(1, 1, b, 0, 1)
			b.data[0] = 20
			c.Send(1, 2, b, 0, 1)
		} else {
			// Receive tag 2 first even though tag 1 was sent first.
			c.Recv(0, 2, b, 0, 1)
			if b.data[0] != 20 {
				t.Errorf("tag 2 got %v", b.data[0])
			}
			c.Recv(0, 1, b, 0, 1)
			if b.data[0] != 10 {
				t.Errorf("tag 1 got %v", b.data[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecv(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		b := c.LocalBuf(1).(*buffer)
		if c.Rank() == 0 {
			b.data[0] = 42
			c.Wait(c.Isend(1, 0, b, 0, 1))
		} else {
			h := c.Irecv(0, 0, b, 0, 1)
			c.Wait(h)
			if !h.Done() || b.data[0] != 42 {
				t.Errorf("irecv got %v done=%v", b.data[0], h.Done())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGemmExecutesForReal(t *testing.T) {
	a := mat.Random(6, 5, 1)
	bm := mat.Random(5, 7, 2)
	want := mat.New(6, 7)
	if err := mat.GemmNaive(false, false, 2, a, bm, 0, want); err != nil {
		t.Fatal(err)
	}
	_, err := Run(topo(1, 1, false), func(c rt.Ctx) {
		ab := c.LocalBuf(30).(*buffer)
		bb := c.LocalBuf(35).(*buffer)
		cb := c.LocalBuf(42).(*buffer)
		copy(ab.data, a.Data)
		copy(bb.data, bm.Data)
		c.Gemm(2,
			rt.Mat{Buf: ab, LD: 5, Rows: 6, Cols: 5},
			rt.Mat{Buf: bb, LD: 7, Rows: 5, Cols: 7},
			0,
			rt.Mat{Buf: cb, LD: 7, Rows: 6, Cols: 7})
		got := mat.FromData(6, 7, cb.data)
		if d := mat.MaxAbsDiff(got, want); d > 1e-12 {
			t.Errorf("gemm diff %g", d)
		}
		if c.Stats().Flops != 2*6*7*5 {
			t.Errorf("flops = %v", c.Stats().Flops)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackThroughCtx(t *testing.T) {
	_, err := Run(topo(1, 1, false), func(c rt.Ctx) {
		src := c.LocalBuf(20).(*buffer)
		for i := range src.data {
			src.data[i] = float64(i)
		}
		// View rows 1..2, cols 1..3 of a 4x5 layout.
		v := rt.Mat{Buf: src, Off: 1*5 + 1, LD: 5, Rows: 2, Cols: 3}
		packed := c.LocalBuf(6)
		c.Pack(v, packed, 0)
		want := []float64{6, 7, 8, 11, 12, 13}
		for i, w := range want {
			if packed.(*buffer).data[i] != w {
				t.Fatalf("packed[%d] = %v, want %v", i, packed.(*buffer).data[i], w)
			}
		}
		dst := c.LocalBuf(20)
		dv := rt.Mat{Buf: dst, Off: 1*5 + 1, LD: 5, Rows: 2, Cols: 3}
		c.Unpack(packed, 0, dv)
		if dst.(*buffer).data[6] != 6 || dst.(*buffer).data[13] != 13 || dst.(*buffer).data[0] != 0 {
			t.Fatalf("unpack wrong: %v", dst.(*buffer).data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsClassifySharedVsRemote(t *testing.T) {
	stats, err := Run(topo(4, 2, false), func(c rt.Ctx) {
		g := c.Malloc(4)
		c.Barrier()
		dst := c.LocalBuf(4)
		if c.Rank() == 0 {
			c.Get(g, 1, 0, 4, dst, 0) // same node (ppn=2)
			c.Get(g, 2, 0, 4, dst, 0) // other node
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].BytesShared != 32 || stats[0].BytesRemote != 32 {
		t.Fatalf("stats = %+v", stats[0])
	}
	if stats[0].GetsShared != 1 || stats[0].GetsRemote != 1 {
		t.Fatalf("get counts = %+v", stats[0])
	}
}

func TestPanicPropagatesWithRank(t *testing.T) {
	_, err := Run(topo(3, 1, false), func(c rt.Ctx) {
		c.Barrier()
		if c.Rank() == 2 {
			panic("kaboom")
		}
		c.Barrier() // others must not hang after the abort
	})
	if err == nil || !strings.Contains(err.Error(), "rank 2") || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestGetRangeChecked(t *testing.T) {
	_, err := Run(topo(2, 1, false), func(c rt.Ctx) {
		g := c.Malloc(4)
		c.Barrier()
		dst := c.LocalBuf(4)
		c.Get(g, 0, 2, 4, dst, 0) // overruns the 4-element segment
	})
	if err == nil || !strings.Contains(err.Error(), "Get range") {
		t.Fatalf("err = %v", err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	var flag int32
	_, err := Run(topo(8, 4, false), func(c rt.Ctx) {
		if c.Rank() == 0 {
			atomic.StoreInt32(&flag, 1)
		}
		c.Barrier()
		if atomic.LoadInt32(&flag) != 1 {
			t.Error("barrier did not order the store")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogFiresOnDeadlock(t *testing.T) {
	_, err := RunWithTimeout(topo(2, 1, false), 50*time.Millisecond, func(c rt.Ctx) {
		if c.Rank() == 0 {
			c.Recv(1, 0, c.LocalBuf(4), 0, 4) // never sent: wedged in the runtime
		}
	})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("err = %v", err)
	}
}

func TestWatchdogQuietOnSuccess(t *testing.T) {
	_, err := RunWithTimeout(topo(4, 2, false), 5*time.Second, func(c rt.Ctx) {
		g := c.Malloc(16)
		c.Barrier()
		c.Get(g, (c.Rank()+1)%4, 0, 16, c.LocalBuf(16), 0)
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogNamesStuckRank(t *testing.T) {
	stall := make(chan struct{})
	defer close(stall)
	_, err := RunWithTimeout(topo(2, 1, false), 50*time.Millisecond, func(c rt.Ctx) {
		if c.Rank() == 1 {
			<-stall // blocked outside the runtime: cannot be reclaimed
		}
	})
	if err == nil || !strings.Contains(err.Error(), "[1]") {
		t.Fatalf("err = %v", err)
	}
}

package armci

// Persistent engine teams. The one-shot Run spawns nprocs goroutines, runs
// one SPMD body and tears everything down — the right lifecycle for a test,
// the wrong one for a server multiplying matrices all day. A Team keeps the
// rank goroutines parked between jobs: successive Run calls dispatch new
// SPMD bodies onto the SAME goroutines, so per-rank kernel-thread
// configuration (SetKernelThreads) stays warm across jobs and the process
// keeps its size-class scratch pools hot without re-paying goroutine and
// scheduler setup per multiply.
//
// Lifecycle and failure model:
//
//   - Collective state (barrier, mailbox, Malloc slot table, start clock,
//     per-rank Stats) is created FRESH per job. A job that panics or is
//     aborted poisons only its own collectives; the team itself stays
//     usable for the next job, which is what a serving layer needs after a
//     cancelled or failed request.
//   - Run calls are serialized by the team's mutex; callers wanting
//     concurrency pool several teams.
//   - RunWithTimeout arms the same deadlock watchdog as the one-shot form.
//     If the watchdog fires and some ranks never unwind, those goroutines
//     are wedged in user code (or injected faults) — the team records them
//     and refuses further jobs, because the parked loop underneath them is
//     gone for good.
//   - Close drains: it closes the job channels (parked ranks exit
//     immediately) and waits a grace period for every rank goroutine to
//     return, reporting whoever is still out there as a *WatchdogError —
//     the same leaked-rank detection the one-shot watchdog performs.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"srumma/internal/obs"
	"srumma/internal/rt"
)

// teamCloseGrace is how long Close waits for rank goroutines to unwind
// before declaring them leaked.
const teamCloseGrace = 250 * time.Millisecond

// teamJob is one SPMD body dispatched to every rank with its own fresh
// collective state and failure accounting.
type teamJob struct {
	body     func(rt.Ctx)
	r        *runtime
	errs     []error
	finished []int32
	wg       sync.WaitGroup
}

// Team is a persistent set of SPMD rank goroutines executing successive
// bodies. Create with NewTeam, run jobs with Run/RunWithTimeout, release
// with Close.
type Team struct {
	topo rt.Topology

	mu     sync.Mutex
	closed bool
	leaked []int // ranks wedged by an earlier watchdogged job

	jobs   []chan *teamJob
	exited []chan struct{}
	ctxs   []*ctx
}

// NewTeam validates topo and parks one goroutine per rank.
func NewTeam(topo rt.Topology) (*Team, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	n := topo.NProcs
	t := &Team{
		topo:   topo,
		jobs:   make([]chan *teamJob, n),
		exited: make([]chan struct{}, n),
		ctxs:   make([]*ctx, n),
	}
	for rank := 0; rank < n; rank++ {
		// Buffered so dispatch never blocks on a wedged rank: the watchdog
		// path can then observe the rank as leaked instead of hanging Run.
		t.jobs[rank] = make(chan *teamJob, 1)
		t.exited[rank] = make(chan struct{})
		t.ctxs[rank] = &ctx{rank: rank, kernelThreads: defaultKernelThreads(n)}
		go t.rankLoop(rank)
	}
	return t, nil
}

func (t *Team) rankLoop(rank int) {
	defer close(t.exited[rank])
	for job := range t.jobs[rank] {
		runRank(job, t.ctxs[rank])
	}
}

// RankPanicError is the per-rank run error recorded when a rank's job body
// panicked. It keeps the panic payload inspectable: a recovery layer can
// errors.As through it to the underlying cause (e.g. an injected
// faults.CrashError) and decide whether the job is worth resuming.
type RankPanicError struct {
	Rank  int
	Cause any
}

func (e *RankPanicError) Error() string {
	return fmt.Sprintf("armci: rank %d panicked: %v", e.Rank, e.Cause)
}

// Unwrap exposes the panic payload when it was itself an error, and marks
// the failure as the engine-independent "rank exited" class (the rank
// unwound and is gone — the same class as a dead worker process on the
// multi-process engine), as opposed to rt.ErrRankDeadlocked (wedged but
// still there, the WatchdogError class). errors.Is/As walk both branches.
func (e *RankPanicError) Unwrap() []error {
	if err, ok := e.Cause.(error); ok {
		return []error{err, rt.ErrRankExited}
	}
	return []error{rt.ErrRankExited}
}

// runRank executes one job on one rank with the engine's standard recovery:
// a panic is recorded with rank context and the job's collectives are
// aborted so the surviving ranks unwind instead of hanging.
func runRank(job *teamJob, c *ctx) {
	defer job.wg.Done()
	defer atomic.StoreInt32(&job.finished[c.rank], 1)
	defer func() {
		if p := recover(); p != nil {
			if _, secondary := p.(abortError); secondary {
				job.errs[c.rank] = abortError{}
			} else {
				job.errs[c.rank] = &RankPanicError{Rank: c.rank, Cause: p}
			}
			job.r.barrier.abort()
			job.r.mbox.abort()
		}
	}()
	// One job span per rank, wake to unwind (closure defer so the end time
	// is read at unwind, not at defer registration). Against the recorder's
	// shared epoch, successive jobs on a persistent team line up on one
	// serving timeline.
	jt0 := c.spanStart()
	defer func() { c.span(obs.KindJob, jt0) }()
	job.body(c)
}

// Topo returns the team's topology.
func (t *Team) Topo() rt.Topology { return t.topo }

// SetRecorder attaches (or, with nil, detaches) an obs.Recorder to every
// rank: subsequent jobs emit wall-clock spans onto lane == rank. Must be
// called between jobs (Run serializes on the same mutex).
func (t *Team) SetRecorder(r *obs.Recorder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, c := range t.ctxs {
		c.rec = r
	}
}

// Run executes body once per rank and returns per-rank stats, like the
// package-level Run but on the parked goroutines.
func (t *Team) Run(body func(rt.Ctx)) ([]*rt.Stats, error) {
	return t.RunWithTimeout(0, body)
}

// RunWithTimeout is Run with the deadlock watchdog armed (0 = none). A
// fired watchdog aborts the job's collectives; ranks that still do not
// unwind are recorded as leaked and the team refuses further jobs.
func (t *Team) RunWithTimeout(timeout time.Duration, body func(rt.Ctx)) ([]*rt.Stats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("armci: Run on closed team")
	}
	if len(t.leaked) > 0 {
		return nil, fmt.Errorf("armci: team unusable: ranks %v leaked by an earlier run", t.leaked)
	}
	n := t.topo.NProcs
	job := &teamJob{
		body: body,
		r: &runtime{
			topo:    t.topo,
			barrier: newBarrier(n),
			mbox:    newMailbox(),
			slots:   make(map[int]*collSlot),
			start:   time.Now(),
		},
		errs:     make([]error, n),
		finished: make([]int32, n),
	}
	job.wg.Add(n)
	stats := make([]*rt.Stats, n)
	for rank, c := range t.ctxs {
		// Fresh per-job runtime and accounting; kernelThreads deliberately
		// persists (the warm configuration a serving layer relies on). The
		// job-channel send below publishes these writes to the rank
		// goroutine; wg.Wait publishes the rank's writes back to us.
		c.rt = job.r
		c.stats = &rt.Stats{}
		c.collSeq = 0
		stats[rank] = c.stats
	}
	for rank := range t.jobs {
		t.jobs[rank] <- job
	}

	done := make(chan struct{})
	go func() {
		job.wg.Wait()
		close(done)
	}()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
			// Abort the collectives so runtime-blocked ranks unwind, give
			// them a moment, then record whoever is still out there.
			job.r.barrier.abort()
			job.r.mbox.abort()
			select {
			case <-done:
			case <-time.After(100 * time.Millisecond):
			}
			var stuck []int
			for rank := range job.finished {
				if atomic.LoadInt32(&job.finished[rank]) == 0 {
					stuck = append(stuck, rank)
				}
			}
			t.leaked = stuck
			return stats, &WatchdogError{Timeout: timeout, Leaked: stuck}
		}
	} else {
		<-done
	}

	// Prefer the original failure over secondary abort unwinds.
	var firstAbort error
	for _, err := range job.errs {
		if err == nil {
			continue
		}
		if _, secondary := err.(abortError); secondary {
			if firstAbort == nil {
				firstAbort = err
			}
			continue
		}
		return stats, err
	}
	return stats, firstAbort
}

// Close shuts the team down: parked ranks exit immediately, and ranks still
// inside a job get a grace period before being reported as leaked via
// *WatchdogError (they stay leaked until process exit, exactly like the
// one-shot watchdog's leak report). Close is idempotent.
func (t *Team) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closeLocked(teamCloseGrace)
}

// abandon closes the job channels without waiting for ranks to unwind —
// used by the one-shot wrapper after a watchdog already reported the leak.
func (t *Team) abandon() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.closed {
		t.closed = true
		for _, ch := range t.jobs {
			close(ch)
		}
	}
}

func (t *Team) closeLocked(grace time.Duration) error {
	if t.closed {
		return nil
	}
	t.closed = true
	for _, ch := range t.jobs {
		close(ch)
	}
	deadline := time.Now().Add(grace)
	var stuck []int
	for rank, ex := range t.exited {
		select {
		case <-ex:
			continue // already unwound; don't race against the timer below
		default:
		}
		select {
		case <-ex:
		case <-time.After(time.Until(deadline)):
			stuck = append(stuck, rank)
		}
	}
	if len(stuck) > 0 {
		return &WatchdogError{Timeout: grace, Leaked: stuck}
	}
	return nil
}

// Team satisfies the rt.Runner capability, as does the one-shot engine via
// OneShot.
var _ rt.Runner = (*Team)(nil)

// OneShot adapts the package-level one-shot Run to the rt.Runner
// capability: each Run call builds a fresh team, runs the body once, and
// tears it down.
type OneShot struct{ Topo rt.Topology }

// Run executes body with one-shot lifecycle.
func (o OneShot) Run(body func(rt.Ctx)) ([]*rt.Stats, error) {
	return Run(o.Topo, body)
}

var _ rt.Runner = OneShot{}

// RunTraced is the one-shot Run with an obs.Recorder attached: every rank
// emits wall-clock spans (gemm, wait, get/put, pack, barrier, job) onto its
// lane. The recorder should have at least topo.NProcs lanes; unbounded
// lanes (perLaneCap <= 0) are the right shape for a single traced run.
func RunTraced(topo rt.Topology, rec *obs.Recorder, body func(rt.Ctx)) ([]*rt.Stats, error) {
	t, err := NewTeam(topo)
	if err != nil {
		return nil, err
	}
	t.SetRecorder(rec)
	stats, err := t.Run(body)
	if cerr := t.Close(); err == nil {
		err = cerr
	}
	return stats, err
}

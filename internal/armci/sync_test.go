package armci

// Abort-path tests for the runtime collectives: when one rank fails, the
// barrier and mailbox must unblock everyone (raising abortError so the
// peers unwind instead of hanging), stay aborted for late arrivals, and
// tolerate repeated aborts. Plus the watchdog regression: ranks wedged
// OUTSIDE the runtime (where abort cannot reach them) must be reported in
// WatchdogError.Leaked.

import (
	"errors"
	"testing"
	"time"

	"srumma/internal/rt"
)

// expectAbort runs fn and reports whether it panicked with abortError.
func expectAbort(fn func()) (aborted bool) {
	defer func() {
		if p := recover(); p != nil {
			if _, ok := p.(abortError); ok {
				aborted = true
				return
			}
			panic(p)
		}
	}()
	fn()
	return false
}

func TestBarrierAbortUnblocksWaiter(t *testing.T) {
	b := newBarrier(2)
	unwound := make(chan bool, 1)
	entered := make(chan struct{})
	go func() {
		close(entered)
		unwound <- expectAbort(b.await)
	}()
	<-entered
	time.Sleep(time.Millisecond) // let the goroutine block in await
	b.abort()
	select {
	case ok := <-unwound:
		if !ok {
			t.Error("blocked waiter returned normally from an aborted barrier")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not unblock the barrier waiter")
	}
}

func TestBarrierAbortedRejectsLateArrivals(t *testing.T) {
	b := newBarrier(3)
	b.abort()
	if !expectAbort(b.await) {
		t.Error("await on an aborted barrier did not unwind")
	}
}

func TestBarrierDoubleAbortIdempotent(t *testing.T) {
	b := newBarrier(2)
	b.abort()
	b.abort() // must not deadlock, panic, or reset the aborted state
	if !expectAbort(b.await) {
		t.Error("barrier forgot it was aborted after a second abort")
	}
}

func TestMailboxAbortReleasesPendingRecv(t *testing.T) {
	m := newMailbox()
	dst := make([]float64, 4)
	h := m.recv(msgKey{src: 0, dst: 1, tag: 7}, dst)
	if h.Done() {
		t.Fatal("recv with no matching send reported done")
	}
	m.abort()
	// The pending receive's handle is released so a rank blocked in Wait
	// unwinds instead of hanging (the payload never arrived; the rank will
	// fail at its next collective).
	if !h.Done() {
		t.Error("abort did not release the pending recv handle")
	}
}

func TestMailboxAbortedRejectsTraffic(t *testing.T) {
	m := newMailbox()
	m.abort()
	if !expectAbort(func() { m.send(msgKey{src: 0, dst: 1}, []float64{1}) }) {
		t.Error("send on an aborted mailbox did not unwind")
	}
	if !expectAbort(func() { m.recv(msgKey{src: 0, dst: 1}, make([]float64, 1)) }) {
		t.Error("recv on an aborted mailbox did not unwind")
	}
}

func TestMailboxDoubleAbortIdempotent(t *testing.T) {
	m := newMailbox()
	m.recv(msgKey{src: 0, dst: 1, tag: 1}, make([]float64, 1))
	m.abort()
	m.abort() // second abort finds no pending recvs; must not re-close channels
	if !expectAbort(func() { m.send(msgKey{src: 0, dst: 1}, []float64{1}) }) {
		t.Error("mailbox forgot it was aborted after a second abort")
	}
}

// TestWatchdogReportsLeakedRanks is the regression test for the watchdog's
// goroutine-leak path: a rank blocked outside the runtime cannot be
// unwound by aborting the collectives, so RunWithTimeout must return a
// typed *WatchdogError carrying exactly that rank in Leaked.
func TestWatchdogReportsLeakedRanks(t *testing.T) {
	topo := rt.Topology{NProcs: 2, ProcsPerNode: 2}
	release := make(chan struct{})
	defer close(release) // let the leaked goroutine exit at test end
	_, err := RunWithTimeout(topo, 300*time.Millisecond, func(c rt.Ctx) {
		if c.Rank() == 1 {
			<-release // wedged outside the runtime: abort cannot reach this
		}
	})
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("want *WatchdogError, got %T: %v", err, err)
	}
	if len(we.Leaked) != 1 || we.Leaked[0] != 1 {
		t.Errorf("Leaked = %v, want [1]", we.Leaked)
	}
	if we.Timeout != 300*time.Millisecond {
		t.Errorf("Timeout = %v, want 300ms", we.Timeout)
	}
}

// TestWatchdogCollectiveWedgeHasNoLeaks: a rank wedged INSIDE a runtime
// collective unwinds when the watchdog aborts it, so Leaked stays empty
// and the error says so.
func TestWatchdogCollectiveWedgeHasNoLeaks(t *testing.T) {
	topo := rt.Topology{NProcs: 2, ProcsPerNode: 2}
	_, err := RunWithTimeout(topo, 300*time.Millisecond, func(c rt.Ctx) {
		if c.Rank() == 0 {
			c.Barrier() // rank 1 never arrives: wedged in the collective
		}
	})
	var we *WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("want *WatchdogError, got %T: %v", err, err)
	}
	if len(we.Leaked) != 0 {
		t.Errorf("Leaked = %v, want none: the aborted barrier unwound the rank", we.Leaked)
	}
}

func TestRunWithTimeoutZeroMeansNoWatchdog(t *testing.T) {
	topo := rt.Topology{NProcs: 2, ProcsPerNode: 2}
	stats, err := RunWithTimeout(topo, 0, func(c rt.Ctx) { c.Barrier() })
	if err != nil {
		t.Fatalf("plain run failed: %v", err)
	}
	if len(stats) != 2 {
		t.Fatalf("want 2 stats, got %d", len(stats))
	}
}

package core

import (
	"testing"
	"testing/quick"

	"srumma/internal/grid"
	"srumma/internal/rt"
)

// makeTasks builds a synthetic task list with the given A-owner sequence
// (B side all direct), for exercising buildSchedule in isolation.
func makeTasks(owners []int, direct []bool) []Task {
	tasks := make([]Task, len(owners))
	for i := range owners {
		tasks[i] = Task{
			AOwner: owners[i], ADirect: direct[i],
			ABlockRows: 4, ABlockCols: 4,
			ASubR: 4, ASubC: 4,
		}
	}
	return tasks
}

func aSched(tasks []Task, slots int) schedule {
	return buildSchedule(tasks, slots, aRegion, func(t *Task) bool { return t.ADirect })
}

func TestScheduleDedupsConsecutive(t *testing.T) {
	tasks := makeTasks([]int{3, 3, 3, 5, 5, 3}, make([]bool, 6))
	s := aSched(tasks, 2)
	// Fetch items: 3, 5, 3 (the final 3 is a refetch: its buffer slot was
	// reused... with 2 slots, item[0]=3 is still live when 5 is current, so
	// the last task reuses item 0? No: after item 1 (5), items[n-2] is 3 —
	// 2-slot reuse hits.
	if len(s.items) != 2 {
		t.Fatalf("items = %d, want 2 (with 2-slot reuse): %+v", len(s.items), s.items)
	}
	want := []int{0, 0, 0, 1, 1, 0}
	for i, w := range want {
		if s.ofTask[i] != w {
			t.Fatalf("ofTask = %v, want %v", s.ofTask, want)
		}
	}
}

func TestScheduleSingleSlotNoTwoSlotReuse(t *testing.T) {
	tasks := makeTasks([]int{3, 5, 3}, make([]bool, 3))
	s := aSched(tasks, 1)
	// With one buffer, the third task must refetch owner 3.
	if len(s.items) != 3 {
		t.Fatalf("single-slot items = %d, want 3", len(s.items))
	}
}

func TestScheduleDirectTasksNeedNoFetch(t *testing.T) {
	tasks := makeTasks([]int{1, 2, 3}, []bool{true, false, true})
	s := aSched(tasks, 2)
	if len(s.items) != 1 || s.ofTask[0] != -1 || s.ofTask[1] != 0 || s.ofTask[2] != -1 {
		t.Fatalf("schedule wrong: items=%d ofTask=%v", len(s.items), s.ofTask)
	}
	if s.need[0] != -1 || s.need[1] != 0 || s.need[2] != 0 {
		t.Fatalf("need wrong: %v", s.need)
	}
}

func TestScheduleRegionsDistinguishSubBlocks(t *testing.T) {
	// Same owner, different sub-regions: must be distinct fetches.
	tasks := makeTasks([]int{7, 7}, make([]bool, 2))
	tasks[1].ASubJ = 2
	tasks[1].ASubC = 2
	s := aSched(tasks, 2)
	if len(s.items) != 2 {
		t.Fatalf("distinct regions deduped: %+v", s.items)
	}
}

// Property: the schedule invariants the pipeline depends on.
func TestScheduleInvariantsQuick(t *testing.T) {
	f := func(ownerBytes []byte, slots8 uint8) bool {
		if len(ownerBytes) == 0 {
			return true
		}
		if len(ownerBytes) > 40 {
			ownerBytes = ownerBytes[:40]
		}
		slots := 1 + int(slots8%2) // 1 or 2
		owners := make([]int, len(ownerBytes))
		direct := make([]bool, len(ownerBytes))
		for i, b := range ownerBytes {
			owners[i] = int(b % 5)
			direct[i] = b%7 == 0
		}
		tasks := makeTasks(owners, direct)
		s := aSched(tasks, slots)
		run := -1
		for ti := range tasks {
			f := s.ofTask[ti]
			if direct[ti] {
				if f != -1 {
					return false
				}
			} else {
				if f < 0 || f >= len(s.items) {
					return false
				}
				if s.items[f].owner != owners[ti] {
					return false
				}
				// A task may only reference one of the `slots` most recent
				// items at its position (buffer liveness).
				if run-f >= slots && f < run {
					return false
				}
			}
			if f > run {
				if f != run+1 && run >= 0 {
					return false // items must be introduced one at a time
				}
				run = f
			}
			if s.need[ti] != run {
				return false
			}
		}
		// need is non-decreasing and increments by at most 1.
		for ti := 1; ti < len(tasks); ti++ {
			d := s.need[ti] - s.need[ti-1]
			if d < 0 || d > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The executor's issue-cap rule: simulate the issue loop and verify no
// buffer is overwritten while a pending task still references it.
func TestPipelineNeverClobbersLiveBuffer(t *testing.T) {
	f := func(ownerBytes []byte) bool {
		if len(ownerBytes) < 2 {
			return true
		}
		if len(ownerBytes) > 30 {
			ownerBytes = ownerBytes[:30]
		}
		owners := make([]int, len(ownerBytes))
		direct := make([]bool, len(ownerBytes))
		for i, b := range ownerBytes {
			owners[i] = int(b % 4)
		}
		tasks := makeTasks(owners, direct)
		nbuf := 2
		s := aSched(tasks, nbuf)
		if len(s.items) == 0 {
			return true
		}
		// Replay the executor's issue schedule.
		bufHolds := make([]int, nbuf) // which item each buffer holds
		for i := range bufHolds {
			bufHolds[i] = -1
		}
		issued := -1
		issue := func(upTo int) {
			for issued < upTo {
				issued++
				bufHolds[issued%nbuf] = issued
			}
		}
		issue(min(1, len(s.items)-1))
		for ti := range tasks {
			target := s.need[ti]
			if ti+1 < len(tasks) {
				target = s.need[ti+1]
				if fi := s.ofTask[ti]; fi >= 0 && target > fi+1 {
					target = fi + 1
				}
				if target < s.need[ti] {
					target = s.need[ti]
				}
			}
			issue(target)
			// The current task's item must still be resident.
			if fi := s.ofTask[ti]; fi >= 0 && bufHolds[fi%nbuf] != fi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Plan determinism: identical inputs must give identical task lists.
func TestPlanDeterministic(t *testing.T) {
	g, _ := grid.New(3, 4)
	topo := rt.Topology{NProcs: 12, ProcsPerNode: 4}
	d := Dims{M: 50, N: 60, K: 70}
	for _, cs := range Cases {
		a := Plan(topo, 5, g, d, Options{Case: cs})
		b := Plan(topo, 5, g, d, Options{Case: cs})
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", cs)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: task %d differs", cs, i)
			}
		}
	}
}

package core

// Resilient (fault-aware) execution of the SRUMMA task list. The static
// executor in exec.go commits to a fetch order at plan time, which is the
// right thing on a healthy machine — but under faults the order itself
// becomes a liability: a straggling owner at the head of the list stalls
// the whole pipeline, and a degraded transport makes deep look-ahead
// pointless. The owner-computes task list is exactly the structure that
// makes recovery cheap (cf. the task-based SUMMA formulations of Calvin,
// Lewis & Valeev): every task is independent, so the executor here picks
// tasks DYNAMICALLY —
//
//   - tasks whose operands live on ranks the resilience layer currently
//     flags as slow are deferred (the local form of task stealing: the
//     rank steals forward work from elsewhere in its own list instead of
//     blocking behind the straggler);
//   - while healthy, the next chosen task's operands are prefetched into
//     the alternate buffer pair, preserving the paper's
//     communication/computation overlap;
//   - once the resilience layer reports Degraded, look-ahead stops and
//     execution falls back to blocking single-buffer transfers — the
//     graceful-degradation end state.
//
// The trade against the static pipeline is deliberate: dynamic order loses
// the consecutive-task buffer-reuse optimization (a re-fetch instead of a
// reuse costs bandwidth), but keeps the multiply correct and moving under
// fault classes that would wedge the static order. beta-application is
// tracked per C region at execution time because dynamic order invalidates
// the planner's static First marks.

import "srumma/internal/rt"

// inflight is one task whose fetches have been issued into buffer slot
// `slot` (handles nil for direct operands).
type inflight struct {
	ti   int
	slot int
	ha   rt.Handle
	hb   rt.Handle
}

func execTasksResilient(c rt.Ctx, health rankHealth, tasks []Task, opts Options, alpha, beta float64, ga, gb, gc rt.Global, nLoc int, lg *Ledger) error {
	me := c.Rank()
	transA, transB := opts.Case.TransA(), opts.Case.TransB()

	// Per-task operand buffers: two slots per matrix so the next task can
	// prefetch while the current one computes (one slot when the caller
	// asked for blocking mode).
	nbuf := 2
	if opts.SingleBuffer {
		nbuf = 1
	}
	maxA, maxB := 0, 0
	for i := range tasks {
		t := &tasks[i]
		if !t.ADirect && t.ASubR*t.ASubC > maxA {
			maxA = t.ASubR * t.ASubC
		}
		if !t.BDirect && t.BSubR*t.BSubC > maxB {
			maxB = t.BSubR * t.BSubC
		}
	}
	var bufsA, bufsB []rt.Buffer
	for i := 0; i < nbuf && maxA > 0; i++ {
		bufsA = append(bufsA, c.LocalBuf(maxA))
	}
	for i := 0; i < nbuf && maxB > 0; i++ {
		bufsB = append(bufsB, c.LocalBuf(maxB))
	}
	// Deferred: this executor returns from inside its scheduling loop.
	defer releaseScratch(c, bufsA, bufsB)

	// Dynamic beta tracking: the first gemm into each C region applies the
	// caller's beta, every later one accumulates. On a resumed attempt the
	// map is pre-seeded from the ledger — regions a completed task touched
	// already had their beta applied.
	touched := make(map[cRegion]bool, len(tasks))

	remaining := make([]int, 0, len(tasks))
	for i := range tasks {
		if lg != nil && lg.Done(i) {
			t := &tasks[i]
			touched[cRegion{t.CI, t.CJ, t.CR, t.CC}] = true
			continue
		}
		remaining = append(remaining, i)
	}
	if len(remaining) == 0 {
		return nil
	}

	// pick chooses the next task: the first remaining one not waiting on a
	// slow owner, falling back to the head when every candidate is slow.
	// Skipping ahead is the steal the stats count.
	pick := func() int {
		for pos, ti := range remaining {
			t := &tasks[ti]
			if (t.ADirect || !health.IsSlow(t.AOwner)) && (t.BDirect || !health.IsSlow(t.BOwner)) {
				if pos > 0 {
					c.Stats().StragglerSteals++
				}
				return pos
			}
		}
		return 0
	}
	take := func() int {
		pos := pick()
		ti := remaining[pos]
		remaining = append(remaining[:pos], remaining[pos+1:]...)
		return ti
	}
	rec := rt.FindRecorder(c)
	issue := func(ti, slot int) inflight {
		t := &tasks[ti]
		f := inflight{ti: ti, slot: slot}
		if t.ADirect && t.BDirect {
			return f
		}
		t0 := issueStart(rec)
		if !t.ADirect {
			r := aRegion(t)
			f.ha = c.NbGetSub(ga, r.owner, r.off, r.ld, r.rows, r.cols, bufsA[slot], 0)
		}
		if !t.BDirect {
			r := bRegion(t)
			f.hb = c.NbGetSub(gb, r.owner, r.off, r.ld, r.rows, r.cols, bufsB[slot], 0)
		}
		issueSpan(rec, me, t0)
		return f
	}

	var ab *abftState
	if opts.ABFT {
		ab = newABFTState(c, opts.ABFTTol)
	}

	cBuf := c.Local(gc)
	exec := func(f inflight) error {
		t := &tasks[f.ti]
		var aMat, bMat rt.Mat
		if t.ADirect {
			if t.AOwner == me {
				aMat = rt.Mat{Buf: c.Local(ga)}
			} else {
				aMat = rt.Mat{Buf: c.Direct(ga, t.AOwner), Remote: true}
			}
			aMat.Off = t.ASubI*t.ABlockCols + t.ASubJ
			aMat.LD = t.ABlockCols
		} else {
			c.Wait(f.ha)
			aMat = rt.Mat{Buf: bufsA[f.slot], LD: t.ASubC}
		}
		aMat.Rows, aMat.Cols = t.ASubR, t.ASubC
		aMat.Trans = transA

		if t.BDirect {
			if t.BOwner == me {
				bMat = rt.Mat{Buf: c.Local(gb)}
			} else {
				bMat = rt.Mat{Buf: c.Direct(gb, t.BOwner), Remote: true}
			}
			bMat.Off = t.BSubI*t.BBlockCols + t.BSubJ
			bMat.LD = t.BBlockCols
		} else {
			c.Wait(f.hb)
			bMat = rt.Mat{Buf: bufsB[f.slot], LD: t.BSubC}
		}
		bMat.Rows, bMat.Cols = t.BSubR, t.BSubC
		bMat.Trans = transB

		reg := cRegion{t.CI, t.CJ, t.CR, t.CC}
		taskBeta := 1.0
		if !touched[reg] {
			touched[reg] = true
			taskBeta = beta
		}
		cMat := rt.Mat{Buf: cBuf, Off: t.CI*nLoc + t.CJ, LD: nLoc, Rows: t.CR, Cols: t.CC}
		if err := gemmVerified(c, ab, alpha, aMat, bMat, taskBeta, cMat); err != nil {
			return err
		}
		if lg != nil {
			lg.Mark(f.ti)
		}
		return nil
	}

	if cancelled(opts.Cancel) {
		return ErrCancelled
	}
	cur := issue(take(), 0)
	for {
		havePrefetch := false
		var next inflight
		if nbuf > 1 && !health.Degraded() && len(remaining) > 0 {
			// Healthy: overlap — issue the next task's fetches into the
			// other slot before blocking on the current ones.
			next = issue(take(), 1-cur.slot)
			havePrefetch = true
		}
		if err := exec(cur); err != nil {
			return err
		}
		if cancelled(opts.Cancel) {
			// Skip the remaining tasks (including a prefetched one); the
			// deferred releaseScratch surrenders the buffers its in-flight
			// gets target, and nothing will read them.
			return ErrCancelled
		}
		if havePrefetch {
			cur = next
			continue
		}
		if len(remaining) == 0 {
			return nil
		}
		// Degraded (or single-buffer): blocking mode, no look-ahead.
		cur = issue(take(), cur.slot)
	}
}

package core

// Group-level fetch planning: the bridge between the flat per-rank task
// lists and the hierarchical two-level multiplication (internal/hier).
//
// A flat SRUMMA rank fetches every non-direct operand sub-block itself, so
// ranks that share a node repeatedly pull the same remote region over the
// interconnect. The hierarchical outer level instead stages the UNION of a
// group's fetch regions once per group. The exported plan here is that
// union: the exact (matrix, owner, off, ld, rows, cols) tuples group
// members' executors will request, deduplicated, in deterministic
// first-need order. Because the tuples are derived from the same Task
// geometry the executor uses, a staged copy can be substituted for the
// engine fetch byte-for-byte.

import (
	"srumma/internal/grid"
	"srumma/internal/rt"
)

// Matrix identifiers for FetchRegion.
const (
	MatA = 0
	MatB = 1
)

// FetchRegion is one distinct strided sub-block a rank's executor fetches
// with NbGetSub: the one-sided get against the owner's segment of matrix
// Matrix (MatA or MatB), starting at element Off with row stride LD,
// Rows x Cols elements.
type FetchRegion struct {
	Matrix     int
	Owner      int
	Off, LD    int
	Rows, Cols int
}

// Elems returns the number of elements the region moves.
func (r FetchRegion) Elems() int { return r.Rows * r.Cols }

func regionOf(matrix int, it fetchItem) FetchRegion {
	return FetchRegion{Matrix: matrix, Owner: it.owner, Off: it.off, LD: it.ld, Rows: it.rows, Cols: it.cols}
}

// RankFetches returns the exact sequence of fetch regions rank me's static
// executor will issue for its task list, in issue order, after the
// consecutive-task and double-buffer-slot reuse the executor applies. The
// sum of Elems over the result is the rank's flat communication volume in
// elements (remote or intra-domain copy, depending on each owner).
func RankFetches(topo rt.Topology, me int, g *grid.Grid, d Dims, opts Options) []FetchRegion {
	tasks := Plan(topo, me, g, d, opts)
	nbuf := 2
	if opts.SingleBuffer {
		nbuf = 1
	}
	sa := buildSchedule(tasks, nbuf, aRegion, func(t *Task) bool { return t.ADirect })
	sb := buildSchedule(tasks, nbuf, bRegion, func(t *Task) bool { return t.BDirect })
	out := make([]FetchRegion, 0, len(sa.items)+len(sb.items))
	for _, it := range sa.items {
		out = append(out, regionOf(MatA, it))
	}
	for _, it := range sb.items {
		out = append(out, regionOf(MatB, it))
	}
	return out
}

// GroupFetchPlan plans against the sub-grid owned by group grp (per
// topo.GroupRanks): it returns the deduplicated union of the fetch regions
// every member's executor will request, in first-need order (members
// ascending, each member's task order within). The result is what the
// hierarchical outer level stages into the group's shared band; dedup
// across members is exactly the inter-group communication the two-level
// scheme saves over flat SRUMMA.
func GroupFetchPlan(topo rt.Topology, grp int, g *grid.Grid, d Dims, opts Options) []FetchRegion {
	lo, hi := topo.GroupRanks(grp)
	seen := make(map[FetchRegion]bool)
	var out []FetchRegion
	add := func(r FetchRegion) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for m := lo; m < hi; m++ {
		tasks := Plan(topo, m, g, d, opts)
		for ti := range tasks {
			t := &tasks[ti]
			if !t.ADirect {
				add(regionOf(MatA, aRegion(t)))
			}
			if !t.BDirect {
				add(regionOf(MatB, bRegion(t)))
			}
		}
	}
	return out
}

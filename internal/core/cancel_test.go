package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"srumma/internal/armci"
	"srumma/internal/driver"
	"srumma/internal/faults"
	"srumma/internal/grid"
	"srumma/internal/mat"
	"srumma/internal/rt"
)

// cancelHarness runs one multiply on a persistent team with the given
// Cancel channel and a releaseSpy on every rank, returning the per-rank
// multiply errors, the gathered C, and scratch accounting.
type cancelHarness struct {
	team       *armci.Team
	g          *grid.Grid
	d          Dims
	aGlob      *mat.Matrix
	bGlob      *mat.Matrix
	da, db, dc *grid.BlockDist
}

func newCancelHarness(t *testing.T, nprocs int, d Dims) *cancelHarness {
	t.Helper()
	g, err := grid.Square(nprocs)
	if err != nil {
		t.Fatal(err)
	}
	team, err := armci.NewTeam(rt.Topology{NProcs: nprocs, ProcsPerNode: nprocs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { team.Close() })
	da, db, dc := Dists(g, d, NN)
	return &cancelHarness{
		team:  team,
		g:     g,
		d:     d,
		aGlob: mat.Random(da.Rows, da.Cols, 11),
		bGlob: mat.Random(db.Rows, db.Cols, 22),
		da:    da, db: db, dc: dc,
	}
}

// multiply runs one multiply with opts on the harness team. It returns the
// per-rank errors from Multiply, the gathered result, and the total
// granted/released scratch counts seen through the releaseSpy.
func (h *cancelHarness) multiply(t *testing.T, opts Options) ([]error, *mat.Matrix, int, int) {
	t.Helper()
	n := h.g.Size()
	errs := make([]error, n)
	var granted, released int64
	co := driver.NewCollect(n)
	_, err := h.team.Run(func(c rt.Ctx) {
		spy := &releaseSpy{Ctx: c}
		ga := driver.AllocBlock(spy, h.da)
		gb := driver.AllocBlock(spy, h.db)
		gc := driver.AllocBlock(spy, h.dc)
		driver.LoadBlock(spy, h.da, ga, h.aGlob)
		driver.LoadBlock(spy, h.db, gb, h.bGlob)
		errs[c.Rank()] = Multiply(spy, h.g, h.d, opts, ga, gb, gc)
		co.Deposit(spy, driver.StoreBlock(spy, h.dc, gc))
		atomic.AddInt64(&granted, int64(spy.granted))
		atomic.AddInt64(&released, int64(spy.released))
	})
	if err != nil {
		t.Fatalf("team run: %v", err)
	}
	cMat, gerr := grid.NewBlockDist(h.g, h.d.M, h.d.N).Gather(co.Blocks)
	if gerr != nil {
		t.Fatal(gerr)
	}
	return errs, cMat, int(atomic.LoadInt64(&granted)), int(atomic.LoadInt64(&released))
}

func TestMultiplyCancelledBeforeStart(t *testing.T) {
	h := newCancelHarness(t, 4, Dims{M: 96, N: 96, K: 96})
	done := make(chan struct{})
	close(done)
	errs, _, granted, released := h.multiply(t, Options{Cancel: done})
	for rank, err := range errs {
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("rank %d: err = %v, want ErrCancelled", rank, err)
		}
	}
	if granted != released {
		t.Fatalf("scratch leak on cancellation: %d granted, %d released", granted, released)
	}
	// The team must be fully reusable: the next multiply on the SAME team
	// completes and is correct.
	errs, got, granted, released := h.multiply(t, Options{})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d after cancelled run: %v", rank, err)
		}
	}
	if granted != released {
		t.Fatalf("scratch leak on clean run: %d granted, %d released", granted, released)
	}
	want := mat.New(h.d.M, h.d.N)
	if err := mat.Gemm(false, false, 1, h.aGlob, h.bGlob, 0, want); err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("post-cancel multiply wrong: max diff %g", diff)
	}
}

func TestMultiplyCancelledMidFlight(t *testing.T) {
	// A deadline that expires while tasks remain: MaxTaskK slices the task
	// list fine-grained so the cancel lands between tasks, and the run must
	// return promptly, release all pooled scratch, and leave the team
	// serving correct results.
	h := newCancelHarness(t, 4, Dims{M: 128, N: 128, K: 128})
	cancel := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	errs, _, granted, released := h.multiply(t, Options{Cancel: cancel, MaxTaskK: 8})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled multiply took %v, want prompt return", elapsed)
	}
	cancelledRanks := 0
	for rank, err := range errs {
		if err == nil {
			continue // this rank finished its (small) task list before the signal
		}
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("rank %d: err = %v, want ErrCancelled or nil", rank, err)
		}
		cancelledRanks++
	}
	if granted != released {
		t.Fatalf("scratch leak on mid-flight cancellation: %d granted, %d released", granted, released)
	}
	// Team reusable and correct afterwards.
	errs, got, _, _ := h.multiply(t, Options{})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d after cancelled run: %v", rank, err)
		}
	}
	want := mat.New(h.d.M, h.d.N)
	if err := mat.Gemm(false, false, 1, h.aGlob, h.bGlob, 0, want); err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("post-cancel multiply wrong: max diff %g", diff)
	}
}

func TestMultiplyCancelledResilientExecutor(t *testing.T) {
	// The dynamic (fault-aware) executor honors Cancel too: wrap the engine
	// ctx in the resilience layer (no injected faults) so execution takes
	// the resilient path, then cancel before the task loop starts.
	h := newCancelHarness(t, 4, Dims{M: 96, N: 96, K: 96})
	done := make(chan struct{})
	close(done)
	n := h.g.Size()
	errs := make([]error, n)
	_, err := h.team.Run(func(c rt.Ctx) {
		rc := faults.Resilient(c, faults.RecoveryConfig{})
		ga := driver.AllocBlock(rc, h.da)
		gb := driver.AllocBlock(rc, h.db)
		gc := driver.AllocBlock(rc, h.dc)
		driver.LoadBlock(rc, h.da, ga, h.aGlob)
		driver.LoadBlock(rc, h.db, gb, h.bGlob)
		errs[c.Rank()] = Multiply(rc, h.g, h.d, Options{Cancel: done}, ga, gb, gc)
		co := driver.StoreBlock(rc, h.dc, gc)
		_ = co
	})
	if err != nil {
		t.Fatalf("team run: %v", err)
	}
	for rank, e := range errs {
		if !errors.Is(e, ErrCancelled) {
			t.Fatalf("rank %d: err = %v, want ErrCancelled", rank, e)
		}
	}
}

package core

import (
	"testing"

	"srumma/internal/armci"
	"srumma/internal/driver"
	"srumma/internal/grid"
	"srumma/internal/mat"
	"srumma/internal/rt"
)

// releaseSpy wraps an rt.Ctx, counts LocalBuf/ReleaseBuf traffic, and
// forwards capability discovery via Unwrap — exactly how the executor sees
// the engine through the faults middleware.
type releaseSpy struct {
	rt.Ctx
	granted  int
	released int
}

func (s *releaseSpy) Unwrap() rt.Ctx { return s.Ctx }

func (s *releaseSpy) LocalBuf(elems int) rt.Buffer {
	s.granted++
	return s.Ctx.LocalBuf(elems)
}

func (s *releaseSpy) ReleaseBuf(b rt.Buffer) {
	s.released++
	if rel := rt.FindBufferReleaser(s.Ctx); rel != nil {
		rel.ReleaseBuf(b)
	}
}

// TestExecutorReleasesScratch: every communication buffer the executor
// takes must go back to the engine when the multiply completes, so
// repeated multiplies reuse panels instead of re-allocating them.
func TestExecutorReleasesScratch(t *testing.T) {
	g, err := grid.New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := Dims{M: 96, N: 96, K: 96}
	opts := Options{}
	da, db, dc := Dists(g, d, opts.Case)
	aGlob := mat.Random(da.Rows, da.Cols, 1)
	bGlob := mat.Random(db.Rows, db.Cols, 2)
	spies := make([]*releaseSpy, g.Size())
	// Two nodes of two ranks: cross-node operands force fetched (buffered)
	// paths alongside direct ones.
	topo := rt.Topology{NProcs: g.Size(), ProcsPerNode: 2}
	_, err = armci.Run(topo, func(raw rt.Ctx) {
		c := &releaseSpy{Ctx: raw}
		spies[raw.Rank()] = c
		ga := driver.AllocBlock(c, da)
		gb := driver.AllocBlock(c, db)
		gc := driver.AllocBlock(c, dc)
		driver.LoadBlock(c, da, ga, aGlob)
		driver.LoadBlock(c, db, gb, bGlob)
		granted0 := c.granted // driver helpers may take scratch of their own
		released0 := c.released
		if err := Multiply(c, g, d, opts, ga, gb, gc); err != nil {
			panic(err)
		}
		taken := c.granted - granted0
		freed := c.released - released0
		if taken == 0 {
			panic("multiply took no scratch — test exercises nothing")
		}
		if freed != taken {
			t.Errorf("rank %d released %d of %d scratch buffers", raw.Rank(), freed, taken)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, s := range spies {
		if s == nil {
			t.Fatalf("rank %d never ran", rank)
		}
	}
}

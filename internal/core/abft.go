package core

// Algorithm-based fault tolerance (ABFT) for the task executors, after
// Huang & Abraham: a block product's element sum is predicted from operand
// row/column sums — ones^T (op(A) op(B)) ones = colsums(op(A)) · rowsums(op(B))
// — so each produced C view can be verified in O(operand + view) extra work
// against an O(m·n·k) multiply. Transport checksums (internal/faults)
// cannot see a block the KERNEL corrupted: the payload that landed was
// correct, the output is not. ABFT closes exactly that hole: a failed check
// marks the task dirty in the ledger, restores the saved C view and
// recomputes, turning silent corruption into a counted, recovered event.
//
// The check needs real element data, so it requires a data-carrying engine
// (internal/armci); the size-only sim engine cannot support it. The
// tolerance is relative: the deviation must exceed ABFTTol times the
// accumulated magnitude of the inputs, which sits orders of magnitude above
// round-off for any admissible k and below any corruption that could
// matter numerically.

import (
	"fmt"

	"srumma/internal/rt"
)

// defaultABFTTol is the relative tolerance when Options.ABFTTol is unset:
// comfortably above float64 summation noise (~k·eps), far below a
// significant bit flip.
const defaultABFTTol = 1e-6

// abftMaxRedo bounds recomputation of one persistently failing block
// before the executor gives up loudly.
const abftMaxRedo = 3

// ErrABFT is wrapped by the executor error returned when a block keeps
// failing verification after abftMaxRedo recomputations — corruption that
// recomputing cannot clear (deterministic kernel fault, poisoned operand).
var ErrABFT = fmt.Errorf("core: abft verification failed after recompute")

// abftState is one executor run's verification scratch: the saved C view
// (for restore-and-recompute) and the k-length operand sum vectors. One
// instance per rank per multiply, reused across tasks.
type abftState struct {
	c    rt.Ctx
	tol  float64
	save []float64 // pre-gemm C view, packed row-major
	colA []float64 // colsums of op(A), length k
	absA []float64 // colsums of |op(A)|
	rowB []float64 // rowsums of op(B) (TT/NT cases accumulate per column)
	absB []float64
	s0   float64 // sum of the saved C view
	abs0 float64 // sum of |saved C view|
}

func newABFTState(c rt.Ctx, tol float64) *abftState {
	if tol <= 0 {
		tol = defaultABFTTol
	}
	return &abftState{c: c, tol: tol}
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// begin snapshots the C view before the gemm: the saved copy both prices
// the expected sum (beta * s0 contributes to the post-gemm sum) and is the
// restore point for recomputation.
func (a *abftState) begin(cMat rt.Mat) {
	n := cMat.Rows * cMat.Cols
	a.save = grow(a.save, n)
	a.s0, a.abs0 = 0, 0
	for i := 0; i < cMat.Rows; i++ {
		row := a.c.ReadBuf(cMat.Buf, cMat.Off+i*cMat.LD, cMat.Cols)
		copy(a.save[i*cMat.Cols:], row)
		for _, v := range row {
			a.s0 += v
			a.abs0 += abs(v)
		}
	}
}

// predict computes colsums(op(A)) · rowsums(op(B)) and its absolute-value
// counterpart (the magnitude scale for the tolerance).
func (a *abftState) predict(aMat, bMat rt.Mat) (pred, absPred float64) {
	k := aMat.Cols
	if aMat.Trans {
		k = aMat.Rows
	}
	a.colA = grow(a.colA, k)
	a.absA = grow(a.absA, k)
	for l := range a.colA {
		a.colA[l], a.absA[l] = 0, 0
	}
	if aMat.Trans {
		// op(A)[i,l] = stored[l,i]: column l of op(A) is stored row l.
		for l := 0; l < aMat.Rows; l++ {
			row := a.c.ReadBuf(aMat.Buf, aMat.Off+l*aMat.LD, aMat.Cols)
			for _, v := range row {
				a.colA[l] += v
				a.absA[l] += abs(v)
			}
		}
	} else {
		for i := 0; i < aMat.Rows; i++ {
			row := a.c.ReadBuf(aMat.Buf, aMat.Off+i*aMat.LD, aMat.Cols)
			for l, v := range row {
				a.colA[l] += v
				a.absA[l] += abs(v)
			}
		}
	}
	if bMat.Trans {
		// op(B)[l,j] = stored[j,l]: rowsum l of op(B) is stored column l.
		a.rowB = grow(a.rowB, k)
		a.absB = grow(a.absB, k)
		for l := range a.rowB {
			a.rowB[l], a.absB[l] = 0, 0
		}
		for j := 0; j < bMat.Rows; j++ {
			row := a.c.ReadBuf(bMat.Buf, bMat.Off+j*bMat.LD, bMat.Cols)
			for l, v := range row {
				a.rowB[l] += v
				a.absB[l] += abs(v)
			}
		}
		for l := 0; l < k; l++ {
			pred += a.colA[l] * a.rowB[l]
			absPred += a.absA[l] * a.absB[l]
		}
	} else {
		for l := 0; l < bMat.Rows; l++ {
			row := a.c.ReadBuf(bMat.Buf, bMat.Off+l*bMat.LD, bMat.Cols)
			sum, asum := 0.0, 0.0
			for _, v := range row {
				sum += v
				asum += abs(v)
			}
			pred += a.colA[l] * sum
			absPred += a.absA[l] * asum
		}
	}
	return pred, absPred
}

// ok verifies the post-gemm C view sum against the prediction within the
// relative tolerance.
func (a *abftState) ok(alpha, taskBeta, pred, absPred float64, cMat rt.Mat) bool {
	var s1 float64
	for i := 0; i < cMat.Rows; i++ {
		row := a.c.ReadBuf(cMat.Buf, cMat.Off+i*cMat.LD, cMat.Cols)
		for _, v := range row {
			s1 += v
		}
	}
	want := alpha*pred + taskBeta*a.s0
	scale := abs(alpha)*absPred + abs(taskBeta)*a.abs0
	if scale < 1 {
		scale = 1
	}
	return abs(s1-want) <= a.tol*scale
}

// restore rewrites the saved pre-gemm C view, the precondition for a clean
// recompute.
func (a *abftState) restore(cMat rt.Mat) {
	for i := 0; i < cMat.Rows; i++ {
		a.c.WriteBuf(cMat.Buf, cMat.Off+i*cMat.LD, a.save[i*cMat.Cols:(i+1)*cMat.Cols])
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// gemmVerified is the shared verified-gemm step of both executors: plain
// gemm when verification is off (ab == nil — no extra work, no
// allocations), otherwise snapshot → predict → gemm → verify, with
// restore-and-recompute on mismatch. Detections and recomputes land in the
// rank's Stats meters.
func gemmVerified(c rt.Ctx, ab *abftState, alpha float64, aMat, bMat rt.Mat, taskBeta float64, cMat rt.Mat) error {
	if ab == nil {
		c.Gemm(alpha, aMat, bMat, taskBeta, cMat)
		return nil
	}
	ab.begin(cMat)
	pred, absPred := ab.predict(aMat, bMat)
	c.Gemm(alpha, aMat, bMat, taskBeta, cMat)
	for try := 0; !ab.ok(alpha, taskBeta, pred, absPred, cMat); try++ {
		c.Stats().ABFTDetected++
		if try == abftMaxRedo {
			return fmt.Errorf("%w: rank %d C view (%d,%d) %dx%d", ErrABFT, c.Rank(), cMat.Off, cMat.LD, cMat.Rows, cMat.Cols)
		}
		ab.restore(cMat)
		c.Gemm(alpha, aMat, bMat, taskBeta, cMat)
		c.Stats().ABFTRecomputed++
	}
	return nil
}
